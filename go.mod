module qcongest

go 1.24
