// Package amplify implements the quantum search machinery of Sections 2.3
// and 2.4 of the paper: amplitude amplification for an unknown number of
// marked items (Theorem 6, using the standard BBHT exponential schedule)
// and quantum maximum finding (Corollary 1, the Dürr-Høyer threshold climb).
//
// Every routine counts how many times it applies the Setup and Evaluation
// black boxes. Theorem 7 turns those counts into distributed round
// complexities: each amplification iteration costs two Evaluation
// applications (mark, unmark) and two Setup applications (the reflection
// about the initial state is Setup^{-1}, a |0>-phase flip, Setup), plus one
// classical Evaluation per measurement verification.
package amplify

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"qcongest/internal/qsim"
)

// Counters tallies black-box applications during a quantum procedure.
type Counters struct {
	GroverIterations int // amplitude-amplification steps performed
	SetupCalls       int // applications of Setup or its inverse
	EvaluationCalls  int // applications of Evaluation or its inverse
	Measurements     int // full measurements of the internal register
	Phases           int // threshold updates / epsilon halvings (FindMax)
}

func (c *Counters) add(o Counters) {
	c.GroverIterations += o.GroverIterations
	c.SetupCalls += o.SetupCalls
	c.EvaluationCalls += o.EvaluationCalls
	c.Measurements += o.Measurements
	c.Phases += o.Phases
}

// ErrNotFound is returned by Search when no marked element was found within
// the iteration budget. Callers treat it as "M is (probably) empty".
var ErrNotFound = errors.New("amplify: no marked element found")

// Search runs the BBHT amplitude-amplification loop on the initial state
// phi (the Setup output) with the given marked-set predicate, spending at
// most maxIterations Grover iterations. On success it returns the measured
// marked element. The expected number of iterations is O(sqrt(1/P_M)) when
// the marked probability mass is P_M > 0 (Theorem 6).
func Search(phi *qsim.Sparse, marked func(int) bool, maxIterations int, rng *rand.Rand) (int, Counters, error) {
	var c Counters
	if maxIterations < 1 {
		maxIterations = 1
	}
	m := 1.0
	const lambda = 1.2 // BBHT growth factor in (1, 4/3)
	nKeys := len(phi.Support())
	mCap := math.Sqrt(float64(nKeys)) * 2
	for c.GroverIterations < maxIterations {
		j := rng.Intn(int(m) + 1)
		if rem := maxIterations - c.GroverIterations; j > rem {
			j = rem
		}
		s := phi.Clone()
		for i := 0; i < j; i++ {
			s.GroverIteration(phi, marked)
		}
		c.GroverIterations += j
		c.SetupCalls += 2*j + 1 // reflections + initial Setup
		c.EvaluationCalls += 2 * j
		x := s.Measure(rng)
		c.Measurements++
		c.EvaluationCalls++ // classical verification of the outcome
		if marked(x) {
			return x, c, nil
		}
		m = math.Min(lambda*m, mCap)
		if j == 0 && m < 1.5 {
			m = 1.5 // ensure progress when the first draw was 0
		}
	}
	return 0, c, ErrNotFound
}

// FindAll finds every marked element in the support of phi by repeated
// amplitude-amplified search, excluding each found element from the marked
// set before the next pass. Each pass gets the Theorem 6 budget for the
// smallest nonempty marked set (one element, mass 1/|support|), boosted by
// ceil(ln(1/delta)); the procedure stops at the first fruitless pass, so a
// complete run performs |M|+1 searches. The found elements are returned in
// discovery order (measurement-driven, so seed-dependent but deterministic
// for a fixed rng stream).
func FindAll(phi *qsim.Sparse, marked func(int) bool, delta float64, rng *rand.Rand) ([]int, Counters, error) {
	var c Counters
	if delta <= 0 || delta >= 1 {
		return nil, c, fmt.Errorf("amplify: delta %g out of (0,1)", delta)
	}
	support := phi.Support()
	if len(support) == 0 {
		return nil, c, qsim.ErrEmptyDomain
	}
	boost := math.Ceil(math.Log(1 / delta))
	if boost < 1 {
		boost = 1
	}
	budget := int(boost*math.Ceil(3*math.Sqrt(float64(len(support))))) + 1

	found := make(map[int]bool, 4)
	var out []int
	for len(out) < len(support) {
		residual := func(x int) bool { return marked(x) && !found[x] }
		x, pass, err := Search(phi, residual, budget, rng)
		c.add(pass)
		switch {
		case err == nil:
			found[x] = true
			out = append(out, x)
		case errors.Is(err, ErrNotFound):
			return out, c, nil
		default:
			return out, c, err
		}
	}
	return out, c, nil
}

// MaxResult is the outcome of FindMax.
type MaxResult struct {
	Argmax   int
	Value    int
	Counters Counters
}

// FindMax implements Corollary 1 (quantum optimization): it finds an
// element maximizing f over the support of phi with probability at least
// 1-delta, provided the probability mass of maximizing elements under phi
// is at least eps. The procedure follows the paper: keep a threshold a,
// repeatedly amplitude-amplify the set {x : f(x) > f(a)} with a budget
// calibrated to the current epsilon', halving epsilon' after each fruitless
// phase, and stop once epsilon' < eps and a phase finds nothing.
func FindMax(phi *qsim.Sparse, f func(int) int, eps, delta float64, rng *rand.Rand) (MaxResult, error) {
	var res MaxResult
	if eps <= 0 || eps > 1 {
		return res, fmt.Errorf("amplify: eps %g out of (0,1]", eps)
	}
	if delta <= 0 || delta >= 1 {
		return res, fmt.Errorf("amplify: delta %g out of (0,1)", delta)
	}
	support := phi.Support()
	if len(support) == 0 {
		return res, qsim.ErrEmptyDomain
	}

	// Step 1: start from a measured sample of the initial state (a fixed
	// element would do; sampling matches the Dürr-Høyer analysis).
	a := phi.Clone().Measure(rng)
	res.Counters.Measurements++
	res.Counters.SetupCalls++
	res.Counters.EvaluationCalls++ // learn f(a)
	fa := f(a)

	boost := math.Ceil(math.Log(1 / delta))
	if boost < 1 {
		boost = 1
	}
	epsPrime := 0.5
	for {
		budget := int(boost*math.Ceil(3/math.Sqrt(epsPrime))) + 1
		marked := func(x int) bool { return f(x) > fa }
		b, c, err := Search(phi, marked, budget, rng)
		res.Counters.add(c)
		res.Counters.Phases++
		switch {
		case err == nil:
			a, fa = b, f(b)
		case errors.Is(err, ErrNotFound):
			if epsPrime <= eps {
				res.Argmax, res.Value = a, fa
				return res, nil
			}
			epsPrime /= 2
		default:
			return res, err
		}
	}
}
