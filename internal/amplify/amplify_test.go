package amplify

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"qcongest/internal/qsim"
)

func uniformOver(n int, t *testing.T) *qsim.Sparse {
	t.Helper()
	keys := make([]int, n)
	for i := range keys {
		keys[i] = i
	}
	phi, err := qsim.NewUniform(keys)
	if err != nil {
		t.Fatal(err)
	}
	return phi
}

func TestSearchFindsUniqueMarked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	phi := uniformOver(64, t)
	hits := 0
	const trials = 50
	totalIters := 0
	for i := 0; i < trials; i++ {
		x, c, err := Search(phi, func(k int) bool { return k == 37 }, 200, rng)
		if err == nil && x == 37 {
			hits++
		}
		totalIters += c.GroverIterations
	}
	if hits < trials*9/10 {
		t.Errorf("found marked element only %d/%d times", hits, trials)
	}
	// Expected iterations O(sqrt(64)) = 8; allow generous constant.
	if avg := float64(totalIters) / trials; avg > 60 {
		t.Errorf("average iterations %g, want O(sqrt(N)) = 8-ish", avg)
	}
}

func TestSearchEmptyMarkedSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	phi := uniformOver(32, t)
	_, c, err := Search(phi, func(int) bool { return false }, 40, rng)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if c.GroverIterations < 40 {
		t.Errorf("budget not exhausted: %d iterations", c.GroverIterations)
	}
}

// The sqrt speedup: iterations to find one marked item among N scale like
// sqrt(N), not N. Check the ratio between N=256 and N=16 is near
// sqrt(256/16)=4, far below the classical 16.
func TestSearchSqrtScaling(t *testing.T) {
	avgIters := func(n int) float64 {
		rng := rand.New(rand.NewSource(11))
		phi := uniformOver(n, t)
		total := 0
		const trials = 60
		for i := 0; i < trials; i++ {
			_, c, err := Search(phi, func(k int) bool { return k == n-1 }, 50*n, rng)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			total += c.GroverIterations
		}
		return float64(total) / trials
	}
	small, large := avgIters(16), avgIters(256)
	ratio := large / small
	if ratio > 9 {
		t.Errorf("iteration ratio %g suggests super-sqrt scaling (small=%g large=%g)", ratio, small, large)
	}
}

func TestFindMaxCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	phi := uniformOver(100, t)
	f := func(x int) int { return -(x - 63) * (x - 63) } // max at 63
	hits := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		res, err := FindMax(phi, f, 1.0/100, 0.1, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Argmax == 63 {
			hits++
		}
	}
	if hits < trials*8/10 {
		t.Errorf("FindMax hit the maximum %d/%d times", hits, trials)
	}
}

func TestFindMaxPlateau(t *testing.T) {
	// Many maximizers: eps is large, so few iterations should be needed.
	rng := rand.New(rand.NewSource(9))
	phi := uniformOver(64, t)
	f := func(x int) int {
		if x >= 32 {
			return 5
		}
		return x % 5
	}
	res, err := FindMax(phi, f, 0.5, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 5 {
		t.Errorf("value = %d, want 5", res.Value)
	}
	if res.Counters.GroverIterations > 200 {
		t.Errorf("easy instance used %d iterations", res.Counters.GroverIterations)
	}
}

func TestFindMaxParameterValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	phi := uniformOver(8, t)
	f := func(x int) int { return x }
	if _, err := FindMax(phi, f, 0, 0.1, rng); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := FindMax(phi, f, 2, 0.1, rng); err == nil {
		t.Error("eps=2 accepted")
	}
	if _, err := FindMax(phi, f, 0.1, 0, rng); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := FindMax(phi, f, 0.1, 1, rng); err == nil {
		t.Error("delta=1 accepted")
	}
}

// FindMax iteration count scales like sqrt(1/eps) = sqrt(N) for a unique
// maximizer under the uniform distribution, times log factors.
func TestFindMaxSqrtScaling(t *testing.T) {
	avg := func(n int) float64 {
		rng := rand.New(rand.NewSource(13))
		phi := uniformOver(n, t)
		f := func(x int) int { return x }
		total := 0
		const trials = 25
		for i := 0; i < trials; i++ {
			res, err := FindMax(phi, f, 1/float64(n), 0.2, rng)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Counters.GroverIterations
		}
		return float64(total) / trials
	}
	small, large := avg(16), avg(256)
	// sqrt scaling predicts ratio ~4 (with log factors); classical would
	// be 16. Allow up to 10.
	if r := large / small; r > 10 {
		t.Errorf("scaling ratio %g (small=%g large=%g)", r, small, large)
	}
}

// The counter relation documented in the package comment: each iteration
// contributes 2 Setup and 2 Evaluation applications (plus per-measurement
// overhead).
func TestCounterAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	phi := uniformOver(64, t)
	_, c, err := Search(phi, func(k int) bool { return k == 1 }, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.SetupCalls != 2*c.GroverIterations+c.Measurements {
		t.Errorf("SetupCalls=%d, want 2*%d+%d", c.SetupCalls, c.GroverIterations, c.Measurements)
	}
	if c.EvaluationCalls != 2*c.GroverIterations+c.Measurements {
		t.Errorf("EvaluationCalls=%d, want 2*%d+%d", c.EvaluationCalls, c.GroverIterations, c.Measurements)
	}
}

// Amplitude amplification success probability after the optimal number of
// iterations should be near 1 (sanity for the underlying qsim plumbing).
func TestOptimalIterationSweetSpot(t *testing.T) {
	phi := uniformOver(1024, t)
	marked := func(k int) bool { return k == 512 }
	s := phi.Clone()
	kOpt := int(math.Round(math.Pi / 4 * math.Sqrt(1024)))
	for i := 0; i < kOpt; i++ {
		s.GroverIteration(phi, marked)
	}
	if p := s.Probability(marked); p < 0.99 {
		t.Errorf("P(marked) after %d iterations = %g", kOpt, p)
	}
}
