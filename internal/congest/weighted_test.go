package congest

import (
	"reflect"
	"testing"

	"qcongest/internal/graph"
)

func weightedTestGraph(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	return graph.WithWeights(graph.RandomConnected(n, 0.12, seed), 9, seed+50)
}

// TestWeightedSSSPMatchesDijkstra checks the distributed Bellman–Ford
// program against the sequential Dijkstra oracle, on weighted and unweighted
// graphs, for several worker counts.
func TestWeightedSSSPMatchesDijkstra(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		for _, g := range []*graph.Graph{
			weightedTestGraph(t, 20, seed),
			graph.RandomConnected(20, 0.12, seed),
		} {
			topo, err := NewTopology(g)
			if err != nil {
				t.Fatal(err)
			}
			for src := 0; src < g.N(); src += 5 {
				want := g.Dijkstra(src)
				for _, workers := range []int{1, 2, 8} {
					dist, m, err := WeightedSSSPOn(topo, src, WithWorkers(workers), WithStrictAccounting())
					if err != nil {
						t.Fatalf("seed %d src %d workers %d: %v", seed, src, workers, err)
					}
					if !reflect.DeepEqual(dist, want) {
						t.Fatalf("seed %d src %d workers %d: dist %v, want %v", seed, src, workers, dist, want)
					}
					if m.Rounds != ssspDuration(g.N()) {
						t.Fatalf("seed %d src %d: %d rounds, want fixed duration %d (input-independence)",
							seed, src, m.Rounds, ssspDuration(g.N()))
					}
				}
			}
		}
	}
}

// TestWeightedEccentricitySession checks the session-backed weighted
// Evaluation against both the one-shot helper and the graph oracle, and that
// reuse is bit-identical to fresh runs.
func TestWeightedEccentricitySession(t *testing.T) {
	g := weightedTestGraph(t, 24, 3)
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	info, _, err := PreprocessOn(topo)
	if err != nil {
		t.Fatal(err)
	}
	es := NewWeightedEccSession(topo, info, WithStrictAccounting())
	defer es.Close()
	for src := 0; src < g.N(); src++ {
		want, err := g.WeightedEccentricity(src)
		if err != nil {
			t.Fatal(err)
		}
		got, m, err := es.Eval(src)
		if err != nil {
			t.Fatalf("src %d: %v", src, err)
		}
		if got != want {
			t.Fatalf("src %d: session ecc %d, want %d", src, got, want)
		}
		fresh, fm, err := WeightedEccentricityOn(topo, info, src, WithStrictAccounting())
		if err != nil {
			t.Fatal(err)
		}
		if fresh != got || fm != m {
			t.Fatalf("src %d: session (%d, %+v) != fresh (%d, %+v)", src, got, m, fresh, fm)
		}
	}
	// Clones evaluate independently and identically.
	c, err := es.Clone()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, src := range []int{0, 7, 13} {
		a, ma, err := es.Eval(src)
		if err != nil {
			t.Fatal(err)
		}
		b, mb, err := c.Eval(src)
		if err != nil {
			t.Fatal(err)
		}
		if a != b || ma != mb {
			t.Fatalf("src %d: clone (%d, %+v) != original (%d, %+v)", src, b, mb, a, ma)
		}
	}
}

// TestClassicalWeightedDiameter checks the Theta(n^2) classical weighted
// baseline against the Floyd–Warshall oracle.
func TestClassicalWeightedDiameter(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := weightedTestGraph(t, 16, seed)
		mat, err := g.FloydWarshall()
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, row := range mat {
			for _, d := range row {
				if d > want {
					want = d
				}
			}
		}
		res, err := ClassicalWeightedDiameter(g, WithStrictAccounting())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Diameter != want {
			t.Fatalf("seed %d: weighted diameter %d, want %d", seed, res.Diameter, want)
		}
		if res.Metrics.Rounds == 0 || res.Metrics.Bits == 0 {
			t.Fatalf("seed %d: empty metrics %+v", seed, res.Metrics)
		}
	}
}

// TestClassicalEccentricities checks the Theta(n) all-eccentricities
// baseline against the per-vertex BFS oracle.
func TestClassicalEccentricities(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(17),
		graph.RandomConnected(30, 0.1, 2),
		graph.Cycle(12),
	} {
		want, err := g.AllEccentricities()
		if err != nil {
			t.Fatal(err)
		}
		got, m, err := ClassicalEccentricities(g, WithStrictAccounting())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("eccentricities %v, want %v", got, want)
		}
		if m.Rounds == 0 {
			t.Fatal("no rounds recorded")
		}
	}
	if _, _, err := ClassicalEccentricities(graph.New(0)); err == nil {
		t.Fatal("empty graph must error")
	}
	if ecc, _, err := ClassicalEccentricities(graph.New(1)); err != nil || !reflect.DeepEqual(ecc, []int{0}) {
		t.Fatalf("single vertex: %v, %v, want [0]", ecc, err)
	}
}

// TestWeightedWireWidths pins the weighted wire encodings: the distance
// field is BitsForID(bound+1) bits, verified against DeclaredBits and
// against a manual round-trip at the topology's bound.
func TestWeightedWireWidths(t *testing.T) {
	g := graph.New(5)
	g.MustAddWeightedEdge(0, 1, 7)
	g.MustAddWeightedEdge(1, 2, 3)
	g.MustAddWeightedEdge(2, 3, 7)
	g.MustAddWeightedEdge(3, 4, 1)
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	if topo.MaxWeight() != 7 || topo.DistBound() != 4*7 {
		t.Fatalf("maxW=%d bound=%d, want 7, 28", topo.MaxWeight(), topo.DistBound())
	}
	bound := topo.DistBound()
	var w Writer
	w.Reset(topo.N())
	tx := msgWDist{Dist: 18, Bound: bound}
	tx.MarshalWire(&w)
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	if got, want := w.Len(), BitsForID(bound+1); got != want {
		t.Fatalf("encoded %d bits, want %d", got, want)
	}
	if got, want := w.Len()+KindBits, tx.DeclaredBits(topo.N()); got != want {
		t.Fatalf("declared %d bits, encoded+tag %d", want, got)
	}
	// Unweighted topologies keep weights nil and bound n-1.
	ut, err := NewTopology(graph.Path(6))
	if err != nil {
		t.Fatal(err)
	}
	if ut.Weighted() || ut.NeighborWeights(2) != nil || ut.DistBound() != 5 {
		t.Fatalf("unweighted topology: weighted=%v weights=%v bound=%d",
			ut.Weighted(), ut.NeighborWeights(2), ut.DistBound())
	}
}

// TestWeightedResetParamsPanic asserts the Resettable contract: unknown
// params types are programmer errors and panic.
func TestWeightedResetParamsPanic(t *testing.T) {
	for _, nd := range []Resettable{
		NewWeightedSSSPNode(false, nil, 10, 4),
		NewWeightedMaxNode(-1, nil, 0, 0, 10),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%T: no panic on bad reset params", nd)
				}
			}()
			nd.ResetNode(0, struct{ X int }{1})
		}()
	}
}
