package congest

// This file defines the typed wire format every CONGEST message is encoded
// into. The engine never trusts a declared message size: each outbound
// message is marshalled into a packed bit arena, and all bandwidth
// accounting (Metrics.Bits, Metrics.MaxEdgeBits, bandwidth-violation
// errors, the cut-traffic transcripts of the lower-bound reductions) is
// derived from the encoded length. A message on the wire is
//
//	[ kind tag : KindBits bits ][ payload : message-specific bits ]
//
// with payload field widths fixed functions of n (the network size), so
// every message is O(log n) bits — the CONGEST premise, made literal.
// DESIGN.md ("Wire format") tabulates the encoding of every registered
// kind.

import (
	"fmt"
	"math/bits"
)

// Kind identifies a wire-message type. The tag is transmitted (and charged)
// with every message: a real network needs it to dispatch the payload, so
// the accounting includes it.
type Kind uint8

// KindBits is the width of the kind tag on the wire.
const KindBits = 5

// numKinds is the size of the kind space (tags must fit in KindBits bits).
const numKinds = 1 << KindBits

// The message kinds shipped with this package. Kinds 20..31 are free for
// external programs (see RegisterKind and the qcongest facade).
const (
	kindInvalid   Kind = iota
	KindActivate       // bfs.go: BFS activation / max-id flood (one id)
	KindChild          // bfs.go, approx.go: "you are my parent" (no payload)
	KindEccReport      // bfs.go: subtree max depth toward the root
	KindToken          // walk.go: DFS token step counter
	KindWave           // wave.go: (tau', delta) wave message
	KindMax            // aggregate.go: (value, witness) max convergecast
	KindBcast          // aggregate.go: root value broadcast
	KindNear           // ssp.go: (dist, src) nearest-member flood
	KindSum            // ssp.go: partial sum convergecast
	KindPair           // ssp.go: (src rank, dist) multi-source BFS pair
	KindSrcMax         // ssp.go: (src rank, subtree max) pipelined convergecast
	KindRaw            // wire.go: opaque filler of a declared width (tests, capacity probes)
	KindWDist          // weighted.go: Bellman–Ford weighted-distance relaxation
	KindWMax           // weighted.go: weighted max convergecast (value, witness)
	KindAdj            // triangle.go: adjacency announcement (one id)
	KindSide           // cut.go: mark-flood side bit
	KindCutSum         // cut.go: crossing-weight sum convergecast (Bound-ranged)
	KindSkelUp         // apsp.go: (slot, value) skeleton-vector gather toward the root
	KindSkelDown       // apsp.go: (slot, value) skeleton-vector broadcast down the tree
)

// WireMessage is a message that can be encoded to and decoded from the wire
// format. MarshalWire must write exactly the bits UnmarshalWire reads; the
// engine charges the encoded length (tag included) against the edge
// bandwidth. Field widths are derived from Writer.N / Reader.N, which the
// engine sets to the network size.
type WireMessage interface {
	WireKind() Kind
	MarshalWire(w *Writer)
	UnmarshalWire(r *Reader)
}

// BitsDeclarer is an optional interface for messages that additionally
// declare their size by formula (the pre-wire-format convention). The
// declared value is never used for accounting; under WithStrictAccounting
// the engine cross-checks it against the encoded length and fails the run
// on mismatch, which turns the declared formulas into verified
// documentation.
type BitsDeclarer interface {
	DeclaredBits(n int) int
}

// PackedWire is an optional fast-path interface for messages whose whole
// encoded form — kind tag plus payload — fits one uint64. PackWire returns
// the payload bits (field order and layout identical to MarshalWire: first
// field in the lowest bits) and the payload width; UnpackWire is the
// inverse. Both return ok=false for any value MarshalWire/UnmarshalWire
// would reject (out-of-range field, corrupt payload, wrong width), in which
// case the engine falls back to the generic codec path — which produces the
// canonical error — so the fast path never invents its own failure modes.
// MarshalWire stays the oracle: the differential tests assert the two
// encodings are bit-identical for every registered kind.
type PackedWire interface {
	PackWire(n int) (payload uint64, width int, ok bool)
	UnpackWire(n int, payload uint64, width int) bool
}

// kindInfo is one registry entry.
type kindInfo struct {
	name  string
	new   func() WireMessage
	width func(n int) int // fixed total encoded width (tag included); nil = dynamic
}

var kindRegistry [numKinds]kindInfo

// RegisterKind registers a message kind with a human-readable name and a
// factory producing a zero value to decode into. Registering an already-
// registered kind panics (programmer error). The engine refuses to transmit
// unregistered kinds.
//
// The registry is read without synchronization by engine workers, so all
// registration must happen before any network runs — in practice from
// init functions, the convention every kind in this repository follows.
func RegisterKind(k Kind, name string, factory func() WireMessage) {
	if k == kindInvalid || int(k) >= numKinds {
		panic(fmt.Sprintf("congest: kind %d out of range", k))
	}
	if kindRegistry[k].name != "" {
		panic(fmt.Sprintf("congest: kind %d registered twice (%s, %s)", k, kindRegistry[k].name, name))
	}
	kindRegistry[k] = kindInfo{name: name, new: factory}
}

// RegisterKindWidth records that every message of kind k encodes to exactly
// width(n) bits (kind tag included) on a network of n vertices — i.e. the
// width is a pure function of n, with no per-message parameters. The
// formula must equal the kind's DeclaredBits; the engine precomputes it per
// network so the strict-accounting cross-check on the packed encode path is
// one integer compare instead of an interface call. Kinds with
// message-dependent widths (Bound-parameterized codecs, RawMessage) must
// not register one. Like RegisterKind, call only from init functions.
func RegisterKindWidth(k Kind, width func(n int) int) {
	if !Registered(k) {
		panic(fmt.Sprintf("congest: width for unregistered kind %d", k))
	}
	if kindRegistry[k].width != nil {
		panic(fmt.Sprintf("congest: kind %d (%s) width registered twice", k, kindRegistry[k].name))
	}
	kindRegistry[k].width = width
}

// packedWidths precomputes, for network size n, the fixed total encoded
// width of every width-registered kind. Entry 0 means "no fixed width"
// (unregistered, dynamic, or wider than one word): the strict cross-check
// then takes the generic path.
func packedWidths(n int) (t [numKinds]uint8) {
	for k := range kindRegistry {
		if wf := kindRegistry[k].width; wf != nil {
			if wb := wf(n); wb > 0 && wb <= 64 {
				t[k] = uint8(wb)
			}
		}
	}
	return t
}

// Registered reports whether k has been registered.
func Registered(k Kind) bool {
	return int(k) < numKinds && kindRegistry[k].name != ""
}

// NewKindMessage returns a zero message of the registered kind k, or nil.
func NewKindMessage(k Kind) WireMessage {
	if !Registered(k) {
		return nil
	}
	return kindRegistry[k].new()
}

// String returns the registered name of the kind.
func (k Kind) String() string {
	if Registered(k) {
		return kindRegistry[k].name
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// RegisteredKinds returns all registered kinds in ascending order (used by
// the round-trip tests and diagnostics).
func RegisteredKinds() []Kind {
	var out []Kind
	for k := 1; k < numKinds; k++ {
		if kindRegistry[k].name != "" {
			out = append(out, Kind(k))
		}
	}
	return out
}

// Writer packs values into a little-endian bit stream over uint64 words.
// The zero value is ready after Reset. The engine keeps one Writer per
// worker as the round arena: encoded messages accumulate back to back and
// the words are recycled every round, so steady-state encoding allocates
// nothing.
type Writer struct {
	// N is the network size; codecs derive their field widths from it.
	N int

	words []uint64
	bits  int // write cursor
	err   error
}

// Reset clears the writer for a new round, recycling the word storage, and
// sets the network size used for field widths.
func (w *Writer) Reset(n int) {
	used := (w.bits + 63) / 64
	clear(w.words[:used])
	w.bits = 0
	w.N = n
	w.err = nil
}

// Len returns the number of bits written.
func (w *Writer) Len() int { return w.bits }

// Err returns the first encoding error (a value too wide for its field).
func (w *Writer) Err() error { return w.err }

// WriteUint appends the low `width` bits of v. Values that do not fit in
// the field are an encoding error: an honest encoder must never truncate.
func (w *Writer) WriteUint(v uint64, width int) {
	if w.err != nil {
		return
	}
	if width < 0 || width > 64 {
		w.err = fmt.Errorf("congest: field width %d out of [0,64]", width)
		return
	}
	if width < 64 && v>>uint(width) != 0 {
		w.err = fmt.Errorf("congest: value %d overflows %d-bit field", v, width)
		return
	}
	off := w.bits
	w.bits += width
	for need := (w.bits + 63) / 64; len(w.words) < need; {
		w.words = append(w.words, 0)
	}
	if width == 0 {
		return
	}
	i, sh := off/64, uint(off%64)
	w.words[i] |= v << sh
	if sh+uint(width) > 64 {
		w.words[i+1] |= v >> (64 - sh)
	}
}

// writeRaw appends the low `width` bits of v with no validation: the packed
// encode fast path, where the caller (Outbox.encode) already knows
// 0 < width <= 64 and that v has no bits at or above width. One straddling
// pair of word ORs replaces the per-field cursor walk of WriteUint.
func (w *Writer) writeRaw(v uint64, width int) {
	off := w.bits
	w.bits += width
	for need := (w.bits + 63) / 64; len(w.words) < need; {
		w.words = append(w.words, 0)
	}
	i, sh := off/64, uint(off%64)
	w.words[i] |= v << sh
	if sh+uint(width) > 64 {
		w.words[i+1] |= v >> (64 - sh)
	}
}

// WriteCount appends a non-negative counter in `width` bits. Negative
// values are an encoding error (reported as such, rather than as the
// huge-value overflow a bare uint64 conversion would produce).
func (w *Writer) WriteCount(v, width int) {
	if w.err != nil {
		return
	}
	if v < 0 {
		w.err = fmt.Errorf("congest: negative value %d in %d-bit counter field", v, width)
		return
	}
	w.WriteUint(uint64(v), width)
}

// WriteID appends a value in [0, bound) using BitsForID(bound) bits — the
// canonical encoding of "one of bound things" (vertex ids, distances,
// counters with a known cap). Negative values are an encoding error.
func (w *Writer) WriteID(v, bound int) {
	if w.err != nil {
		return
	}
	if v < 0 {
		w.err = fmt.Errorf("congest: negative value %d in id field", v)
		return
	}
	if v >= bound {
		w.err = fmt.Errorf("congest: value %d out of id range [0,%d)", v, bound)
		return
	}
	w.WriteUint(uint64(v), BitsForID(bound))
}

// view returns a read-only view of bits [off, off+nbits) of the stream. The
// returned view stays valid even if the writer's storage later grows (it
// references the backing array as of now, which already holds those bits).
func (w *Writer) view(off, nbits int) WireView {
	lo := off / 64
	hi := (off + nbits + 63) / 64
	return WireView{words: w.words[lo:hi], off: int32(off % 64), bits: int32(nbits)}
}

// Reader consumes a bit stream written by Writer. Reading past the end is
// an error (recorded, subsequent reads return zero).
type Reader struct {
	// N is the network size; codecs derive their field widths from it.
	N int

	words []uint64
	off   int // absolute read cursor in bits
	end   int // absolute end of the message in bits
	err   error
}

// Err returns the first decoding error (a read past the message end).
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.end - r.off }

// ReadUint consumes `width` bits and returns them as a value.
func (r *Reader) ReadUint(width int) uint64 {
	if r.err != nil {
		return 0
	}
	if width < 0 || width > 64 {
		r.err = fmt.Errorf("congest: field width %d out of [0,64]", width)
		return 0
	}
	if r.off+width > r.end {
		r.err = fmt.Errorf("congest: read of %d bits overruns message (%d left)", width, r.end-r.off)
		return 0
	}
	if width == 0 {
		return 0
	}
	i, sh := r.off/64, uint(r.off%64)
	v := r.words[i] >> sh
	if sh+uint(width) > 64 {
		v |= r.words[i+1] << (64 - sh)
	}
	if width < 64 {
		v &= (1 << uint(width)) - 1
	}
	r.off += width
	return v
}

// ReadID consumes an id field written by WriteID with the same bound. A
// decoded value outside [0, bound) is a decoding error — an honest encoder
// cannot produce it (WriteID validates the range), so it proves the payload
// is corrupt; reporting it here means malformed messages surface as Decode
// errors instead of leaking out-of-range ids into programs.
func (r *Reader) ReadID(bound int) int {
	v := int(r.ReadUint(BitsForID(bound)))
	if r.err == nil && v >= bound {
		r.err = fmt.Errorf("congest: decoded value %d out of id range [0,%d)", v, bound)
		return 0
	}
	return v
}

// WireView is a read-only window onto one encoded message (kind tag
// included) inside an engine arena. Views handed to observers are only
// valid for the duration of the callback round; copy the bits out (e.g.
// into a bitstring) to retain them.
// The struct is deliberately compact: every message buffered by the engine
// carries one.
type WireView struct {
	words []uint64
	off   int32 // bit offset of the message start within words[0]
	bits  int32 // encoded length, tag included
}

// Len returns the encoded length in bits, kind tag included.
func (v WireView) Len() int { return int(v.bits) }

// Bit returns bit i of the encoded message (0 = first bit of the tag).
func (v WireView) Bit(i int) bool {
	if i < 0 || i >= int(v.bits) {
		return false
	}
	p := int(v.off) + i
	return v.words[p/64]&(1<<(uint(p)%64)) != 0
}

// Kind decodes the kind tag.
func (v WireView) Kind() Kind {
	var r Reader
	v.payloadReader(&r, 0)
	r.off = int(v.off) // include the tag
	return Kind(r.ReadUint(KindBits))
}

// payloadReader points r at the payload (after the kind tag).
func (v WireView) payloadReader(r *Reader, n int) {
	*r = Reader{N: n, words: v.words, off: int(v.off) + KindBits, end: int(v.off) + int(v.bits)}
}

// word returns the whole encoded message — kind tag in the low KindBits,
// payload above it — as one value. Only valid when Len() <= 64; the decode
// fast path checks that before calling.
func (v WireView) word() uint64 {
	sh := uint(v.off)
	w := v.words[0] >> sh
	if int(v.off)+int(v.bits) > 64 {
		w |= v.words[1] << (64 - sh)
	}
	if v.bits < 64 {
		w &= 1<<uint(v.bits) - 1
	}
	return w
}

// BitsForID returns the number of bits needed to name one of n values:
// 0 when there is at most one value (nothing to distinguish), otherwise
// ceil(log2 n).
func BitsForID(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// RawMessage is an opaque payload of a declared width: Width zero bits
// followed by nothing the receiver interprets. It exists for capacity
// probes and engine tests (bandwidth violations with real encoded sizes)
// and is the one shipped kind whose size is an input, not a function of n.
type RawMessage struct {
	Width int
}

// WireKind implements WireMessage.
func (m *RawMessage) WireKind() Kind { return KindRaw }

// MarshalWire implements WireMessage.
func (m *RawMessage) MarshalWire(w *Writer) {
	for left := m.Width; left > 0; left -= 64 {
		chunk := left
		if chunk > 64 {
			chunk = 64
		}
		w.WriteUint(0, chunk)
	}
}

// UnmarshalWire implements WireMessage.
func (m *RawMessage) UnmarshalWire(r *Reader) {
	m.Width = r.Remaining()
	for left := m.Width; left > 0; left -= 64 {
		chunk := left
		if chunk > 64 {
			chunk = 64
		}
		r.ReadUint(chunk)
	}
}

// DeclaredBits implements BitsDeclarer.
func (m *RawMessage) DeclaredBits(n int) int { return KindBits + m.Width }

func init() {
	RegisterKind(KindRaw, "raw", func() WireMessage { return new(RawMessage) })
}
