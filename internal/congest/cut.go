package congest

// Tree-cut building blocks: the Evaluation of the minimum-tree-cut workload
// (internal/core.MinTreeCut). For an input vertex u0, the network computes
// the total weight of the edges crossing the bipartition
// (subtree(u0), rest) induced by the preprocessing BFS tree, in three fixed
// phases: a mark flood down the tree (every vertex re-broadcasts its
// current side bit each round, D+1 rounds, so marks reach depth D and the
// final round doubles as the side exchange), a local crossing-weight
// tally (each vertex charges the edges to differently-sided higher-id
// neighbors — every crossing edge counted exactly once), and a sum
// convergecast of the tallies to the leader. All three phases have
// input-independent round counts, the property the quantum layer needs.

import "fmt"

type (
	// msgSide carries one side bit of the mark flood (1 = inside the
	// subtree of the current evaluation's root).
	msgSide struct{ Marked bool }
	// msgCutSum carries a partial crossing-weight sum up the tree. Weighted
	// cut sums range over [0, Bound] where Bound is the topology's total
	// edge weight — wider than the unweighted msgSum field — so the width
	// is Bound-parameterized configuration like msgWDist, never transmitted.
	msgCutSum struct {
		Sum   int
		Bound int
	}
)

func (m *msgSide) WireKind() Kind { return KindSide }
func (m *msgSide) MarshalWire(w *Writer) {
	b := uint64(0)
	if m.Marked {
		b = 1
	}
	w.WriteUint(b, 1)
}
func (m *msgSide) UnmarshalWire(r *Reader) { m.Marked = r.ReadUint(1) == 1 }
func (m *msgSide) DeclaredBits(n int) int  { return KindBits + 1 }
func (m *msgSide) PackWire(n int) (uint64, int, bool) {
	if m.Marked {
		return 1, 1, true
	}
	return 0, 1, true
}
func (m *msgSide) UnpackWire(n int, p uint64, width int) bool {
	if width != 1 {
		return false
	}
	m.Marked = p == 1
	return true
}

func (m *msgCutSum) WireKind() Kind          { return KindCutSum }
func (m *msgCutSum) MarshalWire(w *Writer)   { w.WriteID(m.Sum, m.Bound+1) }
func (m *msgCutSum) UnmarshalWire(r *Reader) { m.Sum = r.ReadID(m.Bound + 1) }
func (m *msgCutSum) DeclaredBits(n int) int  { return KindBits + BitsForID(m.Bound+1) }

// The width is Bound-parameterized (no RegisterKindWidth), so under strict
// accounting the engine encodes these via the generic path; the packed pair
// still serves the non-strict encode and the receive-side decode.
func (m *msgCutSum) PackWire(n int) (uint64, int, bool) {
	if m.Bound < 0 || m.Sum < 0 || m.Sum > m.Bound {
		return 0, 0, false
	}
	return uint64(m.Sum), BitsForID(m.Bound + 1), true
}
func (m *msgCutSum) UnpackWire(n int, p uint64, width int) bool {
	if width != BitsForID(m.Bound+1) || (m.Bound >= 0 && p > uint64(m.Bound)) {
		return false
	}
	m.Sum = int(p)
	return true
}

func init() {
	RegisterKind(KindSide, "side", func() WireMessage { return new(msgSide) })
	RegisterKind(KindCutSum, "cutsum", func() WireMessage { return new(msgCutSum) })
	RegisterKindWidth(KindSide, func(n int) int { return KindBits + 1 })
}

// CutMarkNode runs the mark flood: the root starts marked, every vertex
// broadcasts its current side bit each round, and a vertex becomes marked
// when its tree parent reports marked. After Duration = D+1 rounds every
// vertex knows its own final side and the final side of every neighbor
// (sides stabilize within D rounds; the last broadcast is the exchange).
type CutMarkNode struct {
	Parent   int
	Duration int

	// Outputs.
	Marked       bool
	NeighborSide []bool // aligned with env.Neighbors; valid after the run

	finished bool
	tx, rx   msgSide
}

// NewCutMarkNode builds the program for one node; duration is D+1 where D
// is the tree depth bound (PreInfo.D).
func NewCutMarkNode(parent, degree, duration int) *CutMarkNode {
	return &CutMarkNode{
		Parent:       parent,
		Duration:     duration,
		NeighborSide: make([]bool, degree),
	}
}

// CutRoot is the Reset params of a mark-flood session: the subtree root of
// the next execution.
type CutRoot struct{ Root int }

// ResetNode implements Resettable.
func (c *CutMarkNode) ResetNode(v int, params any) {
	switch p := params.(type) {
	case nil:
		c.Marked = false
	case CutRoot:
		c.Marked = v == p.Root
	default:
		badResetParams("CutMarkNode", params)
	}
	clear(c.NeighborSide)
	c.finished = false
}

// Send implements Node: broadcast the current side bit, every round of the
// fixed schedule.
func (c *CutMarkNode) Send(env *Env, out *Outbox) {
	if c.finished || env.Round > c.Duration {
		return
	}
	c.tx.Marked = c.Marked
	out.Broadcast(env.Neighbors, &c.tx)
}

// Receive implements Node: the parent's bit propagates the mark; every
// neighbor's bit overwrites the recorded side, so after the final round the
// records hold the final sides.
func (c *CutMarkNode) Receive(env *Env, inbox []Inbound) {
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != KindSide || in.Decode(env, &c.rx) != nil {
			continue
		}
		j := neighborIndex(env.Neighbors, in.From)
		if j >= 0 {
			c.NeighborSide[j] = c.rx.Marked
		}
		if in.From == c.Parent && c.rx.Marked {
			c.Marked = true
		}
	}
	if env.Round >= c.Duration {
		c.finished = true
	}
}

// Done implements Node.
func (c *CutMarkNode) Done() bool { return c.finished }

// NextWake implements Scheduled: every vertex transmits every round of the
// fixed schedule.
func (c *CutMarkNode) NextWake(env *Env, round int) int {
	if c.finished {
		return NeverWake
	}
	return round + 1
}

// StateBits implements StateSizer: the side bit, the per-neighbor side
// records and the round timer.
func (c *CutMarkNode) StateBits() int { return 64 + len(c.NeighborSide) }

// neighborIndex locates id in the ascending neighbor list (binary search).
func neighborIndex(neighbors []int, id int) int {
	lo, hi := 0, len(neighbors)
	for lo < hi {
		mid := (lo + hi) / 2
		if neighbors[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(neighbors) && neighbors[lo] == id {
		return lo
	}
	return -1
}

// CutSumNode convergecasts the sum of Bound-ranged values toward the tree
// root — the weighted counterpart of ConvergecastSumNode, carrying values
// up to the topology's total edge weight instead of 2*BitsForID(n) bits.
type CutSumNode struct {
	Parent   int
	Children []int
	Value    int
	Bound    int

	// Output (meaningful at the root).
	Sum int

	received int
	sent     bool

	tx, rx msgCutSum
}

// NewCutSumNode builds the program for one node.
func NewCutSumNode(parent int, children []int, value, bound int) *CutSumNode {
	return &CutSumNode{
		Parent:   parent,
		Children: append([]int(nil), children...),
		Value:    value,
		Bound:    bound,
		Sum:      value,
		rx:       msgCutSum{Bound: bound},
	}
}

// CutSumInputs is the Reset params of a cut-sum session: the per-vertex
// crossing-weight tallies of the next execution.
type CutSumInputs struct{ Values []int }

// ResetNode implements Resettable.
func (c *CutSumNode) ResetNode(v int, params any) {
	switch p := params.(type) {
	case nil:
	case CutSumInputs:
		c.Value = p.Values[v]
	default:
		badResetParams("CutSumNode", params)
	}
	c.Sum = c.Value
	c.received = 0
	c.sent = false
}

// Send implements Node.
func (c *CutSumNode) Send(env *Env, out *Outbox) {
	if c.sent || c.received < len(c.Children) {
		return
	}
	c.sent = true
	if c.Parent < 0 {
		return
	}
	c.tx = msgCutSum{Sum: c.Sum, Bound: c.Bound}
	out.Put(c.Parent, &c.tx)
}

// Receive implements Node.
func (c *CutSumNode) Receive(env *Env, inbox []Inbound) {
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != KindCutSum || in.Decode(env, &c.rx) != nil {
			continue
		}
		c.received++
		c.Sum += c.rx.Sum
	}
}

// Done implements Node.
func (c *CutSumNode) Done() bool { return c.sent }

// NextWake implements Scheduled: transmit once, as soon as every child has
// reported (leaves in round 1).
func (c *CutSumNode) NextWake(env *Env, round int) int {
	if c.sent {
		return NeverWake
	}
	if c.received >= len(c.Children) {
		return round + 1
	}
	return NeverWake
}

// StateBits implements StateSizer.
func (c *CutSumNode) StateBits() int { return 3 * 64 }

// TotalWeight returns the sum of all edge weights (each edge once) — the
// range bound of cut sums.
func (t *Topology) TotalWeight() int {
	total := 0
	for v := 0; v < t.n; v++ {
		ws := t.NeighborWeights(v)
		for i, nb := range t.Neighbors(v) {
			if v < nb {
				if ws == nil {
					total++
				} else {
					total += ws[i]
				}
			}
		}
	}
	return total
}

// CutSession is the reusable Evaluation of the minimum-tree-cut workload:
// Eval(u0) computes the total weight of the edges crossing
// (subtree(u0), rest) on the preprocessing tree. Mark flood and sum
// convergecast both run fixed schedules, so the round count never depends
// on u0.
type CutSession struct {
	mark   *Session
	sum    *Session
	topo   *Topology
	leader int

	duration int
	vals     []int
}

// NewCutSession builds the mark-flood + sum-convergecast pair on the tree
// described by info.
func NewCutSession(topo *Topology, info *PreInfo, opts ...Option) *CutSession {
	duration := info.D + 1
	bound := topo.TotalWeight()
	return &CutSession{
		mark: NewSession(topo, func(v int) Node {
			return NewCutMarkNode(info.Parent[v], topo.Degree(v), duration)
		}, opts...),
		sum: NewSession(topo, func(v int) Node {
			return NewCutSumNode(info.Parent[v], info.Children[v], 0, bound)
		}, opts...),
		topo:     topo,
		leader:   info.Leader,
		duration: duration,
		vals:     make([]int, topo.N()),
	}
}

// Eval computes the crossing weight of the tree cut rooted at u0.
func (cs *CutSession) Eval(u0 int) (int, Metrics, error) {
	var total Metrics
	if err := cs.mark.Reset(CutRoot{Root: u0}); err != nil {
		return 0, total, err
	}
	if err := cs.mark.Run(cs.duration + 4); err != nil {
		return 0, total, fmt.Errorf("cut mark flood: %w", err)
	}
	total.Add(cs.mark.Metrics())
	// Local tally: vertex v charges each crossing edge to its smaller-id
	// endpoint, so every crossing edge contributes exactly once.
	for v := range cs.vals {
		mn := cs.mark.Node(v).(*CutMarkNode)
		ws := cs.topo.NeighborWeights(v)
		tally := 0
		for i, nb := range cs.topo.Neighbors(v) {
			if v < nb && mn.NeighborSide[i] != mn.Marked {
				if ws == nil {
					tally++
				} else {
					tally += ws[i]
				}
			}
		}
		cs.vals[v] = tally
	}
	if err := cs.sum.Reset(CutSumInputs{Values: cs.vals}); err != nil {
		return 0, total, err
	}
	if err := cs.sum.Run(4*len(cs.vals) + 16); err != nil {
		return 0, total, fmt.Errorf("cut convergecast: %w", err)
	}
	total.Add(cs.sum.Metrics())
	return cs.sum.Node(cs.leader).(*CutSumNode).Sum, total, nil
}

// Clone builds an independent cut session over the same shared topology.
// Like Session.Clone, it refuses when the sessions carry an observer.
func (cs *CutSession) Clone() (*CutSession, error) {
	mark, err := cs.mark.Clone()
	if err != nil {
		return nil, err
	}
	sum, err := cs.sum.Clone()
	if err != nil {
		return nil, err
	}
	return &CutSession{
		mark:     mark,
		sum:      sum,
		topo:     cs.topo,
		leader:   cs.leader,
		duration: cs.duration,
		vals:     make([]int, len(cs.vals)),
	}, nil
}

// Close releases both sessions' engines.
func (cs *CutSession) Close() {
	cs.mark.Close()
	cs.sum.Close()
}
