package congest

import (
	"math"
	"strings"
	"testing"

	"qcongest/internal/graph"
)

// skelFixture builds topology + preprocessing + a full-vertex skeleton
// oracle (S = V, hop budget h) — the unconditionally exact configuration.
func skelFixture(t *testing.T, g *graph.Graph, h, lanes int) (*Topology, *PreInfo, *SkelOracle) {
	t.Helper()
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	info, _, err := PreprocessOn(topo, WithStrictAccounting())
	if err != nil {
		t.Fatal(err)
	}
	skeleton := make([]int, g.N())
	for v := range skeleton {
		skeleton[v] = v
	}
	o, err := NewSkelOracle(topo, info, skeleton, h, lanes, WithStrictAccounting())
	if err != nil {
		t.Fatal(err)
	}
	return topo, info, o
}

// TestSkelOracleMatchesDijkstra checks distance rows and eccentricities of
// the skeleton oracle against the sequential Dijkstra oracle for every
// source, across hop budgets and worker counts, and that the per-Evaluation
// round count is fixed across sources (input-independence — the property
// the query framework asserts).
func TestSkelOracleMatchesDijkstra(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := weightedTestGraph(t, 22, seed)
		for _, h := range []int{1, 3, g.N()} {
			for _, workers := range []int{1, 8} {
				_, _, o := skelFixture(t, g, h, 1)
				es := o.NewEvalSession(WithWorkers(workers), WithStrictAccounting())
				row := make([]int, g.N())
				fixedRounds := -1
				for src := 0; src < g.N(); src += 3 {
					want := g.Dijkstra(src)
					ecc, m, err := es.Eval(src, row)
					if err != nil {
						t.Fatalf("seed %d h %d workers %d src %d: %v", seed, h, workers, src, err)
					}
					wantEcc := 0
					for v, d := range want {
						if d != row[v] {
							t.Fatalf("seed %d h %d src %d: row[%d] = %d, want %d", seed, h, src, v, row[v], d)
						}
						if d > wantEcc {
							wantEcc = d
						}
					}
					if ecc != wantEcc {
						t.Fatalf("seed %d h %d src %d: ecc %d, want %d", seed, h, src, ecc, wantEcc)
					}
					if fixedRounds == -1 {
						fixedRounds = m.Rounds
					} else if m.Rounds != fixedRounds {
						t.Fatalf("seed %d h %d src %d: %d rounds, want fixed %d (input-independence)",
							seed, h, src, m.Rounds, fixedRounds)
					}
				}
				es.Close()
			}
		}
	}
}

// TestSkelOracleLaneInitBitIdentical checks the lane-fused init path:
// batching the skeleton relaxations through MultiSession must leave
// InitRounds and every Evaluation bit-identical to the solo init.
func TestSkelOracleLaneInitBitIdentical(t *testing.T) {
	g := weightedTestGraph(t, 20, 7)
	_, _, solo := skelFixture(t, g, 3, 1)
	for _, lanes := range []int{2, 8, 64} { // 64 > |S| exercises the clamp+pad path
		_, _, fused := skelFixture(t, g, 3, lanes)
		if fused.InitRounds != solo.InitRounds {
			t.Fatalf("lanes %d: InitRounds %d, want solo %d", lanes, fused.InitRounds, solo.InitRounds)
		}
		se := solo.NewEvalSession(WithStrictAccounting())
		fe := fused.NewEvalSession(WithStrictAccounting())
		for src := 0; src < g.N(); src += 7 {
			a, am, err := se.Eval(src, nil)
			if err != nil {
				t.Fatal(err)
			}
			b, bm, err := fe.Eval(src, nil)
			if err != nil {
				t.Fatal(err)
			}
			if a != b || am != bm {
				t.Fatalf("lanes %d src %d: fused (%d, %+v) != solo (%d, %+v)", lanes, src, b, bm, a, am)
			}
		}
		se.Close()
		fe.Close()
	}
}

// TestMultiSkelEvalMatchesSolo checks that every lane of the fused
// evaluation session is bit-identical — eccentricity, distance row, and
// Metrics — to a solo SkelEvalSession Eval.
func TestMultiSkelEvalMatchesSolo(t *testing.T) {
	g := weightedTestGraph(t, 18, 11)
	_, _, o := skelFixture(t, g, 2, 1)
	solo := o.NewEvalSession(WithStrictAccounting())
	defer solo.Close()
	for _, lanes := range []int{2, 5} {
		me := o.NewMultiEvalSession(lanes, WithStrictAccounting())
		rows := make([][]int, lanes)
		for l := range rows {
			rows[l] = make([]int, g.N())
		}
		soloRow := make([]int, g.N())
		for base := 0; base+lanes <= g.N(); base += lanes {
			sources := make([]int, lanes)
			for l := range sources {
				sources[l] = base + l
			}
			vals, mets, err := me.EvalBatch(sources, rows)
			if err != nil {
				t.Fatalf("lanes %d batch at %d: %v", lanes, base, err)
			}
			for l, src := range sources {
				want, wm, err := solo.Eval(src, soloRow)
				if err != nil {
					t.Fatal(err)
				}
				if vals[l] != want || mets[l] != wm {
					t.Fatalf("lanes %d src %d: lane (%d, %+v) != solo (%d, %+v)",
						lanes, src, vals[l], mets[l], want, wm)
				}
				for v := range soloRow {
					if rows[l][v] != soloRow[v] {
						t.Fatalf("lanes %d src %d: row[%d] = %d, want %d", lanes, src, v, rows[l][v], soloRow[v])
					}
				}
			}
		}
		me.Close()
	}
}

// TestSkelOracleSparseSkeletonError checks the documented failure mode: a
// skeleton that misses every h-hop window of some shortest path yields an
// explicit error, never a wrong distance. On a path graph, skeleton {0}
// with h = 1 cannot reach the far end.
func TestSkelOracleSparseSkeletonError(t *testing.T) {
	g := graph.New(6)
	for v := 0; v+1 < 6; v++ {
		if err := g.AddWeightedEdge(v, v+1, 2); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	info, _, err := PreprocessOn(topo)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewSkelOracle(topo, info, []int{0}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	es := o.NewEvalSession()
	defer es.Close()
	if _, _, err := es.Eval(5, nil); err == nil || !strings.Contains(err.Error(), "sample too sparse") {
		t.Fatalf("sparse skeleton: err %v, want unreached-vertex error", err)
	}
}

// TestSkelOracleValidation covers NewSkelOracle's parameter checks.
func TestSkelOracleValidation(t *testing.T) {
	g := weightedTestGraph(t, 8, 1)
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	info, _, err := PreprocessOn(topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		skeleton []int
		h        int
	}{
		{"hop budget zero", []int{0}, 0},
		{"hop budget over n", []int{0}, 9},
		{"empty skeleton", nil, 1},
		{"oversized skeleton", make([]int, 9), 1},
		{"vertex out of range", []int{0, 8}, 1},
		{"duplicate vertex", []int{3, 3}, 1},
	} {
		if _, err := NewSkelOracle(topo, info, tc.skeleton, tc.h, 1); err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
	}
}

// TestSkelOracleSingleVertex checks the n = 1 degenerate case end to end.
func TestSkelOracleSingleVertex(t *testing.T) {
	g := graph.New(1)
	_, _, o := skelFixture(t, g, 1, 1)
	es := o.NewEvalSession(WithStrictAccounting())
	defer es.Close()
	row := make([]int, 1)
	ecc, _, err := es.Eval(0, row)
	if err != nil {
		t.Fatal(err)
	}
	if ecc != 0 || row[0] != 0 {
		t.Fatalf("n=1: ecc %d row %v, want 0 and [0]", ecc, row)
	}
}

// TestDistBoundOverflowGuard checks the Topology build-time overflow guard
// on (n-1)*MaxWeight with near-limit weight tables: the largest safe weight
// passes and one past it is rejected. (NewTopologyFromCSR applies the same
// guard, but CSR weights are int32, so it is only reachable on 32-bit
// platforms.)
func TestDistBoundOverflowGuard(t *testing.T) {
	const n = 3
	limit := (math.MaxInt - 2) / (n - 1)
	for _, tc := range []struct {
		name string
		w    int
		ok   bool
	}{
		{"small weight", 9, true},
		{"largest safe weight", limit, true},
		{"one past the limit", limit + 1, false},
		{"max int weight", math.MaxInt, false},
	} {
		g := graph.New(n)
		if err := g.AddWeightedEdge(0, 1, tc.w); err != nil {
			t.Fatal(err)
		}
		if err := g.AddWeightedEdge(1, 2, tc.w); err != nil {
			t.Fatal(err)
		}
		topo, err := NewTopology(g)
		if tc.ok {
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if topo.DistBound() != (n-1)*tc.w {
				t.Fatalf("%s: DistBound %d, want %d", tc.name, topo.DistBound(), (n-1)*tc.w)
			}
		} else if err == nil || !strings.Contains(err.Error(), "overflows") {
			t.Fatalf("%s: err %v, want overflow error", tc.name, err)
		}
	}
}

// TestSkelOracleBoundCap checks that NewSkelOracle rejects topologies whose
// distance bound would overflow the oracle's clamped arithmetic.
func TestSkelOracleBoundCap(t *testing.T) {
	g := graph.New(2)
	if err := g.AddWeightedEdge(0, 1, skelMaxBound+1); err != nil {
		t.Fatal(err)
	}
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	info, _, err := PreprocessOn(topo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSkelOracle(topo, info, []int{0, 1}, 1, 1); err == nil {
		t.Fatal("bound above skelMaxBound: no error")
	}
}
