package congest

// Lane-fused execution: a MultiSession runs k independent Evaluations (k
// "lanes") in lockstep through a single scheduler pass. Every quantum
// algorithm in this repository is a loop of independent Evaluations over the
// same Topology — ExactDiameter runs Õ(sqrt(nD)) of them, Eccentricities
// runs n — and running each on its own cloned Session repeats the whole
// per-round fixed cost (frontier iteration, barrier traffic, CSR row loads)
// once per Evaluation. The lane engine amortizes it: one hierarchical-bitset
// frontier iteration per round over the union of the lane frontiers, one
// Env/CSR row load per visited vertex feeding k per-lane node states.
//
// # What is shared and what is per-lane
//
// Shared across lanes: the Topology (read-only), the Env array (vertex id,
// n, neighbor views, the global round number, the per-vertex decode
// scratch — safe because lanes at one vertex execute serially on the
// vertex's owning worker), the merged-inbox scratch, and the worker pool
// with its round barriers.
//
// Per-lane: the node programs, the frontier bookkeeping (a full
// frontierState per lane: cur/nxt bitsets, wake buckets, incremental Done
// counts, pre-frontier state samples), one Outbox per (worker, lane) — so
// wire arenas, delivery buffers, per-edge ledgers and metric shards are as
// private as in a solo Session — the Metrics, and the optional Observer.
// Bits/Rounds/StateBits accounting is therefore exactly per-Evaluation.
//
// # Lockstep rounds and per-lane accounting
//
// All lanes advance through one global round counter. In global round r,
// a lane is "active" when its own frontier is non-empty; only active lanes
// execute the half-rounds, but every live lane accounts round r exactly as
// its solo engine would:
//
//   - active lane: Rounds = r, traffic folded from its own outboxes,
//     DroppedRounds++ iff it sent nothing — identical to the solo barrier;
//   - idle lane (empty frontier, a wake pending by maxRounds):
//     DroppedRounds++, Rounds = r — the solo engine's O(1) gap skip
//     telescopes to exactly these per-round totals;
//   - idle lane with no wake ever due (or none by maxRounds): fails now
//     with the solo engine's timeout error and gap accounting;
//   - finished lane (no not-Done vertices at the round boundary): stops
//     participating with its Metrics frozen — the solo run would have
//     returned at the same boundary.
//
// When every live lane is idle the engine skips the whole gap in O(1),
// accounting each lane's skipped rounds identically. A lane that fails
// validation in the send half keeps its canonical error (smallest sender
// id, exactly the solo selection), does not run the receive half, and goes
// dead without disturbing the other lanes.
//
// Because each lane's frontier evolution, delivery buffers, wake
// registrations and metric folds are all computed from that lane's own
// state, a lane's outputs, Metrics, observer wire trace and error are
// bit-for-bit identical to a solo Session run of the same program family —
// for every worker count, every lane count and either scheduler. The
// lane-equivalence suite (lanes_test.go) asserts exactly that. A lane whose
// network resolves to the dense strategy (WithScheduler(SchedulerDense), or
// no program implements Scheduled) runs with an all-vertices always-on set
// and no NextWake calls, which reproduces dense execution bit for bit.
//
// DESIGN.md ("Lane-fused execution") documents the layout and the
// accounting argument in full.

import (
	"fmt"
	"math/bits"
	"sync"
)

// lane is one Evaluation slot of a MultiSession.
type lane struct {
	idx int
	nw  *Network

	fr    *frontierState
	dense bool // runs with the all-vertices always-on set, no NextWake calls

	rs     []Resettable
	vetted bool

	armed bool  // Reset since the last Run: participates in the next Run
	err   error // this lane's outcome of the last Run it participated in

	// Per-round flags maintained by the engine.
	empty    bool // this round's send half produced no messages
	deadSend bool // failed validation in this round's send half

	outs [][]stagedMsg // per-sender emissions, kept only for the observer
}

// MultiSession runs up to Lanes() independent executions of a program
// family in lockstep through one lane-fused engine pass (see the file
// comment). Like a Session, it is built once and recycled: each batch is a
// per-lane Reset followed by one Run, and steady-state batches allocate
// almost nothing. A MultiSession is not safe for concurrent use; distinct
// MultiSessions (e.g. pooled batch contexts) may run concurrently.
type MultiSession struct {
	topo  *Topology
	lanes []*lane
	e     *multiEngine

	armedScratch []*lane
	closed       bool
}

// NewMultiSession builds a lane-fused session with `lanes` lanes over topo;
// lane l runs makeNode(l, v) at vertex v (the same family with per-lane
// parameters, in every intended use). The opts apply to every lane —
// including WithObserver, whose callback would then see every lane's
// traffic; use SetLaneObserver for per-lane traces.
func NewMultiSession(topo *Topology, lanes int, makeNode func(lane, v int) Node, opts ...Option) *MultiSession {
	if lanes < 1 {
		lanes = 1
	}
	ms := &MultiSession{topo: topo, lanes: make([]*lane, lanes)}
	for l := 0; l < lanes; l++ {
		li := l
		ms.lanes[l] = &lane{
			idx: l,
			nw:  NewNetworkOn(topo, func(v int) Node { return makeNode(li, v) }, opts...),
		}
	}
	return ms
}

// Lanes returns the lane count.
func (ms *MultiSession) Lanes() int { return len(ms.lanes) }

// Topology returns the shared topology.
func (ms *MultiSession) Topology() *Topology { return ms.topo }

// Node returns the program at vertex v of the given lane.
func (ms *MultiSession) Node(lane, v int) Node { return ms.lanes[lane].nw.nodes[v] }

// Metrics returns the given lane's metrics of the execution since its last
// Reset — exactly the Metrics a solo Session run would report.
func (ms *MultiSession) Metrics(lane int) Metrics { return ms.lanes[lane].nw.metrics }

// LaneErr returns the given lane's outcome of the last Run it participated
// in (nil: quiesced normally).
func (ms *MultiSession) LaneErr(lane int) error { return ms.lanes[lane].err }

// SetLaneObserver installs a per-lane observer, so each lane's wire trace
// stays separate (the Session.Clone shared-observer footgun does not arise).
// It must be called before the first Run; the engine fixes its observer
// wiring when it is built.
func (ms *MultiSession) SetLaneObserver(lane int, fn Observer) error {
	if ms.e != nil {
		return fmt.Errorf("congest: SetLaneObserver after the engine was built (first Run)")
	}
	if lane < 0 || lane >= len(ms.lanes) {
		return fmt.Errorf("congest: SetLaneObserver: lane %d out of range [0, %d)", lane, len(ms.lanes))
	}
	ms.lanes[lane].nw.observer = fn
	return nil
}

// Reset prepares one lane for the next Run: its node programs are restored
// to their constructed state (receiving params, see Resettable) and its
// metrics are zeroed. Only lanes Reset since the last Run participate in
// the next Run — a partial batch arms fewer lanes than Lanes().
func (ms *MultiSession) Reset(lane int, params any) error {
	if ms.closed {
		return fmt.Errorf("congest: Reset on a closed MultiSession")
	}
	if lane < 0 || lane >= len(ms.lanes) {
		return fmt.Errorf("congest: Reset: lane %d out of range [0, %d)", lane, len(ms.lanes))
	}
	la := ms.lanes[lane]
	if !la.vetted {
		rs := make([]Resettable, len(la.nw.nodes))
		for v, nd := range la.nw.nodes {
			r, ok := nd.(Resettable)
			if !ok {
				return fmt.Errorf("congest: lane %d node %d (%T) does not implement Resettable", lane, v, nd)
			}
			rs[v] = r
		}
		la.rs = rs
		la.vetted = true
	}
	for v, r := range la.rs {
		r.ResetNode(v, params)
	}
	la.nw.metrics = Metrics{}
	la.armed = true
	la.err = nil
	return nil
}

// Run executes every armed lane in lockstep until each has quiesced or
// failed, consuming the armed set (each lane needs a Reset before the next
// Run, like a Session). It returns the smallest-index lane's error, nil
// when every lane quiesced; per-lane outcomes are available via LaneErr.
func (ms *MultiSession) Run(maxRounds int) error {
	if ms.closed {
		return fmt.Errorf("congest: Run on a closed MultiSession")
	}
	armed := ms.armedScratch[:0]
	for _, la := range ms.lanes {
		if la.armed {
			armed = append(armed, la)
		}
	}
	ms.armedScratch = armed
	if len(armed) == 0 {
		return fmt.Errorf("congest: MultiSession.Run with no lane Reset")
	}
	if ms.e == nil {
		ms.e = newMultiEngine(ms)
	}
	ms.e.execute(armed, maxRounds)
	for _, la := range armed {
		if la.err != nil {
			return la.err
		}
	}
	return nil
}

// Close stops the engine's worker goroutines. The MultiSession cannot run
// again afterwards. Close is idempotent.
func (ms *MultiSession) Close() {
	if ms.closed {
		return
	}
	ms.closed = true
	if ms.e != nil {
		ms.e.stop()
		ms.e = nil
	}
}

// Lane-engine phase identifiers (the multi engine owns its worker loop).
const (
	mphaseSend = iota
	mphaseRecv
)

// laneWorkerState is one worker's private slice of the lane-engine state:
// one Outbox per lane plus per-lane receive-half accumulators, and the
// hot-loop scratch that keeps the fused shard passes free of repeated
// pointer chains (see sendShardM).
type laneWorkerState struct {
	obs      []*Outbox
	heads    []int32   // k-way chain-merge cursors, one per worker
	inbox    []Inbound // reusable materialized inbox (one vertex/lane at a time)
	maxState []int     // per-lane receive-half maxima
	maxInbox []int

	// Per-shard-call hoists, indexed by position in e.act (not lane id).
	// Re-filled at the top of every shard pass; capacity is fixed at the
	// lane count so steady-state rounds never allocate.
	lobs   []*Outbox        // this worker's outbox per active lane
	lnodes [][]Node         // node programs per active lane
	lfr    []*frontierState // frontier state per active lane
	ldone  [][]bool         // fr.done per active lane
	lsch   [][]Scheduled    // fr.scheds per active lane
	lsiz   [][]StateSizer   // fr.sizers per active lane
	curW   [][]uint64       // cur.words per active lane
	nxtW   [][]uint64       // nxt.words per active lane (receive half)
	curS   [][]uint64       // cur.sum per active lane
	nxtS   [][]uint64       // nxt.sum per active lane (receive half)
	lobx   []*Outbox        // delivery outboxes, active-lane-major, worker-minor
	lw     []uint64         // per-lane membership word at the current word index
}

// multiEngine is the persistent lane-fused execution engine of a
// MultiSession: the lockstep counterpart of `engine`, with per-lane
// frontier state and per-(worker, lane) outboxes. Everything is allocated
// once and recycled across rounds and Runs.
type multiEngine struct {
	ms    *MultiSession
	n, k  int
	round int

	geo *frontierState // shard geometry (identical for every lane)

	envs []Env
	ws   []laneWorkerState

	act []*lane // lanes executing the current round's phases, ascending lane order

	liveScratch []*lane

	phase []chan int // per-worker phase mailbox (k > 1 only)
	wg    sync.WaitGroup
}

func newMultiEngine(ms *MultiSession) *multiEngine {
	n := ms.topo.n
	e := &multiEngine{ms: ms, n: n, k: ms.lanes[0].nw.EffectiveWorkers()}
	e.envs = make([]Env, n)
	for v := 0; v < n; v++ {
		e.envs[v] = Env{ID: v, N: n, Neighbors: ms.topo.neighbors[v], rd: Reader{N: n}}
	}
	e.act = make([]*lane, 0, len(ms.lanes))
	e.liveScratch = make([]*lane, 0, len(ms.lanes))
	for _, la := range ms.lanes {
		// Per-lane frontier bookkeeping. A lane whose network resolves to
		// the dense strategy runs through the same machinery with every
		// vertex always-on and no Scheduled contract — which executes every
		// vertex every round and never calls NextWake, i.e. dense execution
		// exactly (see the file comment).
		la.dense = la.nw.EffectiveScheduler() == SchedulerDense
		var always []int32
		if la.dense {
			always = make([]int32, n)
			for v := range always {
				always[v] = int32(v)
			}
		} else {
			for v, nd := range la.nw.nodes {
				if _, ok := nd.(Scheduled); !ok {
					always = append(always, int32(v))
				}
			}
		}
		la.fr = newFrontierState(n, e.k, always, la.nw.nodes)
		if la.dense {
			for v := range la.fr.scheds {
				la.fr.scheds[v] = nil
			}
		}
		if la.nw.observer != nil {
			la.outs = make([][]stagedMsg, n)
		}
	}
	e.geo = ms.lanes[0].fr
	e.ws = make([]laneWorkerState, e.k)
	for w := 0; w < e.k; w++ {
		st := &e.ws[w]
		st.obs = make([]*Outbox, len(ms.lanes))
		for _, la := range ms.lanes {
			st.obs[la.idx] = newOutbox(la.nw, n)
		}
		st.heads = make([]int32, e.k)
		st.maxState = make([]int, len(ms.lanes))
		st.maxInbox = make([]int, len(ms.lanes))
		st.lobs = make([]*Outbox, 0, len(ms.lanes))
		st.lnodes = make([][]Node, 0, len(ms.lanes))
		st.lfr = make([]*frontierState, 0, len(ms.lanes))
		st.ldone = make([][]bool, 0, len(ms.lanes))
		st.lsch = make([][]Scheduled, 0, len(ms.lanes))
		st.lsiz = make([][]StateSizer, 0, len(ms.lanes))
		st.curW = make([][]uint64, 0, len(ms.lanes))
		st.nxtW = make([][]uint64, 0, len(ms.lanes))
		st.curS = make([][]uint64, 0, len(ms.lanes))
		st.nxtS = make([][]uint64, 0, len(ms.lanes))
		st.lobx = make([]*Outbox, 0, len(ms.lanes)*e.k)
		st.lw = make([]uint64, len(ms.lanes))
	}
	if e.k > 1 {
		e.phase = make([]chan int, e.k)
		for w := 0; w < e.k; w++ {
			e.phase[w] = make(chan int, 1)
			go e.worker(w)
		}
	}
	return e
}

func (e *multiEngine) dispatch(w, ph int) {
	switch ph {
	case mphaseSend:
		e.sendShardM(w)
	case mphaseRecv:
		e.recvShardM(w)
	}
}

func (e *multiEngine) worker(w int) {
	for ph := range e.phase[w] {
		e.dispatch(w, ph)
		e.wg.Done()
	}
}

// runPhase executes one fused half-round on every worker; tiny rounds run
// inline on the coordinator like runPhaseF (the shard assignment is
// identical either way, so the choice is invisible in the results).
func (e *multiEngine) runPhase(ph, size int) {
	if e.k == 1 || size < minVerticesPerWorker {
		for w := 0; w < e.k; w++ {
			e.dispatch(w, ph)
		}
		return
	}
	e.wg.Add(e.k)
	for _, ch := range e.phase {
		ch <- ph
	}
	e.wg.Wait()
}

func (e *multiEngine) stop() {
	for _, ch := range e.phase {
		close(ch)
	}
}

func noQuiescence(maxRounds int) error {
	return fmt.Errorf("congest: no quiescence after %d rounds", maxRounds)
}

// failIdleLane applies the solo engine's timeout-in-gap outcome to a lane
// whose frontier is empty with no wake due by maxRounds at `round`.
func failIdleLane(la *lane, round, maxRounds int) {
	if maxRounds >= round {
		m := &la.nw.metrics
		m.DroppedRounds += maxRounds - round + 1
		m.Rounds = maxRounds
		if la.fr.preMax > m.MaxStateBits {
			m.MaxStateBits = la.fr.preMax
		}
	}
	la.err = noQuiescence(maxRounds)
}

// execute runs the armed lanes in lockstep. Per-lane outcomes land in
// lane.err; Metrics accumulate per lane exactly as a solo run would (see
// the file comment for the accounting argument).
func (e *multiEngine) execute(armed []*lane, maxRounds int) {
	// Per-lane init: reset the frontier state (an O(1) epoch bump), emit the
	// observer run boundary, and run the fused initial scan — the solo
	// engine's pre-run Done probe plus the initial NextWake registrations.
	for _, la := range armed {
		la.armed = false
		la.empty, la.deadSend = false, false
		fr := la.fr
		fr.reset()
		if la.nw.observer != nil {
			la.nw.observer(0, -1, -1, 0, WireView{})
		}
		for v, nd := range la.nw.nodes {
			d := nd.Done()
			fr.done[v] = d
			if !d {
				fr.notDone++
			}
			if sc := fr.scheds[v]; sc != nil {
				e.envs[v].Round = 0
				if fr.register(fr.shardOf(int32(v)), int32(v), sc.NextWake(&e.envs[v], 0), 0) {
					fr.nxtCount++
				}
			}
		}
	}

	live := append(e.liveScratch[:0], armed...)
	defer func() { e.liveScratch = live[:0] }()
	round := 1
	for {
		// Lanes with no not-Done vertices at this boundary have quiesced —
		// the solo run returns here with the same frozen Metrics. Survivors
		// build their frontier for this round in the same pass.
		nl := live[:0]
		allIdle := true
		for _, la := range live {
			fr := la.fr
			if fr.notDone == 0 {
				continue
			}
			nl = append(nl, la)
			fr.build(round)
			if !fr.preSampled {
				fr.samplePre()
			}
			if fr.curCount > 0 {
				allIdle = false
			}
		}
		live = nl
		if len(live) == 0 {
			return
		}

		if allIdle {
			// Global gap: skip to the earliest wake of any lane in O(1),
			// accounting each lane's skipped rounds exactly like its solo
			// gap skip; lanes with no wake due by maxRounds fail now with
			// the solo timeout outcome.
			w := 0
			nl := live[:0]
			for _, la := range live {
				lw := la.fr.nextWakeRound()
				if lw == 0 || lw > maxRounds {
					failIdleLane(la, round, maxRounds)
					continue
				}
				if w == 0 || lw < w {
					w = lw
				}
				nl = append(nl, la)
			}
			live = nl
			if len(live) == 0 {
				return
			}
			for _, la := range live {
				m := &la.nw.metrics
				m.DroppedRounds += w - round
				m.Rounds = w - 1
				if la.fr.preMax > m.MaxStateBits {
					m.MaxStateBits = la.fr.preMax
				}
			}
			round = w
			continue
		}

		// Mixed round: idle lanes account this one round as an empty dense
		// round (or fail if no wake can ever come), active lanes execute.
		act := e.act[:0]
		nl = live[:0]
		for _, la := range live {
			if la.fr.curCount == 0 {
				lw := la.fr.nextWakeRound()
				if lw == 0 || lw > maxRounds {
					failIdleLane(la, round, maxRounds)
					continue
				}
				m := &la.nw.metrics
				m.DroppedRounds++
				m.Rounds = round
				if la.fr.preMax > m.MaxStateBits {
					m.MaxStateBits = la.fr.preMax
				}
			} else {
				act = append(act, la)
			}
			nl = append(nl, la)
		}
		live = nl

		if round > maxRounds {
			// Solo engines fail here without touching Metrics (Rounds still
			// names the last executed round).
			for _, la := range act {
				la.err = noQuiescence(maxRounds)
			}
			live = live[:0]
			return
		}

		sendSize := 0
		for _, la := range act {
			la.nw.metrics.Rounds = round
			la.deadSend = false
			sendSize += la.fr.curCount
		}
		e.round = round
		e.act = act

		e.runPhase(mphaseSend, sendSize)

		// Lanes that failed validation go dead before the receive half, like
		// the solo abort; survivors deliver and register wakes.
		nact := act
		if e.finishSend() {
			nact = act[:0]
			for _, la := range act {
				if la.deadSend {
					continue
				}
				nact = append(nact, la)
			}
			nl := live[:0]
			for _, la := range live {
				if !la.deadSend {
					nl = append(nl, la)
				}
			}
			live = nl
			e.act = nact
		}

		if len(nact) > 0 {
			recvSize := 0
			if e.k > 1 {
				recvSize = sendSize
				for _, la := range nact {
					for w := range e.ws {
						recvSize += len(e.ws[w].obs[la.idx].touched)
					}
				}
			}
			e.runPhase(mphaseRecv, recvSize)
			e.finishRecv()
		}
		round++
	}
}

// sendShardM runs the fused Send half for worker w: one pass over the
// union of the active lanes' frontiers within the worker's shard, executing
// each visited vertex once per lane whose frontier holds it. Iteration is
// ascending, so every lane's delivery buffers stay canonically ordered
// exactly as in its solo run.
func (e *multiEngine) sendShardM(w int) {
	st := &e.ws[w]
	for _, la := range e.act {
		st.obs[la.idx].beginRound(e.round)
	}
	wlo, whi := e.geo.shardWords(w)
	if wlo >= whi {
		return
	}
	// Hoist every per-lane header the inner loops touch into worker-local
	// scratch: the per-(vertex, lane) membership test becomes one indexed
	// load of a cached word instead of a la -> fr -> bitset -> words chain
	// re-derived at every level of the scan (the chain dominated the fused
	// profile). The appends stay within the capacity fixed at build time,
	// so steady-state rounds allocate nothing.
	act := e.act
	lobs, lnodes := st.lobs[:0], st.lnodes[:0]
	curW, curS := st.curW[:0], st.curS[:0]
	for _, la := range act {
		lobs = append(lobs, st.obs[la.idx])
		lnodes = append(lnodes, la.nw.nodes)
		curW = append(curW, la.fr.cur.words)
		curS = append(curS, la.fr.cur.sum)
	}
	st.lobs, st.lnodes, st.curW, st.curS = lobs, lnodes, curW, curS
	lw := st.lw[:len(act)]
	round, envs := e.round, e.envs
	for si := wlo >> 6; si < (whi+63)>>6; si++ {
		var sw uint64
		for _, s := range curS {
			sw |= s[si]
		}
		for sw != 0 {
			wi := si<<6 + bits.TrailingZeros64(sw)
			sw &= sw - 1
			var uw uint64
			for i, ws := range curW {
				lwv := ws[wi]
				lw[i] = lwv
				uw |= lwv
			}
			for uw != 0 {
				tz := bits.TrailingZeros64(uw)
				uw &= uw - 1
				v := wi<<6 + tz
				mask := uint64(1) << uint(tz)
				envs[v].Round = round
				for i := range lw {
					if lw[i]&mask == 0 {
						continue
					}
					ob := lobs[i]
					if ob.err != nil {
						continue // this lane's shard stopped at its first offense
					}
					ob.begin(v)
					lnodes[i][v].Send(&envs[v], ob)
					if la := act[i]; la.outs != nil {
						la.outs[v] = append(la.outs[v][:0], ob.msgs...)
					}
				}
			}
		}
	}
}

// finishSend folds the send half per lane at the round barrier: canonical
// error selection (smallest sender id across the lane's worker outboxes),
// metric fold, the empty-round flag, and the lane's observer replay — each
// identical to the solo engine's finishSend over that lane alone. It
// reports whether any lane failed validation this round.
func (e *multiEngine) finishSend() (anyDead bool) {
	for _, la := range e.act {
		errW := -1
		var sent, bitsTotal, maxEdge int
		for w := range e.ws {
			ob := e.ws[w].obs[la.idx]
			if ob.err != nil && (errW < 0 || ob.errSender < e.ws[errW].obs[la.idx].errSender) {
				errW = w
			}
			sent += ob.sent()
			bitsTotal += ob.bitsTotal
			if ob.maxEdge > maxEdge {
				maxEdge = ob.maxEdge
			}
		}
		if errW >= 0 {
			// The solo run aborts here: the failing round's partial traffic
			// is not folded and its messages are never observed.
			la.err = e.ws[errW].obs[la.idx].err
			la.deadSend = true
			anyDead = true
			continue
		}
		m := &la.nw.metrics
		m.Messages += sent
		m.Bits += bitsTotal
		if maxEdge > m.MaxEdgeBits {
			m.MaxEdgeBits = maxEdge
		}
		la.empty = sent == 0
		if la.empty {
			m.DroppedRounds++
		}
		if obs := la.nw.observer; obs != nil {
			cur := la.fr.cur
			for si := range cur.sum {
				sw := cur.sum[si]
				for sw != 0 {
					wi := si<<6 + bits.TrailingZeros64(sw)
					sw &= sw - 1
					word := cur.words[wi]
					for word != 0 {
						v := wi<<6 + bits.TrailingZeros64(word)
						word &= word - 1
						for i := range la.outs[v] {
							r := &la.outs[v][i]
							obs(e.round, v, r.to, r.bits, r.wire)
						}
					}
				}
			}
		}
	}
	return anyDead
}

// recvShardM runs the fused Receive half for worker w: each active lane's
// shard receivers are claimed into that lane's next frontier, then one pass
// over the union of the lanes' receive sets (cur|nxt per lane) executes
// each vertex once per member lane — inbox merge, state sampling, Done
// delta and NextWake registration all against that lane's own state,
// exactly as in recvShardF.
func (e *multiEngine) recvShardM(w int) {
	st := &e.ws[w]
	act := e.act
	for _, la := range act {
		st.maxState[la.idx], st.maxInbox[la.idx] = 0, 0
		la.fr.addDelta[w], la.fr.doneDelta[w] = 0, 0
	}
	wlo, whi := e.geo.shardWords(w)
	if wlo >= whi {
		return
	}
	k := e.k
	for _, la := range act {
		// Dense lanes skip the claim: their frontier is already every
		// vertex, so receivers add nothing.
		if la.empty || la.dense {
			continue
		}
		li := la.idx
		added := 0
		nxt := la.fr.nxt
		if k == 1 {
			// One worker owns every vertex: no range test needed.
			for _, to := range st.obs[li].touched {
				if nxt.add(to) {
					added++
				}
			}
		} else {
			vlo, vhi := int32(wlo<<6), int32(whi<<6)
			for ww := range e.ws {
				for _, to := range e.ws[ww].obs[li].touched {
					if to >= vlo && to < vhi && nxt.add(to) {
						added++
					}
				}
			}
		}
		la.fr.addDelta[w] = added
	}
	// The same hoists as sendShardM; the receive set is cur|nxt per lane,
	// so the scratch word is the OR of the two cached headers' words. The
	// claim pass above only touches this worker's word range (shards are
	// summary-aligned), so the cached nxt headers are stable for the scan.
	lnodes, lfr := st.lnodes[:0], st.lfr[:0]
	ldone, lsch, lsiz := st.ldone[:0], st.lsch[:0], st.lsiz[:0]
	curW, nxtW := st.curW[:0], st.nxtW[:0]
	curS, nxtS := st.curS[:0], st.nxtS[:0]
	lobx := st.lobx[:0]
	for _, la := range act {
		fr := la.fr
		lnodes = append(lnodes, la.nw.nodes)
		lfr = append(lfr, fr)
		ldone = append(ldone, fr.done)
		lsch = append(lsch, fr.scheds)
		lsiz = append(lsiz, fr.sizers)
		curW = append(curW, fr.cur.words)
		nxtW = append(nxtW, fr.nxt.words)
		curS = append(curS, fr.cur.sum)
		nxtS = append(nxtS, fr.nxt.sum)
		for ww := 0; ww < k; ww++ {
			lobx = append(lobx, e.ws[ww].obs[la.idx])
		}
	}
	st.lnodes, st.lfr, st.ldone, st.lsch, st.lsiz = lnodes, lfr, ldone, lsch, lsiz
	st.curW, st.nxtW, st.curS, st.nxtS, st.lobx = curW, nxtW, curS, nxtS, lobx
	lw := st.lw[:len(act)]
	heads := st.heads
	maxState, maxInbox := st.maxState, st.maxInbox
	round, envs := e.round, e.envs
	for si := wlo >> 6; si < (whi+63)>>6; si++ {
		var sw uint64
		for i := range curS {
			sw |= curS[i][si] | nxtS[i][si]
		}
		for sw != 0 {
			wi := si<<6 + bits.TrailingZeros64(sw)
			sw &= sw - 1
			var uw uint64
			for i := range curW {
				lwv := curW[i][wi] | nxtW[i][wi]
				lw[i] = lwv
				uw |= lwv
			}
			for uw != 0 {
				tz := bits.TrailingZeros64(uw)
				uw &= uw - 1
				v := wi<<6 + tz
				mask := uint64(1) << uint(tz)
				envs[v].Round = round
				env := &envs[v]
				for i, la := range act {
					if lw[i]&mask == 0 {
						continue
					}
					var inbox []Inbound
					if !la.empty {
						inbox = gatherChains(lobx[i*k:i*k+k], heads, v, st.inbox[:0])
						st.inbox = inbox
					}
					li := la.idx
					if len(inbox) > maxInbox[li] {
						maxInbox[li] = len(inbox)
					}
					nd := lnodes[i][v]
					nd.Receive(env, inbox)
					if s := lsiz[i][v]; s != nil {
						if b := s.StateBits(); b > maxState[li] {
							maxState[li] = b
						}
					}
					if d := nd.Done(); d != ldone[i][v] {
						ldone[i][v] = d
						fr := lfr[i]
						if d {
							fr.doneDelta[w]--
						} else {
							fr.doneDelta[w]++
						}
					}
					if sc := lsch[i][v]; sc != nil {
						fr := lfr[i]
						if fr.register(w, int32(v), sc.NextWake(env, round), round) {
							fr.addDelta[w]++
						}
					}
				}
			}
		}
	}
}

// finishRecv folds the receive half per lane, exactly like finishRecvF
// folds a solo lane: metric maxima, the incremental Done count, the next
// frontier size, and the pre-sampled state maximum.
func (e *multiEngine) finishRecv() {
	for _, la := range e.act {
		m := &la.nw.metrics
		fr := la.fr
		for w := range e.ws {
			st := &e.ws[w]
			if st.maxState[la.idx] > m.MaxStateBits {
				m.MaxStateBits = st.maxState[la.idx]
			}
			if st.maxInbox[la.idx] > m.MaxInboxSize {
				m.MaxInboxSize = st.maxInbox[la.idx]
			}
			fr.notDone += fr.doneDelta[w]
			fr.nxtCount += fr.addDelta[w]
		}
		if fr.preMax > m.MaxStateBits {
			m.MaxStateBits = fr.preMax
		}
	}
}
