package congest

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"qcongest/internal/graph"
)

// The frontier scheduler's contract: for every program in the suite, every
// worker count and fresh-vs-session execution, the frontier engine is
// bit-identical to the dense engine and to RunReference — outputs, Metrics,
// and complete observer wire traces. These tests sweep that whole matrix.

// schedMatrix is the scheduler × workers grid every equivalence assertion
// runs over.
var schedMatrix = []struct {
	name string
	opts []Option
}{
	{"dense/w1", []Option{WithScheduler(SchedulerDense), WithWorkers(1)}},
	{"dense/w2", []Option{WithScheduler(SchedulerDense), WithWorkers(2)}},
	{"dense/w8", []Option{WithScheduler(SchedulerDense), WithWorkers(8)}},
	{"frontier/w1", []Option{WithScheduler(SchedulerFrontier), WithWorkers(1)}},
	{"frontier/w2", []Option{WithScheduler(SchedulerFrontier), WithWorkers(2)}},
	{"frontier/w8", []Option{WithScheduler(SchedulerFrontier), WithWorkers(8)}},
}

// schedCase is one program workload: a node family over a topology with an
// output fingerprint.
type schedCase struct {
	name        string
	topo        *Topology
	make        func(v int) Node
	maxRounds   int
	fingerprint func(at func(v int) Node, n int) string
}

// schedCapture is everything one run produces.
type schedCapture struct {
	Out     string
	Metrics Metrics
	Trace   []string
}

func runSchedCase(t *testing.T, c schedCase, run func(*Network, int) error, opts ...Option) schedCapture {
	t.Helper()
	var trace []string
	nw := NewNetworkOn(c.topo, c.make, append([]Option{WithObserver(recordObs(&trace))}, opts...)...)
	if err := run(nw, c.maxRounds); err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	return schedCapture{Out: c.fingerprint(nw.Node, c.topo.N()), Metrics: nw.Metrics(), Trace: trace}
}

// TestSchedulerEquivalenceSuite sweeps every node program of the suite over
// the scheduler × workers matrix, fresh and session-reused, against a
// RunReference baseline.
func TestSchedulerEquivalenceSuite(t *testing.T) {
	g := graph.RandomConnected(150, 0.03, 4)
	n := g.N()
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	base := []Option{WithScheduler(SchedulerDense), WithWorkers(1)}
	info, _, err := PreprocessOn(topo, base...)
	if err != nil {
		t.Fatal(err)
	}
	d := info.D

	// Scaffolding inputs computed once on the dense oracle.
	tourLen := 2 * (n - 1)
	tau, _, err := TokenWalkOn(topo, info, info.Children, info.Leader, tourLen, base...)
	if err != nil {
		t.Fatal(err)
	}
	ranks := make([]int, n)
	sources := 0
	for v := 0; v < n; v++ {
		ranks[v] = -1
		if v%19 == 0 {
			ranks[v] = sources
			sources++
		}
	}
	sspDuration := sources + 2*d + 8
	sspNW := NewNetworkOn(topo, func(v int) Node { return NewSSPNode(ranks[v], sources, sspDuration) }, base...)
	if err := sspNW.Run(sspDuration + 4); err != nil {
		t.Fatal(err)
	}
	dists := make([]map[int]int, n)
	for v := 0; v < n; v++ {
		dists[v] = sspNW.Node(v).(*SSPNode).Dist
	}

	gw := graph.WithWeights(g, 7, 4)
	wtopo, err := NewTopology(gw)
	if err != nil {
		t.Fatal(err)
	}
	bound := wtopo.DistBound()
	wDuration := n - 1

	cases := []schedCase{
		{
			name: "leader", topo: topo, maxRounds: 4*n + 16,
			make: func(v int) Node { return NewLeaderElectNode() },
			fingerprint: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					fmt.Fprintf(&sb, "%d;", at(v).(*LeaderElectNode).Leader)
				}
				return sb.String()
			},
		},
		{
			name: "bfs", topo: topo, maxRounds: 8*n + 16,
			make: func(v int) Node { return NewBFSNode(info.Leader) },
			fingerprint: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					b := at(v).(*BFSNode)
					fmt.Fprintf(&sb, "%d/%d/%v/%d;", b.Dist, b.Parent, b.Children, b.Ecc)
				}
				return sb.String()
			},
		},
		{
			name: "walk", topo: topo, maxRounds: tourLen + 4,
			make: func(v int) Node {
				return NewTokenWalkNode(info.Parent[v], info.Children[v], info.Leader, info.Leader, tourLen)
			},
			fingerprint: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					fmt.Fprintf(&sb, "%d;", at(v).(*TokenWalkNode).Tau)
				}
				return sb.String()
			},
		},
		{
			name: "wave", topo: topo, maxRounds: 2*tourLen + 2*d + 8,
			make: func(v int) Node { return NewWaveNode(tau[v] >= 0, tau[v], 2*tourLen+2*d+2) },
			fingerprint: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					w := at(v).(*WaveNode)
					fmt.Fprintf(&sb, "%d/%d/%v;", w.TV, w.DV, w.Violation)
				}
				return sb.String()
			},
		},
		{
			name: "cc-max", topo: topo, maxRounds: 4*n + 16,
			make: func(v int) Node {
				return NewConvergecastMaxNode(info.Parent[v], info.Children[v], (v*13)%97, v)
			},
			fingerprint: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					c := at(v).(*ConvergecastMaxNode)
					fmt.Fprintf(&sb, "%d/%d;", c.Max, c.MaxWitness)
				}
				return sb.String()
			},
		},
		{
			name: "bcast", topo: topo, maxRounds: 4*n + 16,
			make: func(v int) Node { return NewBroadcastNode(info.Parent[v], info.Children[v], 42) },
			fingerprint: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					fmt.Fprintf(&sb, "%d;", at(v).(*BroadcastNode).Value)
				}
				return sb.String()
			},
		},
		{
			name: "minflood", topo: topo, maxRounds: 4*n + 16,
			make: func(v int) Node { return NewMinFloodNode(v%17 == 0) },
			fingerprint: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					m := at(v).(*MinFloodNode)
					fmt.Fprintf(&sb, "%d/%d;", m.Dist, m.Src)
				}
				return sb.String()
			},
		},
		{
			name: "cc-sum", topo: topo, maxRounds: 4*n + 16,
			make: func(v int) Node {
				return NewConvergecastSumNode(info.Parent[v], info.Children[v], v%5)
			},
			fingerprint: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					fmt.Fprintf(&sb, "%d;", at(v).(*ConvergecastSumNode).Sum)
				}
				return sb.String()
			},
		},
		{
			name: "ssp", topo: topo, maxRounds: sspDuration + 4,
			make: func(v int) Node { return NewSSPNode(ranks[v], sources, sspDuration) },
			fingerprint: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					s := at(v).(*SSPNode)
					for r := 0; r < sources; r++ {
						d, ok := s.Dist[r]
						fmt.Fprintf(&sb, "%d/%v,", d, ok)
					}
					sb.WriteByte(';')
				}
				return sb.String()
			},
		},
		{
			name: "src-max", topo: topo, maxRounds: d + sources + 8,
			make: func(v int) Node {
				return NewSourceMaxNode(info.Parent[v], info.Children[v], info.Depth[v], d, sources, dists[v])
			},
			fingerprint: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					s := at(v).(*SourceMaxNode)
					for r := 0; r < sources; r++ {
						fmt.Fprintf(&sb, "%d,", s.Max[r])
					}
					sb.WriteByte(';')
				}
				return sb.String()
			},
		},
		{
			name: "weighted-sssp", topo: wtopo, maxRounds: wDuration + 4,
			make: func(v int) Node {
				return NewWeightedSSSPNode(v == 3, wtopo.NeighborWeights(v), bound, wDuration)
			},
			fingerprint: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					fmt.Fprintf(&sb, "%d;", at(v).(*WeightedSSSPNode).Dist)
				}
				return sb.String()
			},
		},
		{
			name: "weighted-max", topo: wtopo, maxRounds: 4*n + 16,
			make: func(v int) Node {
				return NewWeightedMaxNode(info.Parent[v], info.Children[v], (v*7)%bound, v, bound)
			},
			fingerprint: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					c := at(v).(*WeightedMaxNode)
					fmt.Fprintf(&sb, "%d/%d;", c.Max, c.MaxWitness)
				}
				return sb.String()
			},
		},
		{
			name: "notify", topo: topo, maxRounds: 8,
			make: func(v int) Node { return &notifyNode{Parent: info.Parent[v], Marked: v%3 == 0} },
			fingerprint: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					ch := append([]int(nil), at(v).(*notifyNode).MarkedChildren...)
					sort.Ints(ch)
					fmt.Fprintf(&sb, "%v;", ch)
				}
				return sb.String()
			},
		},
	}

	for _, c := range cases {
		want := runSchedCase(t, c, (*Network).RunReference)
		for _, m := range schedMatrix {
			got := runSchedCase(t, c, (*Network).Run, m.opts...)
			if got.Out != want.Out {
				t.Errorf("%s [%s]: outputs differ from RunReference", c.name, m.name)
			}
			if got.Metrics != want.Metrics {
				t.Errorf("%s [%s]: Metrics = %+v, want %+v", c.name, m.name, got.Metrics, want.Metrics)
			}
			if !reflect.DeepEqual(got.Trace, want.Trace) {
				t.Errorf("%s [%s]: observer trace differs from RunReference (%d vs %d events)",
					c.name, m.name, len(got.Trace), len(want.Trace))
			}

			// Session dimension: build once, Reset+Run twice; both
			// executions must match the reference bit for bit.
			var trace []string
			sess := NewSession(c.topo, c.make, append([]Option{WithObserver(recordObs(&trace))}, m.opts...)...)
			for rerun := 0; rerun < 2; rerun++ {
				trace = trace[:0]
				if err := sess.Reset(nil); err != nil {
					t.Fatalf("%s [%s]: %v", c.name, m.name, err)
				}
				if err := sess.Run(c.maxRounds); err != nil {
					t.Fatalf("%s [%s] rerun %d: %v", c.name, m.name, rerun, err)
				}
				if out := c.fingerprint(sess.Node, c.topo.N()); out != want.Out {
					t.Errorf("%s [%s] session rerun %d: outputs differ from RunReference", c.name, m.name, rerun)
				}
				if sess.Metrics() != want.Metrics {
					t.Errorf("%s [%s] session rerun %d: Metrics = %+v, want %+v",
						c.name, m.name, rerun, sess.Metrics(), want.Metrics)
				}
				if !reflect.DeepEqual(trace, want.Trace) {
					t.Errorf("%s [%s] session rerun %d: observer trace differs", c.name, m.name, rerun)
				}
			}
			sess.Close()
		}
	}
}

// TestSchedulerEquivalenceComposites runs the composed classical algorithms
// — every phase of the Figure 2 / Figure 3 pipelines back to back — over
// the scheduler matrix.
func TestSchedulerEquivalenceComposites(t *testing.T) {
	g := graph.RandomConnected(120, 0.04, 8)
	gw := graph.WithWeights(g, 6, 8)
	type comp struct {
		name string
		run  func(opts ...Option) (string, error)
	}
	comps := []comp{
		{"classical-exact", func(opts ...Option) (string, error) {
			r, err := ClassicalExactDiameter(g, opts...)
			return fmt.Sprintf("%+v", r), err
		}},
		{"classical-approx", func(opts ...Option) (string, error) {
			r, err := ClassicalApproxDiameter(g, 0, 8, opts...)
			return fmt.Sprintf("%+v", r), err
		}},
		{"classical-ecc", func(opts ...Option) (string, error) {
			ecc, m, err := ClassicalEccentricities(g, opts...)
			return fmt.Sprintf("%v %+v", ecc, m), err
		}},
		{"classical-weighted", func(opts ...Option) (string, error) {
			r, err := ClassicalWeightedDiameter(gw, opts...)
			return fmt.Sprintf("%+v", r), err
		}},
	}
	for _, c := range comps {
		want, err := c.run(WithScheduler(SchedulerDense), WithWorkers(1), WithStrictAccounting())
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, m := range schedMatrix {
			got, err := c.run(append([]Option{WithStrictAccounting()}, m.opts...)...)
			if err != nil {
				t.Fatalf("%s [%s]: %v", c.name, m.name, err)
			}
			if got != want {
				t.Errorf("%s [%s]:\n got %s\nwant %s", c.name, m.name, got, want)
			}
		}
	}
}

// pulseNode is a Scheduled test program with long idle gaps: vertex 0
// broadcasts at the configured rounds; everyone finishes at the last one.
// It exercises the scheduler's idle-round skipping.
type pulseNode struct {
	wakes []int // ascending broadcast rounds of vertex 0
	idx   int
	seen  int
	done  bool
	tx    msgChild
}

func (p *pulseNode) last() int { return p.wakes[len(p.wakes)-1] }

func (p *pulseNode) Send(env *Env, out *Outbox) {
	if env.ID != 0 {
		return
	}
	if p.idx < len(p.wakes) && env.Round == p.wakes[p.idx] {
		p.idx++
		out.Broadcast(env.Neighbors, &p.tx)
	}
}

func (p *pulseNode) Receive(env *Env, inbox []Inbound) {
	p.seen += len(inbox)
	if env.Round >= p.last() {
		p.done = true
	}
}

func (p *pulseNode) Done() bool { return p.done }

func (p *pulseNode) StateBits() int { return 64 + p.seen }

func (p *pulseNode) NextWake(env *Env, round int) int {
	if p.done {
		return NeverWake
	}
	if env.ID == 0 && p.idx < len(p.wakes) {
		if w := p.wakes[p.idx]; w > round {
			return w
		}
		return round + 1
	}
	if w := p.last(); w > round {
		return w
	}
	return round + 1
}

func (p *pulseNode) ResetNode(v int, params any) {
	if params != nil {
		badResetParams("pulseNode", params)
	}
	p.idx, p.seen, p.done = 0, 0, false
}

// TestDroppedRoundsSchedulerInvariant is the Metrics.DroppedRounds table
// test: an all-idle round that the frontier scheduler skips must account
// identically to a dense empty round — same Rounds, same DroppedRounds,
// same everything — including on timeout errors inside a gap.
func TestDroppedRoundsSchedulerInvariant(t *testing.T) {
	g := graph.Path(40)
	cases := []struct {
		name          string
		wakes         []int
		maxRounds     int
		wantErr       bool
		wantRounds    int
		wantDropped   int
		wantSkipped   bool // documents which rows exercise real gaps
		wantDelivered int  // messages: one broadcast from vertex 0 per pulse
	}{
		{"no-gap", []int{1, 2, 3}, 50, false, 3, 0, false, 3},
		{"single-late-pulse", []int{5}, 50, false, 5, 4, true, 1},
		{"two-pulses-long-gap", []int{1, 40}, 80, false, 40, 38, true, 2},
		{"gap-to-timeout", []int{50}, 10, true, 10, 10, true, 0},
	}
	for _, tc := range cases {
		runM := func(sched Scheduler, workers int) (Metrics, error) {
			nw, err := NewNetwork(g, func(v int) Node { return &pulseNode{wakes: tc.wakes} },
				WithScheduler(sched), WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			runErr := nw.Run(tc.maxRounds)
			return nw.Metrics(), runErr
		}
		wantM, wantErr := runM(SchedulerDense, 1)
		if (wantErr != nil) != tc.wantErr {
			t.Fatalf("%s: dense err = %v, want error %v", tc.name, wantErr, tc.wantErr)
		}
		if wantM.Rounds != tc.wantRounds || wantM.DroppedRounds != tc.wantDropped {
			t.Fatalf("%s: dense Rounds/Dropped = %d/%d, want %d/%d",
				tc.name, wantM.Rounds, wantM.DroppedRounds, tc.wantRounds, tc.wantDropped)
		}
		if want := tc.wantDelivered * len(g.Neighbors(0)); wantM.Messages != want {
			t.Fatalf("%s: dense Messages = %d, want %d", tc.name, wantM.Messages, want)
		}
		for _, workers := range []int{1, 2, 8} {
			gotM, gotErr := runM(SchedulerFrontier, workers)
			if (gotErr == nil) != (wantErr == nil) ||
				(gotErr != nil && gotErr.Error() != wantErr.Error()) {
				t.Errorf("%s workers %d: frontier err %v, dense err %v", tc.name, workers, gotErr, wantErr)
			}
			if gotM != wantM {
				t.Errorf("%s workers %d: frontier Metrics = %+v, dense %+v", tc.name, workers, gotM, wantM)
			}
		}
	}
}

// TestEffectiveSchedulerFallback: a network whose programs lack the
// Scheduled contract must run the dense path even under the (default)
// frontier setting — the conservative always-active default — while the
// shipped programs engage the frontier.
func TestEffectiveSchedulerFallback(t *testing.T) {
	g := graph.Path(16)
	legacy, err := NewNetwork(g, func(v int) Node { return &duelingHogNode{threshold: 1 << 30} })
	if err != nil {
		t.Fatal(err)
	}
	if got := legacy.EffectiveScheduler(); got != SchedulerDense {
		t.Errorf("legacy network EffectiveScheduler = %v, want dense fallback", got)
	}
	modern, err := NewNetwork(g, func(v int) Node { return NewLeaderElectNode() })
	if err != nil {
		t.Fatal(err)
	}
	if got := modern.EffectiveScheduler(); got != SchedulerFrontier {
		t.Errorf("suite network EffectiveScheduler = %v, want frontier", got)
	}
	if got := NewNetworkOn(modern.topo, func(v int) Node { return NewLeaderElectNode() },
		WithScheduler(SchedulerDense)).EffectiveScheduler(); got != SchedulerDense {
		t.Errorf("explicit dense EffectiveScheduler = %v, want dense", got)
	}
}
