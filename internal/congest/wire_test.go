package congest

import (
	"reflect"
	"strings"
	"testing"

	"qcongest/internal/graph"
)

func TestBitsForID(t *testing.T) {
	// Naming one of n <= 1 values takes no bits: there is nothing to
	// distinguish.
	cases := []struct{ n, want int }{
		{-1, 0}, {0, 0}, {1, 0},
		{2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := BitsForID(c.n); got != c.want {
			t.Errorf("BitsForID(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var w Writer
	w.Reset(100)
	// Widths chosen to straddle word boundaries repeatedly.
	fields := []struct {
		v     uint64
		width int
	}{
		{1, 1}, {0, 1}, {0x7fff, 15}, {3, 2}, {1<<50 - 7, 50},
		{0, 0}, {12345, 17}, {1<<64 - 1, 64}, {9, 5}, {1<<33 + 1, 40},
	}
	total := 0
	for _, f := range fields {
		w.WriteUint(f.v, f.width)
		total += f.width
	}
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	if w.Len() != total {
		t.Fatalf("Len = %d, want %d", w.Len(), total)
	}
	r := Reader{N: 100, words: w.words, off: 0, end: w.Len()}
	for i, f := range fields {
		if got := r.ReadUint(f.width); got != f.v {
			t.Errorf("field %d: read %d, want %d", i, got, f.v)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bits left over", r.Remaining())
	}
	// Reading past the end is an error, not garbage.
	r.ReadUint(1)
	if r.Err() == nil {
		t.Error("read past end accepted")
	}
}

func TestWriterRejectsOverflow(t *testing.T) {
	var w Writer
	w.Reset(10)
	w.WriteUint(4, 2) // 4 needs 3 bits
	if w.Err() == nil {
		t.Error("overflowing value accepted")
	}
	w.Reset(10)
	w.WriteID(-1, 10)
	if w.Err() == nil {
		t.Error("negative id accepted")
	}
	w.Reset(10)
	w.WriteID(10, 10)
	if w.Err() == nil {
		t.Error("id == bound accepted")
	}
	w.Reset(10)
	w.WriteCount(-3, 8)
	if w.Err() == nil || !strings.Contains(w.Err().Error(), "negative value -3") {
		t.Errorf("negative counter: err = %v, want explicit negative-value error", w.Err())
	}
}

// A codec pair whose UnmarshalWire reads fewer bits than MarshalWire wrote
// must fail Decode: truncated decodes may not pass silently.
type shortReadMsg struct{ V int }

const kindTestShort Kind = 29

func (m *shortReadMsg) WireKind() Kind          { return kindTestShort }
func (m *shortReadMsg) MarshalWire(w *Writer)   { w.WriteUint(uint64(m.V), 8) }
func (m *shortReadMsg) UnmarshalWire(r *Reader) { m.V = int(r.ReadUint(4)) } // deliberate under-read

func init() {
	RegisterKind(kindTestShort, "test-short", func() WireMessage { return new(shortReadMsg) })
}

func TestDecodeRejectsUnconsumedPayload(t *testing.T) {
	const n = 16
	var w Writer
	w.Reset(n)
	w.WriteUint(uint64(kindTestShort), KindBits)
	(&shortReadMsg{V: 0xAB}).MarshalWire(&w)
	in := Inbound{From: 0, Kind: kindTestShort, Bits: w.Len(), wire: w.view(0, w.Len())}
	env := Env{N: n, rd: Reader{N: n}}
	var got shortReadMsg
	err := in.Decode(&env, &got)
	if err == nil || !strings.Contains(err.Error(), "4 of 8 payload bits unread") {
		t.Errorf("under-reading decode: err = %v, want unread-payload error", err)
	}
}

func TestWriterRecyclesCleanly(t *testing.T) {
	var w Writer
	w.Reset(10)
	w.WriteUint(1<<63, 64)
	w.WriteUint(1<<40-1, 41)
	w.Reset(10)
	w.WriteUint(0, 64)
	w.WriteUint(0, 41)
	r := Reader{N: 10, words: w.words, off: 0, end: w.Len()}
	if got := r.ReadUint(64); got != 0 {
		t.Errorf("stale bits after Reset: %x", got)
	}
	if got := r.ReadUint(41); got != 0 {
		t.Errorf("stale bits after Reset: %x", got)
	}
}

// Every registered kind round-trips through the wire format, and its
// encoded length matches its declared-formula documentation.
func TestWireRoundTripAllKinds(t *testing.T) {
	const n = 100
	samples := []WireMessage{
		&msgActivate{Dist: 57},
		&msgChild{},
		&msgEccReport{Max: 99},
		&msgToken{Step: 397},
		&msgWave{Tau: 313, Delta: 99},
		&msgMax{Value: 217, Witness: 3},
		&msgBcast{Value: 400},
		&msgNear{Dist: 150, Src: 9},
		&msgSum{Sum: 4095},
		&msgPair{Src: 42, Dist: 150},
		&msgSrcMax{Src: 42, Max: 150},
		&RawMessage{Width: 17},
		&msgWDist{Dist: 300, Bound: 450},
		&msgWMax{Value: 301, Witness: 42, Bound: 450},
		&msgAdj{ID: 42},
		&msgSide{Marked: true},
		&msgCutSum{Sum: 512, Bound: 600},
		&msgSkelUp{Slot: 7, Val: 451, Slots: 20, Bound: 450},
		&msgSkelDown{Slot: 19, Val: 0, Slots: 20, Bound: 450},
	}
	covered := map[Kind]bool{}
	var w Writer
	for _, m := range samples {
		k := m.WireKind()
		covered[k] = true
		if !Registered(k) {
			t.Fatalf("kind %v not registered", k)
		}
		w.Reset(n)
		w.WriteUint(uint64(k), KindBits)
		m.MarshalWire(&w)
		if w.Err() != nil {
			t.Fatalf("%v: %v", k, w.Err())
		}
		bits := w.Len()
		if d, ok := m.(BitsDeclarer); ok {
			if want := d.DeclaredBits(n); want != bits {
				t.Errorf("%v: declared %d bits, encoded %d", k, want, bits)
			}
		} else {
			t.Errorf("%v: shipped kind does not document its size via DeclaredBits", k)
		}
		view := w.view(0, bits)
		if view.Kind() != k {
			t.Errorf("%v: view decodes tag %v", k, view.Kind())
		}
		got := NewKindMessage(k)
		// Bound-parameterized kinds (the weighted suite): the decoder is
		// configured with the same bound as the encoder — in the programs it
		// is per-node configuration known a priori, like n.
		switch s := m.(type) {
		case *msgWDist:
			got.(*msgWDist).Bound = s.Bound
		case *msgWMax:
			got.(*msgWMax).Bound = s.Bound
		case *msgCutSum:
			got.(*msgCutSum).Bound = s.Bound
		case *msgSkelUp:
			got.(*msgSkelUp).Slots = s.Slots
			got.(*msgSkelUp).Bound = s.Bound
		case *msgSkelDown:
			got.(*msgSkelDown).Slots = s.Slots
			got.(*msgSkelDown).Bound = s.Bound
		}
		var r Reader
		view.payloadReader(&r, n)
		got.UnmarshalWire(&r)
		if r.Err() != nil {
			t.Fatalf("%v: %v", k, r.Err())
		}
		if r.Remaining() != 0 {
			t.Errorf("%v: %d undecoded bits", k, r.Remaining())
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%v: round trip %+v, want %+v", k, got, m)
		}
	}
	for _, k := range RegisteredKinds() {
		if !covered[k] && !strings.HasPrefix(k.String(), "test-") {
			t.Errorf("registered kind %v has no round-trip sample", k)
		}
	}
}

func TestKindRegistry(t *testing.T) {
	if Registered(kindInvalid) {
		t.Error("invalid kind registered")
	}
	if NewKindMessage(Kind(31)) != nil {
		t.Error("factory for unregistered kind")
	}
	if got := KindWave.String(); got != "wave" {
		t.Errorf("KindWave name %q", got)
	}
	if got := Kind(31).String(); got != "kind(31)" {
		t.Errorf("unregistered kind name %q", got)
	}
}

// The shipped algorithms run clean under strict accounting: every declared
// size formula matches the encoded wire length, on both engines.
func TestStrictAccountingShippedAlgorithms(t *testing.T) {
	g := graph.RandomConnected(48, 0.08, 11)
	if _, err := ClassicalExactDiameter(g, WithStrictAccounting()); err != nil {
		t.Errorf("exact diameter under strict accounting: %v", err)
	}
	if _, err := ClassicalApproxDiameter(g, 0, 7, WithStrictAccounting(), WithWorkers(3)); err != nil {
		t.Errorf("approx diameter under strict accounting: %v", err)
	}
	nw, err := NewNetwork(g, func(v int) Node { return NewLeaderElectNode() }, WithStrictAccounting())
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.RunReference(4 * g.N()); err != nil {
		t.Errorf("reference engine under strict accounting: %v", err)
	}
}

// A message whose declared size formula disagrees with its encoding.
type lyingMsg struct{ V int }

const kindTestLying Kind = 30

func (m *lyingMsg) WireKind() Kind          { return kindTestLying }
func (m *lyingMsg) MarshalWire(w *Writer)   { w.WriteUint(uint64(m.V), 8) }
func (m *lyingMsg) UnmarshalWire(r *Reader) { m.V = int(r.ReadUint(8)) }
func (m *lyingMsg) DeclaredBits(n int) int  { return 3 } // deliberate lie

func init() {
	RegisterKind(kindTestLying, "test-lying", func() WireMessage { return new(lyingMsg) })
}

type lyingNode struct {
	id   int
	sent bool
	tx   lyingMsg
}

func (l *lyingNode) Send(env *Env, out *Outbox) {
	if l.sent || env.ID != 0 {
		return
	}
	l.sent = true
	l.tx.V = 200
	out.Put(env.Neighbors[0], &l.tx)
}
func (l *lyingNode) Receive(env *Env, inbox []Inbound) {}
func (l *lyingNode) Done() bool                        { return l.id != 0 || l.sent }

func TestStrictAccountingCatchesMismatch(t *testing.T) {
	g := graph.Path(3)
	make := func(v int) Node { return &lyingNode{id: v} }

	// Without strict accounting the run succeeds and the charged cost is
	// the encoded length — the lie is simply ignored.
	nw, err := NewNetwork(g, make)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(4); err != nil {
		t.Fatal(err)
	}
	if want := KindBits + 8; nw.Metrics().Bits != want {
		t.Errorf("Bits = %d, want encoded length %d (declared value must not be trusted)",
			nw.Metrics().Bits, want)
	}

	// Strict accounting turns the mismatch into a run failure, identically
	// on both engines and for every worker count.
	for _, k := range engineWorkerCounts {
		nw, err := NewNetwork(g, make, WithStrictAccounting(), WithWorkers(k))
		if err != nil {
			t.Fatal(err)
		}
		err = nw.Run(4)
		if err == nil || !strings.Contains(err.Error(), "declares 3 bits but encodes to 13") {
			t.Errorf("workers %d: err = %v, want declared/encoded mismatch", k, err)
		}
	}
	nw, err = NewNetwork(g, make, WithStrictAccounting())
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.RunReference(4); err == nil {
		t.Error("reference engine missed the declared/encoded mismatch")
	}
}

// An unregistered kind must be refused: the registry is the wire contract.
type bogusMsg struct{}

func (bogusMsg) WireKind() Kind          { return Kind(31) }
func (bogusMsg) MarshalWire(w *Writer)   {}
func (bogusMsg) UnmarshalWire(r *Reader) {}

type bogusNode struct {
	id   int
	sent bool
}

func (b *bogusNode) Send(env *Env, out *Outbox) {
	if !b.sent && env.ID == 0 {
		b.sent = true
		out.Put(env.Neighbors[0], bogusMsg{})
	}
}
func (b *bogusNode) Receive(env *Env, inbox []Inbound) {}
func (b *bogusNode) Done() bool                        { return b.id != 0 || b.sent }

func TestEngineRejectsUnregisteredKind(t *testing.T) {
	g := graph.Path(2)
	nw, err := NewNetwork(g, func(v int) Node { return &bogusNode{id: v} })
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(4); err == nil || !strings.Contains(err.Error(), "unregistered kind") {
		t.Errorf("err = %v, want unregistered-kind error", err)
	}
}

// floodNode broadcasts one activate message to every neighbor each round
// for a fixed number of rounds, decoding everything it receives — a
// steady-state workload for the allocation test.
type floodNode struct {
	rounds int
	done   bool
	tx, rx msgActivate
}

func (f *floodNode) Send(env *Env, out *Outbox) {
	if env.Round > f.rounds {
		return
	}
	f.tx.Dist = env.ID
	out.Broadcast(env.Neighbors, &f.tx)
}

func (f *floodNode) Receive(env *Env, inbox []Inbound) {
	for i := range inbox {
		in := &inbox[i]
		if in.Kind == KindActivate {
			_ = in.Decode(env, &f.rx)
		}
	}
	if env.Round >= f.rounds {
		f.done = true
	}
}

func (f *floodNode) Done() bool { return f.done }

// The engine's per-round hot path — encode, validate, buffer, merge,
// decode — must not allocate once buffers reach steady state: the allocs
// of a run must not grow with the round count. Setup costs (NewNetwork,
// engine construction, warmup growth) are identical in both runs and
// cancel in the difference.
func TestEngineSteadyStateAllocsZero(t *testing.T) {
	g := graph.Path(256)
	for _, k := range []int{1, 2, 3} {
		runAllocs := func(rounds int) float64 {
			return testing.AllocsPerRun(5, func() {
				nw, err := NewNetwork(g, func(v int) Node { return &floodNode{rounds: rounds} }, WithWorkers(k))
				if err != nil {
					t.Fatal(err)
				}
				if err := nw.Run(rounds + 4); err != nil {
					t.Fatal(err)
				}
			})
		}
		base := runAllocs(16)
		long := runAllocs(116)
		if perRound := (long - base) / 100; perRound > 0 {
			t.Errorf("workers %d: %.3f allocs per steady-state round (runs: %.0f vs %.0f), want 0",
				k, perRound, base, long)
		}
	}
}
