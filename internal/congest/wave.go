package congest

import "fmt"

// This file implements Step 2 of the paper's Figure 2: every vertex
// v in S starts a BFS wave at round 2*tau'(v); waves are pipelined so that
// they never collide (paper Lemmas 2-4). Each node v tracks
//
//	tv — the tau' of the last wave processed (-1 initially), and
//	dv — the maximum distance-from-initiator over all waves seen,
//
// so that after the process dv = max_{u in S} d(u, v), and the global
// maximum of dv equals max_{u in S} ecc(u).
//
// The implementation asserts the paper's Lemma 4 at runtime: if two
// distinct messages survive the tv filter in the same round, the run fails.
// Passing tests therefore certify the no-congestion claim — over real
// encoded bit counts — not just assume it.

// msgWave is a wave message (tau', delta): "the wave started by the vertex
// with tau'-number Tau has traveled Delta hops". Two counters of
// BitsForID(4n+1) bits each (tau' ranges over walk windows of up to 4n-4
// steps, delta over distances < n). The increment convention differs
// cosmetically from Figure 2: the sender adds 1 when transmitting, so a
// received Delta always equals d(initiator, receiver); Figure 2 has the
// receiver broadcast delta+1 instead. The invariants (first arrival carries
// the true distance, dv = max distance over processed waves) are identical.
type msgWave struct {
	Tau   int
	Delta int
}

func (m *msgWave) WireKind() Kind { return KindWave }
func (m *msgWave) MarshalWire(w *Writer) {
	w.WriteID(m.Tau, 4*w.N+1)
	w.WriteID(m.Delta, 4*w.N+1)
}
func (m *msgWave) UnmarshalWire(r *Reader) {
	m.Tau = r.ReadID(4*r.N + 1)
	m.Delta = r.ReadID(4*r.N + 1)
}
func (m *msgWave) DeclaredBits(n int) int { return KindBits + 2*BitsForID(4*n+1) }
func (m *msgWave) PackWire(n int) (uint64, int, bool) {
	b := 4*n + 1
	if m.Tau < 0 || m.Tau >= b || m.Delta < 0 || m.Delta >= b {
		return 0, 0, false
	}
	w := BitsForID(b)
	return uint64(m.Tau) | uint64(m.Delta)<<w, 2 * w, true
}
func (m *msgWave) UnpackWire(n int, p uint64, width int) bool {
	b := 4*n + 1
	w := BitsForID(b)
	if width != 2*w {
		return false
	}
	tau, delta := p&(1<<w-1), p>>w
	if tau >= uint64(b) || delta >= uint64(b) {
		return false
	}
	m.Tau, m.Delta = int(tau), int(delta)
	return true
}

func init() {
	RegisterKind(KindWave, "wave", func() WireMessage { return new(msgWave) })
	RegisterKindWidth(KindWave, func(n int) int { return KindBits + 2*BitsForID(4*n+1) })
}

// WaveNode runs the Figure 2 Step 2 process at one node.
type WaveNode struct {
	// Static configuration.
	InS      bool // whether this node belongs to S
	TauPrime int  // tau'(v), meaningful when InS
	Duration int  // total rounds of the process (6d in Figure 2)

	// Outputs.
	TV int // tv of Figure 2
	DV int // dv of Figure 2

	// Violation records a breach of the paper's ordering invariants
	// (Lemmas 2-4). It stays nil on every valid schedule; composite
	// algorithms and tests fail the run if it is set.
	Violation error

	pending  *msgWave // wave to broadcast next Send
	finished bool

	buffered msgWave // storage for pending
	tx, rx   msgWave
}

// NewWaveNode builds the wave program for one node. tauPrime is ignored
// unless inS is true.
func NewWaveNode(inS bool, tauPrime, duration int) *WaveNode {
	return &WaveNode{InS: inS, TauPrime: tauPrime, Duration: duration, TV: -1}
}

// WaveTau is the Reset params of a wave session: the tau' assignment of the
// next execution (Tau[v] >= 0 iff v is in S and initiates a wave).
type WaveTau struct{ Tau []int }

// ResetNode implements Resettable: the program returns to its constructed
// state, optionally taking its membership and tau' from params.(WaveTau).
func (w *WaveNode) ResetNode(v int, params any) {
	switch p := params.(type) {
	case nil:
	case WaveTau:
		w.InS = p.Tau[v] >= 0
		w.TauPrime = p.Tau[v]
	default:
		badResetParams("WaveNode", params)
	}
	w.TV = -1
	w.DV = 0
	w.Violation = nil
	w.pending = nil
	w.finished = false
}

// Send implements Node.
func (w *WaveNode) Send(env *Env, out *Outbox) {
	// Figure 2 Step 2(2): initiate own wave exactly at (relative) round
	// 2*tau'(v). Rounds here are 1-based, so the wave with tau' = 0 starts
	// in round 1: initiation round = 2*tau' + 1.
	if w.InS && env.Round == 2*w.TauPrime+1 {
		if w.TauPrime < w.TV && w.Violation == nil {
			// The ordering lemmas guarantee earlier waves have smaller
			// tau'; seeing a larger tv here would mean congestion.
			w.Violation = fmt.Errorf("congest: wave ordering violated at node %d: tv=%d >= own tau'=%d",
				env.ID, w.TV, w.TauPrime)
		}
		w.TV = w.TauPrime
		w.buffered = msgWave{Tau: w.TauPrime, Delta: 0}
		w.pending = &w.buffered
	}
	if w.pending == nil {
		return
	}
	w.tx = msgWave{Tau: w.pending.Tau, Delta: w.pending.Delta + 1}
	w.pending = nil
	out.Broadcast(env.Neighbors, &w.tx)
}

// Receive implements Node. It applies Figure 2 Step 2(3): disregard stale
// waves, keep at most one fresh message (asserting they are all equal),
// update tv and dv, and schedule the re-broadcast.
func (w *WaveNode) Receive(env *Env, inbox []Inbound) {
	var kept *msgWave
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != KindWave || in.Decode(env, &w.rx) != nil {
			continue
		}
		m := w.rx
		if m.Tau <= w.TV {
			continue // Step 3(a): stale wave
		}
		if kept == nil {
			w.buffered = m
			kept = &w.buffered
			continue
		}
		if (kept.Tau != m.Tau || kept.Delta != m.Delta) && w.Violation == nil {
			// Lemma 4 violation: two distinct fresh messages in one round.
			w.Violation = fmt.Errorf("congest: Lemma 4 violated at node %d round %d: (%d,%d) vs (%d,%d)",
				env.ID, env.Round, kept.Tau, kept.Delta, m.Tau, m.Delta)
		}
	}
	if kept != nil {
		w.TV = kept.Tau
		if kept.Delta > w.DV {
			w.DV = kept.Delta
		}
		w.pending = kept
	}
	if env.Round >= w.Duration {
		w.finished = true
		w.pending = nil
	}
}

// Done implements Node.
func (w *WaveNode) Done() bool { return w.finished }

// NextWake implements Scheduled: a wave node acts spontaneously only at
// its own initiation round 2*tau'+1 (members of S) and at the Duration
// timer; re-broadcasts are message-driven (pending is set by Receive, and
// receivers are scheduled for the following round automatically).
func (w *WaveNode) NextWake(env *Env, round int) int {
	if w.finished {
		return NeverWake
	}
	if w.pending != nil {
		return round + 1 // re-broadcast the kept wave
	}
	next := w.Duration // the finished timer fires in the Receive of that round
	if w.InS {
		if init := 2*w.TauPrime + 1; init > round && init < next {
			next = init
		}
	}
	if next <= round {
		return round + 1
	}
	return next
}

// StateBits implements StateSizer: tv, dv and one buffered message — the
// O(log n) space claim of Proposition 4.
func (w *WaveNode) StateBits() int {
	b := 2 * 64
	if w.pending != nil {
		b += 2 * 64
	}
	return b
}
