package congest

import (
	"fmt"
	"math"
	"math/rand"

	"qcongest/internal/graph"
)

// This file implements the preparation phase of the paper's Figure 3
// (identical to Steps 1-5 of Algorithm 1 in [HPRW14]) and the classical
// 3/2-approximation baseline that finishes it with a pipelined multi-source
// eccentricity computation. The quantum algorithm of Theorem 4 reuses
// ApproxPrep and replaces the final phase with quantum optimization.

// ApproxPrep is the outcome of Figure 3's preparation.
type ApproxPrep struct {
	Info *PreInfo // leader, BFS(leader), d = ecc(leader)

	S        []bool // the sampled hitting set of Step 1
	W        int    // the vertex maximizing d(w, p(w)) (Step 2)
	WParent  []int  // BFS(w) tree
	WDepth   []int
	WNatural [][]int // BFS(w) children
	RMembers []bool  // R: the s closest vertices to w (Step 3)
	RSize    int
	RChild   [][]int // BFS(w) children restricted to R (the R-subtree)
	TauR     []int   // DFS numbers of R members along the R-subtree tour
	EccW     int     // ecc(w), a free 2-approximation lower bound
}

// notifyNode is a one-shot program: every marked node tells its tree parent
// that it is marked, so parents learn their marked children. The
// notification is a bare msgChild — the kind tag is the whole message.
type notifyNode struct {
	Parent int
	Marked bool

	MarkedChildren []int

	sent bool
	tx   msgChild
}

// notifyMarks is the Reset params of a notify session: the per-vertex
// marked flags of the next execution.
type notifyMarks struct{ Marked []bool }

// ResetNode implements Resettable.
func (nn *notifyNode) ResetNode(v int, params any) {
	switch p := params.(type) {
	case nil:
	case notifyMarks:
		nn.Marked = p.Marked[v]
	default:
		badResetParams("notifyNode", params)
	}
	nn.MarkedChildren = nil
	nn.sent = false
}

func (nn *notifyNode) Send(env *Env, out *Outbox) {
	if nn.sent {
		return
	}
	nn.sent = true
	if !nn.Marked || nn.Parent < 0 {
		return
	}
	out.Put(nn.Parent, &nn.tx)
}

func (nn *notifyNode) Receive(env *Env, inbox []Inbound) {
	for i := range inbox {
		if inbox[i].Kind == KindChild {
			nn.MarkedChildren = append(nn.MarkedChildren, inbox[i].From)
		}
	}
}

func (nn *notifyNode) Done() bool { return nn.sent }

// NextWake implements Scheduled: one shot in round 1, then nothing.
func (nn *notifyNode) NextWake(env *Env, round int) int {
	if nn.sent {
		return NeverWake
	}
	return round + 1
}

// PrepareApprox runs Steps 1-3 of Figure 3 with target sample size s and
// the given randomness seed. It retries the sampling (with derived seeds)
// when Step 1's abort condition triggers or the sample is empty.
func PrepareApprox(g *graph.Graph, s int, seed int64, opts ...Option) (*ApproxPrep, Metrics, error) {
	topo, err := NewTopology(g)
	if err != nil {
		return nil, Metrics{}, err
	}
	return PrepareApproxOn(topo, s, seed, opts...)
}

// PrepareApproxOn is PrepareApprox on an already-built topology. The
// repeated counting probes of the R-selection binary searches (one
// convergecast sum plus one broadcast each, O(log n) of them) run on two
// sessions built once and Reset per probe instead of fresh networks.
func PrepareApproxOn(topo *Topology, s int, seed int64, opts ...Option) (*ApproxPrep, Metrics, error) {
	var total Metrics
	n := topo.N()
	if s < 1 || s > n {
		return nil, total, fmt.Errorf("congest: sample parameter s=%d out of [1,%d]", s, n)
	}
	info, m, err := PreprocessOn(topo, opts...)
	if err != nil {
		return nil, total, err
	}
	total.Add(m)

	prep := &ApproxPrep{Info: info}

	// Step 1: each vertex joins S with probability (log n)/s, abort (and
	// retry) when more than n(log n)^2/s vertices join. The per-attempt
	// count check reuses one sum session over BFS(leader).
	logn := math.Log(float64(n)) + 1
	prob := math.Min(1, logn/float64(s))
	limit := int(float64(n)*logn*logn/float64(s)) + 1
	sumLeader := NewSession(topo, func(v int) Node {
		return NewConvergecastSumNode(info.Parent[v], info.Children[v], 0)
	}, opts...)
	defer sumLeader.Close()
	vals := make([]int, n) // reusable per-vertex input buffer for the probes
	runSum := func(sess *Session, root int) (int, error) {
		if err := sess.Reset(SumInputs{Values: vals}); err != nil {
			return 0, err
		}
		if err := sess.Run(4*n + 16); err != nil {
			return 0, fmt.Errorf("sum convergecast: %w", err)
		}
		total.Add(sess.Metrics())
		return sess.Node(root).(*ConvergecastSumNode).Sum, nil
	}
	for attempt := 0; ; attempt++ {
		if attempt >= 16 {
			return nil, total, fmt.Errorf("congest: sampling failed %d times", attempt)
		}
		rng := rand.New(rand.NewSource(seed + int64(attempt)*7919))
		prep.S = make([]bool, n)
		count := 0
		for v := 0; v < n; v++ {
			vals[v] = 0
			if rng.Float64() < prob {
				prep.S[v] = true
				vals[v] = 1
				count++
			}
		}
		// The count check is a convergecast sum in the real network.
		sum, err := runSum(sumLeader, info.Leader)
		if err != nil {
			return nil, total, err
		}
		if sum != count {
			return nil, total, fmt.Errorf("congest: sum convergecast returned %d, want %d", sum, count)
		}
		if count >= 1 && count <= limit {
			break
		}
	}

	// Step 2: p(v) = closest member of S, then w = argmax d(v, p(v)).
	nw := NewNetworkOn(topo, func(v int) Node { return NewMinFloodNode(prep.S[v]) }, opts...)
	if err := nw.Run(4*n + 16); err != nil {
		return nil, total, fmt.Errorf("min flood: %w", err)
	}
	total.Add(nw.Metrics())
	distS := make([]int, n)
	for v := 0; v < n; v++ {
		distS[v] = nw.Node(v).(*MinFloodNode).Dist
	}
	_, w, m, err := ConvergecastMaxOn(topo, info, distS, nil, opts...)
	if err != nil {
		return nil, total, err
	}
	total.Add(m)
	prep.W = w

	// Broadcast w so every node can join the BFS from it.
	bm, err := BroadcastOn(topo, info, w, opts...)
	if err != nil {
		return nil, total, err
	}
	total.Add(bm)

	// Step 3: BFS from w; the s closest vertices join R.
	nw = NewNetworkOn(topo, func(v int) Node { return NewBFSNode(w) }, opts...)
	if err := nw.Run(8*n + 16); err != nil {
		return nil, total, fmt.Errorf("bfs from w: %w", err)
	}
	total.Add(nw.Metrics())
	prep.WParent = make([]int, n)
	prep.WDepth = make([]int, n)
	prep.WNatural = make([][]int, n)
	for v := 0; v < n; v++ {
		b := nw.Node(v).(*BFSNode)
		prep.WParent[v] = b.Parent
		prep.WDepth[v] = b.Dist
		prep.WNatural[v] = b.Children
		if v == w {
			prep.EccW = b.Ecc
		}
	}

	// Select R: the s closest vertices to w, ties broken by id. Two
	// distributed binary searches (threshold on depth, then on id within
	// the boundary layer), each probe one convergecast sum + broadcast —
	// both on sessions built once for the whole search and Reset per probe.
	wInfo := &PreInfo{Leader: w, Parent: prep.WParent, Depth: prep.WDepth, Children: prep.WNatural, D: prep.EccW}
	sumW := NewSession(topo, func(v int) Node {
		return NewConvergecastSumNode(wInfo.Parent[v], wInfo.Children[v], 0)
	}, opts...)
	defer sumW.Close()
	bcastW := NewSession(topo, func(v int) Node {
		return NewBroadcastNode(wInfo.Parent[v], wInfo.Children[v], 0)
	}, opts...)
	defer bcastW.Close()
	runBcast := func(value int) error {
		if err := bcastW.Reset(BcastValue{Value: value}); err != nil {
			return err
		}
		if err := bcastW.Run(4*n + 16); err != nil {
			return fmt.Errorf("broadcast: %w", err)
		}
		total.Add(bcastW.Metrics())
		return nil
	}
	countAtMostDepth := func(t int) (int, error) {
		for v := 0; v < n; v++ {
			vals[v] = 0
			if prep.WDepth[v] <= t {
				vals[v] = 1
			}
		}
		c, err := runSum(sumW, w)
		if err != nil {
			return 0, err
		}
		if err := runBcast(t); err != nil {
			return 0, err
		}
		return c, nil
	}
	lo, hi := 0, prep.EccW // smallest t with count(depth <= t) >= s
	for lo < hi {
		mid := (lo + hi) / 2
		c, err := countAtMostDepth(mid)
		if err != nil {
			return nil, total, err
		}
		if c >= s {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	tStar := lo
	below := 0
	if tStar > 0 {
		c, err := countAtMostDepth(tStar - 1)
		if err != nil {
			return nil, total, err
		}
		below = c
	}
	need := s - below // how many depth == tStar vertices to admit, by id
	countLayerIDAtMost := func(theta int) (int, error) {
		for v := 0; v < n; v++ {
			vals[v] = 0
			if prep.WDepth[v] == tStar && v <= theta {
				vals[v] = 1
			}
		}
		c, err := runSum(sumW, w)
		if err != nil {
			return 0, err
		}
		if err := runBcast(theta); err != nil {
			return 0, err
		}
		return c, nil
	}
	lo, hi = 0, n-1
	for lo < hi {
		mid := (lo + hi) / 2
		c, err := countLayerIDAtMost(mid)
		if err != nil {
			return nil, total, err
		}
		if c >= need {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	theta := lo
	prep.RMembers = make([]bool, n)
	for v := 0; v < n; v++ {
		if prep.WDepth[v] < tStar || (prep.WDepth[v] == tStar && v <= theta) {
			prep.RMembers[v] = true
			prep.RSize++
		}
	}
	if prep.RSize != s {
		return nil, total, fmt.Errorf("congest: selected |R|=%d, want %d", prep.RSize, s)
	}

	// R members notify their BFS(w) parents, yielding the R-subtree.
	nw = NewNetworkOn(topo, func(v int) Node {
		return &notifyNode{Parent: prep.WParent[v], Marked: prep.RMembers[v]}
	}, opts...)
	if err := nw.Run(8); err != nil {
		return nil, total, fmt.Errorf("R notify: %w", err)
	}
	total.Add(nw.Metrics())
	prep.RChild = make([][]int, n)
	for v := 0; v < n; v++ {
		prep.RChild[v] = nw.Node(v).(*notifyNode).MarkedChildren
	}

	// DFS-number the R-subtree (full tour of 2(|R|-1) steps from w) so the
	// final phases can pipeline by tau. R is ancestor-closed in BFS(w), so
	// the R-subtree is a tree rooted at w.
	steps := 2 * (prep.RSize - 1)
	if steps < 1 {
		steps = 1
	}
	tauR, m2, err := TokenWalkOn(topo, wInfo, prep.RChild, w, steps, opts...)
	if err != nil {
		return nil, total, err
	}
	total.Add(m2)
	prep.TauR = tauR
	for v := 0; v < n; v++ {
		if prep.RMembers[v] != (tauR[v] >= 0 || v == w) {
			return nil, total, fmt.Errorf("congest: R-subtree walk missed vertex %d", v)
		}
	}
	return prep, total, nil
}

// ClassicalApproxDiameter computes the [HPRW14] 3/2-approximation: after
// PrepareApprox, the eccentricity of every vertex of R is computed with the
// pipelined multi-source BFS and per-source maximum convergecast, and the
// largest one is returned. The estimate Dhat satisfies
// floor(2D/3) <= Dhat <= D with high probability. Rounds: Õ(s + D) with
// s = ceil(sqrt(n)) by default.
func ClassicalApproxDiameter(g *graph.Graph, s int, seed int64, opts ...Option) (ExactResult, error) {
	var res ExactResult
	n := g.N()
	if n == 1 {
		return ExactResult{Diameter: 0}, nil
	}
	if s <= 0 {
		s = int(math.Ceil(math.Sqrt(float64(n))))
	}
	if s > n {
		s = n
	}
	topo, err := NewTopology(g)
	if err != nil {
		return res, err
	}
	prep, m, err := PrepareApproxOn(topo, s, seed, opts...)
	if err != nil {
		return res, err
	}
	res.Metrics.Add(m)

	// Multi-source BFS from R, sources identified by their tau rank.
	maxRank := 0
	for v := 0; v < n; v++ {
		if prep.RMembers[v] && prep.TauR[v] > maxRank {
			maxRank = prep.TauR[v]
		}
	}
	sources := maxRank + 1
	duration := sources + 2*prep.Info.D + 8
	nw := NewNetworkOn(topo, func(v int) Node {
		rank := -1
		if prep.RMembers[v] {
			rank = prep.TauR[v]
		}
		return NewSSPNode(rank, sources, duration)
	}, opts...)
	if err := nw.Run(duration + 4); err != nil {
		return res, fmt.Errorf("multi-source BFS: %w", err)
	}
	res.Metrics.Add(nw.Metrics())
	dists := make([]map[int]int, n)
	for v := 0; v < n; v++ {
		dists[v] = nw.Node(v).(*SSPNode).Dist
	}

	// Per-source maximum convergecast on BFS(w): ecc of each R member.
	wInfo := &PreInfo{Leader: prep.W, Parent: prep.WParent, Depth: prep.WDepth, Children: prep.WNatural, D: prep.EccW}
	nw = NewNetworkOn(topo, func(v int) Node {
		return NewSourceMaxNode(prep.WParent[v], prep.WNatural[v], prep.WDepth[v], wInfo.D, sources, dists[v])
	}, opts...)
	if err := nw.Run(wInfo.D + sources + 8); err != nil {
		return res, fmt.Errorf("source max convergecast: %w", err)
	}
	res.Metrics.Add(nw.Metrics())
	root := nw.Node(prep.W).(*SourceMaxNode)
	best := 0
	for _, e := range root.Max {
		if e > best {
			best = e
		}
	}
	res.Diameter = best
	return res, nil
}

func Sum(g *graph.Graph, info *PreInfo, values []int, opts ...Option) (int, Metrics, error) {
	topo, err := NewTopology(g)
	if err != nil {
		return 0, Metrics{}, err
	}
	return SumOn(topo, info, values, opts...)
}

// SumOn is Sum on an already-built topology.
func SumOn(topo *Topology, info *PreInfo, values []int, opts ...Option) (int, Metrics, error) {
	nw := NewNetworkOn(topo, func(v int) Node {
		return NewConvergecastSumNode(info.Parent[v], info.Children[v], values[v])
	}, opts...)
	if err := nw.Run(4*topo.N() + 16); err != nil {
		return 0, nw.Metrics(), fmt.Errorf("sum convergecast: %w", err)
	}
	return nw.Node(info.Leader).(*ConvergecastSumNode).Sum, nw.Metrics(), nil
}

func Broadcast(g *graph.Graph, info *PreInfo, value int, opts ...Option) (Metrics, error) {
	topo, err := NewTopology(g)
	if err != nil {
		return Metrics{}, err
	}
	return BroadcastOn(topo, info, value, opts...)
}

// BroadcastOn is Broadcast on an already-built topology.
func BroadcastOn(topo *Topology, info *PreInfo, value int, opts ...Option) (Metrics, error) {
	nw := NewNetworkOn(topo, func(v int) Node {
		return NewBroadcastNode(info.Parent[v], info.Children[v], value)
	}, opts...)
	if err := nw.Run(4*topo.N() + 16); err != nil {
		return nw.Metrics(), fmt.Errorf("broadcast: %w", err)
	}
	return nw.Metrics(), nil
}
