package congest

// Microbenchmarks for the wire hot path (DESIGN.md "Wire hot-path
// anatomy"): BenchmarkOutbox times the send half — word-packed encode,
// epoch-stamped ledgers, SoA staging — and BenchmarkRecvShard times the
// receive half — chain gathering into a reusable inbox. Both report
// allocations; TestHotPathSteadyStateAllocs pins the steady state at zero.
//
// One benchmark op is one full engine round over the whole graph, so
// ns/op tracks the per-round cost the engines pay, not a single message.

import (
	"testing"

	"qcongest/internal/graph"
)

// hotPathFixture is a network plus the staging state the engines feed the
// hot path with: one Outbox (or two, for the merge path) and the scratch
// the receive half reuses.
type hotPathFixture struct {
	nw    *Network
	topo  *Topology
	obs   []*Outbox
	heads []int32
	inbox []Inbound
	round int
}

func newHotPathFixture(tb testing.TB, n, outboxes int, opts ...Option) *hotPathFixture {
	tb.Helper()
	g := graph.RandomConnected(n, 8.0/float64(n), 7)
	topo, err := NewTopology(g)
	if err != nil {
		tb.Fatal(err)
	}
	nw := NewNetworkOn(topo, func(v int) Node { return NewWaveNode(false, 0, 1) }, opts...)
	f := &hotPathFixture{nw: nw, topo: topo, heads: make([]int32, outboxes)}
	for i := 0; i < outboxes; i++ {
		f.obs = append(f.obs, newOutbox(nw, n))
	}
	return f
}

// stageRound runs one send half: every vertex broadcasts one packed wave
// message to its full neighbor row. With two outboxes the senders are
// split even/odd, forcing the k-way merge in gatherChains.
func (f *hotPathFixture) stageRound(tx *msgWave) {
	f.round++
	for _, ob := range f.obs {
		ob.beginRound(f.round)
	}
	for v := 0; v < f.topo.N(); v++ {
		ob := f.obs[v%len(f.obs)]
		ob.begin(v)
		ob.Broadcast(f.topo.Neighbors(v), tx)
	}
}

// gatherAll runs one receive half: materialize every vertex's inbox from
// the staged chains, reusing the fixture scratch like the engine shards do.
func (f *hotPathFixture) gatherAll() int {
	total := 0
	for v := 0; v < f.topo.N(); v++ {
		f.inbox = gatherChains(f.obs, f.heads, v, f.inbox[:0])
		total += len(f.inbox)
	}
	return total
}

func BenchmarkOutbox(b *testing.B) {
	const n = 1024
	run := func(b *testing.B, stage func(f *hotPathFixture)) {
		f := newHotPathFixture(b, n, 1, WithStrictAccounting())
		stage(f) // warm the arena and queue to steady-state capacity
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stage(f)
		}
		if err := f.obs[0].err; err != nil {
			b.Fatal(err)
		}
	}
	b.Run("packed/broadcast", func(b *testing.B) {
		// msgWave has a registered fixed width: the strict check is one
		// table compare and the encode is one writeRaw.
		tx := &msgWave{Tau: 3, Delta: 5}
		run(b, func(f *hotPathFixture) { f.stageRound(tx) })
	})
	b.Run("generic/broadcast", func(b *testing.B) {
		// msgCutSum is Bound-parameterized (no fixed width), so under
		// strict accounting it takes the generic MarshalWire path — the
		// before-side of the packed fast path.
		tx := &msgCutSum{Sum: 9, Bound: 4 * n}
		run(b, func(f *hotPathFixture) {
			f.round++
			f.obs[0].beginRound(f.round)
			for v := 0; v < f.topo.N(); v++ {
				f.obs[0].begin(v)
				f.obs[0].Broadcast(f.topo.Neighbors(v), tx)
			}
		})
	})
}

func BenchmarkRecvShard(b *testing.B) {
	const n = 1024
	tx := &msgWave{Tau: 3, Delta: 5}
	run := func(b *testing.B, outboxes int) {
		f := newHotPathFixture(b, n, outboxes, WithStrictAccounting())
		f.stageRound(tx)
		if f.gatherAll() == 0 {
			b.Fatal("no messages staged")
		}
		b.ReportAllocs()
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			total += f.gatherAll()
		}
		if total == 0 {
			b.Fatal("no messages delivered")
		}
	}
	// solo: every receiver's messages live in one outbox (chain walk).
	b.Run("solo", func(b *testing.B) { run(b, 1) })
	// merge: senders split across two outboxes (k-way merge by sender id).
	b.Run("merge2", func(b *testing.B) { run(b, 2) })
}

// TestHotPathSteadyStateAllocs pins the hot path at zero steady-state
// allocations: after one warm-up round, staging a full round of packed
// broadcasts and gathering every inbox must not allocate — the regression
// guard for the epoch-stamped ledgers and the reusable receive scratch.
func TestHotPathSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name     string
		outboxes int
	}{{"solo", 1}, {"merge2", 2}} {
		t.Run(tc.name, func(t *testing.T) {
			f := newHotPathFixture(t, 256, tc.outboxes, WithStrictAccounting())
			tx := &msgWave{Tau: 3, Delta: 5}
			f.stageRound(tx)
			f.gatherAll()
			if allocs := testing.AllocsPerRun(10, func() {
				f.stageRound(tx)
				if f.gatherAll() == 0 {
					t.Fatal("no messages delivered")
				}
			}); allocs != 0 {
				t.Errorf("steady-state round: %v allocs per run, want 0", allocs)
			}
			for _, ob := range f.obs {
				if ob.err != nil {
					t.Fatal(ob.err)
				}
			}
		})
	}
}
