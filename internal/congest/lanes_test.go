package congest

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"qcongest/internal/graph"
)

// The lane-fused engine's contract: every lane of a MultiSession run is
// bit-identical — outputs, Metrics, observer wire traces, errors — to a
// solo run of the same program and parameters, across workers {1,2,8} ×
// lanes {1,2,8} × dense/frontier. These tests sweep that matrix against
// RunReference, exercise heterogeneous per-lane schedules (different idle
// gaps, different quiescence rounds, per-lane failures), and pin the
// steady-state allocation budget per lane.

// laneCase is one lane-equivalence workload: a per-lane program family
// with per-lane Reset params and an output fingerprint.
type laneCase struct {
	name      string
	topo      *Topology
	make      func(lane, v int) Node
	params    func(lane int) any // nil: run from constructed state
	maxRounds int
	fp        func(at func(v int) Node, n int) string
}

var laneCounts = []int{1, 2, 8}

// laneReference runs lane l's program solo under RunReference — the
// original sequential oracle — applying the lane's Reset params first,
// exactly as Session.Reset would.
func laneReference(t *testing.T, c laneCase, l int) schedCapture {
	t.Helper()
	var trace []string
	nw := NewNetworkOn(c.topo, func(v int) Node { return c.make(l, v) }, WithObserver(recordObs(&trace)))
	if p := c.params(l); p != nil {
		for v := 0; v < c.topo.N(); v++ {
			nw.Node(v).(Resettable).ResetNode(v, p)
		}
	}
	if err := nw.RunReference(c.maxRounds); err != nil {
		t.Fatalf("%s lane %d: reference: %v", c.name, l, err)
	}
	return schedCapture{Out: c.fp(nw.Node, c.topo.N()), Metrics: nw.Metrics(), Trace: trace}
}

func TestLaneEquivalenceSweep(t *testing.T) {
	g := graph.RandomConnected(150, 0.03, 4)
	n := g.N()
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	base := []Option{WithScheduler(SchedulerDense), WithWorkers(1)}
	info, _, err := PreprocessOn(topo, base...)
	if err != nil {
		t.Fatal(err)
	}
	d := info.D
	tourLen := 2 * (n - 1)

	starts := []int{0, 7, 33, 149, 91, 2, 58, 120}
	waveDur := 2*d + 1
	laneTaus := make([][]int, 8)
	for l := range laneTaus {
		tau := make([]int, n)
		for v := range tau {
			tau[v] = -1
		}
		tau[starts[l]] = 0
		laneTaus[l] = tau
	}
	pulseWakes := [][]int{{1, 2, 3}, {5}, {1, 40}, {7, 9}, {2}, {30}, {3, 6, 12, 24}, {1, 2, 3, 4, 5}}

	cases := []laneCase{
		{
			// Per-lane start vertices: the Figure 2 walk, lane-parameterized
			// exactly as MultiWalkSession drives it.
			name: "walk", topo: topo, maxRounds: tourLen + 4,
			make: func(lane, v int) Node {
				return NewTokenWalkNode(info.Parent[v], info.Children[v], info.Leader, -1, tourLen)
			},
			params: func(lane int) any { return WalkStart{Start: starts[lane]} },
			fp: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					fmt.Fprintf(&sb, "%d;", at(v).(*TokenWalkNode).Tau)
				}
				return sb.String()
			},
		},
		{
			// Per-lane tau assignments: the wave process with a different
			// source per lane, as MultiEccSession drives it.
			name: "wave", topo: topo, maxRounds: waveDur + 4,
			make: func(lane, v int) Node {
				return NewWaveNode(false, -1, waveDur)
			},
			params: func(lane int) any { return WaveTau{Tau: laneTaus[lane]} },
			fp: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					w := at(v).(*WaveNode)
					fmt.Fprintf(&sb, "%d/%d/%v;", w.TV, w.DV, w.Violation)
				}
				return sb.String()
			},
		},
		{
			// Per-lane constructor values, nil params.
			name: "cc-max", topo: topo, maxRounds: 4*n + 16,
			make: func(lane, v int) Node {
				return NewConvergecastMaxNode(info.Parent[v], info.Children[v], (v*13+lane*29)%97, v)
			},
			params: func(lane int) any { return nil },
			fp: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					c := at(v).(*ConvergecastMaxNode)
					fmt.Fprintf(&sb, "%d/%d;", c.Max, c.MaxWitness)
				}
				return sb.String()
			},
		},
		{
			// Per-lane roots: lanes flood from different vertices, so their
			// frontiers genuinely diverge within one fused pass.
			name: "bfs", topo: topo, maxRounds: 8*n + 16,
			make: func(lane, v int) Node {
				return NewBFSNode(starts[lane])
			},
			params: func(lane int) any { return nil },
			fp: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					b := at(v).(*BFSNode)
					fmt.Fprintf(&sb, "%d/%d/%v/%d;", b.Dist, b.Parent, b.Children, b.Ecc)
				}
				return sb.String()
			},
		},
		{
			// Identical lanes: the degenerate case must still be per-lane
			// exact.
			name: "leader", topo: topo, maxRounds: 4*n + 16,
			make: func(lane, v int) Node {
				return NewLeaderElectNode()
			},
			params: func(lane int) any { return nil },
			fp: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					fmt.Fprintf(&sb, "%d;", at(v).(*LeaderElectNode).Leader)
				}
				return sb.String()
			},
		},
		{
			// Heterogeneous idle gaps: each lane pulses on its own schedule,
			// so the lockstep loop mixes active, idle and finished lanes and
			// must reproduce each lane's gap accounting exactly.
			name: "pulse", topo: topo, maxRounds: 80,
			make: func(lane, v int) Node {
				return &pulseNode{wakes: pulseWakes[lane]}
			},
			params: func(lane int) any { return nil },
			fp: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					p := at(v).(*pulseNode)
					fmt.Fprintf(&sb, "%d/%v;", p.seen, p.done)
				}
				return sb.String()
			},
		},
		{
			name: "notify", topo: topo, maxRounds: 8,
			make: func(lane, v int) Node {
				return &notifyNode{Parent: info.Parent[v], Marked: v%3 == lane%3}
			},
			params: func(lane int) any { return nil },
			fp: func(at func(v int) Node, n int) string {
				var sb strings.Builder
				for v := 0; v < n; v++ {
					fmt.Fprintf(&sb, "%v;", at(v).(*notifyNode).MarkedChildren)
				}
				return sb.String()
			},
		},
	}

	for _, c := range cases {
		want := make([]schedCapture, 8)
		for l := 0; l < 8; l++ {
			want[l] = laneReference(t, c, l)
		}
		for _, m := range schedMatrix {
			for _, lanes := range laneCounts {
				name := fmt.Sprintf("%s [%s lanes=%d]", c.name, m.name, lanes)
				ms := NewMultiSession(topo, lanes, c.make, m.opts...)
				if ms.Topology() != topo {
					t.Fatalf("%s: Topology() mismatch", name)
				}
				traces := make([][]string, lanes)
				for l := 0; l < lanes; l++ {
					li := l
					if err := ms.SetLaneObserver(l, recordObs(&traces[li])); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
				}
				// Two batches through the same engine: steady-state reuse
				// must stay bit-identical.
				for rerun := 0; rerun < 2; rerun++ {
					for l := 0; l < lanes; l++ {
						traces[l] = traces[l][:0]
						if err := ms.Reset(l, c.params(l)); err != nil {
							t.Fatalf("%s: Reset lane %d: %v", name, l, err)
						}
					}
					if err := ms.Run(c.maxRounds); err != nil {
						t.Fatalf("%s rerun %d: %v", name, rerun, err)
					}
					for l := 0; l < lanes; l++ {
						li := l
						if err := ms.LaneErr(l); err != nil {
							t.Fatalf("%s rerun %d lane %d: %v", name, rerun, l, err)
						}
						if out := c.fp(func(v int) Node { return ms.Node(li, v) }, n); out != want[l].Out {
							t.Errorf("%s rerun %d lane %d: outputs differ from RunReference", name, rerun, l)
						}
						if got := ms.Metrics(l); got != want[l].Metrics {
							t.Errorf("%s rerun %d lane %d: Metrics = %+v, want %+v",
								name, rerun, l, got, want[l].Metrics)
						}
						if !reflect.DeepEqual(traces[l], want[l].Trace) {
							t.Errorf("%s rerun %d lane %d: observer trace differs (%d vs %d events)",
								name, rerun, l, len(traces[l]), len(want[l].Trace))
						}
					}
				}
				ms.Close()
			}
		}
	}
}

// laneViolatorNode triggers a deterministic bandwidth violation at round
// `at`. It deliberately lacks the Scheduled contract, so its lane demotes
// to dense execution — inside a MultiSession whose other lanes may run the
// frontier path.
type laneViolatorNode struct {
	at   int
	done bool
	tx   RawMessage
}

func (h *laneViolatorNode) Send(env *Env, out *Outbox) {
	if env.ID != 0 || len(env.Neighbors) == 0 {
		return
	}
	if env.Round < h.at {
		h.tx.Width = 1
		out.Put(env.Neighbors[0], &h.tx)
		return
	}
	h.tx.Width = 1 << 20
	out.Broadcast(env.Neighbors, &h.tx)
}
func (h *laneViolatorNode) Receive(env *Env, inbox []Inbound) {}
func (h *laneViolatorNode) Done() bool                        { return h.done }
func (h *laneViolatorNode) ResetNode(v int, params any) {
	if params != nil {
		badResetParams("laneViolatorNode", params)
	}
	h.done = false
}

// TestLaneFailureIsolation: one lane timing out or violating bandwidth
// must fail with exactly its solo error and accounting while sibling lanes
// complete untouched. The violator lane also lacks the Scheduled contract,
// so this covers frontier and dense lanes fused in one MultiSession.
func TestLaneFailureIsolation(t *testing.T) {
	g := graph.Path(40)
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	const maxRounds = 10
	makeNode := func(lane, v int) Node {
		switch lane {
		case 1:
			return &pulseNode{wakes: []int{50}} // wake far past the budget: times out
		case 2:
			return &laneViolatorNode{at: 3} // bandwidth violation in round 3
		default:
			return &pulseNode{wakes: []int{1, 2, 5}} // quiesces at round 5
		}
	}
	type soloResult struct {
		errStr  string
		metrics Metrics
	}
	solo := make([]soloResult, 4)
	for l := 0; l < 4; l++ {
		li := l
		for _, m := range schedMatrix {
			s := NewSession(topo, func(v int) Node { return makeNode(li, v) }, m.opts...)
			if err := s.Reset(nil); err != nil {
				t.Fatal(err)
			}
			runErr := s.Run(maxRounds)
			res := soloResult{metrics: s.Metrics()}
			if runErr != nil {
				res.errStr = runErr.Error()
			}
			if m.name == "dense/w1" {
				solo[l] = res
			} else if res != solo[l] {
				t.Fatalf("solo lane %d [%s]: %+v, want %+v", l, m.name, res, solo[l])
			}
			s.Close()
		}
		if (l == 1 || l == 2) == (solo[l].errStr == "") {
			t.Fatalf("solo lane %d: unexpected outcome %q", l, solo[l].errStr)
		}
	}
	for _, m := range schedMatrix {
		ms := NewMultiSession(topo, 4, makeNode, m.opts...)
		for rerun := 0; rerun < 2; rerun++ {
			for l := 0; l < 4; l++ {
				if err := ms.Reset(l, nil); err != nil {
					t.Fatal(err)
				}
			}
			runErr := ms.Run(maxRounds)
			// Run reports the smallest failing lane's error: lane 1.
			if runErr == nil || runErr.Error() != solo[1].errStr {
				t.Fatalf("[%s] rerun %d: Run error = %v, want %q", m.name, rerun, runErr, solo[1].errStr)
			}
			for l := 0; l < 4; l++ {
				got := soloResult{metrics: ms.Metrics(l)}
				if err := ms.LaneErr(l); err != nil {
					got.errStr = err.Error()
				}
				if got != solo[l] {
					t.Errorf("[%s] rerun %d lane %d: %+v, want %+v", m.name, rerun, l, got, solo[l])
				}
			}
		}
		ms.Close()
	}
}

// TestMultiEvalSessionEquivalence pins the lane-fused Figure 2 composites
// to their solo counterparts: every lane's tau vector, eccentricity value
// and Metrics must equal a solo WalkSession/EccSession evaluation of the
// same input, including partial batches and engine reuse.
func TestMultiEvalSessionEquivalence(t *testing.T) {
	g := graph.RandomConnected(120, 0.04, 8)
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	info, _, err := PreprocessOn(topo, WithScheduler(SchedulerDense), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	d := info.D
	steps, waveDur := 2*d, 6*d+2
	starts := []int{0, 5, 17, 119, 64, 3, 88, 42}

	ws := NewWalkSession(topo, info, info.Children, steps)
	es := NewEccSession(topo, info, waveDur)
	defer ws.Close()
	defer es.Close()
	wantTaus := make([][]int, len(starts))
	wantWalkM := make([]Metrics, len(starts))
	wantVals := make([]int, len(starts))
	wantEccM := make([]Metrics, len(starts))
	for i, u := range starts {
		tau, m, err := ws.Eval(u)
		if err != nil {
			t.Fatal(err)
		}
		wantTaus[i] = append([]int(nil), tau...)
		wantWalkM[i] = m
		val, em, err := es.Eval(tau)
		if err != nil {
			t.Fatal(err)
		}
		wantVals[i], wantEccM[i] = val, em
	}

	for _, m := range schedMatrix {
		for _, lanes := range laneCounts {
			name := fmt.Sprintf("[%s lanes=%d]", m.name, lanes)
			mw := NewMultiWalkSession(topo, info, info.Children, steps, lanes, m.opts...)
			me := NewMultiEccSession(topo, info, waveDur, lanes, m.opts...)
			if mw.Lanes() != lanes || me.Lanes() != lanes {
				t.Fatalf("%s: Lanes() mismatch", name)
			}
			// Full batches twice (engine reuse), then a partial batch.
			batches := [][]int{starts[:lanes], starts[:lanes]}
			if lanes > 1 {
				batches = append(batches, starts[:lanes-1])
			}
			for bi, batch := range batches {
				taus, walkM, err := mw.EvalBatch(batch)
				if err != nil {
					t.Fatalf("%s batch %d: %v", name, bi, err)
				}
				if len(taus) != len(batch) || len(walkM) != len(batch) {
					t.Fatalf("%s batch %d: short result", name, bi)
				}
				for l := range batch {
					if !reflect.DeepEqual(taus[l], wantTaus[l]) {
						t.Errorf("%s batch %d lane %d: tau differs from solo", name, bi, l)
					}
					if walkM[l] != wantWalkM[l] {
						t.Errorf("%s batch %d lane %d: walk Metrics = %+v, want %+v",
							name, bi, l, walkM[l], wantWalkM[l])
					}
				}
				vals, eccM, err := me.EvalBatch(taus)
				if err != nil {
					t.Fatalf("%s batch %d: %v", name, bi, err)
				}
				for l := range batch {
					if vals[l] != wantVals[l] {
						t.Errorf("%s batch %d lane %d: value = %d, want %d", name, bi, l, vals[l], wantVals[l])
					}
					if eccM[l] != wantEccM[l] {
						t.Errorf("%s batch %d lane %d: ecc Metrics = %+v, want %+v",
							name, bi, l, eccM[l], wantEccM[l])
					}
				}
			}
			mw.Close()
			me.Close()
		}
	}
}

// TestMultiSessionAPIErrors covers the MultiSession misuse surface.
func TestMultiSessionAPIErrors(t *testing.T) {
	topo, err := NewTopology(graph.Path(8))
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMultiSession(topo, 2, func(lane, v int) Node { return NewLeaderElectNode() })
	if err := ms.SetLaneObserver(5, func(round, from, to, bits int, wire WireView) {}); err == nil {
		t.Error("SetLaneObserver out of range: no error")
	}
	if err := ms.Run(10); err == nil {
		t.Error("Run with no lane Reset: no error")
	}
	if err := ms.Reset(2, nil); err == nil {
		t.Error("Reset out of range: no error")
	}
	if err := ms.Reset(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := ms.Run(100); err != nil {
		t.Fatal(err)
	}
	if err := ms.SetLaneObserver(0, func(round, from, to, bits int, wire WireView) {}); err == nil {
		t.Error("SetLaneObserver after first Run: no error")
	}
	if err := ms.Run(10); err == nil {
		t.Error("re-Run without Reset: no error")
	}
	ms.Close()
	ms.Close() // idempotent
	if err := ms.Reset(0, nil); err == nil {
		t.Error("Reset on closed MultiSession: no error")
	}
	if err := ms.Run(10); err == nil {
		t.Error("Run on closed MultiSession: no error")
	}

	// A lane whose programs are not Resettable is rejected at Reset.
	bad := NewMultiSession(topo, 1, func(lane, v int) Node { return &duelingHogNode{threshold: 1 << 30} })
	defer bad.Close()
	if err := bad.Reset(0, nil); err == nil {
		t.Error("Reset with non-Resettable programs: no error")
	}
}

// TestLaneSteadyStateAllocs pins the per-lane steady-state allocation
// budget: a warmed lane-fused Evaluation batch must stay within the solo
// session budget (~2.5 allocs per Reset+Run, two sessions per Evaluation)
// for every lane.
func TestLaneSteadyStateAllocs(t *testing.T) {
	g := graph.Path(256)
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	info, _, err := PreprocessOn(topo, WithScheduler(SchedulerDense), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	const lanes = 8
	me := NewMultiEccSession(topo, info, 2*info.D+1, lanes, WithWorkers(1))
	defer me.Close()
	taus := make([][]int, lanes)
	for l := range taus {
		tau := make([]int, topo.N())
		for v := range tau {
			tau[v] = -1
		}
		tau[l*17] = 0
		taus[l] = tau
	}
	batch := func() {
		if _, _, err := me.EvalBatch(taus); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		batch() // warm the arenas and delivery buffers
	}
	allocs := testing.AllocsPerRun(20, batch)
	perLane := allocs / lanes
	// Solo EccSession.Eval costs ~5 allocs (two Reset param boxes, two Run
	// bookkeeping pairs); allow the same envelope per lane.
	if perLane > 6 {
		t.Errorf("steady-state allocations: %.1f per lane per Evaluation (%.0f per batch), budget 6", perLane, allocs)
	}
}

// TestCloneObserverRefused: cloning a session that has an observer is an
// explicit error (the clones would share the callback and interleave their
// traces); unobserved sessions keep cloning.
func TestCloneObserverRefused(t *testing.T) {
	topo, err := NewTopology(graph.Path(8))
	if err != nil {
		t.Fatal(err)
	}
	var trace []string
	observed := NewSession(topo, func(v int) Node { return NewLeaderElectNode() },
		WithObserver(recordObs(&trace)))
	defer observed.Close()
	if _, err := observed.Clone(); err == nil {
		t.Error("Clone of an observed session: no error")
	}
	plain := NewSession(topo, func(v int) Node { return NewLeaderElectNode() })
	defer plain.Close()
	c, err := plain.Clone()
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}
