package congest

// Tree aggregation programs: convergecast of a maximum toward the root
// (Figure 2 Step 3: "the transmission is done bottom up on BFS(leader), and
// at each node only the maximum of received values is transmitted") and
// broadcast of a value from the root down the tree. Both run on a
// previously-built BFS tree and finish within height+1 rounds.

type (
	// msgMax carries a partial maximum (value, witness id) up the tree.
	// Values are distances and similar counters bounded by 4n (width
	// BitsForID(4n+1)); the witness is a vertex id (width BitsForID(n)).
	msgMax struct {
		Value   int
		Witness int
	}
	// msgBcast carries the root's value down the tree. Broadcast values
	// (d, thresholds, vertex ids) are bounded by 4n.
	msgBcast struct{ Value int }
)

func (m *msgMax) WireKind() Kind { return KindMax }
func (m *msgMax) MarshalWire(w *Writer) {
	w.WriteID(m.Value, 4*w.N+1)
	w.WriteID(m.Witness, w.N)
}
func (m *msgMax) UnmarshalWire(r *Reader) {
	m.Value = r.ReadID(4*r.N + 1)
	m.Witness = r.ReadID(r.N)
}
func (m *msgMax) DeclaredBits(n int) int { return KindBits + BitsForID(4*n+1) + BitsForID(n) }
func (m *msgMax) PackWire(n int) (uint64, int, bool) {
	if m.Value < 0 || m.Value >= 4*n+1 || m.Witness < 0 || m.Witness >= n {
		return 0, 0, false
	}
	wv := BitsForID(4*n + 1)
	return uint64(m.Value) | uint64(m.Witness)<<wv, wv + BitsForID(n), true
}
func (m *msgMax) UnpackWire(n int, p uint64, width int) bool {
	wv := BitsForID(4*n + 1)
	if width != wv+BitsForID(n) {
		return false
	}
	value, witness := p&(1<<wv-1), p>>wv
	if value >= uint64(4*n+1) || witness >= uint64(n) {
		return false
	}
	m.Value, m.Witness = int(value), int(witness)
	return true
}

func (m *msgBcast) WireKind() Kind          { return KindBcast }
func (m *msgBcast) MarshalWire(w *Writer)   { w.WriteID(m.Value, 4*w.N+1) }
func (m *msgBcast) UnmarshalWire(r *Reader) { m.Value = r.ReadID(4*r.N + 1) }
func (m *msgBcast) DeclaredBits(n int) int  { return KindBits + BitsForID(4*n+1) }
func (m *msgBcast) PackWire(n int) (uint64, int, bool) {
	if m.Value < 0 || m.Value >= 4*n+1 {
		return 0, 0, false
	}
	return uint64(m.Value), BitsForID(4*n + 1), true
}
func (m *msgBcast) UnpackWire(n int, p uint64, width int) bool {
	if width != BitsForID(4*n+1) || p >= uint64(4*n+1) {
		return false
	}
	m.Value = int(p)
	return true
}

func init() {
	RegisterKind(KindMax, "max", func() WireMessage { return new(msgMax) })
	RegisterKind(KindBcast, "bcast", func() WireMessage { return new(msgBcast) })
	RegisterKindWidth(KindMax, func(n int) int { return KindBits + BitsForID(4*n+1) + BitsForID(n) })
	RegisterKindWidth(KindBcast, func(n int) int { return KindBits + BitsForID(4*n+1) })
}

// ConvergecastMaxNode aggregates the maximum of per-node input values at
// the root. Each node waits for all of its children, then forwards the max
// of its own value and theirs; only one O(log n)-bit message crosses each
// tree edge.
type ConvergecastMaxNode struct {
	Parent   int
	Children []int
	Value    int
	Witness  int // id associated with Value (e.g. the vertex achieving it)

	// Outputs (meaningful at the root).
	Max        int
	MaxWitness int

	received int
	sent     bool
	isRoot   bool

	tx, rx msgMax
}

// NewConvergecastMaxNode builds the program for one node. witness
// identifies where the value came from (often the node itself).
func NewConvergecastMaxNode(parent int, children []int, value, witness int) *ConvergecastMaxNode {
	return &ConvergecastMaxNode{
		Parent:     parent,
		Children:   append([]int(nil), children...),
		Value:      value,
		Witness:    witness,
		Max:        value,
		MaxWitness: witness,
		isRoot:     parent < 0,
	}
}

// MaxInputs is the Reset params of a max-convergecast session: the
// per-vertex input values of the next execution and, optionally, their
// witnesses (nil: each vertex witnesses itself, like ConvergecastMax).
type MaxInputs struct {
	Values    []int
	Witnesses []int
}

// ResetNode implements Resettable.
func (c *ConvergecastMaxNode) ResetNode(v int, params any) {
	switch p := params.(type) {
	case nil:
	case MaxInputs:
		c.Value = p.Values[v]
		if p.Witnesses != nil {
			c.Witness = p.Witnesses[v]
		} else {
			c.Witness = v
		}
	default:
		badResetParams("ConvergecastMaxNode", params)
	}
	c.Max, c.MaxWitness = c.Value, c.Witness
	c.received = 0
	c.sent = false
}

// Send implements Node.
func (c *ConvergecastMaxNode) Send(env *Env, out *Outbox) {
	if c.sent || c.received < len(c.Children) {
		return
	}
	c.sent = true
	if c.isRoot {
		return
	}
	c.tx = msgMax{Value: c.Max, Witness: c.MaxWitness}
	out.Put(c.Parent, &c.tx)
}

// Receive implements Node.
func (c *ConvergecastMaxNode) Receive(env *Env, inbox []Inbound) {
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != KindMax || in.Decode(env, &c.rx) != nil {
			continue
		}
		c.received++
		if c.rx.Value > c.Max || (c.rx.Value == c.Max && c.rx.Witness < c.MaxWitness) {
			c.Max = c.rx.Value
			c.MaxWitness = c.rx.Witness
		}
	}
}

// Done implements Node.
func (c *ConvergecastMaxNode) Done() bool { return c.sent }

// NextWake implements Scheduled: a node transmits once, as soon as all of
// its children have reported (leaves in round 1); child reports are
// messages and schedule the node by themselves.
func (c *ConvergecastMaxNode) NextWake(env *Env, round int) int {
	if c.sent {
		return NeverWake
	}
	if c.received >= len(c.Children) {
		return round + 1
	}
	return NeverWake
}

// StateBits implements StateSizer.
func (c *ConvergecastMaxNode) StateBits() int { return 4 * 64 }

// BroadcastNode distributes the root's value down a tree.
type BroadcastNode struct {
	Parent   int
	Children []int

	// Value is the input at the root and the output everywhere.
	Value int

	have bool
	sent bool

	tx, rx msgBcast
}

// NewBroadcastNode builds the program for one node; value is ignored except
// at the root.
func NewBroadcastNode(parent int, children []int, value int) *BroadcastNode {
	b := &BroadcastNode{Parent: parent, Children: append([]int(nil), children...), Value: value}
	if parent < 0 {
		b.have = true
	}
	return b
}

// BcastValue is the Reset params of a broadcast session: the value the root
// distributes in the next execution.
type BcastValue struct{ Value int }

// ResetNode implements Resettable. Like the constructor, the value is
// installed at every vertex but only the root's copy matters.
func (b *BroadcastNode) ResetNode(v int, params any) {
	switch p := params.(type) {
	case nil:
	case BcastValue:
		b.Value = p.Value
	default:
		badResetParams("BroadcastNode", params)
	}
	b.have = b.Parent < 0
	b.sent = false
}

// Send implements Node.
func (b *BroadcastNode) Send(env *Env, out *Outbox) {
	if !b.have || b.sent {
		return
	}
	b.sent = true
	b.tx.Value = b.Value
	out.Broadcast(b.Children, &b.tx)
}

// Receive implements Node.
func (b *BroadcastNode) Receive(env *Env, inbox []Inbound) {
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != KindBcast || in.Decode(env, &b.rx) != nil {
			continue
		}
		b.Value = b.rx.Value
		b.have = true
	}
}

// Done implements Node.
func (b *BroadcastNode) Done() bool { return b.sent }

// NextWake implements Scheduled: the root transmits in round 1; every
// other node forwards once, the round after the value reaches it.
func (b *BroadcastNode) NextWake(env *Env, round int) int {
	if b.sent {
		return NeverWake
	}
	if b.have {
		return round + 1
	}
	return NeverWake
}

// StateBits implements StateSizer.
func (b *BroadcastNode) StateBits() int { return 64 }
