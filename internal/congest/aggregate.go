package congest

// Tree aggregation programs: convergecast of a maximum toward the root
// (Figure 2 Step 3: "the transmission is done bottom up on BFS(leader), and
// at each node only the maximum of received values is transmitted") and
// broadcast of a value from the root down the tree. Both run on a
// previously-built BFS tree and finish within height+1 rounds.

type (
	// msgMax carries a partial maximum (value, witness id) up the tree.
	msgMax struct {
		Value   int
		Witness int
	}
	// msgBcast carries the root's value down the tree.
	msgBcast struct{ Value int }
)

// ConvergecastMaxNode aggregates the maximum of per-node input values at
// the root. Each node waits for all of its children, then forwards the max
// of its own value and theirs; only one O(log n)-bit message crosses each
// tree edge.
type ConvergecastMaxNode struct {
	Parent   int
	Children []int
	Value    int
	Witness  int // id associated with Value (e.g. the vertex achieving it)

	// Outputs (meaningful at the root).
	Max        int
	MaxWitness int

	received int
	sent     bool
	isRoot   bool
}

// NewConvergecastMaxNode builds the program for one node. witness
// identifies where the value came from (often the node itself).
func NewConvergecastMaxNode(parent int, children []int, value, witness int) *ConvergecastMaxNode {
	return &ConvergecastMaxNode{
		Parent:     parent,
		Children:   append([]int(nil), children...),
		Value:      value,
		Witness:    witness,
		Max:        value,
		MaxWitness: witness,
		isRoot:     parent < 0,
	}
}

// Send implements Node.
func (c *ConvergecastMaxNode) Send(env *Env) []Outbound {
	if c.sent || c.received < len(c.Children) {
		return nil
	}
	c.sent = true
	if c.isRoot {
		return nil
	}
	bits := 2 * BitsForID(4*env.N+1)
	return []Outbound{{To: c.Parent, Payload: msgMax{Value: c.Max, Witness: c.MaxWitness}, Bits: bits}}
}

// Receive implements Node.
func (c *ConvergecastMaxNode) Receive(env *Env, inbox []Inbound) {
	for _, in := range inbox {
		m, ok := in.Payload.(msgMax)
		if !ok {
			continue
		}
		c.received++
		if m.Value > c.Max || (m.Value == c.Max && m.Witness < c.MaxWitness) {
			c.Max = m.Value
			c.MaxWitness = m.Witness
		}
	}
}

// Done implements Node.
func (c *ConvergecastMaxNode) Done() bool { return c.sent }

// StateBits implements StateSizer.
func (c *ConvergecastMaxNode) StateBits() int { return 4 * 64 }

// BroadcastNode distributes the root's value down a tree.
type BroadcastNode struct {
	Parent   int
	Children []int

	// Value is the input at the root and the output everywhere.
	Value int

	have bool
	sent bool
}

// NewBroadcastNode builds the program for one node; value is ignored except
// at the root.
func NewBroadcastNode(parent int, children []int, value int) *BroadcastNode {
	b := &BroadcastNode{Parent: parent, Children: append([]int(nil), children...), Value: value}
	if parent < 0 {
		b.have = true
	}
	return b
}

// Send implements Node.
func (b *BroadcastNode) Send(env *Env) []Outbound {
	if !b.have || b.sent {
		return nil
	}
	b.sent = true
	out := make([]Outbound, 0, len(b.Children))
	bits := BitsForID(4*env.N + 1)
	for _, c := range b.Children {
		out = append(out, Outbound{To: c, Payload: msgBcast{Value: b.Value}, Bits: bits})
	}
	return out
}

// Receive implements Node.
func (b *BroadcastNode) Receive(env *Env, inbox []Inbound) {
	for _, in := range inbox {
		if m, ok := in.Payload.(msgBcast); ok {
			b.Value = m.Value
			b.have = true
		}
	}
}

// Done implements Node.
func (b *BroadcastNode) Done() bool { return b.sent }

// StateBits implements StateSizer.
func (b *BroadcastNode) StateBits() int { return 64 }
