package congest

// This file implements the frontier scheduler: the engine strategy that
// executes, each round, only the vertices that can possibly act — the
// active frontier — instead of all n. Every program in the Figure 2
// pipeline (BFS waves, token walks, the wave flood, Bellman–Ford) touches a
// thin frontier of vertices per round, so executing only that frontier
// makes wall-clock scale with the total work the algorithm performs rather
// than with n x rounds.
//
// # The frontier invariant
//
// A vertex is executed in round r if and only if at least one of:
//
//  1. a message was delivered to it in round r-1 (messages may change its
//     state, so its next Send may emit);
//  2. its program self-scheduled round r through the Scheduled contract
//     (NextWake), which covers spontaneous actions — a wave initiation at
//     round 2*tau'+1, a fixed-duration timer firing, the next step of a
//     pipelined schedule;
//  3. its program does not implement the contract at all — the
//     conservative always-active default, under which the vertex runs
//     every round exactly as in the dense engine, so custom user programs
//     written against the facade keep working unchanged.
//
// Message delivery is independent of the frontier: a message sent in round
// r is received in round r by its target whether or not the target was
// scheduled (the receive half runs over frontier ∪ receivers).
//
// The contract a Scheduled program must uphold is exactly: whenever the
// scheduler would skip the vertex, running its Send and Receive (with an
// empty inbox) in the dense engine would emit nothing and change no state.
// Under that contract the frontier execution is bit-identical to the dense
// one by construction: skipped work is work that provably does nothing.
// The scheduler-equivalence tests assert this across the whole program
// suite, worker counts and session reuse, against RunReference.
//
// # Determinism
//
// The frontier is a deterministic function of the run history: receivers
// are determined by the (deterministic) sends, self-wakes by program state,
// and the always-active set by the program types. Worker shards iterate the
// sorted frontier slice (worker w executes frontier[i] for i ≡ w mod k), so
// per-worker delivery buffers stay ordered by ascending sender and the
// round barrier's k-way merge, metrics fold and canonical error selection
// work exactly as in the dense engine — outputs are bit-identical for every
// worker count.
//
// # Quiescence and idle-round accounting
//
// The engine tracks the number of not-Done vertices incrementally (a
// vertex's Done can only change in a round that executes it), so quiescence
// is detected without the dense engine's O(n) per-round scan. When the
// frontier is empty but self-wakes are pending, every round up to the next
// wake would execute as an empty round in the dense engine; the scheduler
// skips them in O(1) and accounts them identically — Metrics.Rounds
// advances over the gap and Metrics.DroppedRounds counts each skipped
// round, exactly as if they had been executed empty. An empty frontier
// with no pending wake and not-Done vertices can never quiesce; the run
// fails with the same error and metrics the dense engine produces at
// maxRounds.

import (
	"fmt"
	"slices"
)

// Scheduler selects the engine's round-execution strategy.
type Scheduler uint8

const (
	// SchedulerFrontier (the default) executes only the active frontier
	// each round: vertices that received a message last round, vertices
	// whose program self-scheduled the round (Scheduled), and vertices
	// whose program does not implement the contract (always active). It is
	// bit-identical to the dense engine for every worker count.
	SchedulerFrontier Scheduler = iota
	// SchedulerDense executes every vertex every round — the original
	// strategy, retained as a selectable oracle for equivalence testing
	// and benchmarking.
	SchedulerDense
)

// String returns the scheduler's flag name.
func (s Scheduler) String() string {
	if s == SchedulerDense {
		return "dense"
	}
	return "frontier"
}

// WithScheduler selects the round-execution strategy (default
// SchedulerFrontier). Like WithWorkers, the choice only trades wall-clock
// time: outputs, Metrics, observer traces and errors are bit-identical for
// either scheduler.
func WithScheduler(s Scheduler) Option {
	return func(nw *Network) { nw.sched = s }
}

// NeverWake is the NextWake return value meaning "message-driven": the
// vertex needs no execution until a message arrives.
const NeverWake = 0

// Scheduled is the optional activity contract a node program implements to
// benefit from frontier scheduling. The engine calls NextWake after the
// program is constructed or reset (round = 0) and after every round that
// executes the vertex; env identifies the vertex (ID, N, Neighbors — its
// Round field equals round) and round is the round that just completed.
//
// The return value is the next round at which the vertex must be executed
// even if no message arrives before then: round+1 to run next round, a
// larger value to sleep until a scheduled action (values <= round are
// clamped to round+1), or NeverWake when the vertex is purely
// message-driven until further notice. A delivered message always
// schedules its receiver for the following round, so NextWake only needs
// to cover spontaneous actions.
//
// Contract: if NextWake answers NeverWake (or a round later than r), then
// executing the vertex at round r with an empty inbox must emit nothing
// and change no state — that is what makes skipping it invisible.
// Programs that do not implement Scheduled are conservatively executed
// every round, which reproduces dense behavior exactly.
type Scheduled interface {
	NextWake(env *Env, round int) int
}

// wakeEntry is one pending self-wake: vertex v wants to run at round.
type wakeEntry struct {
	round int32
	v     int32
}

// frontierState is the engine's per-run frontier bookkeeping. All slices
// are allocated once (newFrontierState) and recycled across rounds and —
// via reset — across the executions of a persistent Session engine, so
// steady-state rounds and re-run Evaluations allocate nothing.
type frontierState struct {
	alwaysOn []int32 // vertices without the Scheduled contract, ascending

	wake []int32     // wake[v]: registered self-wake round (0 = none)
	heap []wakeEntry // min-heap by (round, v); stale entries skipped via wake

	cur    []int32 // the frontier executing the current round, sorted
	recv   []int32 // cur ∪ this round's receivers, sorted
	next   []int32 // accumulator for the next round's frontier (unsorted)
	inNext []bool  // membership marks for next
	inRecv []bool  // membership marks for recv

	done    []bool // last observed Done() per vertex
	notDone int

	preMax     int  // max initial StateBits over vertices outside frontier(1)
	preSampled bool // preMax computed (at the first frontier build)

	wakeBuf   [][]wakeEntry // per-worker NextWake answers, merged at the barrier
	doneDelta []int         // per-worker notDone deltas
}

func newFrontierState(n, k int, alwaysOn []int32) *frontierState {
	return &frontierState{
		alwaysOn:  alwaysOn,
		wake:      make([]int32, n),
		inNext:    make([]bool, n),
		inRecv:    make([]bool, n),
		done:      make([]bool, n),
		wakeBuf:   make([][]wakeEntry, k),
		doneDelta: make([]int, k),
	}
}

// reset prepares the state for a fresh execution on a persistent engine.
func (fr *frontierState) reset() {
	for i := range fr.wake {
		fr.wake[i] = 0
	}
	fr.heap = fr.heap[:0]
	fr.cur = fr.cur[:0]
	fr.recv = fr.recv[:0]
	for _, v := range fr.next {
		fr.inNext[v] = false
	}
	fr.next = fr.next[:0]
	fr.notDone = 0
	fr.preMax = 0
	fr.preSampled = false
}

// push inserts a wake entry into the min-heap (ordered by round, then v —
// a total order, so the pop sequence is deterministic regardless of
// insertion order).
func (fr *frontierState) push(e wakeEntry) {
	h := append(fr.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].round < h[i].round || (h[p].round == h[i].round && h[p].v <= h[i].v) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	fr.heap = h
}

// pop removes and returns the minimum wake entry.
func (fr *frontierState) pop() wakeEntry {
	h := fr.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && (h[l].round < h[min].round || (h[l].round == h[min].round && h[l].v < h[min].v)) {
			min = l
		}
		if r < len(h) && (h[r].round < h[min].round || (h[r].round == h[min].round && h[r].v < h[min].v)) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	fr.heap = h
	return top
}

// nextWakeRound returns the earliest valid pending wake round, discarding
// stale heap entries; 0 when none are pending.
func (fr *frontierState) nextWakeRound() int {
	for len(fr.heap) > 0 {
		top := fr.heap[0]
		if fr.wake[top.v] == top.round {
			return int(top.round)
		}
		fr.pop()
	}
	return 0
}

// register records a program's NextWake answer given after round cur.
// Wakes due next round go straight into the next-frontier accumulator;
// later wakes go to the heap. The latest answer wins: re-registering
// replaces the previous wake (stale heap entries are skipped lazily).
func (fr *frontierState) register(v int32, wk, cur int) {
	if wk == NeverWake {
		fr.wake[v] = 0
		return
	}
	if wk <= cur+1 {
		fr.wake[v] = 0
		if !fr.inNext[v] {
			fr.inNext[v] = true
			fr.next = append(fr.next, v)
		}
		return
	}
	if fr.wake[v] == int32(wk) {
		return
	}
	fr.wake[v] = int32(wk)
	fr.push(wakeEntry{round: int32(wk), v: v})
}

// buildFrontier assembles the sorted frontier for `round` from the
// accumulated receivers/near-wakes, the self-wakes due by `round`, and the
// always-active vertices.
func (e *engine) buildFrontier(round int) {
	fr := e.fr
	cur := append(fr.cur[:0], fr.next...)
	for len(fr.heap) > 0 && int(fr.heap[0].round) <= round {
		top := fr.pop()
		if fr.wake[top.v] != top.round {
			continue // superseded registration
		}
		fr.wake[top.v] = 0
		if !fr.inNext[top.v] {
			cur = append(cur, top.v)
		}
	}
	for _, v := range fr.alwaysOn {
		if !fr.inNext[v] {
			cur = append(cur, v)
		}
	}
	for _, v := range fr.next {
		fr.inNext[v] = false
	}
	fr.next = fr.next[:0]
	slices.Sort(cur)
	fr.cur = cur
}

// samplePre records the initial StateBits of every vertex outside the
// first frontier. The dense engine samples every vertex every round, so
// the states of vertices that are skipped before their first execution
// are exactly their initial states; folding this maximum (at the first
// round barrier, like the dense engine's first samples) makes
// Metrics.MaxStateBits scheduler-independent.
func (e *engine) samplePre() {
	fr := e.fr
	max := 0
	for v, nd := range e.nw.nodes {
		s, ok := nd.(StateSizer)
		if !ok {
			continue
		}
		if _, in := slices.BinarySearch(fr.cur, int32(v)); in {
			continue
		}
		if b := s.StateBits(); b > max {
			max = b
		}
	}
	fr.preMax = max
	fr.preSampled = true
}

// buildRecvSet assembles the sorted receive set (frontier ∪ this round's
// receivers) after the send half, and seeds the next frontier with the
// receivers (rule 1 of the frontier invariant).
func (e *engine) buildRecvSet() {
	fr := e.fr
	recv := append(fr.recv[:0], fr.cur...)
	for _, v := range fr.cur {
		fr.inRecv[v] = true
	}
	for w := range e.ws {
		for _, to := range e.ws[w].outbox.touched {
			if !fr.inNext[to] {
				fr.inNext[to] = true
				fr.next = append(fr.next, int32(to))
			}
			if !fr.inRecv[to] {
				fr.inRecv[to] = true
				recv = append(recv, int32(to))
			}
		}
	}
	for _, v := range recv {
		fr.inRecv[v] = false
	}
	slices.Sort(recv)
	fr.recv = recv
}

// sendShardF runs the Send half for worker w's slice of the frontier
// (frontier[i] for i ≡ w mod k; ascending, so the delivery buffers stay
// canonically ordered). Identical to sendShard except for the iteration
// domain.
func (e *engine) sendShardF(w int) {
	nw := e.nw
	ob := e.ws[w].outbox
	ob.beginRound(e.round)
	cur := e.fr.cur
	for idx := w; idx < len(cur); idx += e.k {
		v := int(cur[idx])
		e.envs[v].Round = e.round
		ob.begin(v)
		nw.nodes[v].Send(&e.envs[v], ob)
		if e.outs != nil {
			e.outs[v] = append(e.outs[v][:0], ob.msgs...)
		}
		if ob.err != nil {
			break
		}
	}
}

// recvShardF runs the Receive half for worker w's slice of the receive
// set, merging inboxes exactly like recvShard, and additionally maintains
// the incremental Done count and collects the programs' next wakes into
// worker-private buffers (merged deterministically at the barrier).
func (e *engine) recvShardF(w int) {
	nw := e.nw
	st := &e.ws[w]
	fr := e.fr
	var maxState, maxInbox int
	delta := 0
	wb := fr.wakeBuf[w][:0]
	heads := st.heads
	rs := fr.recv
	for idx := w; idx < len(rs); idx += e.k {
		v := int(rs[idx])
		var inbox []Inbound
		if !e.empty {
			contributors, solo := 0, -1
			for ww := 0; ww < e.k; ww++ {
				if len(e.bufs[ww][v]) > 0 {
					contributors++
					solo = ww
				}
			}
			switch contributors {
			case 0:
				// inbox stays nil
			case 1:
				inbox = e.bufs[solo][v]
			default:
				inbox = e.inboxes[v][:0]
				for ww := range heads {
					heads[ww] = 0
				}
				for {
					best := -1
					for ww := 0; ww < e.k; ww++ {
						b := e.bufs[ww][v]
						if heads[ww] < len(b) && (best < 0 || b[heads[ww]].From < e.bufs[best][v][heads[best]].From) {
							best = ww
						}
					}
					if best < 0 {
						break
					}
					inbox = append(inbox, e.bufs[best][v][heads[best]])
					heads[best]++
				}
				e.inboxes[v] = inbox
			}
		}
		if len(inbox) > maxInbox {
			maxInbox = len(inbox)
		}
		// Receive-only vertices (receivers outside the frontier) did not
		// pass through the send half; their Round must still be current.
		e.envs[v].Round = e.round
		nd := nw.nodes[v]
		nd.Receive(&e.envs[v], inbox)
		if s, ok := nd.(StateSizer); ok {
			if b := s.StateBits(); b > maxState {
				maxState = b
			}
		}
		if d := nd.Done(); d != fr.done[v] {
			fr.done[v] = d
			if d {
				delta--
			} else {
				delta++
			}
		}
		if sc, ok := nd.(Scheduled); ok {
			wb = append(wb, wakeEntry{round: int32(sc.NextWake(&e.envs[v], e.round)), v: int32(v)})
		}
	}
	fr.wakeBuf[w] = wb
	fr.doneDelta[w] = delta
	st.maxStateBits = maxState
	st.maxInboxSize = maxInbox
}

// finishRecvF merges the receive half at the round barrier: metric shards,
// the pre-sampled state maximum (folded from the first barrier on, when
// the dense engine folds its first samples), the Done count, and the
// programs' wake registrations.
func (e *engine) finishRecvF(round int) {
	m := &e.nw.metrics
	fr := e.fr
	for w := range e.ws {
		st := &e.ws[w]
		if st.maxStateBits > m.MaxStateBits {
			m.MaxStateBits = st.maxStateBits
		}
		if st.maxInboxSize > m.MaxInboxSize {
			m.MaxInboxSize = st.maxInboxSize
		}
		fr.notDone += fr.doneDelta[w]
	}
	if fr.preMax > m.MaxStateBits {
		m.MaxStateBits = fr.preMax
	}
	for w := range e.ws {
		for _, we := range fr.wakeBuf[w] {
			fr.register(we.v, int(we.round), round)
		}
	}
}

// runPhaseF executes one frontier half-round. Tiny frontiers run inline on
// the coordinator — dispatching k workers for a handful of vertices costs
// more in barrier traffic than the work itself; the shard assignment is
// identical either way, so the choice is invisible in the results.
func (e *engine) runPhaseF(ph, size int) {
	if e.k == 1 || size < minVerticesPerWorker {
		for w := 0; w < e.k; w++ {
			e.dispatch(w, ph)
		}
		return
	}
	e.wg.Add(e.k)
	for _, ch := range e.phase {
		ch <- ph
	}
	e.wg.Wait()
}

// executeFrontier is the frontier scheduler's run loop; see the file
// comment for the invariant and the accounting argument. It recycles all
// frontier state, so a persistent Session engine re-runs it with zero
// steady-state allocations, bit-identically to a fresh engine.
func (e *engine) executeFrontier(maxRounds int) error {
	nw := e.nw
	fr := e.fr
	fr.reset()
	if nw.observer != nil {
		nw.observer(0, -1, -1, 0, WireView{}) // run boundary
	}
	// Initial scan: the dense engine's pre-run allDone probe, plus the
	// initial self-wake collection (NextWake after construction/reset).
	for v, nd := range nw.nodes {
		d := nd.Done()
		fr.done[v] = d
		if !d {
			fr.notDone++
		}
	}
	for v, nd := range nw.nodes {
		if sc, ok := nd.(Scheduled); ok {
			e.envs[v].Round = 0
			fr.register(int32(v), sc.NextWake(&e.envs[v], 0), 0)
		}
	}

	round := 1
	for {
		if fr.notDone == 0 {
			return nil
		}
		e.buildFrontier(round)
		if !fr.preSampled {
			e.samplePre()
		}
		if len(fr.cur) == 0 {
			// Idle until the next self-wake: the dense engine would execute
			// these rounds as empty rounds. Account them identically and
			// skip ahead (satisfying the Metrics.DroppedRounds invariant).
			w := fr.nextWakeRound()
			if w == 0 || w > maxRounds {
				// No wake can ever change state again (or none before the
				// budget runs out): the dense engine executes empty rounds
				// up to maxRounds and reports no quiescence.
				if maxRounds >= round {
					nw.metrics.DroppedRounds += maxRounds - round + 1
					nw.metrics.Rounds = maxRounds
					if fr.preMax > nw.metrics.MaxStateBits {
						nw.metrics.MaxStateBits = fr.preMax
					}
				}
				return fmt.Errorf("congest: no quiescence after %d rounds", maxRounds)
			}
			nw.metrics.DroppedRounds += w - round
			nw.metrics.Rounds = w - 1
			if fr.preMax > nw.metrics.MaxStateBits {
				nw.metrics.MaxStateBits = fr.preMax
			}
			round = w
			continue
		}
		if round > maxRounds {
			return fmt.Errorf("congest: no quiescence after %d rounds", maxRounds)
		}
		nw.metrics.Rounds = round
		e.round = round

		e.runPhaseF(phaseSendF, len(fr.cur))
		if err := e.finishSendFrom(fr.cur); err != nil {
			return err
		}
		e.buildRecvSet()
		e.runPhaseF(phaseRecvF, len(fr.recv))
		e.finishRecvF(round)
		round++
	}
}
