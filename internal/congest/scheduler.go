package congest

// This file implements the frontier scheduler: the engine strategy that
// executes, each round, only the vertices that can possibly act — the
// active frontier — instead of all n. Every program in the Figure 2
// pipeline (BFS waves, token walks, the wave flood, Bellman–Ford) touches a
// thin frontier of vertices per round, so executing only that frontier
// makes wall-clock scale with the total work the algorithm performs rather
// than with n x rounds.
//
// # The frontier invariant
//
// A vertex is executed in round r if and only if at least one of:
//
//  1. a message was delivered to it in round r-1 (messages may change its
//     state, so its next Send may emit);
//  2. its program self-scheduled round r through the Scheduled contract
//     (NextWake), which covers spontaneous actions — a wave initiation at
//     round 2*tau'+1, a fixed-duration timer firing, the next step of a
//     pipelined schedule;
//  3. its program does not implement the contract at all — the
//     conservative always-active default, under which the vertex runs
//     every round exactly as in the dense engine, so custom user programs
//     written against the facade keep working unchanged.
//
// Message delivery is independent of the frontier: a message sent in round
// r is received in round r by its target whether or not the target was
// scheduled (the receive half runs over frontier ∪ receivers).
//
// The contract a Scheduled program must uphold is exactly: whenever the
// scheduler would skip the vertex, running its Send and Receive (with an
// empty inbox) in the dense engine would emit nothing and change no state.
// Under that contract the frontier execution is bit-identical to the dense
// one by construction: skipped work is work that provably does nothing.
// The scheduler-equivalence tests assert this across the whole program
// suite, worker counts and session reuse, against RunReference.
//
// # Representation: hierarchical bitsets, shard-local everything
//
// The frontier and its accumulator are shardedBitsets (bitset.go): a
// one-bit-per-vertex word layer under a one-bit-per-word summary layer.
// Building, deduplicating and iterating the frontier is O(active/64 +
// n/4096) — insertion dedupes in O(1), iteration chases set summary bits
// with bits.TrailingZeros64, and there is no per-round sorting and no
// steady-state allocation at all. Two bitsets double-buffer the rounds:
// `cur` is the frontier being executed, `nxt` accumulates next round's
// (receivers of this round, plus wakes due next round); buildFrontier is a
// pointer swap plus the heap-due and always-on inserts.
//
// Vertices are split into k contiguous shards aligned to 4096 vertices
// (64 words = one summary word), so every word either layer owns belongs
// to exactly one worker. That makes all frontier bookkeeping shard-local:
//
//   - each worker has its own wake queue — a min-heap of round-keyed
//     vertex buckets (wakeBucket) holding only its vertices — so NextWake
//     registrations during the receive half write worker-private state and
//     there is no barrier-time merge; bucketing makes the common bulk
//     pattern (every vertex registers the same timer round) O(1) per
//     vertex on both the register and the drain side;
//   - receive-set accumulation is merge-free: every worker scans all
//     workers' touched-receiver lists but claims only its own vertices,
//     inserting them into its shard of `nxt` directly;
//   - wake registrations are epoch-stamped (wake[v] = epoch<<32|round), so
//     resetting a persistent engine between Session executions is one
//     epoch increment, not an O(n) wipe.
//
// # Determinism
//
// The frontier is a deterministic function of the run history: receivers
// are determined by the (deterministic) sends, self-wakes by program state,
// and the always-active set by the program types. Worker w executes its
// contiguous vertex shard in ascending order, so per-worker delivery
// buffers stay ordered by ascending sender, and the round barrier's k-way
// inbox merge, metrics fold and canonical error selection work exactly as
// in the dense engine — outputs are bit-identical for every worker count
// and shard geometry.
//
// # Quiescence and idle-round accounting
//
// The engine tracks the number of not-Done vertices incrementally (a
// vertex's Done can only change in a round that executes it), so quiescence
// is detected without the dense engine's O(n) per-round scan. When the
// frontier is empty but self-wakes are pending, every round up to the next
// wake would execute as an empty round in the dense engine; the scheduler
// skips them in O(1) and accounts them identically — Metrics.Rounds
// advances over the gap and Metrics.DroppedRounds counts each skipped
// round, exactly as if they had been executed empty. An empty frontier
// with no pending wake and not-Done vertices can never quiesce; the run
// fails with the same error and metrics the dense engine produces at
// maxRounds.

import (
	"fmt"
	"math/bits"
)

// Scheduler selects the engine's round-execution strategy.
type Scheduler uint8

const (
	// SchedulerFrontier (the default) executes only the active frontier
	// each round: vertices that received a message last round, vertices
	// whose program self-scheduled the round (Scheduled), and vertices
	// whose program does not implement the contract (always active). It is
	// bit-identical to the dense engine for every worker count.
	SchedulerFrontier Scheduler = iota
	// SchedulerDense executes every vertex every round — the original
	// strategy, retained as a selectable oracle for equivalence testing
	// and benchmarking.
	SchedulerDense
)

// String returns the scheduler's flag name.
func (s Scheduler) String() string {
	if s == SchedulerDense {
		return "dense"
	}
	return "frontier"
}

// WithScheduler selects the round-execution strategy (default
// SchedulerFrontier). Like WithWorkers, the choice only trades wall-clock
// time: outputs, Metrics, observer traces and errors are bit-identical for
// either scheduler.
func WithScheduler(s Scheduler) Option {
	return func(nw *Network) { nw.sched = s }
}

// NeverWake is the NextWake return value meaning "message-driven": the
// vertex needs no execution until a message arrives.
const NeverWake = 0

// Scheduled is the optional activity contract a node program implements to
// benefit from frontier scheduling. The engine calls NextWake after the
// program is constructed or reset (round = 0) and after every round that
// executes the vertex; env identifies the vertex (ID, N, Neighbors — its
// Round field equals round) and round is the round that just completed.
//
// The return value is the next round at which the vertex must be executed
// even if no message arrives before then: round+1 to run next round, a
// larger value to sleep until a scheduled action (values <= round are
// clamped to round+1), or NeverWake when the vertex is purely
// message-driven until further notice. A delivered message always
// schedules its receiver for the following round, so NextWake only needs
// to cover spontaneous actions.
//
// Contract: if NextWake answers NeverWake (or a round later than r), then
// executing the vertex at round r with an empty inbox must emit nothing
// and change no state — that is what makes skipping it invisible.
// Programs that do not implement Scheduled are conservatively executed
// every round, which reproduces dense behavior exactly.
type Scheduled interface {
	NextWake(env *Env, round int) int
}

// wakeBucket groups one shard's pending self-wakes that share a target
// round: the registrations wakeVs[off:end] of the owning shard's arena.
// Programs overwhelmingly register wakes in runs of the same round (a
// fixed-duration timer registers the deadline for every vertex, a
// pipelined schedule the next stage), so bucketing makes both sides cheap:
// registration appends to the shard's open bucket in O(1), and draining a
// due bucket is O(1) per vertex — no per-entry heap sift-downs, which at
// n=256k used to cost an O(n log n) storm in the round every timer fires.
//
// Bucket storage is a per-shard append-only arena: only the newest (open)
// bucket grows and it is always the arena tail, so closing a bucket just
// freezes its end offset. Nothing is freed mid-run — a reset truncates the
// arena — so steady-state executions allocate nothing and there is no
// arena-size churn.
type wakeBucket struct {
	round    int32
	off, end int32 // wakeVs[off:end]; the open bucket's end is the arena tail
}

// noBucket marks an empty open-bucket slot.
const noBucket = int32(-1)

// shardWordAlign is the word-granularity a shard boundary must be aligned
// to: 64 words = one summary word = 4096 vertices, so a shard owns whole
// summary words and workers never write a shared bitset word.
const shardWordAlign = 64

// frontierState is the engine's per-run frontier bookkeeping. Everything
// is allocated once (newFrontierState) and recycled across rounds and —
// via reset — across the executions of a persistent Session engine, so
// steady-state rounds and re-run Evaluations allocate nothing: the bitsets
// are fixed arrays, the shard heap arenas are kept at capacity, and the
// epoch stamps make the wake array reusable without wiping it.
type frontierState struct {
	k   int // worker count (shard count)
	wps int // words per shard; multiple of shardWordAlign

	alwaysOn []int32 // vertices without the Scheduled contract, ascending

	cur *shardedBitset // the frontier executing the current round
	nxt *shardedBitset // accumulator for the next round's frontier

	curCount int // |cur|, folded from the shard add-deltas
	nxtCount int // |nxt| so far (coordinator's share; workers fold in deltas)

	epoch uint64   // current execution's stamp epoch (see wake)
	wake  []uint64 // wake[v] = epoch<<32|round of v's live registration

	heaps  [][]wakeBucket // per-shard min-heaps of closed buckets, by round
	open   []wakeBucket   // per-shard bucket currently receiving appends
	wakeVs [][]int32      // per-shard append-only registration arenas

	done    []bool // last observed Done() per vertex
	notDone int

	preMax     int  // max initial StateBits over vertices outside frontier(1)
	preSampled bool // preMax computed (at the first frontier build)

	scheds []Scheduled // scheds[v] non-nil iff nodes[v] implements Scheduled
	sizers []StateSizer

	addDelta  []int // per-worker count of new nxt members this round
	doneDelta []int // per-worker notDone deltas
}

func newFrontierState(n, k int, alwaysOn []int32, nodes []Node) *frontierState {
	nwords := (n + 63) >> 6
	wps := (nwords + k - 1) / k
	wps = (wps + shardWordAlign - 1) &^ (shardWordAlign - 1)
	fr := &frontierState{
		k:         k,
		wps:       wps,
		alwaysOn:  alwaysOn,
		cur:       newShardedBitset(n),
		nxt:       newShardedBitset(n),
		wake:      make([]uint64, n),
		heaps:     make([][]wakeBucket, k),
		open:      make([]wakeBucket, k),
		wakeVs:    make([][]int32, k),
		done:      make([]bool, n),
		scheds:    make([]Scheduled, n),
		sizers:    make([]StateSizer, n),
		addDelta:  make([]int, k),
		doneDelta: make([]int, k),
	}
	for s := range fr.open {
		fr.open[s].round = noBucket
	}
	// The interface assertions are hoisted here, once per engine, off the
	// per-round and per-execution hot paths.
	for v, nd := range nodes {
		if sc, ok := nd.(Scheduled); ok {
			fr.scheds[v] = sc
		}
		if s, ok := nd.(StateSizer); ok {
			fr.sizers[v] = s
		}
	}
	return fr
}

// shardOf returns the worker that owns vertex v.
func (fr *frontierState) shardOf(v int32) int { return int(uint32(v)>>6) / fr.wps }

// shardWords returns worker w's word range [wlo, whi) over the bitset word
// layer (empty for trailing shards past the end of a small vertex set).
func (fr *frontierState) shardWords(w int) (wlo, whi int) {
	nw := len(fr.cur.words)
	wlo = w * fr.wps
	if wlo > nw {
		wlo = nw
	}
	whi = wlo + fr.wps
	if whi > nw {
		whi = nw
	}
	return wlo, whi
}

// stamp is the wake-array encoding of a live registration for round wk in
// the current epoch; stampNone marks "no live registration" this epoch.
// Entries from earlier epochs never match either, which is what makes
// reset O(1).
func (fr *frontierState) stamp(wk int) uint64 { return fr.epoch<<32 | uint64(uint32(wk)) }
func (fr *frontierState) stampNone() uint64   { return fr.epoch << 32 }

// reset prepares the state for a fresh execution on a persistent engine:
// an epoch bump invalidates every wake stamp, the bucket arenas return to
// their shard free lists, and the bitsets clear through their summary
// layers — nothing is O(n).
func (fr *frontierState) reset() {
	fr.epoch++
	if fr.epoch == 1<<32 {
		// 2^32 executions on one engine: renumber before epoch<<32|round
		// could collide with an ancient stamp. Unreachable in practice.
		fr.epoch = 1
		clear(fr.wake)
	}
	for s := range fr.heaps {
		fr.heaps[s] = fr.heaps[s][:0]
		fr.wakeVs[s] = fr.wakeVs[s][:0]
		fr.open[s].round = noBucket
	}
	fr.cur.clear()
	fr.nxt.clear()
	fr.curCount, fr.nxtCount = 0, 0
	fr.notDone = 0
	fr.preMax = 0
	fr.preSampled = false
}

// heapPush inserts a closed bucket into shard s's min-heap by round.
// Several buckets may carry the same round (registration runs that were
// interleaved with other rounds); draining handles duplicates naturally,
// and vertex-level dedup is the wake stamps' job, so no tie-break order is
// needed.
func (fr *frontierState) heapPush(s int, b wakeBucket) {
	h := append(fr.heaps[s], b)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].round <= h[i].round {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	fr.heaps[s] = h
}

// heapPop removes and returns shard s's earliest-round bucket.
func (fr *frontierState) heapPop(s int) wakeBucket {
	h := fr.heaps[s]
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h[l].round < h[min].round {
			min = l
		}
		if r < len(h) && h[r].round < h[min].round {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	fr.heaps[s] = h
	return top
}

// nextWakeRound returns the earliest pending wake round across the shard
// bucket heaps; 0 when none are pending. A bucket whose registrations were
// all superseded still reports its round — the run loop then skips to it,
// drains nothing, and re-asks; the idle-gap accounting telescopes to the
// same totals, so phantom rounds are invisible in the results (the
// scheduler-equivalence suite covers the re-registration cases).
func (fr *frontierState) nextWakeRound() int {
	min := 0
	for s := range fr.heaps {
		if len(fr.heaps[s]) > 0 {
			if r := int(fr.heaps[s][0].round); min == 0 || r < min {
				min = r
			}
		}
		if ob := &fr.open[s]; ob.round != noBucket {
			if r := int(ob.round); min == 0 || r < min {
				min = r
			}
		}
	}
	return min
}

// register records a program's NextWake answer given after round cur, into
// shard s's structures — the caller must own shard s (s == fr.shardOf(v)),
// which is what lets the receive half register wakes without a barrier
// merge. Wakes due next round go straight into the next-frontier bitset;
// later wakes append to the shard's open bucket (same round) or close it
// and open a new one. The latest answer wins: re-registering replaces the
// previous wake (entries with stale stamps are skipped at drain time).
// Reports whether nxt gained a member.
func (fr *frontierState) register(s int, v int32, wk, cur int) bool {
	if wk == NeverWake {
		fr.wake[v] = fr.stampNone()
		return false
	}
	if wk <= cur+1 {
		fr.wake[v] = fr.stampNone()
		return fr.nxt.add(v)
	}
	st := fr.stamp(wk)
	if fr.wake[v] == st {
		return false // duplicate registration for the same round
	}
	fr.wake[v] = st
	ob := &fr.open[s]
	if ob.round != int32(wk) {
		if ob.round != noBucket {
			ob.end = int32(len(fr.wakeVs[s]))
			fr.heapPush(s, *ob)
		}
		ob.round = int32(wk)
		ob.off = int32(len(fr.wakeVs[s]))
	}
	fr.wakeVs[s] = append(fr.wakeVs[s], v)
	return false
}

// drainBucket moves a due bucket's still-live registrations into the
// frontier: O(1) per vertex (a stamp check and a bitset insert).
func (fr *frontierState) drainBucket(s int, b wakeBucket, cur *shardedBitset, count *int) {
	st := fr.stamp(int(b.round))
	for _, v := range fr.wakeVs[s][b.off:b.end] {
		if fr.wake[v] != st {
			continue // superseded registration
		}
		fr.wake[v] = fr.stampNone()
		if cur.add(v) {
			*count++
		}
	}
}

// buildFrontier assembles the frontier for `round`: the accumulated
// receivers/near-wakes become current by a bitset swap, then the self-wakes
// due by `round` and the always-active vertices are inserted (the bitset
// dedupes, so no sort and no membership arrays).
func (e *engine) buildFrontier(round int) { e.fr.build(round) }

// build is buildFrontier's body, shared with the lane-fused engine
// (lanes.go), which builds one frontier per lane per round.
func (fr *frontierState) build(round int) {
	fr.cur, fr.nxt = fr.nxt, fr.cur
	fr.nxt.clear()
	count := fr.nxtCount
	fr.nxtCount = 0
	cur := fr.cur
	for s := range fr.heaps {
		for len(fr.heaps[s]) > 0 && int(fr.heaps[s][0].round) <= round {
			fr.drainBucket(s, fr.heapPop(s), cur, &count)
		}
		if ob := &fr.open[s]; ob.round != noBucket && int(ob.round) <= round {
			ob.end = int32(len(fr.wakeVs[s]))
			fr.drainBucket(s, *ob, cur, &count)
			ob.round = noBucket
		}
	}
	for _, v := range fr.alwaysOn {
		if cur.add(v) {
			count++
		}
	}
	fr.curCount = count
}

// samplePre records the initial StateBits of every vertex outside the
// first frontier. The dense engine samples every vertex every round, so
// the states of vertices that are skipped before their first execution
// are exactly their initial states; folding this maximum (at the first
// round barrier, like the dense engine's first samples) makes
// Metrics.MaxStateBits scheduler-independent.
func (e *engine) samplePre() { e.fr.samplePre() }

// samplePre is the shared body (see above); the lane-fused engine samples
// each lane's pre-frontier states at that lane's first frontier build.
func (fr *frontierState) samplePre() {
	max := 0
	for v, s := range fr.sizers {
		if s == nil || fr.cur.has(int32(v)) {
			continue
		}
		if b := s.StateBits(); b > max {
			max = b
		}
	}
	fr.preMax = max
	fr.preSampled = true
}

// sendShardF runs the Send half for worker w's vertex shard, iterating its
// slice of the frontier bitset through the summary layer (ascending, so
// the delivery buffers stay canonically ordered). Identical to sendShard
// except for the iteration domain.
func (e *engine) sendShardF(w int) {
	nw := e.nw
	ob := e.ws[w].outbox
	ob.beginRound(e.round)
	fr := e.fr
	wlo, whi := fr.shardWords(w)
	if wlo >= whi {
		return
	}
	cur := fr.cur
	for si := wlo >> 6; si < (whi+63)>>6; si++ {
		sw := cur.sum[si]
		for sw != 0 {
			wi := si<<6 + bits.TrailingZeros64(sw)
			sw &= sw - 1
			word := cur.words[wi]
			for word != 0 {
				v := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				e.envs[v].Round = e.round
				ob.begin(v)
				nw.nodes[v].Send(&e.envs[v], ob)
				if e.outs != nil {
					e.outs[v] = append(e.outs[v][:0], ob.msgs...)
				}
				if ob.err != nil {
					return
				}
			}
		}
	}
}

// recvShardF runs the Receive half for worker w's shard of the receive set
// (frontier ∪ this round's receivers), merging inboxes exactly like
// recvShard, and additionally maintains the incremental Done count and
// registers the programs' next wakes — all into shard-local state, so the
// barrier only folds counters.
//
// The receive set is never materialized: at entry the worker claims its
// own vertices from every worker's touched-receiver list into `nxt` (rule
// 1 of the invariant seeds next round's frontier with this round's
// receivers), and then iterates the union cur|nxt word by word. Insertions
// during the iteration are safe snapshots: register only ever adds the
// vertex currently being executed, whose union bit was already consumed.
func (e *engine) recvShardF(w int) {
	nw := e.nw
	st := &e.ws[w]
	fr := e.fr
	var maxState, maxInbox int
	delta, added := 0, 0
	wlo, whi := fr.shardWords(w)
	if wlo >= whi {
		fr.addDelta[w], fr.doneDelta[w] = 0, 0
		st.maxStateBits, st.maxInboxSize = 0, 0
		return
	}
	if !e.empty {
		vlo, vhi := int32(wlo<<6), int32(whi<<6)
		for ww := range e.ws {
			for _, to := range e.ws[ww].outbox.touched {
				if to >= vlo && to < vhi && fr.nxt.add(to) {
					added++
				}
			}
		}
	}
	cur, nxt := fr.cur, fr.nxt
	for si := wlo >> 6; si < (whi+63)>>6; si++ {
		sw := cur.sum[si] | nxt.sum[si]
		for sw != 0 {
			wi := si<<6 + bits.TrailingZeros64(sw)
			sw &= sw - 1
			word := cur.words[wi] | nxt.words[wi]
			for word != 0 {
				v := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				var inbox []Inbound
				if !e.empty {
					inbox = gatherChains(e.obs, st.heads, v, st.inbox[:0])
					st.inbox = inbox
				}
				if len(inbox) > maxInbox {
					maxInbox = len(inbox)
				}
				// Receive-only vertices (receivers outside the frontier) did
				// not pass through the send half; their Round must still be
				// current.
				e.envs[v].Round = e.round
				nd := nw.nodes[v]
				nd.Receive(&e.envs[v], inbox)
				if s := fr.sizers[v]; s != nil {
					if b := s.StateBits(); b > maxState {
						maxState = b
					}
				}
				if d := nd.Done(); d != fr.done[v] {
					fr.done[v] = d
					if d {
						delta--
					} else {
						delta++
					}
				}
				if sc := fr.scheds[v]; sc != nil {
					if fr.register(w, int32(v), sc.NextWake(&e.envs[v], e.round), e.round) {
						added++
					}
				}
			}
		}
	}
	fr.addDelta[w] = added
	fr.doneDelta[w] = delta
	st.maxStateBits = maxState
	st.maxInboxSize = maxInbox
}

// finishRecvF folds the receive half at the round barrier: metric shards,
// the pre-sampled state maximum (folded from the first barrier on, when
// the dense engine folds its first samples), and the shard-local Done and
// frontier-size deltas. Unlike the pre-bitset engine there is no wake
// merge here — registrations already landed in shard-local heaps.
func (e *engine) finishRecvF() {
	m := &e.nw.metrics
	fr := e.fr
	for w := range e.ws {
		st := &e.ws[w]
		if st.maxStateBits > m.MaxStateBits {
			m.MaxStateBits = st.maxStateBits
		}
		if st.maxInboxSize > m.MaxInboxSize {
			m.MaxInboxSize = st.maxInboxSize
		}
		fr.notDone += fr.doneDelta[w]
		fr.nxtCount += fr.addDelta[w]
	}
	if fr.preMax > m.MaxStateBits {
		m.MaxStateBits = fr.preMax
	}
}

// runPhaseF executes one frontier half-round. Tiny frontiers run inline on
// the coordinator — dispatching k workers for a handful of vertices costs
// more in barrier traffic than the work itself; the shard assignment is
// identical either way, so the choice is invisible in the results.
func (e *engine) runPhaseF(ph, size int) {
	if e.k == 1 || size < minVerticesPerWorker {
		for w := 0; w < e.k; w++ {
			e.dispatch(w, ph)
		}
		return
	}
	e.wg.Add(e.k)
	for _, ch := range e.phase {
		ch <- ph
	}
	e.wg.Wait()
}

// executeFrontier is the frontier scheduler's run loop; see the file
// comment for the invariant and the accounting argument. It recycles all
// frontier state, so a persistent Session engine re-runs it with zero
// steady-state allocations, bit-identically to a fresh engine.
func (e *engine) executeFrontier(maxRounds int) error {
	nw := e.nw
	fr := e.fr
	fr.reset()
	if nw.observer != nil {
		nw.observer(0, -1, -1, 0, WireView{}) // run boundary
	}
	// Initial scan, one pass over the programs: the dense engine's pre-run
	// allDone probe plus the initial self-wake collection (NextWake after
	// construction/reset). Both are pure queries, so fusing the passes
	// only improves locality.
	for v, nd := range nw.nodes {
		d := nd.Done()
		fr.done[v] = d
		if !d {
			fr.notDone++
		}
		if sc := fr.scheds[v]; sc != nil {
			e.envs[v].Round = 0
			if fr.register(fr.shardOf(int32(v)), int32(v), sc.NextWake(&e.envs[v], 0), 0) {
				fr.nxtCount++
			}
		}
	}

	round := 1
	for {
		if fr.notDone == 0 {
			return nil
		}
		e.buildFrontier(round)
		if !fr.preSampled {
			e.samplePre()
		}
		if fr.curCount == 0 {
			// Idle until the next self-wake: the dense engine would execute
			// these rounds as empty rounds. Account them identically and
			// skip ahead (satisfying the Metrics.DroppedRounds invariant).
			w := fr.nextWakeRound()
			if w == 0 || w > maxRounds {
				// No wake can ever change state again (or none before the
				// budget runs out): the dense engine executes empty rounds
				// up to maxRounds and reports no quiescence.
				if maxRounds >= round {
					nw.metrics.DroppedRounds += maxRounds - round + 1
					nw.metrics.Rounds = maxRounds
					if fr.preMax > nw.metrics.MaxStateBits {
						nw.metrics.MaxStateBits = fr.preMax
					}
				}
				return fmt.Errorf("congest: no quiescence after %d rounds", maxRounds)
			}
			nw.metrics.DroppedRounds += w - round
			nw.metrics.Rounds = w - 1
			if fr.preMax > nw.metrics.MaxStateBits {
				nw.metrics.MaxStateBits = fr.preMax
			}
			round = w
			continue
		}
		if round > maxRounds {
			return fmt.Errorf("congest: no quiescence after %d rounds", maxRounds)
		}
		nw.metrics.Rounds = round
		e.round = round

		e.runPhaseF(phaseSendF, fr.curCount)
		if err := e.finishSend(); err != nil {
			return err
		}
		// The receive set is frontier ∪ receivers; curCount plus the
		// touched totals overestimates it (overlap, cross-worker
		// duplicates), but it is only the inline-dispatch heuristic.
		recvSize := fr.curCount
		for w := range e.ws {
			recvSize += len(e.ws[w].outbox.touched)
		}
		e.runPhaseF(phaseRecvF, recvSize)
		e.finishRecvF()
		round++
	}
}
