package congest

import (
	"fmt"

	"qcongest/internal/graph"
)

// ExactResult reports the outcome of a diameter algorithm together with its
// measured cost.
type ExactResult struct {
	Diameter int
	Metrics  Metrics
}

// ClassicalExactDiameter computes the exact diameter with the classical
// O(n)-round scheme of Peleg, Roditty and Tal [PRT12] that Section 3.3 of
// the paper refines: after preprocessing, a token DFS-numbers every vertex
// along the full Euler tour of BFS(leader) (2(n-1) rounds), every vertex v
// starts a BFS wave at round 2*tau(v) (the waves never collide, Lemmas
// 2-4), each node records the largest distance any wave needed to reach it,
// and a final convergecast returns the maximum — the diameter — to the
// leader.
//
// Total round complexity: Theta(n) + O(D), the classical baseline of
// Table 1 row "Exact computation". All traffic is typed wire messages, so
// the Metrics bit counts returned here are encoded lengths, not estimates.
func ClassicalExactDiameter(g *graph.Graph, opts ...Option) (ExactResult, error) {
	var res ExactResult
	n := g.N()
	if n == 0 {
		return res, fmt.Errorf("congest: empty graph")
	}
	if n == 1 {
		return ExactResult{Diameter: 0}, nil
	}

	topo, err := NewTopology(g)
	if err != nil {
		return res, err
	}
	info, dv, m, err := classicalEccPhases(topo, opts...)
	if err != nil {
		return res, err
	}
	res.Metrics.Add(m)

	// Convergecast of max dv: the diameter.
	diam, _, m, err := ConvergecastMaxOn(topo, info, dv, nil, opts...)
	if err != nil {
		return res, err
	}
	res.Metrics.Add(m)
	res.Diameter = diam
	return res, nil
}

// classicalEccPhases runs the [PRT12] pipeline up to (and including) the
// wave phase: preprocessing, the full Euler tour that DFS-numbers every
// vertex, and the all-initiator wave process. After it, dv[v] = max_u d(u,v)
// = ecc(v) at every node — the shared core of ClassicalExactDiameter and
// ClassicalEccentricities.
func classicalEccPhases(topo *Topology, opts ...Option) (*PreInfo, []int, Metrics, error) {
	var total Metrics
	n := topo.N()
	info, m, err := PreprocessOn(topo, opts...)
	if err != nil {
		return nil, nil, total, err
	}
	total.Add(m)

	// Full Euler tour: every vertex receives tau = its DFS number.
	tourLen := 2 * (n - 1)
	tau, m, err := TokenWalkOn(topo, info, info.Children, info.Leader, tourLen, opts...)
	if err != nil {
		return nil, nil, total, err
	}
	total.Add(m)
	for v, t := range tau {
		if t < 0 {
			return nil, nil, total, fmt.Errorf("congest: vertex %d missed by full DFS walk", v)
		}
	}

	// Wave phase: last initiation at 2*tourLen, propagation <= 2d.
	duration := 2*tourLen + 2*info.D + 2
	dv, m, err := WaveOn(topo, tau, duration, opts...)
	if err != nil {
		return nil, nil, total, err
	}
	total.Add(m)
	return info, dv, total, nil
}

// ClassicalEccentricities computes ecc(v) for every vertex in Theta(n)
// rounds: when every vertex initiates a wave (the full Euler tour's tau
// numbering), each node's dv is max_u d(u, v), which by symmetry of d is
// exactly its own eccentricity — the whole vector falls out of one
// ClassicalExactDiameter run without the final convergecast. It is the
// classical baseline for the per-vertex quantum Eccentricities suite.
func ClassicalEccentricities(g *graph.Graph, opts ...Option) ([]int, Metrics, error) {
	n := g.N()
	if n == 0 {
		return nil, Metrics{}, fmt.Errorf("congest: empty graph")
	}
	if n == 1 {
		return []int{0}, Metrics{}, nil
	}
	topo, err := NewTopology(g)
	if err != nil {
		return nil, Metrics{}, err
	}
	_, dv, m, err := classicalEccPhases(topo, opts...)
	return dv, m, err
}

// EccentricitiesOf computes, for a set S given as tau' assignments
// (tau[v] >= 0 iff v in S), the value max_{u in S} ecc(u) by the wave
// process plus a convergecast; it is the classical core that the quantum
// Evaluation procedure (Figure 2) quantizes. waveDuration must be at least
// 2*max(tau') + 2*ecc bounds; callers derive it from d.
func EccentricitiesOf(g *graph.Graph, info *PreInfo, tau []int, waveDuration int, opts ...Option) (int, Metrics, error) {
	var total Metrics
	dv, m, err := Wave(g, tau, waveDuration, opts...)
	if err != nil {
		return 0, total, err
	}
	total.Add(m)
	maxEcc, _, m, err := ConvergecastMax(g, info, dv, nil, opts...)
	if err != nil {
		return 0, total, err
	}
	total.Add(m)
	return maxEcc, total, nil
}
