package congest

import (
	"fmt"
	"reflect"
	"testing"

	"qcongest/internal/graph"
)

// The engine's central contract: for any fixed input, Run produces
// bit-for-bit identical outputs, round counts and Metrics for every worker
// count, and all of them match the retained reference engine. These tests
// exercise the real multi-worker code paths explicitly (the automatic rule
// would pick one worker on small machines and networks).

var engineWorkerCounts = []int{1, 2, 3, 8}

// bfsSnapshot captures every output of one BFS program.
type bfsSnapshot struct {
	Dist, Parent int
	Children     []int
	Ecc          int
}

func runBFS(t *testing.T, g *graph.Graph, root int, run func(*Network, int) error, opts ...Option) ([]bfsSnapshot, Metrics) {
	t.Helper()
	nw, err := NewNetwork(g, func(v int) Node { return NewBFSNode(root) }, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(nw, 8*g.N()+16); err != nil {
		t.Fatal(err)
	}
	out := make([]bfsSnapshot, g.N())
	for v := 0; v < g.N(); v++ {
		b := nw.Node(v).(*BFSNode)
		out[v] = bfsSnapshot{Dist: b.Dist, Parent: b.Parent, Children: b.Children, Ecc: b.Ecc}
	}
	return out, nw.Metrics()
}

func TestEngineDeterministicBFS(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := graph.RandomConnected(300, 0.02, seed)
		wantOut, wantM := runBFS(t, g, 0, (*Network).RunReference)
		for _, k := range engineWorkerCounts {
			gotOut, gotM := runBFS(t, g, 0, (*Network).Run, WithWorkers(k))
			if !reflect.DeepEqual(gotOut, wantOut) {
				t.Errorf("seed %d workers %d: BFS outputs differ from reference", seed, k)
			}
			if gotM != wantM {
				t.Errorf("seed %d workers %d: Metrics = %+v, want %+v", seed, k, gotM, wantM)
			}
		}
	}
}

func TestEngineDeterministicLeaderElection(t *testing.T) {
	g := graph.RandomConnected(257, 0.03, 9) // odd n: uneven shards
	ref, err := NewNetwork(g, func(v int) Node { return NewLeaderElectNode() })
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunReference(4 * g.N()); err != nil {
		t.Fatal(err)
	}
	for _, k := range engineWorkerCounts {
		nw, err := NewNetwork(g, func(v int) Node { return NewLeaderElectNode() }, WithWorkers(k))
		if err != nil {
			t.Fatal(err)
		}
		if err := nw.Run(4 * g.N()); err != nil {
			t.Fatal(err)
		}
		if nw.Metrics() != ref.Metrics() {
			t.Errorf("workers %d: Metrics = %+v, want %+v", k, nw.Metrics(), ref.Metrics())
		}
		for v := 0; v < g.N(); v++ {
			if nw.Node(v).(*LeaderElectNode).Leader != ref.Node(v).(*LeaderElectNode).Leader {
				t.Fatalf("workers %d: node %d elected a different leader", k, v)
			}
		}
	}
}

func TestEngineDeterministicClassicalExact(t *testing.T) {
	g := graph.RandomConnected(200, 0.025, 5)
	want, err := ClassicalExactDiameter(g, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	truth, err := g.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if want.Diameter != truth {
		t.Fatalf("diameter = %d, want %d", want.Diameter, truth)
	}
	for _, k := range engineWorkerCounts[1:] {
		got, err := ClassicalExactDiameter(g, WithWorkers(k))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("workers %d: result %+v, want %+v", k, got, want)
		}
	}
}

func TestEngineDeterministicClassicalApprox(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := graph.RandomConnected(160, 0.04, seed)
		want, err := ClassicalApproxDiameter(g, 0, seed, WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range engineWorkerCounts[1:] {
			got, err := ClassicalApproxDiameter(g, 0, seed, WithWorkers(k))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("seed %d workers %d: result %+v, want %+v", seed, k, got, want)
			}
		}
	}
}

// Validation errors must name the same round and edge for every worker
// count: the canonical error is the one at the smallest offending sender.
type duelingHogNode struct {
	threshold int
	tx        RawMessage
}

func (h *duelingHogNode) Send(env *Env, out *Outbox) {
	// From the threshold round on, every node floods oversized messages; the
	// canonical report is always for the smallest sender id.
	if env.Round < h.threshold {
		if len(env.Neighbors) == 0 {
			return
		}
		h.tx.Width = 1
		out.Put(env.Neighbors[0], &h.tx)
		return
	}
	h.tx.Width = 1 << 20
	out.Broadcast(env.Neighbors, &h.tx)
}
func (h *duelingHogNode) Receive(env *Env, inbox []Inbound) {}
func (h *duelingHogNode) Done() bool                        { return false }

func TestEngineDeterministicErrors(t *testing.T) {
	g := graph.RandomConnected(64, 0.1, 3)
	run := func(k int) string {
		t.Helper()
		nw, err := NewNetwork(g, func(v int) Node { return &duelingHogNode{threshold: 3} }, WithWorkers(k))
		if err != nil {
			t.Fatal(err)
		}
		err = nw.Run(10)
		if err == nil {
			t.Fatal("bandwidth violation not detected")
		}
		return err.Error()
	}
	refNw, err := NewNetwork(g, func(v int) Node { return &duelingHogNode{threshold: 3} })
	if err != nil {
		t.Fatal(err)
	}
	refErr := refNw.RunReference(10)
	if refErr == nil {
		t.Fatal("reference engine missed the violation")
	}
	for _, k := range engineWorkerCounts {
		if got := run(k); got != refErr.Error() {
			t.Errorf("workers %d: error %q, want %q", k, got, refErr.Error())
		}
	}
}

// The observer must see every delivered message in canonical order
// (ascending sender, emission order within a sender) for every worker count.
func TestEngineObserverOrderDeterministic(t *testing.T) {
	g := graph.RandomConnected(150, 0.04, 7)
	trace := func(k int, run func(*Network, int) error) []string {
		t.Helper()
		var events []string
		obs := func(round, from, to, bits int, wire WireView) {
			if wire.Len() != bits {
				t.Errorf("observer: wire view %d bits, reported %d", wire.Len(), bits)
			}
			// Render the encoded message so the trace compares actual bits.
			var enc []byte
			for i := 0; i < wire.Len(); i++ {
				if wire.Bit(i) {
					enc = append(enc, '1')
				} else {
					enc = append(enc, '0')
				}
			}
			events = append(events, fmt.Sprintf("%d:%d->%d:%d:%s", round, from, to, bits, enc))
		}
		nw, err := NewNetwork(g, func(v int) Node { return NewLeaderElectNode() }, WithWorkers(k), WithObserver(obs))
		if err != nil {
			t.Fatal(err)
		}
		if err := run(nw, 4*g.N()); err != nil {
			t.Fatal(err)
		}
		return events
	}
	want := trace(1, (*Network).RunReference)
	for _, k := range engineWorkerCounts {
		got := trace(k, (*Network).Run)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers %d: observer trace differs from reference (%d vs %d events)", k, len(got), len(want))
		}
	}
}

func TestEffectiveWorkersClamps(t *testing.T) {
	g := graph.Path(8)
	nw, err := NewNetwork(g, func(v int) Node { return NewLeaderElectNode() }, WithWorkers(64))
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.EffectiveWorkers(); got != 8 {
		t.Errorf("EffectiveWorkers = %d, want clamp to n = 8", got)
	}
	nw, err = NewNetwork(g, func(v int) Node { return NewLeaderElectNode() })
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.EffectiveWorkers(); got != 1 {
		t.Errorf("EffectiveWorkers = %d, want 1 under the automatic rule on a tiny graph", got)
	}
}
