package congest

// This file implements execution sessions: the machinery that lets the
// quantum algorithms run the same CONGEST program family hundreds of times
// (one Evaluation per Grover iteration, Theorem 7) without rebuilding the
// network each time. A Topology caches everything derived from the graph; a
// Session owns a network plus a persistent engine and exposes Reset + Run;
// a Pool clones session-backed contexts to run independent executions
// concurrently with deterministic result ordering. DESIGN.md ("Execution
// sessions") documents the lifecycle contract and the determinism argument.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"qcongest/internal/graph"
)

// Topology is the validated, read-only view of a graph that networks and
// sessions execute on: the connectivity check has passed and the adjacency
// is cached in CSR form, so building any number of networks on the same
// Topology never re-scans the graph. A Topology is immutable after
// construction and safe to share across sessions, engines and Pool clones.
//
// The CSR layout packs the whole adjacency structure into flat arrays —
// offsets (int32 row starts, one per vertex plus a sentinel) over a single
// target arena, with an aligned weight arena for weighted graphs — built
// once here. The per-vertex neighbor slices handed to node programs
// (Env.Neighbors, Topology.Neighbors) are views into the arena: one
// allocation per topology instead of one per vertex, contiguous in memory,
// and HasEdge is a binary search on the packed row — no graph call, no
// lock, which matters because the engine validates every message against
// it. The arena is int-typed (programs address neighbors as int, the
// public facade included); graph.CSR is the compact int32 twin for callers
// that only need an oracle.
type Topology struct {
	g *graph.Graph
	n int

	offsets   []int32 // CSR row offsets, len n+1
	arena     []int   // flat neighbor arena, row v = arena[offsets[v]:offsets[v+1]]
	warena    []int   // flat weight arena aligned with arena; nil for unweighted graphs
	neighbors [][]int // per-vertex views into arena
	weights   [][]int // per-vertex views into warena; nil for unweighted graphs
	maxW      int
}

// NewTopology validates g (it must be connected, like every algorithm in
// this repository assumes) and packs its adjacency (and, for weighted
// graphs, the aligned edge-weight tables) into the CSR arenas.
func NewTopology(g *graph.Graph) (*Topology, error) {
	if !g.Connected() {
		return nil, graph.ErrDisconnected
	}
	n := g.N()
	t := &Topology{
		g:         g,
		n:         n,
		offsets:   make([]int32, n+1),
		arena:     make([]int, 2*g.M()),
		neighbors: make([][]int, n),
		maxW:      1,
	}
	weighted := g.Weighted()
	if weighted {
		t.warena = make([]int, 2*g.M())
		t.weights = make([][]int, n)
		t.maxW = g.MaxWeight()
	}
	if err := validateDistBound(n, t.maxW); err != nil {
		return nil, err
	}
	off := int32(0)
	for v := 0; v < n; v++ {
		t.offsets[v] = off
		// Neighbors sorts the adjacency list on first use; after this loop
		// the graph is never read again on any hot path.
		row := g.Neighbors(v)
		copy(t.arena[off:], row)
		t.neighbors[v] = t.arena[off : off+int32(len(row)) : off+int32(len(row))]
		if weighted {
			w := g.NeighborWeights(v)
			copy(t.warena[off:], w)
			t.weights[v] = t.warena[off : off+int32(len(w)) : off+int32(len(w))]
		}
		off += int32(len(row))
	}
	t.offsets[n] = off
	return t, nil
}

// NewTopologyFromCSR builds a Topology directly from a packed CSR — the
// scale path: a streamed graph.BuildCSRFromStream build plus this
// constructor takes a 10M-vertex grid from nothing to a runnable Topology
// in a handful of allocations, never materializing a *graph.Graph. The CSR
// must describe a simple undirected graph with ascending rows (what
// BuildCSR and BuildCSRFromStream produce); connectivity is verified here
// with an allocation-lean BFS, and the int32 offsets array is shared with
// the CSR rather than copied. A Topology built this way has no underlying
// *graph.Graph (Graph returns nil).
func NewTopologyFromCSR(c *graph.CSR) (*Topology, error) {
	if len(c.Offsets) == 0 || c.Offsets[0] != 0 || int(c.Offsets[len(c.Offsets)-1]) != len(c.Targets) {
		return nil, fmt.Errorf("congest: malformed CSR offsets")
	}
	n := c.N()
	t := &Topology{
		n:         n,
		offsets:   c.Offsets,
		arena:     make([]int, len(c.Targets)),
		neighbors: make([][]int, n),
		maxW:      1,
	}
	if c.Weights != nil {
		t.warena = make([]int, len(c.Weights))
		t.weights = make([][]int, n)
	}
	for v := 0; v < n; v++ {
		lo, hi := c.Offsets[v], c.Offsets[v+1]
		if lo > hi || int(hi) > len(c.Targets) {
			return nil, fmt.Errorf("congest: malformed CSR offsets at vertex %d", v)
		}
		prev := -1
		for i := lo; i < hi; i++ {
			w := int(c.Targets[i])
			if w < 0 || w >= n {
				return nil, fmt.Errorf("congest: CSR target %d out of range at vertex %d", w, v)
			}
			if w == v {
				return nil, fmt.Errorf("congest: CSR self-loop at vertex %d", v)
			}
			if w <= prev {
				return nil, fmt.Errorf("congest: CSR row %d not strictly ascending", v)
			}
			prev = w
			t.arena[i] = w
		}
		t.neighbors[v] = t.arena[lo:hi:hi]
		if c.Weights != nil {
			for i := lo; i < hi; i++ {
				wt := int(c.Weights[i])
				if wt < 1 {
					return nil, fmt.Errorf("congest: CSR edge weight %d < 1 at vertex %d", wt, v)
				}
				t.warena[i] = wt
				if wt > t.maxW {
					t.maxW = wt
				}
			}
			t.weights[v] = t.warena[lo:hi:hi]
		}
	}
	if err := validateDistBound(n, t.maxW); err != nil {
		return nil, err
	}
	if n > 0 {
		dist := make([]int32, n)
		queue := make([]int32, n)
		if reached, _ := c.BFSInto(0, dist, queue); reached != n {
			return nil, graph.ErrDisconnected
		}
	}
	return t, nil
}

// N returns the number of vertices.
func (t *Topology) N() int { return t.n }

// Graph returns the underlying graph (read-only by convention). Topologies
// built by NewTopologyFromCSR have none; they return nil.
func (t *Topology) Graph() *graph.Graph { return t.g }

// Neighbors returns the sorted adjacency list of v; it must not be modified.
func (t *Topology) Neighbors(v int) []int { return t.neighbors[v] }

// Degree returns the degree of v.
func (t *Topology) Degree(v int) int { return len(t.neighbors[v]) }

// HasEdge reports whether {u, v} is an edge: a binary search on the packed
// CSR row of u. This is the engine's per-message destination check, so it
// must not touch the graph (whose reads synchronize against the lazy sort).
func (t *Topology) HasEdge(u, v int) bool {
	if u < 0 || u >= t.n {
		return false
	}
	row := t.arena[t.offsets[u]:t.offsets[u+1]]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == v
}

// Weighted reports whether the underlying graph carries edge weights.
func (t *Topology) Weighted() bool { return t.weights != nil }

// NeighborWeights returns the edge weights aligned with Neighbors(v), or nil
// for an unweighted topology (all weights 1); it must not be modified.
func (t *Topology) NeighborWeights(v int) []int {
	if t.weights == nil {
		return nil
	}
	return t.weights[v]
}

// MaxWeight returns the largest edge weight (1 when unweighted).
func (t *Topology) MaxWeight() int { return t.maxW }

// DistBound returns the largest possible finite weighted distance,
// (n-1) * MaxWeight: every weighted wire field that carries a distance is
// sized to cover [0, DistBound]. The product cannot overflow: topology
// construction rejects (n, maxW) combinations where it would (see
// validateDistBound).
func (t *Topology) DistBound() int {
	if t.n <= 1 {
		return 0
	}
	return (t.n - 1) * t.maxW
}

// validateDistBound rejects (n, maxW) combinations whose distance bound
// (n-1)*maxW does not fit an int. Without this check the product silently
// wraps and every weighted wire field is sized from the wrapped value —
// encoders would then reject legitimate distances (or, worse, a negative
// bound would corrupt the field-width arithmetic). The cap leaves headroom
// for the Bound+2 field range the skeleton relay encodes (the "no value"
// sentinel), so every bound-derived width computation stays in range.
func validateDistBound(n, maxW int) error {
	if n <= 1 || maxW <= 1 {
		return nil
	}
	if maxW > (math.MaxInt-2)/(n-1) {
		return fmt.Errorf("congest: distance bound (n-1)*maxW overflows int (n=%d, max weight %d)", n, maxW)
	}
	return nil
}

// Resettable is the lifecycle contract a node program implements to be
// reusable across executions: ResetNode must restore the program at vertex v
// to exactly the state its constructor produced, so that a Session run after
// Reset is bit-for-bit identical to a run on freshly constructed programs.
// params carries the execution parameters that change between runs (e.g. a
// new walk start, a new tau' assignment); it is the single value passed to
// Session.Reset, shared by all vertices, and each program documents the
// params type it understands. A nil params re-runs the previous
// configuration; a non-nil params of a type the program does not understand
// is a programmer error and panics (a silently ignored params would re-run
// stale inputs and report a wrong result with no failure anywhere).
type Resettable interface {
	Node
	ResetNode(v int, params any)
}

// badResetParams reports a Reset params value of an unexpected type — a
// programmer error (like registering a message kind twice), not a runtime
// condition.
func badResetParams(prog string, params any) {
	panic(fmt.Sprintf("congest: %s.ResetNode: unexpected params type %T", prog, params))
}

// Session owns one network together with a persistent execution engine.
// Where NewNetwork + Run build topology tables, node programs, arenas,
// buffers and a worker pool per execution, a Session builds them once and
// recycles all of them: Reset restores the node programs (and zeroes the
// metrics), Run executes on the retained engine. A Reset+Run is bit-for-bit
// identical — outputs, Metrics, observer wire traces, error strings — to
// building a fresh network and running it, for every worker count; the
// session-reuse determinism tests assert exactly that.
//
// A Session is not safe for concurrent use; clone it (see Pool) to run
// independent executions in parallel. Close releases the engine's worker
// goroutines; a session that was never Run has nothing to release.
type Session struct {
	nw       *Network
	makeNode func(v int) Node
	opts     []Option

	e      *engine
	rs     []Resettable // the node programs, pre-asserted (filled when vetted)
	ran    bool         // an execution has run since the last Reset
	vetted bool         // all node programs are known to implement Resettable
	closed bool
}

// NewSession builds a session for the program family make over topo. The
// node programs are constructed once, here; every later execution reuses
// them via Reset.
func NewSession(topo *Topology, make func(v int) Node, opts ...Option) *Session {
	return &Session{
		nw:       NewNetworkOn(topo, make, opts...),
		makeNode: make,
		opts:     opts,
	}
}

// Reset prepares the session for the next execution: every node program is
// restored to its constructed state (receiving params, see Resettable) and
// the metrics are zeroed. It fails if any program does not implement
// Resettable.
func (s *Session) Reset(params any) error {
	if s.closed {
		return fmt.Errorf("congest: Reset on a closed session")
	}
	if !s.vetted {
		// The interface assertions run once per session; re-runs iterate
		// the pre-asserted slice, which at large n saves an O(n) assertion
		// pass per Evaluation.
		rs := make([]Resettable, len(s.nw.nodes))
		for v, nd := range s.nw.nodes {
			r, ok := nd.(Resettable)
			if !ok {
				return fmt.Errorf("congest: session node %d (%T) does not implement Resettable", v, nd)
			}
			rs[v] = r
		}
		s.rs = rs
		s.vetted = true
	}
	for v, r := range s.rs {
		r.ResetNode(v, params)
	}
	s.nw.metrics = Metrics{}
	s.ran = false
	return nil
}

// Run executes one full run on the persistent engine (creating it on first
// use). Every execution after the first must be preceded by a Reset: the
// node programs hold the previous run's final state, and executing them
// again would not correspond to any fresh network.
func (s *Session) Run(maxRounds int) error {
	if s.closed {
		return fmt.Errorf("congest: Run on a closed session")
	}
	if s.ran {
		return fmt.Errorf("congest: session re-run without Reset")
	}
	s.ran = true
	if s.e == nil {
		s.e = newEngine(s.nw)
	}
	return s.e.execute(maxRounds)
}

// Node returns the program running at vertex v (for Reset-time
// configuration beyond params, and for extracting outputs after a run).
func (s *Session) Node(v int) Node { return s.nw.nodes[v] }

// Metrics returns the metrics of the execution since the last Reset.
func (s *Session) Metrics() Metrics { return s.nw.metrics }

// Topology returns the shared topology the session executes on.
func (s *Session) Topology() *Topology { return s.nw.topo }

// Clone builds an independent session of the same program family: same
// topology (shared, never copied), same options, freshly constructed node
// programs and a private engine. Clones may run concurrently with each
// other and with the original.
//
// A session with a WithObserver option refuses to clone: the options are
// reused as given, so the clones would share one callback and interleave
// their wire traces nondeterministically. Observe a solo Session — or a
// MultiSession with SetLaneObserver, which keeps per-lane traces separate.
func (s *Session) Clone() (*Session, error) {
	if s.nw.observer != nil {
		return nil, fmt.Errorf("congest: Clone of a session with an observer (traces would interleave; observe a solo Session or use MultiSession.SetLaneObserver)")
	}
	return NewSession(s.nw.topo, s.makeNode, s.opts...), nil
}

// Close stops the engine's worker goroutines. The session cannot run again
// afterwards. Close is idempotent.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.e != nil {
		s.e.stop()
		s.e = nil
	}
}

// Pool runs independent executions concurrently on a fixed set of cloned
// execution contexts (typically Session-backed evaluators). Jobs are
// distributed dynamically over the clones, but results are keyed by job
// index and errors are reported for the smallest failing index, so the
// outcome is deterministic regardless of scheduling — the property the
// parallel experiment sweeps and the batched quantum evaluations rely on.
type Pool[C any] struct {
	clones []C
}

// NewPool builds a pool of `workers` contexts, each produced by factory
// (factory receives the clone index). On a factory error the contexts
// already built are NOT closed — the caller owns cleanup via Close.
func NewPool[C any](workers int, factory func(i int) (C, error)) (*Pool[C], error) {
	if workers < 1 {
		workers = 1
	}
	p := &Pool[C]{clones: make([]C, 0, workers)}
	for i := 0; i < workers; i++ {
		c, err := factory(i)
		if err != nil {
			return p, err
		}
		p.clones = append(p.clones, c)
	}
	return p, nil
}

// Size returns the number of clones.
func (p *Pool[C]) Size() int { return len(p.clones) }

// Get returns clone i (for using one of the contexts outside Do, e.g. as
// the sequential evaluator; never concurrently with a running Do).
func (p *Pool[C]) Get(i int) C { return p.clones[i] }

// Do runs fn(job, clone) for every job in [0, jobs). Each clone executes at
// most one job at a time, so fn may freely mutate its clone; distinct jobs
// must write their results to distinct caller-owned slots (e.g. results[job]).
// All jobs are attempted — for every pool size, including one clone — and
// the returned error is the one reported for the smallest job index.
func (p *Pool[C]) Do(jobs int, fn func(job int, clone C) error) error {
	if len(p.clones) == 0 {
		return fmt.Errorf("congest: Do on an empty or closed pool")
	}
	if jobs <= 0 {
		return nil
	}
	if len(p.clones) == 1 {
		var first error
		for j := 0; j < jobs; j++ {
			if err := fn(j, p.clones[0]); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, jobs)
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := range p.clones {
		wg.Add(1)
		go func(c C) {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= jobs {
					return
				}
				errs[j] = fn(j, c)
			}
		}(p.clones[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close applies close to every clone (for Session-backed contexts, their
// Close methods). The pool cannot be used afterwards.
func (p *Pool[C]) Close(close func(C)) {
	for _, c := range p.clones {
		close(c)
	}
	p.clones = nil
}

// ForEach runs fn(job) for every job in [0, jobs) on up to `workers`
// goroutines, with the Pool's determinism contract: all jobs attempted for
// every worker count, smallest-index error returned.
func ForEach(workers, jobs int, fn func(job int) error) error {
	p, _ := NewPool(workers, func(int) (struct{}, error) { return struct{}{}, nil })
	return p.Do(jobs, func(job int, _ struct{}) error { return fn(job) })
}
