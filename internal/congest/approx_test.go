package congest

import (
	"testing"

	"qcongest/internal/graph"
)

func TestMinFloodMatchesReference(t *testing.T) {
	g := graph.RandomConnected(30, 0.08, 6)
	members := make([]bool, g.N())
	members[3], members[17], members[25] = true, true, true
	nw, err := NewNetwork(g, func(v int) Node { return NewMinFloodNode(members[v]) })
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(4 * g.N()); err != nil {
		t.Fatal(err)
	}
	// Reference: nearest member by (distance, id).
	mat, err := g.DistanceMatrix()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		bestD, bestS := -1, -1
		for s := 0; s < g.N(); s++ {
			if !members[s] {
				continue
			}
			if bestD == -1 || mat[v][s] < bestD || (mat[v][s] == bestD && s < bestS) {
				bestD, bestS = mat[v][s], s
			}
		}
		node := nw.Node(v).(*MinFloodNode)
		if node.Dist != bestD || node.Src != bestS {
			t.Errorf("node %d: (%d,%d), want (%d,%d)", v, node.Dist, node.Src, bestD, bestS)
		}
	}
}

func TestConvergecastSum(t *testing.T) {
	g := graph.CompleteBinaryTree(15)
	info, _, err := Preprocess(g)
	if err != nil {
		t.Fatal(err)
	}
	// Per-node values within the counting regime the message format is
	// sized for (partial sums fit in 2*BitsForID(n) bits).
	vals := make([]int, g.N())
	want := 0
	for v := range vals {
		vals[v] = v % 5
		want += vals[v]
	}
	got, _, err := Sum(g, info, vals)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

// Values beyond a message's documented field cap cannot be smuggled into a
// run: the encoder refuses instead of silently undercharging — the failure
// mode the declared-size convention used to allow.
func TestAggregationRejectsOverCapValues(t *testing.T) {
	g := graph.CompleteBinaryTree(15)
	info, _, err := Preprocess(g)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int, g.N())
	for v := range vals {
		vals[v] = v * v * v // partial sums overflow 2*BitsForID(n) bits
	}
	if _, _, err := Sum(g, info, vals); err == nil {
		t.Error("over-cap convergecast sum accepted")
	}
	if _, err := Broadcast(g, info, 1<<20); err == nil {
		t.Error("over-cap broadcast value accepted")
	}
}

func TestConvergecastMaxWitness(t *testing.T) {
	g := graph.Grid(3, 5)
	info, _, err := Preprocess(g)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int, g.N())
	vals[7] = 42
	vals[11] = 42
	maxV, wit, _, err := ConvergecastMax(g, info, vals, nil)
	if err != nil {
		t.Fatal(err)
	}
	if maxV != 42 || wit != 7 { // smallest witness wins ties
		t.Errorf("max,witness = %d,%d want 42,7", maxV, wit)
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	g := graph.RandomConnected(20, 0.1, 2)
	info, _, err := Preprocess(g)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(g, func(v int) Node {
		return NewBroadcastNode(info.Parent[v], info.Children[v], 42)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(4 * g.N()); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if got := nw.Node(v).(*BroadcastNode).Value; got != 42 {
			t.Errorf("node %d: value %d", v, got)
		}
	}
	if nw.Metrics().Rounds > info.D+2 {
		t.Errorf("broadcast took %d rounds for height %d", nw.Metrics().Rounds, info.D)
	}
}

func TestSSPMatchesReference(t *testing.T) {
	g := graph.RandomConnected(28, 0.09, 11)
	mat, err := g.DistanceMatrix()
	if err != nil {
		t.Fatal(err)
	}
	sources := []int{2, 9, 20} // ranks 0,1,2
	rankOf := map[int]int{2: 0, 9: 1, 20: 2}
	diam, _ := g.Diameter()
	duration := len(sources) + 2*diam + 8
	nw, err := NewNetwork(g, func(v int) Node {
		r, ok := rankOf[v]
		if !ok {
			r = -1
		}
		return NewSSPNode(r, len(sources), duration)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(duration + 4); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		got := nw.Node(v).(*SSPNode).Dist
		for src, rank := range rankOf {
			if got[rank] != mat[v][src] {
				t.Errorf("node %d source %d: dist %d, want %d", v, src, got[rank], mat[v][src])
			}
		}
	}
}

func TestPrepareApproxInvariants(t *testing.T) {
	g := graph.RandomConnected(40, 0.07, 13)
	s := 8
	prep, _, err := PrepareApprox(g, s, 99)
	if err != nil {
		t.Fatal(err)
	}
	if prep.RSize != s {
		t.Fatalf("|R| = %d, want %d", prep.RSize, s)
	}
	if !prep.RMembers[prep.W] {
		t.Error("w must belong to R")
	}
	// R must be exactly the s closest vertices to w by (depth, id).
	type key struct{ d, id int }
	var all []key
	for v := 0; v < g.N(); v++ {
		all = append(all, key{prep.WDepth[v], v})
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].d < all[i].d || (all[j].d == all[i].d && all[j].id < all[i].id) {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	want := map[int]bool{}
	for i := 0; i < s; i++ {
		want[all[i].id] = true
	}
	for v := 0; v < g.N(); v++ {
		if prep.RMembers[v] != want[v] {
			t.Errorf("vertex %d: in R = %v, want %v", v, prep.RMembers[v], want[v])
		}
	}
	// R is ancestor-closed: the parent of any non-w member is a member.
	for v := 0; v < g.N(); v++ {
		if prep.RMembers[v] && v != prep.W {
			if p := prep.WParent[v]; !prep.RMembers[p] {
				t.Errorf("vertex %d in R but parent %d is not", v, p)
			}
		}
	}
	// tau values are unique and each R member except possibly w has one.
	seen := map[int]bool{}
	for v := 0; v < g.N(); v++ {
		if prep.TauR[v] >= 0 {
			if seen[prep.TauR[v]] {
				t.Errorf("duplicate tau %d", prep.TauR[v])
			}
			seen[prep.TauR[v]] = true
			if !prep.RMembers[v] {
				t.Errorf("non-member %d has tau", v)
			}
		}
	}
}

func TestClassicalApproxQuality(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(30),
		graph.Cycle(24),
		graph.Grid(5, 6),
		graph.RandomConnected(40, 0.06, 21),
		graph.RandomConnected(40, 0.12, 22),
		graph.Barbell(6, 8),
		graph.SmallWorld(36, 2, 0.25, 23),
	}
	for gi, g := range graphs {
		want, err := g.Diameter()
		if err != nil {
			t.Fatal(err)
		}
		res, err := ClassicalApproxDiameter(g, 0, int64(gi)+1)
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		got := res.Diameter
		if got > want {
			t.Errorf("graph %d: estimate %d exceeds true diameter %d", gi, got, want)
		}
		// 3/2-approximation: D <= ceil(3*(Dhat+1)/2). The +1 absorbs the
		// floor in the [HPRW14] guarantee Dhat >= floor(2D/3).
		if 2*want > 3*(got+1) {
			t.Errorf("graph %d: estimate %d too small for diameter %d", gi, got, want)
		}
	}
}

func TestClassicalApproxBadParams(t *testing.T) {
	g := graph.Path(10)
	if _, _, err := PrepareApprox(g, 0, 1); err == nil {
		t.Error("s=0 accepted")
	}
	if _, _, err := PrepareApprox(g, 11, 1); err == nil {
		t.Error("s>n accepted")
	}
}
