package congest

// Composite sessions for the paper's Evaluation procedure (Figure 2): the
// quantum algorithms run one token walk plus one wave-and-convergecast per
// Evaluation, hundreds of times per optimization. WalkSession and
// EccSession are the reusable counterparts of the one-shot TokenWalk and
// EccentricitiesOf helpers: built once per (topology, tree, schedule), then
// Reset+Run per Evaluation. Each Eval is bit-for-bit identical — values,
// Metrics, observer traces, error strings — to the fresh-network helper it
// replaces; the session determinism tests assert that equivalence.

import "fmt"

// WalkSession is a reusable TokenWalk: the Figure 2 Step 1 walk over a
// fixed tree, re-runnable from a different start vertex per execution.
type WalkSession struct {
	s     *Session
	tw    []*TokenWalkNode // the programs, pre-asserted for the tau read-out
	steps int
	tau   []int
}

// NewWalkSession builds the walk session: L = steps token moves on the tree
// described by info with the given per-node child lists. The start vertex
// is an Eval argument, not fixed here.
func NewWalkSession(topo *Topology, info *PreInfo, children [][]int, steps int, opts ...Option) *WalkSession {
	ws := &WalkSession{
		s: NewSession(topo, func(v int) Node {
			return NewTokenWalkNode(info.Parent[v], children[v], info.Leader, -1, steps)
		}, opts...),
		steps: steps,
		tau:   make([]int, topo.N()),
	}
	ws.cacheNodes()
	return ws
}

// cacheNodes pre-asserts the node programs so the per-Eval tau read-out is
// a pointer chase, not n interface assertions.
func (ws *WalkSession) cacheNodes() {
	ws.tw = make([]*TokenWalkNode, len(ws.tau))
	for v := range ws.tw {
		ws.tw[v] = ws.s.Node(v).(*TokenWalkNode)
	}
}

// Eval runs one walk from start and returns tau' (-1 for unvisited
// vertices). The returned slice is owned by the session and only valid
// until the next Eval.
func (ws *WalkSession) Eval(start int) ([]int, Metrics, error) {
	if err := ws.s.Reset(WalkStart{Start: start}); err != nil {
		return nil, Metrics{}, err
	}
	if err := ws.s.Run(ws.steps + 4); err != nil {
		return nil, ws.s.Metrics(), fmt.Errorf("token walk: %w", err)
	}
	for v, tw := range ws.tw {
		ws.tau[v] = tw.Tau
	}
	return ws.tau, ws.s.Metrics(), nil
}

// Clone builds an independent walk session over the same shared topology.
// Like Session.Clone, it refuses when the session carries an observer.
func (ws *WalkSession) Clone() (*WalkSession, error) {
	s, err := ws.s.Clone()
	if err != nil {
		return nil, err
	}
	c := &WalkSession{s: s, steps: ws.steps, tau: make([]int, len(ws.tau))}
	c.cacheNodes()
	return c, nil
}

// Close releases the session's engine.
func (ws *WalkSession) Close() { ws.s.Close() }

// EccSession is a reusable EccentricitiesOf: the Figure 2 Step 2 wave
// process followed by the Step 3 max convergecast on BFS(leader),
// re-runnable with a different tau' assignment per execution.
type EccSession struct {
	wave     *Session
	cc       *Session
	leader   int
	duration int
	dv       []int
}

// NewEccSession builds the wave+convergecast pair on the tree described by
// info. waveDuration is the fixed length of the wave process (callers
// derive it from d, as for EccentricitiesOf).
func NewEccSession(topo *Topology, info *PreInfo, waveDuration int, opts ...Option) *EccSession {
	return &EccSession{
		wave: NewSession(topo, func(v int) Node {
			return NewWaveNode(false, -1, waveDuration)
		}, opts...),
		cc: NewSession(topo, func(v int) Node {
			return NewConvergecastMaxNode(info.Parent[v], info.Children[v], 0, v)
		}, opts...),
		leader:   info.Leader,
		duration: waveDuration,
		dv:       make([]int, topo.N()),
	}
}

// Eval computes max_{u in S} ecc(u) for the set S given as tau'
// assignments (tau[v] >= 0 iff v in S), exactly like EccentricitiesOf.
func (es *EccSession) Eval(tau []int) (int, Metrics, error) {
	var total Metrics
	if err := es.wave.Reset(WaveTau{Tau: tau}); err != nil {
		return 0, total, err
	}
	if err := es.wave.Run(es.duration + 4); err != nil {
		return 0, total, fmt.Errorf("wave process: %w", err)
	}
	for v := range es.dv {
		wn := es.wave.Node(v).(*WaveNode)
		if wn.Violation != nil {
			return 0, total, wn.Violation
		}
		es.dv[v] = wn.DV
	}
	total.Add(es.wave.Metrics())
	if err := es.cc.Reset(MaxInputs{Values: es.dv}); err != nil {
		return 0, total, err
	}
	if err := es.cc.Run(4*len(es.dv) + 16); err != nil {
		return 0, total, fmt.Errorf("convergecast: %w", err)
	}
	total.Add(es.cc.Metrics())
	return es.cc.Node(es.leader).(*ConvergecastMaxNode).Max, total, nil
}

// Clone builds an independent ecc session over the same shared topology.
// Like Session.Clone, it refuses when the sessions carry an observer.
func (es *EccSession) Clone() (*EccSession, error) {
	wave, err := es.wave.Clone()
	if err != nil {
		return nil, err
	}
	cc, err := es.cc.Clone()
	if err != nil {
		return nil, err
	}
	return &EccSession{
		wave:     wave,
		cc:       cc,
		leader:   es.leader,
		duration: es.duration,
		dv:       make([]int, len(es.dv)),
	}, nil
}

// Close releases both sessions' engines.
func (es *EccSession) Close() {
	es.wave.Close()
	es.cc.Close()
}
