package congest

// Distributed triangle detection building blocks: the vertex-local triangle
// predicate is computed by the classical adjacency-probe protocol — every
// vertex announces its neighbor list, one id per round, and a vertex v that
// hears neighbor w announce x checks x against its own (locally known)
// adjacency — after which "v lies on a triangle" is a local flag. The probe
// runs for a fixed Delta = max-degree schedule with own-id padding, so its
// traffic and round count are input-independent; the quantum layer then
// searches or counts over the flags with one cheap convergecast Evaluation
// per input (internal/core.TriangleDetect / TriangleCount).

import (
	"fmt"
	"sort"
)

// msgAdj carries one adjacency announcement: "x is my neighbor". A vertex
// past the end of its neighbor list announces itself (a self-loop no
// receiver acts on), keeping the per-round traffic uniform.
type msgAdj struct{ ID int }

func (m *msgAdj) WireKind() Kind          { return KindAdj }
func (m *msgAdj) MarshalWire(w *Writer)   { w.WriteID(m.ID, w.N) }
func (m *msgAdj) UnmarshalWire(r *Reader) { m.ID = r.ReadID(r.N) }
func (m *msgAdj) DeclaredBits(n int) int  { return KindBits + BitsForID(n) }
func (m *msgAdj) PackWire(n int) (uint64, int, bool) {
	if m.ID < 0 || m.ID >= n {
		return 0, 0, false
	}
	return uint64(m.ID), BitsForID(n), true
}
func (m *msgAdj) UnpackWire(n int, p uint64, width int) bool {
	if width != BitsForID(n) || p >= uint64(n) {
		return false
	}
	m.ID = int(p)
	return true
}

func init() {
	RegisterKind(KindAdj, "adj", func() WireMessage { return new(msgAdj) })
	RegisterKindWidth(KindAdj, func(n int) int { return KindBits + BitsForID(n) })
}

// TriangleProbeNode announces this vertex's adjacency list, one neighbor id
// per round for a fixed Duration (the maximum degree), and raises OnTriangle
// when some received announcement (w says "x is my neighbor") closes a
// triangle with an edge of its own (v adjacent to both w and x).
type TriangleProbeNode struct {
	Duration int

	// Output.
	OnTriangle bool

	finished bool
	tx, rx   msgAdj
}

// NewTriangleProbeNode builds the program for one node. duration is the
// network-wide maximum degree, known a priori like n.
func NewTriangleProbeNode(duration int) *TriangleProbeNode {
	return &TriangleProbeNode{Duration: duration}
}

// ResetNode implements Resettable.
func (t *TriangleProbeNode) ResetNode(v int, params any) {
	if params != nil {
		badResetParams("TriangleProbeNode", params)
	}
	t.OnTriangle = false
	t.finished = false
}

// Send implements Node: in round r the vertex announces its (r-1)-th
// neighbor, or itself once its list is exhausted (uniform traffic).
func (t *TriangleProbeNode) Send(env *Env, out *Outbox) {
	if t.finished || env.Round > t.Duration {
		return
	}
	i := env.Round - 1
	if i < len(env.Neighbors) {
		t.tx.ID = env.Neighbors[i]
	} else {
		t.tx.ID = env.ID
	}
	out.Broadcast(env.Neighbors, &t.tx)
}

// Receive implements Node: an announcement x from neighbor w closes a
// triangle iff x is neither endpoint of the (v,w) edge and v is adjacent to
// x — a binary search in v's own sorted neighbor list, no extra messages.
func (t *TriangleProbeNode) Receive(env *Env, inbox []Inbound) {
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != KindAdj || in.Decode(env, &t.rx) != nil {
			continue
		}
		x := t.rx.ID
		if x == env.ID || x == in.From {
			continue
		}
		j := sort.SearchInts(env.Neighbors, x)
		if j < len(env.Neighbors) && env.Neighbors[j] == x {
			t.OnTriangle = true
		}
	}
	if env.Round >= t.Duration {
		t.finished = true
	}
}

// Done implements Node.
func (t *TriangleProbeNode) Done() bool { return t.finished }

// NextWake implements Scheduled: every vertex transmits every round of the
// fixed schedule.
func (t *TriangleProbeNode) NextWake(env *Env, round int) int {
	if t.finished {
		return NeverWake
	}
	return round + 1
}

// StateBits implements StateSizer: the flag and the round timer.
func (t *TriangleProbeNode) StateBits() int { return 2 * 64 }

// maxDegreeOf is the fixed probe schedule length: every vertex finishes
// announcing its list within max-degree rounds (at least 1 so the empty
// graph still terminates).
func maxDegreeOf(topo *Topology) int {
	maxDeg := 1
	for v := 0; v < topo.N(); v++ {
		if d := topo.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// TriangleFlagsOn runs the adjacency-probe protocol once and returns the
// per-vertex triangle flags (flags[v] iff v lies on some triangle) with the
// measured metrics. The probe is input-free, so callers charge its rounds
// to initialization.
func TriangleFlagsOn(topo *Topology, opts ...Option) ([]bool, Metrics, error) {
	duration := maxDegreeOf(topo)
	nw := NewNetworkOn(topo, func(v int) Node {
		return NewTriangleProbeNode(duration)
	}, opts...)
	if err := nw.Run(duration + 4); err != nil {
		return nil, nw.Metrics(), fmt.Errorf("triangle probe: %w", err)
	}
	flags := make([]bool, topo.N())
	for v := range flags {
		flags[v] = nw.Node(v).(*TriangleProbeNode).OnTriangle
	}
	return flags, nw.Metrics(), nil
}

// TriangleSession is the reusable Evaluation of the triangle workloads:
// given the precomputed flags, Eval(u0) extracts u0's flag at the leader by
// one max convergecast (value 1 at u0 iff u0 lies on a triangle, 0
// elsewhere). The convergecast duration is tree-determined, so the round
// count never depends on u0.
type TriangleSession struct {
	cc     *Session
	leader int
	flags  []bool
	vals   []int
}

// NewTriangleSession builds the convergecast session on the tree described
// by info over the given per-vertex flags.
func NewTriangleSession(topo *Topology, info *PreInfo, flags []bool, opts ...Option) *TriangleSession {
	return &TriangleSession{
		cc: NewSession(topo, func(v int) Node {
			return NewConvergecastMaxNode(info.Parent[v], info.Children[v], 0, v)
		}, opts...),
		leader: info.Leader,
		flags:  flags,
		vals:   make([]int, topo.N()),
	}
}

// Eval computes f(u0) = 1 iff u0 lies on a triangle.
func (ts *TriangleSession) Eval(u0 int) (int, Metrics, error) {
	for v := range ts.vals {
		ts.vals[v] = 0
	}
	if ts.flags[u0] {
		ts.vals[u0] = 1
	}
	if err := ts.cc.Reset(MaxInputs{Values: ts.vals}); err != nil {
		return 0, Metrics{}, err
	}
	if err := ts.cc.Run(4*len(ts.vals) + 16); err != nil {
		return 0, ts.cc.Metrics(), fmt.Errorf("triangle convergecast: %w", err)
	}
	return ts.cc.Node(ts.leader).(*ConvergecastMaxNode).Max, ts.cc.Metrics(), nil
}

// Clone builds an independent session over the same shared topology and
// flags. Like Session.Clone, it refuses when the session carries an
// observer.
func (ts *TriangleSession) Clone() (*TriangleSession, error) {
	cc, err := ts.cc.Clone()
	if err != nil {
		return nil, err
	}
	return &TriangleSession{
		cc:     cc,
		leader: ts.leader,
		flags:  ts.flags,
		vals:   make([]int, len(ts.vals)),
	}, nil
}

// Close releases the session's engine.
func (ts *TriangleSession) Close() { ts.cc.Close() }
