package congest

// Tests for Broadcast's neighbor-row fast path and its slice-identity rule:
// the sender's own neighbor row and any prefix subslice of it
// (env.Neighbors[:j]) skip the per-copy adjacency probe; everything else —
// content-equal copies, non-prefix subslices — runs through the validated
// path and must stage the identical messages (or fail on a non-neighbor).

import (
	"testing"

	"qcongest/internal/graph"
)

func TestBroadcastNeighborRowPrefix(t *testing.T) {
	g := graph.RandomConnected(24, 0.2, 11)
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	nw := NewNetworkOn(topo, func(v int) Node { return NewWaveNode(false, 0, 1) }, WithStrictAccounting())
	tx := &msgWave{Tau: 2, Delta: 7}

	sender := 0
	row := topo.Neighbors(sender)
	if len(row) < 2 {
		t.Fatalf("vertex %d needs >= 2 neighbors for the prefix cases, has %d", sender, len(row))
	}

	// stage runs one round of sender staging through targets and returns
	// the staged inboxes per destination plus the outbox accounting.
	stage := func(targets []int, viaPut bool) (map[int][]Inbound, *Outbox) {
		ob := newOutbox(nw, topo.N())
		ob.beginRound(1)
		ob.begin(sender)
		if viaPut {
			for _, to := range targets {
				ob.Put(to, tx)
			}
		} else {
			ob.Broadcast(targets, tx)
		}
		got := map[int][]Inbound{}
		for v := 0; v < topo.N(); v++ {
			if in := ob.appendChain(v, nil); len(in) > 0 {
				got[v] = in
			}
		}
		return got, ob
	}

	wantFull, obWant := stage(row, true) // Put loop: the validated oracle
	if obWant.err != nil {
		t.Fatal(obWant.err)
	}

	for _, tc := range []struct {
		name    string
		targets []int
	}{
		{"full row", row},
		{"prefix row[:1]", row[:1]},
		{"prefix row[:len-1]", row[:len(row)-1]},
		{"non-prefix row[1:]", row[1:]},
		{"content-equal copy", append([]int(nil), row...)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, ob := stage(tc.targets, false)
			if ob.err != nil {
				t.Fatal(ob.err)
			}
			want, obW := stage(tc.targets, true)
			if obW.err != nil {
				t.Fatal(obW.err)
			}
			if len(got) != len(tc.targets) {
				t.Fatalf("staged to %d destinations, want %d", len(got), len(tc.targets))
			}
			if !inboundMapsEqual(got, want) {
				t.Errorf("Broadcast(%v) staging differs from the Put-per-target oracle", tc.targets)
			}
			if ob.sent() != obW.sent() || ob.bitsTotal != obW.bitsTotal || ob.maxEdge != obW.maxEdge {
				t.Errorf("accounting (%d msgs, %d bits, maxEdge %d) differs from oracle (%d, %d, %d)",
					ob.sent(), ob.bitsTotal, ob.maxEdge, obW.sent(), obW.bitsTotal, obW.maxEdge)
			}
		})
	}

	// The full-row broadcast must stage exactly the oracle's full staging.
	gotFull, ob := stage(row, false)
	if ob.err != nil {
		t.Fatal(ob.err)
	}
	if !inboundMapsEqual(gotFull, wantFull) {
		t.Error("full-row Broadcast differs from the Put-per-target oracle")
	}

	// Slice identity, not content: a copied slice containing a non-neighbor
	// must take the validated path and fail — the fast path never runs for
	// caller-built slices, even ones that start neighbor-equal.
	nonNeighbor := -1
	for v := 0; v < topo.N(); v++ {
		if v != sender && !topo.HasEdge(sender, v) {
			nonNeighbor = v
			break
		}
	}
	if nonNeighbor < 0 {
		t.Fatal("graph too dense: no non-neighbor available")
	}
	bad := append(append([]int(nil), row...), nonNeighbor)
	_, obBad := stage(bad, false)
	if obBad.err == nil {
		t.Fatalf("Broadcast to copied slice containing non-neighbor %d did not fail", nonNeighbor)
	}
}

// inboundMapsEqual compares staged inboxes by delivered content (sender,
// kind, bits and the encoded wire bits), not by arena pointers.
func inboundMapsEqual(a, b map[int][]Inbound) bool {
	if len(a) != len(b) {
		return false
	}
	for v, as := range a {
		bs, ok := b[v]
		if !ok || len(as) != len(bs) {
			return false
		}
		for i := range as {
			x, y := as[i], bs[i]
			if x.From != y.From || x.Kind != y.Kind || x.Bits != y.Bits || x.wire.Len() != y.wire.Len() {
				return false
			}
			for j := 0; j < x.wire.Len(); j++ {
				if x.wire.Bit(j) != y.wire.Bit(j) {
					return false
				}
			}
		}
	}
	return true
}
