package congest

import (
	"testing"

	"qcongest/internal/graph"
)

func TestDefaultBandwidth(t *testing.T) {
	if bw := DefaultBandwidth(1024); bw != 56 {
		t.Errorf("DefaultBandwidth(1024) = %d, want 56", bw)
	}
	// Room for a two-field message plus its kind tag even on tiny networks.
	for n := 1; n <= 8; n++ {
		m := msgWave{Tau: 0, Delta: 0}
		if got, bw := m.DeclaredBits(n), DefaultBandwidth(n); got > bw {
			t.Errorf("n=%d: wave message %d bits exceeds default bandwidth %d", n, got, bw)
		}
	}
}

func TestNetworkRejectsDisconnected(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	if _, err := NewNetwork(g, func(v int) Node { return NewLeaderElectNode() }); err == nil {
		t.Error("disconnected graph accepted")
	}
}

// a node that sends to a non-neighbor, to exercise engine validation.
type rogueNode struct {
	sent bool
	tx   RawMessage
}

func (r *rogueNode) Send(env *Env, out *Outbox) {
	if r.sent {
		return
	}
	r.sent = true
	r.tx.Width = 1
	out.Put((env.ID+2)%env.N, &r.tx)
}
func (r *rogueNode) Receive(env *Env, inbox []Inbound) {}
func (r *rogueNode) Done() bool                        { return r.sent }

func TestEngineRejectsNonNeighborSend(t *testing.T) {
	g := graph.Path(4)
	nw, err := NewNetwork(g, func(v int) Node { return &rogueNode{} })
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(10); err == nil {
		t.Error("send to non-neighbor accepted")
	}
}

// a node that floods an oversized message — a real encoded megabit, not a
// declared size, so the violation the engine reports is measured.
type hogNode struct {
	sent bool
	tx   RawMessage
}

func (h *hogNode) Send(env *Env, out *Outbox) {
	if h.sent {
		return
	}
	h.sent = true
	if env.ID != 0 {
		return
	}
	h.tx.Width = 1 << 20
	out.Put(env.Neighbors[0], &h.tx)
}
func (h *hogNode) Receive(env *Env, inbox []Inbound) {}
func (h *hogNode) Done() bool                        { return h.sent }

func TestEngineEnforcesBandwidth(t *testing.T) {
	g := graph.Path(3)
	nw, err := NewNetwork(g, func(v int) Node { return &hogNode{} })
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(10); err == nil {
		t.Error("bandwidth violation accepted")
	}
	// With a big explicit bandwidth the same program passes.
	nw, err = NewNetwork(g, func(v int) Node { return &hogNode{} }, WithBandwidth(1<<21))
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(10); err != nil {
		t.Errorf("run with raised bandwidth: %v", err)
	}
}

func TestEngineTimesOut(t *testing.T) {
	g := graph.Path(2)
	// LeaderElect quiesces fast; instead use a never-done node.
	nw, err := NewNetwork(g, func(v int) Node { return neverDone{} })
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(5); err == nil {
		t.Error("expected timeout error")
	}
}

type neverDone struct{}

func (neverDone) Send(env *Env, out *Outbox)        {}
func (neverDone) Receive(env *Env, inbox []Inbound) {}
func (neverDone) Done() bool                        { return false }

func TestLeaderElection(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(12)},
		{"cycle", graph.Cycle(9)},
		{"random", graph.RandomConnected(25, 0.1, 1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nw, err := NewNetwork(tc.g, func(v int) Node { return NewLeaderElectNode() })
			if err != nil {
				t.Fatal(err)
			}
			if err := nw.Run(4 * tc.g.N()); err != nil {
				t.Fatal(err)
			}
			want := tc.g.N() - 1
			for v := 0; v < tc.g.N(); v++ {
				if got := nw.Node(v).(*LeaderElectNode).Leader; got != want {
					t.Errorf("node %d elected %d, want %d", v, got, want)
				}
			}
			d, _ := tc.g.Diameter()
			if r := nw.Metrics().Rounds; r > d+2 {
				t.Errorf("leader election took %d rounds, want <= D+2 = %d", r, d+2)
			}
		})
	}
}

func TestBFSProgramMatchesReference(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(10),
		graph.Cycle(11),
		graph.Grid(4, 6),
		graph.CompleteBinaryTree(15),
		graph.RandomConnected(30, 0.08, 2),
		graph.RandomConnected(30, 0.25, 3),
	}
	for gi, g := range graphs {
		root := g.N() - 1
		refDist, refParent := g.BFS(root)
		refEcc, _ := g.Eccentricity(root)
		nw, err := NewNetwork(g, func(v int) Node { return NewBFSNode(root) })
		if err != nil {
			t.Fatal(err)
		}
		if err := nw.Run(8 * g.N()); err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		for v := 0; v < g.N(); v++ {
			b := nw.Node(v).(*BFSNode)
			if b.Dist != refDist[v] {
				t.Errorf("graph %d node %d: dist %d, want %d", gi, v, b.Dist, refDist[v])
			}
			if b.Parent != refParent[v] {
				t.Errorf("graph %d node %d: parent %d, want %d", gi, v, b.Parent, refParent[v])
			}
		}
		if got := nw.Node(root).(*BFSNode).Ecc; got != refEcc {
			t.Errorf("graph %d: ecc at root %d, want %d", gi, got, refEcc)
		}
		// Children lists must match the reference tree.
		tree, err := graph.NewBFSTree(g, root)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			got := append([]int(nil), nw.Node(v).(*BFSNode).Children...)
			want := tree.Child[v]
			if len(got) != len(want) {
				t.Fatalf("graph %d node %d: children %v, want %v", gi, v, got, want)
			}
			gotSet := map[int]bool{}
			for _, c := range got {
				gotSet[c] = true
			}
			for _, c := range want {
				if !gotSet[c] {
					t.Fatalf("graph %d node %d: children %v, want %v", gi, v, got, want)
				}
			}
		}
		// The whole construction is O(D): BFS + child notify + convergecast.
		if r := nw.Metrics().Rounds; r > 2*refEcc+6 {
			t.Errorf("graph %d: BFS construction took %d rounds, want <= %d", gi, r, 2*refEcc+6)
		}
	}
}

func TestPreprocess(t *testing.T) {
	g := graph.RandomConnected(40, 0.07, 5)
	info, m, err := Preprocess(g)
	if err != nil {
		t.Fatal(err)
	}
	if info.Leader != 39 {
		t.Errorf("leader = %d, want 39", info.Leader)
	}
	wantD, _ := g.Eccentricity(39)
	if info.D != wantD {
		t.Errorf("d = %d, want %d", info.D, wantD)
	}
	diam, _ := g.Diameter()
	if m.Rounds > 8*diam+20 {
		t.Errorf("preprocess took %d rounds for diameter %d", m.Rounds, diam)
	}
}

func TestTokenWalkFullTourMatchesReference(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(9),
		graph.CompleteBinaryTree(15),
		graph.RandomConnected(26, 0.1, 7),
		graph.Grid(5, 5),
	}
	for gi, g := range graphs {
		info, _, err := Preprocess(g)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := graph.NewBFSTree(g, info.Leader)
		if err != nil {
			t.Fatal(err)
		}
		refTau := tree.DFSNumbering()
		tau, m, err := TokenWalk(g, info, info.Children, info.Leader, 2*(g.N()-1))
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		for v := 0; v < g.N(); v++ {
			if tau[v] != refTau[v] {
				t.Errorf("graph %d vertex %d: tau %d, want %d", gi, v, tau[v], refTau[v])
			}
		}
		if m.Rounds != 2*(g.N()-1) {
			t.Errorf("graph %d: walk rounds %d, want %d", gi, m.Rounds, 2*(g.N()-1))
		}
	}
}

func TestTokenWalkWindowMatchesSetS(t *testing.T) {
	g := graph.RandomConnected(24, 0.09, 9)
	info, _, err := Preprocess(g)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := graph.NewBFSTree(g, info.Leader)
	if err != nil {
		t.Fatal(err)
	}
	d := info.D
	for u0 := 0; u0 < g.N(); u0++ {
		tau, _, err := TokenWalk(g, info, info.Children, u0, 2*d)
		if err != nil {
			t.Fatalf("u0=%d: %v", u0, err)
		}
		want := map[int]bool{}
		for _, v := range tree.SetS(u0, d) {
			want[v] = true
		}
		for v := 0; v < g.N(); v++ {
			if (tau[v] >= 0) != want[v] {
				t.Errorf("u0=%d vertex %d: visited=%v, want %v", u0, v, tau[v] >= 0, want[v])
			}
		}
		// Lemma 2 (first half): tau'(v) = tau(v) - tau(u0) mod tour length.
		refTau := tree.DFSNumbering()
		total := tree.TourLength()
		for v := 0; v < g.N(); v++ {
			if tau[v] < 0 {
				continue
			}
			delta := refTau[v] - refTau[u0]
			if delta < 0 {
				delta += total
			}
			if tau[v] != delta {
				t.Errorf("u0=%d vertex %d: tau' = %d, want %d", u0, v, tau[v], delta)
			}
		}
	}
}

func TestClassicalExactDiameter(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(14),
		graph.Cycle(15),
		graph.Star(10),
		graph.Grid(4, 7),
		graph.CompleteBinaryTree(31),
		graph.Hypercube(4),
		graph.Barbell(5, 4),
		graph.RandomConnected(35, 0.06, 1),
		graph.RandomConnected(35, 0.15, 2),
		graph.SmallWorld(40, 2, 0.2, 3),
	}
	for gi, g := range graphs {
		want, err := g.Diameter()
		if err != nil {
			t.Fatal(err)
		}
		res, err := ClassicalExactDiameter(g)
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		if res.Diameter != want {
			t.Errorf("graph %d: diameter %d, want %d", gi, res.Diameter, want)
		}
		// Linear-round upper bound with explicit constant: walk 2n +
		// waves (4n + 2D) + preprocessing and aggregation O(D), D < n.
		if res.Metrics.Rounds > 14*g.N()+60 {
			t.Errorf("graph %d: %d rounds for n=%d", gi, res.Metrics.Rounds, g.N())
		}
	}
}

func TestClassicalExactTinyGraphs(t *testing.T) {
	for n := 1; n <= 4; n++ {
		g := graph.Path(n)
		res, err := ClassicalExactDiameter(g)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Diameter != n-1 && !(n == 1 && res.Diameter == 0) {
			t.Errorf("n=%d: diameter %d, want %d", n, res.Diameter, n-1)
		}
	}
}

// The wave process on a window computes max ecc over S(u0): this is the
// classical core of the paper's Evaluation procedure (Figure 2).
func TestWindowedWaveComputesMaxEccOverS(t *testing.T) {
	g := graph.RandomConnected(22, 0.1, 4)
	info, _, err := Preprocess(g)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := graph.NewBFSTree(g, info.Leader)
	if err != nil {
		t.Fatal(err)
	}
	eccs, err := g.AllEccentricities()
	if err != nil {
		t.Fatal(err)
	}
	d := info.D
	for u0 := 0; u0 < g.N(); u0 += 3 {
		tau, _, err := TokenWalk(g, info, info.Children, u0, 2*d)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := EccentricitiesOf(g, info, tau, 6*d+2)
		if err != nil {
			t.Fatalf("u0=%d: %v", u0, err)
		}
		want := 0
		for _, v := range tree.SetS(u0, d) {
			if eccs[v] > want {
				want = eccs[v]
			}
		}
		if got != want {
			t.Errorf("u0=%d: max ecc over S = %d, want %d", u0, got, want)
		}
	}
}

func TestWaveMemoryIsLogarithmic(t *testing.T) {
	g := graph.RandomConnected(50, 0.05, 8)
	info, _, err := Preprocess(g)
	if err != nil {
		t.Fatal(err)
	}
	tau, _, err := TokenWalk(g, info, info.Children, info.Leader, 2*(g.N()-1))
	if err != nil {
		t.Fatal(err)
	}
	duration := 4*(g.N()-1) + 2*info.D + 2
	nw, err := NewNetwork(g, func(v int) Node { return NewWaveNode(tau[v] >= 0, tau[v], duration) })
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(duration + 4); err != nil {
		t.Fatal(err)
	}
	// Four machine words: tv, dv, one buffered (tau, delta) pair.
	if nw.Metrics().MaxStateBits > 4*64 {
		t.Errorf("wave node state %d bits, want <= 256", nw.Metrics().MaxStateBits)
	}
}
