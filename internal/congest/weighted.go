package congest

// Weighted distance programs: the CONGEST building blocks of the weighted
// distance-parameter suite (weighted diameter/radius in the sense of the
// weighted-CONGEST follow-ups to the paper). The core procedure is a
// synchronous Bellman–Ford single-source shortest-path relaxation — every
// node re-broadcasts its distance estimate whenever it improves, each copy
// pre-incremented by the traversed edge's weight — which converges within
// n-1 rounds and runs for a fixed duration so its round count is
// input-independent (the property the quantum Evaluation framework needs).
// A weighted max convergecast turns the per-node distances into the
// source's weighted eccentricity at the leader.
//
// Wire widths: weighted distances range over [0, (n-1)*maxW], so the
// distance fields are BitsForID(DistBound+1) bits — a function of the
// topology's weight cap, not of n alone. The bound is program configuration
// (every node knows n and the weight cap a priori, exactly like it knows n),
// never transmitted; DeclaredBits states the formulas and strict accounting
// verifies them against the encoded bits.

import (
	"fmt"

	"qcongest/internal/graph"
)

type (
	// msgWDist carries one Bellman–Ford distance estimate, pre-incremented
	// by the sender with the weight of the traversed edge. Bound is the
	// receiver/sender-side field-width configuration ([0, Bound]), not part
	// of the payload.
	msgWDist struct {
		Dist  int
		Bound int
	}
	// msgWMax carries a partial weighted maximum (value, witness id) up the
	// tree; the value field covers [0, Bound], the witness is a vertex id.
	msgWMax struct {
		Value   int
		Witness int
		Bound   int
	}
)

func (m *msgWDist) WireKind() Kind          { return KindWDist }
func (m *msgWDist) MarshalWire(w *Writer)   { w.WriteID(m.Dist, m.Bound+1) }
func (m *msgWDist) UnmarshalWire(r *Reader) { m.Dist = r.ReadID(m.Bound + 1) }
func (m *msgWDist) DeclaredBits(n int) int  { return KindBits + BitsForID(m.Bound+1) }

// The width is Bound-parameterized (no RegisterKindWidth), so under strict
// accounting the engine encodes these via the generic path; the packed pair
// still serves the non-strict encode and the receive-side decode.
func (m *msgWDist) PackWire(n int) (uint64, int, bool) {
	if m.Bound < 0 || m.Dist < 0 || m.Dist >= m.Bound+1 {
		return 0, 0, false
	}
	return uint64(m.Dist), BitsForID(m.Bound + 1), true
}
func (m *msgWDist) UnpackWire(n int, p uint64, width int) bool {
	if m.Bound < 0 || width != BitsForID(m.Bound+1) || p >= uint64(m.Bound+1) {
		return false
	}
	m.Dist = int(p)
	return true
}

func (m *msgWMax) WireKind() Kind { return KindWMax }
func (m *msgWMax) MarshalWire(w *Writer) {
	w.WriteID(m.Value, m.Bound+1)
	w.WriteID(m.Witness, w.N)
}
func (m *msgWMax) UnmarshalWire(r *Reader) {
	m.Value = r.ReadID(m.Bound + 1)
	m.Witness = r.ReadID(r.N)
}
func (m *msgWMax) DeclaredBits(n int) int { return KindBits + BitsForID(m.Bound+1) + BitsForID(n) }
func (m *msgWMax) PackWire(n int) (uint64, int, bool) {
	if m.Bound < 0 || m.Value < 0 || m.Value >= m.Bound+1 || m.Witness < 0 || m.Witness >= n {
		return 0, 0, false
	}
	wv := BitsForID(m.Bound + 1)
	if wv+BitsForID(n) > 64 {
		return 0, 0, false // field pair wider than one word: generic path
	}
	return uint64(m.Value) | uint64(m.Witness)<<wv, wv + BitsForID(n), true
}
func (m *msgWMax) UnpackWire(n int, p uint64, width int) bool {
	if m.Bound < 0 {
		return false
	}
	wv := BitsForID(m.Bound + 1)
	if width != wv+BitsForID(n) {
		return false
	}
	value, witness := p&(1<<wv-1), p>>wv
	if value >= uint64(m.Bound+1) || witness >= uint64(n) {
		return false
	}
	m.Value, m.Witness = int(value), int(witness)
	return true
}

func init() {
	RegisterKind(KindWDist, "wdist", func() WireMessage { return new(msgWDist) })
	RegisterKind(KindWMax, "wmax", func() WireMessage { return new(msgWMax) })
}

// WeightedSSSPNode runs the synchronous Bellman–Ford relaxation at one node:
// the source starts at distance 0, every improvement is re-broadcast with
// the edge weight added per neighbor, and after Duration rounds (callers use
// n-1) every node's Dist is the exact weighted distance to the source. The
// duration is fixed, so the round count never depends on the source.
type WeightedSSSPNode struct {
	Source   bool
	Weights  []int // per-neighbor edge weights aligned with env.Neighbors; nil = all 1
	Bound    int   // largest possible finite distance, Topology.DistBound()
	Duration int

	// Output.
	Dist int // weighted distance to the source; -1 if no estimate arrived

	pending  bool
	started  bool
	finished bool

	tx, rx msgWDist
}

// NewWeightedSSSPNode builds the program for one node.
func NewWeightedSSSPNode(source bool, weights []int, bound, duration int) *WeightedSSSPNode {
	return &WeightedSSSPNode{
		Source:   source,
		Weights:  weights,
		Bound:    bound,
		Duration: duration,
		Dist:     -1,
		rx:       msgWDist{Bound: bound},
	}
}

// WeightedSource is the Reset params of a weighted SSSP session: the source
// vertex of the next execution.
type WeightedSource struct{ Source int }

// ResetNode implements Resettable.
func (s *WeightedSSSPNode) ResetNode(v int, params any) {
	switch p := params.(type) {
	case nil:
	case WeightedSource:
		s.Source = v == p.Source
	default:
		badResetParams("WeightedSSSPNode", params)
	}
	s.Dist = -1
	s.pending = false
	s.started = false
	s.finished = false
}

func (s *WeightedSSSPNode) weight(i int) int {
	if s.Weights == nil {
		return 1
	}
	return s.Weights[i]
}

// Send implements Node. Each neighbor receives a different value (distance
// plus that edge's weight), so the relaxation is a per-edge Put, not a
// Broadcast.
func (s *WeightedSSSPNode) Send(env *Env, out *Outbox) {
	if !s.started {
		s.started = true
		if s.Source {
			s.Dist = 0
			s.pending = true
		}
	}
	if !s.pending {
		return
	}
	s.pending = false
	s.tx.Bound = s.Bound
	for i, nb := range env.Neighbors {
		s.tx.Dist = s.Dist + s.weight(i)
		out.Put(nb, &s.tx)
	}
}

// Receive implements Node.
func (s *WeightedSSSPNode) Receive(env *Env, inbox []Inbound) {
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != KindWDist || in.Decode(env, &s.rx) != nil {
			continue
		}
		if d := s.rx.Dist; s.Dist == -1 || d < s.Dist {
			s.Dist = d
			s.pending = true
		}
	}
	if env.Round >= s.Duration {
		s.finished = true
		s.pending = false
	}
}

// Done implements Node.
func (s *WeightedSSSPNode) Done() bool { return s.finished }

// NextWake implements Scheduled: every node runs round 1 (the source seeds
// the relaxation, everyone flips started); afterwards only improvements —
// which arrive as messages — are re-broadcast, and the fixed Duration
// timer finishes the schedule.
func (s *WeightedSSSPNode) NextWake(env *Env, round int) int {
	if s.finished {
		return NeverWake
	}
	if !s.started || s.pending {
		return round + 1
	}
	if s.Duration > round {
		return s.Duration
	}
	return round + 1
}

// StateBits implements StateSizer: one distance estimate and the flags.
func (s *WeightedSSSPNode) StateBits() int { return 2 * 64 }

// WeightedMaxNode convergecasts the maximum of bound-ranged values (with
// witnesses) toward the tree root — the weighted counterpart of
// ConvergecastMaxNode, carrying values up to Bound instead of 4n.
type WeightedMaxNode struct {
	Parent   int
	Children []int
	Value    int
	Witness  int
	Bound    int

	// Outputs (meaningful at the root).
	Max        int
	MaxWitness int

	received int
	sent     bool

	tx, rx msgWMax
}

// NewWeightedMaxNode builds the program for one node.
func NewWeightedMaxNode(parent int, children []int, value, witness, bound int) *WeightedMaxNode {
	return &WeightedMaxNode{
		Parent:     parent,
		Children:   append([]int(nil), children...),
		Value:      value,
		Witness:    witness,
		Bound:      bound,
		Max:        value,
		MaxWitness: witness,
		rx:         msgWMax{Bound: bound},
	}
}

// WeightedMaxInputs is the Reset params of a weighted max-convergecast
// session: the per-vertex input values of the next execution (each vertex
// witnesses itself).
type WeightedMaxInputs struct{ Values []int }

// ResetNode implements Resettable.
func (c *WeightedMaxNode) ResetNode(v int, params any) {
	switch p := params.(type) {
	case nil:
	case WeightedMaxInputs:
		c.Value = p.Values[v]
		c.Witness = v
	default:
		badResetParams("WeightedMaxNode", params)
	}
	c.Max, c.MaxWitness = c.Value, c.Witness
	c.received = 0
	c.sent = false
}

// Send implements Node.
func (c *WeightedMaxNode) Send(env *Env, out *Outbox) {
	if c.sent || c.received < len(c.Children) {
		return
	}
	c.sent = true
	if c.Parent < 0 {
		return
	}
	c.tx = msgWMax{Value: c.Max, Witness: c.MaxWitness, Bound: c.Bound}
	out.Put(c.Parent, &c.tx)
}

// Receive implements Node.
func (c *WeightedMaxNode) Receive(env *Env, inbox []Inbound) {
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != KindWMax || in.Decode(env, &c.rx) != nil {
			continue
		}
		c.received++
		if c.rx.Value > c.Max || (c.rx.Value == c.Max && c.rx.Witness < c.MaxWitness) {
			c.Max = c.rx.Value
			c.MaxWitness = c.rx.Witness
		}
	}
}

// Done implements Node.
func (c *WeightedMaxNode) Done() bool { return c.sent }

// NextWake implements Scheduled: transmit once, as soon as every child has
// reported (leaves in round 1).
func (c *WeightedMaxNode) NextWake(env *Env, round int) int {
	if c.sent {
		return NeverWake
	}
	if c.received >= len(c.Children) {
		return round + 1
	}
	return NeverWake
}

// StateBits implements StateSizer.
func (c *WeightedMaxNode) StateBits() int { return 4 * 64 }

// ssspDuration is the fixed Bellman–Ford schedule length: n-1 relaxation
// rounds reach every shortest path (at most n-1 hops).
func ssspDuration(n int) int {
	if n <= 1 {
		return 1
	}
	return n - 1
}

// WeightedSSSP computes the weighted distance from source to every vertex by
// the synchronous Bellman–Ford program (n-1 rounds).
func WeightedSSSP(g *graph.Graph, source int, opts ...Option) ([]int, Metrics, error) {
	topo, err := NewTopology(g)
	if err != nil {
		return nil, Metrics{}, err
	}
	return WeightedSSSPOn(topo, source, opts...)
}

// WeightedSSSPOn is WeightedSSSP on an already-built topology.
func WeightedSSSPOn(topo *Topology, source int, opts ...Option) ([]int, Metrics, error) {
	n := topo.N()
	duration := ssspDuration(n)
	bound := topo.DistBound()
	nw := NewNetworkOn(topo, func(v int) Node {
		return NewWeightedSSSPNode(v == source, topo.NeighborWeights(v), bound, duration)
	}, opts...)
	if err := nw.Run(duration + 4); err != nil {
		return nil, nw.Metrics(), fmt.Errorf("weighted sssp: %w", err)
	}
	dist := make([]int, n)
	for v := 0; v < n; v++ {
		d := nw.Node(v).(*WeightedSSSPNode).Dist
		if d < 0 {
			return nil, nw.Metrics(), fmt.Errorf("congest: vertex %d unreached by weighted sssp from %d", v, source)
		}
		dist[v] = d
	}
	return dist, nw.Metrics(), nil
}

// WeightedEccentricityOn computes the weighted eccentricity of source — the
// Evaluation of the weighted suite: one Bellman–Ford relaxation plus one
// weighted max convergecast on BFS(leader). Both phases have fixed,
// input-independent durations.
func WeightedEccentricityOn(topo *Topology, info *PreInfo, source int, opts ...Option) (int, Metrics, error) {
	var total Metrics
	dist, m, err := WeightedSSSPOn(topo, source, opts...)
	if err != nil {
		return 0, m, err
	}
	total.Add(m)
	bound := topo.DistBound()
	nw := NewNetworkOn(topo, func(v int) Node {
		return NewWeightedMaxNode(info.Parent[v], info.Children[v], dist[v], v, bound)
	}, opts...)
	if err := nw.Run(4*topo.N() + 16); err != nil {
		return 0, total, fmt.Errorf("weighted convergecast: %w", err)
	}
	total.Add(nw.Metrics())
	return nw.Node(info.Leader).(*WeightedMaxNode).Max, total, nil
}

// WeightedEccSession is the reusable WeightedEccentricityOn: the weighted
// counterpart of EccSession, built once per topology and Reset+Run per
// Evaluation. Eval(source) is bit-for-bit identical to the one-shot helper.
type WeightedEccSession struct {
	sssp   *Session
	cc     *Session
	leader int
	n      int

	duration int
	dv       []int
}

// NewWeightedEccSession builds the Bellman–Ford + weighted-convergecast pair
// on the tree described by info.
func NewWeightedEccSession(topo *Topology, info *PreInfo, opts ...Option) *WeightedEccSession {
	n := topo.N()
	duration := ssspDuration(n)
	bound := topo.DistBound()
	return &WeightedEccSession{
		sssp: NewSession(topo, func(v int) Node {
			return NewWeightedSSSPNode(false, topo.NeighborWeights(v), bound, duration)
		}, opts...),
		cc: NewSession(topo, func(v int) Node {
			return NewWeightedMaxNode(info.Parent[v], info.Children[v], 0, v, bound)
		}, opts...),
		leader:   info.Leader,
		n:        n,
		duration: duration,
		dv:       make([]int, n),
	}
}

// Eval computes the weighted eccentricity of source.
func (es *WeightedEccSession) Eval(source int) (int, Metrics, error) {
	var total Metrics
	if err := es.sssp.Reset(WeightedSource{Source: source}); err != nil {
		return 0, total, err
	}
	if err := es.sssp.Run(es.duration + 4); err != nil {
		return 0, total, fmt.Errorf("weighted sssp: %w", err)
	}
	for v := range es.dv {
		d := es.sssp.Node(v).(*WeightedSSSPNode).Dist
		if d < 0 {
			return 0, total, fmt.Errorf("congest: vertex %d unreached by weighted sssp from %d", v, source)
		}
		es.dv[v] = d
	}
	total.Add(es.sssp.Metrics())
	if err := es.cc.Reset(WeightedMaxInputs{Values: es.dv}); err != nil {
		return 0, total, err
	}
	if err := es.cc.Run(4*es.n + 16); err != nil {
		return 0, total, fmt.Errorf("weighted convergecast: %w", err)
	}
	total.Add(es.cc.Metrics())
	return es.cc.Node(es.leader).(*WeightedMaxNode).Max, total, nil
}

// Clone builds an independent weighted ecc session over the same topology.
// Like Session.Clone, it refuses when the sessions carry an observer.
func (es *WeightedEccSession) Clone() (*WeightedEccSession, error) {
	sssp, err := es.sssp.Clone()
	if err != nil {
		return nil, err
	}
	cc, err := es.cc.Clone()
	if err != nil {
		return nil, err
	}
	return &WeightedEccSession{
		sssp:     sssp,
		cc:       cc,
		leader:   es.leader,
		n:        es.n,
		duration: es.duration,
		dv:       make([]int, len(es.dv)),
	}, nil
}

// Close releases both sessions' engines.
func (es *WeightedEccSession) Close() {
	es.sssp.Close()
	es.cc.Close()
}

// ClassicalWeightedDiameter computes the exact weighted diameter by running
// one weighted Evaluation per vertex on a reused session — the Theta(n^2)
// classical baseline the quantum weighted suite is compared against.
func ClassicalWeightedDiameter(g *graph.Graph, opts ...Option) (ExactResult, error) {
	var res ExactResult
	n := g.N()
	if n == 0 {
		return res, fmt.Errorf("congest: empty graph")
	}
	if n == 1 {
		return ExactResult{Diameter: 0}, nil
	}
	topo, err := NewTopology(g)
	if err != nil {
		return res, err
	}
	info, m, err := PreprocessOn(topo, opts...)
	if err != nil {
		return res, err
	}
	res.Metrics.Add(m)
	es := NewWeightedEccSession(topo, info, opts...)
	defer es.Close()
	for v := 0; v < n; v++ {
		ecc, m, err := es.Eval(v)
		if err != nil {
			return res, err
		}
		res.Metrics.Add(m)
		if ecc > res.Diameter {
			res.Diameter = ecc
		}
	}
	return res, nil
}
