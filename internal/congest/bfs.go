package congest

// This file implements the classical procedures of Section 3's
// "Initialization": the distributed BFS-tree construction of Figure 1
// (augmented with child discovery) and the convergecast that computes
// ecc(root) at the root.

// Wire payloads. Every payload's bit size is declared explicitly where it
// is sent; all are O(log n).
type (
	// msgActivate is the Figure 1 activation message carrying the
	// sender's distance to the root.
	msgActivate struct{ Dist int }
	// msgChild tells the receiver "you are my BFS parent".
	msgChild struct{}
	// msgEccReport carries the maximum root-distance in the sender's
	// subtree toward the root.
	msgEccReport struct{ Max int }
)

// BFSNode runs the Figure 1 BFS construction from a fixed root, augmented
// with (a) child notification, so every node learns its tree children, and
// (b) an event-driven convergecast of the maximum depth, so the root learns
// ecc(root). Per-node core state (parent, distance, subtree max) is O(log n)
// bits; the child set costs one bit per incident edge, the standard
// port-local bookkeeping every tree aggregation needs.
type BFSNode struct {
	Root int

	// Outputs.
	Dist     int
	Parent   int
	Children []int
	Ecc      int // meaningful at the root once done

	activated      bool
	activationSent bool
	childNotified  bool
	childrenFinal  bool
	reported       bool
	childReports   map[int]int
	done           bool
}

// NewBFSNode returns the program for one node.
func NewBFSNode(root int) *BFSNode {
	return &BFSNode{Root: root, Dist: -1, Parent: -1, childReports: map[int]int{}}
}

// Send implements Node.
func (b *BFSNode) Send(env *Env) []Outbound {
	var out []Outbound
	if env.ID == b.Root && !b.activated {
		b.activated = true
		b.Dist = 0
	}
	idBits := BitsForID(env.N)
	if b.activated && !b.activationSent {
		b.activationSent = true
		for _, nb := range env.Neighbors {
			out = append(out, Outbound{To: nb, Payload: msgActivate{Dist: b.Dist}, Bits: idBits})
		}
		if b.Parent >= 0 && !b.childNotified {
			b.childNotified = true
			out = append(out, Outbound{To: b.Parent, Payload: msgChild{}, Bits: 1})
		}
	}
	if b.readyToReport() {
		b.reported = true
		maxDepth := b.subtreeMax()
		if env.ID == b.Root {
			b.Ecc = maxDepth
			b.done = true
		} else {
			out = append(out, Outbound{To: b.Parent, Payload: msgEccReport{Max: maxDepth}, Bits: idBits})
			b.done = true
		}
	}
	return out
}

func (b *BFSNode) readyToReport() bool {
	if !b.childrenFinal || b.reported {
		return false
	}
	return len(b.childReports) == len(b.Children)
}

func (b *BFSNode) subtreeMax() int {
	m := b.Dist
	for _, v := range b.childReports {
		if v > m {
			m = v
		}
	}
	return m
}

// Receive implements Node.
func (b *BFSNode) Receive(env *Env, inbox []Inbound) {
	for _, in := range inbox {
		switch p := in.Payload.(type) {
		case msgActivate:
			if !b.activated {
				b.activated = true
				b.Dist = p.Dist + 1
				b.Parent = in.From // smallest id first: inbox sorted by sender
			}
		case msgChild:
			b.Children = append(b.Children, in.From)
		case msgEccReport:
			b.childReports[in.From] = p.Max
		}
	}
	// A node activated at the end of round r receives child notifications
	// exactly at the end of round r+2 (children activate at r+1, notify at
	// r+2). After that the child set is final.
	if b.activated && !b.childrenFinal && env.Round >= b.Dist+2 {
		b.childrenFinal = true
	}
}

// Done implements Node.
func (b *BFSNode) Done() bool { return b.done }

// StateBits reports the O(log n)-bit core state (parent, distance, subtree
// max) plus one bit per child flag.
func (b *BFSNode) StateBits() int {
	return 3*64 + len(b.Children) + len(b.childReports)*64
}

// LeaderElectNode floods the maximum node id. After global quiescence every
// node's Leader field holds the maximum id in the network. Termination is
// detected by the simulator's quiescence check, which stands in for the
// standard O(D)-round termination detection the paper assumes.
type LeaderElectNode struct {
	Leader  int
	pending bool
	started bool
}

// NewLeaderElectNode returns the program for one node.
func NewLeaderElectNode() *LeaderElectNode {
	return &LeaderElectNode{Leader: -1}
}

// Send implements Node.
func (l *LeaderElectNode) Send(env *Env) []Outbound {
	if !l.started {
		l.started = true
		l.Leader = env.ID
		l.pending = true
	}
	if !l.pending {
		return nil
	}
	l.pending = false
	out := make([]Outbound, 0, len(env.Neighbors))
	for _, nb := range env.Neighbors {
		out = append(out, Outbound{To: nb, Payload: msgActivate{Dist: l.Leader}, Bits: BitsForID(env.N)})
	}
	return out
}

// Receive implements Node.
func (l *LeaderElectNode) Receive(env *Env, inbox []Inbound) {
	for _, in := range inbox {
		if p, ok := in.Payload.(msgActivate); ok && p.Dist > l.Leader {
			l.Leader = p.Dist
			l.pending = true
		}
	}
}

// Done implements Node.
func (l *LeaderElectNode) Done() bool { return l.started && !l.pending }

// StateBits implements StateSizer.
func (l *LeaderElectNode) StateBits() int { return 64 }
