package congest

// This file implements the classical procedures of Section 3's
// "Initialization": the distributed BFS-tree construction of Figure 1
// (augmented with child discovery) and the convergecast that computes
// ecc(root) at the root.

// Wire payloads. Each type defines its encoding (see DESIGN.md, "Wire
// format"); the engine charges the encoded length, and DeclaredBits states
// the size formula that WithStrictAccounting verifies against the wire.
type (
	// msgActivate is the Figure 1 activation message carrying the
	// sender's distance to the root (also reused by the max-id flood of
	// leader election, so the field ranges over [0, n)).
	msgActivate struct{ Dist int }
	// msgChild tells the receiver "you are my BFS parent". No payload:
	// the kind tag alone carries the information.
	msgChild struct{}
	// msgEccReport carries the maximum root-distance in the sender's
	// subtree toward the root.
	msgEccReport struct{ Max int }
)

func (m *msgActivate) WireKind() Kind          { return KindActivate }
func (m *msgActivate) MarshalWire(w *Writer)   { w.WriteID(m.Dist, w.N) }
func (m *msgActivate) UnmarshalWire(r *Reader) { m.Dist = r.ReadID(r.N) }
func (m *msgActivate) DeclaredBits(n int) int  { return KindBits + BitsForID(n) }
func (m *msgActivate) PackWire(n int) (uint64, int, bool) {
	if m.Dist < 0 || m.Dist >= n {
		return 0, 0, false
	}
	return uint64(m.Dist), BitsForID(n), true
}
func (m *msgActivate) UnpackWire(n int, p uint64, width int) bool {
	if width != BitsForID(n) || p >= uint64(n) {
		return false
	}
	m.Dist = int(p)
	return true
}

func (m *msgChild) WireKind() Kind                     { return KindChild }
func (m *msgChild) MarshalWire(w *Writer)              {}
func (m *msgChild) UnmarshalWire(r *Reader)            {}
func (m *msgChild) DeclaredBits(n int) int             { return KindBits }
func (m *msgChild) PackWire(n int) (uint64, int, bool) { return 0, 0, true }
func (m *msgChild) UnpackWire(n int, p uint64, width int) bool {
	return width == 0
}

func (m *msgEccReport) WireKind() Kind          { return KindEccReport }
func (m *msgEccReport) MarshalWire(w *Writer)   { w.WriteID(m.Max, w.N) }
func (m *msgEccReport) UnmarshalWire(r *Reader) { m.Max = r.ReadID(r.N) }
func (m *msgEccReport) DeclaredBits(n int) int  { return KindBits + BitsForID(n) }
func (m *msgEccReport) PackWire(n int) (uint64, int, bool) {
	if m.Max < 0 || m.Max >= n {
		return 0, 0, false
	}
	return uint64(m.Max), BitsForID(n), true
}
func (m *msgEccReport) UnpackWire(n int, p uint64, width int) bool {
	if width != BitsForID(n) || p >= uint64(n) {
		return false
	}
	m.Max = int(p)
	return true
}

func init() {
	RegisterKind(KindActivate, "activate", func() WireMessage { return new(msgActivate) })
	RegisterKind(KindChild, "child", func() WireMessage { return new(msgChild) })
	RegisterKind(KindEccReport, "ecc-report", func() WireMessage { return new(msgEccReport) })
	RegisterKindWidth(KindActivate, func(n int) int { return KindBits + BitsForID(n) })
	RegisterKindWidth(KindChild, func(n int) int { return KindBits })
	RegisterKindWidth(KindEccReport, func(n int) int { return KindBits + BitsForID(n) })
}

// BFSNode runs the Figure 1 BFS construction from a fixed root, augmented
// with (a) child notification, so every node learns its tree children, and
// (b) an event-driven convergecast of the maximum depth, so the root learns
// ecc(root). Per-node core state (parent, distance, subtree max) is O(log n)
// bits; the child set costs one bit per incident edge, the standard
// port-local bookkeeping every tree aggregation needs.
type BFSNode struct {
	Root int

	// Outputs.
	Dist     int
	Parent   int
	Children []int
	Ecc      int // meaningful at the root once done

	activated      bool
	activationSent bool
	childNotified  bool
	childrenFinal  bool
	reported       bool
	childReports   map[int]int
	done           bool

	tx struct {
		activate msgActivate
		child    msgChild
		ecc      msgEccReport
	}
	rx struct {
		activate msgActivate
		ecc      msgEccReport
	}
}

// NewBFSNode returns the program for one node.
func NewBFSNode(root int) *BFSNode {
	return &BFSNode{Root: root, Dist: -1, Parent: -1, childReports: map[int]int{}}
}

// BFSRoot is the Reset params of a BFS session: the root of the next
// construction.
type BFSRoot struct{ Root int }

// ResetNode implements Resettable. The Children slice is dropped (not
// truncated): the previous run's output may have escaped into a PreInfo,
// and a session must never mutate results it already handed out.
func (b *BFSNode) ResetNode(v int, params any) {
	switch p := params.(type) {
	case nil:
	case BFSRoot:
		b.Root = p.Root
	default:
		badResetParams("BFSNode", params)
	}
	b.Dist, b.Parent = -1, -1
	b.Children = nil
	b.Ecc = 0
	b.activated = false
	b.activationSent = false
	b.childNotified = false
	b.childrenFinal = false
	b.reported = false
	clear(b.childReports)
	b.done = false
}

// Send implements Node.
func (b *BFSNode) Send(env *Env, out *Outbox) {
	if env.ID == b.Root && !b.activated {
		b.activated = true
		b.Dist = 0
	}
	if b.activated && !b.activationSent {
		b.activationSent = true
		b.tx.activate.Dist = b.Dist
		out.Broadcast(env.Neighbors, &b.tx.activate)
		if b.Parent >= 0 && !b.childNotified {
			b.childNotified = true
			out.Put(b.Parent, &b.tx.child)
		}
	}
	if b.readyToReport() {
		b.reported = true
		maxDepth := b.subtreeMax()
		if env.ID == b.Root {
			b.Ecc = maxDepth
			b.done = true
		} else {
			b.tx.ecc.Max = maxDepth
			out.Put(b.Parent, &b.tx.ecc)
			b.done = true
		}
	}
}

func (b *BFSNode) readyToReport() bool {
	if !b.childrenFinal || b.reported {
		return false
	}
	return len(b.childReports) == len(b.Children)
}

func (b *BFSNode) subtreeMax() int {
	m := b.Dist
	for _, v := range b.childReports {
		if v > m {
			m = v
		}
	}
	return m
}

// Receive implements Node.
func (b *BFSNode) Receive(env *Env, inbox []Inbound) {
	for i := range inbox {
		in := &inbox[i]
		switch in.Kind {
		case KindActivate:
			if in.Decode(env, &b.rx.activate) != nil {
				continue
			}
			if !b.activated {
				b.activated = true
				b.Dist = b.rx.activate.Dist + 1
				b.Parent = in.From // smallest id first: inbox sorted by sender
			}
		case KindChild:
			b.Children = append(b.Children, in.From)
		case KindEccReport:
			if in.Decode(env, &b.rx.ecc) != nil {
				continue
			}
			b.childReports[in.From] = b.rx.ecc.Max
		}
	}
	// A node activated at the end of round r receives child notifications
	// exactly at the end of round r+2 (children activate at r+1, notify at
	// r+2). After that the child set is final.
	if b.activated && !b.childrenFinal && env.Round >= b.Dist+2 {
		b.childrenFinal = true
	}
}

// Done implements Node.
func (b *BFSNode) Done() bool { return b.done }

// NextWake implements Scheduled. A BFS node acts spontaneously in exactly
// three situations: the root self-activates (round 1), an activated node
// broadcasts once, and the child set becomes final by the round-(Dist+2)
// timer — after which the node reports as soon as the last child report is
// in (reports arrive as messages, which schedule the node by themselves).
func (b *BFSNode) NextWake(env *Env, round int) int {
	if b.done {
		return NeverWake
	}
	if !b.activated {
		if env.ID == b.Root {
			return round + 1 // self-activation in the next Send
		}
		return NeverWake // activation arrives as a message
	}
	if !b.activationSent {
		return round + 1
	}
	if !b.childrenFinal {
		if w := b.Dist + 2; w > round {
			return w // the children-final timer fires in that round's Receive
		}
		return round + 1
	}
	if !b.reported && len(b.childReports) == len(b.Children) {
		return round + 1 // report in the next Send
	}
	return NeverWake // waiting for child reports
}

// StateBits reports the O(log n)-bit core state (parent, distance, subtree
// max) plus one bit per child flag.
func (b *BFSNode) StateBits() int {
	return 3*64 + len(b.Children) + len(b.childReports)*64
}

// LeaderElectNode floods the maximum node id. After global quiescence every
// node's Leader field holds the maximum id in the network. Termination is
// detected by the simulator's quiescence check, which stands in for the
// standard O(D)-round termination detection the paper assumes.
type LeaderElectNode struct {
	Leader  int
	pending bool
	started bool

	tx, rx msgActivate
}

// NewLeaderElectNode returns the program for one node.
func NewLeaderElectNode() *LeaderElectNode {
	return &LeaderElectNode{Leader: -1}
}

// ResetNode implements Resettable (no params).
func (l *LeaderElectNode) ResetNode(v int, params any) {
	if params != nil {
		badResetParams("LeaderElectNode", params)
	}
	l.Leader = -1
	l.pending = false
	l.started = false
}

// Send implements Node.
func (l *LeaderElectNode) Send(env *Env, out *Outbox) {
	if !l.started {
		l.started = true
		l.Leader = env.ID
		l.pending = true
	}
	if !l.pending {
		return
	}
	l.pending = false
	l.tx.Dist = l.Leader
	out.Broadcast(env.Neighbors, &l.tx)
}

// Receive implements Node.
func (l *LeaderElectNode) Receive(env *Env, inbox []Inbound) {
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != KindActivate || in.Decode(env, &l.rx) != nil {
			continue
		}
		if l.rx.Dist > l.Leader {
			l.Leader = l.rx.Dist
			l.pending = true
		}
	}
}

// Done implements Node.
func (l *LeaderElectNode) Done() bool { return l.started && !l.pending }

// NextWake implements Scheduled: every node floods its own id in round 1;
// afterwards it only re-broadcasts improvements, which arrive as messages.
func (l *LeaderElectNode) NextWake(env *Env, round int) int {
	if !l.started || l.pending {
		return round + 1
	}
	return NeverWake
}

// StateBits implements StateSizer.
func (l *LeaderElectNode) StateBits() int { return 64 }
