package congest

// This file implements Step 1 of the paper's Figure 2: a token performing a
// depth-first traversal of BFS(leader) starting at a designated vertex u0,
// for a fixed number of steps L, assigning tau'(v) = first-visit step index
// to every vertex reached. When the traversal completes the full tour it
// restarts from the leader (the paper's "if it reaches the end of the DFS,
// it starts again from leader"); the restart is continuous because the tour
// ends at the root.
//
// The routing is the classic stateless Euler-tour rule: a token arriving at
// v from its tree parent descends into v's first child; a token arriving
// from child c moves to the child after c, or to the parent when c was the
// last child. Children are ordered by ascending id, matching
// graph.BFSTree.EulerTour, so the distributed walk reproduces the reference
// tour exactly.

// msgToken carries the walk's step counter. Walks of the 3/2-approximation
// run for up to 2(tStar + d) <= 4n - 4 steps, so the field width is
// BitsForID(4n+1) — the pre-wire-format declared size BitsForID(2n+1)
// undercounted exactly those walks, which the encoded accounting now makes
// impossible.
type msgToken struct{ Step int }

func (m *msgToken) WireKind() Kind          { return KindToken }
func (m *msgToken) MarshalWire(w *Writer)   { w.WriteID(m.Step, 4*w.N+1) }
func (m *msgToken) UnmarshalWire(r *Reader) { m.Step = r.ReadID(4*r.N + 1) }
func (m *msgToken) DeclaredBits(n int) int  { return KindBits + BitsForID(4*n+1) }
func (m *msgToken) PackWire(n int) (uint64, int, bool) {
	if m.Step < 0 || m.Step >= 4*n+1 {
		return 0, 0, false
	}
	return uint64(m.Step), BitsForID(4*n + 1), true
}
func (m *msgToken) UnpackWire(n int, p uint64, width int) bool {
	if width != BitsForID(4*n+1) || p >= uint64(4*n+1) {
		return false
	}
	m.Step = int(p)
	return true
}

func init() {
	RegisterKind(KindToken, "token", func() WireMessage { return new(msgToken) })
	RegisterKindWidth(KindToken, func(n int) int { return KindBits + BitsForID(4*n+1) })
}

// TokenWalkNode runs the walk at one node.
type TokenWalkNode struct {
	// Static configuration (computed by earlier phases).
	Parent   int   // tree parent, -1 at the root
	Children []int // tree children in ascending id order; may be filtered
	Root     int
	Start    int // u0: the vertex where the walk begins
	Steps    int // L: number of token moves to perform

	// Output.
	Tau int // first-visit step index, -1 if never visited

	holding  bool // token currently here, to be forwarded next Send
	arrived  int  // step counter when the token arrived
	from     int  // -1 if walk start or restart at root, else sender
	finished bool

	tx, rx msgToken
}

// NewTokenWalkNode builds the walk program for one node.
func NewTokenWalkNode(parent int, children []int, root, start, steps int) *TokenWalkNode {
	return &TokenWalkNode{
		Parent:   parent,
		Children: append([]int(nil), children...),
		Root:     root,
		Start:    start,
		Steps:    steps,
		Tau:      -1,
		from:     -1,
	}
}

// WalkStart is the Reset params of a token-walk session: the vertex the
// next execution's walk begins at.
type WalkStart struct{ Start int }

// ResetNode implements Resettable: the program returns to its constructed
// state, optionally rebasing the walk at params.(WalkStart).Start.
func (t *TokenWalkNode) ResetNode(v int, params any) {
	switch p := params.(type) {
	case nil:
	case WalkStart:
		t.Start = p.Start
	default:
		badResetParams("TokenWalkNode", params)
	}
	t.Tau = -1
	t.holding = false
	t.arrived = 0
	t.from = -1
	t.finished = false
}

// Send implements Node.
func (t *TokenWalkNode) Send(env *Env, out *Outbox) {
	if env.ID == t.Start && env.Round == 1 {
		// The walk begins here: this counts as the first visit, step 0.
		t.holding = true
		t.arrived = 0
		t.from = -1
		t.Tau = 0
	}
	if !t.holding || t.arrived >= t.Steps {
		return
	}
	next := t.nextHop(env)
	t.holding = false
	if next == env.ID {
		// Restart from leader: the token "stays" while the tour wraps.
		// This only happens at the root; re-enter holding state with the
		// restart semantics (as if arriving top-down) without consuming
		// a communication round: descend immediately into first child.
		t.from = -1
		if len(t.Children) == 0 {
			// Degenerate single-vertex tree: walk cannot move.
			return
		}
		next = t.Children[0]
	}
	t.tx.Step = t.arrived + 1
	out.Put(next, &t.tx)
}

// nextHop applies the Euler-tour routing rule based on where the token
// came from.
func (t *TokenWalkNode) nextHop(env *Env) int {
	if t.from == -1 || t.from == t.Parent {
		// Top-down arrival (or walk start / restart): descend first child.
		if len(t.Children) > 0 {
			return t.Children[0]
		}
		if t.Parent >= 0 {
			return t.Parent
		}
		return env.ID // root with no children
	}
	// Bottom-up arrival from child t.from.
	for i, c := range t.Children {
		if c == t.from {
			if i+1 < len(t.Children) {
				return t.Children[i+1]
			}
			if t.Parent >= 0 {
				return t.Parent
			}
			return env.ID // tour complete at root: restart
		}
	}
	// The sender was not a child: must be the parent (top-down).
	if len(t.Children) > 0 {
		return t.Children[0]
	}
	return t.Parent
}

// Receive implements Node.
func (t *TokenWalkNode) Receive(env *Env, inbox []Inbound) {
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != KindToken || in.Decode(env, &t.rx) != nil {
			continue
		}
		t.holding = true
		t.arrived = t.rx.Step
		t.from = in.From
		if t.Tau == -1 {
			if in.From == t.Parent {
				// First top-down arrival: the DFS-numbering visit.
				t.Tau = t.rx.Step
			} else if t.Parent < 0 && len(t.Children) > 0 && in.From == t.Children[len(t.Children)-1] {
				// The root's tau-visit is the tour completion (arrival
				// from its last child), which is where the wrapped walk
				// restarts: position 0 of the reference tour.
				t.Tau = t.rx.Step
			}
		}
	}
	if env.Round >= t.Steps {
		t.finished = true
	}
}

// Done implements Node.
func (t *TokenWalkNode) Done() bool { return t.finished }

// NextWake implements Scheduled: only the token holder acts — the start
// vertex in round 1, then whoever holds the token forwards it next round.
// Every other vertex sleeps until round Steps, where the fixed-duration
// timer finishes the walk (so under frontier scheduling the per-round work
// is the token's single hop, not n vertices).
func (t *TokenWalkNode) NextWake(env *Env, round int) int {
	if t.finished {
		return NeverWake
	}
	if t.holding && t.arrived < t.Steps {
		return round + 1 // forward the token
	}
	if env.ID == t.Start && round == 0 {
		return 1 // the walk begins here
	}
	if t.Steps > round {
		return t.Steps // the finished timer fires in round Steps
	}
	return round + 1
}

// StateBits implements StateSizer: step counter, tau, from pointer.
func (t *TokenWalkNode) StateBits() int { return 4 * 64 }
