// Package congest simulates the classical CONGEST model of Section 2.1 of
// the paper: a synchronous network where, in every round, each node may send
// one message of O(log n) bits to each neighbor.
//
// # Round semantics
//
// Rounds are numbered 1, 2, 3, ... In round r every node first sends
// messages (computed from its state, which reflects everything received in
// rounds < r) and then receives all messages sent to it in round r. A node
// program implements both halves via Send and Receive. The engine stops at
// the first round boundary at which every node reports Done; the number of
// executed rounds is the algorithm's round complexity.
//
// # Bandwidth accounting
//
// Messages are typed wire messages (see wire.go): a node emits them through
// Outbox.Put, the engine marshals each one into a packed bit arena, and the
// message's cost is its encoded length — kind tag plus payload — in bits.
// Nothing is declared and trusted: Metrics.Bits, Metrics.MaxEdgeBits and
// the bandwidth checks are all derived from the encoding, and the engine
// enforces that the total encoded bits sent over each directed edge in a
// round never exceed the configured bandwidth (default Θ(log n)).
// Violations fail the run, so passing tests prove the congestion claims
// (e.g. the paper's Lemma 4) over real bit counts. WithStrictAccounting
// additionally cross-checks any legacy declared size formula
// (BitsDeclarer) against the encoded length.
//
// # Execution engine
//
// Run executes each half-round on a pool of worker goroutines (see
// WithWorkers): worker w owns every vertex v with v ≡ w (mod k), runs the
// Send half for its vertices with a private Outbox (arena, edge-bit ledger
// and metrics shard) and private per-receiver message buffers, and after
// the round barrier runs the Receive half for its vertices on inboxes
// merged from all workers' buffers in ascending sender order. Because
// delivery order, the metrics merge, and the selection of the reported
// validation error are all canonical, a run is bit-for-bit deterministic:
// outputs, round counts, Metrics and error messages are identical for every
// worker count, including the k=1 serial execution. Encoded messages live
// in recycled per-worker arenas, so steady-state rounds allocate nothing.
//
// By default rounds are frontier-scheduled (see WithScheduler and
// scheduler.go): only vertices that received a message last round,
// self-scheduled a wake (the Scheduled contract), or lack the contract
// entirely are executed, with worker shards iterating the sorted frontier
// — bit-identical to dense execution, but wall-clock scales with the
// algorithm's total work instead of n·rounds. The adjacency the engine
// runs on is a packed CSR core built once per Topology (flat offset/arena
// arrays; Env.Neighbors slices are views into the arena, and the
// per-message destination check is a binary search on the packed row).
// DESIGN.md ("Execution engine", "Scheduler", "Wire format") documents the
// concurrency model, the determinism argument and the message encodings in
// full.
//
// # Execution sessions
//
// Callers that execute the same program family many times (the quantum
// algorithms run one Evaluation per Grover iteration) should not rebuild
// the network each time: a Topology caches everything derived from the
// graph, a Session owns the network plus a persistent engine and re-runs
// it via Reset — bit-identical to a fresh build — and a Pool clones
// session-backed contexts for concurrent independent executions with
// deterministic results. See session.go, evalsession.go and DESIGN.md
// ("Execution sessions").
//
// Node programs may be executed concurrently, at most one goroutine per
// vertex at a time: Send(u) and Send(v) can run in parallel for u != v, and
// likewise Receive. Programs therefore must not share mutable state across
// vertices (all programs in this repository are pure per-vertex state
// machines). The inbox slice passed to Receive is only valid for the
// duration of the call and must not be retained.
package congest

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"qcongest/internal/graph"
)

// Inbound is a message as seen by its receiver: the sender, the decoded
// kind tag, the encoded length in bits (tag included), and the encoded
// payload, which Decode unpacks into a typed message.
type Inbound struct {
	From int
	Kind Kind
	Bits int

	wire WireView
}

// Decode unpacks the message payload into m, whose WireKind must equal the
// inbound kind. The env must be the one the engine passed to Receive (it
// holds the per-vertex decode scratch, which is what keeps the receive
// path allocation-free); decode into a reusable struct for the same
// reason.
func (in *Inbound) Decode(env *Env, m WireMessage) error {
	if k := m.WireKind(); k != in.Kind {
		return fmt.Errorf("congest: cannot decode %v message into %v", in.Kind, k)
	}
	// Single-word fast path: the whole message fits one uint64, so the
	// payload is one shift-and-mask away. UnpackWire accepts exactly the
	// payloads the generic decode accepts cleanly (the differential tests
	// pin this); on ok=false we fall through to the generic path, which
	// reproduces the canonical error.
	if p, fast := m.(PackedWire); fast && in.wire.bits <= 64 {
		if p.UnpackWire(env.N, in.wire.word()>>KindBits, int(in.wire.bits)-KindBits) {
			return nil
		}
	}
	rd := &env.rd // rd.N is fixed to env.N by the engine
	rd.words = in.wire.words
	rd.off = int(in.wire.off) + KindBits
	rd.end = int(in.wire.off) + int(in.wire.bits)
	if rd.err != nil {
		rd.err = nil
	}
	m.UnmarshalWire(rd)
	if rd.err != nil {
		return rd.err
	}
	// The wire contract is exact: UnmarshalWire must consume every payload
	// bit MarshalWire wrote, or the codec pair is inconsistent.
	if left := rd.Remaining(); left != 0 {
		return fmt.Errorf("congest: %v decode left %d of %d payload bits unread", in.Kind, left, int(in.wire.bits)-KindBits)
	}
	return nil
}

// Wire returns the encoded message (kind tag included). Like the inbox, the
// view is only valid for the duration of the Receive call.
func (in *Inbound) Wire() WireView { return in.wire }

// stagedMsg is one encoded outbound message awaiting delivery.
type stagedMsg struct {
	to   int
	kind Kind
	bits int
	wire WireView
}

// stagedRec is one staged message copy in the Outbox's per-round SoA
// delivery queue: a compact record (the arena offset stands in for the
// 32-byte WireView, which delivery reconstructs) threaded into its
// receiver's chain through `next`.
type stagedRec struct {
	start int   // bit offset of the encoded copy in the arena
	from  int32 // sender
	next  int32 // next record for the same receiver; -1 ends the chain
	bits  int32 // encoded length, tag included
	kind  Kind
}

// destChain heads one receiver's chain of staged records. The stamp makes
// the chain's liveness O(1) per round: a chain is current iff its stamp
// equals the outbox's round serial, so beginRound resets every chain by
// bumping the serial instead of sweeping a touch list.
type destChain struct {
	stamp      uint64
	head, tail int32
}

// edgeCell is one directed edge's bit total for the current sender,
// stamp-checked against the per-sender serial the same way.
type edgeCell struct {
	stamp uint64
	bits  int32
}

// Outbox collects the messages a node sends in one round. Put marshals the
// message into the worker's bit arena immediately — the encoded length is
// the message's cost — validates the destination, the encoding, and the
// per-edge bandwidth budget, and stages a compact record into the worker's
// delivery queue. After the first violation the Outbox goes inert and the
// run aborts with that error at the round barrier.
type Outbox struct {
	nw     *Network
	round  int
	sender int

	arena Writer

	// SoA delivery queue (DESIGN.md "Wire hot-path anatomy"): q holds one
	// record per staged copy in staging order; dest[to] heads receiver
	// `to`'s chain through q; touched lists the receivers first staged
	// this round, in staging order (the frontier claim pass and the
	// reference engine iterate it). qSerial is bumped by beginRound, so
	// recycling the queue and every chain is O(1).
	q       []stagedRec
	dest    []destChain
	touched []int32
	qSerial uint64

	// Observer support: the current sender's emissions in order, kept only
	// when a run observer needs the canonical replay.
	keepMsgs bool
	msgs     []stagedMsg

	// Per-round accounting (the worker's metrics shard). The message count
	// is derived at the barrier (len(q)); only the bit total and the edge
	// maximum are tracked inline — the edge ledger is transient per sender,
	// so its maximum cannot be recovered later.
	bitsTotal int
	maxEdge   int
	err       error
	errSender int

	// Directed-edge bit ledger for the current sender; edgeSerial is
	// bumped by begin, making the per-sender reset O(1) (edges are
	// directed: no other sender contributes to (v, to) totals).
	edge       []edgeCell
	edgeSerial uint64
}

func newOutbox(nw *Network, n int) *Outbox {
	return &Outbox{
		nw:        nw,
		dest:      make([]destChain, n),
		keepMsgs:  nw.observer != nil,
		edge:      make([]edgeCell, n),
		errSender: -1,
	}
}

// beginRound resets the per-round state: the arena words and the delivery
// queue are recycled and the chain stamps are invalidated by one serial
// bump, so steady-state rounds allocate nothing and reset in O(1).
func (o *Outbox) beginRound(round int) {
	o.round = round
	o.sender = -1
	o.arena.Reset(o.nw.topo.n)
	o.q = o.q[:0]
	o.touched = o.touched[:0]
	o.qSerial++
	o.bitsTotal = 0
	o.maxEdge = 0
	o.err = nil
	o.errSender = -1
	o.edgeSerial++
}

// begin starts staging for sender v; the serial bump is the O(1) per-edge
// ledger reset.
func (o *Outbox) begin(v int) {
	o.sender = v
	if o.keepMsgs {
		o.msgs = o.msgs[:0]
	}
	o.edgeSerial++
}

func (o *Outbox) fail(err error) {
	o.err = err
	o.errSender = o.sender
}

// encode marshals m (kind tag + payload) into the arena and returns its
// start offset and encoded length. ok is false after a validation failure.
//
// Messages implementing PackedWire whose encoding fits one word take the
// single-write fast path; under strict accounting the cross-check is the
// precomputed per-kind width table (one integer compare). Any condition
// the fast path cannot certify — pack refusal, width over one word, a
// strict check with no fixed width — falls through to the generic path
// below, which produces the canonical encodings and errors.
func (o *Outbox) encode(m WireMessage) (start, bits int, k Kind, ok bool) {
	k = m.WireKind()
	if p, fast := m.(PackedWire); fast && Registered(k) {
		if payload, width, pok := p.PackWire(o.arena.N); pok {
			bits = KindBits + width
			if bits <= 64 && (!o.nw.strict || int(o.nw.packW[k]) == bits) {
				word := uint64(k) | payload<<KindBits
				if bits < 64 {
					word &= 1<<uint(bits) - 1 // cap a buggy codec's stray high bits
				}
				start = o.arena.Len()
				o.arena.writeRaw(word, bits)
				return start, bits, k, true
			}
		}
	}
	if !Registered(k) {
		o.fail(fmt.Errorf("congest: round %d: node %d sent a message of unregistered kind %d",
			o.round, o.sender, uint8(k)))
		return 0, 0, k, false
	}
	start = o.arena.Len()
	o.arena.WriteUint(uint64(k), KindBits)
	m.MarshalWire(&o.arena)
	if err := o.arena.Err(); err != nil {
		o.fail(fmt.Errorf("congest: round %d: node %d: encoding %v message: %w",
			o.round, o.sender, k, err))
		return 0, 0, k, false
	}
	bits = o.arena.Len() - start
	if o.nw.strict {
		if d, isDecl := m.(BitsDeclarer); isDecl {
			if want := d.DeclaredBits(o.arena.N); want != bits {
				o.fail(fmt.Errorf("congest: round %d: node %d: %v message declares %d bits but encodes to %d",
					o.round, o.sender, k, want, bits))
				return 0, 0, k, false
			}
		}
	}
	return start, bits, k, true
}

// stageTo validates the destination and the per-edge bandwidth for one copy
// of an encoded message and stages it into the delivery queue.
func (o *Outbox) stageTo(to int, k Kind, bits, start int) {
	if o.err != nil {
		return
	}
	if !o.nw.topo.HasEdge(o.sender, to) {
		o.fail(fmt.Errorf("congest: round %d: node %d sent to non-neighbor %d", o.round, o.sender, to))
		return
	}
	o.stageKnownEdge(to, k, bits, start)
}

// stageKnownEdge is stageTo for a destination already known to be a
// neighbor (the Broadcast-to-neighbor-row fast path); the bandwidth ledger
// and the delivery staging are identical.
func (o *Outbox) stageKnownEdge(to int, k Kind, bits, start int) {
	ec := &o.edge[to]
	eb := int32(bits)
	if ec.stamp == o.edgeSerial {
		eb += ec.bits
	} else {
		ec.stamp = o.edgeSerial
	}
	ec.bits = eb
	if int(eb) > o.nw.bandwidth {
		o.fail(fmt.Errorf("congest: round %d: edge %d->%d exceeds bandwidth (%d > %d bits)",
			o.round, o.sender, to, eb, o.nw.bandwidth))
		return
	} else if int(eb) > o.maxEdge {
		o.maxEdge = int(eb)
	}
	rec := int32(len(o.q))
	dc := &o.dest[to]
	if dc.stamp == o.qSerial {
		o.q[dc.tail].next = rec
	} else {
		dc.stamp = o.qSerial
		dc.head = rec
		o.touched = append(o.touched, int32(to))
	}
	dc.tail = rec
	o.q = append(o.q, stagedRec{start: start, from: int32(o.sender), next: -1, bits: int32(bits), kind: k})
	if o.keepMsgs {
		o.msgs = append(o.msgs, stagedMsg{to: to, kind: k, bits: bits, wire: o.arena.view(start, bits)})
	}
	o.bitsTotal += bits
}

// sent returns the number of copies staged this round (derived from the
// queue at the barrier — the metrics-coalescing side of the SoA layout).
func (o *Outbox) sent() int { return len(o.q) }

// appendChain materializes receiver to's staged messages onto buf, in
// emission order. The views point into the outbox arena, which is stable
// until the next beginRound (i.e. across the whole receive half).
func (o *Outbox) appendChain(to int, buf []Inbound) []Inbound {
	dc := &o.dest[to]
	if dc.stamp != o.qSerial {
		return buf
	}
	for i := dc.head; i >= 0; i = o.q[i].next {
		r := &o.q[i]
		buf = append(buf, Inbound{From: int(r.from), Kind: r.kind, Bits: int(r.bits), wire: o.arena.view(r.start, int(r.bits))})
	}
	return buf
}

// gatherChains materializes receiver v's canonical inbox — ascending
// sender, emission order within a sender — from the staged chains of obs
// (one Outbox per worker), appending onto buf. heads is len(obs)-long merge
// scratch. Every chain is ascending-sender by construction (senders run in
// ascending order within a worker) and a sender lives in exactly one
// outbox, so a k-way merge by sender id (ties impossible) reproduces the
// serial delivery order.
func gatherChains(obs []*Outbox, heads []int32, v int, buf []Inbound) []Inbound {
	contributors, solo := 0, -1
	for ww, ob := range obs {
		if ob.dest[v].stamp == ob.qSerial {
			contributors++
			solo = ww
		}
	}
	switch contributors {
	case 0:
		return buf
	case 1:
		return obs[solo].appendChain(v, buf)
	}
	for ww, ob := range obs {
		if ob.dest[v].stamp == ob.qSerial {
			heads[ww] = ob.dest[v].head
		} else {
			heads[ww] = -1
		}
	}
	for {
		best := -1
		var bestFrom int32
		for ww := range obs {
			if h := heads[ww]; h >= 0 {
				if from := obs[ww].q[h].from; best < 0 || from < bestFrom {
					best, bestFrom = ww, from
				}
			}
		}
		if best < 0 {
			return buf
		}
		ob := obs[best]
		r := &ob.q[heads[best]]
		buf = append(buf, Inbound{From: int(r.from), Kind: r.kind, Bits: int(r.bits), wire: ob.arena.view(r.start, int(r.bits))})
		heads[best] = r.next
	}
}

// Put encodes and stages one message to neighbor `to`. The cost charged
// against the edge bandwidth is the encoded length in bits, kind tag
// included; there is no way to send bits the encoder did not produce.
func (o *Outbox) Put(to int, m WireMessage) {
	if o.err != nil {
		return
	}
	start, bits, k, ok := o.encode(m)
	if !ok {
		return
	}
	o.stageTo(to, k, bits, start)
}

// Broadcast sends the identical message to every target, in slice order.
// It is equivalent to calling Put once per target but marshals the message
// a single time — the natural emission for the flooding pattern most
// CONGEST algorithms use. Each copy is charged in full against its own
// edge.
func (o *Outbox) Broadcast(targets []int, m WireMessage) {
	if o.err != nil || len(targets) == 0 {
		return
	}
	start, bits, k, ok := o.encode(m)
	if !ok {
		return
	}
	// Flooding fast path: when targets is the sender's own neighbor row —
	// the idiomatic Broadcast(env.Neighbors, m) — or a prefix subslice of
	// it (env.Neighbors[:j] is still all neighbors), every destination is a
	// neighbor by construction, so the per-copy adjacency probe is skipped.
	// Identity is by slice identity (same base pointer as the topology row,
	// length within it), never by content, so no caller-built slice can
	// take the path. Non-prefix subslices (row[i:] for i > 0) have a
	// different base pointer and run through the validated path — correct,
	// just not fast.
	if row := o.nw.topo.neighbors[o.sender]; len(row) > 0 && len(targets) <= len(row) && &targets[0] == &row[0] {
		for _, to := range targets {
			if o.err != nil {
				return
			}
			o.stageKnownEdge(to, k, bits, start)
		}
		return
	}
	for _, to := range targets {
		o.stageTo(to, k, bits, start)
	}
}

// Env is the read-only per-node view of the network that the engine passes
// to node programs: everything a CONGEST node is allowed to know a priori
// (its id, n, its incident edges) plus the current round number.
type Env struct {
	ID        int
	N         int
	Neighbors []int // ascending; must not be modified
	Round     int   // current round, starting at 1

	rd Reader // per-vertex decode scratch used by Inbound.Decode
}

// Node is a per-node program.
//
// Send emits the messages the node transmits this round through out.Put.
// Receive delivers the messages sent to the node this round; the inbox
// slice is owned by the engine and must not be retained after the call
// returns. Done reports whether the node has fixed its output and has
// nothing further to send; once every node is Done at a round boundary the
// run stops.
//
// Programs at distinct vertices may run concurrently (see the package
// comment), so a program must only touch its own per-vertex state and data
// that stays read-only for the whole run.
type Node interface {
	Send(env *Env, out *Outbox)
	Receive(env *Env, inbox []Inbound)
	Done() bool
}

// StateSizer is an optional interface: programs that implement it report
// their current local memory footprint in bits, which the engine tracks so
// tests can assert the paper's O(log n) space claims.
type StateSizer interface {
	StateBits() int
}

// Metrics aggregates the cost of a run. All bit counts are encoded wire
// lengths (kind tags included), never declared values.
//
// During a parallel run every worker accumulates a private Metrics shard;
// the shards are merged at each round barrier (counters add, maxima take
// the max), which is order-independent, so the merged Metrics are byte-
// identical for every worker count.
type Metrics struct {
	Rounds       int // executed rounds
	Messages     int // total messages delivered
	Bits         int // total encoded bits delivered
	MaxEdgeBits  int // max encoded bits over a directed edge in one round
	MaxStateBits int // max per-node state bits observed (StateSizer nodes)
	MaxInboxSize int // max messages delivered to one node in one round

	// DroppedRounds counts rounds in which nothing was sent (idle rounds).
	// The invariant is scheduler-independent: the frontier scheduler skips
	// an all-idle round without executing any vertex, but accounts it here
	// — and advances Rounds over it — exactly as if the dense engine had
	// executed it empty, so Metrics compare bit-for-bit across
	// WithScheduler settings (asserted by the DroppedRounds table test).
	DroppedRounds int
}

// Add accumulates other into m (used when composing phases).
func (m *Metrics) Add(other Metrics) {
	m.Rounds += other.Rounds
	m.Messages += other.Messages
	m.Bits += other.Bits
	if other.MaxEdgeBits > m.MaxEdgeBits {
		m.MaxEdgeBits = other.MaxEdgeBits
	}
	if other.MaxStateBits > m.MaxStateBits {
		m.MaxStateBits = other.MaxStateBits
	}
	if other.MaxInboxSize > m.MaxInboxSize {
		m.MaxInboxSize = other.MaxInboxSize
	}
	m.DroppedRounds += other.DroppedRounds
}

// Observer receives every delivered message at the round barrier, in
// canonical order, together with a view of its encoded bits. The view is
// only valid for the duration of the callback.
//
// At the start of every run (Run or RunReference) the engine additionally
// invokes the observer once with round = 0, from = to = -1 and an empty
// view — an explicit run boundary, so observers shared across a composed
// algorithm's phases (each phase restarts its round numbering at 1) can
// separate the phases without guessing from round regressions.
type Observer func(round, from, to, bits int, wire WireView)

// Network couples a graph with one program per node and runs them in
// synchronized rounds.
type Network struct {
	topo      *Topology
	nodes     []Node
	bandwidth int
	workers   int       // configured worker count; <= 0 selects the automatic rule
	sched     Scheduler // round-execution strategy (default SchedulerFrontier)
	strict    bool
	metrics   Metrics
	observer  Observer

	// packW[k] is kind k's fixed total encoded width at this network's n
	// (0 = dynamic), precomputed so the strict cross-check on the packed
	// encode fast path is one compare. See RegisterKindWidth.
	packW [numKinds]uint8
}

// DefaultBandwidth returns the bandwidth used when none is configured:
// 4*ceil(log2 n) + 16 bits, enough for a constant number of vertex ids or
// round counters plus their kind tags per message, i.e. the paper's
// bw = O(log n). The additive constant keeps two-counter messages legal on
// very small networks.
func DefaultBandwidth(n int) int {
	return 4*BitsForID(n) + 16
}

// Option configures a Network.
type Option func(*Network)

// WithBandwidth overrides the per-edge per-round bit budget.
func WithBandwidth(bw int) Option {
	return func(nw *Network) { nw.bandwidth = bw }
}

// WithWorkers sets the number of engine workers used by Run. k = 1 executes
// every half-round serially; k > 1 shards the vertices over k goroutines.
// k <= 0 (the default) selects runtime.NumCPU(), capped so that every
// worker owns at least minVerticesPerWorker vertices — tiny networks always
// run serially. Any worker count produces bit-for-bit identical outputs,
// round counts and Metrics; the knob only trades wall-clock time.
func WithWorkers(k int) Option {
	return func(nw *Network) { nw.workers = k }
}

// WithStrictAccounting makes the engine cross-check, for every message
// whose type implements BitsDeclarer, the declared size formula against the
// actual encoded length, failing the run on any mismatch. Accounting always
// uses the encoded length; this option certifies that the documented
// formulas (DESIGN.md's encoding tables) match the wire.
func WithStrictAccounting() Option {
	return func(nw *Network) { nw.strict = true }
}

// WithObserver installs a callback invoked for every delivered message;
// used by the lower-bound experiments to capture the encoded traffic
// crossing a vertex-partition cut (Theorem 10's simulation argument). The
// callback is always invoked on the caller's goroutine at the round
// barrier, in canonical order (ascending sender id, then the sender's
// emission order), regardless of the worker count.
func WithObserver(fn Observer) Option {
	return func(nw *Network) { nw.observer = fn }
}

// NewNetwork builds a network for graph g where node v runs make(v). The
// graph must be connected (every algorithm in this repository assumes it).
// The connectivity check and the adjacency tables are computed here, once;
// callers that build many networks over the same graph should build a
// Topology once and use NewNetworkOn (or a Session) instead.
func NewNetwork(g *graph.Graph, make func(v int) Node, opts ...Option) (*Network, error) {
	topo, err := NewTopology(g)
	if err != nil {
		return nil, err
	}
	return NewNetworkOn(topo, make, opts...), nil
}

// NewNetworkOn builds a network over an already-validated topology; no part
// of the graph is re-scanned. Node v runs make(v).
func NewNetworkOn(topo *Topology, make func(v int) Node, opts ...Option) *Network {
	nw := &Network{
		topo:      topo,
		nodes:     make2(topo.n, make),
		bandwidth: DefaultBandwidth(topo.n),
		packW:     packedWidths(topo.n),
	}
	for _, o := range opts {
		o(nw)
	}
	return nw
}

func make2(n int, f func(v int) Node) []Node {
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		nodes[v] = f(v)
	}
	return nodes
}

// Node returns the program running at vertex v (for extracting outputs
// after a run).
func (nw *Network) Node(v int) Node { return nw.nodes[v] }

// Metrics returns the accumulated metrics of Run.
func (nw *Network) Metrics() Metrics { return nw.metrics }

// Bandwidth returns the per-edge per-round bit budget in force.
func (nw *Network) Bandwidth() int { return nw.bandwidth }

// EffectiveScheduler reports the strategy Run will use: the configured
// scheduler, demoted to SchedulerDense when no program implements the
// Scheduled contract (the frontier would then execute every vertex every
// round anyway; the dense path does the same with less bookkeeping).
func (nw *Network) EffectiveScheduler() Scheduler {
	if nw.sched != SchedulerFrontier {
		return nw.sched
	}
	for _, nd := range nw.nodes {
		if _, ok := nd.(Scheduled); ok {
			return SchedulerFrontier
		}
	}
	return SchedulerDense
}

// minVerticesPerWorker is the smallest shard the automatic worker rule will
// create: below that, the per-round barrier costs more than the shard's
// compute, so small networks run serially.
const minVerticesPerWorker = 64

// EffectiveWorkers reports the worker count Run will use: the configured
// value clamped to [1, n], or the automatic rule when none was configured.
func (nw *Network) EffectiveWorkers() int {
	n := nw.topo.n
	k := nw.workers
	if k <= 0 {
		k = runtime.NumCPU()
		if cap := n / minVerticesPerWorker; k > cap {
			k = cap
		}
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	return k
}

// phase identifiers for the worker loop (the F variants are the frontier
// scheduler's half-rounds, see scheduler.go).
const (
	phaseSend = iota
	phaseRecv
	phaseSendF
	phaseRecvF
)

// workerState is one worker's private slice of the engine state. Round
// totals are merged into Network.metrics at the barrier; the Outbox arena
// and all scratch buffers persist across rounds, so steady-state rounds
// allocate nothing.
type workerState struct {
	outbox *Outbox

	// Receive-half accumulators.
	maxStateBits int
	maxInboxSize int
	shardDone    bool

	heads []int32   // chain-merge cursors, one per worker
	inbox []Inbound // reusable materialized inbox (one vertex at a time)
}

// engine holds the per-run execution state of Run.
type engine struct {
	nw    *Network
	n, k  int
	round int
	empty bool // the current round's send half produced no messages

	envs []Env
	obs  []*Outbox     // the workers' outboxes (delivery reads their chains)
	outs [][]stagedMsg // per-sender emissions, kept only for the observer
	ws   []workerState

	fr *frontierState // frontier scheduler state; nil on the dense path

	phase []chan int // per-worker phase mailbox (k > 1 only)
	wg    sync.WaitGroup
}

func newEngine(nw *Network) *engine {
	n := nw.topo.n
	e := &engine{nw: nw, n: n, k: nw.EffectiveWorkers()}
	e.envs = make([]Env, n)
	for v := 0; v < n; v++ {
		// The topology's adjacency tables are sorted at construction, so
		// the graph stays read-only once workers start.
		e.envs[v] = Env{ID: v, N: n, Neighbors: nw.topo.neighbors[v], rd: Reader{N: n}}
	}
	e.obs = make([]*Outbox, e.k)
	e.ws = make([]workerState, e.k)
	for w := 0; w < e.k; w++ {
		e.ws[w].outbox = newOutbox(nw, n)
		e.obs[w] = e.ws[w].outbox
		e.ws[w].heads = make([]int32, e.k)
	}
	if nw.observer != nil {
		e.outs = make([][]stagedMsg, n)
	}
	if nw.sched == SchedulerFrontier {
		var always []int32
		for v, nd := range nw.nodes {
			if _, ok := nd.(Scheduled); !ok {
				always = append(always, int32(v))
			}
		}
		// A network whose programs all lack the contract would execute
		// every vertex every round through the frontier machinery; run the
		// leaner dense path instead — the semantics are identical anyway.
		if len(always) < n {
			e.fr = newFrontierState(n, e.k, always, nw.nodes)
		}
	}
	if e.k > 1 {
		e.phase = make([]chan int, e.k)
		for w := 0; w < e.k; w++ {
			e.phase[w] = make(chan int, 1)
			go e.worker(w)
		}
	}
	return e
}

func (e *engine) dispatch(w, ph int) {
	switch ph {
	case phaseSend:
		e.sendShard(w)
	case phaseRecv:
		e.recvShard(w)
	case phaseSendF:
		e.sendShardF(w)
	case phaseRecvF:
		e.recvShardF(w)
	}
}

func (e *engine) worker(w int) {
	for ph := range e.phase[w] {
		e.dispatch(w, ph)
		e.wg.Done()
	}
}

// runPhase executes one half-round on every worker and waits for the
// barrier. The channel send/Wait pair orders each worker's reads of the
// fields the coordinator wrote (round, empty) and of the other workers'
// buffers from the previous phase.
func (e *engine) runPhase(ph int) {
	if e.k == 1 {
		e.dispatch(0, ph)
		return
	}
	e.wg.Add(e.k)
	for _, ch := range e.phase {
		ch <- ph
	}
	e.wg.Wait()
}

func (e *engine) stop() {
	for _, ch := range e.phase {
		close(ch)
	}
}

// sendShard runs the Send half for every vertex of worker w (v ≡ w mod k).
// All writes go to worker-private state: the worker's receive buffers and
// its Outbox (arena, ledger, metrics shard). Validation stops at the
// shard's first offending message; since an offense depends only on its own
// sender's emissions, the shard-first error at the smallest sender id is
// exactly the error a serial execution reports.
func (e *engine) sendShard(w int) {
	nw := e.nw
	ob := e.ws[w].outbox

	// beginRound recycles the previous round's delivery buffers (the
	// barrier guarantees every reader is done with them) and the arena.
	ob.beginRound(e.round)
	for v := w; v < e.n; v += e.k {
		e.envs[v].Round = e.round
		ob.begin(v)
		nw.nodes[v].Send(&e.envs[v], ob)
		if e.outs != nil {
			e.outs[v] = append(e.outs[v][:0], ob.msgs...)
		}
		if ob.err != nil {
			break
		}
	}
}

// finishSend merges the send half at the round barrier: it picks the
// canonical error (the one at the smallest sender id — what a serial
// execution hits first), folds the worker metric shards into the run
// metrics, and replays the observer in canonical order. On the frontier
// path the replay iterates the frontier bitset, ascending — only those
// vertices ran the send half (their e.outs entries are current; everything
// else is stale from earlier rounds).
func (e *engine) finishSend() error {
	errW := -1
	var sent, bitsTotal, maxEdge int
	for w := range e.ws {
		ob := e.ws[w].outbox
		if ob.err != nil && (errW < 0 || ob.errSender < e.ws[errW].outbox.errSender) {
			errW = w
		}
		sent += ob.sent()
		bitsTotal += ob.bitsTotal
		if ob.maxEdge > maxEdge {
			maxEdge = ob.maxEdge
		}
	}
	if errW >= 0 {
		return e.ws[errW].outbox.err
	}
	m := &e.nw.metrics
	m.Messages += sent
	m.Bits += bitsTotal
	if maxEdge > m.MaxEdgeBits {
		m.MaxEdgeBits = maxEdge
	}
	e.empty = sent == 0
	if e.empty {
		m.DroppedRounds++
	}
	if obs := e.nw.observer; obs != nil {
		if e.fr == nil {
			for v := 0; v < e.n; v++ {
				for i := range e.outs[v] {
					r := &e.outs[v][i]
					obs(e.round, v, r.to, r.bits, r.wire)
				}
			}
		} else {
			cur := e.fr.cur
			for si := range cur.sum {
				sw := cur.sum[si]
				for sw != 0 {
					wi := si<<6 + bits.TrailingZeros64(sw)
					sw &= sw - 1
					word := cur.words[wi]
					for word != 0 {
						v := wi<<6 + bits.TrailingZeros64(word)
						word &= word - 1
						for i := range e.outs[v] {
							r := &e.outs[v][i]
							obs(e.round, v, r.to, r.bits, r.wire)
						}
					}
				}
			}
		}
	}
	return nil
}

// recvShard runs the Receive half for every vertex of worker w. Each inbox
// is materialized from the workers' staged chains into the worker's scratch
// by gatherChains, which reproduces the canonical delivery order —
// ascending sender, emission order within a sender — for every worker
// count. Vertices execute one at a time per worker and Receive must not
// retain the inbox, so one reusable scratch per worker suffices.
func (e *engine) recvShard(w int) {
	nw := e.nw
	st := &e.ws[w]
	var maxState, maxInbox int
	allDone := true
	for v := w; v < e.n; v += e.k {
		inbox := st.inbox[:0]
		if !e.empty {
			inbox = gatherChains(e.obs, st.heads, v, inbox)
			st.inbox = inbox
		}
		if len(inbox) > maxInbox {
			maxInbox = len(inbox)
		}
		nd := nw.nodes[v]
		nd.Receive(&e.envs[v], inbox)
		if s, ok := nd.(StateSizer); ok {
			if b := s.StateBits(); b > maxState {
				maxState = b
			}
		}
		if allDone && !nd.Done() {
			allDone = false
		}
	}
	st.maxStateBits = maxState
	st.maxInboxSize = maxInbox
	st.shardDone = allDone
}

// finishRecv merges the receive half and reports whether every node is Done.
func (e *engine) finishRecv() bool {
	m := &e.nw.metrics
	allDone := true
	for w := range e.ws {
		st := &e.ws[w]
		if st.maxStateBits > m.MaxStateBits {
			m.MaxStateBits = st.maxStateBits
		}
		if st.maxInboxSize > m.MaxInboxSize {
			m.MaxInboxSize = st.maxInboxSize
		}
		if !st.shardDone {
			allDone = false
		}
	}
	return allDone
}

// execute runs one full execution on the engine: rounds until every node is
// Done, or an error after maxRounds. It touches only state that beginRound
// and the round barriers recycle, so a persistent engine (Session) can call
// it repeatedly — after the node programs are Reset — and every execution
// is bit-for-bit identical to a run on a freshly built engine.
//
// The body below is the dense strategy (every vertex, every round); with
// the frontier scheduler selected (the default, when at least one program
// implements the Scheduled contract) execution is delegated to
// executeFrontier, which is bit-identical by construction (scheduler.go).
func (e *engine) execute(maxRounds int) error {
	if e.fr != nil {
		return e.executeFrontier(maxRounds)
	}
	nw := e.nw
	if nw.observer != nil {
		nw.observer(0, -1, -1, 0, WireView{}) // run boundary
	}
	allDone := true
	for _, nd := range nw.nodes {
		if !nd.Done() {
			allDone = false
			break
		}
	}
	for round := 1; ; round++ {
		if allDone {
			return nil
		}
		if round > maxRounds {
			return fmt.Errorf("congest: no quiescence after %d rounds", maxRounds)
		}
		nw.metrics.Rounds = round
		e.round = round

		e.runPhase(phaseSend)
		if err := e.finishSend(); err != nil {
			return err
		}
		e.runPhase(phaseRecv)
		allDone = e.finishRecv()
	}
}

// Run executes rounds until every node is Done, or fails after maxRounds.
//
// The execution is sharded over EffectiveWorkers() goroutines and is
// deterministic for every worker count (see the package comment). On a
// validation error the run aborts with the same error a serial execution
// reports; programs at other vertices may then have advanced within the
// failing round, Metrics.Rounds names the failing round, and the failing
// round's partial traffic is not folded into the other Metrics fields.
//
// Run builds the execution engine (worker pool, arenas, buffers) from
// scratch and tears it down when the run finishes. Callers that execute the
// same program family many times should use a Session, which keeps the
// engine alive and recycles all of it across executions.
func (nw *Network) Run(maxRounds int) error {
	e := newEngine(nw)
	defer e.stop()
	return e.execute(maxRounds)
}

// RunReference is the original single-threaded engine, retained as the
// behavioral baseline: the determinism tests assert that Run matches it bit
// for bit, and the engine benchmarks (BENCH_engine.json, BENCH_wire.json)
// measure Run's speedup against it. It shares the Outbox encoder with Run,
// so message encodings, derived bit accounting and validation errors are
// identical by construction; only the execution strategy differs (one
// vertex at a time, allocation per round). New code should call Run.
func (nw *Network) RunReference(maxRounds int) error {
	n := nw.topo.n
	envs := make([]Env, n)
	for v := 0; v < n; v++ {
		envs[v] = Env{ID: v, N: n, Neighbors: nw.topo.neighbors[v], rd: Reader{N: n}}
	}
	ob := newOutbox(nw, n)
	// Observer replay buffer: emissions of the whole round, replayed at
	// the round barrier exactly like Run does (in particular, a failing
	// round is never observed on either engine).
	type obsEvent struct {
		from int
		m    stagedMsg
	}
	var pending []obsEvent
	var inbox []Inbound // materialized-inbox scratch, reused per vertex
	if nw.observer != nil {
		nw.observer(0, -1, -1, 0, WireView{}) // run boundary
	}

	for round := 1; ; round++ {
		allDone := true
		for _, nd := range nw.nodes {
			if !nd.Done() {
				allDone = false
				break
			}
		}
		if allDone {
			return nil
		}
		if round > maxRounds {
			return fmt.Errorf("congest: no quiescence after %d rounds", maxRounds)
		}
		nw.metrics.Rounds = round

		// Send half. Iterating senders in ascending order makes every
		// delivery buffer canonically ordered by construction.
		ob.beginRound(round)
		pending = pending[:0]
		for v, nd := range nw.nodes {
			envs[v].Round = round
			ob.begin(v)
			nd.Send(&envs[v], ob)
			if ob.err != nil {
				return ob.err
			}
			if nw.observer != nil {
				for i := range ob.msgs {
					pending = append(pending, obsEvent{from: v, m: ob.msgs[i]})
				}
			}
		}
		for i := range pending {
			e := &pending[i]
			nw.observer(round, e.from, e.m.to, e.m.bits, e.m.wire)
		}
		nw.metrics.Messages += ob.sent()
		nw.metrics.Bits += ob.bitsTotal
		if ob.maxEdge > nw.metrics.MaxEdgeBits {
			nw.metrics.MaxEdgeBits = ob.maxEdge
		}
		if ob.sent() == 0 {
			nw.metrics.DroppedRounds++
		}

		// Receive half. The single outbox's chains are already canonical
		// (ascending senders by construction); each inbox is materialized
		// into the reused scratch.
		for v, nd := range nw.nodes {
			in := ob.appendChain(v, inbox[:0])
			inbox = in
			if len(in) > nw.metrics.MaxInboxSize {
				nw.metrics.MaxInboxSize = len(in)
			}
			nd.Receive(&envs[v], in)
			if s, ok := nd.(StateSizer); ok {
				if b := s.StateBits(); b > nw.metrics.MaxStateBits {
					nw.metrics.MaxStateBits = b
				}
			}
		}
	}
}
