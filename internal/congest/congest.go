// Package congest simulates the classical CONGEST model of Section 2.1 of
// the paper: a synchronous network where, in every round, each node may send
// one message of O(log n) bits to each neighbor.
//
// # Round semantics
//
// Rounds are numbered 1, 2, 3, ... In round r every node first sends
// messages (computed from its state, which reflects everything received in
// rounds < r) and then receives all messages sent to it in round r. A node
// program implements both halves via Send and Receive. The engine stops at
// the first round boundary at which every node reports Done; the number of
// executed rounds is the algorithm's round complexity.
//
// # Bandwidth accounting
//
// Every outbound message declares its size in bits. The engine enforces
// that the total bits sent over each directed edge in a round never exceeds
// the configured bandwidth (default Θ(log n)); violations fail the run, so
// passing tests prove the congestion claims (e.g. the paper's Lemma 4).
//
// # Execution engine
//
// Run executes each half-round on a pool of worker goroutines (see
// WithWorkers): worker w owns every vertex v with v ≡ w (mod k), runs the
// Send half for its vertices with a private edge-bit ledger and private
// per-receiver message buffers, and after the round barrier runs the
// Receive half for its vertices on inboxes merged from all workers'
// buffers in ascending sender order. Because delivery order, the metrics
// merge, and the selection of the reported validation error are all
// canonical, a run is bit-for-bit deterministic: outputs, round counts,
// Metrics and error messages are identical for every worker count,
// including the k=1 serial execution. DESIGN.md ("Execution engine")
// documents the concurrency model and the determinism argument in full.
//
// Node programs may be executed concurrently, at most one goroutine per
// vertex at a time: Send(u) and Send(v) can run in parallel for u != v, and
// likewise Receive. Programs therefore must not share mutable state across
// vertices (all programs in this repository are pure per-vertex state
// machines). The inbox slice passed to Receive is only valid for the
// duration of the call and must not be retained.
package congest

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"

	"qcongest/internal/graph"
)

// Inbound is a message as seen by its receiver.
type Inbound struct {
	From    int
	Payload any
	Bits    int
}

// Outbound is a message as produced by its sender.
type Outbound struct {
	To      int
	Payload any
	Bits    int
}

// Env is the read-only per-node view of the network that the engine passes
// to node programs: everything a CONGEST node is allowed to know a priori
// (its id, n, its incident edges) plus the current round number.
type Env struct {
	ID        int
	N         int
	Neighbors []int // ascending; must not be modified
	Round     int   // current round, starting at 1
}

// Node is a per-node program.
//
// Send returns the messages the node transmits this round. Receive delivers
// the messages sent to the node this round; the inbox slice is owned by the
// engine and must not be retained after the call returns. Done reports
// whether the node has fixed its output and has nothing further to send;
// once every node is Done at a round boundary the run stops.
//
// Programs at distinct vertices may run concurrently (see the package
// comment), so a program must only touch its own per-vertex state and data
// that stays read-only for the whole run.
type Node interface {
	Send(env *Env) []Outbound
	Receive(env *Env, inbox []Inbound)
	Done() bool
}

// StateSizer is an optional interface: programs that implement it report
// their current local memory footprint in bits, which the engine tracks so
// tests can assert the paper's O(log n) space claims.
type StateSizer interface {
	StateBits() int
}

// Metrics aggregates the cost of a run.
//
// During a parallel run every worker accumulates a private Metrics shard;
// the shards are merged at each round barrier (counters add, maxima take
// the max), which is order-independent, so the merged Metrics are byte-
// identical for every worker count.
type Metrics struct {
	Rounds        int // executed rounds
	Messages      int // total messages delivered
	Bits          int // total bits delivered
	MaxEdgeBits   int // max bits over a directed edge in a single round
	MaxStateBits  int // max per-node state bits observed (StateSizer nodes)
	MaxInboxSize  int // max messages delivered to one node in one round
	DroppedRounds int // rounds in which nothing was sent (idle rounds)
}

// Add accumulates other into m (used when composing phases).
func (m *Metrics) Add(other Metrics) {
	m.Rounds += other.Rounds
	m.Messages += other.Messages
	m.Bits += other.Bits
	if other.MaxEdgeBits > m.MaxEdgeBits {
		m.MaxEdgeBits = other.MaxEdgeBits
	}
	if other.MaxStateBits > m.MaxStateBits {
		m.MaxStateBits = other.MaxStateBits
	}
	if other.MaxInboxSize > m.MaxInboxSize {
		m.MaxInboxSize = other.MaxInboxSize
	}
	m.DroppedRounds += other.DroppedRounds
}

// Network couples a graph with one program per node and runs them in
// synchronized rounds.
type Network struct {
	g         *graph.Graph
	nodes     []Node
	bandwidth int
	workers   int // configured worker count; <= 0 selects the automatic rule
	metrics   Metrics
	observer  func(round, from, to, bits int)
}

// DefaultBandwidth returns the bandwidth used when none is configured:
// 4*ceil(log2 n) + 8 bits, enough for a constant number of vertex ids or
// round counters per message, i.e. the paper's bw = O(log n). The additive
// constant keeps two-counter messages legal on very small networks.
func DefaultBandwidth(n int) int {
	return 4*BitsForID(n) + 8
}

// BitsForID returns the number of bits needed to name one of n values (at
// least 1).
func BitsForID(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// Option configures a Network.
type Option func(*Network)

// WithBandwidth overrides the per-edge per-round bit budget.
func WithBandwidth(bw int) Option {
	return func(nw *Network) { nw.bandwidth = bw }
}

// WithWorkers sets the number of engine workers used by Run. k = 1 executes
// every half-round serially; k > 1 shards the vertices over k goroutines.
// k <= 0 (the default) selects runtime.NumCPU(), capped so that every
// worker owns at least minVerticesPerWorker vertices — tiny networks always
// run serially. Any worker count produces bit-for-bit identical outputs,
// round counts and Metrics; the knob only trades wall-clock time.
func WithWorkers(k int) Option {
	return func(nw *Network) { nw.workers = k }
}

// WithObserver installs a callback invoked for every delivered message;
// used by the lower-bound experiments to tally the traffic crossing a
// vertex-partition cut (Theorem 10's simulation argument). The callback is
// always invoked on the caller's goroutine at the round barrier, in
// canonical order (ascending sender id, then the sender's emission order),
// regardless of the worker count.
func WithObserver(fn func(round, from, to, bits int)) Option {
	return func(nw *Network) { nw.observer = fn }
}

// NewNetwork builds a network for graph g where node v runs make(v). The
// graph must be connected (every algorithm in this repository assumes it).
func NewNetwork(g *graph.Graph, make func(v int) Node, opts ...Option) (*Network, error) {
	if !g.Connected() {
		return nil, graph.ErrDisconnected
	}
	nw := &Network{
		g:         g,
		nodes:     make2(g.N(), make),
		bandwidth: DefaultBandwidth(g.N()),
	}
	for _, o := range opts {
		o(nw)
	}
	return nw, nil
}

func make2(n int, f func(v int) Node) []Node {
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		nodes[v] = f(v)
	}
	return nodes
}

// Node returns the program running at vertex v (for extracting outputs
// after a run).
func (nw *Network) Node(v int) Node { return nw.nodes[v] }

// Metrics returns the accumulated metrics of Run.
func (nw *Network) Metrics() Metrics { return nw.metrics }

// Bandwidth returns the per-edge per-round bit budget in force.
func (nw *Network) Bandwidth() int { return nw.bandwidth }

// minVerticesPerWorker is the smallest shard the automatic worker rule will
// create: below that, the per-round barrier costs more than the shard's
// compute, so small networks run serially.
const minVerticesPerWorker = 64

// EffectiveWorkers reports the worker count Run will use: the configured
// value clamped to [1, n], or the automatic rule when none was configured.
func (nw *Network) EffectiveWorkers() int {
	n := nw.g.N()
	k := nw.workers
	if k <= 0 {
		k = runtime.NumCPU()
		if cap := n / minVerticesPerWorker; k > cap {
			k = cap
		}
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	return k
}

// phase identifiers for the worker loop.
const (
	phaseSend = iota
	phaseRecv
)

// workerState is one worker's private slice of the engine state. Round
// totals are merged into Network.metrics at the barrier; scratch buffers
// persist across rounds so steady-state rounds allocate nothing.
type workerState struct {
	// Per-round accumulators, reset at the start of every send half.
	messages     int
	bits         int
	maxEdgeBits  int
	maxStateBits int
	maxInboxSize int
	shardDone    bool
	err          error
	errSender    int

	// Scratch reused across rounds.
	edge        []int // bits sent per receiver by the current sender
	edgeTouched []int // receivers with edge[to] != 0
	heads       []int // merge cursors, one per worker
}

// engine holds the per-run execution state of Run.
type engine struct {
	nw    *Network
	n, k  int
	round int
	empty bool // the current round's send half produced no messages

	envs    []Env
	bufs    [][][]Inbound // bufs[w][v]: messages for v produced by worker w
	touched [][]int       // receivers worker w buffered to this round
	inboxes [][]Inbound   // reusable merged inbox per receiver
	outs    [][]Outbound  // per-sender emissions, kept only for the observer
	ws      []workerState

	phase []chan int // per-worker phase mailbox (k > 1 only)
	wg    sync.WaitGroup
}

func newEngine(nw *Network) *engine {
	n := nw.g.N()
	e := &engine{nw: nw, n: n, k: nw.EffectiveWorkers()}
	e.envs = make([]Env, n)
	for v := 0; v < n; v++ {
		// Neighbors also sorts the adjacency lists up front, so the graph
		// stays read-only once workers start.
		e.envs[v] = Env{ID: v, N: n, Neighbors: nw.g.Neighbors(v)}
	}
	e.inboxes = make([][]Inbound, n)
	e.bufs = make([][][]Inbound, e.k)
	e.touched = make([][]int, e.k)
	e.ws = make([]workerState, e.k)
	for w := 0; w < e.k; w++ {
		e.bufs[w] = make([][]Inbound, n)
		e.ws[w].edge = make([]int, n)
		e.ws[w].heads = make([]int, e.k)
	}
	if nw.observer != nil {
		e.outs = make([][]Outbound, n)
	}
	if e.k > 1 {
		e.phase = make([]chan int, e.k)
		for w := 0; w < e.k; w++ {
			e.phase[w] = make(chan int, 1)
			go e.worker(w)
		}
	}
	return e
}

func (e *engine) worker(w int) {
	for ph := range e.phase[w] {
		if ph == phaseSend {
			e.sendShard(w)
		} else {
			e.recvShard(w)
		}
		e.wg.Done()
	}
}

// runPhase executes one half-round on every worker and waits for the
// barrier. The channel send/Wait pair orders each worker's reads of the
// fields the coordinator wrote (round, empty) and of the other workers'
// buffers from the previous phase.
func (e *engine) runPhase(ph int) {
	if e.k == 1 {
		if ph == phaseSend {
			e.sendShard(0)
		} else {
			e.recvShard(0)
		}
		return
	}
	e.wg.Add(e.k)
	for _, ch := range e.phase {
		ch <- ph
	}
	e.wg.Wait()
}

func (e *engine) stop() {
	for _, ch := range e.phase {
		close(ch)
	}
}

// sendShard runs the Send half for every vertex of worker w (v ≡ w mod k).
// All writes go to worker-private state: the worker's receive buffers, its
// edge ledger and its metrics shard. Validation stops at the shard's first
// offending message; since an offense depends only on its own sender's
// emissions, the shard-first error at the smallest sender id is exactly the
// error a serial execution reports.
func (e *engine) sendShard(w int) {
	nw := e.nw
	st := &e.ws[w]
	st.err = nil
	st.errSender = -1

	// Recycle the previous round's buffers (the barrier guarantees every
	// reader is done with them).
	buf := e.bufs[w]
	for _, to := range e.touched[w] {
		buf[to] = buf[to][:0]
	}
	e.touched[w] = e.touched[w][:0]

	var messages, bitsTotal, maxEdge int
	round := e.round
	edge := st.edge
	// Zero the ledger entries left by the previous round's last sender.
	for _, to := range st.edgeTouched {
		edge[to] = 0
	}
	edgeTouched := st.edgeTouched[:0]
	for v := w; v < e.n; v += e.k {
		e.envs[v].Round = round
		outs := nw.nodes[v].Send(&e.envs[v])
		if e.outs != nil {
			e.outs[v] = outs
		}
		if len(outs) == 0 {
			continue
		}
		// Reset the ledger for this sender only: edges are directed, so no
		// other sender contributes to (v, to) totals.
		for _, to := range edgeTouched {
			edge[to] = 0
		}
		edgeTouched = edgeTouched[:0]
		for _, out := range outs {
			if !nw.g.HasEdge(v, out.To) {
				st.err = fmt.Errorf("congest: round %d: node %d sent to non-neighbor %d", round, v, out.To)
				st.errSender = v
				break
			}
			if out.Bits <= 0 {
				st.err = fmt.Errorf("congest: round %d: node %d sent message with non-positive size", round, v)
				st.errSender = v
				break
			}
			if edge[out.To] == 0 {
				edgeTouched = append(edgeTouched, out.To)
			}
			edge[out.To] += out.Bits
			if eb := edge[out.To]; eb > nw.bandwidth {
				st.err = fmt.Errorf("congest: round %d: edge %d->%d exceeds bandwidth (%d > %d bits)",
					round, v, out.To, eb, nw.bandwidth)
				st.errSender = v
				break
			} else if eb > maxEdge {
				maxEdge = eb
			}
			if len(buf[out.To]) == 0 {
				e.touched[w] = append(e.touched[w], out.To)
			}
			buf[out.To] = append(buf[out.To], Inbound{From: v, Payload: out.Payload, Bits: out.Bits})
			messages++
			bitsTotal += out.Bits
		}
		if st.err != nil {
			break
		}
	}
	st.edgeTouched = edgeTouched
	st.messages = messages
	st.bits = bitsTotal
	st.maxEdgeBits = maxEdge
}

// finishSend merges the send half at the round barrier: it picks the
// canonical error (the one at the smallest sender id — what a serial
// execution hits first), folds the worker metric shards into the run
// metrics, and replays the observer in canonical order.
func (e *engine) finishSend() error {
	errW := -1
	var sent, bitsTotal, maxEdge int
	for w := range e.ws {
		st := &e.ws[w]
		if st.err != nil && (errW < 0 || st.errSender < e.ws[errW].errSender) {
			errW = w
		}
		sent += st.messages
		bitsTotal += st.bits
		if st.maxEdgeBits > maxEdge {
			maxEdge = st.maxEdgeBits
		}
	}
	if errW >= 0 {
		return e.ws[errW].err
	}
	m := &e.nw.metrics
	m.Messages += sent
	m.Bits += bitsTotal
	if maxEdge > m.MaxEdgeBits {
		m.MaxEdgeBits = maxEdge
	}
	e.empty = sent == 0
	if e.empty {
		m.DroppedRounds++
	}
	if obs := e.nw.observer; obs != nil {
		for v := 0; v < e.n; v++ {
			for _, out := range e.outs[v] {
				obs(e.round, v, out.To, out.Bits)
			}
		}
	}
	return nil
}

// recvShard runs the Receive half for every vertex of worker w. Each inbox
// is merged from the workers' private buffers: every buffer holds messages
// in ascending sender order and a sender's messages live in exactly one
// buffer, so a k-way merge by sender id (ties impossible) reproduces the
// canonical delivery order — ascending sender, emission order within a
// sender — for every worker count.
func (e *engine) recvShard(w int) {
	nw := e.nw
	st := &e.ws[w]
	var maxState, maxInbox int
	allDone := true
	heads := st.heads
	for v := w; v < e.n; v += e.k {
		var inbox []Inbound
		if !e.empty {
			contributors, solo := 0, -1
			for ww := 0; ww < e.k; ww++ {
				if len(e.bufs[ww][v]) > 0 {
					contributors++
					solo = ww
				}
			}
			switch contributors {
			case 0:
				// inbox stays nil
			case 1:
				inbox = e.bufs[solo][v]
			default:
				inbox = e.inboxes[v][:0]
				for ww := range heads {
					heads[ww] = 0
				}
				for {
					best := -1
					for ww := 0; ww < e.k; ww++ {
						b := e.bufs[ww][v]
						if heads[ww] < len(b) && (best < 0 || b[heads[ww]].From < e.bufs[best][v][heads[best]].From) {
							best = ww
						}
					}
					if best < 0 {
						break
					}
					inbox = append(inbox, e.bufs[best][v][heads[best]])
					heads[best]++
				}
				e.inboxes[v] = inbox
			}
		}
		if len(inbox) > maxInbox {
			maxInbox = len(inbox)
		}
		nd := nw.nodes[v]
		nd.Receive(&e.envs[v], inbox)
		if s, ok := nd.(StateSizer); ok {
			if b := s.StateBits(); b > maxState {
				maxState = b
			}
		}
		if allDone && !nd.Done() {
			allDone = false
		}
	}
	st.maxStateBits = maxState
	st.maxInboxSize = maxInbox
	st.shardDone = allDone
}

// finishRecv merges the receive half and reports whether every node is Done.
func (e *engine) finishRecv() bool {
	m := &e.nw.metrics
	allDone := true
	for w := range e.ws {
		st := &e.ws[w]
		if st.maxStateBits > m.MaxStateBits {
			m.MaxStateBits = st.maxStateBits
		}
		if st.maxInboxSize > m.MaxInboxSize {
			m.MaxInboxSize = st.maxInboxSize
		}
		if !st.shardDone {
			allDone = false
		}
	}
	return allDone
}

// Run executes rounds until every node is Done, or fails after maxRounds.
//
// The execution is sharded over EffectiveWorkers() goroutines and is
// deterministic for every worker count (see the package comment). On a
// validation error the run aborts with the same error a serial execution
// reports; programs at other vertices may then have advanced within the
// failing round, Metrics.Rounds names the failing round, and the failing
// round's partial traffic is not folded into the other Metrics fields.
func (nw *Network) Run(maxRounds int) error {
	e := newEngine(nw)
	defer e.stop()

	allDone := true
	for _, nd := range nw.nodes {
		if !nd.Done() {
			allDone = false
			break
		}
	}
	for round := 1; ; round++ {
		if allDone {
			return nil
		}
		if round > maxRounds {
			return fmt.Errorf("congest: no quiescence after %d rounds", maxRounds)
		}
		nw.metrics.Rounds = round
		e.round = round

		e.runPhase(phaseSend)
		if err := e.finishSend(); err != nil {
			return err
		}
		e.runPhase(phaseRecv)
		allDone = e.finishRecv()
	}
}

// RunReference is the original single-threaded engine, retained as the
// behavioral baseline: the determinism tests assert that Run matches it bit
// for bit on valid runs, and the engine benchmark (BENCH_engine.json)
// measures Run's speedup against it. The one divergence is the error path:
// RunReference folds the failing round's partial traffic into Metrics while
// Run does not (both report the same error and count the failing round in
// Metrics.Rounds). New code should call Run.
func (nw *Network) RunReference(maxRounds int) error {
	n := nw.g.N()
	envs := make([]Env, n)
	for v := 0; v < n; v++ {
		envs[v] = Env{ID: v, N: n, Neighbors: nw.g.Neighbors(v)}
	}
	inboxes := make([][]Inbound, n)
	edgeBits := make(map[[2]int]int)

	for round := 1; ; round++ {
		allDone := true
		for _, nd := range nw.nodes {
			if !nd.Done() {
				allDone = false
				break
			}
		}
		if allDone {
			return nil
		}
		if round > maxRounds {
			return fmt.Errorf("congest: no quiescence after %d rounds", maxRounds)
		}
		nw.metrics.Rounds = round

		// Send half.
		clear(edgeBits)
		next := make([][]Inbound, n)
		sent := 0
		for v, nd := range nw.nodes {
			envs[v].Round = round
			for _, out := range nd.Send(&envs[v]) {
				if !nw.g.HasEdge(v, out.To) {
					return fmt.Errorf("congest: round %d: node %d sent to non-neighbor %d", round, v, out.To)
				}
				if out.Bits <= 0 {
					return fmt.Errorf("congest: round %d: node %d sent message with non-positive size", round, v)
				}
				key := [2]int{v, out.To}
				edgeBits[key] += out.Bits
				if edgeBits[key] > nw.bandwidth {
					return fmt.Errorf("congest: round %d: edge %d->%d exceeds bandwidth (%d > %d bits)",
						round, v, out.To, edgeBits[key], nw.bandwidth)
				}
				if edgeBits[key] > nw.metrics.MaxEdgeBits {
					nw.metrics.MaxEdgeBits = edgeBits[key]
				}
				next[out.To] = append(next[out.To], Inbound{From: v, Payload: out.Payload, Bits: out.Bits})
				nw.metrics.Messages++
				nw.metrics.Bits += out.Bits
				if nw.observer != nil {
					nw.observer(round, v, out.To, out.Bits)
				}
				sent++
			}
		}
		if sent == 0 {
			nw.metrics.DroppedRounds++
		}

		// Receive half: deterministic delivery order (by sender id; the
		// stable sort keeps a sender's messages in emission order, matching
		// Run's canonical order even for multi-message edges).
		for v := range next {
			sort.SliceStable(next[v], func(i, j int) bool { return next[v][i].From < next[v][j].From })
			if len(next[v]) > nw.metrics.MaxInboxSize {
				nw.metrics.MaxInboxSize = len(next[v])
			}
		}
		inboxes = next
		for v, nd := range nw.nodes {
			nd.Receive(&envs[v], inboxes[v])
			if s, ok := nd.(StateSizer); ok {
				if b := s.StateBits(); b > nw.metrics.MaxStateBits {
					nw.metrics.MaxStateBits = b
				}
			}
		}
	}
}
