// Package congest simulates the classical CONGEST model of Section 2.1 of
// the paper: a synchronous network where, in every round, each node may send
// one message of O(log n) bits to each neighbor.
//
// # Round semantics
//
// Rounds are numbered 1, 2, 3, ... In round r every node first sends
// messages (computed from its state, which reflects everything received in
// rounds < r) and then receives all messages sent to it in round r. A node
// program implements both halves via Send and Receive. The engine stops at
// the first round boundary at which every node reports Done; the number of
// executed rounds is the algorithm's round complexity.
//
// # Bandwidth accounting
//
// Every outbound message declares its size in bits. The engine enforces
// that the total bits sent over each directed edge in a round never exceeds
// the configured bandwidth (default Θ(log n)); violations fail the run, so
// passing tests prove the congestion claims (e.g. the paper's Lemma 4).
package congest

import (
	"fmt"
	"math/bits"
	"sort"

	"qcongest/internal/graph"
)

// Inbound is a message as seen by its receiver.
type Inbound struct {
	From    int
	Payload any
	Bits    int
}

// Outbound is a message as produced by its sender.
type Outbound struct {
	To      int
	Payload any
	Bits    int
}

// Env is the read-only per-node view of the network that the engine passes
// to node programs: everything a CONGEST node is allowed to know a priori
// (its id, n, its incident edges) plus the current round number.
type Env struct {
	ID        int
	N         int
	Neighbors []int // ascending; must not be modified
	Round     int   // current round, starting at 1
}

// Node is a per-node program.
//
// Send returns the messages the node transmits this round. Receive delivers
// the messages sent to the node this round. Done reports whether the node
// has fixed its output and has nothing further to send; once every node is
// Done at a round boundary the run stops.
type Node interface {
	Send(env *Env) []Outbound
	Receive(env *Env, inbox []Inbound)
	Done() bool
}

// StateSizer is an optional interface: programs that implement it report
// their current local memory footprint in bits, which the engine tracks so
// tests can assert the paper's O(log n) space claims.
type StateSizer interface {
	StateBits() int
}

// Metrics aggregates the cost of a run.
type Metrics struct {
	Rounds        int // executed rounds
	Messages      int // total messages delivered
	Bits          int // total bits delivered
	MaxEdgeBits   int // max bits over a directed edge in a single round
	MaxStateBits  int // max per-node state bits observed (StateSizer nodes)
	MaxInboxSize  int // max messages delivered to one node in one round
	DroppedRounds int // rounds in which nothing was sent (idle rounds)
}

// Add accumulates other into m (used when composing phases).
func (m *Metrics) Add(other Metrics) {
	m.Rounds += other.Rounds
	m.Messages += other.Messages
	m.Bits += other.Bits
	if other.MaxEdgeBits > m.MaxEdgeBits {
		m.MaxEdgeBits = other.MaxEdgeBits
	}
	if other.MaxStateBits > m.MaxStateBits {
		m.MaxStateBits = other.MaxStateBits
	}
	if other.MaxInboxSize > m.MaxInboxSize {
		m.MaxInboxSize = other.MaxInboxSize
	}
	m.DroppedRounds += other.DroppedRounds
}

// Network couples a graph with one program per node and runs them in
// synchronized rounds.
type Network struct {
	g         *graph.Graph
	nodes     []Node
	bandwidth int
	metrics   Metrics
	observer  func(round, from, to, bits int)
}

// DefaultBandwidth returns the bandwidth used when none is configured:
// 4*ceil(log2 n) + 8 bits, enough for a constant number of vertex ids or
// round counters per message, i.e. the paper's bw = O(log n). The additive
// constant keeps two-counter messages legal on very small networks.
func DefaultBandwidth(n int) int {
	return 4*BitsForID(n) + 8
}

// BitsForID returns the number of bits needed to name one of n values (at
// least 1).
func BitsForID(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// Option configures a Network.
type Option func(*Network)

// WithBandwidth overrides the per-edge per-round bit budget.
func WithBandwidth(bw int) Option {
	return func(nw *Network) { nw.bandwidth = bw }
}

// WithObserver installs a callback invoked for every delivered message;
// used by the lower-bound experiments to tally the traffic crossing a
// vertex-partition cut (Theorem 10's simulation argument).
func WithObserver(fn func(round, from, to, bits int)) Option {
	return func(nw *Network) { nw.observer = fn }
}

// NewNetwork builds a network for graph g where node v runs make(v). The
// graph must be connected (every algorithm in this repository assumes it).
func NewNetwork(g *graph.Graph, make func(v int) Node, opts ...Option) (*Network, error) {
	if !g.Connected() {
		return nil, graph.ErrDisconnected
	}
	nw := &Network{
		g:         g,
		nodes:     make2(g.N(), make),
		bandwidth: DefaultBandwidth(g.N()),
	}
	for _, o := range opts {
		o(nw)
	}
	return nw, nil
}

func make2(n int, f func(v int) Node) []Node {
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		nodes[v] = f(v)
	}
	return nodes
}

// Node returns the program running at vertex v (for extracting outputs
// after a run).
func (nw *Network) Node(v int) Node { return nw.nodes[v] }

// Metrics returns the accumulated metrics of Run.
func (nw *Network) Metrics() Metrics { return nw.metrics }

// Bandwidth returns the per-edge per-round bit budget in force.
func (nw *Network) Bandwidth() int { return nw.bandwidth }

// Run executes rounds until every node is Done, or fails after maxRounds.
func (nw *Network) Run(maxRounds int) error {
	n := nw.g.N()
	envs := make([]Env, n)
	for v := 0; v < n; v++ {
		envs[v] = Env{ID: v, N: n, Neighbors: nw.g.Neighbors(v)}
	}
	inboxes := make([][]Inbound, n)
	edgeBits := make(map[[2]int]int)

	for round := 1; ; round++ {
		allDone := true
		for _, nd := range nw.nodes {
			if !nd.Done() {
				allDone = false
				break
			}
		}
		if allDone {
			return nil
		}
		if round > maxRounds {
			return fmt.Errorf("congest: no quiescence after %d rounds", maxRounds)
		}
		nw.metrics.Rounds = round

		// Send half.
		clear(edgeBits)
		next := make([][]Inbound, n)
		sent := 0
		for v, nd := range nw.nodes {
			envs[v].Round = round
			for _, out := range nd.Send(&envs[v]) {
				if !nw.g.HasEdge(v, out.To) {
					return fmt.Errorf("congest: round %d: node %d sent to non-neighbor %d", round, v, out.To)
				}
				if out.Bits <= 0 {
					return fmt.Errorf("congest: round %d: node %d sent message with non-positive size", round, v)
				}
				key := [2]int{v, out.To}
				edgeBits[key] += out.Bits
				if edgeBits[key] > nw.bandwidth {
					return fmt.Errorf("congest: round %d: edge %d->%d exceeds bandwidth (%d > %d bits)",
						round, v, out.To, edgeBits[key], nw.bandwidth)
				}
				if edgeBits[key] > nw.metrics.MaxEdgeBits {
					nw.metrics.MaxEdgeBits = edgeBits[key]
				}
				next[out.To] = append(next[out.To], Inbound{From: v, Payload: out.Payload, Bits: out.Bits})
				nw.metrics.Messages++
				nw.metrics.Bits += out.Bits
				if nw.observer != nil {
					nw.observer(round, v, out.To, out.Bits)
				}
				sent++
			}
		}
		if sent == 0 {
			nw.metrics.DroppedRounds++
		}

		// Receive half: deterministic delivery order (by sender id).
		for v := range next {
			sort.Slice(next[v], func(i, j int) bool { return next[v][i].From < next[v][j].From })
			if len(next[v]) > nw.metrics.MaxInboxSize {
				nw.metrics.MaxInboxSize = len(next[v])
			}
		}
		inboxes = next
		for v, nd := range nw.nodes {
			nd.Receive(&envs[v], inboxes[v])
			if s, ok := nd.(StateSizer); ok {
				if b := s.StateBits(); b > nw.metrics.MaxStateBits {
					nw.metrics.MaxStateBits = b
				}
			}
		}
	}
}
