package congest

// Native Go fuzz harnesses for the wire layer. Two properties are enforced:
//
//   - round-trip: any sequence of (width, value) fields packed by Writer is
//     read back bit-exactly by Reader, and the cursor arithmetic matches the
//     declared widths;
//   - robustness: decoding arbitrary bytes as any registered message kind
//     must either succeed or return an error through Reader.Err — it must
//     NEVER panic, whatever the payload (truncated, oversized, garbage).
//
// Seed corpora are checked in under testdata/fuzz (plus the f.Add seeds
// below). CI runs a short `-fuzz` smoke on both targets; longer local runs:
//
//	go test -run '^$' -fuzz '^FuzzWireRoundTrip$' -fuzztime 60s ./internal/congest
//	go test -run '^$' -fuzz '^FuzzWireMessage$'   -fuzztime 60s ./internal/congest

import (
	"reflect"
	"testing"
)

// wordsFromBytes packs fuzz bytes into the little-endian uint64 words the
// Reader consumes; the bit stream is exactly 8*len(data) bits long.
func wordsFromBytes(data []byte) []uint64 {
	words := make([]uint64, (len(data)+7)/8)
	for i, b := range data {
		words[i/8] |= uint64(b) << (8 * uint(i%8))
	}
	return words
}

// FuzzWireRoundTrip drives Writer/Reader with an arbitrary schedule of field
// widths and values decoded from the fuzz input: whatever was written must
// read back identically, and the bit cursor must advance by exactly the
// declared widths.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7, 0xff, 0x01, 64, 0xab, 0xcd, 0, 0x00, 0x00, 1, 0x01, 0x00})
	f.Add([]byte{13, 0x34, 0x12, 63, 0xff, 0xff, 32, 0x78, 0x56})
	f.Fuzz(func(t *testing.T, data []byte) {
		type field struct {
			width int
			value uint64
		}
		var fields []field
		var w Writer
		w.Reset(1 << 16)
		total := 0
		for i := 0; i+2 < len(data) && len(fields) < 64; i += 3 {
			width := int(data[i]) % 65 // 0..64, all legal
			value := uint64(data[i+1]) | uint64(data[i+2])<<8
			if width < 64 {
				value &= (1 << uint(width)) - 1
			}
			w.WriteUint(value, width)
			if w.Err() != nil {
				t.Fatalf("masked value %d must fit %d-bit field: %v", value, width, w.Err())
			}
			fields = append(fields, field{width, value})
			total += width
			if w.Len() != total {
				t.Fatalf("Len() = %d after %d declared bits", w.Len(), total)
			}
		}
		r := Reader{N: 1 << 16, words: w.words, off: 0, end: w.Len()}
		for i, fd := range fields {
			got := r.ReadUint(fd.width)
			if r.Err() != nil {
				t.Fatalf("field %d: %v", i, r.Err())
			}
			if got != fd.value {
				t.Fatalf("field %d: read %d, wrote %d (width %d)", i, got, fd.value, fd.width)
			}
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bits left after reading every field", r.Remaining())
		}
		// The packed fast path's raw writer must lay down the identical bit
		// stream (values are pre-masked, so the unvalidated append is legal),
		// and WireView.word must read any <= 64-bit span back exactly from
		// any bit offset.
		var wr Writer
		wr.Reset(1 << 16)
		for _, fd := range fields {
			if fd.width > 0 { // writeRaw's contract: 0 < width (tag included)
				wr.writeRaw(fd.value, fd.width)
			}
		}
		if wr.Len() != w.Len() || !reflect.DeepEqual(wr.words, w.words) {
			t.Fatalf("writeRaw stream (%d bits) differs from WriteUint stream (%d bits)", wr.Len(), w.Len())
		}
		off := 0
		for i, fd := range fields {
			if fd.width > 0 {
				v := w.view(off, fd.width)
				if got := v.word(); got != fd.value {
					t.Fatalf("field %d: view.word() = %#x at offset %d, wrote %#x (width %d)",
						i, got, off, fd.value, fd.width)
				}
			}
			off += fd.width
		}
		// Reading past the end must error, not panic, and subsequent reads
		// stay zero.
		if v := r.ReadUint(1); v != 0 || r.Err() == nil {
			t.Fatalf("overrun read: %d, err %v", v, r.Err())
		}
		// Out-of-range widths are encoding errors on both sides.
		w.WriteUint(0, 65)
		if w.Err() == nil {
			t.Fatal("width 65 accepted by Writer")
		}
	})
}

// FuzzWireMessage decodes arbitrary bytes as every registered message kind:
// malformed input must surface as a Reader error (or a clean partial
// decode), never as a panic or an out-of-bounds access. When a decode
// consumes the payload cleanly, the message must re-marshal and re-decode to
// the identical value (the codec-pair consistency the engine's Decode
// enforces).
func FuzzWireMessage(f *testing.F) {
	f.Add(uint8(KindWave), uint16(64), []byte{0xaa, 0x05})
	f.Add(uint8(KindNear), uint16(300), []byte{0xff, 0xff, 0x01})
	f.Add(uint8(KindWDist), uint16(40), []byte{0x10, 0x27})
	f.Add(uint8(KindRaw), uint16(9), []byte{0x00, 0x11, 0x22, 0x33})
	f.Add(uint8(KindChild), uint16(2), []byte{})
	f.Add(uint8(KindAdj), uint16(40), []byte{0x1f})
	f.Add(uint8(KindSide), uint16(12), []byte{0x01})
	f.Add(uint8(KindCutSum), uint16(40), []byte{0x7f})         // 127 < bound: clean
	f.Add(uint8(KindCutSum), uint16(40), []byte{0xff})         // 255 > bound: id range error
	f.Add(uint8(KindCutSum), uint16(1000), []byte{})           // truncated
	f.Add(uint8(KindSkelUp), uint16(40), []byte{0x83, 0x01})   // slot 3, mid value: clean
	f.Add(uint8(KindSkelUp), uint16(40), []byte{0xff, 0xff})   // value past Bound+1: id range error
	f.Add(uint8(KindSkelUp), uint16(1000), []byte{0x05})       // truncated value field
	f.Add(uint8(KindSkelDown), uint16(40), []byte{0x00, 0x00}) // slot 0, value 0: clean
	f.Add(uint8(KindSkelDown), uint16(40), []byte{0xfc, 0xff}) // slot past Slots: id range error
	f.Add(uint8(KindSkelDown), uint16(1000), []byte{})         // truncated slot field
	f.Fuzz(func(t *testing.T, kindByte uint8, nRaw uint16, data []byte) {
		k := Kind(kindByte % numKinds)
		if !Registered(k) {
			return
		}
		n := int(nRaw)
		if n < 1 {
			n = 1
		}
		m := NewKindMessage(k)
		// Bound-parameterized kinds: the decoder's bound is configuration,
		// like n; derive it from the fuzzed size.
		bound := 4 * n
		switch wm := m.(type) {
		case *msgWDist:
			wm.Bound = bound
		case *msgWMax:
			wm.Bound = bound
		case *msgCutSum:
			wm.Bound = bound
		case *msgSkelUp:
			wm.Slots = n
			wm.Bound = bound
		case *msgSkelDown:
			wm.Slots = n
			wm.Bound = bound
		}
		words := wordsFromBytes(data)
		r := Reader{N: n, words: words, off: 0, end: 8 * len(data)}
		m.UnmarshalWire(&r) // must not panic, whatever the bytes
		if r.Err() != nil || r.Remaining() != 0 {
			return // malformed or partial: correctly reported, nothing to re-check
		}
		// Clean decode: the codec pair must round-trip.
		var w Writer
		w.Reset(n)
		m.MarshalWire(&w)
		if w.Err() != nil {
			t.Fatalf("%v: clean decode %+v does not re-marshal: %v", k, m, w.Err())
		}
		if w.Len() != 8*len(data) {
			t.Fatalf("%v: decoded %d bits, re-encoded %d", k, 8*len(data), w.Len())
		}
		m2 := NewKindMessage(k)
		switch wm := m2.(type) {
		case *msgWDist:
			wm.Bound = bound
		case *msgWMax:
			wm.Bound = bound
		case *msgCutSum:
			wm.Bound = bound
		case *msgSkelUp:
			wm.Slots = n
			wm.Bound = bound
		case *msgSkelDown:
			wm.Slots = n
			wm.Bound = bound
		}
		r2 := Reader{N: n, words: w.words, off: 0, end: w.Len()}
		m2.UnmarshalWire(&r2)
		if r2.Err() != nil || !reflect.DeepEqual(m, m2) {
			t.Fatalf("%v: round trip %+v -> %+v (err %v)", k, m, m2, r2.Err())
		}
	})
}
