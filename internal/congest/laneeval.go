package congest

// Lane-fused composite sessions for the paper's Evaluation procedure
// (Figure 2): MultiWalkSession and MultiEccSession are the batched
// counterparts of WalkSession and EccSession — k independent Evaluations
// per call, executed in lockstep by one MultiSession pass. Each lane's
// values, Metrics and error strings are bit-identical to a solo
// WalkSession/EccSession Eval of the same input; failures are reported as
// *LaneError so batch callers can attribute them to the lane's input.

import "fmt"

// LaneError attributes a batched-evaluation failure to the lane it
// happened in. Error() is the underlying error's message unchanged, so a
// batched run fails with exactly the string the solo run would produce;
// the Lane index lets the caller name the failing input instead.
type LaneError struct {
	Lane int
	Err  error
}

func (e *LaneError) Error() string { return e.Err.Error() }
func (e *LaneError) Unwrap() error { return e.Err }

// laneFirstError wraps the smallest-lane failure (the one a serial
// execution of the batch hits first) as a *LaneError; nil when every lane
// succeeded.
func laneFirstError(errs []error) error {
	for l, err := range errs {
		if err != nil {
			return &LaneError{Lane: l, Err: err}
		}
	}
	return nil
}

// MultiWalkSession is a lane-fused WalkSession: up to Lanes() token walks
// from different start vertices per EvalBatch, one engine pass.
type MultiWalkSession struct {
	ms    *MultiSession
	tw    [][]*TokenWalkNode // [lane][v]
	steps int
	taus  [][]int
	mets  []Metrics
	errs  []error
}

// NewMultiWalkSession builds the lane-fused walk session; the per-lane
// arguments mirror NewWalkSession.
func NewMultiWalkSession(topo *Topology, info *PreInfo, children [][]int, steps, lanes int, opts ...Option) *MultiWalkSession {
	mw := &MultiWalkSession{
		ms: NewMultiSession(topo, lanes, func(lane, v int) Node {
			return NewTokenWalkNode(info.Parent[v], children[v], info.Leader, -1, steps)
		}, opts...),
		steps: steps,
		tw:    make([][]*TokenWalkNode, lanes),
		taus:  make([][]int, lanes),
		mets:  make([]Metrics, lanes),
		errs:  make([]error, lanes),
	}
	n := topo.N()
	for l := 0; l < lanes; l++ {
		mw.tw[l] = make([]*TokenWalkNode, n)
		for v := 0; v < n; v++ {
			mw.tw[l][v] = mw.ms.Node(l, v).(*TokenWalkNode)
		}
		mw.taus[l] = make([]int, n)
	}
	return mw
}

// Lanes returns the lane count.
func (mw *MultiWalkSession) Lanes() int { return mw.ms.Lanes() }

// EvalBatch runs one walk per element of starts (len(starts) <= Lanes())
// and returns per-lane tau' vectors and Metrics — each bit-identical to a
// solo WalkSession.Eval(starts[l]). The first (smallest-lane) failure is
// returned as a *LaneError; the returned slices are owned by the session
// and only valid until the next EvalBatch.
func (mw *MultiWalkSession) EvalBatch(starts []int) ([][]int, []Metrics, error) {
	for l, start := range starts {
		if err := mw.ms.Reset(l, WalkStart{Start: start}); err != nil {
			return nil, nil, &LaneError{Lane: l, Err: err}
		}
	}
	mw.ms.Run(mw.steps + 4)
	for l := range starts {
		mw.mets[l] = mw.ms.Metrics(l)
		if err := mw.ms.LaneErr(l); err != nil {
			mw.errs[l] = fmt.Errorf("token walk: %w", err)
			continue
		}
		mw.errs[l] = nil
		for v, tw := range mw.tw[l] {
			mw.taus[l][v] = tw.Tau
		}
	}
	return mw.taus[:len(starts)], mw.mets[:len(starts)], laneFirstError(mw.errs[:len(starts)])
}

// Close releases the engine.
func (mw *MultiWalkSession) Close() { mw.ms.Close() }

// MultiEccSession is a lane-fused EccSession: up to Lanes() wave-and-
// convergecast Evaluations with different tau' assignments per EvalBatch.
type MultiEccSession struct {
	wave     *MultiSession
	cc       *MultiSession
	wn       [][]*WaveNode // [lane][v]
	ccLeader []*ConvergecastMaxNode
	leader   int
	duration int
	dv       [][]int
	vals     []int
	mets     []Metrics
	errs     []error
}

// NewMultiEccSession builds the lane-fused wave+convergecast pair; the
// per-lane arguments mirror NewEccSession.
func NewMultiEccSession(topo *Topology, info *PreInfo, waveDuration, lanes int, opts ...Option) *MultiEccSession {
	me := &MultiEccSession{
		wave: NewMultiSession(topo, lanes, func(lane, v int) Node {
			return NewWaveNode(false, -1, waveDuration)
		}, opts...),
		cc: NewMultiSession(topo, lanes, func(lane, v int) Node {
			return NewConvergecastMaxNode(info.Parent[v], info.Children[v], 0, v)
		}, opts...),
		leader:   info.Leader,
		duration: waveDuration,
		wn:       make([][]*WaveNode, lanes),
		ccLeader: make([]*ConvergecastMaxNode, lanes),
		dv:       make([][]int, lanes),
		vals:     make([]int, lanes),
		mets:     make([]Metrics, lanes),
		errs:     make([]error, lanes),
	}
	n := topo.N()
	for l := 0; l < lanes; l++ {
		me.wn[l] = make([]*WaveNode, n)
		for v := 0; v < n; v++ {
			me.wn[l][v] = me.wave.Node(l, v).(*WaveNode)
		}
		me.ccLeader[l] = me.cc.Node(l, info.Leader).(*ConvergecastMaxNode)
		me.dv[l] = make([]int, n)
	}
	return me
}

// Lanes returns the lane count.
func (me *MultiEccSession) Lanes() int { return me.wave.Lanes() }

// EvalBatch computes max_{u in S_l} ecc(u) per lane for the tau'
// assignments taus[l] (len(taus) <= Lanes()), each bit-identical — value,
// Metrics, error string — to a solo EccSession.Eval(taus[l]). The first
// (smallest-lane) failure is returned as a *LaneError; the returned slices
// are owned by the session and only valid until the next EvalBatch.
func (me *MultiEccSession) EvalBatch(taus [][]int) ([]int, []Metrics, error) {
	for l, tau := range taus {
		me.mets[l] = Metrics{}
		if err := me.wave.Reset(l, WaveTau{Tau: tau}); err != nil {
			return nil, nil, &LaneError{Lane: l, Err: err}
		}
	}
	me.wave.Run(me.duration + 4)
	anyCC := false
	for l := range taus {
		if err := me.wave.LaneErr(l); err != nil {
			me.errs[l] = fmt.Errorf("wave process: %w", err)
			continue
		}
		me.errs[l] = nil
		for v, wn := range me.wn[l] {
			if wn.Violation != nil {
				me.errs[l] = wn.Violation
				break
			}
			me.dv[l][v] = wn.DV
		}
		if me.errs[l] != nil {
			continue
		}
		me.mets[l].Add(me.wave.Metrics(l))
		if err := me.cc.Reset(l, MaxInputs{Values: me.dv[l]}); err != nil {
			me.errs[l] = err
			continue
		}
		anyCC = true
	}
	if anyCC {
		me.cc.Run(4*len(me.dv[0]) + 16)
		for l := range taus {
			if me.errs[l] != nil || me.wave.LaneErr(l) != nil {
				continue
			}
			if err := me.cc.LaneErr(l); err != nil {
				me.errs[l] = fmt.Errorf("convergecast: %w", err)
				continue
			}
			me.mets[l].Add(me.cc.Metrics(l))
			me.vals[l] = me.ccLeader[l].Max
		}
	}
	return me.vals[:len(taus)], me.mets[:len(taus)], laneFirstError(me.errs[:len(taus)])
}

// Close releases both engines.
func (me *MultiEccSession) Close() {
	me.wave.Close()
	me.cc.Close()
}
