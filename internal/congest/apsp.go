package congest

// Skeleton distance oracle: the CONGEST building blocks of the quantum APSP
// and sublinear weighted diameter/radius suite (the Wang–Wu–Yao and Wu–Yao
// follow-ups to the paper). The classical weighted Evaluation of weighted.go
// runs Bellman–Ford for a fixed n-1 rounds; the skeleton oracle replaces
// that inner loop with the papers' two-regime schedule:
//
//   - paths of at most H hops are covered exactly by an H-round truncated
//     Bellman–Ford relaxation (the same WeightedSSSPNode program with
//     Duration = H, whose output is the exact H-hop-bounded distance d^H);
//   - longer paths are stitched through a skeleton set S that hits every
//     H-hop window of a shortest path: exact skeleton-to-skeleton distances
//     d_S are the transitive closure of the H-hop distances between
//     skeleton vertices, computed once at the leader during init, and every
//     vertex v stores dsv[j] = min_i ( d_S(s_j, s_i) + d^H(s_i, v) ).
//
// One Evaluation of the oracle from source u is then three fixed-schedule
// phases — H-round relaxation from u, a pipelined relay of the |S| values
// d^H(u, s_j) through the BFS tree (gather to the root, broadcast back
// down; new wire kinds KindSkelUp/KindSkelDown), and a weighted max
// convergecast — for Θ(H + D + |S|) rounds instead of n-1, with
// d(u, v) = min( d^H(u, v), min_j d^H(u, s_j) + dsv[j] ) available at every
// vertex v. Every candidate is the length of a real walk, so the combine
// never underestimates; exactness needs S to hit every H-hop window of
// some min-hop shortest path (guaranteed when S = V, with high probability
// for a random S of size Θ((n/H) log n)).
//
// Wire widths: the relay carries (slot, value) pairs with slot in [0, |S|)
// and value in [0, Bound+1], where Bound+1 encodes "no value within H hops"
// — BitsForID(|S|) + BitsForID(Bound+2) payload bits, the same O(log n +
// log Bound) budget as the weighted relaxation messages. DeclaredBits
// states the formulas and strict accounting verifies them on every message.

import (
	"fmt"
	"math"
)

// skelNoVal is the wire encoding of "no value within H hops" for a relay
// slot: one past the largest finite distance.
func skelNoVal(bound int) int { return bound + 1 }

// skelInf is the program-side infinity of the oracle's local tables. It is
// strictly larger than any distance the oracle accepts (NewSkelOracle
// rejects bounds above skelMaxBound), so clamped sums never shadow a real
// distance, and two clamped values still add without overflowing.
const skelInf = math.MaxInt / 4

// skelMaxBound caps the distance bound the skeleton oracle accepts: local
// table entries are sums of up to two bound-ranged walk lengths plus a
// clamped partial result, and the cap keeps every such sum below skelInf.
const skelMaxBound = math.MaxInt / 8

type (
	// msgSkelUp carries one (slot, value) pair of the gather phase toward
	// the root: the minimum of the slot's value over the sender's subtree.
	// Slots and Bound are field-width configuration (every node knows |S|
	// and the weight cap a priori, like it knows n), never transmitted.
	msgSkelUp struct {
		Slot  int
		Val   int
		Slots int
		Bound int
	}
	// msgSkelDown carries one (slot, value) pair of the broadcast phase
	// down the tree: the root's (global) value for the slot.
	msgSkelDown struct {
		Slot  int
		Val   int
		Slots int
		Bound int
	}
)

func (m *msgSkelUp) WireKind() Kind { return KindSkelUp }
func (m *msgSkelUp) MarshalWire(w *Writer) {
	w.WriteID(m.Slot, m.Slots)
	w.WriteID(m.Val, m.Bound+2)
}
func (m *msgSkelUp) UnmarshalWire(r *Reader) {
	m.Slot = r.ReadID(m.Slots)
	m.Val = r.ReadID(m.Bound + 2)
}
func (m *msgSkelUp) DeclaredBits(n int) int {
	return KindBits + BitsForID(m.Slots) + BitsForID(m.Bound+2)
}

// The width is (Slots, Bound)-parameterized configuration (no
// RegisterKindWidth), so under strict accounting the engine encodes these
// via the generic path; the packed pair still serves the non-strict encode
// and the receive-side decode.
func (m *msgSkelUp) PackWire(n int) (uint64, int, bool) {
	return packSkel(m.Slot, m.Val, m.Slots, m.Bound)
}
func (m *msgSkelUp) UnpackWire(n int, p uint64, width int) bool {
	slot, val, ok := unpackSkel(p, width, m.Slots, m.Bound)
	if ok {
		m.Slot, m.Val = slot, val
	}
	return ok
}

func (m *msgSkelDown) WireKind() Kind { return KindSkelDown }
func (m *msgSkelDown) MarshalWire(w *Writer) {
	w.WriteID(m.Slot, m.Slots)
	w.WriteID(m.Val, m.Bound+2)
}
func (m *msgSkelDown) UnmarshalWire(r *Reader) {
	m.Slot = r.ReadID(m.Slots)
	m.Val = r.ReadID(m.Bound + 2)
}
func (m *msgSkelDown) DeclaredBits(n int) int {
	return KindBits + BitsForID(m.Slots) + BitsForID(m.Bound+2)
}

// Same dynamic-width situation as msgSkelUp.
func (m *msgSkelDown) PackWire(n int) (uint64, int, bool) {
	return packSkel(m.Slot, m.Val, m.Slots, m.Bound)
}
func (m *msgSkelDown) UnpackWire(n int, p uint64, width int) bool {
	slot, val, ok := unpackSkel(p, width, m.Slots, m.Bound)
	if ok {
		m.Slot, m.Val = slot, val
	}
	return ok
}

// packSkel packs the shared (slot, value) layout of the skeleton relay
// kinds: slot in the low bits, value above it, mirroring the sequential
// MarshalWire writes.
func packSkel(slot, val, slots, bound int) (uint64, int, bool) {
	if bound < 0 || slot < 0 || slot >= slots || val < 0 || val >= bound+2 {
		return 0, 0, false
	}
	ws, wv := BitsForID(slots), BitsForID(bound+2)
	if ws+wv > 64 {
		return 0, 0, false
	}
	return uint64(slot) | uint64(val)<<ws, ws + wv, true
}

func unpackSkel(p uint64, width, slots, bound int) (int, int, bool) {
	if bound < 0 || slots <= 0 {
		return 0, 0, false
	}
	ws, wv := BitsForID(slots), BitsForID(bound+2)
	if width != ws+wv {
		return 0, 0, false
	}
	slot, val := p&(1<<uint(ws)-1), p>>uint(ws)
	if slot >= uint64(slots) || val >= uint64(bound+2) {
		return 0, 0, false
	}
	return int(slot), int(val), true
}

func init() {
	RegisterKind(KindSkelUp, "skel-up", func() WireMessage { return new(msgSkelUp) })
	RegisterKind(KindSkelDown, "skel-down", func() WireMessage { return new(msgSkelDown) })
}

// SkelRelayNode relays the per-slot values held at the skeleton vertices to
// every node, pipelined one slot per round over the BFS tree: a gather
// phase (min convergecast per slot, exactly one value is finite) followed
// by a broadcast phase, both on the SourceMaxNode schedule. A node at depth
// k transmits slot i upward at round (D - k) + i + 1 and downward at round
// gatherEnd + k + i + 1; the whole relay takes 2(D + Slots + 1) rounds,
// fixed and input-independent.
type SkelRelayNode struct {
	Parent   int
	Children []int
	Depth    int
	D        int // tree height bound used by the pipelined schedule
	Slots    int
	Slot     int // this vertex's skeleton slot, or -1
	Bound    int

	// Vec is the output: Vec[j] = the value seeded at skeleton vertex j
	// (Bound+1 when that vertex holds no value). After the run it is
	// identical at every node.
	Vec []int

	finished bool

	txUp   msgSkelUp
	txDown msgSkelDown
	rxUp   msgSkelUp
	rxDown msgSkelDown
}

// NewSkelRelayNode builds the program for one node; slot is -1 for
// non-skeleton vertices.
func NewSkelRelayNode(parent int, children []int, depth, d, slots, slot, bound int) *SkelRelayNode {
	s := &SkelRelayNode{
		Parent:   parent,
		Children: append([]int(nil), children...),
		Depth:    depth,
		D:        d,
		Slots:    slots,
		Slot:     slot,
		Bound:    bound,
		Vec:      make([]int, slots),
		rxUp:     msgSkelUp{Slots: slots, Bound: bound},
		rxDown:   msgSkelDown{Slots: slots, Bound: bound},
	}
	for j := range s.Vec {
		s.Vec[j] = skelNoVal(bound)
	}
	return s
}

// SkelSeed is the Reset params of a relay session: Value[v] is the value
// vertex v seeds into its own slot (ignored at non-skeleton vertices); -1
// means "no value" (the vertex was not reached within the hop budget).
type SkelSeed struct{ Value []int }

// ResetNode implements Resettable.
func (s *SkelRelayNode) ResetNode(v int, params any) {
	seed := -1
	switch p := params.(type) {
	case nil:
	case SkelSeed:
		seed = p.Value[v]
	default:
		badResetParams("SkelRelayNode", params)
	}
	for j := range s.Vec {
		s.Vec[j] = skelNoVal(s.Bound)
	}
	if s.Slot >= 0 && seed >= 0 {
		s.Vec[s.Slot] = seed
	}
	s.finished = false
}

// gatherEnd is the round by which the gather phase has fully drained into
// the root; the broadcast schedule is offset past it.
func (s *SkelRelayNode) gatherEnd() int { return s.D + s.Slots + 1 }

// total is the fixed duration of the whole relay.
func (s *SkelRelayNode) total() int { return 2 * (s.D + s.Slots + 1) }

// Send implements Node: one slot per round in each phase's pipelined
// window. Children's subtree minima for slot i arrive exactly one round
// before this node's upward transmission of slot i; the parent's global
// value arrives exactly one round before the downward retransmission.
func (s *SkelRelayNode) Send(env *Env, out *Outbox) {
	if s.Parent >= 0 {
		if i := env.Round - (s.D - s.Depth) - 1; i >= 0 && i < s.Slots {
			s.txUp = msgSkelUp{Slot: i, Val: s.Vec[i], Slots: s.Slots, Bound: s.Bound}
			out.Put(s.Parent, &s.txUp)
		}
	}
	if len(s.Children) > 0 {
		if i := env.Round - s.gatherEnd() - s.Depth - 1; i >= 0 && i < s.Slots {
			s.txDown = msgSkelDown{Slot: i, Val: s.Vec[i], Slots: s.Slots, Bound: s.Bound}
			out.Broadcast(s.Children, &s.txDown)
		}
	}
}

// Receive implements Node: gather messages min-combine into the slot (only
// subtree values ever arrive upward), broadcast messages overwrite it with
// the root's global value.
func (s *SkelRelayNode) Receive(env *Env, inbox []Inbound) {
	for i := range inbox {
		in := &inbox[i]
		switch in.Kind {
		case KindSkelUp:
			if in.Decode(env, &s.rxUp) != nil {
				continue
			}
			if s.rxUp.Val < s.Vec[s.rxUp.Slot] {
				s.Vec[s.rxUp.Slot] = s.rxUp.Val
			}
		case KindSkelDown:
			if in.Decode(env, &s.rxDown) != nil {
				continue
			}
			s.Vec[s.rxDown.Slot] = s.rxDown.Val
		}
	}
	if env.Round >= s.total() {
		s.finished = true
	}
}

// Done implements Node.
func (s *SkelRelayNode) Done() bool { return s.finished }

// NextWake implements Scheduled: the upward window [D-Depth+1, D-Depth+Slots]
// (non-root nodes), the downward window [gatherEnd+Depth+1,
// gatherEnd+Depth+Slots] (non-leaf nodes), and the final timer. Message
// arrivals wake the node regardless.
func (s *SkelRelayNode) NextWake(env *Env, round int) int {
	if s.finished {
		return NeverWake
	}
	next := s.total()
	if s.Parent >= 0 {
		if w := windowNext(round, s.D-s.Depth+1, s.Slots); w > 0 && w < next {
			next = w
		}
	}
	if len(s.Children) > 0 {
		if w := windowNext(round, s.gatherEnd()+s.Depth+1, s.Slots); w > 0 && w < next {
			next = w
		}
	}
	if next <= round {
		return round + 1
	}
	return next
}

// windowNext returns the smallest round after `round` inside the window of
// `width` rounds starting at `first`, or 0 when the window has passed.
func windowNext(round, first, width int) int {
	switch {
	case round+1 < first:
		return first
	case round+1 < first+width:
		return round + 1
	default:
		return 0
	}
}

// StateBits implements StateSizer: the slot vector plus the schedule
// constants. The oracle's per-node memory is Θ(|S| log n) bits — like the
// multi-source phase of the 3/2-approximation, this is the part of the
// follow-up algorithms that needs polynomial classical memory.
func (s *SkelRelayNode) StateBits() int { return (s.Slots + 4) * 64 }

// SkelOracle is a preprocessed skeleton distance oracle over one topology:
// the hop budget H, the skeleton S, and the per-vertex combine tables dsv.
// Build it once with NewSkelOracle (the init phase, charged to InitRounds)
// and evaluate any number of sources through SkelEvalSession /
// MultiSkelEvalSession.
type SkelOracle struct {
	topo     *Topology
	info     *PreInfo
	H        int
	Skeleton []int // slot -> vertex, distinct
	slotOf   []int // vertex -> slot, -1 for non-skeleton vertices
	bound    int

	// dsv[v][j] = min_i ( d_S(s_j, s_i) + d^H(s_i, v) ), clamped to skelInf.
	dsv [][]int

	// InitRounds is the CONGEST cost of building the oracle: the measured
	// rounds of the |S| H-hop relaxations plus the charged pipelined
	// gather/broadcast of the |S|^2 skeleton matrix through the leader
	// (2*(D + |S|^2 + 1) rounds at one matrix entry per tree edge per
	// round, the SourceMaxNode schedule with |S|^2 slots).
	InitRounds int
}

// NewSkelOracle runs the init phase: an H-hop truncated Bellman–Ford
// relaxation from every skeleton vertex (lane-fused into batches of `lanes`
// when lanes > 1 — wall-clock only, the charged rounds are the sum of the
// bit-identical per-lane costs), the Floyd–Warshall closure of the
// skeleton-to-skeleton H-hop distances at the leader, and the per-vertex
// combine tables.
func NewSkelOracle(topo *Topology, info *PreInfo, skeleton []int, h, lanes int, opts ...Option) (*SkelOracle, error) {
	n := topo.N()
	if h < 1 || h > n {
		return nil, fmt.Errorf("congest: skeleton hop budget %d out of [1, %d]", h, n)
	}
	if len(skeleton) == 0 || len(skeleton) > n {
		return nil, fmt.Errorf("congest: skeleton size %d out of [1, %d]", len(skeleton), n)
	}
	bound := topo.DistBound()
	if bound > skelMaxBound {
		return nil, fmt.Errorf("congest: distance bound %d exceeds the skeleton oracle's cap %d", bound, skelMaxBound)
	}
	o := &SkelOracle{
		topo:     topo,
		info:     info,
		H:        h,
		Skeleton: append([]int(nil), skeleton...),
		slotOf:   make([]int, n),
		bound:    bound,
	}
	for v := range o.slotOf {
		o.slotOf[v] = -1
	}
	for j, v := range o.Skeleton {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("congest: skeleton vertex %d out of range", v)
		}
		if o.slotOf[v] >= 0 {
			return nil, fmt.Errorf("congest: skeleton vertex %d listed twice", v)
		}
		o.slotOf[v] = j
	}

	// Phase 1: d^H(s_i, v) for every skeleton vertex, measured.
	s := len(o.Skeleton)
	hmat := make([][]int, s)
	for i := range hmat {
		hmat[i] = make([]int, n)
	}
	if err := o.runInitRelaxations(hmat, lanes, opts...); err != nil {
		return nil, err
	}

	// Phase 2: exact skeleton-to-skeleton distances — the Floyd–Warshall
	// closure of the H-hop skeleton matrix, a leader-local computation on
	// the gathered entries. Any shortest path between skeleton vertices
	// decomposes into segments of at most H hops between consecutive
	// skeleton vertices (the hitting property), each captured by d^H.
	ds := make([][]int, s)
	for i := range ds {
		ds[i] = make([]int, s)
		for j := range ds[i] {
			ds[i][j] = hmat[i][o.Skeleton[j]]
		}
		ds[i][i] = 0
	}
	for k := 0; k < s; k++ {
		for i := 0; i < s; i++ {
			viaK := ds[i][k]
			if viaK >= skelInf {
				continue
			}
			for j := 0; j < s; j++ {
				if d := viaK + ds[k][j]; d < ds[i][j] {
					ds[i][j] = d
				}
			}
		}
	}

	// Phase 3: the per-vertex combine tables, local arithmetic on values
	// every vertex already holds (its d^H to each skeleton vertex, learned
	// during phase 1) plus the broadcast closure matrix.
	o.dsv = make([][]int, n)
	for v := 0; v < n; v++ {
		row := make([]int, s)
		for j := 0; j < s; j++ {
			best := skelInf
			for i := 0; i < s; i++ {
				if ds[j][i] >= skelInf || hmat[i][v] >= skelInf {
					continue
				}
				if d := ds[j][i] + hmat[i][v]; d < best {
					best = d
				}
			}
			row[j] = best
		}
		o.dsv[v] = row
	}

	// The |S|^2 matrix entries are gathered to and re-broadcast from the
	// leader on the pipelined tree schedule — charged by formula, like the
	// setup broadcast of the optimization framework.
	o.InitRounds += 2 * (info.D + s*s + 1)
	return o, nil
}

// runInitRelaxations fills hmat[i] with the H-hop-bounded distances from
// skeleton vertex i (skelInf for vertices unreached within H hops) and adds
// the measured rounds of every relaxation to InitRounds.
func (o *SkelOracle) runInitRelaxations(hmat [][]int, lanes int, opts ...Option) error {
	topo, n, h, bound := o.topo, o.topo.N(), o.H, o.bound
	s := len(o.Skeleton)
	read := func(i int, node *WeightedSSSPNode, v int) {
		if node.Dist < 0 {
			hmat[i][v] = skelInf
		} else {
			hmat[i][v] = node.Dist
		}
	}
	if lanes <= 1 || s == 1 {
		ses := NewSession(topo, func(v int) Node {
			return NewWeightedSSSPNode(false, topo.NeighborWeights(v), bound, h)
		}, opts...)
		defer ses.Close()
		for i, src := range o.Skeleton {
			if err := ses.Reset(WeightedSource{Source: src}); err != nil {
				return err
			}
			if err := ses.Run(h + 4); err != nil {
				return fmt.Errorf("skeleton relaxation from %d: %w", src, err)
			}
			o.InitRounds += ses.Metrics().Rounds
			for v := 0; v < n; v++ {
				read(i, ses.Node(v).(*WeightedSSSPNode), v)
			}
		}
		return nil
	}
	if lanes > s {
		lanes = s
	}
	ms := NewMultiSession(topo, lanes, func(lane, v int) Node {
		return NewWeightedSSSPNode(false, topo.NeighborWeights(v), bound, h)
	}, opts...)
	defer ms.Close()
	for base := 0; base < s; base += lanes {
		k := min(lanes, s-base)
		for l := 0; l < lanes; l++ {
			// Pad the final batch with repeats of its last source; the
			// padding lanes run but are never read.
			src := o.Skeleton[base+min(l, k-1)]
			if err := ms.Reset(l, WeightedSource{Source: src}); err != nil {
				return err
			}
		}
		ms.Run(h + 4)
		for l := 0; l < k; l++ {
			if err := ms.LaneErr(l); err != nil {
				return fmt.Errorf("skeleton relaxation from %d: %w", o.Skeleton[base+l], err)
			}
			o.InitRounds += ms.Metrics(l).Rounds
			for v := 0; v < n; v++ {
				read(base+l, ms.Node(l, v).(*WeightedSSSPNode), v)
			}
		}
	}
	return nil
}

// combineRow computes row[v] = min( d^H(u, v), min_j vec[j] + dsv[v][j] )
// for every vertex — each vertex's local combine of its own relaxation
// estimate, the relayed skeleton vector and its stored table. It fails when
// some vertex stays unreachable (the skeleton sample missed every window of
// its shortest path) or the best candidate overshoots the distance bound.
func (o *SkelOracle) combineRow(source int, dist, vec, row []int) error {
	noVal := skelNoVal(o.bound)
	for v, d := range dist {
		best := skelInf
		if d >= 0 {
			best = d
		}
		dsvV := o.dsv[v]
		for j, rel := range vec {
			if rel >= noVal || dsvV[j] >= skelInf {
				continue
			}
			if c := rel + dsvV[j]; c < best {
				best = c
			}
		}
		if best > o.bound {
			return fmt.Errorf("congest: vertex %d unreached by skeleton oracle from %d (sample too sparse for hop budget %d)", v, source, o.H)
		}
		row[v] = best
	}
	return nil
}

// relayDuration is the fixed round count of the relay phase.
func (o *SkelOracle) relayDuration() int { return 2 * (o.info.D + len(o.Skeleton) + 1) }

// SkelEvalSession evaluates the oracle for one source at a time: the
// weighted counterpart of WeightedEccSession with the n-1-round inner loop
// replaced by the oracle's H + relay schedule. Build once per context,
// Eval per Evaluation.
type SkelEvalSession struct {
	o     *SkelOracle
	bf    *Session
	relay *Session
	cc    *Session

	dist []int
	vec  *SkelRelayNode // the leader's relay program (holds the global vector)
	row  []int
}

// NewEvalSession builds the relaxation + relay + convergecast triple.
func (o *SkelOracle) NewEvalSession(opts ...Option) *SkelEvalSession {
	topo, info := o.topo, o.info
	n := topo.N()
	s := len(o.Skeleton)
	es := &SkelEvalSession{
		o: o,
		bf: NewSession(topo, func(v int) Node {
			return NewWeightedSSSPNode(false, topo.NeighborWeights(v), o.bound, o.H)
		}, opts...),
		relay: NewSession(topo, func(v int) Node {
			return NewSkelRelayNode(info.Parent[v], info.Children[v], info.Depth[v], info.D, s, o.slotOf[v], o.bound)
		}, opts...),
		cc: NewSession(topo, func(v int) Node {
			return NewWeightedMaxNode(info.Parent[v], info.Children[v], 0, v, o.bound)
		}, opts...),
		dist: make([]int, n),
		row:  make([]int, n),
	}
	es.vec = es.relay.Node(info.Leader).(*SkelRelayNode)
	return es
}

// Eval computes the weighted eccentricity of source through the oracle; when
// row is non-nil it is additionally filled with the full distance row
// d(source, v) — the value every vertex v holds locally after the combine.
func (es *SkelEvalSession) Eval(source int, row []int) (int, Metrics, error) {
	o := es.o
	var total Metrics
	if err := es.bf.Reset(WeightedSource{Source: source}); err != nil {
		return 0, total, err
	}
	if err := es.bf.Run(o.H + 4); err != nil {
		return 0, total, fmt.Errorf("skeleton relaxation: %w", err)
	}
	total.Add(es.bf.Metrics())
	for v := range es.dist {
		es.dist[v] = es.bf.Node(v).(*WeightedSSSPNode).Dist
	}
	if err := es.relay.Reset(SkelSeed{Value: es.dist}); err != nil {
		return 0, total, err
	}
	if err := es.relay.Run(o.relayDuration() + 4); err != nil {
		return 0, total, fmt.Errorf("skeleton relay: %w", err)
	}
	total.Add(es.relay.Metrics())
	if row == nil {
		row = es.row
	}
	if err := o.combineRow(source, es.dist, es.vec.Vec, row); err != nil {
		return 0, total, err
	}
	if err := es.cc.Reset(WeightedMaxInputs{Values: row}); err != nil {
		return 0, total, err
	}
	if err := es.cc.Run(4*o.topo.N() + 16); err != nil {
		return 0, total, fmt.Errorf("weighted convergecast: %w", err)
	}
	total.Add(es.cc.Metrics())
	return es.cc.Node(o.info.Leader).(*WeightedMaxNode).Max, total, nil
}

// Close releases the three sessions.
func (es *SkelEvalSession) Close() {
	es.bf.Close()
	es.relay.Close()
	es.cc.Close()
}

// MultiSkelEvalSession is the lane-fused SkelEvalSession: up to Lanes()
// oracle Evaluations per EvalBatch, each stage one MultiSession pass, each
// lane bit-identical — value, Metrics, error string — to a solo Eval.
type MultiSkelEvalSession struct {
	o     *SkelOracle
	bf    *MultiSession
	relay *MultiSession
	cc    *MultiSession

	bfn  [][]*WeightedSSSPNode // [lane][v]
	vec  []*SkelRelayNode      // [lane] leader relay programs
	ccl  []*WeightedMaxNode    // [lane] leader convergecast programs
	dist [][]int
	rows [][]int
	vals []int
	mets []Metrics
	errs []error
}

// NewMultiEvalSession builds the lane-fused triple.
func (o *SkelOracle) NewMultiEvalSession(lanes int, opts ...Option) *MultiSkelEvalSession {
	topo, info := o.topo, o.info
	n := topo.N()
	s := len(o.Skeleton)
	me := &MultiSkelEvalSession{
		o: o,
		bf: NewMultiSession(topo, lanes, func(lane, v int) Node {
			return NewWeightedSSSPNode(false, topo.NeighborWeights(v), o.bound, o.H)
		}, opts...),
		relay: NewMultiSession(topo, lanes, func(lane, v int) Node {
			return NewSkelRelayNode(info.Parent[v], info.Children[v], info.Depth[v], info.D, s, o.slotOf[v], o.bound)
		}, opts...),
		cc: NewMultiSession(topo, lanes, func(lane, v int) Node {
			return NewWeightedMaxNode(info.Parent[v], info.Children[v], 0, v, o.bound)
		}, opts...),
		bfn:  make([][]*WeightedSSSPNode, lanes),
		vec:  make([]*SkelRelayNode, lanes),
		ccl:  make([]*WeightedMaxNode, lanes),
		dist: make([][]int, lanes),
		rows: make([][]int, lanes),
		vals: make([]int, lanes),
		mets: make([]Metrics, lanes),
		errs: make([]error, lanes),
	}
	for l := 0; l < lanes; l++ {
		me.bfn[l] = make([]*WeightedSSSPNode, n)
		for v := 0; v < n; v++ {
			me.bfn[l][v] = me.bf.Node(l, v).(*WeightedSSSPNode)
		}
		me.vec[l] = me.relay.Node(l, info.Leader).(*SkelRelayNode)
		me.ccl[l] = me.cc.Node(l, info.Leader).(*WeightedMaxNode)
		me.dist[l] = make([]int, n)
		me.rows[l] = make([]int, n)
	}
	return me
}

// Lanes returns the lane count.
func (me *MultiSkelEvalSession) Lanes() int { return me.bf.Lanes() }

// EvalBatch evaluates the oracle for each source (len(sources) <= Lanes()),
// returning per-lane eccentricities and Metrics bit-identical to solo
// Evals. When rows is non-nil, rows[l] is filled with the distance row of
// sources[l]. The first (smallest-lane) failure is returned as a
// *LaneError; returned slices are owned by the session and only valid until
// the next EvalBatch.
func (me *MultiSkelEvalSession) EvalBatch(sources []int, rows [][]int) ([]int, []Metrics, error) {
	o := me.o
	for l, src := range sources {
		me.mets[l] = Metrics{}
		me.errs[l] = nil
		if err := me.bf.Reset(l, WeightedSource{Source: src}); err != nil {
			return nil, nil, &LaneError{Lane: l, Err: err}
		}
	}
	me.bf.Run(o.H + 4)
	anyRelay := false
	for l := range sources {
		if err := me.bf.LaneErr(l); err != nil {
			me.errs[l] = fmt.Errorf("skeleton relaxation: %w", err)
			continue
		}
		me.mets[l].Add(me.bf.Metrics(l))
		for v, nd := range me.bfn[l] {
			me.dist[l][v] = nd.Dist
		}
		if err := me.relay.Reset(l, SkelSeed{Value: me.dist[l]}); err != nil {
			me.errs[l] = err
			continue
		}
		anyRelay = true
	}
	if anyRelay {
		me.relay.Run(o.relayDuration() + 4)
	}
	anyCC := false
	for l, src := range sources {
		if me.errs[l] != nil {
			continue
		}
		if err := me.relay.LaneErr(l); err != nil {
			me.errs[l] = fmt.Errorf("skeleton relay: %w", err)
			continue
		}
		me.mets[l].Add(me.relay.Metrics(l))
		row := me.rows[l]
		if rows != nil {
			row = rows[l]
		}
		if err := o.combineRow(src, me.dist[l], me.vec[l].Vec, row); err != nil {
			me.errs[l] = err
			continue
		}
		if err := me.cc.Reset(l, WeightedMaxInputs{Values: row}); err != nil {
			me.errs[l] = err
			continue
		}
		anyCC = true
	}
	if anyCC {
		me.cc.Run(4*o.topo.N() + 16)
		for l := range sources {
			if me.errs[l] != nil || me.bf.LaneErr(l) != nil || me.relay.LaneErr(l) != nil {
				continue
			}
			if err := me.cc.LaneErr(l); err != nil {
				me.errs[l] = fmt.Errorf("weighted convergecast: %w", err)
				continue
			}
			me.mets[l].Add(me.cc.Metrics(l))
			me.vals[l] = me.ccl[l].Max
		}
	}
	return me.vals[:len(sources)], me.mets[:len(sources)], laneFirstError(me.errs[:len(sources)])
}

// Close releases the three engines.
func (me *MultiSkelEvalSession) Close() {
	me.bf.Close()
	me.relay.Close()
	me.cc.Close()
}
