package congest

// shardedBitset is the compressed vertex-set representation behind the
// frontier scheduler: a word layer with one bit per vertex, plus a summary
// layer with one bit per word-layer word (set iff that word is non-zero).
// Membership tests and inserts are O(1); iteration and clearing walk only
// the summary bits that are set, so both cost O(set/64 + n/4096) instead of
// O(n) — at ten million vertices an empty-ish frontier costs a scan of
// ~2400 summary words, not ten million booleans.
//
// The layout is also what makes lock-free worker sharding possible: when
// vertex shards are aligned to 4096 vertices (64 words, one full summary
// word), no two workers ever write the same word-layer or summary-layer
// word, so concurrent shard-local inserts need no synchronization beyond
// the existing round barriers. frontierState enforces that alignment.

import "math/bits"

type shardedBitset struct {
	words []uint64 // bit v&63 of words[v>>6]: vertex v is in the set
	sum   []uint64 // bit w&63 of sum[w>>6]: words[w] is non-zero
}

func newShardedBitset(n int) *shardedBitset {
	nw := (n + 63) >> 6
	return &shardedBitset{
		words: make([]uint64, nw),
		sum:   make([]uint64, (nw+63)>>6),
	}
}

// add inserts v and reports whether it was absent.
func (b *shardedBitset) add(v int32) bool {
	w := uint32(v) >> 6
	mask := uint64(1) << (uint32(v) & 63)
	if b.words[w]&mask != 0 {
		return false
	}
	b.words[w] |= mask
	b.sum[w>>6] |= 1 << (w & 63)
	return true
}

// has reports membership.
func (b *shardedBitset) has(v int32) bool {
	return b.words[uint32(v)>>6]&(1<<(uint32(v)&63)) != 0
}

// clear empties the set, touching only the words the summary layer names.
func (b *shardedBitset) clear() {
	for si, sw := range b.sum {
		if sw == 0 {
			continue
		}
		base := si << 6
		for sw != 0 {
			b.words[base+bits.TrailingZeros64(sw)] = 0
			sw &= sw - 1
		}
		b.sum[si] = 0
	}
}
