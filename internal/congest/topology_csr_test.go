package congest

import (
	"fmt"
	"strings"
	"testing"

	"qcongest/internal/graph"
)

// TestTopologyFromCSRMatchesGraphPath pins the two Topology constructors
// to each other: a topology built from the streamed CSR must expose the
// same adjacency views and run programs bit-identically to one built from
// the equivalent *graph.Graph.
func TestTopologyFromCSRMatchesGraphPath(t *testing.T) {
	rows, cols := 11, 17
	g := graph.Grid(rows, cols)
	want, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	c, err := graph.BuildCSRFromStream(rows*cols, graph.GridEdges(rows, cols))
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewTopologyFromCSR(c)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != want.N() {
		t.Fatalf("N = %d, want %d", got.N(), want.N())
	}
	if got.Graph() != nil {
		t.Errorf("CSR-built topology Graph() = %v, want nil", got.Graph())
	}
	for v := 0; v < want.N(); v++ {
		a, b := got.Neighbors(v), want.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree(%d) = %d, want %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("neighbors(%d) differ at %d: %d vs %d", v, i, a[i], b[i])
			}
		}
	}
	if got.HasEdge(0, 1) != want.HasEdge(0, 1) || got.HasEdge(0, 2) != want.HasEdge(0, 2) {
		t.Errorf("HasEdge disagrees between build paths")
	}

	// Run a real program on both topologies: identical outputs and Metrics.
	fingerprint := func(topo *Topology) (string, Metrics) {
		nw := NewNetworkOn(topo, func(v int) Node { return NewBFSNode(0) })
		if err := nw.Run(8*topo.N() + 16); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for v := 0; v < topo.N(); v++ {
			b := nw.Node(v).(*BFSNode)
			fmt.Fprintf(&sb, "%d/%d/%d;", b.Dist, b.Parent, b.Ecc)
		}
		return sb.String(), nw.Metrics()
	}
	wantOut, wantM := fingerprint(want)
	gotOut, gotM := fingerprint(got)
	if gotOut != wantOut {
		t.Errorf("BFS outputs differ between graph-built and CSR-built topologies")
	}
	if gotM != wantM {
		t.Errorf("BFS Metrics = %+v on CSR topology, want %+v", gotM, wantM)
	}
}

// TestTopologyFromCSRWeighted: a weighted CSR carries its weight arena and
// MaxWeight through to the topology.
func TestTopologyFromCSRWeighted(t *testing.T) {
	g := graph.WithWeights(graph.Cycle(12), 9, 3)
	c, err := g.BuildCSR()
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewTopologyFromCSR(c)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Weighted() || got.MaxWeight() != want.MaxWeight() {
		t.Fatalf("weighted/maxW = %v/%d, want true/%d", got.Weighted(), got.MaxWeight(), want.MaxWeight())
	}
	for v := 0; v < want.N(); v++ {
		a, b := got.NeighborWeights(v), want.NeighborWeights(v)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("weights(%d) differ at %d: %d vs %d", v, i, a[i], b[i])
			}
		}
	}
}

// TestTopologyFromCSRValidation rejects malformed and disconnected CSRs.
func TestTopologyFromCSRValidation(t *testing.T) {
	cases := []struct {
		name string
		c    *graph.CSR
		want string
	}{
		{"empty-offsets", &graph.CSR{}, "malformed"},
		{"bad-sentinel", &graph.CSR{Offsets: []int32{0, 1}, Targets: []int32{1, 0}}, "malformed"},
		{"out-of-range", &graph.CSR{Offsets: []int32{0, 1, 2}, Targets: []int32{5, 0}}, "out of range"},
		{"self-loop", &graph.CSR{Offsets: []int32{0, 1, 2}, Targets: []int32{0, 0}}, "self-loop"},
		{"unsorted-row", &graph.CSR{Offsets: []int32{0, 2, 3, 5, 6}, Targets: []int32{2, 1, 0, 0, 3, 2}}, "ascending"},
		{"bad-weight", &graph.CSR{Offsets: []int32{0, 1, 2}, Targets: []int32{1, 0}, Weights: []int32{0, 0}}, "weight"},
		{
			name: "disconnected",
			c: &graph.CSR{ // two disjoint edges: 0-1, 2-3
				Offsets: []int32{0, 1, 2, 3, 4},
				Targets: []int32{1, 0, 3, 2},
			},
			want: "not connected",
		},
	}
	for _, tc := range cases {
		_, err := NewTopologyFromCSR(tc.c)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
