package congest

import (
	"fmt"

	"qcongest/internal/graph"
)

// PreInfo is the output of the classical preprocessing the paper assumes
// before its algorithms start (Section 3): an elected leader, the BFS tree
// rooted at it, and d = ecc(leader), known to every node. The arrays are
// indexed by vertex; entry v is information held by node v (the simulator
// keeps them centrally for convenience, but each entry was computed by the
// distributed programs).
type PreInfo struct {
	Leader   int
	Parent   []int   // BFS(leader) parent, -1 at leader
	Depth    []int   // distance to leader
	Children [][]int // BFS(leader) children, ascending
	D        int     // d = ecc(leader); D <= diameter <= 2d
}

// Preprocess runs leader election, the Figure 1 BFS construction with
// eccentricity convergecast, and a broadcast of d = ecc(leader). It returns
// the gathered information and the total metrics (O(D) rounds; all bit
// counts are encoded wire lengths of the phases' typed messages).
func Preprocess(g *graph.Graph, opts ...Option) (*PreInfo, Metrics, error) {
	topo, err := NewTopology(g)
	if err != nil {
		return nil, Metrics{}, err
	}
	return PreprocessOn(topo, opts...)
}

// PreprocessOn is Preprocess on an already-built topology: none of the
// three phases re-validates or re-scans the graph.
func PreprocessOn(topo *Topology, opts ...Option) (*PreInfo, Metrics, error) {
	var total Metrics
	n := topo.N()
	if n == 0 {
		return nil, total, fmt.Errorf("congest: empty graph")
	}

	// Phase 1: leader election by max-id flooding.
	nw := NewNetworkOn(topo, func(v int) Node { return NewLeaderElectNode() }, opts...)
	if err := nw.Run(4*n + 16); err != nil {
		return nil, total, fmt.Errorf("leader election: %w", err)
	}
	total.Add(nw.Metrics())
	leader := -1
	for v := 0; v < n; v++ {
		l := nw.Node(v).(*LeaderElectNode).Leader
		if leader == -1 {
			leader = l
		} else if l != leader {
			return nil, total, fmt.Errorf("congest: leader election disagreement at node %d", v)
		}
	}

	// Phase 2: BFS(leader) with child discovery and ecc convergecast.
	nw = NewNetworkOn(topo, func(v int) Node { return NewBFSNode(leader) }, opts...)
	if err := nw.Run(8*n + 16); err != nil {
		return nil, total, fmt.Errorf("bfs construction: %w", err)
	}
	total.Add(nw.Metrics())
	info := &PreInfo{
		Leader:   leader,
		Parent:   make([]int, n),
		Depth:    make([]int, n),
		Children: make([][]int, n),
	}
	for v := 0; v < n; v++ {
		b := nw.Node(v).(*BFSNode)
		info.Parent[v] = b.Parent
		info.Depth[v] = b.Dist
		info.Children[v] = b.Children
		if v == leader {
			info.D = b.Ecc
		}
	}

	// Phase 3: broadcast d = ecc(leader) down the tree so every node can
	// schedule the fixed-length phases that follow.
	nw = NewNetworkOn(topo, func(v int) Node {
		return NewBroadcastNode(info.Parent[v], info.Children[v], info.D)
	}, opts...)
	if err := nw.Run(4*n + 16); err != nil {
		return nil, total, fmt.Errorf("broadcast d: %w", err)
	}
	total.Add(nw.Metrics())
	for v := 0; v < n; v++ {
		if got := nw.Node(v).(*BroadcastNode).Value; got != info.D {
			return nil, total, fmt.Errorf("congest: node %d received d=%d, want %d", v, got, info.D)
		}
	}
	return info, total, nil
}

// TokenWalk executes the Figure 2 Step 1 walk (L token steps from start
// on the tree described by info, with the given per-node child lists) and
// returns tau' (-1 for unvisited vertices).
func TokenWalk(g *graph.Graph, info *PreInfo, children [][]int, start, steps int, opts ...Option) ([]int, Metrics, error) {
	topo, err := NewTopology(g)
	if err != nil {
		return nil, Metrics{}, err
	}
	return TokenWalkOn(topo, info, children, start, steps, opts...)
}

// TokenWalkOn is TokenWalk on an already-built topology.
func TokenWalkOn(topo *Topology, info *PreInfo, children [][]int, start, steps int, opts ...Option) ([]int, Metrics, error) {
	nw := NewNetworkOn(topo, func(v int) Node {
		return NewTokenWalkNode(info.Parent[v], children[v], info.Leader, start, steps)
	}, opts...)
	if err := nw.Run(steps + 4); err != nil {
		return nil, nw.Metrics(), fmt.Errorf("token walk: %w", err)
	}
	tau := make([]int, topo.N())
	for v := range tau {
		tau[v] = nw.Node(v).(*TokenWalkNode).Tau
	}
	return tau, nw.Metrics(), nil
}

// Wave executes the Figure 2 Step 2 wave process for the initiators
// marked in tau (tau[v] >= 0 means v in S with tau'(v) = tau[v]) and
// returns each node's dv.
func Wave(g *graph.Graph, tau []int, duration int, opts ...Option) ([]int, Metrics, error) {
	topo, err := NewTopology(g)
	if err != nil {
		return nil, Metrics{}, err
	}
	return WaveOn(topo, tau, duration, opts...)
}

// WaveOn is Wave on an already-built topology.
func WaveOn(topo *Topology, tau []int, duration int, opts ...Option) ([]int, Metrics, error) {
	nw := NewNetworkOn(topo, func(v int) Node {
		return NewWaveNode(tau[v] >= 0, tau[v], duration)
	}, opts...)
	if err := nw.Run(duration + 4); err != nil {
		return nil, nw.Metrics(), fmt.Errorf("wave process: %w", err)
	}
	dv := make([]int, topo.N())
	for v := 0; v < topo.N(); v++ {
		wn := nw.Node(v).(*WaveNode)
		if wn.Violation != nil {
			return nil, nw.Metrics(), wn.Violation
		}
		dv[v] = wn.DV
	}
	return dv, nw.Metrics(), nil
}

// ConvergecastMax aggregates max(values) at the tree root and returns
// (max, witness).
func ConvergecastMax(g *graph.Graph, info *PreInfo, values, witnesses []int, opts ...Option) (int, int, Metrics, error) {
	topo, err := NewTopology(g)
	if err != nil {
		return 0, 0, Metrics{}, err
	}
	return ConvergecastMaxOn(topo, info, values, witnesses, opts...)
}

// ConvergecastMaxOn is ConvergecastMax on an already-built topology.
func ConvergecastMaxOn(topo *Topology, info *PreInfo, values, witnesses []int, opts ...Option) (int, int, Metrics, error) {
	nw := NewNetworkOn(topo, func(v int) Node {
		w := v
		if witnesses != nil {
			w = witnesses[v]
		}
		return NewConvergecastMaxNode(info.Parent[v], info.Children[v], values[v], w)
	}, opts...)
	if err := nw.Run(4*topo.N() + 16); err != nil {
		return 0, 0, nw.Metrics(), fmt.Errorf("convergecast: %w", err)
	}
	root := nw.Node(info.Leader).(*ConvergecastMaxNode)
	return root.Max, root.MaxWitness, nw.Metrics(), nil
}
