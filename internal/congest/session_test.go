package congest

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"qcongest/internal/graph"
)

// recordObs renders every observed delivery (and run boundary) into events,
// encoded bits included, so trace comparisons are bit-for-bit.
func recordObs(events *[]string) Observer {
	return func(round, from, to, bits int, wire WireView) {
		var enc strings.Builder
		for i := 0; i < wire.Len(); i++ {
			if wire.Bit(i) {
				enc.WriteByte('1')
			} else {
				enc.WriteByte('0')
			}
		}
		*events = append(*events, fmt.Sprintf("%d:%d->%d:%d:%s", round, from, to, bits, enc.String()))
	}
}

// figure2Result captures one full Evaluation: its value, the per-phase
// metrics, and the complete observer wire trace.
type figure2Result struct {
	Value      int
	Walk, Rest Metrics
	Trace      []string
}

// freshFigure2 runs one Evaluation the pre-session way: a fresh network per
// phase.
func freshFigure2(t *testing.T, g *graph.Graph, info *PreInfo, u0 int, opts ...Option) figure2Result {
	t.Helper()
	var r figure2Result
	o := append([]Option{WithObserver(recordObs(&r.Trace))}, opts...)
	tau, mW, err := TokenWalk(g, info, info.Children, u0, 2*info.D, o...)
	if err != nil {
		t.Fatal(err)
	}
	val, mR, err := EccentricitiesOf(g, info, tau, 6*info.D+2, o...)
	if err != nil {
		t.Fatal(err)
	}
	r.Value, r.Walk, r.Rest = val, mW, mR
	return r
}

// The tentpole contract: a session Reset+Run is bit-for-bit identical to a
// freshly built network — values, Metrics and encoded observer traces —
// for every worker count, on the first execution and on every re-run.
func TestSessionReuseBitIdentical(t *testing.T) {
	for _, seed := range []int64{3, 9} {
		g := graph.RandomConnected(130, 0.045, seed)
		info, _, err := Preprocess(g, WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		topo, err := NewTopology(g)
		if err != nil {
			t.Fatal(err)
		}
		// Includes a repeated input: re-evaluating an input already seen
		// must also be identical.
		u0s := []int{0, 7, 63, 129, 7}
		for _, k := range []int{1, 2, 3, 8} {
			var trace []string
			o := []Option{WithObserver(recordObs(&trace)), WithWorkers(k), WithStrictAccounting()}
			walk := NewWalkSession(topo, info, info.Children, 2*info.D, o...)
			ecc := NewEccSession(topo, info, 6*info.D+2, o...)
			for pass := 0; pass < 2; pass++ { // pass 1 re-runs warm sessions
				for _, u0 := range u0s {
					want := freshFigure2(t, g, info, u0, WithWorkers(k), WithStrictAccounting())
					trace = trace[:0]
					tau, mW, err := walk.Eval(u0)
					if err != nil {
						t.Fatal(err)
					}
					val, mR, err := ecc.Eval(tau)
					if err != nil {
						t.Fatal(err)
					}
					if val != want.Value || mW != want.Walk || mR != want.Rest {
						t.Fatalf("seed %d workers %d pass %d u0 %d: session (%d, %+v, %+v) != fresh (%d, %+v, %+v)",
							seed, k, pass, u0, val, mW, mR, want.Value, want.Walk, want.Rest)
					}
					if !reflect.DeepEqual(trace, want.Trace) {
						t.Fatalf("seed %d workers %d pass %d u0 %d: observer wire trace differs (%d vs %d events)",
							seed, k, pass, u0, len(trace), len(want.Trace))
					}
				}
			}
			walk.Close()
			ecc.Close()
		}
	}
}

// PrepareApprox now runs its counting probes on reused sessions; its output
// and metrics must be unchanged across worker counts and identical to the
// serial execution.
func TestPrepareApproxSessionDeterministic(t *testing.T) {
	g := graph.RandomConnected(90, 0.06, 5)
	wantPrep, wantM, err := PrepareApprox(g, 9, 11, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3, 8} {
		prep, m, err := PrepareApprox(g, 9, 11, WithWorkers(k))
		if err != nil {
			t.Fatal(err)
		}
		if m != wantM {
			t.Errorf("workers %d: metrics %+v, want %+v", k, m, wantM)
		}
		if !reflect.DeepEqual(prep, wantPrep) {
			t.Errorf("workers %d: preparation outputs differ", k)
		}
	}
}

// A session must refuse to run twice without a Reset, and must refuse to
// Reset programs that are not Resettable.
func TestSessionLifecycleErrors(t *testing.T) {
	g := graph.Path(16)
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(topo, func(v int) Node { return NewLeaderElectNode() })
	defer s.Close()
	if err := s.Run(64); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(64); err == nil {
		t.Error("re-run without Reset accepted")
	}
	if err := s.Reset(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(64); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Run(64); err == nil {
		t.Error("Run on a closed session accepted")
	}
	if err := s.Reset(nil); err == nil {
		t.Error("Reset on a closed session accepted")
	}

	irr := NewSession(topo, func(v int) Node { return &floodNode{rounds: 1} })
	defer irr.Close()
	if err := irr.Reset(nil); err == nil {
		t.Error("Reset of non-Resettable programs accepted")
	}
}

// Re-running a warm session must stay (near) allocation-free: the whole
// point of the session layer is that an Evaluation re-run touches only
// recycled state. The bound is a small constant (params boxing), not a
// function of n or of the round count.
func TestEvalSteadyStateAllocs(t *testing.T) {
	g := graph.Path(256)
	info, _, err := Preprocess(g, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2} {
		walk := NewWalkSession(topo, info, info.Children, 2*info.D, WithWorkers(k))
		ecc := NewEccSession(topo, info, 6*info.D+2, WithWorkers(k))
		evalOnce := func(u0 int) {
			tau, _, err := walk.Eval(u0)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := ecc.Eval(tau); err != nil {
				t.Fatal(err)
			}
		}
		evalOnce(3) // warm up: engines built, buffers grown
		perEval := testing.AllocsPerRun(5, func() { evalOnce(200) })
		if perEval > 24 {
			t.Errorf("workers %d: %.1f allocs per re-run Evaluation, want near zero", k, perEval)
		}
		walk.Close()
		ecc.Close()
	}
}

// Pool.Do must attempt every job, deliver results keyed by job index, and
// report the smallest-index error, independent of scheduling.
func TestPoolDeterministic(t *testing.T) {
	type ctx struct{ id int }
	pool, err := NewPool(4, func(i int) (*ctx, error) { return &ctx{id: i}, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close(func(*ctx) {})
	if pool.Size() != 4 {
		t.Fatalf("Size = %d", pool.Size())
	}
	const jobs = 200
	results := make([]int, jobs)
	if err := pool.Do(jobs, func(j int, c *ctx) error {
		results[j] = j * j
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for j, r := range results {
		if r != j*j {
			t.Fatalf("job %d: result %d", j, r)
		}
	}
	// Errors: jobs 150 and 17 fail; the reported error must be job 17's.
	err = pool.Do(jobs, func(j int, c *ctx) error {
		if j == 17 || j == 150 {
			return fmt.Errorf("job %d failed", j)
		}
		return nil
	})
	if err == nil || err.Error() != "job 17 failed" {
		t.Errorf("error = %v, want job 17's", err)
	}
	// A single-clone pool has the same contract: all jobs attempted, the
	// smallest-index error reported.
	solo, err := NewPool(1, func(i int) (*ctx, error) { return &ctx{id: i}, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close(func(*ctx) {})
	attempted := make([]bool, 10)
	err = solo.Do(10, func(j int, c *ctx) error {
		attempted[j] = true
		if j == 3 || j == 7 {
			return fmt.Errorf("job %d failed", j)
		}
		return nil
	})
	if err == nil || err.Error() != "job 3 failed" {
		t.Errorf("solo pool error = %v, want job 3's", err)
	}
	for j, a := range attempted {
		if !a {
			t.Errorf("solo pool skipped job %d after an error", j)
		}
	}
	// A closed (or empty) pool must refuse work loudly, not silently run
	// zero jobs.
	solo.Close(func(*ctx) {})
	if err := solo.Do(5, func(int, *ctx) error { return nil }); err == nil {
		t.Error("Do on a closed pool accepted")
	}
}

// A non-nil Reset params of a type the program does not understand must
// panic loudly instead of silently re-running stale inputs.
func TestResetRejectsWrongParamsType(t *testing.T) {
	g := graph.Path(8)
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(topo, func(v int) Node { return NewWaveNode(false, -1, 4) })
	defer s.Close()
	defer func() {
		if recover() == nil {
			t.Error("WaveNode accepted WalkStart params")
		}
	}()
	_ = s.Reset(WalkStart{Start: 0})
}

func TestForEach(t *testing.T) {
	for _, workers := range []int{1, 3} {
		hits := make([]bool, 50)
		if err := ForEach(workers, 50, func(j int) error { hits[j] = true; return nil }); err != nil {
			t.Fatal(err)
		}
		for j, h := range hits {
			if !h {
				t.Fatalf("workers %d: job %d not run", workers, j)
			}
		}
	}
	if err := ForEach(2, 10, func(j int) error {
		if j >= 4 {
			return fmt.Errorf("boom %d", j)
		}
		return nil
	}); err == nil || err.Error() != "boom 4" {
		t.Errorf("ForEach error = %v, want boom 4", err)
	}
}

// Cloned sessions share the topology but nothing mutable: concurrent
// evaluations on clones must agree with the serial session. Run with -race
// this also proves the isolation.
func TestSessionCloneConcurrent(t *testing.T) {
	g := graph.RandomConnected(96, 0.06, 7)
	info, _, err := Preprocess(g, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	walk := NewWalkSession(topo, info, info.Children, 2*info.D, WithWorkers(1))
	defer walk.Close()
	ecc := NewEccSession(topo, info, 6*info.D+2, WithWorkers(1))
	defer ecc.Close()
	n := g.N()
	want := make([]int, n)
	for u0 := 0; u0 < n; u0++ {
		tau, _, err := walk.Eval(u0)
		if err != nil {
			t.Fatal(err)
		}
		want[u0], _, err = ecc.Eval(tau)
		if err != nil {
			t.Fatal(err)
		}
	}
	type evalCtx struct {
		w *WalkSession
		e *EccSession
	}
	pool, err := NewPool(4, func(int) (*evalCtx, error) {
		w, err := walk.Clone()
		if err != nil {
			return nil, err
		}
		e, err := ecc.Clone()
		if err != nil {
			return nil, err
		}
		return &evalCtx{w: w, e: e}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close(func(c *evalCtx) { c.w.Close(); c.e.Close() })
	got := make([]int, n)
	if err := pool.Do(n, func(j int, c *evalCtx) error {
		tau, _, err := c.w.Eval(j)
		if err != nil {
			return err
		}
		got[j], _, err = c.e.Eval(tau)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("pooled evaluations differ from the serial session")
	}
}

// NewNetworkOn over a shared topology must behave exactly like NewNetwork:
// the topology cache changes construction cost, not behavior.
func TestTopologySharedAcrossNetworks(t *testing.T) {
	g := graph.RandomConnected(80, 0.06, 2)
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ClassicalExactDiameter(g, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	// Two more full runs over the same cached topology: results identical.
	for rep := 0; rep < 2; rep++ {
		info, m, err := PreprocessOn(topo, WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		got := ExactResult{}
		got.Metrics.Add(m)
		tau, m2, err := TokenWalkOn(topo, info, info.Children, info.Leader, 2*(g.N()-1), WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		got.Metrics.Add(m2)
		dv, m3, err := Wave(g, tau, 4*(g.N()-1)+2*info.D+2, WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		got.Metrics.Add(m3)
		diam, _, m4, err := ConvergecastMaxOn(topo, info, dv, nil, WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		got.Metrics.Add(m4)
		got.Diameter = diam
		if got != want {
			t.Fatalf("rep %d: composed run on shared topology %+v, want %+v", rep, got, want)
		}
	}
}
