package congest

// Differential tests for the word-packed wire fast path: the PackWire /
// UnpackWire pair of every registered kind must agree bit-for-bit with the
// generic MarshalWire / UnmarshalWire oracle — on valid messages (both the
// encode and the decode half) and on every checked-in fuzz corpus entry
// (whatever the generic path refuses, the packed path must refuse too).

import (
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// configureBounds installs the configuration fields (never transmitted) that
// Bound-parameterized codecs need before decoding, mirroring the engine's
// receive-side setup and the FuzzWireMessage convention (bound = 4n).
func configureBounds(m WireMessage, n int) {
	bound := 4 * n
	switch wm := m.(type) {
	case *msgWDist:
		wm.Bound = bound
	case *msgWMax:
		wm.Bound = bound
	case *msgCutSum:
		wm.Bound = bound
	case *msgSkelUp:
		wm.Slots = n
		wm.Bound = bound
	case *msgSkelDown:
		wm.Slots = n
		wm.Bound = bound
	}
}

// packedCases returns, for network size n, representative valid messages of
// every kind that implements PackedWire, with fields at the extremes of
// their declared ranges. Bound-parameterized kinds use bound = 4n so the
// values line up with configureBounds on the decode side.
func packedCases(n int) []WireMessage {
	b := 4 * n
	var sum int
	if w := 2 * BitsForID(n); w >= 63 {
		sum = int(^uint64(0) >> 1) // any non-negative value fits
	} else {
		sum = 1<<uint(w) - 1
	}
	return []WireMessage{
		&msgActivate{Dist: 0},
		&msgActivate{Dist: n - 1},
		&msgChild{},
		&msgEccReport{Max: n / 2},
		&msgToken{Step: 4 * n},
		&msgWave{Tau: b, Delta: 0},
		&msgWave{Tau: 0, Delta: b},
		&msgMax{Value: b, Witness: n - 1},
		&msgBcast{Value: b / 2},
		&msgNear{Dist: 2*n - 1, Src: 0},
		&msgSum{Sum: 0},
		&msgSum{Sum: sum},
		&msgPair{Src: n - 1, Dist: 2*n - 1},
		&msgSrcMax{Src: 0, Max: 2*n - 1},
		&msgWDist{Dist: b, Bound: b},
		&msgWMax{Value: b, Witness: n - 1, Bound: b},
		&msgAdj{ID: n - 1},
		&msgSide{Marked: true},
		&msgSide{Marked: false},
		&msgCutSum{Sum: b, Bound: b},
		&msgSkelUp{Slot: n - 1, Val: b + 1, Slots: n, Bound: b},
		&msgSkelDown{Slot: 0, Val: 0, Slots: n, Bound: b},
	}
}

// TestPackedWireMatchesGeneric checks both halves of the fast path against
// the generic oracle for every PackedWire kind across a sweep of network
// sizes: PackWire must reproduce the exact bits MarshalWire lays down (tag
// included), and UnpackWire must recover the exact message UnmarshalWire
// does.
func TestPackedWireMatchesGeneric(t *testing.T) {
	covered := map[Kind]bool{}
	for _, n := range []int{1, 2, 3, 7, 40, 1000, 65536} {
		for _, m := range packedCases(n) {
			k := m.WireKind()
			p, ok := m.(PackedWire)
			if !ok {
				t.Fatalf("n=%d %v: packedCases holds a kind without PackWire", n, k)
			}
			covered[k] = true

			// Generic oracle: tag, then the payload fields.
			var w Writer
			w.Reset(n)
			w.WriteUint(uint64(k), KindBits)
			m.MarshalWire(&w)
			if w.Err() != nil {
				t.Fatalf("n=%d %v: oracle rejects valid case %+v: %v", n, k, m, w.Err())
			}
			if w.Len() > 64 {
				continue // fast path not applicable at this size
			}

			payload, width, pok := p.PackWire(n)
			if !pok {
				t.Fatalf("n=%d %v: PackWire refuses valid case %+v", n, k, m)
			}
			if KindBits+width != w.Len() {
				t.Fatalf("n=%d %v: packed width %d+%d, generic %d bits", n, k, KindBits, width, w.Len())
			}
			word := uint64(k) | payload<<KindBits
			if w.Len() < 64 {
				word &= 1<<uint(w.Len()) - 1
			}
			if got := w.words[0]; got != word {
				t.Fatalf("n=%d %v %+v: packed word %#x, generic bits %#x", n, k, m, word, got)
			}

			// Decode half: UnpackWire vs UnmarshalWire from the same bits.
			gm := NewKindMessage(k)
			configureBounds(gm, n)
			r := Reader{N: n, words: w.words, off: KindBits, end: w.Len()}
			gm.UnmarshalWire(&r)
			if r.Err() != nil || r.Remaining() != 0 {
				t.Fatalf("n=%d %v: oracle decode of own encoding failed: err=%v rem=%d", n, k, r.Err(), r.Remaining())
			}
			pm := NewKindMessage(k)
			configureBounds(pm, n)
			if !pm.(PackedWire).UnpackWire(n, payload, width) {
				t.Fatalf("n=%d %v: UnpackWire refuses its own packing of %+v", n, k, m)
			}
			if !reflect.DeepEqual(gm, pm) {
				t.Fatalf("n=%d %v: generic decode %+v, packed decode %+v", n, k, gm, pm)
			}
		}
	}
	for _, k := range RegisteredKinds() {
		if _, isPacked := NewKindMessage(k).(PackedWire); isPacked && !covered[k] {
			t.Errorf("%v implements PackedWire but packedCases has no case for it", k)
		}
	}
}

// corpusEntry is one FuzzWireMessage input: (kind byte, network size, raw
// payload bytes).
type corpusEntry struct {
	name string
	kind uint8
	n    uint16
	data []byte
}

// loadWireCorpus parses the checked-in fuzz corpus files under
// testdata/fuzz/FuzzWireMessage (Go fuzz v1 format: one typed literal per
// line, matching the harness signature byte/uint16/[]byte).
func loadWireCorpus(t *testing.T) []corpusEntry {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzWireMessage")
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus dir: %v", err)
	}
	var entries []corpusEntry
	for _, f := range files {
		raw, err := os.ReadFile(filepath.Join(dir, f.Name()))
		if err != nil {
			t.Fatalf("reading corpus file %s: %v", f.Name(), err)
		}
		lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
		if len(lines) != 4 || lines[0] != "go test fuzz v1" {
			t.Fatalf("corpus file %s: unexpected format (%d lines)", f.Name(), len(lines))
		}
		e := corpusEntry{name: f.Name()}
		for _, line := range lines[1:] {
			switch {
			case strings.HasPrefix(line, "byte("):
				s, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "byte("), ")"))
				if err != nil || len(s) != 1 {
					t.Fatalf("corpus file %s: bad byte line %q: %v", f.Name(), line, err)
				}
				e.kind = s[0]
			case strings.HasPrefix(line, "uint16("):
				v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(line, "uint16("), ")"), 10, 16)
				if err != nil {
					t.Fatalf("corpus file %s: bad uint16 line %q: %v", f.Name(), line, err)
				}
				e.n = uint16(v)
			case strings.HasPrefix(line, "[]byte("):
				s, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")"))
				if err != nil {
					t.Fatalf("corpus file %s: bad []byte line %q: %v", f.Name(), line, err)
				}
				e.data = []byte(s)
			default:
				t.Fatalf("corpus file %s: unrecognized line %q", f.Name(), line)
			}
		}
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		t.Fatal("no corpus entries found")
	}
	return entries
}

// TestPackedWireCorpusDifferential replays every checked-in FuzzWireMessage
// corpus entry (plus the in-code seeds of that harness) through both decode
// paths: when the generic oracle decodes cleanly, UnpackWire must accept and
// produce the identical message — and re-pack to the identical bits; when
// the oracle refuses, UnpackWire must refuse too, so the engine's fallback
// keeps error identity.
func TestPackedWireCorpusDifferential(t *testing.T) {
	entries := loadWireCorpus(t)
	// The harness's f.Add seeds live in code, not testdata; replay them too
	// so every kind is exercised even before a fuzz run has grown the
	// directory.
	seeds := []corpusEntry{
		{"seed-wave", uint8(KindWave), 64, []byte{0xaa, 0x05}},
		{"seed-near", uint8(KindNear), 300, []byte{0xff, 0xff, 0x01}},
		{"seed-wdist", uint8(KindWDist), 40, []byte{0x10, 0x27}},
		{"seed-raw", uint8(KindRaw), 9, []byte{0x00, 0x11, 0x22, 0x33}},
		{"seed-child", uint8(KindChild), 2, []byte{}},
		{"seed-adj", uint8(KindAdj), 40, []byte{0x1f}},
		{"seed-side", uint8(KindSide), 12, []byte{0x01}},
		{"seed-cutsum-ok", uint8(KindCutSum), 40, []byte{0x7f}},
		{"seed-cutsum-range", uint8(KindCutSum), 40, []byte{0xff}},
		{"seed-cutsum-trunc", uint8(KindCutSum), 1000, []byte{}},
		{"seed-skelup-ok", uint8(KindSkelUp), 40, []byte{0x83, 0x01}},
		{"seed-skelup-range", uint8(KindSkelUp), 40, []byte{0xff, 0xff}},
		{"seed-skelup-trunc", uint8(KindSkelUp), 1000, []byte{0x05}},
		{"seed-skeldown-ok", uint8(KindSkelDown), 40, []byte{0x00, 0x00}},
		{"seed-skeldown-range", uint8(KindSkelDown), 40, []byte{0xfc, 0xff}},
		{"seed-skeldown-trunc", uint8(KindSkelDown), 1000, []byte{}},
	}
	entries = append(entries, seeds...)
	checked := 0
	for _, e := range entries {
		k := Kind(e.kind % numKinds)
		if !Registered(k) {
			continue
		}
		n := int(e.n)
		if n < 1 {
			n = 1
		}
		gm := NewKindMessage(k)
		if _, isPacked := gm.(PackedWire); !isPacked {
			continue // dynamic-payload kinds (raw) have no fast path
		}
		width := 8 * len(e.data)
		if KindBits+width > 64 {
			continue // the engine never takes the fast path at this size
		}
		configureBounds(gm, n)
		r := Reader{N: n, words: wordsFromBytes(e.data), off: 0, end: width}
		gm.UnmarshalWire(&r)
		clean := r.Err() == nil && r.Remaining() == 0

		var payload uint64
		for i, b := range e.data {
			payload |= uint64(b) << (8 * uint(i))
		}
		pm := NewKindMessage(k)
		configureBounds(pm, n)
		got := pm.(PackedWire).UnpackWire(n, payload, width)
		if got != clean {
			t.Errorf("%s (%v, n=%d, % x): generic clean=%v, UnpackWire=%v", e.name, k, n, e.data, clean, got)
			continue
		}
		if clean {
			if !reflect.DeepEqual(gm, pm) {
				t.Errorf("%s (%v, n=%d): generic decode %+v, packed decode %+v", e.name, k, n, gm, pm)
			}
			rp, rw, rok := pm.(PackedWire).PackWire(n)
			if !rok || rw != width || rp != payload {
				t.Errorf("%s (%v, n=%d): re-pack (%#x, %d, %v) of clean decode, want (%#x, %d, true)",
					e.name, k, n, rp, rw, rok, payload, width)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no corpus entry exercised the packed path")
	}
	t.Logf("differential-checked %d corpus entries", checked)
}

// TestRegisterKindWidthTable checks the strict-accounting width table: every
// kind with a registered fixed width must report exactly DeclaredBits for a
// fresh message at that size, and the Bound-parameterized kinds must stay
// dynamic (no entry), since their width is per-message configuration.
func TestRegisterKindWidthTable(t *testing.T) {
	for _, n := range []int{1, 2, 40, 1000} {
		tab := packedWidths(n)
		for _, k := range RegisteredKinds() {
			m := NewKindMessage(k)
			d, sized := m.(BitsDeclarer)
			entry := int(tab[k])
			switch k {
			case KindWDist, KindWMax, KindCutSum, KindSkelUp, KindSkelDown, KindRaw:
				if entry != 0 {
					t.Errorf("n=%d %v: dynamic-width kind has table entry %d", n, k, entry)
				}
			default:
				if !sized {
					continue
				}
				if _, isPacked := m.(PackedWire); !isPacked {
					continue // e.g. test-registered kinds without a fast path
				}
				if want := d.DeclaredBits(n); entry != want && want <= 64 {
					t.Errorf("n=%d %v: width table %d, DeclaredBits %d", n, k, entry, want)
				}
			}
		}
	}
}
