package congest

import "sort"

// Programs used by the 3/2-approximation preparation (Figure 3 of the
// paper, following Algorithm 1 of [HPRW14]): nearest-member flooding,
// convergecast sums for distributed counting, pipelined multi-source
// shortest paths from the set R, and the pipelined per-source maximum
// convergecast that turns those distances into eccentricities.
//
// Message sizes are not declared anywhere in this file: every cost below is
// the encoded wire length of the typed messages (the pre-wire-format code
// carried hand-written constants like 2*BitsForID(2*env.N) here, which the
// engine trusted blindly).

type (
	// msgNear carries (distance to nearest member, member id). Distances
	// travel pre-incremented, so the field covers [0, 2n).
	msgNear struct {
		Dist int
		Src  int
	}
	// msgSum carries a partial sum up the tree. The field is 2*BitsForID(n)
	// bits: wide enough for the counting convergecasts used here (sums of
	// n indicator values) and for sums up to ~n^2 in general.
	msgSum struct{ Sum int }
	// msgPair is one (source rank, distance) pair of the pipelined
	// multi-source BFS; ranks are < n, distances pre-incremented < 2n.
	msgPair struct {
		Src  int
		Dist int
	}
	// msgSrcMax carries the subtree maximum for one source rank.
	msgSrcMax struct {
		Src int
		Max int
	}
)

func (m *msgNear) WireKind() Kind { return KindNear }
func (m *msgNear) MarshalWire(w *Writer) {
	w.WriteID(m.Dist, 2*w.N)
	w.WriteID(m.Src, w.N)
}
func (m *msgNear) UnmarshalWire(r *Reader) {
	m.Dist = r.ReadID(2 * r.N)
	m.Src = r.ReadID(r.N)
}
func (m *msgNear) DeclaredBits(n int) int { return KindBits + BitsForID(2*n) + BitsForID(n) }
func (m *msgNear) PackWire(n int) (uint64, int, bool) {
	if m.Dist < 0 || m.Dist >= 2*n || m.Src < 0 || m.Src >= n {
		return 0, 0, false
	}
	wd := BitsForID(2 * n)
	return uint64(m.Dist) | uint64(m.Src)<<wd, wd + BitsForID(n), true
}
func (m *msgNear) UnpackWire(n int, p uint64, width int) bool {
	wd := BitsForID(2 * n)
	if width != wd+BitsForID(n) {
		return false
	}
	dist, src := p&(1<<wd-1), p>>wd
	if dist >= uint64(2*n) || src >= uint64(n) {
		return false
	}
	m.Dist, m.Src = int(dist), int(src)
	return true
}

func (m *msgSum) WireKind() Kind          { return KindSum }
func (m *msgSum) MarshalWire(w *Writer)   { w.WriteCount(m.Sum, 2*BitsForID(w.N)) }
func (m *msgSum) UnmarshalWire(r *Reader) { m.Sum = int(r.ReadUint(2 * BitsForID(r.N))) }
func (m *msgSum) DeclaredBits(n int) int  { return KindBits + 2*BitsForID(n) }
func (m *msgSum) PackWire(n int) (uint64, int, bool) {
	width := 2 * BitsForID(n)
	if m.Sum < 0 || (width < 64 && uint64(m.Sum)>>uint(width) != 0) {
		return 0, 0, false
	}
	return uint64(m.Sum), width, true
}
func (m *msgSum) UnpackWire(n int, p uint64, width int) bool {
	// A counter field: any value of the exact width decodes cleanly,
	// mirroring the generic ReadUint (no range restriction beyond width).
	if width != 2*BitsForID(n) {
		return false
	}
	m.Sum = int(p)
	return true
}

func (m *msgPair) WireKind() Kind { return KindPair }
func (m *msgPair) MarshalWire(w *Writer) {
	w.WriteID(m.Src, w.N)
	w.WriteID(m.Dist, 2*w.N)
}
func (m *msgPair) UnmarshalWire(r *Reader) {
	m.Src = r.ReadID(r.N)
	m.Dist = r.ReadID(2 * r.N)
}
func (m *msgPair) DeclaredBits(n int) int { return KindBits + BitsForID(n) + BitsForID(2*n) }
func (m *msgPair) PackWire(n int) (uint64, int, bool) {
	if m.Src < 0 || m.Src >= n || m.Dist < 0 || m.Dist >= 2*n {
		return 0, 0, false
	}
	ws := BitsForID(n)
	return uint64(m.Src) | uint64(m.Dist)<<ws, ws + BitsForID(2*n), true
}
func (m *msgPair) UnpackWire(n int, p uint64, width int) bool {
	ws := BitsForID(n)
	if width != ws+BitsForID(2*n) {
		return false
	}
	src, dist := p&(1<<ws-1), p>>ws
	if src >= uint64(n) || dist >= uint64(2*n) {
		return false
	}
	m.Src, m.Dist = int(src), int(dist)
	return true
}

func (m *msgSrcMax) WireKind() Kind { return KindSrcMax }
func (m *msgSrcMax) MarshalWire(w *Writer) {
	w.WriteID(m.Src, w.N)
	w.WriteID(m.Max, 2*w.N)
}
func (m *msgSrcMax) UnmarshalWire(r *Reader) {
	m.Src = r.ReadID(r.N)
	m.Max = r.ReadID(2 * r.N)
}
func (m *msgSrcMax) DeclaredBits(n int) int { return KindBits + BitsForID(n) + BitsForID(2*n) }
func (m *msgSrcMax) PackWire(n int) (uint64, int, bool) {
	if m.Src < 0 || m.Src >= n || m.Max < 0 || m.Max >= 2*n {
		return 0, 0, false
	}
	ws := BitsForID(n)
	return uint64(m.Src) | uint64(m.Max)<<ws, ws + BitsForID(2*n), true
}
func (m *msgSrcMax) UnpackWire(n int, p uint64, width int) bool {
	ws := BitsForID(n)
	if width != ws+BitsForID(2*n) {
		return false
	}
	src, max := p&(1<<ws-1), p>>ws
	if src >= uint64(n) || max >= uint64(2*n) {
		return false
	}
	m.Src, m.Max = int(src), int(max)
	return true
}

func init() {
	RegisterKind(KindNear, "near", func() WireMessage { return new(msgNear) })
	RegisterKind(KindSum, "sum", func() WireMessage { return new(msgSum) })
	RegisterKind(KindPair, "pair", func() WireMessage { return new(msgPair) })
	RegisterKind(KindSrcMax, "src-max", func() WireMessage { return new(msgSrcMax) })
	RegisterKindWidth(KindNear, func(n int) int { return KindBits + BitsForID(2*n) + BitsForID(n) })
	RegisterKindWidth(KindSum, func(n int) int { return KindBits + 2*BitsForID(n) })
	RegisterKindWidth(KindPair, func(n int) int { return KindBits + BitsForID(n) + BitsForID(2*n) })
	RegisterKindWidth(KindSrcMax, func(n int) int { return KindBits + BitsForID(n) + BitsForID(2*n) })
}

// MinFloodNode computes, at every node, the distance to the nearest member
// of a vertex set and the id of that member (the p(v) of Figure 3 Step 2).
// Members start a wave at distance 0; nodes re-broadcast whenever their
// best (distance, id) improves. O(D) rounds, one message per edge per
// round.
type MinFloodNode struct {
	Member bool

	// Outputs.
	Dist int // distance to nearest member (-1 if none exist)
	Src  int // its id (-1 if none)

	pending bool
	started bool

	tx, rx msgNear
}

// NewMinFloodNode builds the program for one node.
func NewMinFloodNode(member bool) *MinFloodNode {
	return &MinFloodNode{Member: member, Dist: -1, Src: -1}
}

// FloodMembers is the Reset params of a min-flood session: the membership
// flags of the next execution.
type FloodMembers struct{ Members []bool }

// ResetNode implements Resettable.
func (m *MinFloodNode) ResetNode(v int, params any) {
	switch p := params.(type) {
	case nil:
	case FloodMembers:
		m.Member = p.Members[v]
	default:
		badResetParams("MinFloodNode", params)
	}
	m.Dist, m.Src = -1, -1
	m.pending = false
	m.started = false
}

// Send implements Node.
func (m *MinFloodNode) Send(env *Env, out *Outbox) {
	if !m.started {
		m.started = true
		if m.Member {
			m.Dist, m.Src = 0, env.ID
			m.pending = true
		}
	}
	if !m.pending {
		return
	}
	m.pending = false
	m.tx = msgNear{Dist: m.Dist + 1, Src: m.Src}
	out.Broadcast(env.Neighbors, &m.tx)
}

// Receive implements Node.
func (m *MinFloodNode) Receive(env *Env, inbox []Inbound) {
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != KindNear || in.Decode(env, &m.rx) != nil {
			continue
		}
		p := m.rx
		if m.Dist == -1 || p.Dist < m.Dist || (p.Dist == m.Dist && p.Src < m.Src) {
			m.Dist, m.Src = p.Dist, p.Src
			m.pending = true
		}
	}
}

// Done implements Node.
func (m *MinFloodNode) Done() bool { return m.started && !m.pending }

// NextWake implements Scheduled: every node runs round 1 (members seed the
// flood, everyone flips started); afterwards only improvements — which
// arrive as messages — are re-broadcast.
func (m *MinFloodNode) NextWake(env *Env, round int) int {
	if !m.started || m.pending {
		return round + 1
	}
	return NeverWake
}

// StateBits implements StateSizer.
func (m *MinFloodNode) StateBits() int { return 2 * 64 }

// ConvergecastSumNode aggregates the sum of per-node values at the root;
// used for distributed counting (|S| in Figure 3 Step 1, rank counts during
// the selection of R).
type ConvergecastSumNode struct {
	Parent   int
	Children []int
	Value    int

	Sum int // output at the root

	received int
	sent     bool

	tx, rx msgSum
}

// NewConvergecastSumNode builds the program for one node.
func NewConvergecastSumNode(parent int, children []int, value int) *ConvergecastSumNode {
	return &ConvergecastSumNode{Parent: parent, Children: append([]int(nil), children...), Value: value, Sum: value}
}

// SumInputs is the Reset params of a sum-convergecast session: the
// per-vertex input values of the next execution.
type SumInputs struct{ Values []int }

// ResetNode implements Resettable.
func (c *ConvergecastSumNode) ResetNode(v int, params any) {
	switch p := params.(type) {
	case nil:
	case SumInputs:
		c.Value = p.Values[v]
	default:
		badResetParams("ConvergecastSumNode", params)
	}
	c.Sum = c.Value
	c.received = 0
	c.sent = false
}

// Send implements Node.
func (c *ConvergecastSumNode) Send(env *Env, out *Outbox) {
	if c.sent || c.received < len(c.Children) {
		return
	}
	c.sent = true
	if c.Parent < 0 {
		return
	}
	c.tx.Sum = c.Sum
	out.Put(c.Parent, &c.tx)
}

// Receive implements Node.
func (c *ConvergecastSumNode) Receive(env *Env, inbox []Inbound) {
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != KindSum || in.Decode(env, &c.rx) != nil {
			continue
		}
		c.received++
		c.Sum += c.rx.Sum
	}
}

// Done implements Node.
func (c *ConvergecastSumNode) Done() bool { return c.sent }

// NextWake implements Scheduled: like ConvergecastMaxNode — transmit once,
// as soon as every child has reported.
func (c *ConvergecastSumNode) NextWake(env *Env, round int) int {
	if c.sent {
		return NeverWake
	}
	if c.received >= len(c.Children) {
		return round + 1
	}
	return NeverWake
}

// StateBits implements StateSizer.
func (c *ConvergecastSumNode) StateBits() int { return 2 * 64 }

// SSPNode runs the pipelined multi-source BFS of [HPRW14]/[LP13]: every
// node learns its distance to each of the k ranked sources. Each node
// forwards at most one new (source, distance) pair per round, smallest
// (distance, source) first; the standard pipelining argument delivers all
// pairs within k + ecc rounds. Per-node memory is O(k log n) bits — this
// is the part of the 3/2-approximation that the paper notes requires
// polynomial classical memory (the quantum phase does not).
type SSPNode struct {
	Rank     int // source rank in [0,k), or -1
	Sources  int // k
	Duration int

	Dist map[int]int // output: source rank -> distance

	queue    []msgPair // pending pairs, kept sorted by (Dist, Src)
	finished bool

	tx, rx msgPair
}

// NewSSPNode builds the program for one node; rank is -1 for non-sources.
func NewSSPNode(rank, sources, duration int) *SSPNode {
	n := &SSPNode{Rank: rank, Sources: sources, Duration: duration, Dist: map[int]int{}}
	if rank >= 0 {
		n.Dist[rank] = 0
		n.queue = append(n.queue, msgPair{Src: rank, Dist: 0})
	}
	return n
}

// SSPRanks is the Reset params of a multi-source BFS session: the
// per-vertex source rank (-1 for non-sources) of the next execution.
type SSPRanks struct{ Ranks []int }

// ResetNode implements Resettable. The Dist map is dropped, not cleared:
// the previous run's output escapes into the SourceMax phase, and a session
// must never mutate results it already handed out.
func (s *SSPNode) ResetNode(v int, params any) {
	switch p := params.(type) {
	case nil:
	case SSPRanks:
		s.Rank = p.Ranks[v]
	default:
		badResetParams("SSPNode", params)
	}
	s.Dist = map[int]int{}
	s.queue = s.queue[:0]
	s.finished = false
	if s.Rank >= 0 {
		s.Dist[s.Rank] = 0
		s.queue = append(s.queue, msgPair{Src: s.Rank, Dist: 0})
	}
}

// Send implements Node.
func (s *SSPNode) Send(env *Env, out *Outbox) {
	if len(s.queue) == 0 {
		return
	}
	p := s.queue[0]
	s.queue = s.queue[1:]
	s.tx = msgPair{Src: p.Src, Dist: p.Dist + 1}
	out.Broadcast(env.Neighbors, &s.tx)
}

// Receive implements Node.
func (s *SSPNode) Receive(env *Env, inbox []Inbound) {
	updated := false
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != KindPair || in.Decode(env, &s.rx) != nil {
			continue
		}
		p := s.rx
		if d, seen := s.Dist[p.Src]; !seen || p.Dist < d {
			s.Dist[p.Src] = p.Dist
			s.enqueue(p)
			updated = true
		}
	}
	if updated {
		sort.Slice(s.queue, func(i, j int) bool {
			if s.queue[i].Dist != s.queue[j].Dist {
				return s.queue[i].Dist < s.queue[j].Dist
			}
			return s.queue[i].Src < s.queue[j].Src
		})
	}
	if env.Round >= s.Duration {
		s.finished = true
		s.queue = nil
	}
}

func (s *SSPNode) enqueue(p msgPair) {
	// Drop any stale queued pair for the same source.
	for i := range s.queue {
		if s.queue[i].Src == p.Src {
			s.queue[i] = p
			return
		}
	}
	s.queue = append(s.queue, p)
}

// Done implements Node.
func (s *SSPNode) Done() bool { return s.finished }

// NextWake implements Scheduled: a node transmits while its pair queue is
// non-empty (sources start in round 1) and finishes at the Duration timer;
// new pairs arrive as messages.
func (s *SSPNode) NextWake(env *Env, round int) int {
	if s.finished {
		return NeverWake
	}
	if len(s.queue) > 0 {
		return round + 1
	}
	if s.Duration > round {
		return s.Duration
	}
	return round + 1
}

// SourceMaxNode convergecasts, for each ranked source, the maximum over all
// vertices of the source's distance — i.e. ecc(source) — to the tree root,
// pipelined one source per round: a node at depth k transmits source i's
// subtree maximum at relative round (d - k) + i + 1. Duration d + sources +
// 2 rounds, one O(log n)-bit message per tree edge per round.
type SourceMaxNode struct {
	Parent   int
	Children []int
	Depth    int
	D        int // tree height bound used for the schedule
	Sources  int
	Dist     map[int]int // this node's distance to each source

	Max map[int]int // per-source subtree max (output at root)

	finished bool

	tx, rx msgSrcMax
}

// NewSourceMaxNode builds the program for one node.
func NewSourceMaxNode(parent int, children []int, depth, d, sources int, dist map[int]int) *SourceMaxNode {
	m := &SourceMaxNode{
		Parent:   parent,
		Children: append([]int(nil), children...),
		Depth:    depth,
		D:        d,
		Sources:  sources,
		Dist:     dist,
		Max:      make(map[int]int, sources),
	}
	for src, dd := range dist {
		m.Max[src] = dd
	}
	return m
}

// SourceDists is the Reset params of a per-source max-convergecast session:
// Dists[v] is vertex v's source-distance map for the next execution.
type SourceDists struct{ Dists []map[int]int }

// ResetNode implements Resettable. The Max map is rebuilt (the previous
// run's root output may have escaped to the caller).
func (s *SourceMaxNode) ResetNode(v int, params any) {
	switch p := params.(type) {
	case nil:
	case SourceDists:
		s.Dist = p.Dists[v]
	default:
		badResetParams("SourceMaxNode", params)
	}
	s.Max = make(map[int]int, s.Sources)
	for src, dd := range s.Dist {
		s.Max[src] = dd
	}
	s.finished = false
}

// Send implements Node.
func (s *SourceMaxNode) Send(env *Env, out *Outbox) {
	if s.Parent < 0 {
		return
	}
	// Relative round r transmits source i = r - (D - depth) - 1.
	i := env.Round - (s.D - s.Depth) - 1
	if i < 0 || i >= s.Sources {
		return
	}
	s.tx = msgSrcMax{Src: i, Max: s.Max[i]}
	out.Put(s.Parent, &s.tx)
}

// Receive implements Node.
func (s *SourceMaxNode) Receive(env *Env, inbox []Inbound) {
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != KindSrcMax || in.Decode(env, &s.rx) != nil {
			continue
		}
		if s.rx.Max > s.Max[s.rx.Src] {
			s.Max[s.rx.Src] = s.rx.Max
		}
	}
	if env.Round >= s.D+s.Sources+1 {
		s.finished = true
	}
}

// Done implements Node.
func (s *SourceMaxNode) Done() bool { return s.finished }

// NextWake implements Scheduled: a non-root node transmits in every round
// of its pipelined window [D-Depth+1, D-Depth+Sources]; everyone finishes
// at the D+Sources+1 timer. Subtree maxima arrive as messages.
func (s *SourceMaxNode) NextWake(env *Env, round int) int {
	if s.finished {
		return NeverWake
	}
	end := s.D + s.Sources + 1 // the finished timer
	if s.Parent >= 0 {
		first := s.D - s.Depth + 1
		last := s.D - s.Depth + s.Sources
		if round+1 >= first && round+1 <= last {
			return round + 1
		}
		if round+1 < first && first < end {
			return first
		}
	}
	if end > round {
		return end
	}
	return round + 1
}
