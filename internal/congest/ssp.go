package congest

import "sort"

// Programs used by the 3/2-approximation preparation (Figure 3 of the
// paper, following Algorithm 1 of [HPRW14]): nearest-member flooding,
// convergecast sums for distributed counting, pipelined multi-source
// shortest paths from the set R, and the pipelined per-source maximum
// convergecast that turns those distances into eccentricities.

type (
	// msgNear carries (distance to nearest member, member id).
	msgNear struct {
		Dist int
		Src  int
	}
	// msgSum carries a partial sum up the tree.
	msgSum struct{ Sum int }
	// msgPair is one (source rank, distance) pair of the pipelined
	// multi-source BFS.
	msgPair struct {
		Src  int
		Dist int
	}
	// msgSrcMax carries the subtree maximum for one source rank.
	msgSrcMax struct {
		Src int
		Max int
	}
)

// MinFloodNode computes, at every node, the distance to the nearest member
// of a vertex set and the id of that member (the p(v) of Figure 3 Step 2).
// Members start a wave at distance 0; nodes re-broadcast whenever their
// best (distance, id) improves. O(D) rounds, one message per edge per
// round.
type MinFloodNode struct {
	Member bool

	// Outputs.
	Dist int // distance to nearest member (-1 if none exist)
	Src  int // its id (-1 if none)

	pending bool
	started bool
}

// NewMinFloodNode builds the program for one node.
func NewMinFloodNode(member bool) *MinFloodNode {
	return &MinFloodNode{Member: member, Dist: -1, Src: -1}
}

// Send implements Node.
func (m *MinFloodNode) Send(env *Env) []Outbound {
	if !m.started {
		m.started = true
		if m.Member {
			m.Dist, m.Src = 0, env.ID
			m.pending = true
		}
	}
	if !m.pending {
		return nil
	}
	m.pending = false
	bits := 2 * BitsForID(env.N)
	out := make([]Outbound, 0, len(env.Neighbors))
	for _, nb := range env.Neighbors {
		out = append(out, Outbound{To: nb, Payload: msgNear{Dist: m.Dist + 1, Src: m.Src}, Bits: bits})
	}
	return out
}

// Receive implements Node.
func (m *MinFloodNode) Receive(env *Env, inbox []Inbound) {
	for _, in := range inbox {
		p, ok := in.Payload.(msgNear)
		if !ok {
			continue
		}
		if m.Dist == -1 || p.Dist < m.Dist || (p.Dist == m.Dist && p.Src < m.Src) {
			m.Dist, m.Src = p.Dist, p.Src
			m.pending = true
		}
	}
}

// Done implements Node.
func (m *MinFloodNode) Done() bool { return m.started && !m.pending }

// StateBits implements StateSizer.
func (m *MinFloodNode) StateBits() int { return 2 * 64 }

// ConvergecastSumNode aggregates the sum of per-node values at the root;
// used for distributed counting (|S| in Figure 3 Step 1, rank counts during
// the selection of R).
type ConvergecastSumNode struct {
	Parent   int
	Children []int
	Value    int

	Sum int // output at the root

	received int
	sent     bool
}

// NewConvergecastSumNode builds the program for one node.
func NewConvergecastSumNode(parent int, children []int, value int) *ConvergecastSumNode {
	return &ConvergecastSumNode{Parent: parent, Children: append([]int(nil), children...), Value: value, Sum: value}
}

// Send implements Node.
func (c *ConvergecastSumNode) Send(env *Env) []Outbound {
	if c.sent || c.received < len(c.Children) {
		return nil
	}
	c.sent = true
	if c.Parent < 0 {
		return nil
	}
	return []Outbound{{To: c.Parent, Payload: msgSum{Sum: c.Sum}, Bits: 2 * BitsForID(env.N)}}
}

// Receive implements Node.
func (c *ConvergecastSumNode) Receive(env *Env, inbox []Inbound) {
	for _, in := range inbox {
		if p, ok := in.Payload.(msgSum); ok {
			c.received++
			c.Sum += p.Sum
		}
	}
}

// Done implements Node.
func (c *ConvergecastSumNode) Done() bool { return c.sent }

// StateBits implements StateSizer.
func (c *ConvergecastSumNode) StateBits() int { return 2 * 64 }

// SSPNode runs the pipelined multi-source BFS of [HPRW14]/[LP13]: every
// node learns its distance to each of the k ranked sources. Each node
// forwards at most one new (source, distance) pair per round, smallest
// (distance, source) first; the standard pipelining argument delivers all
// pairs within k + ecc rounds. Per-node memory is O(k log n) bits — this
// is the part of the 3/2-approximation that the paper notes requires
// polynomial classical memory (the quantum phase does not).
type SSPNode struct {
	Rank     int // source rank in [0,k), or -1
	Sources  int // k
	Duration int

	Dist map[int]int // output: source rank -> distance

	queue    []msgPair // pending pairs, kept sorted by (Dist, Src)
	finished bool
}

// NewSSPNode builds the program for one node; rank is -1 for non-sources.
func NewSSPNode(rank, sources, duration int) *SSPNode {
	n := &SSPNode{Rank: rank, Sources: sources, Duration: duration, Dist: map[int]int{}}
	if rank >= 0 {
		n.Dist[rank] = 0
		n.queue = append(n.queue, msgPair{Src: rank, Dist: 0})
	}
	return n
}

// Send implements Node.
func (s *SSPNode) Send(env *Env) []Outbound {
	if len(s.queue) == 0 {
		return nil
	}
	p := s.queue[0]
	s.queue = s.queue[1:]
	bits := 2 * BitsForID(2*env.N)
	out := make([]Outbound, 0, len(env.Neighbors))
	for _, nb := range env.Neighbors {
		out = append(out, Outbound{To: nb, Payload: msgPair{Src: p.Src, Dist: p.Dist + 1}, Bits: bits})
	}
	return out
}

// Receive implements Node.
func (s *SSPNode) Receive(env *Env, inbox []Inbound) {
	updated := false
	for _, in := range inbox {
		p, ok := in.Payload.(msgPair)
		if !ok {
			continue
		}
		if d, seen := s.Dist[p.Src]; !seen || p.Dist < d {
			s.Dist[p.Src] = p.Dist
			s.enqueue(p)
			updated = true
		}
	}
	if updated {
		sort.Slice(s.queue, func(i, j int) bool {
			if s.queue[i].Dist != s.queue[j].Dist {
				return s.queue[i].Dist < s.queue[j].Dist
			}
			return s.queue[i].Src < s.queue[j].Src
		})
	}
	if env.Round >= s.Duration {
		s.finished = true
		s.queue = nil
	}
}

func (s *SSPNode) enqueue(p msgPair) {
	// Drop any stale queued pair for the same source.
	for i := range s.queue {
		if s.queue[i].Src == p.Src {
			s.queue[i] = p
			return
		}
	}
	s.queue = append(s.queue, p)
}

// Done implements Node.
func (s *SSPNode) Done() bool { return s.finished }

// SourceMaxNode convergecasts, for each ranked source, the maximum over all
// vertices of the source's distance — i.e. ecc(source) — to the tree root,
// pipelined one source per round: a node at depth k transmits source i's
// subtree maximum at relative round (d - k) + i + 1. Duration d + sources +
// 2 rounds, one O(log n)-bit message per tree edge per round.
type SourceMaxNode struct {
	Parent   int
	Children []int
	Depth    int
	D        int // tree height bound used for the schedule
	Sources  int
	Dist     map[int]int // this node's distance to each source

	Max map[int]int // per-source subtree max (output at root)

	finished bool
}

// NewSourceMaxNode builds the program for one node.
func NewSourceMaxNode(parent int, children []int, depth, d, sources int, dist map[int]int) *SourceMaxNode {
	m := &SourceMaxNode{
		Parent:   parent,
		Children: append([]int(nil), children...),
		Depth:    depth,
		D:        d,
		Sources:  sources,
		Dist:     dist,
		Max:      make(map[int]int, sources),
	}
	for src, dd := range dist {
		m.Max[src] = dd
	}
	return m
}

// Send implements Node.
func (s *SourceMaxNode) Send(env *Env) []Outbound {
	if s.Parent < 0 {
		return nil
	}
	// Relative round r transmits source i = r - (D - depth) - 1.
	i := env.Round - (s.D - s.Depth) - 1
	if i < 0 || i >= s.Sources {
		return nil
	}
	return []Outbound{{
		To:      s.Parent,
		Payload: msgSrcMax{Src: i, Max: s.Max[i]},
		Bits:    2 * BitsForID(2*env.N),
	}}
}

// Receive implements Node.
func (s *SourceMaxNode) Receive(env *Env, inbox []Inbound) {
	for _, in := range inbox {
		if p, ok := in.Payload.(msgSrcMax); ok {
			if p.Max > s.Max[p.Src] {
				s.Max[p.Src] = p.Max
			}
		}
	}
	if env.Round >= s.D+s.Sources+1 {
		s.finished = true
	}
}

// Done implements Node.
func (s *SourceMaxNode) Done() bool { return s.finished }
