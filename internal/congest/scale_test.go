package congest

import (
	"os"
	"runtime"
	"testing"
	"time"

	"qcongest/internal/graph"
)

// capFloodNode is the 10M-vertex capacity workload: a BFS wave from the
// corner, truncated at a deadline round so the test exercises frontier
// growth, a bulk timer wake (every unreached vertex fires at the deadline
// — the worst case for wake-bucket drains) and clean quiescence, without
// paying for the full ~6300-round flood.
type capFloodNode struct {
	deadline int
	dist     int // -1 until reached
	pend     bool
	done     bool
	tx, rx   msgActivate
}

func (f *capFloodNode) Send(env *Env, out *Outbox) {
	if env.Round > f.deadline {
		return
	}
	if env.ID == 0 && f.dist == -1 {
		f.dist = 0
		f.pend = true
	}
	if !f.pend {
		return
	}
	f.pend = false
	f.tx.Dist = f.dist + 1
	out.Broadcast(env.Neighbors, &f.tx)
}

func (f *capFloodNode) Receive(env *Env, inbox []Inbound) {
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != KindActivate || in.Decode(env, &f.rx) != nil {
			continue
		}
		if f.dist == -1 || f.rx.Dist < f.dist {
			f.dist = f.rx.Dist
			f.pend = true
		}
	}
	if env.Round >= f.deadline {
		f.pend = false
		f.done = true
	}
}

func (f *capFloodNode) Done() bool     { return f.done }
func (f *capFloodNode) StateBits() int { return 3 * 64 }
func (f *capFloodNode) NextWake(env *Env, round int) int {
	if f.done {
		return NeverWake
	}
	if env.ID == 0 && f.dist == -1 {
		return 1
	}
	if f.pend {
		return round + 1
	}
	return f.deadline // deadline timer: everyone quiesces together
}

// TestCapacity10M is the scale smoke behind ROADMAP item 4: a 10M-vertex
// grid streams into CSR form, becomes a Topology without ever
// materializing a *graph.Graph, and runs 50 frontier rounds of a truncated
// BFS flood whose result is verified against the packed-oracle BFS for
// every vertex. Build time and peak heap are asserted, so a regression
// that reintroduces O(n) per-vertex allocation or frontier bookkeeping
// fails loudly. ~4 GB of memory and tens of seconds, so it is opt-in:
//
//	QCONGEST_CAPACITY_10M=1 go test -run TestCapacity10M -timeout 20m ./internal/congest
func TestCapacity10M(t *testing.T) {
	if os.Getenv("QCONGEST_CAPACITY_10M") == "" {
		t.Skip("set QCONGEST_CAPACITY_10M=1 to run the 10M-vertex capacity test")
	}
	const (
		side     = 3163 // 3163^2 = 10,004,569 vertices
		deadline = 50
	)
	n := side * side

	start := time.Now()
	c, err := graph.BuildCSRFromStream(n, graph.GridEdges(side, side))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := NewTopologyFromCSR(c)
	if err != nil {
		t.Fatal(err)
	}
	buildT := time.Since(start)
	t.Logf("built %d-vertex topology in %v", n, buildT)
	if buildT > 30*time.Second {
		t.Errorf("topology build took %v, want <= 30s", buildT)
	}

	dist := make([]int32, n)
	queue := make([]int32, n)
	if reached, _ := c.BFSInto(0, dist, queue); reached != n {
		t.Fatalf("oracle BFS reached %d of %d vertices", reached, n)
	}

	// Two workers regardless of GOMAXPROCS: exercises the sharded frontier
	// paths while staying within CI-runner memory.
	nw := NewNetworkOn(topo, func(v int) Node { return &capFloodNode{deadline: deadline, dist: -1} },
		WithScheduler(SchedulerFrontier), WithWorkers(2))
	start = time.Now()
	if err := nw.Run(deadline + 8); err != nil {
		t.Fatal(err)
	}
	runT := time.Since(start)
	m := nw.Metrics()
	t.Logf("flood: rounds=%d messages=%d in %v (%.0f rounds/s)",
		m.Rounds, m.Messages, runT, float64(m.Rounds)/runT.Seconds())
	if m.Rounds != deadline {
		t.Errorf("Rounds = %d, want %d (deadline quiescence)", m.Rounds, deadline)
	}

	// Every vertex the oracle puts within the deadline must have learned
	// its exact distance; everything beyond must still be unreached.
	bad := 0
	for v := 0; v < n; v++ {
		f := nw.Node(v).(*capFloodNode)
		want := int(dist[v])
		if want > deadline {
			want = -1
		}
		if f.dist != want {
			bad++
		}
	}
	if bad != 0 {
		t.Fatalf("truncated flood disagrees with the oracle at %d vertices", bad)
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("heap after run: %.2f GB", float64(ms.HeapAlloc)/(1<<30))
	if ms.HeapAlloc > 8<<30 {
		t.Errorf("HeapAlloc = %.2f GB, want <= 8 GB for the 10M capacity envelope",
			float64(ms.HeapAlloc)/(1<<30))
	}
}
