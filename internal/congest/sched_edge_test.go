package congest

import (
	"fmt"
	"strings"
	"testing"

	"qcongest/internal/graph"
)

// This file pins the frontier scheduler's wake-registration edge cases to
// the dense engine: duplicate NextWake registrations for the same
// (round, vertex), registrations that are later superseded (leaving stale
// bucket entries and possibly a phantom wake round the frontier must skip
// like any idle round), wakes scheduled past the run's round budget, and
// the all-quiescent network that goes straight to timeout. Every case is
// checked bit-identical between Dense and Frontier across workers {1,2,8}.

// dupWakeNode re-registers the same target round on every execution:
// vertex 0 pulses its neighbors for a few rounds, and every receive (plus
// the initial scan) registers the identical (target, vertex) wake again.
// The scheduler must coalesce the duplicates — one execution at target,
// not one per registration.
type dupWakeNode struct {
	pulses int // vertex 0 broadcasts at rounds 1..pulses
	target int // the wake round everyone keeps re-registering
	seen   int
	done   bool
	tx     msgChild
}

func (d *dupWakeNode) Send(env *Env, out *Outbox) {
	if env.ID == 0 && env.Round <= d.pulses {
		out.Broadcast(env.Neighbors, &d.tx)
	}
}

func (d *dupWakeNode) Receive(env *Env, inbox []Inbound) {
	d.seen += len(inbox)
	if env.Round >= d.target {
		d.done = true
	}
}

func (d *dupWakeNode) Done() bool     { return d.done }
func (d *dupWakeNode) StateBits() int { return 64 + d.seen }
func (d *dupWakeNode) NextWake(env *Env, round int) int {
	if d.done {
		return NeverWake
	}
	if env.ID == 0 && round < d.pulses {
		return round + 1
	}
	if d.target > round {
		return d.target
	}
	return round + 1
}

func (d *dupWakeNode) ResetNode(v int, params any) {
	if params != nil {
		badResetParams("dupWakeNode", params)
	}
	d.seen, d.done = 0, false
}

// flipWakeNode alternates its registration between two future rounds on
// every execution, so earlier registrations are superseded: the scheduler
// is left holding stale bucket entries for rounds nobody wants anymore.
// On Path(2) the near round becomes a pure phantom — every registration
// for it was retracted — and the frontier must account the phantom
// exactly like a dense empty round.
type flipWakeNode struct {
	pulses    int // vertex 0 broadcasts at rounds 1..pulses
	near, far int // the two alternating wake targets, near < far
	seen      int
	done      bool
	tx        msgChild
}

func (f *flipWakeNode) Send(env *Env, out *Outbox) {
	if env.ID == 0 && env.Round <= f.pulses {
		out.Broadcast(env.Neighbors, &f.tx)
	}
}

func (f *flipWakeNode) Receive(env *Env, inbox []Inbound) {
	f.seen += len(inbox)
	if env.Round >= f.far {
		f.done = true
	}
}

func (f *flipWakeNode) Done() bool     { return f.done }
func (f *flipWakeNode) StateBits() int { return 64 + f.seen }
func (f *flipWakeNode) NextWake(env *Env, round int) int {
	if f.done {
		return NeverWake
	}
	if env.ID == 0 {
		if round < f.pulses {
			return round + 1
		}
		return f.far
	}
	if round%2 == 0 {
		if f.near > round {
			return f.near
		}
		return round + 1
	}
	return f.far
}

func (f *flipWakeNode) ResetNode(v int, params any) {
	if params != nil {
		badResetParams("flipWakeNode", params)
	}
	f.seen, f.done = 0, false
}

// sleeperNode never wakes, never sends and never finishes: the network is
// quiescent with no pending wakes at all, so the frontier scheduler skips
// straight from round 1 to the timeout.
type sleeperNode struct{}

func (s *sleeperNode) Send(env *Env, out *Outbox)        {}
func (s *sleeperNode) Receive(env *Env, inbox []Inbound) {}
func (s *sleeperNode) Done() bool                        { return false }
func (s *sleeperNode) StateBits() int                    { return 64 }
func (s *sleeperNode) NextWake(env *Env, round int) int  { return NeverWake }

func wakeEdgeFingerprint(nw *Network, n int) string {
	var sb strings.Builder
	for v := 0; v < n; v++ {
		switch p := nw.Node(v).(type) {
		case *dupWakeNode:
			fmt.Fprintf(&sb, "%d/%v;", p.seen, p.done)
		case *flipWakeNode:
			fmt.Fprintf(&sb, "%d/%v;", p.seen, p.done)
		case *sleeperNode:
			sb.WriteString("z;")
		}
	}
	return sb.String()
}

// TestSchedulerWakeEdgeCases runs each edge-case program on Dense and
// Frontier (workers 1, 2, 8) and requires identical outputs, Metrics and
// errors — including the timeout rows, where the error string must match
// byte for byte.
func TestSchedulerWakeEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		g         *graph.Graph
		make      func(v int) Node
		maxRounds int
		wantErr   bool
	}{
		{
			// Duplicate (round, vertex) registrations: the initial scan
			// registers target for every vertex, then every pulse receive
			// re-registers the same target for vertex 1.
			name: "duplicate-registrations", g: graph.Path(40),
			make:      func(v int) Node { return &dupWakeNode{pulses: 4, target: 10} },
			maxRounds: 30,
		},
		{
			// Superseded registrations leave stale entries for the near
			// round while real wakes still exist there (other vertices).
			name: "superseded-registrations", g: graph.Path(40),
			make:      func(v int) Node { return &flipWakeNode{pulses: 4, near: 8, far: 11} },
			maxRounds: 30,
		},
		{
			// Path(2): every registration for the near round is retracted,
			// making it a pure phantom wake round the frontier drains
			// empty and must skip with dense-identical accounting.
			name: "phantom-wake-round", g: graph.Path(2),
			make:      func(v int) Node { return &flipWakeNode{pulses: 4, near: 8, far: 11} },
			maxRounds: 30,
		},
		{
			// Every wake is registered past the round budget: the frontier
			// sees an empty horizon and must time out exactly like the
			// dense engine grinding through empty rounds.
			name: "wakes-past-max-rounds", g: graph.Path(40),
			make:      func(v int) Node { return &dupWakeNode{pulses: 0, target: 100} },
			maxRounds: 12, wantErr: true,
		},
		{
			// No wakes at all, nobody Done: all-quiescent gap straight to
			// the timeout.
			name: "quiescent-to-timeout", g: graph.Path(40),
			make:      func(v int) Node { return &sleeperNode{} },
			maxRounds: 15, wantErr: true,
		},
	}
	for _, tc := range cases {
		n := tc.g.N()
		run := func(sched Scheduler, workers int) (string, Metrics, error) {
			nw, err := NewNetwork(tc.g, tc.make, WithScheduler(sched), WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			runErr := nw.Run(tc.maxRounds)
			return wakeEdgeFingerprint(nw, n), nw.Metrics(), runErr
		}
		wantOut, wantM, wantErr := run(SchedulerDense, 1)
		if (wantErr != nil) != tc.wantErr {
			t.Fatalf("%s: dense err = %v, want error %v", tc.name, wantErr, tc.wantErr)
		}
		for _, workers := range []int{1, 2, 8} {
			gotOut, gotM, gotErr := run(SchedulerFrontier, workers)
			if gotOut != wantOut {
				t.Errorf("%s workers %d: frontier outputs differ from dense", tc.name, workers)
			}
			if gotM != wantM {
				t.Errorf("%s workers %d: frontier Metrics = %+v, dense %+v", tc.name, workers, gotM, wantM)
			}
			if (gotErr == nil) != (wantErr == nil) ||
				(gotErr != nil && gotErr.Error() != wantErr.Error()) {
				t.Errorf("%s workers %d: frontier err %v, dense err %v", tc.name, workers, gotErr, wantErr)
			}
		}
	}
}

// TestSessionWakeArenaSteadyState is the wake-structure growth regression
// test: a persistent Session at non-trivial n, run repeatedly, must reach
// a steady state where Reset+Run allocates nothing — the registration
// arenas, bucket heaps and bitsets are all reused across re-runs rather
// than regrown.
func TestSessionWakeArenaSteadyState(t *testing.T) {
	topo, err := NewTopology(graph.Path(4096))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2} {
		sess := NewSession(topo, func(v int) Node { return &dupWakeNode{pulses: 4, target: 24} },
			WithScheduler(SchedulerFrontier), WithWorkers(workers))
		runOnce := func() {
			if err := sess.Reset(nil); err != nil {
				t.Fatal(err)
			}
			if err := sess.Run(40); err != nil {
				t.Fatal(err)
			}
		}
		runOnce() // warm: first run grows arenas to their high-water marks
		runOnce()
		if allocs := testing.AllocsPerRun(5, runOnce); allocs > 0 {
			t.Errorf("workers %d: %.1f allocs per session re-run, want 0 (wake arenas must be reused)", workers, allocs)
		}
		sess.Close()
	}
}
