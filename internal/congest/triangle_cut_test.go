package congest

// Unit tests of the triangle-probe and tree-cut programs at the congest
// layer: flags and cut weights are cross-checked against direct adjacency
// computations, and the reusable sessions against their own first runs
// (clone independence, reset reuse).

import (
	"fmt"
	"reflect"
	"testing"

	"qcongest/internal/graph"
)

func triangleFixtures(t *testing.T) []*graph.Graph {
	t.Helper()
	k4 := graph.New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			k4.AddEdge(u, v)
		}
	}
	gs := []*graph.Graph{
		graph.Path(8),           // triangle-free
		graph.RandomTree(11, 5), // triangle-free
		k4,                      // every vertex on a triangle
		graph.RandomConnected(12, 0.4, 3),
		graph.RandomConnected(15, 0.25, 8),
		graph.WithWeights(graph.RandomConnected(10, 0.5, 2), 7, 4),
	}
	for i := 0; i < 6; i++ {
		gs = append(gs, graph.RandomConnected(9+i, 0.35, int64(50+i)))
	}
	return gs
}

func bruteFlags(g *graph.Graph) []bool {
	flags := make([]bool, g.N())
	for v := range flags {
		nbs := g.Neighbors(v)
		for i, a := range nbs {
			for _, b := range nbs[i+1:] {
				if g.HasEdge(a, b) {
					flags[v] = true
				}
			}
		}
	}
	return flags
}

func TestTriangleFlags(t *testing.T) {
	for gi, g := range triangleFixtures(t) {
		topo, err := NewTopology(g)
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		flags, m, err := TriangleFlagsOn(topo, WithStrictAccounting())
		if err != nil {
			t.Fatalf("graph %d: TriangleFlagsOn: %v", gi, err)
		}
		if want := bruteFlags(g); !reflect.DeepEqual(flags, want) {
			t.Errorf("graph %d: flags %v, want %v", gi, flags, want)
		}
		if m.Rounds < 1 {
			t.Errorf("graph %d: probe reported %d rounds", gi, m.Rounds)
		}
	}
}

func TestTriangleSessionEvalAndClone(t *testing.T) {
	g := graph.RandomConnected(13, 0.35, 6)
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	info, _, err := PreprocessOn(topo)
	if err != nil {
		t.Fatal(err)
	}
	flags, _, err := TriangleFlagsOn(topo)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTriangleSession(topo, info, flags, WithStrictAccounting())
	defer ts.Close()
	clone, err := ts.Clone()
	if err != nil {
		t.Fatal(err)
	}
	defer clone.Close()
	var baseRounds int
	for u := 0; u < g.N(); u++ {
		v, m, err := ts.Eval(u)
		if err != nil {
			t.Fatalf("Eval(%d): %v", u, err)
		}
		want := 0
		if flags[u] {
			want = 1
		}
		if v != want {
			t.Errorf("Eval(%d) = %d, want %d", u, v, want)
		}
		if u == 0 {
			baseRounds = m.Rounds
		} else if m.Rounds != baseRounds {
			t.Errorf("Eval(%d): %d rounds, want input-independent %d", u, m.Rounds, baseRounds)
		}
		cv, _, err := clone.Eval(u)
		if err != nil || cv != v {
			t.Errorf("clone.Eval(%d) = %d (err %v), want %d", u, cv, err, v)
		}
	}
}

// bruteCut computes the crossing weight of (subtree(root), rest) directly
// from the tree arrays and the adjacency relation.
func bruteCut(g *graph.Graph, info *PreInfo, root int) int {
	inside := make([]bool, g.N())
	for v := range inside {
		for u := v; u >= 0; u = info.Parent[u] {
			if u == root {
				inside[v] = true
				break
			}
		}
	}
	w := 0
	for v := range inside {
		for _, nb := range g.Neighbors(v) {
			if v < nb && inside[v] != inside[nb] {
				w += g.Weight(v, nb)
			}
		}
	}
	return w
}

func TestCutSessionEvalAndClone(t *testing.T) {
	for gi, g := range []*graph.Graph{
		graph.Path(9),
		graph.RandomTree(12, 7),
		graph.RandomConnected(14, 0.25, 4),
		graph.WithWeights(graph.RandomConnected(11, 0.3, 9), 8, 13),
		graph.WithWeights(graph.RandomTree(10, 2), 5, 21),
	} {
		t.Run(fmt.Sprintf("graph=%d", gi), func(t *testing.T) {
			topo, err := NewTopology(g)
			if err != nil {
				t.Fatal(err)
			}
			info, _, err := PreprocessOn(topo)
			if err != nil {
				t.Fatal(err)
			}
			cs := NewCutSession(topo, info, WithStrictAccounting())
			defer cs.Close()
			clone, err := cs.Clone()
			if err != nil {
				t.Fatal(err)
			}
			defer clone.Close()
			var baseRounds int
			first := true
			for u := 0; u < g.N(); u++ {
				if u == info.Leader {
					continue
				}
				got, m, err := cs.Eval(u)
				if err != nil {
					t.Fatalf("Eval(%d): %v", u, err)
				}
				if want := bruteCut(g, info, u); got != want {
					t.Errorf("Eval(%d) = %d, want %d", u, got, want)
				}
				if first {
					baseRounds, first = m.Rounds, false
				} else if m.Rounds != baseRounds {
					t.Errorf("Eval(%d): %d rounds, want input-independent %d", u, m.Rounds, baseRounds)
				}
				cv, _, err := clone.Eval(u)
				if err != nil || cv != got {
					t.Errorf("clone.Eval(%d) = %d (err %v), want %d", u, cv, err, got)
				}
			}
		})
	}
}

func TestTotalWeight(t *testing.T) {
	g := graph.Path(5) // 4 unit edges
	topo, err := NewTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	if w := topo.TotalWeight(); w != 4 {
		t.Errorf("unweighted path: TotalWeight = %d, want 4", w)
	}
	wg := graph.New(3)
	wg.AddWeightedEdge(0, 1, 5)
	wg.AddWeightedEdge(1, 2, 7)
	wtopo, err := NewTopology(wg)
	if err != nil {
		t.Fatal(err)
	}
	if w := wtopo.TotalWeight(); w != 12 {
		t.Errorf("weighted path: TotalWeight = %d, want 12", w)
	}
}

func TestNeighborIndex(t *testing.T) {
	nbs := []int{2, 5, 9, 14}
	for i, id := range nbs {
		if got := neighborIndex(nbs, id); got != i {
			t.Errorf("neighborIndex(%d) = %d, want %d", id, got, i)
		}
	}
	for _, id := range []int{0, 3, 15} {
		if got := neighborIndex(nbs, id); got != -1 {
			t.Errorf("neighborIndex(%d) = %d, want -1", id, got)
		}
	}
	if got := neighborIndex(nil, 3); got != -1 {
		t.Errorf("neighborIndex(nil, 3) = %d, want -1", got)
	}
}

func TestCutResetParamsPanic(t *testing.T) {
	for _, node := range []Node{NewCutMarkNode(-1, 2, 3), NewCutSumNode(-1, nil, 0, 9)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%T: bad Reset params did not panic", node)
				}
			}()
			node.(Resettable).ResetNode(0, "bogus")
		}()
	}
	if recovered := func() (r any) {
		defer func() { r = recover() }()
		NewTriangleProbeNode(3).ResetNode(0, 42)
		return nil
	}(); recovered == nil {
		t.Error("TriangleProbeNode: bad Reset params did not panic")
	}
}
