package graph

import (
	"strings"
	"testing"
)

func csrEqual(a, b *CSR) bool {
	if len(a.Offsets) != len(b.Offsets) || len(a.Targets) != len(b.Targets) {
		return false
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			return false
		}
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			return false
		}
	}
	return true
}

// TestStreamMatchesGraphBuild pins the two CSR build paths to each other:
// for every generator that has a stream twin, streaming must produce the
// exact arrays the Graph -> BuildCSR path produces.
func TestStreamMatchesGraphBuild(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		stream EdgeStream
		g      *Graph
	}{
		{"path-1", 1, PathEdges(1), Path(1)},
		{"path-2", 2, PathEdges(2), Path(2)},
		{"path-257", 257, PathEdges(257), Path(257)},
		{"grid-1x1", 1, GridEdges(1, 1), Grid(1, 1)},
		{"grid-1x9", 9, GridEdges(1, 9), Grid(1, 9)},
		{"grid-7x1", 7, GridEdges(7, 1), Grid(7, 1)},
		{"grid-17x23", 17 * 23, GridEdges(17, 23), Grid(17, 23)},
	}
	for _, tc := range cases {
		want, err := tc.g.BuildCSR()
		if err != nil {
			t.Fatalf("%s: BuildCSR: %v", tc.name, err)
		}
		got, err := BuildCSRFromStream(tc.n, tc.stream)
		if err != nil {
			t.Fatalf("%s: BuildCSRFromStream: %v", tc.name, err)
		}
		if !csrEqual(got, want) {
			t.Errorf("%s: streamed CSR differs from graph-built CSR", tc.name)
		}
	}
}

// TestStreamSortsUnorderedRows: a stream that emits edges in an order that
// leaves rows descending still yields a valid (ascending) CSR.
func TestStreamSortsUnorderedRows(t *testing.T) {
	n := 64
	reversedPath := func(emit func(u, v int)) {
		for v := n - 2; v >= 0; v-- {
			emit(v+1, v)
		}
	}
	got, err := BuildCSRFromStream(n, reversedPath)
	if err != nil {
		t.Fatalf("BuildCSRFromStream: %v", err)
	}
	want, _ := Path(n).BuildCSR()
	if !csrEqual(got, want) {
		t.Errorf("reversed path stream differs from Path CSR")
	}
}

func TestStreamValidation(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		stream EdgeStream
		want   string
	}{
		{"negative-n", -1, PathEdges(0), "negative"},
		{"out-of-range", 3, func(emit func(u, v int)) { emit(0, 3) }, "out of range"},
		{"negative-endpoint", 3, func(emit func(u, v int)) { emit(-1, 2) }, "out of range"},
		{"self-loop", 3, func(emit func(u, v int)) { emit(1, 1) }, "self-loop"},
		{"duplicate", 3, func(emit func(u, v int)) { emit(0, 1); emit(1, 0) }, "duplicate"},
	}
	for _, tc := range cases {
		_, err := BuildCSRFromStream(tc.n, tc.stream)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestStreamDetectsNondeterminism: a stream that emits different edges on
// its second run must be rejected, not silently mis-packed.
func TestStreamDetectsNondeterminism(t *testing.T) {
	run := 0
	flaky := func(emit func(u, v int)) {
		run++
		if run == 1 {
			emit(0, 1)
			emit(1, 2)
		} else {
			emit(0, 1)
			emit(0, 2) // row 0 overflows its counted degree
		}
	}
	if _, err := BuildCSRFromStream(3, flaky); err == nil ||
		!strings.Contains(err.Error(), "changed between passes") {
		t.Errorf("nondeterministic stream: err = %v, want 'changed between passes'", err)
	}
	run = 0
	short := func(emit func(u, v int)) {
		run++
		emit(0, 1)
		if run == 1 {
			emit(1, 2)
		}
	}
	if _, err := BuildCSRFromStream(3, short); err == nil ||
		!strings.Contains(err.Error(), "changed between passes") {
		t.Errorf("short second pass: err = %v, want 'changed between passes'", err)
	}
}

// TestStreamAllocationsLean: the whole point of the streamed builder — a
// constant number of allocations regardless of graph size.
func TestStreamAllocationsLean(t *testing.T) {
	side := 100
	var c *CSR
	allocs := testing.AllocsPerRun(3, func() {
		var err error
		c, err = BuildCSRFromStream(side*side, GridEdges(side, side))
		if err != nil {
			c = nil
		}
	})
	if c == nil {
		t.Fatal("streamed grid build failed")
	}
	if c.N() != side*side || c.M() != 2*side*(side-1) {
		t.Fatalf("streamed grid has %d vertices / %d edges", c.N(), c.M())
	}
	// deg/cursor + Offsets + Targets + CSR header + closure bookkeeping.
	if allocs > 16 {
		t.Errorf("%.0f allocations per streamed build, want O(1) total", allocs)
	}
}

// TestStreamBFSOracle: the streamed CSR is a working oracle — BFS distances
// on the streamed grid match the known grid metric.
func TestStreamBFSOracle(t *testing.T) {
	rows, cols := 13, 29
	c, err := BuildCSRFromStream(rows*cols, GridEdges(rows, cols))
	if err != nil {
		t.Fatalf("BuildCSRFromStream: %v", err)
	}
	n := rows * cols
	dist := make([]int32, n)
	queue := make([]int32, n)
	reached, ecc := c.BFSInto(0, dist, queue)
	if reached != n {
		t.Fatalf("BFS reached %d of %d vertices", reached, n)
	}
	if want := int32(rows + cols - 2); ecc != want {
		t.Errorf("ecc from corner = %d, want %d", ecc, want)
	}
	for v := 0; v < n; v++ {
		if want := int32(v/cols + v%cols); dist[v] != want {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
}
