package graph

// Weighted reference algorithms: the sequential oracles the distributed
// weighted distance programs (internal/congest) and the quantum suite
// (internal/core) are checked against. Two independent implementations are
// provided on purpose — per-source Dijkstra and all-pairs Floyd–Warshall —
// so the randomized cross-check tests can compare the distributed results
// against oracles that share no code.
//
// Conventions (mirroring the unweighted ones): the diameter and radius of a
// graph with fewer than two vertices are 0; all parameters return
// ErrDisconnected on disconnected graphs; unweighted graphs take the BFS
// fast path, so every weighted parameter degenerates to its unweighted
// counterpart when all weights are 1.

// Dijkstra returns the weighted distance from src to every vertex (-1 for
// unreachable vertices). On an unweighted graph it is exactly BFS.
func (g *Graph) Dijkstra(src int) []int {
	if g.wts == nil {
		dist, _ := g.BFS(src)
		return dist
	}
	g.ensureSorted()
	n := len(g.adj)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	// Binary heap of (dist, vertex), ordered by (dist, vertex) so the pop
	// order — and therefore the whole run — is deterministic.
	type item struct{ d, v int }
	heap := []item{{0, src}}
	less := func(a, b item) bool { return a.d < b.d || (a.d == b.d && a.v < b.v) }
	push := func(it item) {
		heap = append(heap, it)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	pop := func() item {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			next := i
			if l < last && less(heap[l], heap[next]) {
				next = l
			}
			if r < last && less(heap[r], heap[next]) {
				next = r
			}
			if next == i {
				break
			}
			heap[i], heap[next] = heap[next], heap[i]
			i = next
		}
		return top
	}
	for len(heap) > 0 {
		it := pop()
		if it.d > dist[it.v] {
			continue // stale entry
		}
		for i, u := range g.adj[it.v] {
			if nd := it.d + g.wts[it.v][i]; dist[u] == -1 || nd < dist[u] {
				dist[u] = nd
				push(item{nd, u})
			}
		}
	}
	return dist
}

// WeightedEccentricity returns max_v dist_w(src, v), or ErrDisconnected if
// some vertex is unreachable from src.
func (g *Graph) WeightedEccentricity(src int) (int, error) {
	ecc := 0
	for _, d := range g.Dijkstra(src) {
		if d == -1 {
			return 0, ErrDisconnected
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, nil
}

// WeightedDiameter returns max_u max_v dist_w(u, v) via n Dijkstra runs. The
// weighted diameter of a graph with fewer than two vertices is 0.
func (g *Graph) WeightedDiameter() (int, error) {
	diam := 0
	for v := range g.adj {
		ecc, err := g.WeightedEccentricity(v)
		if err != nil {
			return 0, err
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam, nil
}

// WeightedRadius returns min_u max_v dist_w(u, v). The weighted radius of a
// graph with fewer than two vertices is 0.
func (g *Graph) WeightedRadius() (int, error) {
	if len(g.adj) == 0 {
		return 0, nil
	}
	radius := -1
	for v := range g.adj {
		ecc, err := g.WeightedEccentricity(v)
		if err != nil {
			return 0, err
		}
		if radius == -1 || ecc < radius {
			radius = ecc
		}
	}
	return radius, nil
}

// WeightedAllEccentricities returns the weighted eccentricity of every
// vertex.
func (g *Graph) WeightedAllEccentricities() ([]int, error) {
	out := make([]int, len(g.adj))
	for v := range g.adj {
		ecc, err := g.WeightedEccentricity(v)
		if err != nil {
			return nil, err
		}
		out[v] = ecc
	}
	return out, nil
}

// FloydWarshall returns the full weighted all-pairs distance matrix, or
// ErrDisconnected if the graph is not connected. It is the code-independent
// oracle for Dijkstra and the distributed weighted programs: O(n^3) dynamic
// programming over an explicit matrix, no priority queue, no BFS.
func (g *Graph) FloydWarshall() ([][]int, error) {
	g.ensureSorted()
	n := len(g.adj)
	const inf = int(^uint(0) >> 2) // large enough that inf+inf does not overflow
	mat := make([][]int, n)
	for u := 0; u < n; u++ {
		row := make([]int, n)
		for v := range row {
			row[v] = inf
		}
		row[u] = 0
		for i, v := range g.adj[u] {
			w := 1
			if g.wts != nil {
				w = g.wts[u][i]
			}
			row[v] = w
		}
		mat[u] = row
	}
	for k := 0; k < n; k++ {
		for u := 0; u < n; u++ {
			viaK := mat[u][k]
			if viaK == inf {
				continue
			}
			for v := 0; v < n; v++ {
				if d := viaK + mat[k][v]; d < mat[u][v] {
					mat[u][v] = d
				}
			}
		}
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if mat[u][v] == inf {
				return nil, ErrDisconnected
			}
		}
	}
	return mat, nil
}
