package graph

// Compressed sparse row (CSR) adjacency: the packed, read-only form of a
// graph. Where Graph stores one slice per vertex (flexible during
// construction, pointer-heavy at scale), a CSR packs the whole adjacency
// structure into three flat int32 arrays —
//
//	Offsets : n+1 row offsets; row v is Targets[Offsets[v]:Offsets[v+1]]
//	Targets : 2m neighbor ids, ascending within each row
//	Weights : 2m edge weights aligned with Targets (nil when unweighted)
//
// — so a million-vertex network costs three allocations instead of
// millions, fits in a fraction of the memory, and scans with perfect
// locality. congest.Topology builds the same layout (with an int-typed
// target arena, since node programs address neighbors as int); this type is
// the compact reference form used by the scale tests, the metropolis
// example and any caller that wants an oracle over graphs too large for
// per-vertex slices.

import "fmt"

// CSR is the packed adjacency form of a simple undirected graph. All
// fields are read-only after BuildCSR.
type CSR struct {
	Offsets []int32 // len n+1
	Targets []int32 // len 2m, each row ascending
	Weights []int32 // aligned with Targets; nil for unweighted graphs
}

// BuildCSR packs the graph into CSR form (three allocations, one adjacency
// pass). Vertex count and total directed degree must fit in int32 — the
// same bound the engine's vertex ids already assume.
func (g *Graph) BuildCSR() (*CSR, error) {
	n := g.N()
	total := 2 * g.M()
	if int64(n)+1 > int64(1)<<31-1 || int64(total) > int64(1)<<31-1 {
		return nil, fmt.Errorf("graph: %d vertices / %d directed edges exceed the int32 CSR limit", n, total)
	}
	g.ensureSorted()
	c := &CSR{
		Offsets: make([]int32, n+1),
		Targets: make([]int32, total),
	}
	if g.wts != nil {
		c.Weights = make([]int32, total)
	}
	off := int32(0)
	for v := 0; v < n; v++ {
		c.Offsets[v] = off
		row := g.adj[v]
		for i := range row {
			c.Targets[off] = int32(row[i])
			if c.Weights != nil {
				w := g.wts[v][i]
				if int64(w) > int64(1)<<31-1 {
					return nil, fmt.Errorf("graph: edge weight %d exceeds the int32 CSR limit", w)
				}
				c.Weights[off] = int32(w)
			}
			off++
		}
	}
	c.Offsets[n] = off
	return c, nil
}

// N returns the number of vertices.
func (c *CSR) N() int { return len(c.Offsets) - 1 }

// M returns the number of (undirected) edges.
func (c *CSR) M() int { return len(c.Targets) / 2 }

// Neighbors returns row v: the ascending neighbor ids of v as a view into
// the shared arena. It must not be modified.
func (c *CSR) Neighbors(v int) []int32 {
	return c.Targets[c.Offsets[v]:c.Offsets[v+1]]
}

// NeighborWeights returns the weights aligned with Neighbors(v), or nil for
// an unweighted CSR.
func (c *CSR) NeighborWeights(v int) []int32 {
	if c.Weights == nil {
		return nil
	}
	return c.Weights[c.Offsets[v]:c.Offsets[v+1]]
}

// Degree returns the degree of v.
func (c *CSR) Degree(v int) int { return int(c.Offsets[v+1] - c.Offsets[v]) }

// HasEdge reports whether {u, v} is an edge, by binary search in row u.
func (c *CSR) HasEdge(u, v int) bool {
	if u < 0 || u >= c.N() {
		return false
	}
	row := c.Neighbors(u)
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(row[mid]) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && int(row[lo]) == v
}

// BFSInto runs a breadth-first search from src into caller-owned buffers:
// dist (len n, filled with hop distances, -1 for unreachable) and queue
// (len n scratch). It allocates nothing, which is what lets the scale tests
// and the metropolis example compute distance oracles on million-vertex
// graphs without doubling their memory footprint. It returns the number of
// reached vertices and the largest finite distance (the eccentricity of src
// when the graph is connected).
func (c *CSR) BFSInto(src int, dist []int32, queue []int32) (reached int, ecc int32) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = queue[:0]
	queue = append(queue, int32(src))
	reached = 1
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range c.Targets[c.Offsets[u]:c.Offsets[u+1]] {
			if dist[v] == -1 {
				dist[v] = du + 1
				if dist[v] > ecc {
					ecc = dist[v]
				}
				queue = append(queue, v)
				reached++
			}
		}
	}
	return reached, ecc
}
