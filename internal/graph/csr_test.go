package graph

import (
	"os"
	"testing"
)

func TestCSRMatchesGraph(t *testing.T) {
	graphs := map[string]*Graph{
		"path":   Path(17),
		"grid":   Grid(4, 5),
		"torus":  Torus(3, 4),
		"cycle":  Cycle(9),
		"random": RandomConnected(40, 0.1, 3),
		"single": New(1),
		"wtd":    WithWeights(RandomConnected(25, 0.15, 7), 9, 7),
	}
	for name, g := range graphs {
		c, err := g.BuildCSR()
		if err != nil {
			t.Fatalf("%s: BuildCSR: %v", name, err)
		}
		if c.N() != g.N() || c.M() != g.M() {
			t.Fatalf("%s: CSR %d vertices / %d edges, want %d / %d", name, c.N(), c.M(), g.N(), g.M())
		}
		for v := 0; v < g.N(); v++ {
			adj := g.Neighbors(v)
			row := c.Neighbors(v)
			if len(row) != len(adj) || c.Degree(v) != g.Degree(v) {
				t.Fatalf("%s: vertex %d row length %d, want %d", name, v, len(row), len(adj))
			}
			wts := c.NeighborWeights(v)
			if (wts != nil) != g.Weighted() {
				t.Fatalf("%s: vertex %d weight row present=%v, graph weighted=%v", name, v, wts != nil, g.Weighted())
			}
			for i := range adj {
				if int(row[i]) != adj[i] {
					t.Fatalf("%s: vertex %d neighbor %d = %d, want %d", name, v, i, row[i], adj[i])
				}
				if wts != nil && int(wts[i]) != g.Weight(v, adj[i]) {
					t.Fatalf("%s: edge {%d,%d} weight %d, want %d", name, v, adj[i], wts[i], g.Weight(v, adj[i]))
				}
			}
		}
		// HasEdge agrees on a dense probe of pairs.
		for u := 0; u < g.N(); u++ {
			for v := -1; v <= g.N(); v++ {
				if c.HasEdge(u, v) != g.HasEdge(u, v) {
					t.Fatalf("%s: HasEdge(%d,%d) = %v disagrees with graph", name, u, v, c.HasEdge(u, v))
				}
			}
		}
	}
}

func TestCSRBFSMatchesGraphBFS(t *testing.T) {
	for _, g := range []*Graph{Path(31), Grid(6, 7), RandomConnected(60, 0.07, 11)} {
		c, err := g.BuildCSR()
		if err != nil {
			t.Fatal(err)
		}
		dist := make([]int32, g.N())
		queue := make([]int32, g.N())
		for _, src := range []int{0, g.N() / 2, g.N() - 1} {
			reached, ecc := c.BFSInto(src, dist, queue)
			want, _ := g.BFS(src)
			if reached != g.N() {
				t.Fatalf("BFSInto(%d) reached %d of %d", src, reached, g.N())
			}
			wantEcc := 0
			for v, d := range want {
				if int(dist[v]) != d {
					t.Fatalf("BFSInto(%d): dist[%d] = %d, want %d", src, v, dist[v], d)
				}
				if d > wantEcc {
					wantEcc = d
				}
			}
			if int(ecc) != wantEcc {
				t.Fatalf("BFSInto(%d): ecc %d, want %d", src, ecc, wantEcc)
			}
		}
	}
}

// The structured generators preallocate their adjacency arenas: building a
// graph must cost O(1) allocations per vertex (in practice a handful per
// graph), not O(log deg) reallocations per vertex. The small always-on
// probe guards the property; the gated test exercises it at the 1M-vertex
// scale the metropolis example runs at.
func TestGeneratorAllocationsLean(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Graph
	}{
		{"path", func() *Graph { return Path(10000) }},
		{"cycle", func() *Graph { return Cycle(10000) }},
		{"grid", func() *Graph { return Grid(100, 100) }},
		{"torus", func() *Graph { return Torus(100, 100) }},
		{"tree", func() *Graph { return CompleteBinaryTree(10000) }},
		{"barbell", func() *Graph { return Barbell(60, 100) }},
		// Seed 2 pairs successfully on the first few attempts; each
		// rejection-sampling attempt costs a constant number of allocations
		// (graph + arena + connectivity BFS), so the probe bound holds for
		// this seed but not for arbitrarily unlucky ones.
		{"regular", func() *Graph {
			g, err := RandomRegular(2000, 4, 2)
			if err != nil {
				return nil
			}
			return g
		}},
	}
	for _, tc := range cases {
		var g *Graph
		allocs := testing.AllocsPerRun(3, func() { g = tc.build() })
		if g == nil {
			t.Fatalf("%s: generator failed", tc.name)
		}
		if !g.Connected() {
			t.Fatalf("%s: generated graph disconnected", tc.name)
		}
		// New (graph + headers) + arena + closure bookkeeping: single digits.
		// The bound is deliberately loose; the regression it guards against
		// is per-vertex/per-edge reallocation, i.e. thousands of allocs.
		if allocs > 64 {
			t.Errorf("%s: %.0f allocations per build, want O(1) total", tc.name, allocs)
		}
	}
}

// TestGeneratorCapacity1M is the metropolis-scale capacity check: a sparse
// million-vertex grid builds with a constant number of allocations, packs
// into CSR, and its distance oracle confirms the known diameter. ~1 GB of
// transient memory and a few seconds of work, so it is opt-in:
//
//	QCONGEST_CAPACITY=1 go test -run TestGeneratorCapacity1M ./internal/graph
func TestGeneratorCapacity1M(t *testing.T) {
	if os.Getenv("QCONGEST_CAPACITY") == "" {
		t.Skip("set QCONGEST_CAPACITY=1 to run the 1M-vertex capacity test")
	}
	const side = 1000
	var g *Graph
	allocs := testing.AllocsPerRun(1, func() { g = Grid(side, side) })
	if allocs > 64 {
		t.Errorf("Grid(%d,%d): %.0f allocations, want O(1) total", side, side, allocs)
	}
	if g.N() != side*side || g.M() != 2*side*(side-1) {
		t.Fatalf("grid has %d vertices / %d edges", g.N(), g.M())
	}
	c, err := g.BuildCSR()
	if err != nil {
		t.Fatal(err)
	}
	dist := make([]int32, g.N())
	queue := make([]int32, g.N())
	reached, ecc := c.BFSInto(0, dist, queue)
	if reached != g.N() {
		t.Fatalf("corner BFS reached %d of %d vertices", reached, g.N())
	}
	if want := int32(2 * (side - 1)); ecc != want {
		t.Fatalf("corner eccentricity %d, want %d", ecc, want)
	}
}
