package graph

import (
	"fmt"
	"math/rand"
)

// The structured generators below (Path, Cycle, Grid, Torus) know their
// degree sequences in advance and preallocate the adjacency arena, so
// building even a million-vertex graph costs O(1) allocations per vertex —
// the scale floor the frontier-scheduled engine is designed to feed on.

// Path returns the path graph P_n: 0-1-2-...-(n-1). Diameter n-1.
func Path(n int) *Graph {
	g := New(n)
	if n >= 2 {
		g.preallocAdjacency(2*(n-1), func(v int) int {
			if v == 0 || v == n-1 {
				return 1
			}
			return 2
		})
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

// Cycle returns the cycle C_n (n >= 3). Diameter floor(n/2).
func Cycle(n int) *Graph {
	if n < 3 {
		return Path(n)
	}
	g := New(n)
	g.preallocAdjacency(2*n, func(int) int { return 2 })
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	g.MustAddEdge(n-1, 0)
	return g
}

// Star returns the star K_{1,n-1} with center 0. Diameter 2 (for n >= 3).
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i)
	}
	return g
}

// Complete returns the complete graph K_n. Diameter 1 (for n >= 2).
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(i, j)
		}
	}
	return g
}

// Grid returns the rows x cols grid graph. Diameter rows+cols-2.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	if rows > 0 && cols > 0 {
		horiz := rows * (cols - 1)
		vert := (rows - 1) * cols
		g.preallocAdjacency(2*(horiz+vert), func(v int) int {
			r, c := v/cols, v%cols
			d := 0
			if c > 0 {
				d++
			}
			if c+1 < cols {
				d++
			}
			if r > 0 {
				d++
			}
			if r+1 < rows {
				d++
			}
			return d
		})
	}
	GridEdges(rows, cols)(g.MustAddEdge)
	return g
}

// Torus returns the rows x cols torus (grid with wraparound). For dimensions
// below 3 the wraparound edge coincides with an existing edge (or is a
// self-loop); those degenerate edges are skipped, so e.g. Torus(2, k) equals
// the 2 x k cylinder and Torus(1, k) the cycle C_k — the generator never
// panics on small inputs.
func Torus(rows, cols int) *Graph {
	g := New(rows * cols)
	// Every torus vertex has degree 4; degenerate dimensions (< 3) skip
	// coinciding wraparound edges, leaving some declared capacity unused —
	// harmless, the arena is simply a little larger than needed.
	g.preallocAdjacency(4*rows*cols, func(int) int { return 4 })
	id := func(r, c int) int { return r*cols + c }
	add := func(u, v int) {
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			add(id(r, c), id(r, (c+1)%cols))
			add(id(r, c), id((r+1)%rows, c))
		}
	}
	return g
}

// Hypercube returns the dim-dimensional hypercube on 2^dim vertices.
// Diameter dim.
func Hypercube(dim int) *Graph {
	n := 1 << dim
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			w := v ^ (1 << b)
			if v < w {
				g.MustAddEdge(v, w)
			}
		}
	}
	return g
}

// CompleteBinaryTree returns a complete binary tree with n vertices
// (heap-indexed: children of v are 2v+1 and 2v+2).
func CompleteBinaryTree(n int) *Graph {
	g := New(n)
	// Degree of v: one parent edge (v > 0) plus one edge per existing child
	// (children of v are 2v+1 and 2v+2); the total over all vertices is the
	// usual tree bound 2(n-1).
	g.preallocAdjacency(2*(n-1), func(v int) int {
		d := 0
		if v > 0 {
			d++
		}
		if 2*v+1 < n {
			d++
		}
		if 2*v+2 < n {
			d++
		}
		return d
	})
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, (v-1)/2)
	}
	return g
}

// Barbell returns two cliques of size cliqueSize joined by a path with
// pathLen internal vertices. Diameter pathLen + 3 (for cliqueSize >= 2).
// Useful as a small-n, large-D workload. cliqueSize below 1 is clamped to 1
// (the two "cliques" degenerate to the path endpoints).
func Barbell(cliqueSize, pathLen int) *Graph {
	if cliqueSize < 1 {
		cliqueSize = 1
	}
	n := 2*cliqueSize + pathLen
	g := New(n)
	// Clique members have degree cliqueSize-1, path vertices degree 2, and
	// the two chain endpoints (vertex 0 and the first vertex of the second
	// clique) carry one extra chain edge each.
	k := cliqueSize
	g.preallocAdjacency(2*(k*(k-1)+pathLen+1), func(v int) int {
		switch {
		case v < k:
			if v == 0 {
				return k
			}
			return k - 1
		case v < k+pathLen:
			return 2
		case v == k+pathLen:
			return k
		default:
			return k - 1
		}
	})
	for i := 0; i < cliqueSize; i++ {
		for j := i + 1; j < cliqueSize; j++ {
			g.MustAddEdge(i, j)
			g.MustAddEdge(cliqueSize+pathLen+i, cliqueSize+pathLen+j)
		}
	}
	prev := 0
	for i := 0; i < pathLen; i++ {
		g.MustAddEdge(prev, cliqueSize+i)
		prev = cliqueSize + i
	}
	g.MustAddEdge(prev, cliqueSize+pathLen)
	return g
}

// Caterpillar returns a path of spineLen vertices where every spine vertex
// carries legsPerSpine pendant leaves. n = spineLen*(1+legsPerSpine),
// diameter spineLen+1 (for legsPerSpine >= 1, spineLen >= 2). This family
// lets experiments scale n while holding D fixed, or scale D while holding
// n fixed.
func Caterpillar(spineLen, legsPerSpine int) *Graph {
	n := spineLen * (1 + legsPerSpine)
	g := New(n)
	for i := 0; i+1 < spineLen; i++ {
		g.MustAddEdge(i, i+1)
	}
	next := spineLen
	for i := 0; i < spineLen; i++ {
		for l := 0; l < legsPerSpine; l++ {
			g.MustAddEdge(i, next)
			next++
		}
	}
	return g
}

// RandomConnected returns a connected graph on n vertices: a random spanning
// tree (random parent attachment) plus each remaining pair independently
// with probability p. Deterministic for a given seed.
func RandomConnected(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := perm[i]
		v := perm[rng.Intn(i)]
		g.MustAddEdge(u, v)
	}
	if p > 0 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if !g.HasEdge(u, v) && rng.Float64() < p {
					g.MustAddEdge(u, v)
				}
			}
		}
	}
	return g
}

// RandomTree returns a uniform random attachment tree on n vertices.
func RandomTree(n int, seed int64) *Graph {
	return RandomConnected(n, 0, seed)
}

// SmallWorld returns a ring lattice where each vertex connects to its k
// nearest neighbours on each side, with extra random chords added with
// probability p per vertex (Watts-Strogatz-style but additive, so the graph
// stays connected). Low diameter for moderate p.
func SmallWorld(n, k int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if !g.HasEdge(u, v) && u != v {
				g.MustAddEdge(u, v)
			}
		}
	}
	for u := 0; u < n; u++ {
		if rng.Float64() < p {
			v := rng.Intn(n)
			if v != u && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// WithWeights returns a weighted deep copy of g: every edge receives an
// independent uniform weight in [1, maxW], assigned in canonical edge order
// (so the result is deterministic for a given seed). maxW <= 1 still
// materializes the weight tables (all weights 1), which lets tests exercise
// the weighted code paths on effectively-unweighted graphs.
func WithWeights(g *Graph, maxW int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	c := g.Clone()
	c.materializeWeights()
	for _, e := range c.Edges() {
		w := 1
		if maxW > 1 {
			w = 1 + rng.Intn(maxW)
		}
		c.setWeight(e[0], e[1], w)
	}
	return c
}

// setWeight overwrites the weight of the existing edge {u, v} on a graph
// with materialized weight tables (construction helper for WithWeights).
func (g *Graph) setWeight(u, v, w int) {
	for i, x := range g.adj[u] {
		if x == v {
			g.wts[u][i] = w
		}
	}
	for i, x := range g.adj[v] {
		if x == u {
			g.wts[v][i] = w
		}
	}
}

// RandomRegular returns a connected random d-regular graph on n vertices via
// the configuration model: d stubs per vertex are paired uniformly, the
// pairing is rejected if it produces self-loops, duplicate edges or a
// disconnected graph, and the sampling retries with fresh randomness.
// Deterministic for a given seed. n*d must be even and 0 <= d < n; it errors
// when the parameters are infeasible or no simple connected pairing is found
// (vanishingly unlikely for d >= 3 and moderate n).
func RandomRegular(n, d int, seed int64) (*Graph, error) {
	if d < 0 || d >= n && !(n <= 1 && d == 0) {
		return nil, fmt.Errorf("graph: no %d-regular graph on %d vertices", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: n*d = %d*%d is odd", n, d)
	}
	if d == 0 {
		if n > 1 {
			return nil, fmt.Errorf("graph: 0-regular graph on %d > 1 vertices is disconnected", n)
		}
		return New(n), nil
	}
	rng := rand.New(rand.NewSource(seed))
	stubs := make([]int, n*d)
	for attempt := 0; attempt < 1000; attempt++ {
		for i := range stubs {
			stubs[i] = i / d
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		g := New(n)
		// Every vertex ends at degree exactly d when the pairing succeeds;
		// a failed attempt abandons the graph (and its arena) anyway.
		g.preallocAdjacency(n*d, func(int) int { return d })
		ok := true
		for i := 0; i < len(stubs) && ok; i += 2 {
			u, v := stubs[i], stubs[i+1]
			ok = u != v && !g.HasEdge(u, v)
			if ok {
				g.MustAddEdge(u, v)
			}
		}
		if ok && g.Connected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no simple connected %d-regular pairing on %d vertices found", d, n)
}

// LollipopWithDiameter returns a connected graph with n vertices whose
// diameter is exactly wantD (2 <= wantD <= n-1): a path of wantD+1 vertices
// with the remaining n-wantD-1 vertices attached to one end as a clique
// blended into the path head. It errors when the parameters are infeasible.
func LollipopWithDiameter(n, wantD int) (*Graph, error) {
	if wantD < 1 || wantD > n-1 {
		return nil, fmt.Errorf("graph: cannot build %d vertices with diameter %d", n, wantD)
	}
	g := New(n)
	// Path 0..wantD.
	for i := 0; i < wantD; i++ {
		g.MustAddEdge(i, i+1)
	}
	// Each remaining vertex attaches to path vertices 0 and 1 and to every
	// other remaining vertex, so it is at distance exactly wantD from vertex
	// wantD (through vertex 1) and at distance 1 from everything near the
	// head; the overall diameter stays exactly wantD.
	for v := wantD + 1; v < n; v++ {
		g.MustAddEdge(v, 0)
		g.MustAddEdge(v, 1)
		for w := wantD + 1; w < v; w++ {
			g.MustAddEdge(v, w)
		}
	}
	return g, nil
}
