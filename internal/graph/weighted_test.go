package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestWeightedRepresentation(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	if g.Weighted() {
		t.Fatal("AddEdge alone must keep the graph unweighted")
	}
	if w := g.Weight(0, 1); w != 1 {
		t.Fatalf("Weight(0,1) = %d on unweighted graph, want 1", w)
	}
	if ws := g.NeighborWeights(0); ws != nil {
		t.Fatalf("NeighborWeights on unweighted graph = %v, want nil", ws)
	}
	g.MustAddWeightedEdge(1, 2, 7)
	if !g.Weighted() {
		t.Fatal("weight-7 edge must materialize the weight tables")
	}
	// Backfilled edges keep weight 1; later AddEdge default to 1 too.
	g.MustAddEdge(2, 3)
	for _, tc := range []struct{ u, v, want int }{
		{0, 1, 1}, {1, 0, 1}, {1, 2, 7}, {2, 1, 7}, {2, 3, 1}, {0, 3, 0},
	} {
		if w := g.Weight(tc.u, tc.v); w != tc.want {
			t.Fatalf("Weight(%d,%d) = %d, want %d", tc.u, tc.v, w, tc.want)
		}
	}
	if mw := g.MaxWeight(); mw != 7 {
		t.Fatalf("MaxWeight = %d, want 7", mw)
	}
	if err := g.AddWeightedEdge(0, 2, 0); err == nil {
		t.Fatal("weight 0 must be rejected")
	}
}

// TestWeightSortAlignment builds a weighted graph whose adjacency lists are
// constructed out of order and checks that the lazy sort keeps each weight
// attached to its neighbor.
func TestWeightSortAlignment(t *testing.T) {
	g := New(5)
	g.MustAddWeightedEdge(2, 4, 9)
	g.MustAddWeightedEdge(2, 0, 3)
	g.MustAddWeightedEdge(2, 3, 5)
	g.MustAddWeightedEdge(2, 1, 2)
	nbr := g.Neighbors(2)
	ws := g.NeighborWeights(2)
	wantN := []int{0, 1, 3, 4}
	wantW := []int{3, 2, 5, 9}
	if !reflect.DeepEqual(nbr, wantN) || !reflect.DeepEqual(ws, wantW) {
		t.Fatalf("neighbors %v weights %v, want %v / %v", nbr, ws, wantN, wantW)
	}
	c := g.Clone()
	if !c.Weighted() || !reflect.DeepEqual(c.NeighborWeights(2), wantW) {
		t.Fatalf("clone lost weights: %v", c.NeighborWeights(2))
	}
	// Mutating the clone must not touch the original.
	c.setWeight(2, 4, 1)
	if g.Weight(2, 4) != 9 {
		t.Fatal("clone weight mutation leaked into the original")
	}
}

// TestDijkstraMatchesFloydWarshall cross-checks the two independent weighted
// oracles on random weighted graphs, and the unweighted fast path against
// BFS.
func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := WithWeights(RandomConnected(24, 0.12, seed), 9, seed+100)
		mat, err := g.FloydWarshall()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for src := 0; src < g.N(); src++ {
			if dist := g.Dijkstra(src); !reflect.DeepEqual(dist, mat[src]) {
				t.Fatalf("seed %d src %d: Dijkstra %v != FloydWarshall %v", seed, src, dist, mat[src])
			}
		}
		// All-1 weights must reproduce hop distances exactly.
		u := WithWeights(RandomConnected(24, 0.12, seed), 1, seed)
		for src := 0; src < u.N(); src++ {
			bfs, _ := u.BFS(src)
			if dist := u.Dijkstra(src); !reflect.DeepEqual(dist, bfs) {
				t.Fatalf("seed %d src %d: weighted all-1 Dijkstra %v != BFS %v", seed, src, dist, bfs)
			}
		}
	}
}

func TestWithWeightsDeterministic(t *testing.T) {
	base := RandomConnected(30, 0.1, 5)
	a := WithWeights(base, 12, 42)
	b := WithWeights(base, 12, 42)
	for _, e := range base.Edges() {
		if a.Weight(e[0], e[1]) != b.Weight(e[0], e[1]) {
			t.Fatalf("edge %v: weights differ across identical seeds", e)
		}
		if w := a.Weight(e[0], e[1]); w < 1 || w > 12 {
			t.Fatalf("edge %v: weight %d outside [1,12]", e, w)
		}
	}
	if base.Weighted() {
		t.Fatal("WithWeights mutated its input")
	}
}

func TestRandomRegular(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{8, 3}, {12, 4}, {20, 3}} {
		g, err := RandomRegular(tc.n, tc.d, 7)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		if g.N() != tc.n || !g.Connected() {
			t.Fatalf("RandomRegular(%d,%d): n=%d connected=%v", tc.n, tc.d, g.N(), g.Connected())
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("RandomRegular(%d,%d): degree(%d) = %d", tc.n, tc.d, v, g.Degree(v))
			}
		}
	}
	if _, err := RandomRegular(5, 3, 1); err == nil {
		t.Fatal("odd n*d must error")
	}
	if _, err := RandomRegular(4, 4, 1); err == nil {
		t.Fatal("d >= n must error")
	}
	if g, err := RandomRegular(1, 0, 1); err != nil || g.N() != 1 {
		t.Fatalf("RandomRegular(1,0) = %v, %v", g, err)
	}
}

// TestWeightedConcurrentReaders exercises the synchronized lazy sort with
// weights under concurrent readers (run with -race).
func TestWeightedConcurrentReaders(t *testing.T) {
	g := WithWeights(RandomConnected(64, 0.08, 3), 5, 4)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				v := rng.Intn(g.N())
				nbr := g.Neighbors(v)
				ws := g.NeighborWeights(v)
				if len(nbr) != len(ws) {
					t.Errorf("vertex %d: %d neighbors, %d weights", v, len(nbr), len(ws))
					return
				}
				_ = g.Dijkstra(v)
			}
		}(int64(w))
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
