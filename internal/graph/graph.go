// Package graph provides the undirected-graph substrate used by every other
// package in this repository: adjacency representation, breadth-first search,
// BFS trees and their Euler tours, eccentricity and diameter reference
// algorithms (unweighted and weighted), and the graph generators used in the
// experiments.
//
// Vertices are dense integers in [0, N). All graphs are simple and
// undirected, matching the networks considered in the paper. Edges carry
// positive integer weights; a graph built with AddEdge alone is unweighted
// (every weight 1) and stores no weight tables at all, so the unweighted
// representation and behavior are identical to the pre-weight code.
// Weighted distance parameters (WeightedDiameter, Dijkstra, FloydWarshall)
// follow the weighted-CONGEST extensions of the paper's framework.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Graph is a simple undirected graph on vertices 0..N-1 stored as sorted
// adjacency lists. The zero value is an empty graph with no vertices.
//
// Construction (AddVertex, AddEdge) is single-goroutine; once construction
// is done, any number of goroutines may read the graph concurrently — the
// lazy adjacency sort behind Neighbors/BFS is synchronized, so e.g.
// independent sessions or parallel experiment trials can share one graph.
type Graph struct {
	adj   [][]int
	edges int

	// wts[u][i] is the weight of the edge to adj[u][i]. It is nil for
	// unweighted graphs (every edge weight 1): the unweighted fast paths
	// never touch it, so graphs built with AddEdge alone behave bit-for-bit
	// like the pre-weight representation.
	wts [][]int

	sorted atomic.Bool
	sortMu sync.Mutex
}

// New returns an empty graph with n vertices and no edges.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.edges }

// preallocAdjacency carves per-vertex adjacency capacity out of one shared
// arena: adj[v] becomes a zero-length view with capacity deg(v), so the
// following AddEdge calls append in place and the whole construction costs
// O(1) allocations per vertex instead of O(log deg) reallocations each.
// total must equal the sum of the declared degrees. Generators that know
// their degree sequence (Path, Cycle, Grid, Torus) use this to build
// million-vertex graphs allocation-lean; a declared degree that turns out
// too small is not an error — that vertex's append simply falls back to a
// private reallocation. Only meaningful on a graph with no edges yet.
func (g *Graph) preallocAdjacency(total int, deg func(v int) int) {
	if g.edges != 0 || total <= 0 {
		return
	}
	arena := make([]int, total)
	off := 0
	for v := range g.adj {
		d := deg(v)
		if off+d > len(arena) {
			return // inconsistent declaration; keep the remaining rows nil
		}
		g.adj[v] = arena[off : off : off+d]
		off += d
	}
}

// AddVertex appends a new isolated vertex and returns its index.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	if g.wts != nil {
		g.wts = append(g.wts, nil)
	}
	return len(g.adj) - 1
}

// AddEdge inserts the undirected edge {u, v} with weight 1. Self-loops and
// duplicate edges are rejected with an error so construction bugs surface
// early.
func (g *Graph) AddEdge(u, v int) error {
	switch {
	case u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj):
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, len(g.adj))
	case u == v:
		return fmt.Errorf("graph: self-loop at %d", u)
	case g.HasEdge(u, v):
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	if g.wts != nil {
		g.wts[u] = append(g.wts[u], 1)
		g.wts[v] = append(g.wts[v], 1)
	}
	g.edges++
	g.sorted.Store(false)
	return nil
}

// MustAddEdge is AddEdge for construction code where the edge is known to be
// valid; it panics on error (programmer error, not runtime input).
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// AddWeightedEdge inserts the undirected edge {u, v} with the given positive
// integer weight. The first weight other than 1 materializes the weight
// tables (all previously added edges keep weight 1); until then the graph
// stays in the unweighted representation.
func (g *Graph) AddWeightedEdge(u, v, w int) error {
	if w < 1 {
		return fmt.Errorf("graph: edge {%d,%d} weight %d < 1", u, v, w)
	}
	if w > 1 {
		g.materializeWeights()
	}
	if err := g.AddEdge(u, v); err != nil {
		return err
	}
	if g.wts != nil {
		g.wts[u][len(g.wts[u])-1] = w
		g.wts[v][len(g.wts[v])-1] = w
	}
	return nil
}

// MustAddWeightedEdge is AddWeightedEdge panicking on error.
func (g *Graph) MustAddWeightedEdge(u, v, w int) {
	if err := g.AddWeightedEdge(u, v, w); err != nil {
		panic(err)
	}
}

// materializeWeights switches the graph to the weighted representation,
// backfilling weight 1 for every edge added so far.
func (g *Graph) materializeWeights() {
	if g.wts != nil {
		return
	}
	g.wts = make([][]int, len(g.adj))
	for u, a := range g.adj {
		w := make([]int, len(a))
		for i := range w {
			w[i] = 1
		}
		g.wts[u] = w
	}
}

// Weighted reports whether the graph carries materialized edge weights (at
// least one edge was added with weight > 1). Unweighted graphs behave as if
// every edge had weight 1.
func (g *Graph) Weighted() bool { return g.wts != nil }

// Weight returns the weight of edge {u, v}: 1 for edges of an unweighted
// graph, 0 when {u, v} is not an edge.
func (g *Graph) Weight(u, v int) int {
	if u < 0 || u >= len(g.adj) {
		return 0
	}
	// Same synchronization story as HasEdge: the scan must not race with a
	// reader's lazy in-place sort.
	if !g.sorted.Load() {
		g.sortMu.Lock()
		defer g.sortMu.Unlock()
	}
	for i, w := range g.adj[u] {
		if w == v {
			if g.wts == nil {
				return 1
			}
			return g.wts[u][i]
		}
	}
	return 0
}

// NeighborWeights returns the weights aligned with Neighbors(u), or nil for
// an unweighted graph (all weights 1). The returned slice is owned by the
// graph and must not be modified.
func (g *Graph) NeighborWeights(u int) []int {
	if g.wts == nil {
		return nil
	}
	g.ensureSorted()
	return g.wts[u]
}

// MaxWeight returns the largest edge weight (1 for unweighted graphs and
// graphs without edges).
func (g *Graph) MaxWeight() int {
	max := 1
	for _, ws := range g.wts {
		for _, w := range ws {
			if w > max {
				max = w
			}
		}
	}
	return max
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	// The element scan must not race with another reader's lazy in-place
	// sort. Once the graph is sorted the atomic fast path applies (the
	// engine's per-message validation lands here); before that — i.e.
	// during construction, where AddEdge's duplicate check calls this per
	// edge — take the sort mutex rather than ensureSorted, which would
	// re-sort the whole graph on every probe.
	if !g.sorted.Load() {
		g.sortMu.Lock()
		defer g.sortMu.Unlock()
	}
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of u in ascending order. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int {
	g.ensureSorted()
	return g.adj[u]
}

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

func (g *Graph) ensureSorted() {
	if g.sorted.Load() {
		return
	}
	g.sortMu.Lock()
	defer g.sortMu.Unlock()
	if g.sorted.Load() {
		return
	}
	if g.wts == nil {
		for _, a := range g.adj {
			sort.Ints(a)
		}
	} else {
		// Weighted: the weight entries must follow their adjacency entries.
		for u, a := range g.adj {
			sort.Sort(&adjWeightOrder{ids: a, wts: g.wts[u]})
		}
	}
	g.sorted.Store(true)
}

// adjWeightOrder co-sorts one vertex's adjacency list and its aligned weight
// list by neighbor id (ids are unique: the graph is simple).
type adjWeightOrder struct {
	ids []int
	wts []int
}

func (s *adjWeightOrder) Len() int           { return len(s.ids) }
func (s *adjWeightOrder) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s *adjWeightOrder) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.wts[i], s.wts[j] = s.wts[j], s.wts[i]
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	// Sort first (synchronized): the element copy below must not race with
	// another reader's lazy in-place sort.
	g.ensureSorted()
	c := &Graph{adj: make([][]int, len(g.adj)), edges: g.edges}
	c.sorted.Store(true)
	for i, a := range g.adj {
		c.adj[i] = append([]int(nil), a...)
	}
	if g.wts != nil {
		c.wts = make([][]int, len(g.wts))
		for i, w := range g.wts {
			c.wts[i] = append([]int(nil), w...)
		}
	}
	return c
}

// Edges returns every edge {u, v} with u < v, in lexicographic order.
func (g *Graph) Edges() [][2]int {
	g.ensureSorted()
	out := make([][2]int, 0, g.edges)
	for u, a := range g.adj {
		for _, v := range a {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// ErrDisconnected is returned by algorithms that require a connected graph.
var ErrDisconnected = errors.New("graph: graph is not connected")

// BFS runs a breadth-first search from src and returns the distance slice
// (distance -1 for unreachable vertices) and the BFS parent slice (parent -1
// for src and unreachable vertices). The parent of v is canonically the
// smallest-id neighbor of v at distance d(src,v)-1; this matches the parent
// choice of the distributed BFS program in internal/congest, so reference
// trees and simulated trees coincide exactly.
func (g *Graph) BFS(src int) (dist, parent []int) {
	n := len(g.adj)
	dist = make([]int, n)
	parent = make([]int, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	g.ensureSorted()
	dist[src] = 0
	queue := make([]int, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	// Canonical parents: smallest-id neighbor one level closer to src.
	for v := 0; v < n; v++ {
		if v == src || dist[v] <= 0 {
			continue
		}
		for _, u := range g.adj[v] { // ascending id
			if dist[u] == dist[v]-1 {
				parent[v] = u
				break
			}
		}
	}
	return dist, parent
}

// Connected reports whether the graph is connected. The empty graph counts
// as connected.
func (g *Graph) Connected() bool {
	if len(g.adj) == 0 {
		return true
	}
	dist, _ := g.BFS(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Eccentricity returns max_v d(src, v). It returns an error if some vertex is
// unreachable from src.
func (g *Graph) Eccentricity(src int) (int, error) {
	dist, _ := g.BFS(src)
	ecc := 0
	for _, d := range dist {
		if d == -1 {
			return 0, ErrDisconnected
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, nil
}

// Diameter returns the exact diameter by running a BFS from every vertex
// (the O(nm) sequential reference algorithm). The diameter of a graph with
// fewer than two vertices is 0.
func (g *Graph) Diameter() (int, error) {
	if len(g.adj) == 0 {
		return 0, nil
	}
	diam := 0
	for v := range g.adj {
		ecc, err := g.Eccentricity(v)
		if err != nil {
			return 0, err
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam, nil
}

// Radius returns min_v ecc(v). Like Diameter, the radius of a graph with
// fewer than two vertices is 0 (documented convention, asserted by the
// degenerate-input table tests alongside the generator edge cases).
func (g *Graph) Radius() (int, error) {
	if len(g.adj) == 0 {
		return 0, nil
	}
	radius := -1
	for v := range g.adj {
		ecc, err := g.Eccentricity(v)
		if err != nil {
			return 0, err
		}
		if radius == -1 || ecc < radius {
			radius = ecc
		}
	}
	return radius, nil
}

// AllEccentricities returns ecc(v) for every v.
func (g *Graph) AllEccentricities() ([]int, error) {
	out := make([]int, len(g.adj))
	for v := range g.adj {
		ecc, err := g.Eccentricity(v)
		if err != nil {
			return nil, err
		}
		out[v] = ecc
	}
	return out, nil
}

// Distance returns d(u, v), or an error if v is unreachable from u.
func (g *Graph) Distance(u, v int) (int, error) {
	dist, _ := g.BFS(u)
	if dist[v] == -1 {
		return 0, ErrDisconnected
	}
	return dist[v], nil
}

// DistanceMatrix returns the full APSP matrix via n BFS runs.
func (g *Graph) DistanceMatrix() ([][]int, error) {
	n := len(g.adj)
	mat := make([][]int, n)
	for v := 0; v < n; v++ {
		dist, _ := g.BFS(v)
		for _, d := range dist {
			if d == -1 {
				return nil, ErrDisconnected
			}
		}
		mat[v] = dist
	}
	return mat, nil
}
