package graph

import "fmt"

// BFSTree is a rooted spanning tree produced by a breadth-first search,
// together with the data the paper's procedures need: per-vertex depth
// (distance to the root), parent pointers, ordered child lists, and the
// Euler tour used for DFS numbering (Definition 1 of the paper).
type BFSTree struct {
	Root   int
	Parent []int   // Parent[root] == -1
	Depth  []int   // Depth[v] == d(root, v)
	Child  [][]int // children sorted by vertex id
}

// NewBFSTree builds the deterministic BFS tree rooted at root.
func NewBFSTree(g *Graph, root int) (*BFSTree, error) {
	dist, parent := g.BFS(root)
	n := g.N()
	t := &BFSTree{
		Root:   root,
		Parent: parent,
		Depth:  dist,
		Child:  make([][]int, n),
	}
	for v := 0; v < n; v++ {
		if dist[v] == -1 {
			return nil, ErrDisconnected
		}
		if p := parent[v]; p >= 0 {
			t.Child[p] = append(t.Child[p], v)
		}
	}
	// Children are discovered in ascending vertex order because adjacency
	// lists are sorted, but assert the invariant rather than rely on it.
	for v := range t.Child {
		for i := 1; i < len(t.Child[v]); i++ {
			if t.Child[v][i-1] >= t.Child[v][i] {
				return nil, fmt.Errorf("graph: unsorted child list at %d", v)
			}
		}
	}
	return t, nil
}

// Height returns the depth of the deepest vertex, i.e. ecc(root).
func (t *BFSTree) Height() int {
	h := 0
	for _, d := range t.Depth {
		if d > h {
			h = d
		}
	}
	return h
}

// EulerTour returns the sequence of vertices visited by a depth-first
// traversal of the tree starting and ending at the root, visiting children
// in ascending id order. The tour has 2(n-1)+1 entries (each edge is walked
// down once and up once); consecutive entries are adjacent in the tree.
//
// tour[t] is the vertex occupied after t steps; tour[0] == root.
func (t *BFSTree) EulerTour() []int {
	n := len(t.Parent)
	tour := make([]int, 0, 2*n)
	// Iterative DFS over the explicit child lists.
	type frame struct {
		v    int
		next int // index of next child to descend into
	}
	stack := []frame{{v: t.Root}}
	tour = append(tour, t.Root)
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(t.Child[top.v]) {
			c := t.Child[top.v][top.next]
			top.next++
			stack = append(stack, frame{v: c})
			tour = append(tour, c)
			continue
		}
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			tour = append(tour, stack[len(stack)-1].v)
		}
	}
	return tour
}

// DFSNumbering returns tau, the DFS(leader)-number of each vertex per
// Definition 1: tau[v] is the number of steps needed to reach v for the
// first time on the Euler tour (the length of the walk from the root to v on
// a DFS traversal). tau[root] == 0.
func (t *BFSTree) DFSNumbering() []int {
	tour := t.EulerTour()
	tau := make([]int, len(t.Parent))
	for i := range tau {
		tau[i] = -1
	}
	for step, v := range tour {
		if tau[v] == -1 {
			tau[v] = step
		}
	}
	return tau
}

// TourLength returns the number of steps of the full Euler tour, 2(n-1).
func (t *BFSTree) TourLength() int { return 2 * (len(t.Parent) - 1) }

// SetS returns the paper's set S(u) (Definition 2): the vertices v whose
// DFS number tau(v) lies within the window of 2d tour steps starting at
// tau(u), wrapping around the end of the tour (the paper writes "mod 2n";
// the implemented tour has exactly 2(n-1) steps and the wrap restarts the
// traversal from the leader, revisiting vertices in tau order).
func (t *BFSTree) SetS(u, d int) []int {
	tau := t.DFSNumbering()
	total := t.TourLength()
	var out []int
	width := 2 * d
	for v, tv := range tau {
		delta := tv - tau[u]
		if delta < 0 {
			delta += total
		}
		if delta <= width {
			out = append(out, v)
		}
	}
	return out
}
