package graph

import "testing"

// TestGeneratorsDegenerateInputs drives every generator through the
// degenerate corners (n = 0, n = 1, a single edge, below-minimum dims) and
// asserts the documented conventions instead of relying on implicit zero
// values: no generator panics, and Diameter/Radius of graphs with fewer than
// two vertices are 0.
func TestGeneratorsDegenerateInputs(t *testing.T) {
	cases := []struct {
		name      string
		build     func() *Graph
		wantN     int
		wantM     int
		wantDiam  int
		wantRad   int
		connected bool
	}{
		{"path/0", func() *Graph { return Path(0) }, 0, 0, 0, 0, true},
		{"path/1", func() *Graph { return Path(1) }, 1, 0, 0, 0, true},
		{"path/2", func() *Graph { return Path(2) }, 2, 1, 1, 1, true},
		{"cycle/1", func() *Graph { return Cycle(1) }, 1, 0, 0, 0, true},
		{"cycle/2", func() *Graph { return Cycle(2) }, 2, 1, 1, 1, true},
		{"cycle/3", func() *Graph { return Cycle(3) }, 3, 3, 1, 1, true},
		{"star/0", func() *Graph { return Star(0) }, 0, 0, 0, 0, true},
		{"star/1", func() *Graph { return Star(1) }, 1, 0, 0, 0, true},
		{"star/2", func() *Graph { return Star(2) }, 2, 1, 1, 1, true},
		{"complete/0", func() *Graph { return Complete(0) }, 0, 0, 0, 0, true},
		{"complete/1", func() *Graph { return Complete(1) }, 1, 0, 0, 0, true},
		{"complete/2", func() *Graph { return Complete(2) }, 2, 1, 1, 1, true},
		{"grid/0x5", func() *Graph { return Grid(0, 5) }, 0, 0, 0, 0, true},
		{"grid/1x1", func() *Graph { return Grid(1, 1) }, 1, 0, 0, 0, true},
		{"grid/1x2", func() *Graph { return Grid(1, 2) }, 2, 1, 1, 1, true},
		// Torus below 3x3 used to panic on the duplicate wraparound edge;
		// now it degrades to the cylinder / cycle / path documented on the
		// generator.
		{"torus/1x1", func() *Graph { return Torus(1, 1) }, 1, 0, 0, 0, true},
		{"torus/1x2", func() *Graph { return Torus(1, 2) }, 2, 1, 1, 1, true},
		{"torus/2x2", func() *Graph { return Torus(2, 2) }, 4, 4, 2, 2, true},
		{"torus/1x4", func() *Graph { return Torus(1, 4) }, 4, 4, 2, 2, true},
		{"torus/2x3", func() *Graph { return Torus(2, 3) }, 6, 9, 2, 2, true},
		{"hypercube/0", func() *Graph { return Hypercube(0) }, 1, 0, 0, 0, true},
		{"hypercube/1", func() *Graph { return Hypercube(1) }, 2, 1, 1, 1, true},
		{"cbt/0", func() *Graph { return CompleteBinaryTree(0) }, 0, 0, 0, 0, true},
		{"cbt/1", func() *Graph { return CompleteBinaryTree(1) }, 1, 0, 0, 0, true},
		{"cbt/2", func() *Graph { return CompleteBinaryTree(2) }, 2, 1, 1, 1, true},
		// Barbell with cliqueSize < 1 clamps to 1 instead of panicking on a
		// self-loop.
		{"barbell/0x0", func() *Graph { return Barbell(0, 0) }, 2, 1, 1, 1, true},
		{"barbell/1x0", func() *Graph { return Barbell(1, 0) }, 2, 1, 1, 1, true},
		{"barbell/1x1", func() *Graph { return Barbell(1, 1) }, 3, 2, 2, 1, true},
		{"caterpillar/0x3", func() *Graph { return Caterpillar(0, 3) }, 0, 0, 0, 0, true},
		{"caterpillar/1x0", func() *Graph { return Caterpillar(1, 0) }, 1, 0, 0, 0, true},
		{"caterpillar/1x1", func() *Graph { return Caterpillar(1, 1) }, 2, 1, 1, 1, true},
		{"randomtree/0", func() *Graph { return RandomTree(0, 7) }, 0, 0, 0, 0, true},
		{"randomtree/1", func() *Graph { return RandomTree(1, 7) }, 1, 0, 0, 0, true},
		{"randomtree/2", func() *Graph { return RandomTree(2, 7) }, 2, 1, 1, 1, true},
		{"smallworld/1", func() *Graph { return SmallWorld(1, 2, 0.5, 3) }, 1, 0, 0, 0, true},
		{"smallworld/2", func() *Graph { return SmallWorld(2, 2, 0.5, 3) }, 2, 1, 1, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			if g.N() != tc.wantN || g.M() != tc.wantM {
				t.Fatalf("n=%d m=%d, want n=%d m=%d", g.N(), g.M(), tc.wantN, tc.wantM)
			}
			if got := g.Connected(); got != tc.connected {
				t.Fatalf("Connected() = %v, want %v", got, tc.connected)
			}
			diam, err := g.Diameter()
			if err != nil || diam != tc.wantDiam {
				t.Fatalf("Diameter() = %d, %v, want %d", diam, err, tc.wantDiam)
			}
			rad, err := g.Radius()
			if err != nil || rad != tc.wantRad {
				t.Fatalf("Radius() = %d, %v, want %d", rad, err, tc.wantRad)
			}
			// Weighted parameters degenerate to the unweighted ones (all
			// weights are 1 on generator output).
			wd, err := g.WeightedDiameter()
			if err != nil || wd != tc.wantDiam {
				t.Fatalf("WeightedDiameter() = %d, %v, want %d", wd, err, tc.wantDiam)
			}
			wr, err := g.WeightedRadius()
			if err != nil || wr != tc.wantRad {
				t.Fatalf("WeightedRadius() = %d, %v, want %d", wr, err, tc.wantRad)
			}
			eccs, err := g.AllEccentricities()
			if err != nil || len(eccs) != tc.wantN {
				t.Fatalf("AllEccentricities() = %v, %v, want %d entries", eccs, err, tc.wantN)
			}
		})
	}
}

// TestSingleEdgeConventions pins the n=2 single-edge conventions explicitly:
// both endpoints have eccentricity 1, so diameter = radius = 1, weighted or
// not.
func TestSingleEdgeConventions(t *testing.T) {
	g := New(2)
	g.MustAddWeightedEdge(0, 1, 5)
	if !g.Weighted() {
		t.Fatal("graph with a weight-5 edge should report Weighted()")
	}
	if d, _ := g.Diameter(); d != 1 {
		t.Fatalf("hop diameter = %d, want 1", d)
	}
	if d, _ := g.WeightedDiameter(); d != 5 {
		t.Fatalf("weighted diameter = %d, want 5", d)
	}
	if r, _ := g.WeightedRadius(); r != 5 {
		t.Fatalf("weighted radius = %d, want 5", r)
	}
	eccs, err := g.WeightedAllEccentricities()
	if err != nil || len(eccs) != 2 || eccs[0] != 5 || eccs[1] != 5 {
		t.Fatalf("weighted eccentricities = %v, %v, want [5 5]", eccs, err)
	}
}

// TestTorusRegularSizesUnchanged guards the degenerate-input fix: for the
// documented rows, cols >= 3 regime the guarded edge insertion adds exactly
// the same edge set as before (2*rows*cols edges, 4-regular).
func TestTorusRegularSizesUnchanged(t *testing.T) {
	g := Torus(3, 4)
	if g.N() != 12 || g.M() != 24 {
		t.Fatalf("Torus(3,4): n=%d m=%d, want 12, 24", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("Torus(3,4): degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
}
