package graph

import (
	"testing"
	"testing/quick"
)

func TestBFSTreePath(t *testing.T) {
	g := Path(5)
	tree, err := NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Height() != 4 {
		t.Errorf("height = %d, want 4", tree.Height())
	}
	for v := 1; v < 5; v++ {
		if tree.Parent[v] != v-1 {
			t.Errorf("parent[%d] = %d, want %d", v, tree.Parent[v], v-1)
		}
		if tree.Depth[v] != v {
			t.Errorf("depth[%d] = %d, want %d", v, tree.Depth[v], v)
		}
	}
}

func TestBFSTreeDisconnected(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	if _, err := NewBFSTree(g, 0); err == nil {
		t.Error("expected error on disconnected graph")
	}
}

func TestEulerTourStar(t *testing.T) {
	g := Star(4) // center 0, leaves 1..3
	tree, err := NewBFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	tour := tree.EulerTour()
	want := []int{0, 1, 0, 2, 0, 3, 0}
	if len(tour) != len(want) {
		t.Fatalf("tour = %v, want %v", tour, want)
	}
	for i := range want {
		if tour[i] != want[i] {
			t.Fatalf("tour = %v, want %v", tour, want)
		}
	}
}

// Property: the Euler tour of a BFS tree on a random connected graph has
// exactly 2(n-1)+1 entries, starts and ends at the root, and every
// consecutive pair is a tree edge.
func TestEulerTourProperties(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomConnected(18, 0.07, seed)
		tree, err := NewBFSTree(g, 0)
		if err != nil {
			return false
		}
		tour := tree.EulerTour()
		if len(tour) != 2*(g.N()-1)+1 {
			return false
		}
		if tour[0] != 0 || tour[len(tour)-1] != 0 {
			return false
		}
		for i := 1; i < len(tour); i++ {
			u, v := tour[i-1], tour[i]
			if tree.Parent[u] != v && tree.Parent[v] != u {
				return false
			}
		}
		// Every vertex appears.
		seen := make(map[int]bool)
		for _, v := range tour {
			seen[v] = true
		}
		return len(seen) == g.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDFSNumberingPath(t *testing.T) {
	g := Path(4)
	tree, _ := NewBFSTree(g, 0)
	tau := tree.DFSNumbering()
	for v := 0; v < 4; v++ {
		if tau[v] != v {
			t.Errorf("tau[%d] = %d, want %d", v, tau[v], v)
		}
	}
}

// Property (paper, proof of Lemma 1): on any segment of the Euler tour with
// md top-down moves and mu bottom-up moves, |md - mu| <= depth of the tree.
func TestTourSegmentBalance(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomConnected(16, 0.1, seed)
		tree, err := NewBFSTree(g, 0)
		if err != nil {
			return false
		}
		tour := tree.EulerTour()
		depth := tree.Height()
		// Check all segments starting at 0 (prefix balance equals current
		// depth, which is bounded by tree height).
		bal := 0
		for i := 1; i < len(tour); i++ {
			if tree.Parent[tour[i]] == tour[i-1] {
				bal++ // top-down
			} else {
				bal--
			}
			if bal < 0 || bal > depth {
				return false
			}
		}
		return bal == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSetSWindow(t *testing.T) {
	g := Path(8)
	tree, _ := NewBFSTree(g, 0)
	// tau[v] = v on a path rooted at 0. S(u, d) = vertices with tau in
	// [tau(u), tau(u)+2d] mod 14.
	s := tree.SetS(2, 1) // window [2, 4]
	want := map[int]bool{2: true, 3: true, 4: true}
	if len(s) != len(want) {
		t.Fatalf("S = %v, want %v", s, want)
	}
	for _, v := range s {
		if !want[v] {
			t.Fatalf("S = %v, want %v", s, want)
		}
	}
}

func TestSetSWraps(t *testing.T) {
	g := Path(6)
	tree, _ := NewBFSTree(g, 0)
	// Tour length 10; window from tau(5)=5 of width 2d=6 covers steps 5..11,
	// wrapping to steps 0 and 1: first-visits are 5 plus re-walk hitting
	// vertices 0 and 1 after the wrap.
	s := tree.SetS(5, 3)
	want := map[int]bool{5: true, 0: true, 1: true}
	if len(s) != len(want) {
		t.Fatalf("S = %v, want %v", s, want)
	}
	for _, v := range s {
		if !want[v] {
			t.Fatalf("S = %v, want %v", s, want)
		}
	}
}

// Property (Lemma 1): for every vertex v, the number of u with v in S(u, d)
// is at least d/2 (so a uniform u hits v with probability >= d/2n), for
// d = ecc(root) >= 1... the paper proves >= ceil(d/2) starts per vertex.
func TestLemma1CoverageOnTrees(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomTree(14, seed)
		tree, err := NewBFSTree(g, 0)
		if err != nil {
			return false
		}
		d := tree.Height()
		if d < 1 {
			return true
		}
		n := g.N()
		count := make([]int, n)
		for u := 0; u < n; u++ {
			for _, v := range tree.SetS(u, d) {
				count[v]++
			}
		}
		for _, c := range count {
			if c < (d+1)/2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSetSFullWindowCoversAll(t *testing.T) {
	g := RandomConnected(12, 0.2, 5)
	tree, err := NewBFSTree(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := tree.SetS(3, g.N()) // 2d >= tour length: everything
	if len(s) != g.N() {
		t.Errorf("full window |S| = %d, want %d", len(s), g.N())
	}
}
