package graph

// Streamed CSR construction: building a ten-million-vertex graph through
// the Graph type costs one adjacency slice per vertex plus the final CSR
// packing pass — tens of millions of small objects before the first round
// runs. BuildCSRFromStream skips the intermediate representation entirely.
// The caller describes the edge set as a re-runnable callback stream; the
// builder runs it twice — a degree-count pass, then direct placement into
// preallocated int32 arenas — so the whole construction costs O(1)
// allocations per graph (three arrays) regardless of vertex count, and a
// 10M-vertex grid builds in seconds. The emitters below (GridEdges,
// PathEdges) are the streams the scale tests and the metropolis example
// use; Grid itself is defined in terms of GridEdges so the two build paths
// can never drift.

import (
	"fmt"
	"slices"
)

// EdgeStream enumerates the undirected edges of a graph by calling emit
// once per edge {u, v}. A stream must be deterministic and re-runnable:
// BuildCSRFromStream invokes it twice (degree pass, placement pass) and
// requires both runs to produce the same edge multiset.
type EdgeStream func(emit func(u, v int))

// BuildCSRFromStream builds the CSR form of the simple undirected graph on
// n vertices whose edges stream enumerates. Pass one counts degrees and
// validates endpoints (in range, no self-loops); pass two places each edge
// directly into the preallocated target arena. Rows whose edges arrive out
// of order are sorted in place afterwards; duplicate edges are rejected.
// The result is unweighted (Weights == nil).
func BuildCSRFromStream(n int, stream EdgeStream) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if int64(n)+1 > int64(1)<<31-1 {
		return nil, fmt.Errorf("graph: %d vertices exceed the int32 CSR limit", n)
	}
	deg := make([]int32, n)
	var streamErr error
	edges := int64(0)
	stream(func(u, v int) {
		if streamErr != nil {
			return
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			streamErr = fmt.Errorf("graph: streamed edge {%d, %d} out of range [0, %d)", u, v, n)
			return
		}
		if u == v {
			streamErr = fmt.Errorf("graph: streamed self-loop at vertex %d", u)
			return
		}
		deg[u]++
		deg[v]++
		edges++
	})
	if streamErr != nil {
		return nil, streamErr
	}
	if 2*edges > int64(1)<<31-1 {
		return nil, fmt.Errorf("graph: %d directed edges exceed the int32 CSR limit", 2*edges)
	}
	c := &CSR{
		Offsets: make([]int32, n+1),
		Targets: make([]int32, 2*edges),
	}
	off := int32(0)
	for v := 0; v < n; v++ {
		c.Offsets[v] = off
		off += deg[v]
		deg[v] = c.Offsets[v] // reuse as the placement cursor for row v
	}
	c.Offsets[n] = off
	cursor := deg
	stream(func(u, v int) {
		if streamErr != nil {
			return
		}
		if u < 0 || u >= n || v < 0 || v >= n || u == v {
			streamErr = fmt.Errorf("graph: stream changed between passes at edge {%d, %d}", u, v)
			return
		}
		if cursor[u] >= c.Offsets[u+1] || cursor[v] >= c.Offsets[v+1] {
			streamErr = fmt.Errorf("graph: stream changed between passes at edge {%d, %d}", u, v)
			return
		}
		c.Targets[cursor[u]] = int32(v)
		cursor[u]++
		c.Targets[cursor[v]] = int32(u)
		cursor[v]++
	})
	if streamErr != nil {
		return nil, streamErr
	}
	for v := 0; v < n; v++ {
		if cursor[v] != c.Offsets[v+1] {
			return nil, fmt.Errorf("graph: stream changed between passes (row %d short)", v)
		}
		row := c.Targets[c.Offsets[v]:c.Offsets[v+1]]
		if !slices.IsSorted(row) {
			slices.Sort(row)
		}
		for i := 1; i < len(row); i++ {
			if row[i] == row[i-1] {
				return nil, fmt.Errorf("graph: duplicate streamed edge {%d, %d}", v, row[i])
			}
		}
	}
	return c, nil
}

// GridEdges returns the edge stream of the rows x cols grid graph, emitted
// in row-major vertex order (right edge, then down edge). That order makes
// every CSR row come out already ascending, so BuildCSRFromStream never
// falls back to sorting.
func GridEdges(rows, cols int) EdgeStream {
	return func(emit func(u, v int)) {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				v := r*cols + c
				if c+1 < cols {
					emit(v, v+1)
				}
				if r+1 < rows {
					emit(v, v+cols)
				}
			}
		}
	}
}

// PathEdges returns the edge stream of the path graph P_n.
func PathEdges(n int) EdgeStream {
	return func(emit func(u, v int)) {
		for v := 0; v+1 < n; v++ {
			emit(v, v+1)
		}
	}
}
