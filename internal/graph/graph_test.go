package graph

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative endpoint accepted")
	}
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
	if g.M() != 1 {
		t.Errorf("M() = %d, want 1", g.M())
	}
}

func TestNeighborsSortedAndImmutableView(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 4)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(0, 1)
	nb := g.Neighbors(0)
	want := []int{1, 2, 4}
	if len(nb) != len(want) {
		t.Fatalf("neighbors = %v, want %v", nb, want)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", nb, want)
		}
	}
}

func TestAddVertex(t *testing.T) {
	g := New(2)
	v := g.AddVertex()
	if v != 2 || g.N() != 3 {
		t.Fatalf("AddVertex returned %d, N=%d; want 2, 3", v, g.N())
	}
	g.MustAddEdge(v, 0)
	if !g.HasEdge(2, 0) {
		t.Error("edge to new vertex missing")
	}
}

func TestBFSOnPath(t *testing.T) {
	g := Path(6)
	dist, parent := g.BFS(0)
	for v := 0; v < 6; v++ {
		if dist[v] != v {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
	if parent[0] != -1 {
		t.Errorf("parent[src] = %d, want -1", parent[0])
	}
	for v := 1; v < 6; v++ {
		if parent[v] != v-1 {
			t.Errorf("parent[%d] = %d, want %d", v, parent[v], v-1)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	dist, _ := g.BFS(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Errorf("unreachable vertices should have dist -1, got %v", dist)
	}
	if _, err := g.Eccentricity(0); err == nil {
		t.Error("Eccentricity on disconnected graph should error")
	}
	if _, err := g.Diameter(); err == nil {
		t.Error("Diameter on disconnected graph should error")
	}
	if _, err := g.DistanceMatrix(); err == nil {
		t.Error("DistanceMatrix on disconnected graph should error")
	}
}

func TestDiameterKnownFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path10", Path(10), 9},
		{"path2", Path(2), 1},
		{"single", Path(1), 0},
		{"empty", New(0), 0},
		{"cycle9", Cycle(9), 4},
		{"cycle10", Cycle(10), 5},
		{"star8", Star(8), 2},
		{"complete7", Complete(7), 1},
		{"grid4x5", Grid(4, 5), 7},
		{"torus5x5", Torus(5, 5), 4},
		{"hypercube4", Hypercube(4), 4},
		{"binarytree15", CompleteBinaryTree(15), 6},
		{"barbell", Barbell(4, 3), 6},
		{"caterpillar", Caterpillar(5, 3), 6},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.g.Diameter()
			if err != nil {
				t.Fatalf("Diameter: %v", err)
			}
			if got != tc.want {
				t.Errorf("Diameter = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestRadiusPath(t *testing.T) {
	g := Path(9)
	r, err := g.Radius()
	if err != nil {
		t.Fatal(err)
	}
	if r != 4 {
		t.Errorf("Radius(P9) = %d, want 4", r)
	}
}

func TestRandomConnectedIsConnected(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := RandomConnected(40, 0.05, seed)
		if !g.Connected() {
			t.Errorf("seed %d: graph not connected", seed)
		}
		if g.N() != 40 {
			t.Errorf("seed %d: n = %d", seed, g.N())
		}
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	a := RandomConnected(30, 0.1, 7)
	b := RandomConnected(30, 0.1, 7)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestRandomTreeHasNMinus1Edges(t *testing.T) {
	g := RandomTree(25, 3)
	if g.M() != 24 {
		t.Errorf("tree edges = %d, want 24", g.M())
	}
	if !g.Connected() {
		t.Error("tree not connected")
	}
}

func TestSmallWorldConnected(t *testing.T) {
	g := SmallWorld(50, 2, 0.3, 11)
	if !g.Connected() {
		t.Error("small world not connected")
	}
	d, err := g.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if d >= 15 {
		t.Errorf("small-world diameter suspiciously large: %d", d)
	}
}

func TestLollipopWithDiameter(t *testing.T) {
	for _, tc := range []struct{ n, d int }{
		{10, 2}, {10, 5}, {10, 9}, {20, 3}, {20, 12}, {6, 1},
	} {
		g, err := LollipopWithDiameter(tc.n, tc.d)
		if err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		got, err := g.Diameter()
		if err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		if got != tc.d {
			t.Errorf("n=%d: diameter = %d, want %d", tc.n, got, tc.d)
		}
		if g.N() != tc.n {
			t.Errorf("n = %d, want %d", g.N(), tc.n)
		}
	}
	if _, err := LollipopWithDiameter(5, 5); err == nil {
		t.Error("infeasible parameters accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	c.MustAddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Error("mutating clone changed original")
	}
	if g.M() != 3 || c.M() != 4 {
		t.Errorf("edge counts: orig %d clone %d", g.M(), c.M())
	}
}

func TestEdgesList(t *testing.T) {
	g := Cycle(4)
	edges := g.Edges()
	want := [][2]int{{0, 1}, {0, 3}, {1, 2}, {2, 3}}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edges = %v, want %v", edges, want)
		}
	}
}

// Property: for random connected graphs, diameter == max entry of the
// distance matrix, and eccentricities are consistent with the matrix.
func TestDiameterMatchesDistanceMatrix(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomConnected(20, 0.08, seed)
		mat, err := g.DistanceMatrix()
		if err != nil {
			return false
		}
		wantDiam := 0
		for u := range mat {
			for v := range mat[u] {
				if mat[u][v] > wantDiam {
					wantDiam = mat[u][v]
				}
			}
		}
		d, err := g.Diameter()
		if err != nil {
			return false
		}
		eccs, err := g.AllEccentricities()
		if err != nil {
			return false
		}
		maxEcc := 0
		for _, e := range eccs {
			if e > maxEcc {
				maxEcc = e
			}
		}
		return d == wantDiam && maxEcc == wantDiam
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the triangle inequality holds for all distances.
func TestTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomConnected(15, 0.1, seed)
		mat, err := g.DistanceMatrix()
		if err != nil {
			return false
		}
		n := g.N()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				for c := 0; c < n; c++ {
					if mat[a][c] > mat[a][b]+mat[b][c] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestDistance(t *testing.T) {
	g := Cycle(8)
	d, err := g.Distance(0, 4)
	if err != nil || d != 4 {
		t.Errorf("Distance(0,4) = %d,%v want 4,nil", d, err)
	}
	d, err = g.Distance(0, 7)
	if err != nil || d != 1 {
		t.Errorf("Distance(0,7) = %d,%v want 1,nil", d, err)
	}
}

// After construction, a graph must be safely readable from many goroutines
// at once — including the very first reads, which trigger the lazy
// adjacency sort (parallel experiment trials share one graph). Run with
// -race this is the regression test for the synchronized sort.
func TestConcurrentReadsAfterConstruction(t *testing.T) {
	g := RandomConnected(200, 0.03, 12)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !g.Connected() {
				t.Error("graph not connected")
			}
			dist, _ := g.BFS(0)
			if len(dist) != g.N() {
				t.Errorf("BFS returned %d distances", len(dist))
			}
			nb := g.Neighbors(5)
			for i := 1; i < len(nb); i++ {
				if nb[i-1] >= nb[i] {
					t.Error("neighbors not sorted")
					return
				}
			}
			// Clone and HasEdge read adjacency elements too; they must be
			// safe against a concurrent first-read sort.
			if c := g.Clone(); c.M() != g.M() {
				t.Errorf("clone has %d edges, want %d", c.M(), g.M())
			}
			for _, w := range nb {
				if !g.HasEdge(5, w) {
					t.Errorf("edge {5,%d} missing", w)
				}
			}
		}()
	}
	wg.Wait()
}
