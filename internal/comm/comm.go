// Package comm implements the two-party communication-complexity framework
// of Section 2.2: Alice and Bob computing the disjointness function DISJ_k,
// with explicit message and qubit accounting.
//
// The package provides the classical baseline protocol and a quantum
// protocol with bounded interaction — a blocked distributed Grover search —
// whose cost realizes the Õ(k/r + r) tradeoff that Braverman et al.
// [BGK+15] (the paper's Theorem 5) prove optimal. The paper's lower bounds
// (Theorems 2 and 3) transport exactly this tradeoff to diameter
// computation through the reductions in internal/reduction.
package comm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"qcongest/internal/bitstring"
	"qcongest/internal/qsim"
)

// Metrics tallies the cost of a two-party protocol run.
type Metrics struct {
	Messages  int // messages exchanged (alternating Alice/Bob)
	Qubits    int // total qubits (or bits, for classical protocols) sent
	MaxQubits int // largest single message
}

func (m *Metrics) send(q int) {
	m.Messages++
	m.Qubits += q
	if q > m.MaxQubits {
		m.MaxQubits = q
	}
}

// ClassicalDisj runs the trivial classical protocol: Alice ships her whole
// input, Bob answers with the result. Two messages, k+1 bits — the Theta(k)
// communication baseline [KS92, Raz92].
func ClassicalDisj(x, y *bitstring.Bits) (int, Metrics, error) {
	if x.Len() != y.Len() {
		return 0, Metrics{}, fmt.Errorf("comm: input lengths %d vs %d", x.Len(), y.Len())
	}
	var m Metrics
	m.send(x.Len()) // Alice -> Bob: x
	result := bitstring.Disj(x, y)
	m.send(1) // Bob -> Alice: DISJ(x, y)
	return result, m, nil
}

// GroverDisjResult reports a quantum protocol run.
type GroverDisjResult struct {
	Disj    int // 0 = intersecting, 1 = disjoint (paper convention)
	Witness int // a common index when Disj == 0, else -1
	Metrics Metrics
}

// BlockedGroverDisj computes DISJ_k with a bounded number of messages: the
// index set [k] is split into `blocks` blocks, and Alice amplitude-amplifies
// over block labels for a block whose restriction of x intersects y. Each
// oracle query costs one round trip in which Alice sends the block-label
// register plus her bits of the queried block (in superposition) and Bob
// returns them with the mark bit applied:
//
//	message size = ceil(log2 blocks) + ceil(k/blocks) + 1 qubits.
//
// With r messages the communication is O(r·(k/blocks + log blocks)); the
// amplification needs O(sqrt(blocks)) queries, so choosing blocks ≈ (r/4)^2
// realizes the [BGK+15]-optimal Õ(k/r + r) tradeoff, and blocks = k gives
// the Õ(sqrt(k)) protocol of [BCW98].
//
// The final classical verification (Alice ships the witness block) is
// included in the metrics.
func BlockedGroverDisj(x, y *bitstring.Bits, blocks int, rng *rand.Rand) (GroverDisjResult, error) {
	res := GroverDisjResult{Witness: -1}
	k := x.Len()
	if y.Len() != k {
		return res, fmt.Errorf("comm: input lengths %d vs %d", k, y.Len())
	}
	if k == 0 {
		res.Disj = 1
		return res, nil
	}
	if blocks < 1 {
		blocks = 1
	}
	if blocks > k {
		blocks = k
	}
	blockSize := (k + blocks - 1) / blocks
	msgQubits := bitsFor(blocks) + blockSize + 1

	blockIntersects := func(b int) bool {
		lo, hi := b*blockSize, (b+1)*blockSize
		if hi > k {
			hi = k
		}
		for i := lo; i < hi; i++ {
			if x.Get(i) && y.Get(i) {
				return true
			}
		}
		return false
	}

	labels := make([]int, blocks)
	for i := range labels {
		labels[i] = i
	}
	phi, err := qsim.NewUniform(labels)
	if err != nil {
		return res, err
	}

	// BBHT amplitude amplification; every Grover iteration queries the
	// distributed oracle once (Alice -> Bob -> Alice).
	budget := int(6*math.Sqrt(float64(blocks))) + 12
	mVal := 1.0
	const lambda = 1.2
	for iter := 0; iter < budget; {
		j := rng.Intn(int(mVal) + 1)
		if j > budget-iter {
			j = budget - iter
		}
		s := phi.Clone()
		for i := 0; i < j; i++ {
			res.Metrics.send(msgQubits) // Alice -> Bob: label + block
			res.Metrics.send(msgQubits) // Bob -> Alice: marked reply
			s.GroverIteration(phi, blockIntersects)
		}
		iter += j
		b := s.Measure(rng)
		// Classical verification of the candidate block.
		res.Metrics.send(bitsFor(blocks) + blockSize) // Alice -> Bob
		res.Metrics.send(1 + bitsFor(k))              // Bob -> Alice: verdict + witness
		if blockIntersects(b) {
			res.Disj = 0
			lo := b * blockSize
			for i := lo; i < lo+blockSize && i < k; i++ {
				if x.Get(i) && y.Get(i) {
					res.Witness = i
					break
				}
			}
			return res, nil
		}
		mVal = math.Min(lambda*mVal, math.Sqrt(float64(blocks))*2)
		if j == 0 && mVal < 1.5 {
			mVal = 1.5
		}
	}
	// Budget exhausted without finding an intersecting block: declare
	// disjoint. For actually-disjoint inputs this is always correct; for
	// intersecting inputs the failure probability is exponentially small
	// in the budget constant.
	res.Disj = 1
	return res, nil
}

// SqrtGroverDisj is the Õ(sqrt(k))-communication protocol: one block per
// index.
func SqrtGroverDisj(x, y *bitstring.Bits, rng *rand.Rand) (GroverDisjResult, error) {
	return BlockedGroverDisj(x, y, x.Len(), rng)
}

// TradeoffPoint is one measured point of the message/communication
// tradeoff.
type TradeoffPoint struct {
	MessageBudget int // requested bound on interaction
	Blocks        int
	Messages      int // measured
	Qubits        int // measured
}

// MeasureTradeoff runs BlockedGroverDisj across message budgets and reports
// the measured communication, reproducing the Theorem 5 curve
// Õ(k/r + r). Inputs are random intersecting pairs (the hard case), and
// each point averages over trials.
func MeasureTradeoff(k int, budgets []int, trials int, seed int64) ([]TradeoffPoint, error) {
	if k < 4 {
		return nil, errors.New("comm: k too small")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]TradeoffPoint, 0, len(budgets))
	for _, r := range budgets {
		blocks := (r / 4) * (r / 4)
		if blocks < 1 {
			blocks = 1
		}
		if blocks > k {
			blocks = k
		}
		var totalMsgs, totalQubits int
		for i := 0; i < trials; i++ {
			x, y := bitstring.RandomIntersectingPair(k, rng)
			res, err := BlockedGroverDisj(x, y, blocks, rng)
			if err != nil {
				return nil, err
			}
			if res.Disj != 0 {
				// Count failed runs too; they still cost communication.
				// (Failures are rare; correctness is tested separately.)
				_ = res
			}
			totalMsgs += res.Metrics.Messages
			totalQubits += res.Metrics.Qubits
		}
		out = append(out, TradeoffPoint{
			MessageBudget: r,
			Blocks:        blocks,
			Messages:      totalMsgs / trials,
			Qubits:        totalQubits / trials,
		})
	}
	return out, nil
}

func bitsFor(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}
