package comm

import (
	"math"
	"math/rand"
	"testing"

	"qcongest/internal/bitstring"
)

func TestClassicalDisj(t *testing.T) {
	x, _ := bitstring.FromString("10110")
	y, _ := bitstring.FromString("01001")
	r, m, err := ClassicalDisj(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("DISJ = %d, want 1", r)
	}
	if m.Messages != 2 || m.Qubits != 6 {
		t.Errorf("metrics = %+v", m)
	}
	y2, _ := bitstring.FromString("00110")
	r, _, err = ClassicalDisj(x, y2)
	if err != nil || r != 0 {
		t.Errorf("DISJ = %d,%v want 0,nil", r, err)
	}
	if _, _, err := ClassicalDisj(x, bitstring.New(3)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestGroverDisjCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const k = 128
	correct := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		var x, y *bitstring.Bits
		var want int
		if i%2 == 0 {
			x, y = bitstring.RandomIntersectingPair(k, rng)
			want = 0
		} else {
			x, y = bitstring.RandomDisjointPair(k, rng)
			want = 1
		}
		res, err := SqrtGroverDisj(x, y, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Disj == want {
			correct++
		}
		if want == 1 && res.Disj != 1 {
			t.Error("false intersection on disjoint inputs (one-sided error violated)")
		}
		if res.Disj == 0 {
			if res.Witness < 0 || !x.Get(res.Witness) || !y.Get(res.Witness) {
				t.Errorf("bad witness %d", res.Witness)
			}
		}
	}
	if correct < trials*9/10 {
		t.Errorf("correct %d/%d", correct, trials)
	}
}

func TestGroverDisjEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	res, err := BlockedGroverDisj(bitstring.New(0), bitstring.New(0), 4, rng)
	if err != nil || res.Disj != 1 {
		t.Errorf("empty inputs: %+v, %v", res, err)
	}
	x, _ := bitstring.FromString("1")
	y, _ := bitstring.FromString("1")
	res, err = BlockedGroverDisj(x, y, 5, rng)
	if err != nil || res.Disj != 0 || res.Witness != 0 {
		t.Errorf("k=1 intersecting: %+v, %v", res, err)
	}
	if _, err := BlockedGroverDisj(x, bitstring.New(2), 1, rng); err == nil {
		t.Error("length mismatch accepted")
	}
}

// The sqrt protocol's communication scales ~sqrt(k) log k, far below the
// classical k.
func TestSqrtProtocolCommunication(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	avgQubits := func(k int) float64 {
		total := 0
		const trials = 20
		for i := 0; i < trials; i++ {
			x, y := bitstring.RandomIntersectingPair(k, rng)
			res, err := SqrtGroverDisj(x, y, rng)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Metrics.Qubits
		}
		return float64(total) / trials
	}
	q64, q1024 := avgQubits(64), avgQubits(1024)
	// sqrt scaling with log factors: ratio should be ~ 4*log ratio ~ 7,
	// far below the classical ratio 16.
	if r := q1024 / q64; r > 12 {
		t.Errorf("communication ratio %g suggests super-sqrt scaling", r)
	}
}

// Reproduces the Theorem 5 tradeoff shape: communication follows a U-shaped
// curve in the message budget r — the k/r regime at small r, a minimum near
// r = sqrt(k), and the +r regime beyond it.
func TestTradeoffShape(t *testing.T) {
	const k = 4096
	points, err := MeasureTradeoff(k, []int{8, 16, 32, 64, 256}, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	byBudget := map[int]TradeoffPoint{}
	for _, p := range points {
		byBudget[p.MessageBudget] = p
	}
	// k/r regime: going from 8 to 16 messages should cut communication
	// substantially (measured ~2.1x; require >= 1.5x), and 8 -> 32 more so.
	if a, b := byBudget[8].Qubits, byBudget[16].Qubits; float64(a) < 1.5*float64(b) {
		t.Errorf("no k/r regime: qubits(8)=%d qubits(16)=%d", a, b)
	}
	if a, b := byBudget[8].Qubits, byBudget[32].Qubits; float64(a) < 2*float64(b) {
		t.Errorf("no k/r regime: qubits(8)=%d qubits(32)=%d", a, b)
	}
	// The minimum sits near r = sqrt(k) = 64: both ends of the sweep cost
	// more than the middle (the U shape).
	mid := byBudget[64].Qubits
	if byBudget[8].Qubits <= mid || byBudget[256].Qubits <= mid {
		t.Errorf("no U shape: %d / %d / %d", byBudget[8].Qubits, mid, byBudget[256].Qubits)
	}
	// And the optimum is within a moderate factor of the sqrt(k) log k floor.
	floor := math.Sqrt(k) * math.Log2(k)
	if float64(mid) > 10*floor {
		t.Errorf("optimum %d too far above sqrt-k floor %g", mid, floor)
	}
	if _, err := MeasureTradeoff(2, []int{4}, 1, 1); err == nil {
		t.Error("tiny k accepted")
	}
}

func TestMetricsAccounting(t *testing.T) {
	var m Metrics
	m.send(5)
	m.send(3)
	if m.Messages != 2 || m.Qubits != 8 || m.MaxQubits != 5 {
		t.Errorf("metrics = %+v", m)
	}
}
