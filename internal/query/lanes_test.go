package query_test

// Lane-fusion tests of the query framework: a BatchOracle built over the
// Session-backed valueOracle checks the lane backend returns bit-identical
// Results to solo evaluation across lane widths and worker counts, the
// solo fallback when a family declines to fuse, and the error contracts
// (smallest-failing-element selection for queries, unwrapped LaneErrors
// for EvalAll) on in-memory fakes.

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
	"qcongest/internal/query"
)

// batchValueOracle upgrades valueOracle to a query.BatchOracle. Each
// EvalBatch evaluates its inputs serially on one inner solo context, so
// values and round counts are bit-identical to solo Evals by construction —
// the BatchContext contract. disable reports the family as unfusable
// (NewBatchContext = nil), exercising the documented solo fallback.
type batchValueOracle struct {
	*valueOracle
	disable bool
	built   int
}

func (o *batchValueOracle) NewBatchContext(lanes int) query.BatchContext {
	if o.disable {
		return nil
	}
	o.built++
	return &batchValueContext{inner: o.NewContext(), width: lanes}
}

type batchValueContext struct {
	inner query.Context
	width int
}

func (c *batchValueContext) Width() int { return c.width }

func (c *batchValueContext) EvalBatch(xs []int) ([]int, []int, error) {
	values := make([]int, len(xs))
	rounds := make([]int, len(xs))
	for i, x := range xs {
		v, r, err := c.inner.Eval(x)
		if err != nil {
			return nil, nil, &congest.LaneError{Lane: i, Err: err}
		}
		values[i], rounds[i] = v, r
	}
	return values, rounds, nil
}

func (c *batchValueContext) Close() { c.inner.Close() }

// laneRun is the full set of query outcomes one configuration produces.
type laneRun struct {
	Min, Max, Search, Count query.Result
	All                     []int
	EvalRounds              int
}

func runLaneQueries(t *testing.T, oracle query.Oracle, opts query.Options, threshold int) laneRun {
	t.Helper()
	n := len(oracle.Domain())
	marked := func(v int) bool { return v >= threshold }
	var run laneRun
	var err error
	if run.Min, err = query.Minimum(oracle, 1/float64(n), opts); err != nil {
		t.Fatalf("Minimum: %v", err)
	}
	if run.Max, err = query.Maximum(oracle, 1/float64(n), opts); err != nil {
		t.Fatalf("Maximum: %v", err)
	}
	if run.Search, err = query.Search(oracle, marked, opts); err != nil {
		t.Fatalf("Search: %v", err)
	}
	if run.Count, err = query.Count(oracle, marked, opts); err != nil {
		t.Fatalf("Count: %v", err)
	}
	if run.All, run.EvalRounds, err = query.EvalAll(oracle, opts); err != nil {
		t.Fatalf("EvalAll: %v", err)
	}
	return run
}

// TestQueryLanesBitIdentical checks that lane fusion (Options.Lanes through
// a BatchOracle) reproduces the solo baseline bit for bit — every query
// Result, the EvalAll table and its uniform cost — across lane widths
// (including one wider than the domain), worker counts, and the
// nil-BatchContext fallback. The zero Options (Delta/Parallel/Lanes all
// defaulted) serve as the baseline, covering the option default paths.
func TestQueryLanesBitIdentical(t *testing.T) {
	g := graph.RandomConnected(16, 0.18, 9)
	rng := rand.New(rand.NewSource(99))
	vals := make([]int, g.N())
	for v := range vals {
		vals[v] = rng.Intn(4*g.N() + 1)
	}
	threshold := rng.Intn(4*g.N() + 2)
	engine := []congest.Option{congest.WithStrictAccounting()}

	solo := newValueOracle(t, g, vals, engine...)
	base := runLaneQueries(t, solo, query.Options{Seed: 17}, threshold)
	if !reflect.DeepEqual(base.All, vals) {
		t.Fatalf("EvalAll = %v, want the value table %v", base.All, vals)
	}

	for _, cfg := range []struct {
		name            string
		lanes, parallel int
	}{
		{"lanes2", 2, 0},
		{"lanes5/par3", 5, 3},
		{"lanes-wider-than-domain", g.N() + 3, 1},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			oracle := &batchValueOracle{valueOracle: newValueOracle(t, g, vals, engine...)}
			opts := query.Options{Seed: 17, Lanes: cfg.lanes, Parallel: cfg.parallel}
			got := runLaneQueries(t, oracle, opts, threshold)
			if !reflect.DeepEqual(got, base) {
				t.Errorf("lane run diverges from solo baseline:\n got %+v\nwant %+v", got, base)
			}
			if oracle.built == 0 {
				t.Error("BatchOracle was never asked for a batch context")
			}
		})
	}

	t.Run("nil-batch-context-fallback", func(t *testing.T) {
		oracle := &batchValueOracle{valueOracle: newValueOracle(t, g, vals, engine...), disable: true}
		got := runLaneQueries(t, oracle, query.Options{Seed: 17, Lanes: 4}, threshold)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("fallback run diverges from solo baseline:\n got %+v\nwant %+v", got, base)
		}
	})
}

// fakeOracle is an in-memory BatchOracle for the error contracts: f(x) =
// (x*37) mod 101 in a fixed 7 rounds, failing at failAt (-1: never), with
// optional input-dependent round counts (uneven).
type fakeOracle struct {
	n      int
	failAt int
	uneven bool
}

func (o *fakeOracle) Domain() []int {
	d := make([]int, o.n)
	for i := range d {
		d[i] = i
	}
	return d
}

func (o *fakeOracle) InitRounds() int           { return 3 }
func (o *fakeOracle) SetupRounds() int          { return 2 }
func (o *fakeOracle) NewContext() query.Context { return fakeContext{o} }
func (o *fakeOracle) eval(x int) (int, int, error) {
	if x == o.failAt {
		return 0, 0, errors.New("relay window missed")
	}
	r := 7
	if o.uneven {
		r += x % 2
	}
	return (x * 37) % 101, r, nil
}

type fakeContext struct{ o *fakeOracle }

func (c fakeContext) Eval(x int) (int, int, error) { return c.o.eval(x) }
func (c fakeContext) Close()                       {}

func (o *fakeOracle) NewBatchContext(lanes int) query.BatchContext {
	return fakeBatchContext{o: o, width: lanes}
}

type fakeBatchContext struct {
	o     *fakeOracle
	width int
}

func (b fakeBatchContext) Width() int { return b.width }

func (b fakeBatchContext) EvalBatch(xs []int) ([]int, []int, error) {
	values := make([]int, len(xs))
	rounds := make([]int, len(xs))
	for i, x := range xs {
		v, r, err := b.o.eval(x)
		if err != nil {
			return nil, nil, &congest.LaneError{Lane: i, Err: err}
		}
		values[i], rounds[i] = v, r
	}
	return values, rounds, nil
}

func (b fakeBatchContext) Close() {}

// TestQueryLaneErrorContract pins the error selection rules: queries wrap
// the smallest failing element as "evaluate <x>" whether the failure came
// from a lane or a solo pool; EvalAll surfaces the lane error unwrapped,
// with the solo evaluation's message.
func TestQueryLaneErrorContract(t *testing.T) {
	failing := &fakeOracle{n: 12, failAt: 7}
	eps := 1.0 / 12

	if _, err := query.Maximum(failing, eps, query.Options{Seed: 1, Lanes: 3}); err == nil {
		t.Error("lane-fused Maximum on a failing oracle: no error")
	} else {
		if !strings.Contains(err.Error(), "evaluate 7") {
			t.Errorf("lane-fused Maximum error %q does not name element 7", err)
		}
		var le *congest.LaneError
		if !errors.As(err, &le) || le.Lane != 7%3 {
			t.Errorf("lane-fused Maximum error %v: lane %d, want %d", err, le.Lane, 7%3)
		}
	}
	if _, err := query.Minimum(failing, eps, query.Options{Seed: 1, Lanes: 2, Parallel: 3}); err == nil {
		t.Error("sharded lane-fused Minimum on a failing oracle: no error")
	} else if !strings.Contains(err.Error(), "evaluate 7") {
		t.Errorf("sharded Minimum error %q does not name element 7", err)
	}
	// The solo batch pool (Parallel > 1, no lanes) applies the same wrapping.
	if _, err := query.Maximum(failing, eps, query.Options{Seed: 1, Parallel: 4}); err == nil {
		t.Error("pooled Maximum on a failing oracle: no error")
	} else if !strings.Contains(err.Error(), "evaluate 7") {
		t.Errorf("pooled Maximum error %q does not name element 7", err)
	}
	if _, err := query.Search(failing, func(int) bool { return false }, query.Options{Seed: 1, Lanes: 4}); err == nil {
		t.Error("lane-fused Search on a failing oracle: no error")
	}

	// EvalAll: unwrapped (the *congest.LaneError itself), message equal to
	// the solo evaluation's; the solo path returns the bare error.
	_, _, err := query.EvalAll(failing, query.Options{Lanes: 3})
	var le *congest.LaneError
	if !errors.As(err, &le) {
		t.Errorf("lane-fused EvalAll error %v is not a *congest.LaneError", err)
	}
	if err == nil || err.Error() != "relay window missed" {
		t.Errorf("lane-fused EvalAll error %v, want the solo message", err)
	}
	_, _, soloErr := query.EvalAll(failing, query.Options{})
	if soloErr == nil || soloErr.Error() != "relay window missed" {
		t.Errorf("solo EvalAll error %v, want the bare evaluation error", soloErr)
	}

	// Input-dependent round counts violate the uniformity EvalAll asserts,
	// on both the lane-fused and solo paths.
	uneven := &fakeOracle{n: 10, failAt: -1, uneven: true}
	for _, opts := range []query.Options{{Lanes: 3}, {}} {
		if _, _, err := query.EvalAll(uneven, opts); err == nil || !strings.Contains(err.Error(), "evaluation cost depends on input") {
			t.Errorf("uneven oracle, opts %+v: err %v, want the uniformity violation", opts, err)
		}
	}

	// An empty domain evaluates to an empty table at zero cost.
	if vals, rounds, err := query.EvalAll(&fakeOracle{n: 0, failAt: -1}, query.Options{Lanes: 2}); err != nil || len(vals) != 0 || rounds != 0 {
		t.Errorf("empty domain: (%v, %d, %v), want ([], 0, nil)", vals, rounds, err)
	}
}
