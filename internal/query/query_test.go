package query_test

// Property tests of the query framework against brute force, on real
// Session-backed oracles: f(v) = vals[v] for random value tables over ~50
// random graphs, each Evaluation one genuine max-convergecast on the
// preprocessing BFS tree. Every query kind is cross-checked against the
// plain loop over vals, and the full Result (values and every measured
// cost) must be bit-identical across worker counts, sequential vs batched
// evaluation, and both schedulers.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
	"qcongest/internal/query"
)

// valueOracle is a Session-backed query.Oracle over f(v) = vals[v]: each
// Evaluation injects vals[u0] at u0 (zero elsewhere) and extracts it at the
// leader by one max convergecast, so the round count is tree-determined and
// input-independent. Values must lie in [0, 4n] (the msgMax wire range).
type valueOracle struct {
	topo       *congest.Topology
	info       *congest.PreInfo
	vals       []int
	initRounds int
	engine     []congest.Option
}

func newValueOracle(t *testing.T, g *graph.Graph, vals []int, engine ...congest.Option) *valueOracle {
	t.Helper()
	topo, err := congest.NewTopology(g)
	if err != nil {
		t.Fatalf("NewTopology: %v", err)
	}
	info, pre, err := congest.PreprocessOn(topo, engine...)
	if err != nil {
		t.Fatalf("PreprocessOn: %v", err)
	}
	return &valueOracle{topo: topo, info: info, vals: vals, initRounds: pre.Rounds, engine: engine}
}

func (o *valueOracle) Domain() []int {
	domain := make([]int, o.topo.N())
	for v := range domain {
		domain[v] = v
	}
	return domain
}

func (o *valueOracle) InitRounds() int  { return o.initRounds }
func (o *valueOracle) SetupRounds() int { return o.info.D + 1 }

func (o *valueOracle) NewContext() query.Context {
	return &valueContext{
		cc: congest.NewSession(o.topo, func(v int) congest.Node {
			return congest.NewConvergecastMaxNode(o.info.Parent[v], o.info.Children[v], 0, v)
		}, o.engine...),
		leader: o.info.Leader,
		vals:   o.vals,
		buf:    make([]int, o.topo.N()),
	}
}

type valueContext struct {
	cc     *congest.Session
	leader int
	vals   []int
	buf    []int
}

func (c *valueContext) Eval(x int) (int, int, error) {
	for v := range c.buf {
		c.buf[v] = 0
	}
	c.buf[x] = c.vals[x]
	if err := c.cc.Reset(congest.MaxInputs{Values: c.buf}); err != nil {
		return 0, 0, err
	}
	if err := c.cc.Run(4*len(c.buf) + 16); err != nil {
		return 0, 0, err
	}
	return c.cc.Node(c.leader).(*congest.ConvergecastMaxNode).Max, c.cc.Metrics().Rounds, nil
}

func (c *valueContext) Close() { c.cc.Close() }

// propertyCase is one randomized graph of the suite.
type propertyCase struct {
	name string
	g    *graph.Graph
	seed int64
}

// propertySuite builds the ~50-graph randomized suite: random-regular,
// Erdős–Rényi, random trees, and weighted variants (the values under query
// are independent of the weights; the weighted graphs vary the topologies).
func propertySuite(t *testing.T) []propertyCase {
	t.Helper()
	var cases []propertyCase
	add := func(name string, g *graph.Graph, seed int64) {
		cases = append(cases, propertyCase{name: name, g: g, seed: seed})
	}
	for i := 0; i < 10; i++ {
		n := 10 + 2*(i%5)
		g, err := graph.RandomRegular(n, 3, int64(20+i))
		if err != nil {
			t.Fatalf("RandomRegular(%d, 3, %d): %v", n, 20+i, err)
		}
		add(fmt.Sprintf("regular/n=%d/i=%d", n, i), g, int64(1000+i))
	}
	for i := 0; i < 14; i++ {
		n := 10 + i
		p := 0.10 + 0.03*float64(i%4)
		add(fmt.Sprintf("er/n=%d/i=%d", n, i),
			graph.RandomConnected(n, p, int64(120+i)), int64(2000+i))
	}
	for i := 0; i < 13; i++ {
		n := 8 + i
		add(fmt.Sprintf("tree/n=%d/i=%d", n, i),
			graph.RandomTree(n, int64(220+i)), int64(3000+i))
	}
	for i := 0; i < 13; i++ {
		n := 9 + i
		base := graph.RandomConnected(n, 0.15, int64(320+i))
		add(fmt.Sprintf("er-weighted/n=%d/i=%d", n, i),
			graph.WithWeights(base, 1+i%8, int64(420+i)), int64(4000+i))
	}
	return cases
}

// queryConfig is one engine/evaluation configuration the Results must be
// bit-identical across.
type queryConfig struct {
	name     string
	parallel int
	engine   []congest.Option
}

func queryConfigs() []queryConfig {
	return []queryConfig{
		{"w1-seq-frontier", 1, []congest.Option{
			congest.WithWorkers(1), congest.WithScheduler(congest.SchedulerFrontier), congest.WithStrictAccounting()}},
		{"w2-seq-dense", 1, []congest.Option{
			congest.WithWorkers(2), congest.WithScheduler(congest.SchedulerDense), congest.WithStrictAccounting()}},
		{"w8-par4-frontier", 4, []congest.Option{
			congest.WithWorkers(8), congest.WithScheduler(congest.SchedulerFrontier), congest.WithStrictAccounting()}},
		{"w1-par4-dense", 4, []congest.Option{
			congest.WithWorkers(1), congest.WithScheduler(congest.SchedulerDense), congest.WithStrictAccounting()}},
	}
}

// propertyDelta keeps the per-query failure probability far below the suite
// size; with the fixed seeds below every run is deterministic anyway.
const propertyDelta = 1e-6

// caseRun is the full set of query Results of one case under one
// configuration.
type caseRun struct {
	Min, Max, Search, SearchNone, Count query.Result
}

func runCase(t *testing.T, pc propertyCase, vals []int, threshold int, cfg queryConfig) caseRun {
	t.Helper()
	oracle := newValueOracle(t, pc.g, vals, cfg.engine...)
	n := len(vals)
	opts := query.Options{Delta: propertyDelta, Seed: pc.seed, Parallel: cfg.parallel}
	marked := func(v int) bool { return v >= threshold }
	var run caseRun
	var err error
	if run.Min, err = query.Minimum(oracle, 1/float64(n), opts); err != nil {
		t.Fatalf("Minimum: %v", err)
	}
	if run.Max, err = query.Maximum(oracle, 1/float64(n), opts); err != nil {
		t.Fatalf("Maximum: %v", err)
	}
	if run.Search, err = query.Search(oracle, marked, opts); err != nil {
		t.Fatalf("Search: %v", err)
	}
	// The impossible predicate: msgMax values never exceed 4n.
	if run.SearchNone, err = query.Search(oracle, func(v int) bool { return v > 4*n }, opts); err != nil {
		t.Fatalf("Search(impossible): %v", err)
	}
	if run.Count, err = query.Count(oracle, marked, opts); err != nil {
		t.Fatalf("Count: %v", err)
	}
	return run
}

// checkCase asserts every query Result against the brute-force loop.
func checkCase(t *testing.T, vals []int, threshold int, run caseRun) {
	t.Helper()
	trueMin, trueMax, markedSet := vals[0], vals[0], map[int]bool{}
	for v, val := range vals {
		trueMin = min(trueMin, val)
		trueMax = max(trueMax, val)
		if val >= threshold {
			markedSet[v] = true
		}
	}
	if !run.Min.Found || run.Min.Value != trueMin || vals[run.Min.X] != trueMin {
		t.Errorf("Minimum: got X=%d Value=%d Found=%v, want value %d", run.Min.X, run.Min.Value, run.Min.Found, trueMin)
	}
	if !run.Max.Found || run.Max.Value != trueMax || vals[run.Max.X] != trueMax {
		t.Errorf("Maximum: got X=%d Value=%d Found=%v, want value %d", run.Max.X, run.Max.Value, run.Max.Found, trueMax)
	}
	if run.Search.Found != (len(markedSet) > 0) {
		t.Errorf("Search: Found=%v, want %v (|marked|=%d)", run.Search.Found, len(markedSet) > 0, len(markedSet))
	}
	if run.Search.Found && !markedSet[run.Search.X] {
		t.Errorf("Search: returned unmarked element %d (value %d)", run.Search.X, run.Search.Value)
	}
	if run.SearchNone.Found {
		t.Errorf("Search(impossible): Found=true at X=%d", run.SearchNone.X)
	}
	if run.Count.Count != len(markedSet) {
		t.Errorf("Count: got %d marked, want %d", run.Count.Count, len(markedSet))
	}
	for _, x := range run.Count.All {
		if !markedSet[x] {
			t.Errorf("Count: listed unmarked element %d", x)
		}
	}
	seen := map[int]bool{}
	for _, x := range run.Count.All {
		if seen[x] {
			t.Errorf("Count: element %d listed twice", x)
		}
		seen[x] = true
	}
}

// TestQueryProperties cross-checks Search/Minimum/Maximum/Count against
// brute force on every suite graph and asserts the full Results are
// bit-identical across workers {1,2,8} x sequential/batched x
// Dense/Frontier, under strict wire accounting.
func TestQueryProperties(t *testing.T) {
	configs := queryConfigs()
	for _, pc := range propertySuite(t) {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			t.Parallel()
			n := pc.g.N()
			rng := rand.New(rand.NewSource(pc.seed))
			vals := make([]int, n)
			for v := range vals {
				vals[v] = rng.Intn(4*n + 1)
			}
			// Thresholds sweep empty, sparse and dense marked sets across
			// cases (v >= 0 marks everything; v >= 4n+1 is impossible and
			// covered separately by SearchNone).
			threshold := rng.Intn(4*n + 2)
			base := runCase(t, pc, vals, threshold, configs[0])
			checkCase(t, vals, threshold, base)
			for _, cfg := range configs[1:] {
				got := runCase(t, pc, vals, threshold, cfg)
				if !reflect.DeepEqual(got, base) {
					t.Errorf("%s: Results diverge from %s:\n got %+v\nwant %+v",
						cfg.name, configs[0].name, got, base)
				}
			}
		})
	}
}

// TestQueryEvalAll asserts the exhaustive evaluation path returns the exact
// value table with a uniform per-element cost, identically across
// configurations.
func TestQueryEvalAll(t *testing.T) {
	g := graph.RandomConnected(14, 0.2, 11)
	rng := rand.New(rand.NewSource(77))
	vals := make([]int, g.N())
	for v := range vals {
		vals[v] = rng.Intn(4*g.N() + 1)
	}
	var baseRounds int
	for i, cfg := range queryConfigs() {
		oracle := newValueOracle(t, g, vals, cfg.engine...)
		got, evalRounds, err := query.EvalAll(oracle, query.Options{Seed: 5, Parallel: cfg.parallel})
		if err != nil {
			t.Fatalf("%s: EvalAll: %v", cfg.name, err)
		}
		if !reflect.DeepEqual(got, vals) {
			t.Errorf("%s: EvalAll = %v, want %v", cfg.name, got, vals)
		}
		if i == 0 {
			baseRounds = evalRounds
		} else if evalRounds != baseRounds {
			t.Errorf("%s: evalRounds = %d, want %d", cfg.name, evalRounds, baseRounds)
		}
	}
}
