// Package query is the reusable distributed quantum-query layer: generic
// Search, Minimum/Maximum, Count and EvalAll over any Session-backed
// evaluation oracle, in the style of the distributed-query frameworks that
// followed the paper (van Apeldoorn–de Vos). An Oracle describes one
// distributed Evaluation family — its domain, its measured Initialization
// and Setup costs, and a factory of independent evaluation contexts — and
// the package runs the quantum machinery of internal/qcongest (Theorem 7
// round accounting) and internal/amplify (amplitude amplification) over it.
//
// Every algorithm of internal/core is one call into this package; the
// golden-compatibility tests of internal/core pin that port to the
// pre-refactor outputs bit for bit.
//
// # Determinism
//
// For a fixed Oracle and Options, every function here is deterministic:
// measurements are driven by rand.New(rand.NewSource(Seed)), evaluations
// are memoized per run, and Options.Parallel only changes which cloned
// context computes each value — the values themselves are deterministic and
// the amplification consumes the memo table, so results, round counts and
// qubit counts are identical for every Parallel value and every engine
// configuration the oracle's sessions were built with.
package query

import (
	"fmt"
	"math/rand"

	"qcongest/internal/congest"
	"qcongest/internal/qcongest"
)

// Context is one independent evaluation context: Eval computes the
// distributed Evaluation for one input and reports the measured round count
// of one classical execution. Contexts returned by the same Oracle share no
// mutable state, so distinct contexts may evaluate concurrently (each one
// still evaluates serially).
type Context interface {
	Eval(x int) (value, rounds int, err error)
	Close()
}

// Oracle describes one distributed Evaluation family to run queries over.
type Oracle interface {
	// Domain is the set X the query ranges over (basis labels of the
	// internal register; typically vertex ids).
	Domain() []int
	// InitRounds is T0, the measured cost of the preparatory distributed
	// phases (preprocessing, probes) — charged once.
	InitRounds() int
	// SetupRounds is the measured cost of one Setup application (broadcast
	// of the leader's register along the BFS tree).
	SetupRounds() int
	// NewContext builds one independent evaluation context. Each context is
	// backed by its own reusable sessions (congest.Session): the caller
	// closes it when the query completes.
	NewContext() Context
}

// Options configures one query.
type Options struct {
	// Delta is the allowed failure probability (default 0.1).
	Delta float64
	// Seed drives all measurements.
	Seed int64
	// Parallel is the number of cloned evaluation contexts used to run
	// independent Evaluations concurrently (<= 1: one context, sequential).
	// The computed Result is identical for every value.
	Parallel int
}

func (o Options) delta() float64 {
	if o.Delta <= 0 || o.Delta >= 1 {
		return 0.1
	}
	return o.Delta
}

func (o Options) parallel() int {
	if o.Parallel < 1 {
		return 1
	}
	return o.Parallel
}

// Result reports one query outcome together with its measured costs.
type Result struct {
	// X is the returned domain element: the argmax/argmin of an
	// optimization, or the found element of a search (valid when Found).
	X int
	// Value is the Evaluation value at X.
	Value int
	// Found reports whether Search measured a marked element (always true
	// for successful optimizations; for Count, true iff Count > 0).
	Found bool
	// All and Count list the marked elements found by Count, in discovery
	// order.
	All   []int
	Count int
	// Rounds is the total distributed round complexity per Theorem 7.
	Rounds int
	// InitRounds, SetupRounds and EvalRounds are the measured costs of the
	// three framework operations (Evaluation: one classical execution).
	InitRounds  int
	SetupRounds int
	EvalRounds  int
	// Iterations is the number of amplitude-amplification steps performed.
	Iterations int
	// LeaderQubits / NodeQubits are the quantum memory accounting.
	LeaderQubits int
	NodeQubits   int
}

// contextPool builds the pool of evaluation contexts every query runs on:
// context 0 serves the sequential path, and with parallel > 1 the whole pool
// serves batched evaluation. The returned batch closure is nil when the
// query should evaluate lazily (sequential), mirroring qcongest's contract.
func contextPool(o Oracle, parallel int, negate bool) (*congest.Pool[Context], qcongest.EvalProc, func([]int) ([]int, []int, error)) {
	pool, _ := congest.NewPool(parallel, func(int) (Context, error) { return o.NewContext(), nil })
	evaluate := pool.Get(0).Eval
	if negate {
		inner := evaluate
		evaluate = func(x int) (int, int, error) {
			v, r, err := inner(x)
			return -v, r, err
		}
	}
	var batch func([]int) ([]int, []int, error)
	if parallel > 1 {
		// Precompute every domain value on the pool. The amplification then
		// runs entirely against the memoized table; since evaluations are
		// deterministic, the Result is the one sequential evaluation yields.
		batch = func(domain []int) ([]int, []int, error) {
			values := make([]int, len(domain))
			rounds := make([]int, len(domain))
			err := pool.Do(len(domain), func(j int, c Context) error {
				v, r, err := c.Eval(domain[j])
				if err != nil {
					return fmt.Errorf("evaluate %d: %w", domain[j], err)
				}
				if negate {
					v = -v
				}
				values[j], rounds[j] = v, r
				return nil
			})
			return values, rounds, err
		}
	}
	return pool, evaluate, batch
}

// optimize is the shared body of Maximum and Minimum: quantum optimization
// (Dürr–Høyer via qcongest.Optimizer) over the oracle, negating values for
// minimization (the threshold climb is symmetric).
func optimize(o Oracle, eps float64, opts Options, minimize bool) (Result, error) {
	pool, evaluate, batch := contextPool(o, opts.parallel(), minimize)
	defer pool.Close(func(c Context) { c.Close() })

	opt := &qcongest.Optimizer{
		Domain:      o.Domain(),
		Evaluate:    evaluate,
		InitRounds:  o.InitRounds(),
		SetupRounds: o.SetupRounds(),
		Eps:         eps,
		Delta:       opts.delta(),
		Rng:         rand.New(rand.NewSource(opts.Seed)),
	}
	opt.Batch = batch
	qr, err := opt.Run()
	if err != nil {
		return Result{}, err
	}
	value := qr.Value
	if minimize {
		value = -value
	}
	return Result{
		X:            qr.Argmax,
		Value:        value,
		Found:        true,
		Rounds:       qr.Rounds,
		InitRounds:   o.InitRounds(),
		SetupRounds:  o.SetupRounds(),
		EvalRounds:   qr.ClassicalEvalRounds,
		Iterations:   qr.Counters.GroverIterations,
		LeaderQubits: qr.LeaderQubits,
		NodeQubits:   qr.NodeQubits,
	}, nil
}

// Maximum finds a domain element maximizing the oracle's Evaluation value,
// with failure probability at most Options.Delta, provided the probability
// mass of maximizers under the uniform initial state is at least eps.
func Maximum(o Oracle, eps float64, opts Options) (Result, error) {
	return optimize(o, eps, opts, false)
}

// Minimum is Maximum's minimization twin (Dürr–Høyer is symmetric: amplify
// over negated values); eps then bounds the mass of minimizers.
func Minimum(o Oracle, eps float64, opts Options) (Result, error) {
	return optimize(o, eps, opts, true)
}

// search is the shared body of Search and Count.
func search(o Oracle, marked func(value int) bool, opts Options, count bool) (Result, error) {
	pool, evaluate, batch := contextPool(o, opts.parallel(), false)
	defer pool.Close(func(c Context) { c.Close() })

	s := &qcongest.Searcher{
		Domain:      o.Domain(),
		Evaluate:    evaluate,
		Marked:      marked,
		InitRounds:  o.InitRounds(),
		SetupRounds: o.SetupRounds(),
		Batch:       batch,
		Delta:       opts.delta(),
		Rng:         rand.New(rand.NewSource(opts.Seed)),
	}
	var sr qcongest.SearchOutcome
	var err error
	if count {
		sr, err = s.RunCount()
	} else {
		sr, err = s.Run()
	}
	if err != nil {
		return Result{}, err
	}
	return Result{
		X:            sr.X,
		Value:        sr.Value,
		Found:        sr.Found,
		All:          sr.All,
		Count:        sr.Count,
		Rounds:       sr.Rounds,
		InitRounds:   o.InitRounds(),
		SetupRounds:  o.SetupRounds(),
		EvalRounds:   sr.ClassicalEvalRounds,
		Iterations:   sr.Counters.GroverIterations,
		LeaderQubits: sr.LeaderQubits,
		NodeQubits:   sr.NodeQubits,
	}, nil
}

// Search runs one BBHT amplitude-amplified search for a domain element
// whose Evaluation value satisfies marked. A not-found outcome is reported
// through Result.Found=false, not an error: with probability at least
// 1-Options.Delta the marked set is then empty, and the rounds spent by the
// fruitless amplification are charged to the Result either way.
func Search(o Oracle, marked func(value int) bool, opts Options) (Result, error) {
	return search(o, marked, opts, false)
}

// Count enumerates every marked domain element by the search-and-exclude
// loop and reports the exact count with probability at least 1-Delta.
func Count(o Oracle, marked func(value int) bool, opts Options) (Result, error) {
	return search(o, marked, opts, true)
}

// EvalAll runs one Evaluation per domain element on the context pool (the
// straight-line, non-quantum use of an oracle: internal/core's
// Eccentricities) and returns the per-element values in domain order
// together with the uniform per-evaluation round count, which EvalAll
// asserts (the property the quantum queries rely on).
func EvalAll(o Oracle, opts Options) (values []int, evalRounds int, err error) {
	pool, _, _ := contextPool(o, opts.parallel(), false)
	defer pool.Close(func(c Context) { c.Close() })

	domain := o.Domain()
	values = make([]int, len(domain))
	rounds := make([]int, len(domain))
	if err := pool.Do(len(domain), func(j int, c Context) error {
		v, r, err := c.Eval(domain[j])
		if err != nil {
			return err
		}
		values[j], rounds[j] = v, r
		return nil
	}); err != nil {
		return nil, 0, err
	}
	if len(domain) == 0 {
		return values, 0, nil
	}
	evalRounds = rounds[0]
	for j, r := range rounds {
		if r != evalRounds {
			return nil, 0, fmt.Errorf("query: evaluation cost depends on input: %d rounds at element %d, %d at element %d", r, domain[j], evalRounds, domain[0])
		}
	}
	return values, evalRounds, nil
}
