// Package query is the reusable distributed quantum-query layer: generic
// Search, Minimum/Maximum, Count and EvalAll over any Session-backed
// evaluation oracle, in the style of the distributed-query frameworks that
// followed the paper (van Apeldoorn–de Vos). An Oracle describes one
// distributed Evaluation family — its domain, its measured Initialization
// and Setup costs, and a factory of independent evaluation contexts — and
// the package runs the quantum machinery of internal/qcongest (Theorem 7
// round accounting) and internal/amplify (amplitude amplification) over it.
//
// Every algorithm of internal/core is one call into this package; the
// golden-compatibility tests of internal/core pin that port to the
// pre-refactor outputs bit for bit.
//
// # Determinism
//
// For a fixed Oracle and Options, every function here is deterministic:
// measurements are driven by rand.New(rand.NewSource(Seed)), evaluations
// are memoized per run, and Options.Parallel only changes which cloned
// context computes each value — the values themselves are deterministic and
// the amplification consumes the memo table, so results, round counts and
// qubit counts are identical for every Parallel value and every engine
// configuration the oracle's sessions were built with.
package query

import (
	"errors"
	"fmt"
	"math/rand"

	"qcongest/internal/congest"
	"qcongest/internal/qcongest"
)

// Context is one independent evaluation context: Eval computes the
// distributed Evaluation for one input and reports the measured round count
// of one classical execution. Contexts returned by the same Oracle share no
// mutable state, so distinct contexts may evaluate concurrently (each one
// still evaluates serially).
type Context interface {
	Eval(x int) (value, rounds int, err error)
	Close()
}

// BatchContext is a lane-fused evaluation context: EvalBatch computes up to
// Width() independent Evaluations through one lockstep engine pass
// (congest.MultiSession), returning per-input values and measured round
// counts bit-identical to Width() solo Context.Eval calls. A failure is
// reported as a *congest.LaneError for the smallest failing input, whose
// message equals the solo evaluation's error. Like a Context, a
// BatchContext evaluates serially; distinct BatchContexts may run
// concurrently.
type BatchContext interface {
	EvalBatch(xs []int) (values, rounds []int, err error)
	Width() int
	Close()
}

// BatchOracle is an Oracle whose Evaluation family supports lane-fused
// batching. NewBatchContext returns nil when the family cannot fuse (the
// queries then fall back to solo contexts), so embedding oracles can
// delegate the decision per configuration.
type BatchOracle interface {
	Oracle
	NewBatchContext(lanes int) BatchContext
}

// Oracle describes one distributed Evaluation family to run queries over.
type Oracle interface {
	// Domain is the set X the query ranges over (basis labels of the
	// internal register; typically vertex ids).
	Domain() []int
	// InitRounds is T0, the measured cost of the preparatory distributed
	// phases (preprocessing, probes) — charged once.
	InitRounds() int
	// SetupRounds is the measured cost of one Setup application (broadcast
	// of the leader's register along the BFS tree).
	SetupRounds() int
	// NewContext builds one independent evaluation context. Each context is
	// backed by its own reusable sessions (congest.Session): the caller
	// closes it when the query completes.
	NewContext() Context
}

// Options configures one query.
type Options struct {
	// Delta is the allowed failure probability (default 0.1).
	Delta float64
	// Seed drives all measurements.
	Seed int64
	// Parallel is the number of cloned evaluation contexts used to run
	// independent Evaluations concurrently (<= 1: one context, sequential).
	// The computed Result is identical for every value.
	Parallel int
	// Lanes is the number of Evaluations fused into one engine pass when
	// the oracle supports lane batching (BatchOracle); <= 1 keeps solo
	// contexts. Lane fusion amortizes the per-round scheduler cost and
	// composes with Parallel (each of the Parallel workers runs a
	// Lanes-wide context). The computed Result is identical for every
	// value.
	Lanes int
}

func (o Options) delta() float64 {
	if o.Delta <= 0 || o.Delta >= 1 {
		return 0.1
	}
	return o.Delta
}

func (o Options) parallel() int {
	if o.Parallel < 1 {
		return 1
	}
	return o.Parallel
}

func (o Options) lanes() int {
	if o.Lanes < 1 {
		return 1
	}
	return o.Lanes
}

// Result reports one query outcome together with its measured costs.
type Result struct {
	// X is the returned domain element: the argmax/argmin of an
	// optimization, or the found element of a search (valid when Found).
	X int
	// Value is the Evaluation value at X.
	Value int
	// Found reports whether Search measured a marked element (always true
	// for successful optimizations; for Count, true iff Count > 0).
	Found bool
	// All and Count list the marked elements found by Count, in discovery
	// order.
	All   []int
	Count int
	// Rounds is the total distributed round complexity per Theorem 7.
	Rounds int
	// InitRounds, SetupRounds and EvalRounds are the measured costs of the
	// three framework operations (Evaluation: one classical execution).
	InitRounds  int
	SetupRounds int
	EvalRounds  int
	// Iterations is the number of amplitude-amplification steps performed.
	Iterations int
	// LeaderQubits / NodeQubits are the quantum memory accounting.
	LeaderQubits int
	NodeQubits   int
}

// evalBackend is the evaluation machinery one query runs on: a sequential
// evaluator for the lazy path, an optional whole-domain batch (nil: the
// query evaluates lazily), and the close hook. Two implementations exist —
// a pool of solo Contexts, and a pool of lane-fused BatchContexts when the
// oracle supports them and Options.Lanes asks for fusion. Results are
// identical either way; only the engine passes are amortized.
type evalBackend struct {
	evaluate qcongest.EvalProc
	// batch precomputes the whole domain (errors wrapped "evaluate <x>"
	// for the smallest failing element, the solo pool's contract).
	batch func([]int) ([]int, []int, error)
	// rawBatch is batch without the wrapping — EvalAll's error contract
	// (nil unless lane-fused; solo EvalAll runs directly on the pool).
	rawBatch func([]int) ([]int, []int, error)
	// pool is the solo context pool (nil when lane-fused).
	pool  *congest.Pool[Context]
	close func()
}

// contextPool builds the evaluation backend every query runs on: context 0
// serves the sequential path, and the whole pool serves batched
// evaluation. The batch closure is nil when the query should evaluate
// lazily (sequential solo), mirroring qcongest's contract; lane-fused
// backends always batch — precomputing the domain through Width()-wide
// engine passes is the amortization Lanes asks for.
func contextPool(o Oracle, opts Options, negate bool) *evalBackend {
	parallel := opts.parallel()
	if lanes := opts.lanes(); lanes > 1 {
		if bo, ok := o.(BatchOracle); ok {
			if first := bo.NewBatchContext(lanes); first != nil {
				return laneBackend(bo, first, parallel, lanes, negate)
			}
		}
	}

	pool, _ := congest.NewPool(parallel, func(int) (Context, error) { return o.NewContext(), nil })
	b := &evalBackend{
		pool:  pool,
		close: func() { pool.Close(func(c Context) { c.Close() }) },
	}
	b.evaluate = pool.Get(0).Eval
	if negate {
		inner := b.evaluate
		b.evaluate = func(x int) (int, int, error) {
			v, r, err := inner(x)
			return -v, r, err
		}
	}
	if parallel > 1 {
		// Precompute every domain value on the pool. The amplification then
		// runs entirely against the memoized table; since evaluations are
		// deterministic, the Result is the one sequential evaluation yields.
		b.batch = func(domain []int) ([]int, []int, error) {
			values := make([]int, len(domain))
			rounds := make([]int, len(domain))
			err := pool.Do(len(domain), func(j int, c Context) error {
				v, r, err := c.Eval(domain[j])
				if err != nil {
					return fmt.Errorf("evaluate %d: %w", domain[j], err)
				}
				if negate {
					v = -v
				}
				values[j], rounds[j] = v, r
				return nil
			})
			return values, rounds, err
		}
	}
	return b
}

// laneBackend builds the lane-fused backend: `parallel` BatchContexts,
// each evaluating `lanes` domain elements per engine pass. The domain is
// chunked in order, so the smallest failing chunk holds the smallest
// failing element and the smallest failing lane within it IS that element
// — batch error selection is identical to the solo pool's.
func laneBackend(bo BatchOracle, first BatchContext, parallel, lanes int, negate bool) *evalBackend {
	bpool, _ := congest.NewPool(parallel, func(i int) (BatchContext, error) {
		if i == 0 {
			return first, nil
		}
		return bo.NewBatchContext(lanes), nil
	})
	width := first.Width()
	run := func(domain []int, wrap bool) ([]int, []int, error) {
		values := make([]int, len(domain))
		rounds := make([]int, len(domain))
		chunks := (len(domain) + width - 1) / width
		err := bpool.Do(chunks, func(ci int, c BatchContext) error {
			lo := ci * width
			hi := lo + width
			if hi > len(domain) {
				hi = len(domain)
			}
			vs, rs, err := c.EvalBatch(domain[lo:hi])
			if err != nil {
				if !wrap {
					return err
				}
				x := domain[lo]
				var le *congest.LaneError
				if errors.As(err, &le) && le.Lane < hi-lo {
					x = domain[lo+le.Lane]
				}
				return fmt.Errorf("evaluate %d: %w", x, err)
			}
			copy(values[lo:hi], vs)
			copy(rounds[lo:hi], rs)
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		if negate {
			for i := range values {
				values[i] = -values[i]
			}
		}
		return values, rounds, nil
	}
	return &evalBackend{
		evaluate: func(x int) (int, int, error) {
			one := [1]int{x}
			vs, rs, err := bpool.Get(0).EvalBatch(one[:])
			if err != nil {
				var le *congest.LaneError
				if errors.As(err, &le) {
					err = le.Err // the solo evaluation's error, verbatim
				}
				return 0, 0, err
			}
			v := vs[0]
			if negate {
				v = -v
			}
			return v, rs[0], nil
		},
		batch:    func(domain []int) ([]int, []int, error) { return run(domain, true) },
		rawBatch: func(domain []int) ([]int, []int, error) { return run(domain, false) },
		close:    func() { bpool.Close(func(c BatchContext) { c.Close() }) },
	}
}

// optimize is the shared body of Maximum and Minimum: quantum optimization
// (Dürr–Høyer via qcongest.Optimizer) over the oracle, negating values for
// minimization (the threshold climb is symmetric).
func optimize(o Oracle, eps float64, opts Options, minimize bool) (Result, error) {
	be := contextPool(o, opts, minimize)
	defer be.close()

	opt := &qcongest.Optimizer{
		Domain:      o.Domain(),
		Evaluate:    be.evaluate,
		InitRounds:  o.InitRounds(),
		SetupRounds: o.SetupRounds(),
		Eps:         eps,
		Delta:       opts.delta(),
		Rng:         rand.New(rand.NewSource(opts.Seed)),
	}
	opt.Batch = be.batch
	qr, err := opt.Run()
	if err != nil {
		return Result{}, err
	}
	value := qr.Value
	if minimize {
		value = -value
	}
	return Result{
		X:            qr.Argmax,
		Value:        value,
		Found:        true,
		Rounds:       qr.Rounds,
		InitRounds:   o.InitRounds(),
		SetupRounds:  o.SetupRounds(),
		EvalRounds:   qr.ClassicalEvalRounds,
		Iterations:   qr.Counters.GroverIterations,
		LeaderQubits: qr.LeaderQubits,
		NodeQubits:   qr.NodeQubits,
	}, nil
}

// Maximum finds a domain element maximizing the oracle's Evaluation value,
// with failure probability at most Options.Delta, provided the probability
// mass of maximizers under the uniform initial state is at least eps.
func Maximum(o Oracle, eps float64, opts Options) (Result, error) {
	return optimize(o, eps, opts, false)
}

// Minimum is Maximum's minimization twin (Dürr–Høyer is symmetric: amplify
// over negated values); eps then bounds the mass of minimizers.
func Minimum(o Oracle, eps float64, opts Options) (Result, error) {
	return optimize(o, eps, opts, true)
}

// search is the shared body of Search and Count.
func search(o Oracle, marked func(value int) bool, opts Options, count bool) (Result, error) {
	be := contextPool(o, opts, false)
	defer be.close()

	s := &qcongest.Searcher{
		Domain:      o.Domain(),
		Evaluate:    be.evaluate,
		Marked:      marked,
		InitRounds:  o.InitRounds(),
		SetupRounds: o.SetupRounds(),
		Batch:       be.batch,
		Delta:       opts.delta(),
		Rng:         rand.New(rand.NewSource(opts.Seed)),
	}
	var sr qcongest.SearchOutcome
	var err error
	if count {
		sr, err = s.RunCount()
	} else {
		sr, err = s.Run()
	}
	if err != nil {
		return Result{}, err
	}
	return Result{
		X:            sr.X,
		Value:        sr.Value,
		Found:        sr.Found,
		All:          sr.All,
		Count:        sr.Count,
		Rounds:       sr.Rounds,
		InitRounds:   o.InitRounds(),
		SetupRounds:  o.SetupRounds(),
		EvalRounds:   sr.ClassicalEvalRounds,
		Iterations:   sr.Counters.GroverIterations,
		LeaderQubits: sr.LeaderQubits,
		NodeQubits:   sr.NodeQubits,
	}, nil
}

// Search runs one BBHT amplitude-amplified search for a domain element
// whose Evaluation value satisfies marked. A not-found outcome is reported
// through Result.Found=false, not an error: with probability at least
// 1-Options.Delta the marked set is then empty, and the rounds spent by the
// fruitless amplification are charged to the Result either way.
func Search(o Oracle, marked func(value int) bool, opts Options) (Result, error) {
	return search(o, marked, opts, false)
}

// Count enumerates every marked domain element by the search-and-exclude
// loop and reports the exact count with probability at least 1-Delta.
func Count(o Oracle, marked func(value int) bool, opts Options) (Result, error) {
	return search(o, marked, opts, true)
}

// EvalAll runs one Evaluation per domain element on the context pool (the
// straight-line, non-quantum use of an oracle: internal/core's
// Eccentricities) and returns the per-element values in domain order
// together with the uniform per-evaluation round count, which EvalAll
// asserts (the property the quantum queries rely on).
func EvalAll(o Oracle, opts Options) (values []int, evalRounds int, err error) {
	be := contextPool(o, opts, false)
	defer be.close()

	domain := o.Domain()
	var rounds []int
	if be.rawBatch != nil {
		// Lane-fused sweep: whole-domain evaluation through Width()-wide
		// engine passes. Errors surface unwrapped (as *congest.LaneError,
		// whose message is the solo evaluation's), matching the solo path.
		values, rounds, err = be.rawBatch(domain)
		if err != nil {
			return nil, 0, err
		}
	} else {
		values = make([]int, len(domain))
		rounds = make([]int, len(domain))
		if err := be.pool.Do(len(domain), func(j int, c Context) error {
			v, r, err := c.Eval(domain[j])
			if err != nil {
				return err
			}
			values[j], rounds[j] = v, r
			return nil
		}); err != nil {
			return nil, 0, err
		}
	}
	if len(domain) == 0 {
		return values, 0, nil
	}
	evalRounds = rounds[0]
	for j, r := range rounds {
		if r != evalRounds {
			return nil, 0, fmt.Errorf("query: evaluation cost depends on input: %d rounds at element %d, %d at element %d", r, domain[j], evalRounds, domain[0])
		}
	}
	return values, evalRounds, nil
}
