package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
)

// oracleCase is one randomized graph of the cross-check suite.
type oracleCase struct {
	name string
	g    *graph.Graph
}

// oracleSuite builds the ~50-graph randomized suite: random-regular,
// Erdős–Rényi, random trees, and weighted variants of all three.
func oracleSuite(t *testing.T) []oracleCase {
	t.Helper()
	var cases []oracleCase
	add := func(name string, g *graph.Graph) {
		cases = append(cases, oracleCase{name: name, g: g})
	}
	// Random-regular graphs (configuration model; n*d even).
	for i := 0; i < 8; i++ {
		n := 10 + 2*(i%4)
		g, err := graph.RandomRegular(n, 3, int64(i))
		if err != nil {
			t.Fatalf("RandomRegular(%d, 3, %d): %v", n, i, err)
		}
		add(fmt.Sprintf("regular/n=%d/seed=%d", n, i), g)
	}
	// Erdős–Rényi (connected) graphs across densities.
	for i := 0; i < 12; i++ {
		n := 11 + i
		p := 0.08 + 0.02*float64(i%5)
		add(fmt.Sprintf("er/n=%d/seed=%d", n, i), graph.RandomConnected(n, p, int64(100+i)))
	}
	// Random trees (largest diameters, exercise the D-dependent schedules).
	for i := 0; i < 10; i++ {
		n := 9 + i
		add(fmt.Sprintf("tree/n=%d/seed=%d", n, i), graph.RandomTree(n, int64(200+i)))
	}
	// Weighted variants: random weights in [1, maxW], including maxW = 1
	// (weighted representation, unweighted metric).
	for i := 0; i < 7; i++ {
		n := 10 + i
		maxW := []int{1, 5, 9}[i%3]
		base := graph.RandomConnected(n, 0.14, int64(300+i))
		add(fmt.Sprintf("er-weighted/n=%d/w=%d/seed=%d", n, maxW, i), graph.WithWeights(base, maxW, int64(400+i)))
	}
	for i := 0; i < 7; i++ {
		n := 9 + i
		base := graph.RandomTree(n, int64(500+i))
		add(fmt.Sprintf("tree-weighted/n=%d/seed=%d", n, i), graph.WithWeights(base, 7, int64(600+i)))
	}
	for i := 0; i < 6; i++ {
		n := 10 + 2*(i%3)
		base, err := graph.RandomRegular(n, 3, int64(700+i))
		if err != nil {
			t.Fatal(err)
		}
		add(fmt.Sprintf("regular-weighted/n=%d/seed=%d", n, i), graph.WithWeights(base, 6, int64(800+i)))
	}
	return cases
}

// suiteRun is one full distance-parameter computation under one engine
// configuration; the Result structs (not just the values) are compared
// across configurations, so a divergence in any measured field fails.
type suiteRun struct {
	Diam  Result
	Rad   Result
	Ecc   EccResult
	Exact Result // Theorem 1 windowed algorithm; unweighted graphs only
}

func runSuite(t *testing.T, c oracleCase, workers, parallel int) suiteRun {
	t.Helper()
	opts := Options{
		Seed:     42,
		Parallel: parallel,
		Engine:   []congest.Option{congest.WithWorkers(workers), congest.WithStrictAccounting()},
	}
	var out suiteRun
	var err error
	if c.g.Weighted() {
		out.Diam, err = WeightedDiameter(c.g, opts)
	} else {
		out.Diam, err = ExactDiameterSimple(c.g, opts)
	}
	if err != nil {
		t.Fatalf("%s: diameter: %v", c.name, err)
	}
	if out.Rad, err = Radius(c.g, opts); err != nil {
		t.Fatalf("%s: radius: %v", c.name, err)
	}
	if out.Ecc, err = Eccentricities(c.g, opts); err != nil {
		t.Fatalf("%s: eccentricities: %v", c.name, err)
	}
	if !c.g.Weighted() {
		if out.Exact, err = ExactDiameter(c.g, opts); err != nil {
			t.Fatalf("%s: exact diameter: %v", c.name, err)
		}
	}
	return out
}

// TestSuiteTrivialInstances pins the documented n <= 2 conventions of every
// suite entry point: no quantum phase runs, diameter/radius are 0 for fewer
// than two vertices, and the two-vertex parameters equal the edge weight.
func TestSuiteTrivialInstances(t *testing.T) {
	single := graph.New(1)
	pair := graph.New(2)
	pair.MustAddWeightedEdge(0, 1, 4)
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		diam int
		rad  int
		ecc  []int
	}{
		{"empty", graph.New(0), 0, 0, []int{}},
		{"single", single, 0, 0, []int{0}},
		{"edge-weight-4", pair, 4, 4, []int{4, 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, err := WeightedDiameter(tc.g, Options{})
			if err != nil || d.Diameter != tc.diam {
				t.Fatalf("WeightedDiameter = %d, %v, want %d", d.Diameter, err, tc.diam)
			}
			r, err := Radius(tc.g, Options{})
			if err != nil || r.Diameter != tc.rad {
				t.Fatalf("Radius = %d, %v, want %d", r.Diameter, err, tc.rad)
			}
			wr, err := WeightedRadius(tc.g, Options{})
			if err != nil || wr.Diameter != tc.rad {
				t.Fatalf("WeightedRadius = %d, %v, want %d", wr.Diameter, err, tc.rad)
			}
			e, err := Eccentricities(tc.g, Options{})
			if err != nil || !reflect.DeepEqual(e.Ecc, tc.ecc) {
				t.Fatalf("Eccentricities = %v, %v, want %v", e.Ecc, err, tc.ecc)
			}
		})
	}
}

// TestSuiteDisconnectedPair pins the one disconnected case the topology
// validation never sees: two isolated vertices must return ErrDisconnected
// from every suite entry point, not a bogus value (regression: the trivial
// handlers used to skip the check).
func TestSuiteDisconnectedPair(t *testing.T) {
	g := graph.New(2)
	if _, err := ExactDiameter(g, Options{}); !errors.Is(err, graph.ErrDisconnected) {
		t.Errorf("ExactDiameter: %v, want ErrDisconnected", err)
	}
	if _, err := Radius(g, Options{}); !errors.Is(err, graph.ErrDisconnected) {
		t.Errorf("Radius: %v, want ErrDisconnected", err)
	}
	if _, err := WeightedDiameter(g, Options{}); !errors.Is(err, graph.ErrDisconnected) {
		t.Errorf("WeightedDiameter: %v, want ErrDisconnected", err)
	}
	if _, err := WeightedRadius(g, Options{}); !errors.Is(err, graph.ErrDisconnected) {
		t.Errorf("WeightedRadius: %v, want ErrDisconnected", err)
	}
	if _, err := Eccentricities(g, Options{}); !errors.Is(err, graph.ErrDisconnected) {
		t.Errorf("Eccentricities: %v, want ErrDisconnected", err)
	}
}

// TestQuantumSuiteMatchesClassicalOracle is the randomized oracle
// cross-check: on every graph of the suite the quantum
// diameter/radius/eccentricities must equal the sequential oracles (BFS per
// vertex for hop parameters; Dijkstra AND the code-independent
// Floyd–Warshall for weighted ones), and the full Result structs must be
// bit-identical across worker counts {1, 2, 8} and sequential-vs-Parallel
// sessions.
func TestQuantumSuiteMatchesClassicalOracle(t *testing.T) {
	for _, c := range oracleSuite(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			g := c.g

			// Classical oracles.
			var wantDiam, wantRad int
			var wantEcc []int
			var err error
			if g.Weighted() {
				if wantDiam, err = g.WeightedDiameter(); err != nil {
					t.Fatal(err)
				}
				if wantRad, err = g.WeightedRadius(); err != nil {
					t.Fatal(err)
				}
				if wantEcc, err = g.WeightedAllEccentricities(); err != nil {
					t.Fatal(err)
				}
				// The Dijkstra-based parameters must agree with the
				// code-independent Floyd–Warshall matrix.
				mat, err := g.FloydWarshall()
				if err != nil {
					t.Fatal(err)
				}
				fwDiam := 0
				for _, row := range mat {
					for _, d := range row {
						if d > fwDiam {
							fwDiam = d
						}
					}
				}
				if fwDiam != wantDiam {
					t.Fatalf("oracle disagreement: Dijkstra diameter %d, Floyd–Warshall %d", wantDiam, fwDiam)
				}
			} else {
				if wantDiam, err = g.Diameter(); err != nil {
					t.Fatal(err)
				}
				if wantRad, err = g.Radius(); err != nil {
					t.Fatal(err)
				}
				if wantEcc, err = g.AllEccentricities(); err != nil {
					t.Fatal(err)
				}
			}

			// Baseline configuration: workers=1, sequential sessions.
			base := runSuite(t, c, 1, 1)
			if base.Diam.Diameter != wantDiam {
				t.Fatalf("quantum diameter %d, oracle %d", base.Diam.Diameter, wantDiam)
			}
			if base.Rad.Diameter != wantRad {
				t.Fatalf("quantum radius %d, oracle %d", base.Rad.Diameter, wantRad)
			}
			if !reflect.DeepEqual(base.Ecc.Ecc, wantEcc) {
				t.Fatalf("quantum eccentricities %v, oracle %v", base.Ecc.Ecc, wantEcc)
			}
			if !g.Weighted() && base.Exact.Diameter != wantDiam {
				t.Fatalf("Theorem 1 diameter %d, oracle %d", base.Exact.Diameter, wantDiam)
			}

			// Every other engine configuration must reproduce the baseline
			// bit for bit: worker counts {2, 8}, and Parallel (batched
			// sessions) on both.
			for _, cfg := range []struct{ workers, parallel int }{
				{2, 1}, {8, 1}, {1, 4}, {8, 4},
			} {
				got := runSuite(t, c, cfg.workers, cfg.parallel)
				if !reflect.DeepEqual(got, base) {
					t.Fatalf("workers=%d parallel=%d diverges from baseline:\n got %+v\nwant %+v",
						cfg.workers, cfg.parallel, got, base)
				}
			}
		})
	}
}
