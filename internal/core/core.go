// Package core implements the paper's primary contribution: quantum
// distributed algorithms for the diameter in the CONGEST model.
//
//   - ExactDiameterSimple — the Õ(sqrt(n)·D)-round algorithm of Section 3.1
//     (quantum optimization of f(u) = ecc(u) over all vertices);
//   - ExactDiameter — the Õ(sqrt(n·D))-round algorithm of Section 3.2
//     (Theorem 1), which optimizes f(u) = max_{v in S(u)} ecc(v) with the
//     window sets S(u) of Definition 2 and the Evaluation procedure of
//     Figure 2;
//   - ApproxDiameter — the Õ(cbrt(n·D) + D)-round 3/2-approximation of
//     Section 4 (Theorem 4), which restricts the optimization to the set R
//     of the s closest vertices to the vertex w found by the [HPRW14]
//     preparation.
//
// Every Evaluation is executed as a real message-passing CONGEST program
// (internal/congest) whose round count is measured, and the quantum layer
// charges rounds per Theorem 7 (internal/qcongest). Each algorithm builds
// its walk/wave sessions once (congest.WalkSession, congest.EccSession) and
// every Evaluation is a Reset+Run on them — bit-identical to fresh
// networks, without rebuilding topology tables, programs or arenas per
// execution. Options.Parallel > 1 clones the sessions into a congest.Pool
// and runs independent Evaluations concurrently; results are identical for
// any value.
package core

import (
	"errors"
	"fmt"
	"math"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
	"qcongest/internal/query"
)

// Result reports a quantum diameter computation together with its measured
// costs.
type Result struct {
	// Diameter is the computed value (for ApproxDiameter, the estimate).
	Diameter int
	// Rounds is the total quantum round complexity per Theorem 7.
	Rounds int
	// InitRounds, SetupRounds and EvalRounds are the measured costs of the
	// three framework operations (Evaluation: one classical execution).
	// InitRounds covers every preparatory distributed phase the algorithm
	// ran, including (for ApproxDiameter) the probe preprocessing that
	// chooses the sample size s.
	InitRounds  int
	SetupRounds int
	EvalRounds  int
	// Iterations is the number of amplitude-amplification steps performed.
	Iterations int
	// LeaderQubits / NodeQubits are the quantum memory accounting.
	LeaderQubits int
	NodeQubits   int
}

// Options configures the quantum algorithms.
type Options struct {
	// Delta is the per-optimization failure probability (default 0.1).
	Delta float64
	// Seed drives all measurements.
	Seed int64
	// S overrides the sample size of ApproxDiameter (default
	// n^{2/3} / d^{1/3} per Theorem 4).
	S int
	// Parallel is the number of cloned evaluation contexts used to run
	// independent Evaluations concurrently (<= 1: one context, sequential).
	// Evaluations are deterministic and their values input-independent, so
	// the computed Result is identical for every value; the knob only
	// trades wall-clock time, like congest.WithWorkers.
	Parallel int
	// Lanes is the number of Evaluations fused into one engine pass
	// (congest.MultiSession) when the Evaluation family supports it; <= 1
	// keeps solo sessions. Lane fusion amortizes the per-round scheduler
	// and topology cost across a batch and composes with Parallel. Like
	// Parallel, it never changes the computed Result — every lane is
	// bit-identical to a solo execution. Negative values are rejected by
	// every entry point (see Options.validate).
	Lanes int
	// Sublinear selects the skeleton distance-oracle Evaluation for the
	// weighted parameters (WeightedDiameter, WeightedRadius and weighted
	// Eccentricities): a seeded skeleton sample plus hop-bounded relaxation
	// replaces the fixed (n-1)-round Bellman–Ford inner loop, making each
	// Evaluation Õ(sqrt(n) + D) rounds instead of Θ(n). The default false
	// keeps the classical inner loop (the golden-pinned path). APSP always
	// uses the oracle. See DESIGN.md "Quantum APSP".
	Sublinear bool
	// Engine configures every CONGEST execution the algorithm performs
	// (e.g. congest.WithWorkers). Results are engine-independent: the
	// parallel engine is deterministic, so Engine only affects wall-clock
	// time.
	Engine []congest.Option
}

func (o Options) delta() float64 {
	if o.Delta <= 0 || o.Delta >= 1 {
		return 0.1
	}
	return o.Delta
}

// validate rejects option values that cannot mean anything: like the engine
// worker count (where <= 0 selects a sane default), Lanes 0 and 1 both mean
// solo sessions, but a negative lane count is a caller bug that previously
// flowed unchecked into MultiSession construction. Every public entry point
// calls this before building any topology or session.
func (o Options) validate() error {
	if o.Lanes < 0 {
		return fmt.Errorf("core: Options.Lanes %d is negative (0 or 1 selects solo sessions)", o.Lanes)
	}
	if o.Parallel < 0 {
		return fmt.Errorf("core: Options.Parallel %d is negative (0 or 1 selects sequential evaluation)", o.Parallel)
	}
	return nil
}

// ErrTrivial marks graphs handled without any quantum phase (n <= 2).
var errTrivial = errors.New("core: trivial instance")

func trivialDiameter(g *graph.Graph) (Result, error) {
	switch g.N() {
	case 0, 1:
		return Result{Diameter: 0}, nil
	case 2:
		// Two isolated vertices are the one disconnected case the
		// topology validation below never sees.
		if !g.HasEdge(0, 1) {
			return Result{}, graph.ErrDisconnected
		}
		return Result{Diameter: 1}, nil
	}
	return Result{}, errTrivial
}

// evalContext is one independent Evaluation context: the sessions backing
// eval share no mutable state with any other context, so distinct contexts
// may evaluate concurrently (each one still evaluates serially). Its Eval
// and Close methods implement query.Context.
type evalContext struct {
	eval  func(u0 int) (value, rounds int, err error)
	close func()
}

// Eval implements query.Context.
func (c *evalContext) Eval(x int) (value, rounds int, err error) { return c.eval(x) }

// Close implements query.Context.
func (c *evalContext) Close() { c.close() }

// batchEvalContext is the lane-fused counterpart of evalContext: eval runs
// up to width independent Evaluations through one congest.MultiSession
// pass. Its methods implement query.BatchContext.
type batchEvalContext struct {
	width int
	eval  func(xs []int) (values, rounds []int, err error)
	close func()
}

func (c *batchEvalContext) EvalBatch(xs []int) ([]int, []int, error) { return c.eval(xs) }
func (c *batchEvalContext) Width() int                               { return c.width }
func (c *batchEvalContext) Close()                                   { c.close() }

// evalFamily is one Evaluation family: the solo context factory every
// query needs, plus the optional lane-fused factory (nil when the family
// cannot fuse, e.g. the weighted Bellman–Ford evaluation).
type evalFamily struct {
	newCtx      func() *evalContext
	newBatchCtx func(lanes int) query.BatchContext
}

// ctxOracle adapts an evalFamily plus the measured framework costs into a
// query.Oracle (and query.BatchOracle) — the bridge every entry point in
// this package crosses into the shared query layer.
type ctxOracle struct {
	domain      []int
	initRounds  int
	setupRounds int
	family      evalFamily
}

func (o ctxOracle) Domain() []int             { return o.domain }
func (o ctxOracle) InitRounds() int           { return o.initRounds }
func (o ctxOracle) SetupRounds() int          { return o.setupRounds }
func (o ctxOracle) NewContext() query.Context { return o.family.newCtx() }

// NewBatchContext implements query.BatchOracle; nil reports that this
// family runs solo contexts only.
func (o ctxOracle) NewBatchContext(lanes int) query.BatchContext {
	if o.family.newBatchCtx == nil {
		return nil
	}
	return o.family.newBatchCtx(lanes)
}

// ExactDiameterSimple runs the Section 3.1 algorithm: quantum maximum
// finding over f(u) = ecc(u) with P_opt >= 1/n, giving Õ(sqrt(n)·D) rounds.
func ExactDiameterSimple(g *graph.Graph, opts Options) (Result, error) {
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	if r, err := trivialDiameter(g); !errors.Is(err, errTrivial) {
		return r, err
	}
	topo, err := congest.NewTopology(g)
	if err != nil {
		return Result{}, err
	}
	info, pre, err := congest.PreprocessOn(topo, opts.Engine...)
	if err != nil {
		return Result{}, err
	}
	n := g.N()
	d := info.D

	return runOptimization(singleEccContext(topo, info, opts), optimizationParams{
		domain:      identityDomain(n),
		eps:         1 / float64(n),
		delta:       opts.delta(),
		seed:        opts.Seed,
		initRounds:  pre.Rounds,
		setupRounds: d + 1,
		parallel:    opts.Parallel,
		lanes:       opts.Lanes,
	})
}

// ExactDiameter runs the Theorem 1 algorithm (Section 3.2): quantum maximum
// finding over f(u0) = max_{v in S(u0)} ecc(v), where S(u0) covers every
// vertex with probability >= d/2n (Lemma 1), giving Õ(sqrt(n·D)) rounds.
func ExactDiameter(g *graph.Graph, opts Options) (Result, error) {
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	if r, err := trivialDiameter(g); !errors.Is(err, errTrivial) {
		return r, err
	}
	topo, err := congest.NewTopology(g)
	if err != nil {
		return Result{}, err
	}
	info, pre, err := congest.PreprocessOn(topo, opts.Engine...)
	if err != nil {
		return Result{}, err
	}
	n := g.N()
	d := info.D

	// Evaluation for input u0 is exactly Figure 2: a 2d-step DFS walk from
	// u0 assigning tau', the 6d-round wave process over S(u0), and the
	// bottom-up max convergecast. All three phases have input-independent
	// round counts. The walk and wave sessions are built once per context
	// and every eval(u0) is a Reset+Run.
	fam := walkEccFamily(topo, info, info.Children, 2*d, 6*d+2, nil, opts)

	eps := float64(d) / (2 * float64(n)) // Lemma 1
	if eps > 1 {
		eps = 1
	}
	return runOptimization(fam, optimizationParams{
		domain:      identityDomain(n),
		eps:         eps,
		delta:       opts.delta(),
		seed:        opts.Seed,
		initRounds:  pre.Rounds,
		setupRounds: d + 1,
		parallel:    opts.Parallel,
		lanes:       opts.Lanes,
	})
}

// walkEccFamily builds the Figure 2 Evaluation family shared by
// ExactDiameter and ApproxDiameter: a steps-bounded token walk assigning
// tau', then the wave process and max convergecast. check, when non-nil,
// validates an input before any session runs (ApproxDiameter's R-membership
// guard). The lane-fused factory runs both stages as MultiSession batches;
// a walk failure aborts the batch before the wave stage, so its (solo-
// identical) error is the one reported even if a smaller lane would have
// failed later in the wave — acceptable, since Evaluation errors are
// deterministic program violations that do not depend on cross-lane order.
func walkEccFamily(topo *congest.Topology, info *congest.PreInfo, children [][]int,
	steps, waveDuration int, check func(u0 int) error, opts Options) evalFamily {
	return evalFamily{
		newCtx: func() *evalContext {
			walk := congest.NewWalkSession(topo, info, children, steps, opts.Engine...)
			ecc := congest.NewEccSession(topo, info, waveDuration, opts.Engine...)
			return &evalContext{
				eval: func(u0 int) (int, int, error) {
					if check != nil {
						if err := check(u0); err != nil {
							return 0, 0, err
						}
					}
					tau, mWalk, err := walk.Eval(u0)
					if err != nil {
						return 0, 0, err
					}
					value, mRest, err := ecc.Eval(tau)
					if err != nil {
						return 0, 0, err
					}
					return value, mWalk.Rounds + mRest.Rounds, nil
				},
				close: func() { walk.Close(); ecc.Close() },
			}
		},
		newBatchCtx: func(lanes int) query.BatchContext {
			walk := congest.NewMultiWalkSession(topo, info, children, steps, lanes, opts.Engine...)
			ecc := congest.NewMultiEccSession(topo, info, waveDuration, lanes, opts.Engine...)
			rounds := make([]int, lanes)
			return &batchEvalContext{
				width: lanes,
				eval: func(xs []int) ([]int, []int, error) {
					if check != nil {
						for i, u0 := range xs {
							if err := check(u0); err != nil {
								return nil, nil, &congest.LaneError{Lane: i, Err: err}
							}
						}
					}
					taus, mWalk, err := walk.EvalBatch(xs)
					if err != nil {
						return nil, nil, err
					}
					values, mRest, err := ecc.EvalBatch(taus)
					if err != nil {
						return nil, nil, err
					}
					for i := range xs {
						rounds[i] = mWalk[i].Rounds + mRest[i].Rounds
					}
					return values, rounds[:len(xs)], nil
				},
				close: func() { walk.Close(); ecc.Close() },
			}
		},
	}
}

// ApproxDiameter runs the Theorem 4 algorithm (Section 4, Figure 3): the
// [HPRW14] preparation selects the set R of the s closest vertices to w,
// and quantum optimization computes max_{v in R} ecc(v) in Õ(sqrt(s·D))
// rounds. With s = Theta(n^{2/3} D^{-1/3}) the total is Õ(cbrt(n·D) + D),
// and the output Dhat satisfies floor(2D/3) <= Dhat <= D with high
// probability.
func ApproxDiameter(g *graph.Graph, opts Options) (Result, error) {
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	if r, err := trivialDiameter(g); !errors.Is(err, errTrivial) {
		return r, err
	}
	topo, err := congest.NewTopology(g)
	if err != nil {
		return Result{}, err
	}
	n := g.N()

	// Choose s = n^{2/3} d^{-1/3} using the free 2-approximation
	// d = ecc(leader); a preliminary Preprocess supplies d. The probe is a
	// real distributed phase, so its rounds are charged to InitRounds
	// below, together with the preparation's.
	infoProbe, probeM, err := congest.PreprocessOn(topo, opts.Engine...)
	if err != nil {
		return Result{}, err
	}
	dProbe := infoProbe.D
	s := opts.S
	if s <= 0 {
		s = int(math.Ceil(math.Pow(float64(n), 2.0/3.0) / math.Pow(math.Max(1, float64(dProbe)), 1.0/3.0)))
	}
	if s < 1 {
		s = 1
	}
	if s > n {
		s = n
	}

	prep, preM, err := congest.PrepareApproxOn(topo, s, opts.Seed, opts.Engine...)
	if err != nil {
		return Result{}, err
	}
	info := prep.Info
	d := info.D

	// The window width on the R-subtree tour: Lemma 1's argument needs the
	// window to exceed the subtree depth by 2d, so that any window ending
	// in a top-down move contains at least d top-down moves. (The paper
	// keeps the width 2d and replaces "mod 2n" by "mod 2s"; widening to
	// 2(tStar + d) preserves both the O(D) evaluation cost, since tStar <=
	// ecc(w) <= 2d, and the coverage bound P_opt >= d/2s.)
	tStar := 0
	for v := 0; v < n; v++ {
		if prep.RMembers[v] && prep.WDepth[v] > tStar {
			tStar = prep.WDepth[v]
		}
	}
	window := 2 * (tStar + d)
	wInfo := &congest.PreInfo{
		Leader:   prep.W,
		Parent:   prep.WParent,
		Depth:    prep.WDepth,
		Children: prep.WNatural,
		D:        prep.EccW,
	}
	waveDuration := 2*window + 2*d + 2

	domain := make([]int, 0, prep.RSize)
	for v := 0; v < n; v++ {
		if prep.RMembers[v] {
			domain = append(domain, v)
		}
	}

	inR := func(u0 int) error {
		if !prep.RMembers[u0] {
			return fmt.Errorf("core: evaluation input %d outside R", u0)
		}
		return nil
	}
	fam := walkEccFamily(topo, wInfo, prep.RChild, window, waveDuration, inR, opts)

	eps := float64(d) / (2 * float64(prep.RSize))
	if eps > 1 {
		eps = 1
	}
	return runOptimization(fam, optimizationParams{
		domain:      domain,
		eps:         eps,
		delta:       opts.delta(),
		seed:        opts.Seed,
		initRounds:  probeM.Rounds + preM.Rounds,
		setupRounds: tStar + 1, // broadcast down the R-subtree
		parallel:    opts.Parallel,
		lanes:       opts.Lanes,
	})
}

type optimizationParams struct {
	domain      []int
	eps         float64
	delta       float64
	seed        int64
	initRounds  int
	setupRounds int
	parallel    int
	lanes       int
	// minimize runs quantum minimum finding instead of maximum finding
	// (Dürr–Høyer is symmetric: amplify over negated values). Used by the
	// radius entry points; eps then bounds the mass of minimizers.
	minimize bool
}

// singleEccContext is the Section 3.1 Evaluation: a single wave from u0 (a
// scheduled BFS) followed by a convergecast of max dv to the leader —
// "build BFS(u0), converge-cast ecc(u0)". The wave and convergecast sessions
// are built once per context; each eval resets them with the tau assignment
// where only u0 initiates (tau' = 0). It computes f(u0) = ecc(u0), the
// objective of ExactDiameterSimple, Radius and Eccentricities.
func singleEccContext(topo *congest.Topology, info *congest.PreInfo, opts Options) evalFamily {
	n := topo.N()
	waveDuration := 2*info.D + 1
	return evalFamily{
		newCtx: func() *evalContext {
			ecc := congest.NewEccSession(topo, info, waveDuration, opts.Engine...)
			tau := make([]int, n)
			for i := range tau {
				tau[i] = -1
			}
			last := -1
			return &evalContext{
				eval: func(u0 int) (int, int, error) {
					if last >= 0 {
						tau[last] = -1
					}
					tau[u0], last = 0, u0
					value, m, err := ecc.Eval(tau)
					if err != nil {
						return 0, 0, err
					}
					return value, m.Rounds, nil
				},
				close: ecc.Close,
			}
		},
		newBatchCtx: func(lanes int) query.BatchContext {
			ecc := congest.NewMultiEccSession(topo, info, waveDuration, lanes, opts.Engine...)
			taus := make([][]int, lanes)
			for l := range taus {
				taus[l] = make([]int, n)
				for i := range taus[l] {
					taus[l][i] = -1
				}
			}
			lasts := make([]int, lanes)
			for l := range lasts {
				lasts[l] = -1
			}
			rounds := make([]int, lanes)
			return &batchEvalContext{
				width: lanes,
				eval: func(xs []int) ([]int, []int, error) {
					for i, u0 := range xs {
						if lasts[i] >= 0 {
							taus[i][lasts[i]] = -1
						}
						taus[i][u0], lasts[i] = 0, u0
					}
					values, mets, err := ecc.EvalBatch(taus[:len(xs)])
					if err != nil {
						return nil, nil, err
					}
					for i := range xs {
						rounds[i] = mets[i].Rounds
					}
					return values, rounds[:len(xs)], nil
				},
				close: ecc.Close,
			}
		},
	}
}

// weightedEccContext is the weighted Evaluation: one fixed-duration
// Bellman–Ford relaxation from u0 plus a weighted max convergecast,
// computing f(u0) = weighted ecc(u0). On an unweighted graph it degenerates
// to hop eccentricities (all weights 1).
func weightedEccContext(topo *congest.Topology, info *congest.PreInfo, opts Options) evalFamily {
	return evalFamily{
		newCtx: func() *evalContext {
			ecc := congest.NewWeightedEccSession(topo, info, opts.Engine...)
			return &evalContext{
				eval: func(u0 int) (int, int, error) {
					value, m, err := ecc.Eval(u0)
					if err != nil {
						return 0, 0, err
					}
					return value, m.Rounds, nil
				},
				close: ecc.Close,
			}
		},
	}
}

// runOptimization runs quantum maximum (or minimum) finding over the
// Evaluation family through the shared query layer; the golden tests pin
// this path to the pre-refactor outputs bit for bit.
func runOptimization(fam evalFamily, p optimizationParams) (Result, error) {
	oracle := ctxOracle{
		domain:      p.domain,
		initRounds:  p.initRounds,
		setupRounds: p.setupRounds,
		family:      fam,
	}
	qopts := query.Options{Delta: p.delta, Seed: p.seed, Parallel: p.parallel, Lanes: p.lanes}
	var qr query.Result
	var err error
	if p.minimize {
		qr, err = query.Minimum(oracle, p.eps, qopts)
	} else {
		qr, err = query.Maximum(oracle, p.eps, qopts)
	}
	if err != nil {
		return Result{}, err
	}
	return Result{
		Diameter:     qr.Value,
		Rounds:       qr.Rounds,
		InitRounds:   qr.InitRounds,
		SetupRounds:  qr.SetupRounds,
		EvalRounds:   qr.EvalRounds,
		Iterations:   qr.Iterations,
		LeaderQubits: qr.LeaderQubits,
		NodeQubits:   qr.NodeQubits,
	}, nil
}

func identityDomain(n int) []int {
	d := make([]int, n)
	for i := range d {
		d[i] = i
	}
	return d
}
