package core

import (
	"reflect"
	"testing"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
)

// Options.Lanes fuses independent Evaluations into one multi-lane engine
// pass; because each lane is bit-identical to a solo session run, the
// Result — value, rounds, every counter — must be identical to the
// unfused execution for any lane count, alone or combined with Parallel,
// engine workers, or either scheduler.
func TestQuantumLaneEvaluationDeterministic(t *testing.T) {
	g := graph.RandomConnected(96, 0.06, 6)
	want, err := ExactDiameter(g, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{1, 2, 8} {
		got, err := ExactDiameter(g, Options{Seed: 6, Lanes: lanes})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("lanes %d: Result %+v, want %+v", lanes, got, want)
		}
	}
	got, err := ExactDiameter(g, Options{Seed: 6, Lanes: 4, Parallel: 3,
		Engine: []congest.Option{congest.WithWorkers(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("lanes 4 + parallel 3 + workers 2: Result %+v, want %+v", got, want)
	}
	got, err = ExactDiameter(g, Options{Seed: 6, Lanes: 8,
		Engine: []congest.Option{congest.WithScheduler(congest.SchedulerDense)}})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("lanes 8 under dense scheduler: Result %+v, want %+v", got, want)
	}

	wantSimple, err := ExactDiameterSimple(g, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	gotSimple, err := ExactDiameterSimple(g, Options{Seed: 6, Lanes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if gotSimple != wantSimple {
		t.Errorf("simple, lanes 8: Result %+v, want %+v", gotSimple, wantSimple)
	}

	wantApprox, err := ApproxDiameter(g, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	gotApprox, err := ApproxDiameter(g, Options{Seed: 6, Lanes: 8, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if gotApprox != wantApprox {
		t.Errorf("approx, lanes 8 + parallel 2: Result %+v, want %+v", gotApprox, wantApprox)
	}

	wantRadius, err := Radius(g, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	gotRadius, err := Radius(g, Options{Seed: 6, Lanes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if gotRadius != wantRadius {
		t.Errorf("radius, lanes 8: Result %+v, want %+v", gotRadius, wantRadius)
	}
}

// Eccentricities with Lanes routes the full-domain sweep through the
// lane-fused batch path (query.EvalAll); the vector and every cost counter
// must match the solo sweep exactly.
func TestEccentricitiesLanesDeterministic(t *testing.T) {
	g := graph.RandomConnected(80, 0.07, 9)
	want, err := Eccentricities(g, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Seed: 9, Lanes: 2},
		{Seed: 9, Lanes: 8},
		{Seed: 9, Lanes: 8, Parallel: 3},
		{Seed: 9, Lanes: 3, Engine: []congest.Option{congest.WithWorkers(2)}},
	} {
		got, err := Eccentricities(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("opts %+v: EccResult %+v, want %+v", opts, got, want)
		}
	}
}

// The weighted Evaluation family has no lane-fused factory; Lanes must fall
// back to solo contexts silently, with identical results.
func TestWeightedLanesFallback(t *testing.T) {
	g := graph.WithWeights(graph.RandomConnected(40, 0.1, 3), 7, 11)
	want, err := WeightedDiameter(g, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := WeightedDiameter(g, Options{Seed: 3, Lanes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("weighted diameter, lanes 8: Result %+v, want %+v", got, want)
	}
	wantEcc, err := Eccentricities(g, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	gotEcc, err := Eccentricities(g, Options{Seed: 3, Lanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotEcc, wantEcc) {
		t.Errorf("weighted eccentricities, lanes 4: %+v, want %+v", gotEcc, wantEcc)
	}
}

// Negative Lanes (and Parallel) are caller bugs, rejected with an explicit
// error by every entry point before any topology or session is built —
// previously they flowed unchecked into MultiSession construction.
func TestNegativeOptionsRejected(t *testing.T) {
	g := graph.RandomConnected(12, 0.2, 1)
	wg := graph.WithWeights(graph.RandomConnected(12, 0.2, 1), 5, 2)
	for name, run := range map[string]func(Options) error{
		"ExactDiameterSimple": func(o Options) error { _, err := ExactDiameterSimple(g, o); return err },
		"ExactDiameter":       func(o Options) error { _, err := ExactDiameter(g, o); return err },
		"ApproxDiameter":      func(o Options) error { _, err := ApproxDiameter(g, o); return err },
		"Radius":              func(o Options) error { _, err := Radius(g, o); return err },
		"WeightedDiameter":    func(o Options) error { _, err := WeightedDiameter(wg, o); return err },
		"WeightedRadius":      func(o Options) error { _, err := WeightedRadius(wg, o); return err },
		"Eccentricities":      func(o Options) error { _, err := Eccentricities(g, o); return err },
		"APSP":                func(o Options) error { _, err := APSP(wg, o, nil); return err },
	} {
		if err := run(Options{Lanes: -1}); err == nil {
			t.Errorf("%s: Lanes -1 accepted", name)
		}
		if err := run(Options{Parallel: -2}); err == nil {
			t.Errorf("%s: Parallel -2 accepted", name)
		}
		// 0 and 1 both mean solo sessions — never an error.
		if err := run(Options{Lanes: 0}); err != nil {
			t.Errorf("%s: Lanes 0: %v", name, err)
		}
	}
}

// The sublinear (skeleton-oracle) weighted family has a lane-fused batch
// factory; fused and solo sweeps must agree in every field.
func TestSublinearLanesDeterministic(t *testing.T) {
	g := graph.WithWeights(graph.RandomConnected(40, 0.1, 3), 7, 11)
	want, err := Eccentricities(g, Options{Seed: 3, Sublinear: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Seed: 3, Sublinear: true, Lanes: 8},
		{Seed: 3, Sublinear: true, Lanes: 4, Parallel: 2},
	} {
		got, err := Eccentricities(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("opts %+v: EccResult %+v, want %+v", opts, got, want)
		}
	}
}
