package core

// Degenerate inputs of the workload entry points: graphs too small to
// contain a triangle or a proper tree cut, and disconnected graphs.

import (
	"errors"
	"testing"

	"qcongest/internal/graph"
)

func TestTriangleTrivialGraphs(t *testing.T) {
	for _, n := range []int{0, 1} {
		for _, f := range []func(*graph.Graph, Options) (TriangleResult, error){TriangleDetect, TriangleCount} {
			res, err := f(graph.New(n), Options{Seed: 1})
			if err != nil || res.Found || res.Count != 0 {
				t.Errorf("n=%d: got %+v, err %v; want empty result", n, res, err)
			}
		}
	}
	edge := graph.New(2)
	if err := edge.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	res, err := TriangleDetect(edge, Options{Seed: 1})
	if err != nil || res.Found {
		t.Errorf("K2: got %+v, err %v; want triangle-free", res, err)
	}
	if _, err := TriangleCount(graph.New(2), Options{Seed: 1}); !errors.Is(err, graph.ErrDisconnected) {
		t.Errorf("disconnected 2-vertex graph: err %v, want ErrDisconnected", err)
	}
	if _, err := TriangleDetect(graph.New(5), Options{Seed: 1}); !errors.Is(err, graph.ErrDisconnected) {
		t.Errorf("edgeless 5-vertex graph: err %v, want ErrDisconnected", err)
	}
	// A triangle-free but connected graph exercises the not-found search.
	det, err := TriangleDetect(graph.Path(6), Options{Seed: 1})
	if err != nil || det.Found {
		t.Errorf("path: got %+v, err %v; want not found", det, err)
	}
}

func TestMinTreeCutTrivialGraphs(t *testing.T) {
	for _, n := range []int{0, 1} {
		if _, err := MinTreeCut(graph.New(n), Options{Seed: 1}); !errors.Is(err, graph.ErrDisconnected) {
			t.Errorf("n=%d: err %v, want ErrDisconnected", n, err)
		}
	}
	if _, err := MinTreeCut(graph.New(2), Options{Seed: 1}); !errors.Is(err, graph.ErrDisconnected) {
		t.Errorf("disconnected K2: err %v, want ErrDisconnected", err)
	}
	if _, err := MinTreeCut(graph.New(4), Options{Seed: 1}); !errors.Is(err, graph.ErrDisconnected) {
		t.Errorf("edgeless 4-vertex graph: err %v, want ErrDisconnected", err)
	}
	edge := graph.New(2)
	if err := edge.AddWeightedEdge(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	res, err := MinTreeCut(edge, Options{Seed: 1})
	if err != nil || res.Weight != 7 || res.Root != 0 {
		t.Errorf("weighted K2: got %+v, err %v; want weight 7 at root 0", res, err)
	}
}
