package core

// Quantum APSP and the sublinear weighted Evaluation — the Wang–Wu–Yao
// ("Eccentricities and All-Pairs Shortest Paths in the Quantum CONGEST
// Model") and Wu–Yao ("Quantum Complexity of Weighted Diameter and Radius
// in CONGEST Networks") follow-ups, instantiated on this repository's
// measured-round framework. Both papers replace the Θ(n)-round weighted
// eccentricity Evaluation (one full Bellman–Ford relaxation) with a
// skeleton distance oracle: after an init phase that samples a skeleton S
// and preprocesses skeleton-to-vertex distances, one Evaluation from any
// source costs Õ(sqrt(n) + D) rounds — a hop-bounded relaxation, a
// pipelined relay of |S| values through the BFS tree, and a convergecast
// (congest.SkelOracle implements the three phases; see DESIGN.md "Quantum
// APSP" for the schedule).
//
// On top of the oracle:
//
//   - WeightedDiameter / WeightedRadius with Options.Sublinear run quantum
//     maximum/minimum finding over the oracle-backed eccentricity family —
//     Õ(sqrt(n)·(sqrt(n) + D)) total instead of Õ(sqrt(n)·n);
//   - APSP runs the straight-line sweep: one Evaluation per source, lane-
//     fused (Options.Lanes) and sharded over cloned sessions
//     (Options.Parallel), streaming each Θ(n)-sized distance row to a
//     callback instead of materializing the Θ(n²) table.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
	"qcongest/internal/query"
)

// skelCutoff is the vertex count below which the planner keeps the whole
// vertex set as the skeleton (with hop budget 1): the oracle is then
// unconditionally exact and asymptotics don't matter yet.
const skelCutoff = 64

// planSkeleton picks the oracle parameters for an n-vertex graph: the hop
// budget h = Θ(sqrt(n log n)) and a seeded uniform sample of
// s = ceil(3 n ln(n+1) / h) = Θ(sqrt(n log n)) skeleton vertices — enough
// that every h-hop window of every shortest path contains a skeleton
// vertex with high probability (a miss surfaces as an explicit Evaluation
// error, never a wrong distance). Small graphs (or samples that would
// reach n) fall back to S = V, h = 1, where the oracle is exact
// unconditionally.
func planSkeleton(n int, seed int64) (skeleton []int, h int) {
	all := func() []int {
		s := make([]int, n)
		for i := range s {
			s[i] = i
		}
		return s
	}
	if n <= skelCutoff {
		return all(), 1
	}
	ln := math.Log(float64(n) + 1)
	h = int(math.Ceil(math.Sqrt(6 * float64(n) * ln)))
	if h > n-1 {
		h = n - 1
	}
	s := int(math.Ceil(3 * float64(n) * ln / float64(h)))
	if s >= n {
		return all(), 1
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	skeleton = append([]int(nil), perm[:s]...)
	sort.Ints(skeleton)
	return skeleton, h
}

// buildSkelOracle plans and preprocesses the skeleton oracle for one
// topology. The init relaxations are lane-fused through Options.Lanes
// (wall-clock only; the charged InitRounds are bit-identical to solo runs).
func buildSkelOracle(topo *congest.Topology, info *congest.PreInfo, opts Options) (*congest.SkelOracle, error) {
	skeleton, h := planSkeleton(topo.N(), opts.Seed)
	lanes := opts.Lanes
	if lanes < 1 {
		lanes = 1
	}
	return congest.NewSkelOracle(topo, info, skeleton, h, lanes, opts.Engine...)
}

// skelEccFamily is the oracle-backed weighted eccentricity Evaluation
// family: f(u0) = weighted ecc(u0) in Õ(sqrt(n) + D) rounds per
// Evaluation. The oracle itself is read-only after construction, so
// cloned contexts (Options.Parallel) and lane fusion (Options.Lanes) both
// apply.
func skelEccFamily(o *congest.SkelOracle, opts Options) evalFamily {
	return evalFamily{
		newCtx: func() *evalContext {
			es := o.NewEvalSession(opts.Engine...)
			return &evalContext{
				eval: func(u0 int) (int, int, error) {
					value, m, err := es.Eval(u0, nil)
					if err != nil {
						return 0, 0, err
					}
					return value, m.Rounds, nil
				},
				close: es.Close,
			}
		},
		newBatchCtx: func(lanes int) query.BatchContext {
			me := o.NewMultiEvalSession(lanes, opts.Engine...)
			rounds := make([]int, lanes)
			return &batchEvalContext{
				width: lanes,
				eval: func(xs []int) ([]int, []int, error) {
					values, mets, err := me.EvalBatch(xs, nil)
					if err != nil {
						return nil, nil, err
					}
					for i := range xs {
						rounds[i] = mets[i].Rounds
					}
					return values, rounds[:len(xs)], nil
				},
				close: me.Close,
			}
		},
	}
}

// ApspResult reports an all-pairs shortest-paths sweep together with its
// measured CONGEST cost. The Θ(n²) distance table itself is streamed to
// the APSP callback, never held here.
type ApspResult struct {
	// Sources is the number of distance rows emitted (= n).
	Sources int
	// Ecc[v] is the weighted eccentricity of v — max of its row, collected
	// during the sweep.
	Ecc []int
	// Rounds is the total round complexity of the straight-line sweep:
	// InitRounds + Sources * EvalRounds.
	Rounds int
	// InitRounds is the measured preprocessing cost: BFS-tree construction
	// plus the oracle's skeleton relaxations and matrix distribution.
	InitRounds int
	// EvalRounds is the measured cost of one per-source Evaluation
	// (identical for every source: all phase durations are fixed).
	EvalRounds int
}

// APSP computes all-pairs shortest-path distances through the skeleton
// oracle: one oracle Evaluation per source, each Õ(sqrt(n) + D) rounds.
// Rows are delivered in source order through emit(source, row) — row[v] is
// the exact weighted distance d(source, v); the slice is reused between
// calls and only valid during the call (copy to retain). A nil emit skips
// delivery (round accounting only). Options.Lanes fuses up to Lanes
// Evaluations into one engine pass and Options.Parallel shards the sweep
// over cloned sessions; like everywhere in this package, neither changes
// any emitted value or the round accounting. An emit error aborts the
// sweep and is returned verbatim.
func APSP(g *graph.Graph, opts Options, emit func(source int, row []int) error) (ApspResult, error) {
	if err := opts.validate(); err != nil {
		return ApspResult{}, err
	}
	n := g.N()
	if n <= 2 {
		return apspTrivial(g, emit)
	}
	topo, err := congest.NewTopology(g)
	if err != nil {
		return ApspResult{}, err
	}
	info, pre, err := congest.PreprocessOn(topo, opts.Engine...)
	if err != nil {
		return ApspResult{}, err
	}
	oracle, err := buildSkelOracle(topo, info, opts)
	if err != nil {
		return ApspResult{}, err
	}

	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	span := opts.Lanes // sources per worker per block (1 = solo sessions)
	if span < 1 {
		span = 1
	}

	// One evaluation session per worker, reused across blocks.
	evalRange := make([]func(lo, hi int, rows [][]int, rounds []int) error, workers)
	for w := 0; w < workers; w++ {
		if span == 1 {
			es := oracle.NewEvalSession(opts.Engine...)
			defer es.Close()
			evalRange[w] = func(lo, hi int, rows [][]int, rounds []int) error {
				for s := lo; s < hi; s++ {
					_, m, err := es.Eval(s, rows[s-lo])
					if err != nil {
						return fmt.Errorf("apsp: source %d: %w", s, err)
					}
					rounds[s-lo] = m.Rounds
				}
				return nil
			}
		} else {
			me := oracle.NewMultiEvalSession(span, opts.Engine...)
			defer me.Close()
			srcs := make([]int, span)
			evalRange[w] = func(lo, hi int, rows [][]int, rounds []int) error {
				for s := lo; s < hi; s++ {
					srcs[s-lo] = s
				}
				_, mets, err := me.EvalBatch(srcs[:hi-lo], rows)
				if err != nil {
					return fmt.Errorf("apsp: sources %d-%d: %w", lo, hi-1, err)
				}
				for i := range mets[:hi-lo] {
					rounds[i] = mets[i].Rounds
				}
				return nil
			}
		}
	}

	// The sweep: blocks of workers*span sources — each worker fills its
	// span of the block's row buffer concurrently, then the block is
	// emitted in source order. Peak extra memory is O(workers·span·n),
	// never Θ(n²).
	block := workers * span
	rows := make([][]int, block)
	for i := range rows {
		rows[i] = make([]int, n)
	}
	rounds := make([]int, block)
	errs := make([]error, workers)
	res := ApspResult{Sources: n, Ecc: make([]int, n), InitRounds: pre.Rounds + oracle.InitRounds, EvalRounds: -1}
	for base := 0; base < n; base += block {
		upper := min(n, base+block)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := base + w*span
			if lo >= upper {
				errs[w] = nil
				continue
			}
			hi := min(lo+span, upper)
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				off := lo - base
				errs[w] = evalRange[w](lo, hi, rows[off:off+hi-lo], rounds[off:off+hi-lo])
			}(w, lo, hi)
		}
		wg.Wait()
		// Workers cover disjoint ascending ranges, so the first non-nil
		// worker error is the smallest-source failure — deterministic.
		for w := 0; w < workers; w++ {
			if errs[w] != nil {
				return ApspResult{}, errs[w]
			}
		}
		for s := base; s < upper; s++ {
			row := rows[s-base]
			ecc := 0
			for _, d := range row {
				if d > ecc {
					ecc = d
				}
			}
			res.Ecc[s] = ecc
			// All phase durations are fixed, so the per-source cost must be
			// input-independent — the same invariant query.EvalAll asserts.
			if res.EvalRounds == -1 {
				res.EvalRounds = rounds[s-base]
			} else if rounds[s-base] != res.EvalRounds {
				return ApspResult{}, fmt.Errorf("apsp: evaluation cost depends on input (source %d: %d rounds, source 0: %d)",
					s, rounds[s-base], res.EvalRounds)
			}
			if emit != nil {
				if err := emit(s, row); err != nil {
					return ApspResult{}, err
				}
			}
		}
	}
	res.Rounds = res.InitRounds + n*res.EvalRounds
	return res, nil
}

// apspTrivial handles n <= 2 without any quantum phase, mirroring
// trivialWeighted.
func apspTrivial(g *graph.Graph, emit func(int, []int) error) (ApspResult, error) {
	switch g.N() {
	case 0:
		return ApspResult{Ecc: []int{}}, nil
	case 1:
		if emit != nil {
			if err := emit(0, []int{0}); err != nil {
				return ApspResult{}, err
			}
		}
		return ApspResult{Sources: 1, Ecc: []int{0}}, nil
	default:
		w := g.Weight(0, 1)
		if w == 0 {
			return ApspResult{}, graph.ErrDisconnected
		}
		if emit != nil {
			for s, row := range [][]int{{0, w}, {w, 0}} {
				if err := emit(s, row); err != nil {
					return ApspResult{}, err
				}
			}
		}
		return ApspResult{Sources: 2, Ecc: []int{w, w}}, nil
	}
}
