package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
)

// apspRun executes one full APSP sweep, materializing the emitted rows (the
// tests trade the streaming contract for comparability) and asserting the
// emission order and the reported Sources/Rounds arithmetic.
func apspRun(t *testing.T, g *graph.Graph, opts Options) ([][]int, ApspResult) {
	t.Helper()
	var rows [][]int
	res, err := APSP(g, opts, func(source int, row []int) error {
		if source != len(rows) {
			t.Fatalf("row %d emitted at position %d (order contract)", source, len(rows))
		}
		rows = append(rows, append([]int(nil), row...))
		return nil
	})
	if err != nil {
		t.Fatalf("APSP: %v", err)
	}
	if res.Sources != g.N() || len(rows) != g.N() {
		t.Fatalf("emitted %d rows, Sources %d, want n = %d", len(rows), res.Sources, g.N())
	}
	if g.N() > 2 && res.Rounds != res.InitRounds+res.Sources*res.EvalRounds {
		t.Fatalf("Rounds %d != InitRounds %d + %d*EvalRounds %d", res.Rounds, res.InitRounds, res.Sources, res.EvalRounds)
	}
	return rows, res
}

// TestApspMatchesOracles cross-checks the quantum APSP sweep against the
// Floyd–Warshall and Dijkstra oracles on the ~50-graph randomized suite,
// and checks that the full engine configuration matrix — workers ×
// parallel × scheduler × lanes — reproduces the baseline bit for bit (rows,
// eccentricities and every measured field).
func TestApspMatchesOracles(t *testing.T) {
	configs := []struct {
		name      string
		workers   int
		parallel  int
		lanes     int
		scheduler congest.Scheduler
	}{
		{"w2", 2, 1, 1, congest.SchedulerDense},
		{"w8/lanes8", 8, 1, 8, congest.SchedulerDense},
		{"par4/frontier", 1, 4, 1, congest.SchedulerFrontier},
		{"w8/par4/lanes8/frontier", 8, 4, 8, congest.SchedulerFrontier},
	}
	for _, c := range oracleSuite(t) {
		t.Run(c.name, func(t *testing.T) {
			want, err := c.g.FloydWarshall()
			if err != nil {
				t.Fatal(err)
			}
			base := Options{Seed: 42, Engine: []congest.Option{congest.WithWorkers(1), congest.WithStrictAccounting()}}
			rows, res := apspRun(t, c.g, base)
			for s := range rows {
				if !reflect.DeepEqual(rows[s], want[s]) {
					t.Fatalf("row %d: %v, want Floyd–Warshall %v", s, rows[s], want[s])
				}
				if dij := c.g.Dijkstra(s); !reflect.DeepEqual(rows[s], dij) {
					t.Fatalf("row %d: %v, want Dijkstra %v", s, rows[s], dij)
				}
			}
			for _, cfg := range configs {
				opts := Options{
					Seed: 42, Parallel: cfg.parallel, Lanes: cfg.lanes,
					Engine: []congest.Option{
						congest.WithWorkers(cfg.workers),
						congest.WithScheduler(cfg.scheduler),
						congest.WithStrictAccounting(),
					},
				}
				gotRows, got := apspRun(t, c.g, opts)
				if !reflect.DeepEqual(got, res) {
					t.Fatalf("%s: result %+v, want baseline %+v", cfg.name, got, res)
				}
				if !reflect.DeepEqual(gotRows, rows) {
					t.Fatalf("%s: emitted rows differ from baseline", cfg.name)
				}
			}
		})
	}
}

// TestSublinearWeightedMatchesClassical checks the Options.Sublinear
// routing: the skeleton-oracle WeightedDiameter / WeightedRadius /
// Eccentricities values must equal both the classical Bellman–Ford path
// and the sequential graph oracles on every weighted suite graph, across
// the same engine matrix.
func TestSublinearWeightedMatchesClassical(t *testing.T) {
	for _, c := range oracleSuite(t) {
		if !c.g.Weighted() {
			continue
		}
		t.Run(c.name, func(t *testing.T) {
			wantDiam, err := c.g.WeightedDiameter()
			if err != nil {
				t.Fatal(err)
			}
			wantRad, err := c.g.WeightedRadius()
			if err != nil {
				t.Fatal(err)
			}
			wantEcc, err := c.g.WeightedAllEccentricities()
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range []struct {
				name             string
				workers, par, ln int
			}{
				{"w1", 1, 1, 1}, {"w2", 2, 1, 1}, {"w8/lanes8", 8, 1, 8}, {"par4/lanes8", 1, 4, 8},
			} {
				opts := Options{
					Seed: 42, Sublinear: true, Parallel: cfg.par, Lanes: cfg.ln,
					Engine: []congest.Option{congest.WithWorkers(cfg.workers), congest.WithStrictAccounting()},
				}
				diam, err := WeightedDiameter(c.g, opts)
				if err != nil {
					t.Fatalf("%s: WeightedDiameter: %v", cfg.name, err)
				}
				if diam.Diameter != wantDiam {
					t.Fatalf("%s: sublinear diameter %d, want %d", cfg.name, diam.Diameter, wantDiam)
				}
				rad, err := WeightedRadius(c.g, opts)
				if err != nil {
					t.Fatalf("%s: WeightedRadius: %v", cfg.name, err)
				}
				if rad.Diameter != wantRad {
					t.Fatalf("%s: sublinear radius %d, want %d", cfg.name, rad.Diameter, wantRad)
				}
				ecc, err := Eccentricities(c.g, opts)
				if err != nil {
					t.Fatalf("%s: Eccentricities: %v", cfg.name, err)
				}
				if !reflect.DeepEqual(ecc.Ecc, wantEcc) {
					t.Fatalf("%s: sublinear ecc %v, want %v", cfg.name, ecc.Ecc, wantEcc)
				}
			}
			// The classical path must be untouched by the new routing.
			classical, err := WeightedDiameter(c.g, Options{Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			if classical.Diameter != wantDiam {
				t.Fatalf("classical diameter %d, want %d", classical.Diameter, wantDiam)
			}
		})
	}
}

// TestApspSampledSkeleton exercises the genuinely sublinear regime (n above
// the S = V cutoff, sampled skeleton): the rows stay exact and each
// Evaluation is measurably cheaper than the classical (n-1)-round inner
// loop.
func TestApspSampledSkeleton(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled-skeleton sweep is slow")
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"er/n=150", graph.WithWeights(graph.RandomConnected(150, 0.04, 1), 9, 2)},
		// Trees maximize D, pushing the crossover point of the Θ(sqrt(n log n)
		// + D) Evaluation vs the classical Θ(n) one to larger n.
		{"tree/n=400", graph.WithWeights(graph.RandomTree(400, 3), 7, 4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.g.N()
			want, err := tc.g.FloydWarshall()
			if err != nil {
				t.Fatal(err)
			}
			rows, res := apspRun(t, tc.g, Options{Seed: 7, Lanes: 8})
			for s := range rows {
				if !reflect.DeepEqual(rows[s], want[s]) {
					t.Fatalf("row %d diverges from Floyd–Warshall", s)
				}
			}
			classical, err := Eccentricities(tc.g, Options{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if res.EvalRounds >= classical.EvalRounds {
				t.Fatalf("skeleton Evaluation costs %d rounds, classical Bellman–Ford %d — not sublinear",
					res.EvalRounds, classical.EvalRounds)
			}
			if !reflect.DeepEqual(res.Ecc, classical.Ecc) {
				t.Fatalf("APSP eccentricities diverge from classical (n=%d)", n)
			}
		})
	}
}

// TestApspDegenerate covers the trivial and invalid inputs of the new
// entry points: n = 0/1/2, a disconnected pair, and the graph layer's
// rejection of zero-weight edges (which therefore never reach APSP).
func TestApspDegenerate(t *testing.T) {
	empty, res := apspRun(t, graph.New(0), Options{})
	if len(empty) != 0 || res.Rounds != 0 {
		t.Fatalf("n=0: rows %v, result %+v", empty, res)
	}
	single, _ := apspRun(t, graph.New(1), Options{})
	if !reflect.DeepEqual(single, [][]int{{0}}) {
		t.Fatalf("n=1: rows %v, want [[0]]", single)
	}
	pair := graph.New(2)
	if err := pair.AddWeightedEdge(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	rows, _ := apspRun(t, pair, Options{})
	if !reflect.DeepEqual(rows, [][]int{{0, 7}, {7, 0}}) {
		t.Fatalf("n=2: rows %v", rows)
	}
	if _, err := APSP(graph.New(2), Options{}, nil); !errors.Is(err, graph.ErrDisconnected) {
		t.Fatalf("disconnected pair: err %v, want ErrDisconnected", err)
	}
	if _, err := APSP(graph.New(5), Options{}, nil); err == nil {
		t.Fatal("disconnected n=5: no error")
	}
	if err := graph.New(3).AddWeightedEdge(0, 1, 0); err == nil {
		t.Fatal("zero-weight edge accepted by the graph layer")
	}
	// Sublinear weighted entry points share the degenerate handling.
	if _, err := WeightedDiameter(graph.New(2), Options{Sublinear: true}); !errors.Is(err, graph.ErrDisconnected) {
		t.Fatalf("sublinear disconnected pair: %v", err)
	}
	if r, err := WeightedRadius(graph.New(1), Options{Sublinear: true}); err != nil || r.Diameter != 0 {
		t.Fatalf("sublinear n=1: (%+v, %v)", r, err)
	}
}

// TestApspEmitContract checks the streaming contract: an emit error aborts
// the sweep and is returned verbatim.
func TestApspEmitContract(t *testing.T) {
	g := graph.WithWeights(graph.RandomConnected(12, 0.2, 5), 6, 5)
	sentinel := fmt.Errorf("stop after three rows")
	seen := 0
	_, err := APSP(g, Options{}, func(source int, row []int) error {
		seen++
		if source == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err %v, want the emit sentinel", err)
	}
	if seen != 3 {
		t.Fatalf("emit called %d times before abort, want 3", seen)
	}
}
