package core

// The distance-parameter suite: the paper's Figure 2 machinery computes far
// more than the diameter. Quantum minimum finding over the same per-vertex
// eccentricity Evaluations yields the radius; running the Evaluation once
// per vertex (batched over cloned sessions) yields the full eccentricity
// vector; and swapping the wave process for the fixed-duration Bellman–Ford
// relaxation of internal/congest extends everything to weighted graphs —
// the directions of the eccentricity (Wang–Wu–Yao 2022) and weighted
// diameter/radius (Wu–Yao 2022) follow-ups, instantiated on this
// repository's measured-round framework. DESIGN.md ("Distance-parameter
// suite") maps each entry point to the theorem it instantiates.
//
// Weight handling is uniform across the suite: Radius and Eccentricities
// compute hop parameters on unweighted graphs and weighted parameters on
// weighted graphs (the graph carries its own metric); WeightedDiameter and
// WeightedRadius force the weighted Evaluation, which on an unweighted
// graph degenerates to the hop parameter (all weights 1).

import (
	"errors"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
	"qcongest/internal/query"
)

// trivialWeighted handles the n <= 2 cases of the weighted parameters: for
// two vertices both eccentricities equal the weight of the single edge
// (weight 0 means the edge is absent — the graph is disconnected).
func trivialWeighted(g *graph.Graph) (Result, error) {
	switch g.N() {
	case 0, 1:
		return Result{Diameter: 0}, nil
	case 2:
		w := g.Weight(0, 1)
		if w == 0 {
			return Result{}, graph.ErrDisconnected
		}
		return Result{Diameter: w}, nil
	}
	return Result{}, errTrivial
}

// eccContextFor picks the Evaluation family the graph's metric (and
// Options.Sublinear) calls for, returning any extra measured init rounds
// the family's preprocessing charged (the skeleton oracle's).
func eccContextFor(g *graph.Graph, topo *congest.Topology, info *congest.PreInfo, opts Options) (evalFamily, int, error) {
	if g.Weighted() {
		return weightedFamilyFor(topo, info, opts)
	}
	return singleEccContext(topo, info, opts), 0, nil
}

// weightedFamilyFor picks between the classical fixed-duration Bellman–Ford
// Evaluation (the golden-pinned default) and the skeleton distance oracle
// (Options.Sublinear), returning the oracle's measured init cost.
func weightedFamilyFor(topo *congest.Topology, info *congest.PreInfo, opts Options) (evalFamily, int, error) {
	if !opts.Sublinear {
		return weightedEccContext(topo, info, opts), 0, nil
	}
	oracle, err := buildSkelOracle(topo, info, opts)
	if err != nil {
		return evalFamily{}, 0, err
	}
	return skelEccFamily(oracle, opts), oracle.InitRounds, nil
}

// Radius computes the exact radius min_u ecc(u) by quantum minimum finding
// over f(u) = ecc(u) with P_opt >= 1/n — the Section 3.1 framework with the
// maximization replaced by the symmetric minimization. Õ(sqrt(n)·D) rounds
// on unweighted graphs; on weighted graphs the Evaluation is the
// fixed-duration Bellman–Ford relaxation and the result is the weighted
// radius.
func Radius(g *graph.Graph, opts Options) (Result, error) {
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	if g.Weighted() {
		return WeightedRadius(g, opts)
	}
	if r, err := trivialDiameter(g); !errors.Is(err, errTrivial) {
		return r, err
	}
	topo, err := congest.NewTopology(g)
	if err != nil {
		return Result{}, err
	}
	info, pre, err := congest.PreprocessOn(topo, opts.Engine...)
	if err != nil {
		return Result{}, err
	}
	return runOptimization(singleEccContext(topo, info, opts), optimizationParams{
		domain:      identityDomain(g.N()),
		eps:         1 / float64(g.N()),
		delta:       opts.delta(),
		seed:        opts.Seed,
		initRounds:  pre.Rounds,
		setupRounds: info.D + 1,
		parallel:    opts.Parallel,
		lanes:       opts.Lanes,
		minimize:    true,
	})
}

// WeightedDiameter computes the exact weighted diameter by quantum maximum
// finding over f(u) = weighted ecc(u) with P_opt >= 1/n. Each Evaluation is
// one fixed-duration Bellman–Ford relaxation plus a weighted max
// convergecast; on an unweighted graph the result equals the hop diameter.
func WeightedDiameter(g *graph.Graph, opts Options) (Result, error) {
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	if r, err := trivialWeighted(g); !errors.Is(err, errTrivial) {
		return r, err
	}
	topo, err := congest.NewTopology(g)
	if err != nil {
		return Result{}, err
	}
	info, pre, err := congest.PreprocessOn(topo, opts.Engine...)
	if err != nil {
		return Result{}, err
	}
	fam, oracleInit, err := weightedFamilyFor(topo, info, opts)
	if err != nil {
		return Result{}, err
	}
	return runOptimization(fam, optimizationParams{
		domain:      identityDomain(g.N()),
		eps:         1 / float64(g.N()),
		delta:       opts.delta(),
		seed:        opts.Seed,
		initRounds:  pre.Rounds + oracleInit,
		setupRounds: info.D + 1,
		parallel:    opts.Parallel,
		lanes:       opts.Lanes,
	})
}

// WeightedRadius is WeightedDiameter's minimization twin: quantum minimum
// finding over the weighted eccentricities.
func WeightedRadius(g *graph.Graph, opts Options) (Result, error) {
	if err := opts.validate(); err != nil {
		return Result{}, err
	}
	if r, err := trivialWeighted(g); !errors.Is(err, errTrivial) {
		return r, err
	}
	topo, err := congest.NewTopology(g)
	if err != nil {
		return Result{}, err
	}
	info, pre, err := congest.PreprocessOn(topo, opts.Engine...)
	if err != nil {
		return Result{}, err
	}
	fam, oracleInit, err := weightedFamilyFor(topo, info, opts)
	if err != nil {
		return Result{}, err
	}
	return runOptimization(fam, optimizationParams{
		domain:      identityDomain(g.N()),
		eps:         1 / float64(g.N()),
		delta:       opts.delta(),
		seed:        opts.Seed,
		initRounds:  pre.Rounds + oracleInit,
		setupRounds: info.D + 1,
		parallel:    opts.Parallel,
		lanes:       opts.Lanes,
		minimize:    true,
	})
}

// EccResult reports the full eccentricity vector together with its measured
// CONGEST cost.
type EccResult struct {
	// Ecc[v] is the (hop or weighted, per the graph's metric) eccentricity
	// of vertex v.
	Ecc []int
	// Rounds is the total round complexity of the straight-line computation:
	// InitRounds + n * EvalRounds.
	Rounds int
	// InitRounds is the measured preprocessing cost.
	InitRounds int
	// EvalRounds is the measured cost of one Evaluation (identical for every
	// vertex: the durations are fixed).
	EvalRounds int
}

// Eccentricities computes ecc(v) for every vertex by running one Evaluation
// per vertex on reused sessions — Options.Parallel > 1 batches independent
// Evaluations onto cloned sessions via a congest.Pool, with results
// identical to the sequential run. On weighted graphs each Evaluation is the
// weighted one and the vector holds weighted eccentricities.
func Eccentricities(g *graph.Graph, opts Options) (EccResult, error) {
	if err := opts.validate(); err != nil {
		return EccResult{}, err
	}
	n := g.N()
	switch n {
	case 0:
		return EccResult{Ecc: []int{}}, nil
	case 1:
		return EccResult{Ecc: []int{0}}, nil
	case 2:
		w := g.Weight(0, 1)
		if w == 0 {
			return EccResult{}, graph.ErrDisconnected
		}
		return EccResult{Ecc: []int{w, w}}, nil
	}
	topo, err := congest.NewTopology(g)
	if err != nil {
		return EccResult{}, err
	}
	info, pre, err := congest.PreprocessOn(topo, opts.Engine...)
	if err != nil {
		return EccResult{}, err
	}
	fam, oracleInit, err := eccContextFor(g, topo, info, opts)
	if err != nil {
		return EccResult{}, err
	}
	oracle := ctxOracle{
		domain:      identityDomain(n),
		initRounds:  pre.Rounds + oracleInit,
		setupRounds: info.D + 1,
		family:      fam,
	}
	// The straight-line use of the query layer: one Evaluation per vertex,
	// batched over cloned sessions (Parallel) and fused into multi-lane
	// engine passes (Lanes), with the per-vertex cost uniformity (the
	// property the quantum queries rely on) asserted by EvalAll.
	ecc, evalRounds, err := query.EvalAll(oracle, query.Options{Seed: opts.Seed, Parallel: opts.Parallel, Lanes: opts.Lanes})
	if err != nil {
		return EccResult{}, err
	}
	return EccResult{
		Ecc:        ecc,
		Rounds:     pre.Rounds + oracleInit + n*evalRounds,
		InitRounds: pre.Rounds + oracleInit,
		EvalRounds: evalRounds,
	}, nil
}
