package core

// New workloads on the generic query layer — the point of the framework:
// once an Evaluation family is wrapped as a query.Oracle, every query kind
// (Search, Count, Minimum) is one call. TriangleDetect/TriangleCount run
// quantum search/counting over the vertex-local triangle predicate
// (congest.TriangleFlagsOn + one convergecast per Evaluation), and
// MinTreeCut runs quantum minimum finding over the tree-cut weights
// (congest.CutSession). Both Evaluation families are real wire-accounted
// CONGEST programs with input-independent round counts.

import (
	"errors"
	"sort"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
	"qcongest/internal/query"
)

// TriangleResult reports a triangle search or count together with its
// measured costs.
type TriangleResult struct {
	// Found reports whether a triangle vertex was found (detection: with
	// probability >= 1-Delta the graph is triangle-free when false).
	Found bool
	// Vertex is a vertex lying on a triangle (valid when Found).
	Vertex int
	// Vertices lists every vertex lying on at least one triangle, ascending,
	// and Count is its size (TriangleCount only; TriangleDetect leaves them
	// empty).
	Vertices []int
	Count    int
	// Cost accounting, as in Result.
	Rounds       int
	InitRounds   int
	SetupRounds  int
	EvalRounds   int
	Iterations   int
	LeaderQubits int
	NodeQubits   int
}

// triangleOracle prepares the triangle Evaluation family: the adjacency
// probe computes the per-vertex flags once (charged to InitRounds together
// with the preprocessing), and each Evaluation extracts one flag at the
// leader by a convergecast.
func triangleOracle(g *graph.Graph, opts Options) (ctxOracle, error) {
	topo, err := congest.NewTopology(g)
	if err != nil {
		return ctxOracle{}, err
	}
	info, pre, err := congest.PreprocessOn(topo, opts.Engine...)
	if err != nil {
		return ctxOracle{}, err
	}
	flags, probe, err := congest.TriangleFlagsOn(topo, opts.Engine...)
	if err != nil {
		return ctxOracle{}, err
	}
	return ctxOracle{
		domain:      identityDomain(g.N()),
		initRounds:  pre.Rounds + probe.Rounds,
		setupRounds: info.D + 1,
		family: evalFamily{newCtx: func() *evalContext {
			ts := congest.NewTriangleSession(topo, info, flags, opts.Engine...)
			return &evalContext{
				eval: func(u0 int) (int, int, error) {
					v, m, err := ts.Eval(u0)
					return v, m.Rounds, err
				},
				close: ts.Close,
			}
		}},
	}, nil
}

func triangleFromQuery(qr query.Result) TriangleResult {
	res := TriangleResult{
		Found:        qr.Found,
		Vertex:       qr.X,
		Count:        qr.Count,
		Rounds:       qr.Rounds,
		InitRounds:   qr.InitRounds,
		SetupRounds:  qr.SetupRounds,
		EvalRounds:   qr.EvalRounds,
		Iterations:   qr.Iterations,
		LeaderQubits: qr.LeaderQubits,
		NodeQubits:   qr.NodeQubits,
	}
	if len(qr.All) > 0 {
		res.Vertices = append([]int(nil), qr.All...)
		sort.Ints(res.Vertices)
	}
	return res
}

// trivialTriangle handles the quantum-free cases: fewer than three vertices
// never contain a triangle (the disconnected two-vertex graph stays an
// error, consistently with the rest of the suite).
func trivialTriangle(g *graph.Graph) (TriangleResult, error) {
	switch g.N() {
	case 0, 1:
		return TriangleResult{}, nil
	case 2:
		if !g.HasEdge(0, 1) {
			return TriangleResult{}, graph.ErrDisconnected
		}
		return TriangleResult{}, nil
	}
	return TriangleResult{}, errTrivial
}

// TriangleDetect decides whether the graph contains a triangle by quantum
// search over the vertex-local triangle predicate: f(u) = 1 iff u lies on a
// triangle. With probability at least 1-Delta the answer is correct in both
// directions.
func TriangleDetect(g *graph.Graph, opts Options) (TriangleResult, error) {
	if r, err := trivialTriangle(g); !errors.Is(err, errTrivial) {
		return r, err
	}
	oracle, err := triangleOracle(g, opts)
	if err != nil {
		return TriangleResult{}, err
	}
	qr, err := query.Search(oracle, func(v int) bool { return v == 1 },
		query.Options{Delta: opts.delta(), Seed: opts.Seed, Parallel: opts.Parallel})
	if err != nil {
		return TriangleResult{}, err
	}
	return triangleFromQuery(qr), nil
}

// TriangleCount counts the vertices lying on at least one triangle (and
// lists them) by the quantum search-and-exclude loop over the same
// predicate.
func TriangleCount(g *graph.Graph, opts Options) (TriangleResult, error) {
	if r, err := trivialTriangle(g); !errors.Is(err, errTrivial) {
		return r, err
	}
	oracle, err := triangleOracle(g, opts)
	if err != nil {
		return TriangleResult{}, err
	}
	qr, err := query.Count(oracle, func(v int) bool { return v == 1 },
		query.Options{Delta: opts.delta(), Seed: opts.Seed, Parallel: opts.Parallel})
	if err != nil {
		return TriangleResult{}, err
	}
	return triangleFromQuery(qr), nil
}

// CutResult reports a minimum tree cut together with its measured costs.
type CutResult struct {
	// Weight is the minimum crossing weight over all tree cuts, and Root the
	// subtree root achieving it: the cut separates subtree(Root) of the
	// preprocessing BFS tree from the rest of the graph.
	Weight int
	Root   int
	// Cost accounting, as in Result.
	Rounds       int
	InitRounds   int
	SetupRounds  int
	EvalRounds   int
	Iterations   int
	LeaderQubits int
	NodeQubits   int
}

// MinTreeCut computes the minimum-weight tree cut — the lightest edge set
// whose removal separates some BFS subtree from the rest of the graph — by
// quantum minimum finding over f(u) = weight of the cut (subtree(u), rest),
// for u ranging over the non-leader vertices (the leader's subtree is the
// whole graph). Each Evaluation is a fixed-duration mark flood plus a sum
// convergecast; on unweighted graphs every edge weighs 1 and the result is
// the smallest crossing edge count.
func MinTreeCut(g *graph.Graph, opts Options) (CutResult, error) {
	n := g.N()
	switch n {
	case 0, 1:
		return CutResult{}, graph.ErrDisconnected
	case 2:
		w := g.Weight(0, 1)
		if w == 0 {
			return CutResult{}, graph.ErrDisconnected
		}
		// The single non-leader subtree is {0}; its cut is the one edge.
		return CutResult{Weight: w, Root: 0}, nil
	}
	topo, err := congest.NewTopology(g)
	if err != nil {
		return CutResult{}, err
	}
	info, pre, err := congest.PreprocessOn(topo, opts.Engine...)
	if err != nil {
		return CutResult{}, err
	}
	domain := make([]int, 0, n-1)
	for v := 0; v < n; v++ {
		if v != info.Leader {
			domain = append(domain, v)
		}
	}
	oracle := ctxOracle{
		domain:      domain,
		initRounds:  pre.Rounds,
		setupRounds: info.D + 1,
		family: evalFamily{newCtx: func() *evalContext {
			cs := congest.NewCutSession(topo, info, opts.Engine...)
			return &evalContext{
				eval: func(u0 int) (int, int, error) {
					v, m, err := cs.Eval(u0)
					return v, m.Rounds, err
				},
				close: cs.Close,
			}
		}},
	}
	qr, err := query.Minimum(oracle, 1/float64(len(domain)),
		query.Options{Delta: opts.delta(), Seed: opts.Seed, Parallel: opts.Parallel})
	if err != nil {
		return CutResult{}, err
	}
	return CutResult{
		Weight:       qr.Value,
		Root:         qr.X,
		Rounds:       qr.Rounds,
		InitRounds:   qr.InitRounds,
		SetupRounds:  qr.SetupRounds,
		EvalRounds:   qr.EvalRounds,
		Iterations:   qr.Iterations,
		LeaderQubits: qr.LeaderQubits,
		NodeQubits:   qr.NodeQubits,
	}, nil
}
