package core

// Golden-compatibility layer for the query-framework refactor: the seven
// suite entry points are pinned to the exact Result values the pre-refactor
// implementation produced on a fixed graph/seed matrix (captured at the PR-6
// boundary, before runOptimization moved onto internal/query). Every field —
// value, Rounds, InitRounds, SetupRounds, EvalRounds, Iterations, qubit
// counts — must match bit for bit, across worker counts {1, 2, 8},
// sequential vs Parallel sessions, and Dense vs Frontier scheduling, so the
// port is provably behavior-preserving.

import (
	"reflect"
	"testing"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
)

type goldenGraph struct {
	name string
	g    *graph.Graph
}

// goldenGraphs is the fixed matrix: deterministic constructions only (the
// generators are seeded, so the graphs are stable across runs and refactors).
func goldenGraphs() []goldenGraph {
	tree := graph.RandomTree(13, 3)
	er := graph.RandomConnected(16, 0.15, 7)
	erw := graph.WithWeights(graph.RandomConnected(14, 0.2, 9), 6, 90)
	treew := graph.WithWeights(graph.RandomTree(11, 5), 4, 50)
	return []goldenGraph{
		{"path12", graph.Path(12)},
		{"er16", er},
		{"tree13", tree},
		{"grid4x4", graph.Grid(4, 4)},
		{"erw14", erw},
		{"treew11", treew},
	}
}

type goldenCase struct {
	graph string
	seed  int64
	entry string
	want  Result
}

type goldenEccCase struct {
	graph string
	seed  int64
	want  EccResult
}

// TestGoldenSuiteCompatibility replays the matrix through the refactored
// entry points under every engine configuration and compares full Result
// structs to the pre-refactor captures.
func TestGoldenSuiteCompatibility(t *testing.T) {
	graphs := map[string]*graph.Graph{}
	for _, gc := range goldenGraphs() {
		graphs[gc.name] = gc.g
	}
	configs := []struct {
		name         string
		workers, par int
		sched        congest.Scheduler
	}{
		{"w1-seq-frontier", 1, 1, congest.SchedulerFrontier},
		{"w2-seq-dense", 2, 1, congest.SchedulerDense},
		{"w8-par4-frontier", 8, 4, congest.SchedulerFrontier},
		{"w1-par4-dense", 1, 4, congest.SchedulerDense},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			for _, tc := range goldenCases {
				g := graphs[tc.graph]
				opts := Options{
					Seed:     tc.seed,
					Parallel: cfg.par,
					Engine: []congest.Option{
						congest.WithWorkers(cfg.workers),
						congest.WithScheduler(cfg.sched),
						congest.WithStrictAccounting(),
					},
				}
				var got Result
				var err error
				switch tc.entry {
				case "simple":
					got, err = ExactDiameterSimple(g, opts)
				case "exact":
					got, err = ExactDiameter(g, opts)
				case "approx":
					got, err = ApproxDiameter(g, opts)
				case "radius":
					got, err = Radius(g, opts)
				case "wdiam":
					got, err = WeightedDiameter(g, opts)
				case "wradius":
					got, err = WeightedRadius(g, opts)
				default:
					t.Fatalf("unknown entry %q", tc.entry)
				}
				if err != nil {
					t.Fatalf("%s/%s/seed=%d: %v", tc.graph, tc.entry, tc.seed, err)
				}
				if got != tc.want {
					t.Errorf("%s/%s/seed=%d diverges from pre-refactor golden:\n got %+v\nwant %+v",
						tc.graph, tc.entry, tc.seed, got, tc.want)
				}
			}
			for _, tc := range goldenEccCases {
				g := graphs[tc.graph]
				opts := Options{
					Seed:     tc.seed,
					Parallel: cfg.par,
					Engine: []congest.Option{
						congest.WithWorkers(cfg.workers),
						congest.WithScheduler(cfg.sched),
						congest.WithStrictAccounting(),
					},
				}
				got, err := Eccentricities(g, opts)
				if err != nil {
					t.Fatalf("%s/ecc/seed=%d: %v", tc.graph, tc.seed, err)
				}
				if !reflect.DeepEqual(got, tc.want) {
					t.Errorf("%s/ecc/seed=%d diverges from pre-refactor golden:\n got %+v\nwant %+v",
						tc.graph, tc.seed, got, tc.want)
				}
			}
		})
	}
}
