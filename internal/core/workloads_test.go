package core

// Classical-oracle cross-checks and round-envelope regressions for the
// query-framework workloads (triangle detection/counting, minimum tree
// cut). The oracles here are code-independent: brute-force triangle flags
// straight off the adjacency relation, and a from-scratch reimplementation
// of the documented preprocessing tree (leader = max id, BFS parent =
// smallest-id neighbor one level up) for the cut weights.

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
)

// workloadSuite is the oracle suite plus dense graphs that guarantee the
// triangle-rich side of the predicate (the base suite's trees and sparse
// graphs cover the triangle-free side).
func workloadSuite(t *testing.T) []oracleCase {
	t.Helper()
	cases := oracleSuite(t)
	for i := 0; i < 6; i++ {
		n := 10 + i
		cases = append(cases, oracleCase{
			name: fmt.Sprintf("er-dense/n=%d/seed=%d", n, i),
			g:    graph.RandomConnected(n, 0.5, int64(900+i)),
		})
	}
	return cases
}

// bruteTriangleFlags is the O(n^3) oracle: flag v iff two of its neighbors
// are adjacent.
func bruteTriangleFlags(g *graph.Graph) []bool {
	flags := make([]bool, g.N())
	for v := range flags {
		nbs := g.Neighbors(v)
		for i, a := range nbs {
			for _, b := range nbs[i+1:] {
				if g.HasEdge(a, b) {
					flags[v] = true
				}
			}
		}
	}
	return flags
}

// bruteTree recomputes the preprocessing BFS tree from its documented
// definition, sharing no code with internal/congest: the leader is the
// maximum id, and each vertex's parent is its smallest-id neighbor one BFS
// level closer to the leader (the congest BFS adopts the first arrival of
// an id-sorted inbox).
func bruteTree(g *graph.Graph) (leader int, parent []int) {
	n := g.N()
	leader = n - 1
	dist := make([]int, n)
	for v := range dist {
		dist[v] = -1
	}
	dist[leader] = 0
	queue := []int{leader}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(v) {
			if dist[nb] < 0 {
				dist[nb] = dist[v] + 1
				queue = append(queue, nb)
			}
		}
	}
	parent = make([]int, n)
	for v := range parent {
		parent[v] = -1
		if v == leader {
			continue
		}
		for _, nb := range g.Neighbors(v) { // ascending: first hit is min id
			if dist[nb] == dist[v]-1 {
				parent[v] = nb
				break
			}
		}
	}
	return leader, parent
}

// bruteCutWeight computes the weight of the edges crossing
// (subtree(root), rest) on the parent array's tree.
func bruteCutWeight(g *graph.Graph, parent []int, root int) int {
	n := g.N()
	inside := make([]bool, n)
	for v := 0; v < n; v++ {
		for u := v; u >= 0; u = parent[u] {
			if u == root {
				inside[v] = true
				break
			}
		}
	}
	w := 0
	for v := 0; v < n; v++ {
		for _, nb := range g.Neighbors(v) {
			if v < nb && inside[v] != inside[nb] {
				w += g.Weight(v, nb)
			}
		}
	}
	return w
}

// workloadDelta keeps per-query failure probability negligible across the
// suite; every run is seed-deterministic regardless.
const workloadDelta = 1e-6

// TestTriangleAgainstBruteForce cross-checks TriangleDetect and
// TriangleCount against the O(n^3) oracle on every suite graph.
func TestTriangleAgainstBruteForce(t *testing.T) {
	for i, oc := range workloadSuite(t) {
		oc, seed := oc, int64(40+i)
		t.Run(oc.name, func(t *testing.T) {
			t.Parallel()
			flags := bruteTriangleFlags(oc.g)
			var want []int
			for v, f := range flags {
				if f {
					want = append(want, v)
				}
			}
			opts := Options{Seed: seed, Delta: workloadDelta}
			det, err := TriangleDetect(oc.g, opts)
			if err != nil {
				t.Fatalf("TriangleDetect: %v", err)
			}
			if det.Found != (len(want) > 0) {
				t.Errorf("Detect: Found=%v, want %v (%d flagged)", det.Found, len(want) > 0, len(want))
			}
			if det.Found && !flags[det.Vertex] {
				t.Errorf("Detect: vertex %d is not on a triangle", det.Vertex)
			}
			cnt, err := TriangleCount(oc.g, opts)
			if err != nil {
				t.Fatalf("TriangleCount: %v", err)
			}
			if !reflect.DeepEqual(cnt.Vertices, want) || cnt.Count != len(want) {
				t.Errorf("Count: got %v (count %d), want %v", cnt.Vertices, cnt.Count, want)
			}
		})
	}
}

// TestMinTreeCutAgainstBruteForce cross-checks MinTreeCut against the
// reimplemented tree and exhaustive minimization on every suite graph.
func TestMinTreeCutAgainstBruteForce(t *testing.T) {
	for i, oc := range workloadSuite(t) {
		oc, seed := oc, int64(80+i)
		t.Run(oc.name, func(t *testing.T) {
			t.Parallel()
			leader, parent := bruteTree(oc.g)
			best := math.MaxInt
			for v := 0; v < oc.g.N(); v++ {
				if v != leader {
					best = min(best, bruteCutWeight(oc.g, parent, v))
				}
			}
			res, err := MinTreeCut(oc.g, Options{Seed: seed, Delta: workloadDelta})
			if err != nil {
				t.Fatalf("MinTreeCut: %v", err)
			}
			if res.Weight != best {
				t.Errorf("Weight = %d, want %d", res.Weight, best)
			}
			if res.Root == leader || bruteCutWeight(oc.g, parent, res.Root) != res.Weight {
				t.Errorf("Root = %d does not achieve the reported weight %d", res.Root, res.Weight)
			}
		})
	}
}

// TestWorkloadConfigIdentity replays both workloads under the golden-test
// configuration matrix (workers x sequential/batched x scheduler, strict
// accounting) and requires bit-identical Results.
func TestWorkloadConfigIdentity(t *testing.T) {
	configs := []struct {
		name     string
		parallel int
		engine   []congest.Option
	}{
		{"w1-seq-frontier", 1, []congest.Option{
			congest.WithWorkers(1), congest.WithScheduler(congest.SchedulerFrontier), congest.WithStrictAccounting()}},
		{"w2-seq-dense", 1, []congest.Option{
			congest.WithWorkers(2), congest.WithScheduler(congest.SchedulerDense), congest.WithStrictAccounting()}},
		{"w8-par4-frontier", 4, []congest.Option{
			congest.WithWorkers(8), congest.WithScheduler(congest.SchedulerFrontier), congest.WithStrictAccounting()}},
		{"w1-par4-dense", 4, []congest.Option{
			congest.WithWorkers(1), congest.WithScheduler(congest.SchedulerDense), congest.WithStrictAccounting()}},
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"er16", graph.RandomConnected(16, 0.3, 7)},
		{"tree13", graph.RandomTree(13, 3)},
		{"erw14", graph.WithWeights(graph.RandomConnected(14, 0.2, 9), 6, 90)},
	}
	for _, gc := range graphs {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			t.Parallel()
			var baseTri, baseCnt TriangleResult
			var baseCut CutResult
			for i, cfg := range configs {
				opts := Options{Seed: 21, Delta: workloadDelta, Parallel: cfg.parallel, Engine: cfg.engine}
				tri, err := TriangleDetect(gc.g, opts)
				if err != nil {
					t.Fatalf("%s: TriangleDetect: %v", cfg.name, err)
				}
				cnt, err := TriangleCount(gc.g, opts)
				if err != nil {
					t.Fatalf("%s: TriangleCount: %v", cfg.name, err)
				}
				cut, err := MinTreeCut(gc.g, opts)
				if err != nil {
					t.Fatalf("%s: MinTreeCut: %v", cfg.name, err)
				}
				if i == 0 {
					baseTri, baseCnt, baseCut = tri, cnt, cut
					continue
				}
				if !reflect.DeepEqual(tri, baseTri) {
					t.Errorf("%s: TriangleDetect diverges:\n got %+v\nwant %+v", cfg.name, tri, baseTri)
				}
				if !reflect.DeepEqual(cnt, baseCnt) {
					t.Errorf("%s: TriangleCount diverges:\n got %+v\nwant %+v", cfg.name, cnt, baseCnt)
				}
				if !reflect.DeepEqual(cut, baseCut) {
					t.Errorf("%s: MinTreeCut diverges:\n got %+v\nwant %+v", cfg.name, cut, baseCut)
				}
			}
		})
	}
}

// TestWorkloadRoundEnvelope pins the measured round counts inside the
// paper-style envelope derived from the amplification budget
// B = ceil(ln(1/delta))*ceil(3*sqrt(n)) + 1 (Grover rotations): each
// rotation costs two Setup and two Evaluation applications, and each BBHT
// attempt adds one of each for verification — so the distributed cost of a
// search is at most (3B + slack)*(Setup + 2*Eval + 1) on top of InitRounds.
// The count multiplies by (found+1) passes of the search-and-exclude loop,
// and the minimum finding by the O(log n) rounds of the Dürr–Høyer climb.
// Measured constant factors live in EXPERIMENTS.md; a regression that
// inflates the amplification schedule breaks these inequalities.
func TestWorkloadRoundEnvelope(t *testing.T) {
	boost := int(math.Ceil(math.Log(1 / workloadDelta))) // 14 at delta 1e-6
	const slack = 8                                      // zero-rotation BBHT attempts
	for i, oc := range workloadSuite(t) {
		if i%4 != 0 { // every 4th graph keeps the sweep cheap but broad
			continue
		}
		oc, seed := oc, int64(160+i)
		t.Run(oc.name, func(t *testing.T) {
			t.Parallel()
			n := oc.g.N()
			budget := boost*int(math.Ceil(3*math.Sqrt(float64(n)))) + 1
			calls := 3*budget + slack
			perIter := func(setup, eval int) int { return setup + 2*eval + 1 }

			det, err := TriangleDetect(oc.g, Options{Seed: seed, Delta: workloadDelta})
			if err != nil {
				t.Fatalf("TriangleDetect: %v", err)
			}
			if limit := det.InitRounds + calls*perIter(det.SetupRounds, det.EvalRounds); det.Rounds > limit {
				t.Errorf("Detect rounds %d exceed envelope %d (n=%d)", det.Rounds, limit, n)
			}
			cnt, err := TriangleCount(oc.g, Options{Seed: seed, Delta: workloadDelta})
			if err != nil {
				t.Fatalf("TriangleCount: %v", err)
			}
			if limit := cnt.InitRounds + calls*(cnt.Count+1)*perIter(cnt.SetupRounds, cnt.EvalRounds); cnt.Rounds > limit {
				t.Errorf("Count rounds %d exceed envelope %d (n=%d, count=%d)", cnt.Rounds, limit, n, cnt.Count)
			}
			cut, err := MinTreeCut(oc.g, Options{Seed: seed, Delta: workloadDelta})
			if err != nil {
				t.Fatalf("MinTreeCut: %v", err)
			}
			// Dürr–Høyer with eps = 1/(n-1): the threshold climb performs
			// O(log(1/eps)) rounds of O(sqrt(n)) amplification each.
			logEps := int(math.Ceil(math.Log2(float64(n-1)))) + 1
			limit := cut.InitRounds + logEps*calls*perIter(cut.SetupRounds, cut.EvalRounds)
			if cut.Rounds > limit {
				t.Errorf("MinTreeCut rounds %d exceed envelope %d (n=%d)", cut.Rounds, limit, n)
			}
		})
	}
}
