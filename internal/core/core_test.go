package core

import (
	"math"
	"testing"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
)

// classicalExact returns the round count of the classical exact baseline.
func classicalExact(g *graph.Graph) (int, error) {
	res, err := congest.ClassicalExactDiameter(g)
	if err != nil {
		return 0, err
	}
	return res.Metrics.Rounds, nil
}

// Success probability is constant per run (delta = 0.1); count hits over
// seeds and require a strong majority.
func assertMostlyCorrect(t *testing.T, g *graph.Graph, want int,
	run func(seed int64) (Result, error), minHits, trials int) {
	t.Helper()
	hits := 0
	for seed := int64(0); seed < int64(trials); seed++ {
		res, err := run(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Diameter == want {
			hits++
		}
		if res.Diameter > want {
			t.Fatalf("seed %d: result %d exceeds true diameter %d (impossible: f maximizes true eccentricities)",
				seed, res.Diameter, want)
		}
	}
	if hits < minHits {
		t.Errorf("correct in %d/%d runs, want >= %d", hits, trials, minHits)
	}
}

func TestExactDiameterSimpleCorrectness(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(12),
		graph.Cycle(13),
		graph.Grid(3, 6),
		graph.RandomConnected(24, 0.1, 3),
	}
	for gi, g := range graphs {
		want, err := g.Diameter()
		if err != nil {
			t.Fatal(err)
		}
		g := g
		t.Run("", func(t *testing.T) {
			assertMostlyCorrect(t, g, want, func(seed int64) (Result, error) {
				return ExactDiameterSimple(g, Options{Seed: seed})
			}, 8, 10)
		})
		_ = gi
	}
}

func TestExactDiameterCorrectness(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(14),
		graph.Star(12),
		graph.Cycle(12),
		graph.Grid(4, 5),
		graph.CompleteBinaryTree(15),
		graph.Barbell(5, 4),
		graph.RandomConnected(26, 0.08, 5),
		graph.RandomConnected(26, 0.2, 6),
		graph.SmallWorld(24, 2, 0.2, 7),
	}
	for _, g := range graphs {
		want, err := g.Diameter()
		if err != nil {
			t.Fatal(err)
		}
		g := g
		t.Run("", func(t *testing.T) {
			assertMostlyCorrect(t, g, want, func(seed int64) (Result, error) {
				return ExactDiameter(g, Options{Seed: seed})
			}, 8, 10)
		})
	}
}

func TestTrivialGraphs(t *testing.T) {
	for _, f := range []func(*graph.Graph, Options) (Result, error){
		ExactDiameterSimple, ExactDiameter, ApproxDiameter,
	} {
		res, err := f(graph.Path(1), Options{})
		if err != nil || res.Diameter != 0 {
			t.Errorf("n=1: %v %v", res.Diameter, err)
		}
		res, err = f(graph.Path(2), Options{})
		if err != nil || res.Diameter != 1 {
			t.Errorf("n=2: %v %v", res.Diameter, err)
		}
	}
}

func TestApproxDiameterQuality(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(24),
		graph.Cycle(20),
		graph.Grid(4, 6),
		graph.RandomConnected(30, 0.08, 11),
		graph.Barbell(6, 6),
	}
	for gi, g := range graphs {
		want, err := g.Diameter()
		if err != nil {
			t.Fatal(err)
		}
		okCount := 0
		const trials = 6
		for seed := int64(0); seed < trials; seed++ {
			res, err := ApproxDiameter(g, Options{Seed: seed})
			if err != nil {
				t.Fatalf("graph %d seed %d: %v", gi, seed, err)
			}
			if res.Diameter > want {
				t.Fatalf("graph %d: estimate %d exceeds diameter %d", gi, res.Diameter, want)
			}
			if 2*want <= 3*(res.Diameter+1) {
				okCount++
			}
		}
		if okCount < trials-1 {
			t.Errorf("graph %d: 3/2 bound held in only %d/%d runs", gi, okCount, trials)
		}
	}
}

// Theorem 1's qualitative claim, measured as scaling: on constant-diameter
// graphs, quadrupling n roughly doubles the quantum round count
// (sqrt scaling) while the classical baseline quadruples. The absolute
// crossover lies at much larger n because one amplification iteration
// costs ~38d rounds (see EXPERIMENTS.md); the separation in growth rates is
// the reproducible claim at laptop scale.
func TestQuantumSqrtScalingOnSmallDiameter(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling comparison")
	}
	rounds := func(n int) (q, c float64) {
		g, err := graph.LollipopWithDiameter(n, 4)
		if err != nil {
			t.Fatal(err)
		}
		// Average the randomized quantum cost over a few seeds.
		totalQ := 0
		const trials = 3
		for seed := int64(0); seed < trials; seed++ {
			res, err := ExactDiameter(g, Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.Diameter != 4 {
				t.Errorf("n=%d seed=%d: diameter %d, want 4", n, seed, res.Diameter)
			}
			totalQ += res.Rounds
		}
		cl, err := classicalExact(g)
		if err != nil {
			t.Fatal(err)
		}
		return float64(totalQ) / trials, float64(cl)
	}
	q1, c1 := rounds(40)
	q2, c2 := rounds(160)
	quantumGrowth := q2 / q1
	classicalGrowth := c2 / c1
	// sqrt scaling predicts 2x for quantum; linear predicts 4x for
	// classical. Require a clear separation.
	if quantumGrowth > 3 {
		t.Errorf("quantum growth %.2fx for 4x n; want ~2x", quantumGrowth)
	}
	if classicalGrowth < 3.2 {
		t.Errorf("classical growth %.2fx for 4x n; want ~4x", classicalGrowth)
	}
	if quantumGrowth >= classicalGrowth {
		t.Errorf("no separation: quantum %.2fx vs classical %.2fx", quantumGrowth, classicalGrowth)
	}
}

// The evaluation procedure's round count must not depend on u0 — checked
// internally by the optimizer, which would fail with
// ErrInconsistentRounds; a passing run certifies input independence.
func TestEvaluationRoundUniformity(t *testing.T) {
	g := graph.RandomConnected(20, 0.12, 17)
	if _, err := ExactDiameter(g, Options{Seed: 2}); err != nil {
		t.Fatalf("optimizer rejected evaluation: %v", err)
	}
}

func TestMemoryIsPolylog(t *testing.T) {
	g := graph.RandomConnected(64, 0.07, 19)
	res, err := ExactDiameter(g, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// O((log n)^2) with small constants: log2(65) = 7 bits per register.
	if res.NodeQubits > 64 {
		t.Errorf("node qubits %d", res.NodeQubits)
	}
	if res.LeaderQubits > 300 {
		t.Errorf("leader qubits %d", res.LeaderQubits)
	}
}

func TestOptionsDefaults(t *testing.T) {
	if (Options{}).delta() != 0.1 {
		t.Error("default delta")
	}
	if (Options{Delta: 2}).delta() != 0.1 {
		t.Error("invalid delta not defaulted")
	}
	if (Options{Delta: 0.3}).delta() != 0.3 {
		t.Error("explicit delta ignored")
	}
}

// The ApproxDiameter accounting bug fix: the probe Preprocess that chooses
// the sample size s is a real distributed phase, so its rounds must be
// charged to InitRounds together with the [HPRW14] preparation's. The test
// reconstructs both phases independently and checks the sum.
func TestApproxProbeRoundsCharged(t *testing.T) {
	g := graph.RandomConnected(80, 0.07, 3)
	const seed = int64(3)

	infoProbe, probeM, err := congest.Preprocess(g)
	if err != nil {
		t.Fatal(err)
	}
	if probeM.Rounds <= 0 {
		t.Fatal("probe preprocessing reported no rounds")
	}
	// Replicate ApproxDiameter's default sample-size rule.
	n := g.N()
	s := int(math.Ceil(math.Pow(float64(n), 2.0/3.0) / math.Pow(math.Max(1, float64(infoProbe.D)), 1.0/3.0)))
	if s < 1 {
		s = 1
	}
	if s > n {
		s = n
	}
	_, prepM, err := congest.PrepareApprox(g, s, seed)
	if err != nil {
		t.Fatal(err)
	}

	res, err := ApproxDiameter(g, Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if want := probeM.Rounds + prepM.Rounds; res.InitRounds != want {
		t.Errorf("InitRounds = %d, want probe %d + preparation %d = %d",
			res.InitRounds, probeM.Rounds, prepM.Rounds, want)
	}
}
