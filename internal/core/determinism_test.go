package core

import (
	"testing"

	"qcongest/internal/congest"
	"qcongest/internal/graph"
)

// The quantum algorithms drive many CONGEST executions per run (one per
// optimization step); their outputs and full cost accounting must be
// independent of the engine's worker count. Together with the engine-level
// tests in internal/congest this closes the determinism argument end to
// end: identical Evaluation values and rounds imply identical amplitude-
// amplification trajectories and therefore identical Results.
func TestQuantumExactDeterministicAcrossWorkers(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := graph.RandomConnected(96, 0.06, seed)
		want, err := ExactDiameter(g, Options{Seed: seed, Engine: []congest.Option{congest.WithWorkers(1)}})
		if err != nil {
			t.Fatal(err)
		}
		truth, err := g.Diameter()
		if err != nil {
			t.Fatal(err)
		}
		// Overshoot is impossible (every Evaluation returns a real
		// eccentricity <= D); undershoot is a permitted delta-probability
		// failure, so exactness is deliberately not asserted per seed.
		if want.Diameter > truth {
			t.Fatalf("seed %d: diameter %d overshoots truth %d", seed, want.Diameter, truth)
		}
		for _, k := range []int{2, 8} {
			got, err := ExactDiameter(g, Options{Seed: seed, Engine: []congest.Option{congest.WithWorkers(k)}})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("seed %d workers %d: Result %+v, want %+v", seed, k, got, want)
			}
		}
	}
}

func TestQuantumApproxDeterministicAcrossWorkers(t *testing.T) {
	g := graph.RandomConnected(80, 0.07, 2)
	want, err := ApproxDiameter(g, Options{Seed: 2, Engine: []congest.Option{congest.WithWorkers(1)}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ApproxDiameter(g, Options{Seed: 2, Engine: []congest.Option{congest.WithWorkers(8)}})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("workers 8: Result %+v, want %+v", got, want)
	}
}

// The engine scheduler (dense vs frontier, congest.WithScheduler) is a
// pure execution-strategy knob: a full quantum optimization — hundreds of
// session-reused Evaluations, every framework counter — must produce the
// identical Result under either scheduler, alone or combined with worker
// sharding and parallel evaluation contexts.
func TestQuantumDeterministicAcrossSchedulers(t *testing.T) {
	g := graph.RandomConnected(96, 0.06, 4)
	want, err := ExactDiameter(g, Options{Seed: 4, Engine: []congest.Option{
		congest.WithScheduler(congest.SchedulerDense), congest.WithWorkers(1)}})
	if err != nil {
		t.Fatal(err)
	}
	configs := [][]congest.Option{
		{congest.WithScheduler(congest.SchedulerFrontier), congest.WithWorkers(1)},
		{congest.WithScheduler(congest.SchedulerFrontier), congest.WithWorkers(8)},
		{congest.WithScheduler(congest.SchedulerDense), congest.WithWorkers(8)},
	}
	for i, engine := range configs {
		got, err := ExactDiameter(g, Options{Seed: 4, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("config %d: Result %+v, want %+v", i, got, want)
		}
	}
	got, err := ExactDiameter(g, Options{Seed: 4, Parallel: 3, Engine: configs[0]})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("frontier + parallel 3: Result %+v, want %+v", got, want)
	}

	wantApprox, err := ApproxDiameter(g, Options{Seed: 4, Engine: []congest.Option{
		congest.WithScheduler(congest.SchedulerDense)}})
	if err != nil {
		t.Fatal(err)
	}
	gotApprox, err := ApproxDiameter(g, Options{Seed: 4, Engine: []congest.Option{
		congest.WithScheduler(congest.SchedulerFrontier)}})
	if err != nil {
		t.Fatal(err)
	}
	if gotApprox != wantApprox {
		t.Errorf("approx under frontier: Result %+v, want %+v", gotApprox, wantApprox)
	}
}

// Options.Parallel clones the evaluation sessions into a pool and batches
// the domain; because evaluations are deterministic and input-independent,
// the Result — value, rounds, every counter — must be identical to the
// sequential execution for any parallelism level, alone or combined with
// engine workers.
func TestQuantumParallelEvaluationDeterministic(t *testing.T) {
	g := graph.RandomConnected(96, 0.06, 6)
	want, err := ExactDiameter(g, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4} {
		got, err := ExactDiameter(g, Options{Seed: 6, Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("parallel %d: Result %+v, want %+v", par, got, want)
		}
	}
	got, err := ExactDiameter(g, Options{Seed: 6, Parallel: 3, Engine: []congest.Option{congest.WithWorkers(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("parallel 3 + workers 2: Result %+v, want %+v", got, want)
	}

	wantSimple, err := ExactDiameterSimple(g, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	gotSimple, err := ExactDiameterSimple(g, Options{Seed: 6, Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if gotSimple != wantSimple {
		t.Errorf("simple, parallel 3: Result %+v, want %+v", gotSimple, wantSimple)
	}

	wantApprox, err := ApproxDiameter(g, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	gotApprox, err := ApproxDiameter(g, Options{Seed: 6, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if gotApprox != wantApprox {
		t.Errorf("approx, parallel 4: Result %+v, want %+v", gotApprox, wantApprox)
	}
}

// Every CONGEST execution a quantum algorithm drives — preprocessing,
// walks, waves, convergecasts, the [HPRW14] preparation — runs clean under
// strict wire accounting: the documented size formula of every message the
// Evaluations emit matches its encoded length. Strict checking is also
// engine-invariant: it must not perturb the results.
func TestQuantumAlgorithmsUnderStrictAccounting(t *testing.T) {
	g := graph.RandomConnected(64, 0.08, 5)
	want, err := ExactDiameter(g, Options{Seed: 5, Engine: []congest.Option{congest.WithWorkers(1)}})
	if err != nil {
		t.Fatal(err)
	}
	strict := []congest.Option{congest.WithStrictAccounting(), congest.WithWorkers(3)}
	got, err := ExactDiameter(g, Options{Seed: 5, Engine: strict})
	if err != nil {
		t.Fatalf("exact diameter under strict accounting: %v", err)
	}
	if got != want {
		t.Errorf("strict accounting changed the result: %+v, want %+v", got, want)
	}
	if _, err := ApproxDiameter(g, Options{Seed: 5, Engine: strict}); err != nil {
		t.Fatalf("approx diameter under strict accounting: %v", err)
	}
	if _, err := ExactDiameterSimple(g, Options{Seed: 5, Engine: strict}); err != nil {
		t.Fatalf("simple exact diameter under strict accounting: %v", err)
	}
}
