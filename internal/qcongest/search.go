package qcongest

// Distributed quantum search and counting — the Theorem 6 companions of the
// Optimizer: the same Theorem 7 cost model (a leader runs amplitude
// amplification whose Setup and Evaluation black boxes are distributed
// procedures), with the Dürr–Høyer threshold climb replaced by one BBHT
// search for a marked element, or by the search-and-exclude loop that
// enumerates all of them. The marked set is defined through a predicate on
// the distributed Evaluation's value, so callers express "find a vertex
// whose local predicate holds" without any new distributed machinery.

import (
	"errors"
	"math"
	"math/rand"

	"qcongest/internal/amplify"
	"qcongest/internal/qsim"
)

// Searcher configures one distributed quantum search (Theorem 6 run under
// the Theorem 7 cost accounting). The fields mirror Optimizer; Marked
// classifies the Evaluation's value.
type Searcher struct {
	// Domain is the set X: the basis labels of the internal register.
	Domain []int
	// Evaluate is the distributed Evaluation procedure.
	Evaluate EvalProc
	// Marked classifies an Evaluation value as marked.
	Marked func(value int) bool
	// InitRounds is T0, the measured cost of Initialization.
	InitRounds int
	// SetupRounds is the cost of one Setup application.
	SetupRounds int
	// EvalOverhead converts one classical execution into one reversible
	// application (default 2x classical + 1, like Optimizer).
	EvalOverhead func(classicalRounds int) int
	// Batch, when non-nil, memoizes the whole domain up front (see
	// Optimizer.Batch; the trajectory and accounting are unchanged).
	Batch func(domain []int) (values, rounds []int, err error)
	// Delta is the allowed failure probability.
	Delta float64
	// Rng drives measurements; required.
	Rng *rand.Rand
}

// SearchOutcome reports a search or count together with its costs.
type SearchOutcome struct {
	// Found reports whether a marked element was measured. A false Found is
	// the Theorem 6 guarantee "M is empty with probability >= 1-delta".
	Found bool
	// X and Value are the found element and its Evaluation value (valid when
	// Found).
	X     int
	Value int
	// All lists every marked element in discovery order and Count its size
	// (RunCount only; Run leaves them empty).
	All   []int
	Count int
	// Rounds is the total distributed round complexity per Theorem 7:
	// T0 + SetupCalls*SetupRounds + EvaluationCalls*EvalApplicationRounds.
	Rounds int
	// EvalApplicationRounds is the cost of one reversible Evaluation.
	EvalApplicationRounds int
	// ClassicalEvalRounds is the measured cost of one classical execution.
	ClassicalEvalRounds int
	// Counters are the black-box application counts.
	Counters amplify.Counters
	// LeaderQubits and NodeQubits follow the Theorem 7 accounting: O(log|X|)
	// working qubits per node; the leader additionally holds one current
	// candidate label (the found set of RunCount is classical memory — each
	// element is measured before it is recorded).
	LeaderQubits int
	NodeQubits   int
}

func (s *Searcher) validate() error {
	if len(s.Domain) == 0 {
		return qsim.ErrEmptyDomain
	}
	if s.Rng == nil {
		return errors.New("qcongest: nil Rng")
	}
	if s.Evaluate == nil {
		return errors.New("qcongest: nil Evaluate")
	}
	if s.Marked == nil {
		return errors.New("qcongest: nil Marked")
	}
	if s.Delta <= 0 || s.Delta >= 1 {
		return errors.New("qcongest: Delta out of (0,1)")
	}
	return nil
}

// budget is the Theorem 6 iteration budget calibrated to the smallest
// nonempty marked set (one element, mass 1/|X|), boosted by ceil(ln(1/delta))
// — the same shape FindMax uses per phase.
func (s *Searcher) budget() int {
	boost := math.Ceil(math.Log(1 / s.Delta))
	if boost < 1 {
		boost = 1
	}
	return int(boost*math.Ceil(3*math.Sqrt(float64(len(s.Domain))))) + 1
}

func (s *Searcher) prepare() (*evalMemo, *qsim.Sparse, error) {
	if err := s.validate(); err != nil {
		return nil, nil, err
	}
	memo := newEvalMemo(s.Evaluate, len(s.Domain))
	if s.Batch != nil {
		if err := memo.fill(s.Domain, s.Batch); err != nil {
			return nil, nil, err
		}
	}
	phi, err := qsim.NewUniform(s.Domain)
	if err != nil {
		return nil, nil, err
	}
	return memo, phi, nil
}

func (s *Searcher) finish(res *SearchOutcome, memo *evalMemo) error {
	if memo.err != nil {
		return memo.err
	}
	evalApp := applyOverhead(s.EvalOverhead, memo.classicalRounds)
	res.ClassicalEvalRounds = memo.classicalRounds
	res.EvalApplicationRounds = evalApp
	res.Rounds = s.InitRounds +
		res.Counters.SetupCalls*s.SetupRounds +
		res.Counters.EvaluationCalls*evalApp
	logX := domainLabelBits(len(s.Domain))
	res.NodeQubits = 5 * logX
	res.LeaderQubits = res.NodeQubits + logX
	return nil
}

// Run performs one BBHT search for a marked element. A not-found outcome is
// reported through Found=false, not an error: the costs of the fruitless
// amplification are real rounds and the caller gets them.
func (s *Searcher) Run() (SearchOutcome, error) {
	var res SearchOutcome
	memo, phi, err := s.prepare()
	if err != nil {
		return res, err
	}
	marked := func(x int) bool { return s.Marked(memo.f(x)) }
	x, c, err := amplify.Search(phi, marked, s.budget(), s.Rng)
	res.Counters = c
	switch {
	case err == nil:
		res.Found = true
		res.X = x
		res.Value = memo.f(x)
	case errors.Is(err, amplify.ErrNotFound):
		// Found stays false.
	default:
		return res, err
	}
	if err := s.finish(&res, memo); err != nil {
		return res, err
	}
	return res, nil
}

// RunCount enumerates every marked element by the search-and-exclude loop
// (amplify.FindAll) and reports the exact count, with every search pass
// charged per Theorem 7.
func (s *Searcher) RunCount() (SearchOutcome, error) {
	var res SearchOutcome
	memo, phi, err := s.prepare()
	if err != nil {
		return res, err
	}
	marked := func(x int) bool { return s.Marked(memo.f(x)) }
	all, c, err := amplify.FindAll(phi, marked, s.Delta, s.Rng)
	res.Counters = c
	if err != nil {
		return res, err
	}
	res.All = all
	res.Count = len(all)
	if res.Count > 0 {
		res.Found = true
		res.X = all[0]
		res.Value = memo.f(all[0])
	}
	if err := s.finish(&res, memo); err != nil {
		return res, err
	}
	return res, nil
}
