// Package qcongest implements the distributed quantum optimization
// framework of Section 2.4 of the paper (Theorem 7): a leader node runs
// amplitude amplification whose Setup and Evaluation black boxes are
// distributed procedures executed by the whole network in superposition.
//
// # Simulation model
//
// The network-wide quantum state always has the form
// sum_x alpha_x |x>_I |data(x)> |init> (see package qsim), so the simulator
// tracks amplitudes over the optimization domain X and reconstructs the
// distributed registers by running the (classical, reversible) procedures
// per basis label. Costs are charged per Theorem 7:
//
//   - one amplitude-amplification iteration applies Evaluation twice (mark,
//     unmark) and Setup twice (the reflection about the initial state is
//     Setup^{-1} · flip|0> · Setup);
//   - each application of Setup costs its measured distributed round count,
//     and likewise for Evaluation;
//   - one classical Evaluation verifies each measurement outcome.
//
// The engine asserts that the Evaluation procedure's measured round count is
// identical for every input in the domain: that input-independence is what
// makes "running it in superposition" cost a single execution.
//
// Evaluation closures typically run whole CONGEST executions on the
// parallel round engine of internal/congest. Because that engine is
// bit-for-bit deterministic for every worker count (see DESIGN.md,
// "Execution engine"), the per-input values and round counts the Optimizer
// sees — and hence the optimization's outcome and cost accounting — do not
// depend on the engine configuration the caller threads through
// core.Options.Engine.
package qcongest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"qcongest/internal/amplify"
	"qcongest/internal/qsim"
)

// EvalProc runs the distributed Evaluation procedure for one input and
// reports the value computed at the leader together with the measured round
// count of one classical (forward) execution.
type EvalProc func(x int) (value, rounds int, err error)

// Optimizer configures one distributed quantum optimization (Theorem 7).
type Optimizer struct {
	// Domain is the set X: the basis labels of the internal register.
	Domain []int
	// Evaluate is the distributed Evaluation procedure.
	Evaluate EvalProc
	// InitRounds is T0, the measured cost of Initialization.
	InitRounds int
	// SetupRounds is the cost of one Setup application (broadcast of the
	// leader's register along the BFS tree: its height in rounds).
	SetupRounds int
	// EvalOverhead converts one classical execution into one reversible
	// application: compute, copy out, uncompute = 2x classical + 1. A zero
	// value selects that default.
	EvalOverhead func(classicalRounds int) int
	// Batch, when non-nil, computes the value and measured round count of
	// every domain input up front (values[i], rounds[i] for Domain[i]) and
	// the amplification then runs entirely against the memoized table.
	// Because evaluations are deterministic and their round counts
	// input-independent, the optimization trajectory — and hence the Result
	// and all cost accounting — is identical to calling Evaluate lazily;
	// the point of Batch is that its independent executions may run
	// concurrently (core backs it with a congest.Pool of cloned sessions).
	// The black-box application counts of Theorem 7 are charged by the
	// amplification schedule either way, so Batch does not change Rounds.
	Batch func(domain []int) (values, rounds []int, err error)
	// Eps lower-bounds the probability mass of maximizers under the
	// uniform initial state (the paper's P_opt bound, e.g. d/2n).
	Eps float64
	// Delta is the allowed failure probability.
	Delta float64
	// Rng drives measurements; required.
	Rng *rand.Rand
}

// Result reports the optimization outcome and its costs.
type Result struct {
	Argmax int
	Value  int
	// Rounds is the total distributed round complexity per Theorem 7:
	// T0 + SetupCalls*SetupRounds + EvaluationCalls*EvalApplicationRounds.
	Rounds int
	// EvalApplicationRounds is the cost of one reversible Evaluation.
	EvalApplicationRounds int
	// ClassicalEvalRounds is the measured cost of one classical execution.
	ClassicalEvalRounds int
	// Counters are the black-box application counts.
	Counters amplify.Counters
	// LeaderQubits and NodeQubits report the quantum memory accounting of
	// Theorem 7: every node holds O(log n) qubits of working registers; the
	// leader additionally records one domain label per amplification phase,
	// O(log|X| * log(1/eps)) qubits.
	LeaderQubits int
	NodeQubits   int
}

// ErrInconsistentRounds is returned when the Evaluation procedure's round
// count depends on its input, which would invalidate superposed execution.
var ErrInconsistentRounds = errors.New("qcongest: evaluation round count depends on input")

// Run executes the optimization and returns the maximizer with measured
// costs.
func (o *Optimizer) Run() (Result, error) {
	var res Result
	if len(o.Domain) == 0 {
		return res, qsim.ErrEmptyDomain
	}
	if o.Rng == nil {
		return res, errors.New("qcongest: nil Rng")
	}
	if o.Evaluate == nil {
		return res, errors.New("qcongest: nil Evaluate")
	}

	// Memoize the distributed evaluation and enforce round uniformity.
	memo := newEvalMemo(o.Evaluate, len(o.Domain))
	if o.Batch != nil {
		if err := memo.fill(o.Domain, o.Batch); err != nil {
			return res, err
		}
	}

	phi, err := qsim.NewUniform(o.Domain)
	if err != nil {
		return res, err
	}
	mr, err := amplify.FindMax(phi, memo.f, o.Eps, o.Delta, o.Rng)
	if err != nil {
		return res, err
	}
	if memo.err != nil {
		return res, memo.err
	}

	evalApp := applyOverhead(o.EvalOverhead, memo.classicalRounds)

	res.Argmax = mr.Argmax
	res.Value = mr.Value
	res.Counters = mr.Counters
	res.ClassicalEvalRounds = memo.classicalRounds
	res.EvalApplicationRounds = evalApp
	res.Rounds = o.InitRounds +
		mr.Counters.SetupCalls*o.SetupRounds +
		mr.Counters.EvaluationCalls*evalApp

	// Memory accounting (Theorem 7): O(log|X|) working qubits per node,
	// plus an O(log|X|)-qubit record per phase at the leader.
	logX := domainLabelBits(len(o.Domain))
	logEps := int(math.Ceil(math.Log2(1/o.Eps))) + 1
	res.NodeQubits = 5 * logX
	res.LeaderQubits = res.NodeQubits + logX*logEps
	return res, nil
}

// domainLabelBits is the width of one internal-register label:
// ceil(log2(|X|+1)), at least 1.
func domainLabelBits(domainSize int) int {
	logX := int(math.Ceil(math.Log2(float64(domainSize + 1))))
	if logX < 1 {
		logX = 1
	}
	return logX
}

// applyOverhead converts one classical execution into one reversible
// application: compute, copy out, uncompute = 2x classical + 1 by default.
func applyOverhead(overhead func(int) int, classicalRounds int) int {
	if overhead == nil {
		return 2*classicalRounds + 1
	}
	return overhead(classicalRounds)
}

// evalMemo memoizes a distributed Evaluation and enforces the Theorem 7
// round-uniformity contract: every input must cost the same measured round
// count, else superposed execution would be ill-defined. It is shared by the
// Optimizer and the Searcher, whose amplification layers consume plain
// func(int) int value oracles.
type evalMemo struct {
	values          map[int]int
	classicalRounds int
	err             error
	evaluate        EvalProc
}

func newEvalMemo(evaluate EvalProc, size int) *evalMemo {
	return &evalMemo{values: make(map[int]int, size), classicalRounds: -1, evaluate: evaluate}
}

// f evaluates one input through the memo table, recording the first error
// and any round-uniformity violation.
func (m *evalMemo) f(x int) int {
	if v, ok := m.values[x]; ok {
		return v
	}
	v, r, err := m.evaluate(x)
	if err != nil && m.err == nil {
		m.err = fmt.Errorf("evaluate %d: %w", x, err)
		return 0
	}
	if m.classicalRounds == -1 {
		m.classicalRounds = r
	} else if r != m.classicalRounds && m.err == nil {
		m.err = fmt.Errorf("%w: %d rounds for input %d, %d before",
			ErrInconsistentRounds, r, x, m.classicalRounds)
	}
	m.values[x] = v
	return v
}

// fill runs the batched evaluation for the whole domain up front (the
// amplification then runs entirely against the memo table), enforcing the
// same round-uniformity contract.
func (m *evalMemo) fill(domain []int, batch func(domain []int) (values, rounds []int, err error)) error {
	vals, rounds, err := batch(domain)
	if err != nil {
		return err
	}
	if len(vals) != len(domain) || len(rounds) != len(domain) {
		return fmt.Errorf("qcongest: Batch returned %d values and %d round counts for %d inputs",
			len(vals), len(rounds), len(domain))
	}
	for i, x := range domain {
		m.values[x] = vals[i]
		if m.classicalRounds == -1 {
			m.classicalRounds = rounds[i]
		} else if rounds[i] != m.classicalRounds {
			return fmt.Errorf("%w: %d rounds for input %d, %d before",
				ErrInconsistentRounds, rounds[i], x, m.classicalRounds)
		}
	}
	return nil
}
