package qcongest

import (
	"errors"
	"math/rand"
	"testing"

	"qcongest/internal/qsim"
)

func domain(n int) []int {
	d := make([]int, n)
	for i := range d {
		d[i] = i
	}
	return d
}

func TestOptimizerFindsMax(t *testing.T) {
	opt := &Optimizer{
		Domain: domain(50),
		Evaluate: func(x int) (int, int, error) {
			return 100 - (x-17)*(x-17), 12, nil
		},
		InitRounds:  5,
		SetupRounds: 3,
		Eps:         1.0 / 50,
		Delta:       0.1,
		Rng:         rand.New(rand.NewSource(2)),
	}
	hits := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		res, err := opt.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Argmax == 17 {
			hits++
		}
		// Theorem 7 accounting identity.
		want := 5 + res.Counters.SetupCalls*3 + res.Counters.EvaluationCalls*res.EvalApplicationRounds
		if res.Rounds != want {
			t.Fatalf("rounds = %d, want %d", res.Rounds, want)
		}
		if res.EvalApplicationRounds != 2*12+1 {
			t.Fatalf("eval application rounds = %d, want 25", res.EvalApplicationRounds)
		}
	}
	if hits < trials*8/10 {
		t.Errorf("argmax found %d/%d times", hits, trials)
	}
}

func TestOptimizerDetectsInconsistentRounds(t *testing.T) {
	opt := &Optimizer{
		Domain: domain(10),
		Evaluate: func(x int) (int, int, error) {
			return x, 5 + x%2, nil // round count depends on input
		},
		Eps:   0.1,
		Delta: 0.1,
		Rng:   rand.New(rand.NewSource(4)),
	}
	_, err := opt.Run()
	if !errors.Is(err, ErrInconsistentRounds) {
		t.Errorf("err = %v, want ErrInconsistentRounds", err)
	}
}

func TestOptimizerPropagatesEvalError(t *testing.T) {
	boom := errors.New("boom")
	opt := &Optimizer{
		Domain:   domain(10),
		Evaluate: func(x int) (int, int, error) { return 0, 0, boom },
		Eps:      0.1,
		Delta:    0.1,
		Rng:      rand.New(rand.NewSource(4)),
	}
	if _, err := opt.Run(); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestOptimizerValidation(t *testing.T) {
	if _, err := (&Optimizer{Rng: rand.New(rand.NewSource(1))}).Run(); !errors.Is(err, qsim.ErrEmptyDomain) {
		t.Errorf("empty domain: %v", err)
	}
	opt := &Optimizer{Domain: domain(4), Evaluate: func(int) (int, int, error) { return 0, 1, nil }, Eps: 0.5, Delta: 0.1}
	if _, err := opt.Run(); err == nil {
		t.Error("nil rng accepted")
	}
	opt.Rng = rand.New(rand.NewSource(1))
	opt.Evaluate = nil
	if _, err := opt.Run(); err == nil {
		t.Error("nil evaluate accepted")
	}
}

func TestMemoryAccounting(t *testing.T) {
	opt := &Optimizer{
		Domain:      domain(1024),
		Evaluate:    func(x int) (int, int, error) { return x % 7, 4, nil },
		Eps:         1.0 / 64,
		Delta:       0.2,
		SetupRounds: 1,
		Rng:         rand.New(rand.NewSource(6)),
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	// log|X| = 11 bits for 1025 labels; nodes hold 5 registers of that
	// size; the leader adds log|X| * (log(1/eps)+1).
	if res.NodeQubits != 55 {
		t.Errorf("node qubits = %d, want 55", res.NodeQubits)
	}
	if res.LeaderQubits != 55+11*7 {
		t.Errorf("leader qubits = %d, want %d", res.LeaderQubits, 55+11*7)
	}
	if res.LeaderQubits < res.NodeQubits {
		t.Error("leader must hold at least as much as a node")
	}
}

// The uniform-cost charging matches the framework contract: a custom
// overhead function is honored.
func TestCustomOverhead(t *testing.T) {
	opt := &Optimizer{
		Domain:       domain(16),
		Evaluate:     func(x int) (int, int, error) { return x, 10, nil },
		EvalOverhead: func(c int) int { return c },
		Eps:          1.0 / 16,
		Delta:        0.2,
		Rng:          rand.New(rand.NewSource(8)),
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.EvalApplicationRounds != 10 {
		t.Errorf("overhead not honored: %d", res.EvalApplicationRounds)
	}
}

// Batch precomputes the memoized value table; since evaluation values and
// round counts are input-independent-deterministic, the Result must be
// identical to lazy sequential evaluation for the same Rng seed.
func TestOptimizerBatchMatchesSequential(t *testing.T) {
	eval := func(x int) (int, int, error) {
		return (x * 7) % 53, 9, nil
	}
	newOpt := func(seed int64) *Optimizer {
		return &Optimizer{
			Domain:      domain(64),
			Evaluate:    eval,
			InitRounds:  4,
			SetupRounds: 2,
			Eps:         1.0 / 64,
			Delta:       0.1,
			Rng:         rand.New(rand.NewSource(seed)),
		}
	}
	for seed := int64(1); seed <= 5; seed++ {
		want, err := newOpt(seed).Run()
		if err != nil {
			t.Fatal(err)
		}
		batched := newOpt(seed)
		calls := 0
		batched.Batch = func(dom []int) ([]int, []int, error) {
			calls++
			vals := make([]int, len(dom))
			rounds := make([]int, len(dom))
			for i, x := range dom {
				vals[i], rounds[i], _ = eval(x)
			}
			return vals, rounds, nil
		}
		got, err := batched.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("seed %d: batched Result %+v, want %+v", seed, got, want)
		}
		if calls != 1 {
			t.Errorf("seed %d: Batch called %d times", seed, calls)
		}
	}
}

// A Batch whose round counts differ across inputs must fail with
// ErrInconsistentRounds, like lazy evaluation would.
func TestOptimizerBatchInconsistentRounds(t *testing.T) {
	opt := &Optimizer{
		Domain:   domain(8),
		Evaluate: func(x int) (int, int, error) { return x, 5, nil },
		Batch: func(dom []int) ([]int, []int, error) {
			vals := make([]int, len(dom))
			rounds := make([]int, len(dom))
			for i, x := range dom {
				vals[i] = x
				rounds[i] = 5 + i%2
			}
			return vals, rounds, nil
		},
		Eps:   0.5,
		Delta: 0.1,
		Rng:   rand.New(rand.NewSource(1)),
	}
	if _, err := opt.Run(); !errors.Is(err, ErrInconsistentRounds) {
		t.Errorf("error = %v, want ErrInconsistentRounds", err)
	}
}

// A Batch returning the wrong shape is a programming error, reported.
func TestOptimizerBatchShapeError(t *testing.T) {
	opt := &Optimizer{
		Domain:   domain(8),
		Evaluate: func(x int) (int, int, error) { return x, 5, nil },
		Batch: func(dom []int) ([]int, []int, error) {
			return make([]int, 3), make([]int, 3), nil
		},
		Eps:   0.5,
		Delta: 0.1,
		Rng:   rand.New(rand.NewSource(1)),
	}
	if _, err := opt.Run(); err == nil {
		t.Error("short Batch result accepted")
	}
}
