package simulation

import (
	"testing"
	"testing/quick"
)

func xorFn(x, y uint64) uint64 { return x ^ y }

func TestRelayNativeComputes(t *testing.T) {
	for _, d := range []int{1, 2, 3, 7, 12} {
		alg := NewRelayAlgorithm(d, xorFn)
		st, err := alg.RunNative(0xAB, 0xCD)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		out, ok := AliceOutput(st)
		if !ok {
			t.Fatalf("d=%d: Alice did not receive the result", d)
		}
		if out != 0xAB^0xCD {
			t.Errorf("d=%d: output %#x, want %#x", d, out, 0xAB^0xCD)
		}
	}
}

// Theorem 11's core claim, verified rather than assumed: the two-party
// simulation reproduces the native execution exactly — every register of
// the final state matches.
func TestTwoPartyMatchesNative(t *testing.T) {
	for _, d := range []int{1, 2, 5, 9} {
		alg := NewRelayAlgorithm(d, xorFn)
		native, err := alg.RunNative(0x1234, 0x0F0F)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := alg.RunTwoParty(0x1234, 0x0F0F)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		for i := range native.R {
			if sim.State.R[i] != native.R[i] {
				t.Errorf("d=%d: R[%d] = %#x, want %#x", d, i, sim.State.R[i], native.R[i])
			}
		}
		for j := range native.T {
			if sim.State.T[j] != native.T[j] {
				t.Errorf("d=%d: T[%d] = %#x, want %#x", d, j, sim.State.T[j], native.T[j])
			}
		}
		out, ok := AliceOutput(sim.State)
		if !ok || out != 0x1234^0x0F0F {
			t.Errorf("d=%d: simulated output %#x ok=%v", d, out, ok)
		}
	}
}

// Property: equivalence holds for arbitrary inputs.
func TestTwoPartyEquivalenceProperty(t *testing.T) {
	f := func(x, y uint16, dRaw uint8) bool {
		d := int(dRaw)%10 + 1
		alg := NewRelayAlgorithm(d, func(a, b uint64) uint64 { return a + b })
		native, err := alg.RunNative(uint64(x), uint64(y))
		if err != nil {
			return false
		}
		sim, err := alg.RunTwoParty(uint64(x), uint64(y))
		if err != nil {
			return false
		}
		for i := range native.R {
			if sim.State.R[i] != native.R[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Theorem 11 cost accounting: the simulation uses O(r/d) messages, each of
// at most (d+1)*bw + d*s qubits, for O(r(bw+s)) total communication.
func TestMessageScaling(t *testing.T) {
	for _, d := range []int{2, 4, 8, 16} {
		alg := NewRelayAlgorithm(d, xorFn)
		sim, err := alg.RunTwoParty(7, 9)
		if err != nil {
			t.Fatal(err)
		}
		r := alg.Rounds
		maxMessages := 2*(r/d) + 6
		if sim.Metrics.Messages > maxMessages {
			t.Errorf("d=%d r=%d: %d messages, want <= %d", d, r, sim.Metrics.Messages, maxMessages)
		}
		maxPerMsg := (d+1)*alg.Bandwidth + d*alg.Memory
		if sim.Metrics.MaxQubits > maxPerMsg {
			t.Errorf("d=%d: message of %d qubits, want <= %d", d, sim.Metrics.MaxQubits, maxPerMsg)
		}
		maxTotal := (sim.Metrics.Messages + 1) * maxPerMsg
		if sim.Metrics.Qubits > maxTotal {
			t.Errorf("d=%d: total %d qubits, want <= %d", d, sim.Metrics.Qubits, maxTotal)
		}
	}
}

// Message count decreases as d grows for fixed r: the r/d factor at work.
func TestMessagesShrinkWithD(t *testing.T) {
	const rounds = 96
	msgs := func(d int) int {
		alg := NewRelayAlgorithm(d, xorFn)
		alg.Rounds = rounds // fix r across d values
		sim, err := alg.RunTwoParty(3, 5)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Metrics.Messages
	}
	m2, m16 := msgs(2), msgs(16)
	if m16 >= m2 {
		t.Errorf("messages did not shrink: d=2 -> %d, d=16 -> %d", m2, m16)
	}
	if m16 > 2*(rounds/16)+6 {
		t.Errorf("d=16: %d messages", m16)
	}
}

// The communication accounting is the transcript encoding: every shipped
// register is encoded at its declared width and Qubits is exactly the
// transcript length.
func TestTranscriptIsTheAccounting(t *testing.T) {
	for _, d := range []int{1, 3, 8} {
		alg := NewRelayAlgorithm(d, xorFn)
		sim, err := alg.RunTwoParty(0xBEEF, 0xCAFE)
		if err != nil {
			t.Fatal(err)
		}
		if sim.Transcript.Len() != sim.Metrics.Qubits {
			t.Errorf("d=%d: transcript %d bits, Qubits %d", d, sim.Transcript.Len(), sim.Metrics.Qubits)
		}
	}
}

// A register whose value exceeds its declared width cannot be shipped: the
// simulation fails instead of silently undercounting the communication.
func TestRegisterWidthIsVerified(t *testing.T) {
	alg := NewRelayAlgorithm(3, xorFn)
	alg.Bandwidth = 4 // too narrow for the 24-bit relay values
	if _, err := alg.RunTwoParty(0xAB, 0xCD); err == nil {
		t.Error("over-width register accepted")
	}
}

func TestValidate(t *testing.T) {
	alg := NewRelayAlgorithm(3, xorFn)
	bad := *alg
	bad.D = 0
	if err := bad.Validate(); err == nil {
		t.Error("d=0 accepted")
	}
	bad = *alg
	bad.Rounds = 0
	if err := bad.Validate(); err == nil {
		t.Error("rounds=0 accepted")
	}
	bad = *alg
	bad.Step = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil step accepted")
	}
	bad = *alg
	bad.Bandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("bw=0 accepted")
	}
}
