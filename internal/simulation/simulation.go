// Package simulation implements the simulation argument of Section 6.1 of
// the paper (Theorem 11, Figures 6 and 7): any r-round algorithm on the
// path network G_d — nodes A = P_0, P_1..P_d, B = P_{d+1} — in which each
// intermediate node uses at most s qubits of memory can be simulated by a
// two-party protocol with O(r/d) messages and O(r(bw+s)) qubits of
// communication.
//
// # Model (Figure 6)
//
// Each node P_i owns a private register R_i; each edge slot i owns a
// message register T_i that shuttles between P_i and P_{i+1}. At odd
// rounds t every node P_i (i <= d) applies a local operation to (R_i, T_i)
// and sends T_i rightward; at even rounds every P_i (i >= 1) applies an
// operation to (R_i, T_{i-1}) and sends it back leftward. Operations are
// arbitrary deterministic register transformations supplied by the caller
// (in the quantum algorithm they are unitaries; determinism is all the
// simulation needs).
//
// # Two-party simulation (Figure 7)
//
// Alice owns R_0 (and the input x), Bob owns R_{d+1} (and y); intermediate
// registers start on Bob's side. Players alternately execute every
// operation whose input registers they hold and whose dependencies are
// satisfied, then ship all intermediate registers to the other player as
// one message of at most (d+1)*bw + d*s qubits. Because information needs
// d hops to cross the path, each handoff unlocks Theta(d) further rounds,
// so the whole run needs O(r/d) messages. The package verifies — rather
// than assumes — that the simulated execution reproduces the native run's
// final registers exactly.
package simulation

import (
	"errors"
	"fmt"

	"qcongest/internal/bitstring"
	"qcongest/internal/comm"
)

// StepFunc is the local operation of node i at round t: it transforms the
// node's private register and the message register it holds this round.
type StepFunc func(i, t int, private, msg uint64) (newPrivate, newMsg uint64)

// Algorithm describes an r-round computation on G_d.
type Algorithm struct {
	D      int // intermediate nodes; the path has d+2 nodes total
	Rounds int // r
	Step   StepFunc
	// Bandwidth and Memory are the declared register sizes in qubits
	// (bw for message registers, s for intermediate private registers),
	// used for communication accounting.
	Bandwidth int
	Memory    int
}

// Validate checks the algorithm parameters.
func (a *Algorithm) Validate() error {
	switch {
	case a.D < 1:
		return fmt.Errorf("simulation: d = %d, want >= 1", a.D)
	case a.Rounds < 1:
		return fmt.Errorf("simulation: rounds = %d, want >= 1", a.Rounds)
	case a.Step == nil:
		return errors.New("simulation: nil step function")
	case a.Bandwidth < 1 || a.Memory < 1:
		return errors.New("simulation: bandwidth and memory must be positive")
	}
	return nil
}

// State is a full register assignment of the network.
type State struct {
	R []uint64 // d+2 private registers
	T []uint64 // d+1 message registers
}

// ops returns, for round t, the list of (node, tRegister) pairs that act.
func (a *Algorithm) ops(t int) [][2]int {
	var out [][2]int
	if t%2 == 1 {
		for i := 0; i <= a.D; i++ {
			out = append(out, [2]int{i, i})
		}
		return out
	}
	for i := 1; i <= a.D+1; i++ {
		out = append(out, [2]int{i, i - 1})
	}
	return out
}

// RunNative executes the algorithm round by round (Figure 6) and returns
// the final state.
func (a *Algorithm) RunNative(x, y uint64) (State, error) {
	if err := a.Validate(); err != nil {
		return State{}, err
	}
	st := State{R: make([]uint64, a.D+2), T: make([]uint64, a.D+1)}
	st.R[0], st.R[a.D+1] = x, y
	for t := 1; t <= a.Rounds; t++ {
		for _, op := range a.ops(t) {
			i, j := op[0], op[1]
			st.R[i], st.T[j] = a.Step(i, t, st.R[i], st.T[j])
		}
	}
	return st, nil
}

// SimulationResult reports a two-party simulation run.
type SimulationResult struct {
	State   State
	Metrics comm.Metrics
	// Transcript is the concatenation of every register shipped across a
	// handoff, encoded in exactly its declared width (Bandwidth qubits per
	// message register, Memory per private register; one bit for a pure
	// control message). Metrics.Qubits == Transcript.Len(): the accounting
	// is the encoding, and a register whose value does not fit its
	// declared width fails the run instead of being undercounted.
	Transcript *bitstring.Bits
	Handoffs   int // number of register handoffs (== messages)
}

// players
const (
	alice = 0
	bob   = 1
)

// RunTwoParty simulates the algorithm with Alice and Bob per Figure 7 and
// verifies on the fly that every operation's dependencies are satisfied
// when it executes. The returned state must equal RunNative's (tested, not
// assumed).
func (a *Algorithm) RunTwoParty(x, y uint64) (SimulationResult, error) {
	res := SimulationResult{Transcript: bitstring.New(0)}
	if err := a.Validate(); err != nil {
		return res, err
	}
	// appendReg encodes one shipped register into the transcript at its
	// declared width; the width is verified against the value, never
	// trusted.
	appendReg := func(kind string, idx int, v uint64, width int) error {
		if v>>uint(width) != 0 {
			return fmt.Errorf("simulation: register %s_%d value %#x exceeds declared %d qubits",
				kind, idx, v, width)
		}
		for i := 0; i < width; i++ {
			res.Transcript.AppendBit(v&(1<<uint(i)) != 0)
		}
		return nil
	}
	st := State{R: make([]uint64, a.D+2), T: make([]uint64, a.D+1)}
	st.R[0], st.R[a.D+1] = x, y

	// Register ownership: Alice has R_0; Bob has everything else.
	ownR := make([]int, a.D+2)
	ownT := make([]int, a.D+1)
	for i := range ownR {
		ownR[i] = bob
	}
	for j := range ownT {
		ownT[j] = bob
	}
	ownR[0] = alice

	// Dependency tracking: lastR[i] = round of node i's latest executed
	// op; lastT[j] = round T_j was last written. An op (i, t) needs
	// lastR[i] == prevOp(i, t) and lastT[j] == t-1 (0 when t == 1).
	lastR := make([]int, a.D+2)
	lastT := make([]int, a.D+1)
	total := 0
	for t := 1; t <= a.Rounds; t++ {
		total += len(a.ops(t))
	}
	done := 0

	prevOp := func(i, t int) int {
		// Endpoints act every other round; middle nodes act every round.
		if i == 0 || i == a.D+1 {
			if t >= 2 {
				return t - 2
			}
			return 0
		}
		if t >= 1 {
			return t - 1
		}
		return 0
	}

	executable := func(player, i, j, t int) bool {
		if ownR[i] != player || ownT[j] != player {
			return false
		}
		if lastR[i] != prevOp(i, t) {
			return false
		}
		want := t - 1
		if t == 1 {
			want = 0
		}
		return lastT[j] == want
	}

	executed := make(map[[2]int]bool, total) // {t, i} -> done

	cur := bob // Bob simulates the opening cone (Figure 7)
	stuckPhases := 0
	for done < total {
		progress := false
		for t := 1; t <= a.Rounds; t++ {
			for _, op := range a.ops(t) {
				i, j := op[0], op[1]
				key := [2]int{t, i}
				if executed[key] || !executable(cur, i, j, t) {
					continue
				}
				st.R[i], st.T[j] = a.Step(i, t, st.R[i], st.T[j])
				lastR[i], lastT[j] = t, t
				executed[key] = true
				done++
				progress = true
			}
		}
		if done >= total {
			break
		}
		if !progress {
			stuckPhases++
			if stuckPhases > 2 {
				return res, errors.New("simulation: deadlock — dependency schedule broken")
			}
		} else {
			stuckPhases = 0
		}
		// Handoff: ship every intermediate register the current player
		// owns (all T_j plus R_1..R_d) to the other player, encoding each
		// into the transcript; the message cost is the bits encoded.
		before := res.Transcript.Len()
		for j := range ownT {
			if ownT[j] == cur {
				ownT[j] = 1 - cur
				if err := appendReg("T", j, st.T[j], a.Bandwidth); err != nil {
					return res, err
				}
			}
		}
		for i := 1; i <= a.D; i++ {
			if ownR[i] == cur {
				ownR[i] = 1 - cur
				if err := appendReg("R", i, st.R[i], a.Memory); err != nil {
					return res, err
				}
			}
		}
		qubits := res.Transcript.Len() - before
		if qubits == 0 {
			res.Transcript.AppendBit(false) // pure control message
			qubits = 1
		}
		res.Metrics.Messages++
		res.Metrics.Qubits += qubits
		if qubits > res.Metrics.MaxQubits {
			res.Metrics.MaxQubits = qubits
		}
		res.Handoffs++
		cur = 1 - cur
	}
	res.State = st
	return res, nil
}
