package simulation

// A concrete algorithm on G_d used to exercise the Theorem 11 simulation:
// Alice's input x travels rightward through the path (one hop per two
// rounds), B computes f(x, y), and the result travels back leftward, so
// after 4d+6 rounds Alice's private register holds the result. This is the
// generic shape of any two-input computation over G_d — in particular the
// DISJ computations behind Theorem 3.

const (
	relayValueMask = (1 << 24) - 1
	relayResultBit = 1 << 24 // marks a leftward (result) message
	relayDoneBit   = 1 << 25 // marks that a node captured the result
)

// NewRelayAlgorithm builds the relay computation on G_d for a binary
// function f over 24-bit values. Alice's output ends in R_0's high bits.
func NewRelayAlgorithm(d int, f func(x, y uint64) uint64) *Algorithm {
	step := func(i, t int, priv, msg uint64) (uint64, uint64) {
		last := d + 1
		switch {
		case i == 0:
			// Alice acts at odd rounds on T_0. If the result came back,
			// capture it; otherwise (re)send x rightward.
			if msg&relayResultBit != 0 {
				return priv | (msg&relayValueMask)<<32 | relayDoneBit, msg
			}
			return priv, priv & relayValueMask
		case i == last:
			// Bob acts at even rounds on T_d. On the first arrival of a
			// value, compute the result and send it leftward flagged.
			if priv&relayDoneBit == 0 && msg != 0 && msg&relayResultBit == 0 {
				res := f(msg&relayValueMask, priv&relayValueMask) & relayValueMask
				return priv | relayDoneBit, res | relayResultBit
			}
			return priv, msg
		case t%2 == 0:
			// Middle node receiving from the left (T_{i-1}). Pass results
			// leftward if one is stored; otherwise capture the forward
			// value.
			if priv&relayDoneBit != 0 {
				return priv, (priv>>32)&relayValueMask | relayResultBit
			}
			if msg&relayResultBit == 0 && msg != 0 {
				return priv&^relayValueMask | msg&relayValueMask, msg
			}
			return priv, msg
		default:
			// Middle node at odd rounds on T_i (rightward slot). Capture a
			// result coming back from the right; otherwise forward the
			// stored value rightward.
			if msg&relayResultBit != 0 && priv&relayDoneBit == 0 {
				return priv | (msg&relayValueMask)<<32 | relayDoneBit, msg
			}
			return priv, priv & relayValueMask
		}
	}
	return &Algorithm{
		D:         d,
		Rounds:    4*d + 6,
		Step:      step,
		Bandwidth: 26,
		Memory:    58,
	}
}

// AliceOutput extracts Alice's captured result from a final state, and
// whether it was captured at all.
func AliceOutput(st State) (uint64, bool) {
	if st.R[0]&relayDoneBit == 0 {
		return 0, false
	}
	return (st.R[0] >> 32) & relayValueMask, true
}
