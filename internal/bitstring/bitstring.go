// Package bitstring provides packed fixed-length bit vectors used as inputs
// to the two-party disjointness experiments (Section 2.2 of the paper).
package bitstring

import (
	"fmt"
	"math/rand"
	"strings"
)

// Bits is a fixed-length bit vector packed into uint64 words.
type Bits struct {
	n     int
	words []uint64
}

// New returns an all-zero bit vector of length n.
func New(n int) *Bits {
	if n < 0 {
		n = 0
	}
	return &Bits{n: n, words: make([]uint64, (n+63)/64)}
}

// FromString parses a string of '0' and '1' runes.
func FromString(s string) (*Bits, error) {
	b := New(len(s))
	for i, r := range s {
		switch r {
		case '0':
		case '1':
			b.Set(i, true)
		default:
			return nil, fmt.Errorf("bitstring: invalid rune %q at %d", r, i)
		}
	}
	return b, nil
}

// Random returns a bit vector where each bit is 1 independently with
// probability p, drawn from rng.
func Random(n int, p float64, rng *rand.Rand) *Bits {
	b := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			b.Set(i, true)
		}
	}
	return b
}

// Len returns the number of bits.
func (b *Bits) Len() int { return b.n }

// Get returns bit i.
func (b *Bits) Get(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Set assigns bit i.
func (b *Bits) Set(i int, v bool) {
	if i < 0 || i >= b.n {
		return
	}
	if v {
		b.words[i/64] |= 1 << (uint(i) % 64)
	} else {
		b.words[i/64] &^= 1 << (uint(i) % 64)
	}
}

// AppendBit grows the vector by one bit holding v. It makes Bits usable as
// a transcript accumulator (e.g. the Theorem 10 cut-traffic capture).
func (b *Bits) AppendBit(v bool) {
	if b.n%64 == 0 && b.n/64 == len(b.words) {
		b.words = append(b.words, 0)
	}
	if v {
		b.words[b.n/64] |= 1 << (uint(b.n) % 64)
	}
	b.n++
}

// Count returns the number of set bits.
func (b *Bits) Count() int {
	c := 0
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			c++
		}
	}
	return c
}

// Clone returns a deep copy.
func (b *Bits) Clone() *Bits {
	c := New(b.n)
	copy(c.words, b.words)
	return c
}

// String renders the bits as a '0'/'1' string.
func (b *Bits) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Intersects reports whether x and y share a set bit, i.e. DISJ(x, y) == 0
// in the paper's convention. It panics if lengths differ (programmer error).
func Intersects(x, y *Bits) bool {
	if x.n != y.n {
		panic(fmt.Sprintf("bitstring: length mismatch %d vs %d", x.n, y.n))
	}
	for i := range x.words {
		if x.words[i]&y.words[i] != 0 {
			return true
		}
	}
	return false
}

// Disj computes the disjointness function of the paper: DISJ(x, y) = 0 iff
// there is an index i with x_i = y_i = 1, and 1 otherwise.
func Disj(x, y *Bits) int {
	if Intersects(x, y) {
		return 0
	}
	return 1
}

// FirstCommon returns the smallest index with x_i = y_i = 1, or -1.
func FirstCommon(x, y *Bits) int {
	if x.n != y.n {
		panic(fmt.Sprintf("bitstring: length mismatch %d vs %d", x.n, y.n))
	}
	for i := 0; i < x.n; i++ {
		if x.Get(i) && y.Get(i) {
			return i
		}
	}
	return -1
}

// RandomDisjointPair returns (x, y) with DISJ(x, y) = 1: each index is
// assigned to x only, y only, or neither.
func RandomDisjointPair(n int, rng *rand.Rand) (x, y *Bits) {
	x, y = New(n), New(n)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			x.Set(i, true)
		case 1:
			y.Set(i, true)
		}
	}
	return x, y
}

// RandomIntersectingPair returns (x, y) with DISJ(x, y) = 0: a random pair
// plus one forced common index.
func RandomIntersectingPair(n int, rng *rand.Rand) (x, y *Bits) {
	x, y = RandomDisjointPair(n, rng)
	i := rng.Intn(n)
	x.Set(i, true)
	y.Set(i, true)
	return x, y
}
