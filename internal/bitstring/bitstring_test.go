package bitstring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGet(t *testing.T) {
	b := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Errorf("bit %d should start 0", i)
		}
		b.Set(i, true)
		if !b.Get(i) {
			t.Errorf("bit %d not set", i)
		}
		b.Set(i, false)
		if b.Get(i) {
			t.Errorf("bit %d not cleared", i)
		}
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	b := New(8)
	if b.Get(-1) || b.Get(8) {
		t.Error("out-of-range Get should return false")
	}
	b.Set(-1, true)
	b.Set(8, true)
	if b.Count() != 0 {
		t.Error("out-of-range Set should be a no-op")
	}
}

func TestFromStringAndString(t *testing.T) {
	s := "0110010011"
	b, err := FromString(s)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != s {
		t.Errorf("round trip = %q, want %q", b.String(), s)
	}
	if b.Count() != 5 {
		t.Errorf("Count = %d, want 5", b.Count())
	}
	if _, err := FromString("01x"); err == nil {
		t.Error("invalid rune accepted")
	}
}

func TestDisjConvention(t *testing.T) {
	x, _ := FromString("1010")
	y, _ := FromString("0101")
	if Disj(x, y) != 1 {
		t.Error("disjoint inputs should give DISJ=1")
	}
	y2, _ := FromString("0110")
	if Disj(x, y2) != 0 {
		t.Error("intersecting inputs should give DISJ=0")
	}
	if FirstCommon(x, y2) != 2 {
		t.Errorf("FirstCommon = %d, want 2", FirstCommon(x, y2))
	}
	if FirstCommon(x, y) != -1 {
		t.Errorf("FirstCommon = %d, want -1", FirstCommon(x, y))
	}
}

func TestIntersectsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	Intersects(New(3), New(4))
}

func TestRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		x, y := RandomDisjointPair(70, rng)
		if Disj(x, y) != 1 {
			t.Fatalf("RandomDisjointPair produced intersecting pair %s %s", x, y)
		}
		x, y = RandomIntersectingPair(70, rng)
		if Disj(x, y) != 0 {
			t.Fatalf("RandomIntersectingPair produced disjoint pair %s %s", x, y)
		}
	}
}

func TestClone(t *testing.T) {
	b, _ := FromString("101")
	c := b.Clone()
	c.Set(1, true)
	if b.Get(1) {
		t.Error("clone shares storage")
	}
}

// Property: DISJ(x,y) == 0 exactly when FirstCommon >= 0, and Count is
// consistent with String.
func TestDisjProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := Random(90, 0.3, rng)
		y := Random(90, 0.3, rng)
		d := Disj(x, y)
		fc := FirstCommon(x, y)
		if (d == 0) != (fc >= 0) {
			return false
		}
		ones := 0
		for _, r := range x.String() {
			if r == '1' {
				ones++
			}
		}
		return ones == x.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAppendBit(t *testing.T) {
	b := New(0)
	pattern := "1011001110001111000011111000001"
	for _, r := range pattern {
		b.AppendBit(r == '1')
	}
	if b.Len() != len(pattern) || b.String() != pattern {
		t.Fatalf("appended %q (len %d), want %q", b.String(), b.Len(), pattern)
	}
	// Growth across word boundaries preserves earlier bits.
	for i := 0; i < 200; i++ {
		b.AppendBit(i%3 == 0)
	}
	if b.Len() != len(pattern)+200 {
		t.Fatalf("len = %d", b.Len())
	}
	for i, r := range pattern {
		if b.Get(i) != (r == '1') {
			t.Fatalf("bit %d corrupted after growth", i)
		}
	}
	for i := 0; i < 200; i++ {
		if b.Get(len(pattern)+i) != (i%3 == 0) {
			t.Fatalf("appended bit %d wrong", i)
		}
	}
	// AppendBit composes with a non-empty fixed-size start.
	c := New(64)
	c.Set(63, true)
	c.AppendBit(true)
	if c.Len() != 65 || !c.Get(63) || !c.Get(64) {
		t.Fatalf("append onto full word: %s", c.String())
	}
}
