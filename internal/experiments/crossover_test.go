package experiments

import (
	"math"
	"testing"
)

func synthetic(name string, c, e float64, ns []int) Series {
	s := Series{Name: name}
	for _, n := range ns {
		s.Points = append(s.Points, Point{N: n, Rounds: int(c * math.Pow(float64(n), e))})
	}
	return s
}

func TestFitPower(t *testing.T) {
	s := synthetic("lin", 7, 1, []int{50, 100, 200, 400})
	c, e, err := FitPower(s, func(p Point) float64 { return float64(p.N) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-1) > 0.02 || math.Abs(c-7) > 0.5 {
		t.Errorf("fit c=%g e=%g, want 7, 1", c, e)
	}
	if _, _, err := FitPower(Series{}, func(p Point) float64 { return 1 }); err == nil {
		t.Error("empty series accepted")
	}
}

func TestCrossoverN(t *testing.T) {
	classical := synthetic("c", 7, 1, []int{64, 128, 256, 512})
	quantum := synthetic("q", 3000, 0.5, []int{64, 128, 256, 512})
	// Crossover where 7n = 3000 sqrt(n): sqrt(n) = 3000/7 -> n ~ 183700.
	n, err := CrossoverN(classical, quantum)
	if err != nil {
		t.Fatal(err)
	}
	if n < 120000 || n > 260000 {
		t.Errorf("crossover n = %g, want ~1.8e5", n)
	}
	// Non-crossing curves error out.
	if _, err := CrossoverN(quantum, classical); err == nil {
		t.Error("non-crossing curves accepted")
	}
}

// End-to-end: fit the measured classical/quantum series and extrapolate
// the crossover; it must land far beyond the measured range (the
// constant-factor finding recorded in EXPERIMENTS.md) but be finite.
func TestMeasuredCrossoverExtrapolation(t *testing.T) {
	if testing.Short() {
		t.Skip("measured sweep")
	}
	classical, quantum, err := ExactComparison([]int{30, 60, 120}, 4, 2, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := CrossoverN(classical, quantum)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1000 {
		t.Errorf("crossover %g implausibly small", n)
	}
	if n > 1e9 {
		t.Errorf("crossover %g implausibly large", n)
	}
}
