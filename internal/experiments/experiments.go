// Package experiments drives the reproduction of the paper's evaluation
// artifacts: the Table 1 round-complexity comparison and the per-figure
// experiments indexed in DESIGN.md. Each driver returns measured series
// that cmd/table1, cmd/figures and the benchmarks render.
package experiments

import (
	"fmt"
	"math"
	"slices"
	"strings"

	"qcongest/internal/congest"
	"qcongest/internal/core"
	"qcongest/internal/graph"
)

// Point is one measurement of a sweep.
type Point struct {
	N        int // nodes
	D        int // diameter
	Rounds   int
	Diameter int // computed value
	OK       bool
}

// Series is a named sequence of measurements.
type Series struct {
	Name   string
	Points []Point
}

// Slope fits log(rounds) against log(x) by least squares over the series,
// with x supplied per point (e.g. n, or n*D). It reports the exponent: ~1
// for linear scaling, ~0.5 for sqrt scaling.
func (s Series) Slope(x func(Point) float64) float64 {
	var sx, sy, sxx, sxy float64
	n := 0
	for _, p := range s.Points {
		if p.Rounds <= 0 {
			continue
		}
		lx, ly := math.Log(x(p)), math.Log(float64(p.Rounds))
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	fn := float64(n)
	return (fn*sxy - sx*sy) / (fn*sxx - sx*sx)
}

// runTrials executes `trials` independent runs of run (each trial gets its
// own derived seed inside run), spreading them over up to `parallel`
// goroutines, and folds the per-trial results in trial order — so the
// returned Point is identical for every parallelism level.
func runTrials(trials, parallel int, run func(tr int) (core.Result, error)) (rounds int, lastDiam int, hits func(ok func(int) bool) int, err error) {
	results := make([]core.Result, trials)
	err = congest.ForEach(parallel, trials, func(tr int) error {
		res, err := run(tr)
		if err != nil {
			return err
		}
		results[tr] = res
		return nil
	})
	if err != nil {
		return 0, 0, nil, err
	}
	total := 0
	for _, r := range results {
		total += r.Rounds
	}
	return total / trials, results[trials-1].Diameter, func(ok func(int) bool) int {
		h := 0
		for _, r := range results {
			if ok(r.Diameter) {
				h++
			}
		}
		return h
	}, nil
}

// ExactComparison measures the Table 1 "Exact computation" row: classical
// Theta(n) vs quantum Õ(sqrt(nD)) rounds on constant-diameter graphs of
// increasing size. trials averages the randomized quantum cost; parallel
// runs that many trials concurrently (<= 1: sequential) with results folded
// in trial order, so the measured series are identical for every value.
// lanes is forwarded to core.Options.Lanes: the number of Evaluations fused
// into one lane-engine pass (<= 1: solo sessions); like parallel, it never
// changes the measured series.
func ExactComparison(sizes []int, diameter int, trials int, seed int64, parallel, lanes int, engine ...congest.Option) (classical, quantum Series, err error) {
	classical.Name = "classical exact (PRT12)"
	quantum.Name = "quantum exact (Theorem 1)"
	for _, n := range sizes {
		g, err := graph.LollipopWithDiameter(n, diameter)
		if err != nil {
			return classical, quantum, err
		}
		want, err := g.Diameter()
		if err != nil {
			return classical, quantum, err
		}
		cres, err := congest.ClassicalExactDiameter(g, engine...)
		if err != nil {
			return classical, quantum, err
		}
		classical.Points = append(classical.Points, Point{
			N: n, D: want, Rounds: cres.Metrics.Rounds,
			Diameter: cres.Diameter, OK: cres.Diameter == want,
		})
		rounds, lastDiam, hits, err := runTrials(trials, parallel, func(tr int) (core.Result, error) {
			return core.ExactDiameter(g, core.Options{Seed: seed + int64(tr), Lanes: lanes, Engine: engine})
		})
		if err != nil {
			return classical, quantum, err
		}
		quantum.Points = append(quantum.Points, Point{
			N: n, D: want, Rounds: rounds,
			Diameter: lastDiam, OK: hits(func(d int) bool { return d == want })*2 > trials,
		})
	}
	return classical, quantum, nil
}

// DiameterSweep measures quantum exact rounds as D grows with n fixed,
// exposing the sqrt(D) factor of Theorem 1. parallel runs up to that many
// trials concurrently, with deterministic result folding; lanes fuses that
// many Evaluations per engine pass (core.Options.Lanes).
func DiameterSweep(n int, diameters []int, trials int, seed int64, parallel, lanes int, engine ...congest.Option) (Series, error) {
	s := Series{Name: "quantum exact vs D"}
	for _, d := range diameters {
		g, err := graph.LollipopWithDiameter(n, d)
		if err != nil {
			return s, err
		}
		rounds, last, hits, err := runTrials(trials, parallel, func(tr int) (core.Result, error) {
			return core.ExactDiameter(g, core.Options{Seed: seed + int64(tr), Lanes: lanes, Engine: engine})
		})
		if err != nil {
			return s, err
		}
		s.Points = append(s.Points, Point{
			N: n, D: d, Rounds: rounds, Diameter: last,
			OK: hits(func(got int) bool { return got == d })*2 > trials,
		})
	}
	return s, nil
}

// ApproxComparison measures the Table 1 "3/2-approximation" row. parallel
// runs up to that many trials concurrently, with deterministic result
// folding; lanes fuses that many Evaluations per engine pass
// (core.Options.Lanes).
func ApproxComparison(sizes []int, diameter int, trials int, seed int64, parallel, lanes int, engine ...congest.Option) (classical, quantum Series, err error) {
	classical.Name = "classical 3/2-approx (HPRW14)"
	quantum.Name = "quantum 3/2-approx (Theorem 4)"
	for _, n := range sizes {
		g, err := graph.LollipopWithDiameter(n, diameter)
		if err != nil {
			return classical, quantum, err
		}
		want, err := g.Diameter()
		if err != nil {
			return classical, quantum, err
		}
		cres, err := congest.ClassicalApproxDiameter(g, 0, seed, engine...)
		if err != nil {
			return classical, quantum, err
		}
		classical.Points = append(classical.Points, Point{
			N: n, D: want, Rounds: cres.Metrics.Rounds, Diameter: cres.Diameter,
			OK: approxOK(cres.Diameter, want),
		})
		rounds, last, hits, err := runTrials(trials, parallel, func(tr int) (core.Result, error) {
			return core.ApproxDiameter(g, core.Options{Seed: seed + int64(tr), Lanes: lanes, Engine: engine})
		})
		if err != nil {
			return classical, quantum, err
		}
		quantum.Points = append(quantum.Points, Point{
			N: n, D: want, Rounds: rounds, Diameter: last,
			OK: hits(approxOKFor(want))*2 > trials,
		})
	}
	return classical, quantum, nil
}

func approxOKFor(diam int) func(int) bool {
	return func(estimate int) bool { return approxOK(estimate, diam) }
}

func approxOK(estimate, diam int) bool {
	return estimate <= diam && 2*diam <= 3*(estimate+1)
}

// SuiteComparison measures the distance-parameter suite on one graph family
// (lollipops of fixed diameter, like the Table 1 sweeps): for each size, the
// quantum rounds of the diameter, radius, eccentricities-vector and weighted
// diameter computations against their classical baselines. The weighted
// variant assigns uniform weights in [1, maxW] (maxW <= 1 keeps all weights
// 1). Every computed value is checked against the sequential graph oracle —
// OK is false on any mismatch — so the sweep doubles as an end-to-end
// cross-check. parallel batches independent evaluations (and trials) like
// the other drivers, with results identical for every value.
func SuiteComparison(sizes []int, diameter int, maxW int, seed int64, parallel int, engine ...congest.Option) ([]Series, error) {
	series := []Series{
		{Name: "classical exact diameter (PRT12)"},
		{Name: "quantum diameter (Theorem 1)"},
		{Name: "quantum radius (min-finding)"},
		{Name: "classical eccentricities (PRT12 wave)"},
		{Name: "quantum eccentricities (per-vertex evals)"},
		{Name: "quantum weighted diameter (Bellman-Ford evals)"},
	}
	for _, n := range sizes {
		g, err := graph.LollipopWithDiameter(n, diameter)
		if err != nil {
			return series, err
		}
		wantDiam, err := g.Diameter()
		if err != nil {
			return series, err
		}
		wantRad, err := g.Radius()
		if err != nil {
			return series, err
		}
		wantEcc, err := g.AllEccentricities()
		if err != nil {
			return series, err
		}
		wg := graph.WithWeights(g, maxW, seed)
		wantWDiam, err := wg.WeightedDiameter()
		if err != nil {
			return series, err
		}
		opts := core.Options{Seed: seed, Parallel: parallel, Engine: engine}

		cres, err := congest.ClassicalExactDiameter(g, engine...)
		if err != nil {
			return series, err
		}
		series[0].Points = append(series[0].Points, Point{
			N: n, D: wantDiam, Rounds: cres.Metrics.Rounds,
			Diameter: cres.Diameter, OK: cres.Diameter == wantDiam,
		})

		qd, err := core.ExactDiameter(g, opts)
		if err != nil {
			return series, err
		}
		series[1].Points = append(series[1].Points, Point{
			N: n, D: wantDiam, Rounds: qd.Rounds, Diameter: qd.Diameter, OK: qd.Diameter == wantDiam,
		})

		qr, err := core.Radius(g, opts)
		if err != nil {
			return series, err
		}
		series[2].Points = append(series[2].Points, Point{
			N: n, D: wantDiam, Rounds: qr.Rounds, Diameter: qr.Diameter, OK: qr.Diameter == wantRad,
		})

		ceccs, cm, err := congest.ClassicalEccentricities(g, engine...)
		if err != nil {
			return series, err
		}
		cOK := len(ceccs) == len(wantEcc)
		for v := range ceccs {
			cOK = cOK && ceccs[v] == wantEcc[v]
		}
		series[3].Points = append(series[3].Points, Point{
			N: n, D: wantDiam, Rounds: cm.Rounds, Diameter: slices.Max(ceccs), OK: cOK,
		})

		qe, err := core.Eccentricities(g, opts)
		if err != nil {
			return series, err
		}
		qOK := len(qe.Ecc) == len(wantEcc)
		for v := range qe.Ecc {
			qOK = qOK && qe.Ecc[v] == wantEcc[v]
		}
		series[4].Points = append(series[4].Points, Point{
			N: n, D: wantDiam, Rounds: qe.Rounds, Diameter: slices.Max(qe.Ecc), OK: qOK,
		})

		qw, err := core.WeightedDiameter(wg, opts)
		if err != nil {
			return series, err
		}
		series[5].Points = append(series[5].Points, Point{
			N: n, D: wantDiam, Rounds: qw.Rounds, Diameter: qw.Diameter, OK: qw.Diameter == wantWDiam,
		})
	}
	return series, nil
}

// Lemma1Coverage measures min over v of Pr[v in S(u0)] for uniform u0 and
// compares it with the paper's bound d/2n.
func Lemma1Coverage(g *graph.Graph, engine ...congest.Option) (minProb, bound float64, err error) {
	info, _, err := congest.Preprocess(g, engine...)
	if err != nil {
		return 0, 0, err
	}
	tree, err := graph.NewBFSTree(g, info.Leader)
	if err != nil {
		return 0, 0, err
	}
	n := g.N()
	d := info.D
	count := make([]int, n)
	for u := 0; u < n; u++ {
		for _, v := range tree.SetS(u, d) {
			count[v]++
		}
	}
	minProb = 1
	for _, c := range count {
		if p := float64(c) / float64(n); p < minProb {
			minProb = p
		}
	}
	return minProb, float64(d) / (2 * float64(n)), nil
}

// FormatTable renders series as an aligned text table.
func FormatTable(series ...Series) string {
	var b strings.Builder
	for _, s := range series {
		fmt.Fprintf(&b, "%s\n", s.Name)
		fmt.Fprintf(&b, "  %6s %6s %8s %9s %4s\n", "n", "D", "rounds", "output", "ok")
		for _, p := range s.Points {
			fmt.Fprintf(&b, "  %6d %6d %8d %9d %4v\n", p.N, p.D, p.Rounds, p.Diameter, p.OK)
		}
	}
	return b.String()
}
