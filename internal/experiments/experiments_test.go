package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"qcongest/internal/graph"
)

func TestSlopeFit(t *testing.T) {
	// Perfect sqrt scaling: rounds = 10*sqrt(n).
	s := Series{Name: "sqrt"}
	for _, n := range []int{16, 64, 256, 1024} {
		s.Points = append(s.Points, Point{N: n, Rounds: int(10 * math.Sqrt(float64(n)))})
	}
	slope := s.Slope(func(p Point) float64 { return float64(p.N) })
	if math.Abs(slope-0.5) > 0.02 {
		t.Errorf("slope = %g, want 0.5", slope)
	}
	// Linear scaling.
	s2 := Series{Name: "linear"}
	for _, n := range []int{16, 64, 256} {
		s2.Points = append(s2.Points, Point{N: n, Rounds: 7 * n})
	}
	if slope := s2.Slope(func(p Point) float64 { return float64(p.N) }); math.Abs(slope-1) > 0.02 {
		t.Errorf("slope = %g, want 1", slope)
	}
	// Degenerate series.
	if !math.IsNaN((Series{}).Slope(func(p Point) float64 { return 1 })) {
		t.Error("empty series should give NaN")
	}
}

func TestExactComparisonSmall(t *testing.T) {
	classical, quantum, err := ExactComparison([]int{24, 48}, 4, 2, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range classical.Points {
		if !p.OK {
			t.Errorf("classical wrong at n=%d: %d", p.N, p.Diameter)
		}
	}
	for _, p := range quantum.Points {
		if !p.OK {
			t.Errorf("quantum unreliable at n=%d", p.N)
		}
	}
	// Classical grows ~linearly: doubling n should roughly double rounds.
	c0, c1 := classical.Points[0].Rounds, classical.Points[1].Rounds
	if float64(c1) < 1.6*float64(c0) {
		t.Errorf("classical growth %d -> %d too slow for linear", c0, c1)
	}
	// Quantum grows like sqrt: well under 1.8x.
	q0, q1 := quantum.Points[0].Rounds, quantum.Points[1].Rounds
	if float64(q1) > 1.8*float64(q0) {
		t.Errorf("quantum growth %d -> %d too fast for sqrt", q0, q1)
	}
}

func TestLemma1Coverage(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(20),
		graph.RandomConnected(30, 0.1, 3),
		graph.CompleteBinaryTree(31),
	} {
		minProb, bound, err := Lemma1Coverage(g)
		if err != nil {
			t.Fatal(err)
		}
		if minProb < bound {
			t.Errorf("coverage %g below Lemma 1 bound %g", minProb, bound)
		}
	}
}

func TestFormatTable(t *testing.T) {
	s := Series{Name: "demo", Points: []Point{{N: 10, D: 3, Rounds: 42, Diameter: 3, OK: true}}}
	out := FormatTable(s)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "42") {
		t.Errorf("table output missing fields:\n%s", out)
	}
}

func TestApproxComparisonSmall(t *testing.T) {
	classical, quantum, err := ApproxComparison([]int{30}, 5, 2, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !classical.Points[0].OK {
		t.Errorf("classical approx failed quality: %+v", classical.Points[0])
	}
	if !quantum.Points[0].OK {
		t.Errorf("quantum approx failed quality: %+v", quantum.Points[0])
	}
}

func TestDiameterSweep(t *testing.T) {
	s, err := DiameterSweep(40, []int{4, 8}, 2, 5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points: %d", len(s.Points))
	}
	for _, p := range s.Points {
		if !p.OK {
			t.Errorf("sweep unreliable at D=%d", p.D)
		}
	}
}

// Parallel trials must fold into exactly the series a sequential sweep
// produces: results are keyed by trial index, not by completion order.
func TestSweepParallelDeterministic(t *testing.T) {
	want, wantQ, err := ExactComparison([]int{24, 48}, 4, 4, 9, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, gotQ, err := ExactComparison([]int{24, 48}, 4, 4, 9, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) || !reflect.DeepEqual(gotQ, wantQ) {
		t.Errorf("parallel sweep differs from sequential:\n%v\nvs\n%v", FormatTable(got, gotQ), FormatTable(want, wantQ))
	}
	wantS, err := DiameterSweep(36, []int{4, 6}, 3, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotS, err := DiameterSweep(36, []int{4, 6}, 3, 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotS, wantS) {
		t.Errorf("parallel diameter sweep differs from sequential")
	}
}

// TestSuiteComparison drives the distance-parameter sweep end to end: every
// point must match its oracle (the driver sets OK), and the parallel sweep
// must reproduce the sequential one exactly.
func TestSuiteComparison(t *testing.T) {
	want, err := SuiteComparison([]int{20, 28}, 4, 6, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 6 {
		t.Fatalf("series: %d, want 6", len(want))
	}
	for _, s := range want {
		if len(s.Points) != 2 {
			t.Fatalf("%s: %d points, want 2", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if !p.OK {
				t.Errorf("%s: oracle mismatch at n=%d (got %d)", s.Name, p.N, p.Diameter)
			}
			if p.Rounds <= 0 {
				t.Errorf("%s: no rounds at n=%d", s.Name, p.N)
			}
		}
	}
	got, err := SuiteComparison([]int{20, 28}, 4, 6, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parallel suite sweep differs from sequential:\n%vvs\n%v",
			FormatTable(got...), FormatTable(want...))
	}
}
