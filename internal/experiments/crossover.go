package experiments

import (
	"errors"
	"math"
)

// FitPower fits rounds ≈ c * x^e over a series by least squares in log
// space and returns the coefficient and exponent.
func FitPower(s Series, x func(Point) float64) (c, e float64, err error) {
	e = s.Slope(x)
	if math.IsNaN(e) {
		return 0, 0, errors.New("experiments: series too short to fit")
	}
	// c from the mean residual: log c = mean(log y - e log x).
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.Rounds <= 0 {
			continue
		}
		sum += math.Log(float64(p.Rounds)) - e*math.Log(x(p))
		n++
	}
	return math.Exp(sum / float64(n)), e, nil
}

// CrossoverN extrapolates two fitted power laws (both as functions of n)
// and returns the n at which the second becomes cheaper than the first,
// i.e. where c1*n^e1 == c2*n^e2. It errors when the curves never cross
// (e2 >= e1) or the fits are degenerate.
func CrossoverN(first, second Series) (float64, error) {
	xf := func(p Point) float64 { return float64(p.N) }
	c1, e1, err := FitPower(first, xf)
	if err != nil {
		return 0, err
	}
	c2, e2, err := FitPower(second, xf)
	if err != nil {
		return 0, err
	}
	if e2 >= e1 {
		return 0, errors.New("experiments: curves do not cross (second grows at least as fast)")
	}
	// c1 n^e1 = c2 n^e2  =>  n = (c2/c1)^(1/(e1-e2)).
	return math.Pow(c2/c1, 1/(e1-e2)), nil
}
