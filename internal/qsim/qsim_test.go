package qsim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func TestNewUniform(t *testing.T) {
	s, err := NewUniform([]int{3, 7, 11, 15})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Norm()-1) > tol {
		t.Errorf("norm = %g", s.Norm())
	}
	want := 0.5
	for _, k := range []int{3, 7, 11, 15} {
		if math.Abs(real(s.Amplitude(k))-want) > tol {
			t.Errorf("amp[%d] = %v", k, s.Amplitude(k))
		}
	}
	if s.Amplitude(4) != 0 {
		t.Error("absent key has amplitude")
	}
	if _, err := NewUniform(nil); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewUniform([]int{1, 1}); err == nil {
		t.Error("duplicate keys accepted")
	}
}

func TestPhaseFlip(t *testing.T) {
	s, _ := NewUniform([]int{0, 1, 2, 3})
	s.PhaseFlip(func(k int) bool { return k == 2 })
	if real(s.Amplitude(2)) >= 0 {
		t.Error("marked amplitude not flipped")
	}
	if real(s.Amplitude(1)) <= 0 {
		t.Error("unmarked amplitude flipped")
	}
	if math.Abs(s.Norm()-1) > tol {
		t.Error("phase flip changed norm")
	}
}

func TestReflectAboutIsInvolution(t *testing.T) {
	phi, _ := NewUniform([]int{0, 1, 2, 3, 4})
	s := phi.Clone()
	s.PhaseFlip(func(k int) bool { return k%2 == 0 })
	orig := s.Clone()
	s.ReflectAbout(phi)
	s.ReflectAbout(phi)
	for _, k := range orig.Support() {
		if cmplx.Abs(s.Amplitude(k)-orig.Amplitude(k)) > tol {
			t.Fatalf("reflection not involutive at %d", k)
		}
	}
}

// Grover analytic check: with N items and M marked, after k iterations the
// success probability is sin^2((2k+1) theta) with sin(theta)=sqrt(M/N).
func TestGroverMatchesTheory(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{16, 1}, {64, 1}, {64, 4}, {100, 7}, {8, 2},
	} {
		keys := make([]int, tc.n)
		for i := range keys {
			keys[i] = i
		}
		marked := func(k int) bool { return k < tc.m }
		phi, err := NewUniform(keys)
		if err != nil {
			t.Fatal(err)
		}
		s := phi.Clone()
		theta := math.Asin(math.Sqrt(float64(tc.m) / float64(tc.n)))
		for k := 1; k <= 8; k++ {
			s.GroverIteration(phi, marked)
			want := math.Pow(math.Sin(float64(2*k+1)*theta), 2)
			got := s.Probability(marked)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("N=%d M=%d k=%d: P=%g, want %g", tc.n, tc.m, k, got, want)
			}
			if math.Abs(s.Norm()-1) > 1e-9 {
				t.Fatalf("norm drifted: %g", s.Norm())
			}
		}
	}
}

// Cross-validation: the sparse Grover iteration agrees with the dense
// qubit-level implementation (H^q, oracle, diffusion built from gates).
func TestSparseMatchesDense(t *testing.T) {
	const q = 4 // 16 items
	n := 1 << q
	target := 11

	d, err := NewDense(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < q; i++ {
		if err := d.H(i); err != nil {
			t.Fatal(err)
		}
	}
	keys := make([]int, n)
	for i := range keys {
		keys[i] = i
	}
	phi, _ := NewUniform(keys)
	s := phi.Clone()
	marked := func(k int) bool { return k == target }

	for iter := 0; iter < 5; iter++ {
		// Dense: oracle then diffusion = H^q (2|0><0|-I) H^q.
		d.PhaseFlipIf(func(i int) bool { return i == target })
		for i := 0; i < q; i++ {
			d.H(i)
		}
		d.PhaseFlipIf(func(i int) bool { return i != 0 })
		for i := 0; i < q; i++ {
			d.H(i)
		}
		// The dense construction implements -(2|phi><phi|-I) after the
		// oracle up to global phase; compare probabilities instead of
		// amplitudes.
		s.GroverIteration(phi, marked)
		for i := 0; i < n; i++ {
			pd := d.Probability(i)
			a := s.Amplitude(i)
			ps := real(a)*real(a) + imag(a)*imag(a)
			if math.Abs(pd-ps) > 1e-9 {
				t.Fatalf("iter %d basis %d: dense %g sparse %g", iter, i, pd, ps)
			}
		}
	}
}

func TestMeasureDistribution(t *testing.T) {
	s, _ := NewState(map[int]complex128{1: 3, 2: 4}) // probs 9/25, 16/25
	rng := rand.New(rand.NewSource(42))
	counts := map[int]int{}
	const shots = 20000
	for i := 0; i < shots; i++ {
		counts[s.Measure(rng)]++
	}
	p1 := float64(counts[1]) / shots
	if math.Abs(p1-0.36) > 0.02 {
		t.Errorf("P(1) = %g, want 0.36", p1)
	}
}

func TestCNOTCopySemantics(t *testing.T) {
	// Two 2-qubit registers: src = qubits 0-1, dst = qubits 2-3.
	d, err := NewDense(4)
	if err != nil {
		t.Fatal(err)
	}
	// Prepare (|00> + |11>)/sqrt2 in src: H(0); CNOT(0,1).
	d.H(0)
	d.CNOT(0, 1)
	// Copy src -> dst.
	if err := d.CNOTCopy(0, 2, 2); err != nil {
		t.Fatal(err)
	}
	// Expect (|00,00> + |11,11>)/sqrt2: basis indices 0 and 15.
	if math.Abs(d.Probability(0)-0.5) > tol || math.Abs(d.Probability(15)-0.5) > tol {
		t.Errorf("P(0)=%g P(15)=%g", d.Probability(0), d.Probability(15))
	}
	// Copy is self-inverse: |u>|u xor u> = |u>|0>.
	if err := d.CNOTCopy(0, 2, 2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Probability(0)-0.5) > tol || math.Abs(d.Probability(3)-0.5) > tol {
		t.Errorf("after uncopy: P(0)=%g P(3)=%g", d.Probability(0), d.Probability(3))
	}
}

func TestCNOTCopyValidation(t *testing.T) {
	d, _ := NewDense(4)
	if err := d.CNOTCopy(0, 1, 2); err == nil {
		t.Error("overlapping registers accepted")
	}
	if err := d.CNOTCopy(0, 3, 2); err == nil {
		t.Error("out-of-range register accepted")
	}
}

func TestDenseGateValidation(t *testing.T) {
	d, _ := NewDense(2)
	if err := d.H(2); err == nil {
		t.Error("H on missing qubit accepted")
	}
	if err := d.CNOT(0, 0); err == nil {
		t.Error("CNOT with control==target accepted")
	}
	if err := d.CCNOT(0, 1, 1); err == nil {
		t.Error("CCNOT with duplicate qubits accepted")
	}
	if _, err := NewDense(0); err == nil {
		t.Error("0-qubit register accepted")
	}
	if _, err := NewDense(21); err == nil {
		t.Error("21-qubit register accepted")
	}
}

func TestToffoli(t *testing.T) {
	d, _ := NewDense(3)
	d.X(0)
	d.X(1)
	if err := d.CCNOT(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Probability(7)-1) > tol {
		t.Errorf("CCNOT |110> -> P(111) = %g", d.Probability(7))
	}
}

// Property: unitarity — Grover iterations preserve the norm for random
// marked sets.
func TestGroverPreservesNorm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		keys := make([]int, n)
		for i := range keys {
			keys[i] = i * 3
		}
		markedSet := map[int]bool{}
		for i := 0; i < n/3+1; i++ {
			markedSet[keys[rng.Intn(n)]] = true
		}
		phi, err := NewUniform(keys)
		if err != nil {
			return false
		}
		s := phi.Clone()
		for it := 0; it < 7; it++ {
			s.GroverIteration(phi, func(k int) bool { return markedSet[k] })
			if math.Abs(s.Norm()-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNewStateNormalizes(t *testing.T) {
	s, err := NewState(map[int]complex128{5: 2, 9: 2i})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Norm()-1) > tol {
		t.Errorf("norm = %g", s.Norm())
	}
	if _, err := NewState(map[int]complex128{}); err == nil {
		t.Error("empty state accepted")
	}
	if _, err := NewState(map[int]complex128{1: 0}); err == nil {
		t.Error("zero state accepted")
	}
}
