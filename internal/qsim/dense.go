package qsim

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a dense state vector over q qubits (2^q complex amplitudes),
// used to validate the sparse simulator and the CNOT-copy semantics of
// Section 2 ("Preliminaries") on small systems. Qubit 0 is the least
// significant bit of the basis index.
type Dense struct {
	q   int
	amp []complex128
}

// NewDense returns |0...0> on q qubits (q <= 20 to bound memory).
func NewDense(q int) (*Dense, error) {
	if q < 1 || q > 20 {
		return nil, fmt.Errorf("qsim: dense register of %d qubits unsupported", q)
	}
	d := &Dense{q: q, amp: make([]complex128, 1<<q)}
	d.amp[0] = 1
	return d, nil
}

// Qubits returns the number of qubits.
func (d *Dense) Qubits() int { return d.q }

// Amplitude returns the amplitude of basis state i.
func (d *Dense) Amplitude(i int) complex128 { return d.amp[i] }

func (d *Dense) check(qs ...int) error {
	for _, qb := range qs {
		if qb < 0 || qb >= d.q {
			return fmt.Errorf("qsim: qubit %d out of range [0,%d)", qb, d.q)
		}
	}
	return nil
}

// H applies a Hadamard gate to qubit t.
func (d *Dense) H(t int) error {
	if err := d.check(t); err != nil {
		return err
	}
	inv := complex(1/math.Sqrt2, 0)
	bit := 1 << t
	for i := range d.amp {
		if i&bit == 0 {
			a0, a1 := d.amp[i], d.amp[i|bit]
			d.amp[i] = inv * (a0 + a1)
			d.amp[i|bit] = inv * (a0 - a1)
		}
	}
	return nil
}

// X applies a NOT gate to qubit t.
func (d *Dense) X(t int) error {
	if err := d.check(t); err != nil {
		return err
	}
	bit := 1 << t
	for i := range d.amp {
		if i&bit == 0 {
			d.amp[i], d.amp[i|bit] = d.amp[i|bit], d.amp[i]
		}
	}
	return nil
}

// Z applies a phase flip to qubit t.
func (d *Dense) Z(t int) error {
	if err := d.check(t); err != nil {
		return err
	}
	bit := 1 << t
	for i := range d.amp {
		if i&bit != 0 {
			d.amp[i] = -d.amp[i]
		}
	}
	return nil
}

// CNOT applies a controlled NOT with control c and target t.
func (d *Dense) CNOT(c, t int) error {
	if err := d.check(c, t); err != nil {
		return err
	}
	if c == t {
		return fmt.Errorf("qsim: CNOT control equals target %d", c)
	}
	cb, tb := 1<<c, 1<<t
	for i := range d.amp {
		if i&cb != 0 && i&tb == 0 {
			d.amp[i], d.amp[i|tb] = d.amp[i|tb], d.amp[i]
		}
	}
	return nil
}

// CCNOT applies a Toffoli gate with controls c1, c2 and target t.
func (d *Dense) CCNOT(c1, c2, t int) error {
	if err := d.check(c1, c2, t); err != nil {
		return err
	}
	if c1 == t || c2 == t || c1 == c2 {
		return fmt.Errorf("qsim: CCNOT qubits must be distinct")
	}
	b1, b2, tb := 1<<c1, 1<<c2, 1<<t
	for i := range d.amp {
		if i&b1 != 0 && i&b2 != 0 && i&tb == 0 {
			d.amp[i], d.amp[i|tb] = d.amp[i|tb], d.amp[i]
		}
	}
	return nil
}

// CNOTCopy applies the paper's "CNOT copy": for two m-qubit registers
// starting at src and dst, it maps |u>|v> to |u>|u xor v>, i.e. m parallel
// CNOTs. On |u>|0> it acts as a classical copy, which is how Setup
// broadcasts the leader's register through the network.
func (d *Dense) CNOTCopy(src, dst, m int) error {
	if src+m > d.q || dst+m > d.q || src < 0 || dst < 0 {
		return fmt.Errorf("qsim: CNOTCopy registers out of range")
	}
	if (src <= dst && dst < src+m) || (dst <= src && src < dst+m) {
		return fmt.Errorf("qsim: CNOTCopy registers overlap")
	}
	for j := 0; j < m; j++ {
		if err := d.CNOT(src+j, dst+j); err != nil {
			return err
		}
	}
	return nil
}

// PhaseFlipIf negates the amplitude of every basis state for which pred
// holds (an arbitrary classical oracle).
func (d *Dense) PhaseFlipIf(pred func(i int) bool) {
	for i := range d.amp {
		if pred(i) {
			d.amp[i] = -d.amp[i]
		}
	}
}

// Probability returns the probability that measuring all qubits yields i.
func (d *Dense) Probability(i int) float64 {
	a := d.amp[i]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Measure samples a full-register measurement outcome.
func (d *Dense) Measure(rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for i, a := range d.amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
		if r < acc {
			return i
		}
	}
	return len(d.amp) - 1
}

// Norm returns the state norm (should stay 1 up to rounding).
func (d *Dense) Norm() float64 {
	t := 0.0
	for _, a := range d.amp {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(t)
}
