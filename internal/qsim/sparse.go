// Package qsim provides the quantum-state simulators used by the
// reproduction: a sparse amplitude-vector simulator over arbitrary integer
// basis labels (the workhorse for amplitude amplification over network
// configurations) and a dense qubit-register simulator used to validate the
// sparse engine and the paper's CNOT-copy broadcast semantics on small
// systems.
//
// Why a sparse simulator is exact here: in the paper's framework (Section
// 2.4) the global network state always has the form
//
//	sum_x alpha_x |x>_I |data(x)> |init>,
//
// where |data(x)> and |init> are deterministic functions of x produced by
// quantized classical (reversible) procedures. Tracking the map x -> alpha_x
// therefore loses nothing; the data registers are reconstructed on demand.
package qsim

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
)

// Sparse is a pure quantum state over integer basis labels with complex128
// amplitudes. The zero value is unusable; construct with NewUniform or
// NewState.
type Sparse struct {
	amp map[int]complex128
}

// ErrEmptyDomain is returned when a state would have no support.
var ErrEmptyDomain = errors.New("qsim: empty domain")

// NewUniform returns the uniform superposition over the given keys.
func NewUniform(keys []int) (*Sparse, error) {
	if len(keys) == 0 {
		return nil, ErrEmptyDomain
	}
	a := complex(1/math.Sqrt(float64(len(keys))), 0)
	s := &Sparse{amp: make(map[int]complex128, len(keys))}
	for _, k := range keys {
		if _, dup := s.amp[k]; dup {
			return nil, fmt.Errorf("qsim: duplicate key %d", k)
		}
		s.amp[k] = a
	}
	return s, nil
}

// NewState returns a state with the given amplitudes, normalized.
func NewState(amps map[int]complex128) (*Sparse, error) {
	s := &Sparse{amp: make(map[int]complex128, len(amps))}
	for k, a := range amps {
		s.amp[k] = a
	}
	n := s.Norm()
	if n == 0 {
		return nil, ErrEmptyDomain
	}
	s.Scale(complex(1/n, 0))
	return s, nil
}

// Clone returns a deep copy.
func (s *Sparse) Clone() *Sparse {
	c := &Sparse{amp: make(map[int]complex128, len(s.amp))}
	for k, a := range s.amp {
		c.amp[k] = a
	}
	return c
}

// Amplitude returns the amplitude of basis label k (zero if absent).
func (s *Sparse) Amplitude(k int) complex128 { return s.amp[k] }

// Support returns the basis labels with nonzero amplitude, ascending.
func (s *Sparse) Support() []int {
	out := make([]int, 0, len(s.amp))
	for k, a := range s.amp {
		if a != 0 {
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}

// Norm returns the Euclidean norm of the state.
func (s *Sparse) Norm() float64 {
	t := 0.0
	for _, a := range s.amp {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(t)
}

// Scale multiplies every amplitude by c.
func (s *Sparse) Scale(c complex128) {
	for k := range s.amp {
		s.amp[k] *= c
	}
}

// PhaseFlip applies the oracle that negates the amplitude of every marked
// basis label: |x> -> -|x> when marked(x).
func (s *Sparse) PhaseFlip(marked func(int) bool) {
	for k, a := range s.amp {
		if marked(k) {
			s.amp[k] = -a
		}
	}
}

// InnerProduct returns <s|o>.
func (s *Sparse) InnerProduct(o *Sparse) complex128 {
	var t complex128
	for k, a := range s.amp {
		t += cmplx.Conj(a) * o.amp[k]
	}
	return t
}

// ReflectAbout applies the reflection 2|phi><phi| - I, where phi is the
// (assumed normalized) reference state. With phi the Setup output, this is
// the diffusion step of amplitude amplification: it is implemented in the
// paper by Setup^{-1}, a phase flip on |0>, and Setup.
func (s *Sparse) ReflectAbout(phi *Sparse) {
	ip := phi.InnerProduct(s) // <phi|s>
	// s' = 2 <phi|s> phi - s
	next := make(map[int]complex128, len(s.amp)+len(phi.amp))
	for k, a := range s.amp {
		next[k] = -a
	}
	for k, p := range phi.amp {
		next[k] += 2 * ip * p
	}
	s.amp = next
}

// GroverIteration applies one amplitude-amplification step: the marked-set
// phase flip followed by the reflection about phi.
func (s *Sparse) GroverIteration(phi *Sparse, marked func(int) bool) {
	s.PhaseFlip(marked)
	s.ReflectAbout(phi)
}

// Probability returns the total probability of measuring a label for which
// pred holds.
func (s *Sparse) Probability(pred func(int) bool) float64 {
	t := 0.0
	for k, a := range s.amp {
		if pred(k) {
			t += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return t
}

// Measure samples a basis label from the state's distribution using rng.
// The state itself is left untouched (callers clone per shot); sampling
// iterates labels in ascending order for determinism given the rng.
func (s *Sparse) Measure(rng *rand.Rand) int {
	keys := s.Support()
	if len(keys) == 0 {
		return -1
	}
	r := rng.Float64() * s.Norm() * s.Norm()
	acc := 0.0
	for _, k := range keys {
		a := s.amp[k]
		acc += real(a)*real(a) + imag(a)*imag(a)
		if r < acc {
			return k
		}
	}
	return keys[len(keys)-1]
}
