// Package reduction implements the lower-bound machinery of Sections 5 and
// 6.2 of the paper: reductions from two-party disjointness to distributed
// diameter computation (Definition 3), the concrete constructions of
// Theorems 8 (Figure 4) and 9, the path network G_d (Figure 5), and the
// edge-subdivided graphs G'_n(x, y) (Figure 8) that make the diameter scale
// with d.
package reduction

import (
	"fmt"

	"qcongest/internal/bitstring"
	"qcongest/internal/graph"
)

// Reduction is a (b, k, d1, d2)-reduction from disjointness to diameter
// computation (Definition 3): a fixed bipartite graph Gn = (Un, Vn, En)
// with |En| = b cut edges, plus input-dependent edge sets gn(x) within Un
// and hn(y) within Vn, such that the graph Gn(x, y) has diameter <= d1 when
// DISJ_k(x, y) = 1 and >= d2 when DISJ_k(x, y) = 0.
type Reduction struct {
	Name string
	// B is the number of edges crossing the (Un, Vn) cut.
	B int
	// K is the disjointness input length.
	K int
	// D1, D2 are the diameter thresholds of Definition 3.
	D1, D2 int
	// Un, Vn are the two sides (disjoint vertex sets covering the graph).
	Un, Vn []int
	// Base is Gn: all input-independent edges, including the cut edges.
	Base *graph.Graph
	// CutEdges lists the edges between Un and Vn.
	CutEdges [][2]int
	// Gx returns gn(x): input-dependent edges within Un.
	Gx func(x *bitstring.Bits) [][2]int
	// Hy returns hn(y): input-dependent edges within Vn.
	Hy func(y *bitstring.Bits) [][2]int
}

// Build constructs Gn(x, y): the base graph plus gn(x) and hn(y).
func (r *Reduction) Build(x, y *bitstring.Bits) (*graph.Graph, error) {
	if x.Len() != r.K || y.Len() != r.K {
		return nil, fmt.Errorf("reduction %s: input lengths %d,%d, want %d", r.Name, x.Len(), y.Len(), r.K)
	}
	g := r.Base.Clone()
	for _, e := range r.Gx(x) {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("reduction %s: gn(x) edge: %w", r.Name, err)
		}
	}
	for _, e := range r.Hy(y) {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("reduction %s: hn(y) edge: %w", r.Name, err)
		}
	}
	return g, nil
}

// CrossDelta returns the paper's Delta(G): the largest distance between a
// vertex of Un and a vertex of Vn.
func CrossDelta(g *graph.Graph, un, vn []int) (int, error) {
	best := 0
	for _, u := range un {
		dist, _ := g.BFS(u)
		for _, v := range vn {
			if dist[v] < 0 {
				return 0, graph.ErrDisconnected
			}
			if dist[v] > best {
				best = dist[v]
			}
		}
	}
	return best, nil
}

// Verify checks Definition 3's conditions for one input pair: the diameter
// of Gn(x, y) must be <= D1 when the inputs are disjoint and >= D2
// otherwise. (The constructions in this package satisfy the stronger
// property that the full diameter, not just the cross-pair distance,
// respects the thresholds, so a diameter algorithm distinguishes the two
// cases.)
func (r *Reduction) Verify(x, y *bitstring.Bits) error {
	g, err := r.Build(x, y)
	if err != nil {
		return err
	}
	diam, err := g.Diameter()
	if err != nil {
		return fmt.Errorf("reduction %s: %w", r.Name, err)
	}
	if bitstring.Disj(x, y) == 1 {
		if diam > r.D1 {
			return fmt.Errorf("reduction %s: disjoint inputs give diameter %d > d1=%d", r.Name, diam, r.D1)
		}
		return nil
	}
	if diam < r.D2 {
		return fmt.Errorf("reduction %s: intersecting inputs give diameter %d < d2=%d", r.Name, diam, r.D2)
	}
	return nil
}

// SideOf returns a lookup table: side[v] = 0 for Un, 1 for Vn.
func (r *Reduction) SideOf() []int {
	side := make([]int, r.Base.N())
	for i := range side {
		side[i] = -1
	}
	for _, u := range r.Un {
		side[u] = 0
	}
	for _, v := range r.Vn {
		side[v] = 1
	}
	return side
}
