package reduction

import (
	"math/rand"
	"testing"

	"qcongest/internal/bitstring"
	"qcongest/internal/congest"
)

// Exhaustive verification of the HW12 construction (Figure 4 / Theorem 8)
// for s = 2: all 2^(2k) input pairs with k = 4.
func TestHW12ReductionExhaustive(t *testing.T) {
	red, err := NewHW12(2)
	if err != nil {
		t.Fatal(err)
	}
	if red.K != 4 || red.D1 != 2 || red.D2 != 3 {
		t.Fatalf("parameters: %+v", red)
	}
	for xv := 0; xv < 16; xv++ {
		for yv := 0; yv < 16; yv++ {
			x, y := bitsFromInt(xv, 4), bitsFromInt(yv, 4)
			if err := red.Verify(x, y); err != nil {
				t.Fatalf("x=%s y=%s: %v", x, y, err)
			}
		}
	}
}

func bitsFromInt(v, k int) *bitstring.Bits {
	b := bitstring.New(k)
	for i := 0; i < k; i++ {
		if v&(1<<i) != 0 {
			b.Set(i, true)
		}
	}
	return b
}

func TestHW12ReductionRandomLarge(t *testing.T) {
	red, err := NewHW12(6) // n = 26, k = 36
	if err != nil {
		t.Fatal(err)
	}
	if red.Base.N() != 26 {
		t.Fatalf("n = %d, want 26", red.Base.N())
	}
	// b = 2s+1 = Theta(n).
	if red.B != 13 {
		t.Fatalf("b = %d, want 13", red.B)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		x, y := bitstring.RandomDisjointPair(36, rng)
		if err := red.Verify(x, y); err != nil {
			t.Fatal(err)
		}
		x, y = bitstring.RandomIntersectingPair(36, rng)
		if err := red.Verify(x, y); err != nil {
			t.Fatal(err)
		}
	}
}

// The witness property of the proof of Theorem 8: d(l_i, r'_j) = 3 iff
// x_ij = y_ij = 1, else <= 2.
func TestHW12PairDistances(t *testing.T) {
	const s = 3
	red, err := NewHW12(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		x := bitstring.Random(s*s, 0.5, rng)
		y := bitstring.Random(s*s, 0.5, rng)
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				is3, err := PairDistanceIs3(red, x, y, s, i, j)
				if err != nil {
					t.Fatal(err)
				}
				want := x.Get(i*s+j) && y.Get(i*s+j)
				if is3 != want {
					t.Errorf("trial %d (i,j)=(%d,%d): dist>=3 = %v, want %v", trial, i, j, is3, want)
				}
			}
		}
	}
}

func TestHW12Validation(t *testing.T) {
	if _, err := NewHW12(0); err == nil {
		t.Error("s=0 accepted")
	}
	red, _ := NewHW12(2)
	if _, err := red.Build(bitstring.New(3), bitstring.New(4)); err == nil {
		t.Error("wrong input length accepted")
	}
}

// Exhaustive verification of the ACHK16-style construction (Theorem 9) for
// m = 4: all 256 input pairs.
func TestACHK16ReductionExhaustive(t *testing.T) {
	red, err := NewACHK16(4)
	if err != nil {
		t.Fatal(err)
	}
	if red.D1 != 4 || red.D2 != 5 {
		t.Fatalf("parameters: %+v", red)
	}
	for xv := 0; xv < 16; xv++ {
		for yv := 0; yv < 16; yv++ {
			x, y := bitsFromInt(xv, 4), bitsFromInt(yv, 4)
			if err := red.Verify(x, y); err != nil {
				t.Fatalf("x=%s y=%s: %v", x, y, err)
			}
		}
	}
}

func TestACHK16ReductionRandomLarge(t *testing.T) {
	const m = 64
	red, err := NewACHK16(m)
	if err != nil {
		t.Fatal(err)
	}
	// b = 2*log2(m) + 1 = 13: Theta(log n) with n = 2m + 4 log m + 2.
	if red.B != 13 {
		t.Fatalf("b = %d, want 13", red.B)
	}
	if red.K != m {
		t.Fatalf("k = %d, want %d", red.K, m)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		x, y := bitstring.RandomDisjointPair(m, rng)
		if err := red.Verify(x, y); err != nil {
			t.Fatal(err)
		}
		x, y = bitstring.RandomIntersectingPair(m, rng)
		if err := red.Verify(x, y); err != nil {
			t.Fatal(err)
		}
	}
}

// The critical-pair property behind Theorem 9: d(l_i, r_i) = 5 iff
// x_i = y_i = 1.
func TestACHK16CriticalPairs(t *testing.T) {
	const m = 8
	red, err := NewACHK16(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		x := bitstring.Random(m, 0.5, rng)
		y := bitstring.Random(m, 0.5, rng)
		for i := 0; i < m; i++ {
			d, err := CriticalPairDistance(red, x, y, i)
			if err != nil {
				t.Fatal(err)
			}
			if x.Get(i) && y.Get(i) {
				if d != 5 {
					t.Errorf("trial %d i=%d: d(l_i,r_i) = %d, want 5", trial, i, d)
				}
			} else if d > 4 {
				t.Errorf("trial %d i=%d: d(l_i,r_i) = %d, want <= 4", trial, i, d)
			}
		}
	}
}

func TestPathNetwork(t *testing.T) {
	g, err := PathNetwork(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 7 || g.M() != 6 {
		t.Errorf("G_5: n=%d m=%d, want 7, 6", g.N(), g.M())
	}
	d, _ := g.Diameter()
	if d != 6 {
		t.Errorf("diameter %d, want 6", d)
	}
	if _, err := PathNetwork(0); err == nil {
		t.Error("d=0 accepted")
	}
}

// Figure 8: subdividing the ACHK16 cut edges makes the diameter d+4 vs d+5.
func TestSubdividedACHK16(t *testing.T) {
	red, err := NewACHK16(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for _, d := range []int{1, 2, 5, 9} {
		for i := 0; i < 6; i++ {
			x, y := bitstring.RandomDisjointPair(8, rng)
			if err := VerifySubdivided(red, x, y, d); err != nil {
				t.Fatal(err)
			}
			x, y = bitstring.RandomIntersectingPair(8, rng)
			if err := VerifySubdivided(red, x, y, d); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSubdividedStructure(t *testing.T) {
	red, err := NewACHK16(4)
	if err != nil {
		t.Fatal(err)
	}
	x, y := bitsFromInt(5, 4), bitsFromInt(2, 4)
	sub, err := BuildSubdivided(red, x, y, 3)
	if err != nil {
		t.Fatal(err)
	}
	// n' = n + b*d new vertices.
	wantN := red.Base.N() + red.B*3
	if sub.G.N() != wantN {
		t.Errorf("n' = %d, want %d", sub.G.N(), wantN)
	}
	if len(sub.Layers) != 3 {
		t.Fatalf("layers = %d, want 3", len(sub.Layers))
	}
	for t2, layer := range sub.Layers {
		if len(layer) != red.B {
			t.Errorf("layer %d has %d vertices, want %d", t2, len(layer), red.B)
		}
	}
	if _, err := BuildSubdivided(red, x, y, 0); err == nil {
		t.Error("d=0 accepted")
	}
}

// Theorem 10's simulation: the classical algorithm on Gn(x, y), run as a
// two-party protocol, decides DISJ, and its communication is bounded by
// rounds * b * bandwidth.
func TestTwoPartyFromCongest(t *testing.T) {
	red, err := NewHW12(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 6; trial++ {
		var x, y *bitstring.Bits
		var want int
		if trial%2 == 0 {
			x, y = bitstring.RandomDisjointPair(9, rng)
			want = 1
		} else {
			x, y = bitstring.RandomIntersectingPair(9, rng)
			want = 0
		}
		res, err := TwoPartyFromCongest(red, x, y)
		if err != nil {
			t.Fatal(err)
		}
		if res.Disj != want {
			t.Errorf("trial %d: DISJ = %d, want %d", trial, res.Disj, want)
		}
		// Theorem 10 accounting: <= 2 messages per round, each at most
		// b * bandwidth bits.
		if res.Protocol.Messages > 2*res.Rounds {
			t.Errorf("messages %d > 2*rounds %d", res.Protocol.Messages, res.Rounds)
		}
		if res.Protocol.MaxQubits > MaxCutTrafficPerRound(red) {
			t.Errorf("message size %d > b*bw %d", res.Protocol.MaxQubits, MaxCutTrafficPerRound(red))
		}
		if res.CutBits > res.Rounds*MaxCutTrafficPerRound(red) {
			t.Errorf("cut traffic %d exceeds rounds*b*bw", res.CutBits)
		}
	}
}

// The Theorem 10 transcript is the actual encoded cut traffic: its length
// must agree with an independent tally of the per-message bit counts the
// engine reports, and every bit of it must be reproducible run over run
// (the observer order is canonical).
func TestTwoPartyTranscriptMatchesCutBits(t *testing.T) {
	red, err := NewHW12(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	x, y := bitstring.RandomIntersectingPair(9, rng)
	res, err := TwoPartyFromCongest(red, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transcript.Len() != res.CutBits {
		t.Fatalf("transcript %d bits, CutBits %d", res.Transcript.Len(), res.CutBits)
	}
	// Independent tally: re-run the simulated algorithm with a plain
	// observer summing the engine-reported sizes of cut-crossing messages.
	g, err := red.Build(x, y)
	if err != nil {
		t.Fatal(err)
	}
	side := red.SideOf()
	sum := 0
	obs := func(round, from, to, bits int, wire congest.WireView) {
		if round == 0 {
			return // run boundary marker
		}
		if side[from] != side[to] {
			sum += bits
		}
	}
	if _, err := congest.ClassicalExactDiameter(g, congest.WithObserver(obs)); err != nil {
		t.Fatal(err)
	}
	if sum != res.Transcript.Len() {
		t.Errorf("independent tally %d bits, transcript %d", sum, res.Transcript.Len())
	}
	// Determinism: a second capture yields the identical bit string —
	// across worker counts and across engine schedulers. The frontier
	// scheduler's observer replay (sorted frontier order) must reproduce
	// the dense engine's canonical delivery order bit for bit, so the
	// Theorem 10 transcript is scheduler-independent.
	for _, opts := range [][]congest.Option{
		{congest.WithWorkers(3)},
		{congest.WithScheduler(congest.SchedulerDense), congest.WithWorkers(1)},
		{congest.WithScheduler(congest.SchedulerDense), congest.WithWorkers(8)},
		{congest.WithScheduler(congest.SchedulerFrontier), congest.WithWorkers(1)},
		{congest.WithScheduler(congest.SchedulerFrontier), congest.WithWorkers(8)},
	} {
		again, err := TwoPartyFromCongest(red, x, y, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if again.Transcript.String() != res.Transcript.String() {
			t.Errorf("%v: transcript differs between runs / worker counts / schedulers", opts)
		}
		if again.Protocol != res.Protocol || again.CutBits != res.CutBits || again.Rounds != res.Rounds {
			t.Errorf("%v: protocol accounting differs across engine configurations", opts)
		}
	}
}

func TestLowerBoundRounds(t *testing.T) {
	t2, t3 := LowerBoundRounds(100, 4, 9, 16)
	if t2 != 5 {
		t.Errorf("theorem2 = %g, want 5", t2)
	}
	if t3 < 6.6 || t3 > 6.8 { // sqrt(900/20) = sqrt(45) = 6.7
		t.Errorf("theorem3 = %g", t3)
	}
}

func TestSideOf(t *testing.T) {
	red, err := NewACHK16(4)
	if err != nil {
		t.Fatal(err)
	}
	side := red.SideOf()
	for _, u := range red.Un {
		if side[u] != 0 {
			t.Errorf("u %d side %d", u, side[u])
		}
	}
	for _, v := range red.Vn {
		if side[v] != 1 {
			t.Errorf("v %d side %d", v, side[v])
		}
	}
	// Every cut edge goes between the sides.
	for _, e := range red.CutEdges {
		if side[e[0]] == side[e[1]] {
			t.Errorf("cut edge %v within one side", e)
		}
	}
}
