package reduction

import (
	"fmt"

	"qcongest/internal/bitstring"
	"qcongest/internal/graph"
)

// NewHW12 builds the (Theta(n), Theta(n^2), 2, 3)-reduction of Theorem 8
// (the [HW12] construction, Figure 4 of the paper) for s node pairs per
// side: four s-cliques L, L', R, R', hub vertices a and b, matchings
// l_i - r_i and l'_i - r'_i, and the hub edge a - b. The inputs x, y are
// s*s-bit strings indexed by (i, j): x_{ij} = 0 adds the edge {l_i, l'_j}
// and y_{ij} = 0 adds {r_i, r'_j}. The distance between l_i and r'_j is 3
// exactly when x_{ij} = y_{ij} = 1, and at most 2 otherwise.
//
// Vertex layout: L = [0, s), L' = [s, 2s), a = 2s,
// R = [2s+1, 3s+1), R' = [3s+1, 4s+1), b = 4s+1. Total n = 4s + 2.
func NewHW12(s int) (*Reduction, error) {
	if s < 1 {
		return nil, fmt.Errorf("reduction: hw12 needs s >= 1, got %d", s)
	}
	n := 4*s + 2
	g := graph.New(n)
	l := func(i int) int { return i }
	lp := func(i int) int { return s + i }
	a := 2 * s
	r := func(i int) int { return 2*s + 1 + i }
	rp := func(i int) int { return 3*s + 1 + i }
	b := 4*s + 1

	// Cliques.
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			g.MustAddEdge(l(i), l(j))
			g.MustAddEdge(lp(i), lp(j))
			g.MustAddEdge(r(i), r(j))
			g.MustAddEdge(rp(i), rp(j))
		}
	}
	// Hubs: a adjacent to L and L', b adjacent to R and R'.
	for i := 0; i < s; i++ {
		g.MustAddEdge(a, l(i))
		g.MustAddEdge(a, lp(i))
		g.MustAddEdge(b, r(i))
		g.MustAddEdge(b, rp(i))
	}
	// Cut edges: matchings plus the hub edge.
	var cut [][2]int
	for i := 0; i < s; i++ {
		g.MustAddEdge(l(i), r(i))
		cut = append(cut, [2]int{l(i), r(i)})
		g.MustAddEdge(lp(i), rp(i))
		cut = append(cut, [2]int{lp(i), rp(i)})
	}
	g.MustAddEdge(a, b)
	cut = append(cut, [2]int{a, b})

	un := make([]int, 0, 2*s+1)
	vn := make([]int, 0, 2*s+1)
	for i := 0; i < s; i++ {
		un = append(un, l(i), lp(i))
		vn = append(vn, r(i), rp(i))
	}
	un = append(un, a)
	vn = append(vn, b)

	return &Reduction{
		Name:     "hw12",
		B:        len(cut),
		K:        s * s,
		D1:       2,
		D2:       3,
		Un:       un,
		Vn:       vn,
		Base:     g,
		CutEdges: cut,
		Gx: func(x *bitstring.Bits) [][2]int {
			var edges [][2]int
			for i := 0; i < s; i++ {
				for j := 0; j < s; j++ {
					if !x.Get(i*s + j) {
						edges = append(edges, [2]int{l(i), lp(j)})
					}
				}
			}
			return edges
		},
		Hy: func(y *bitstring.Bits) [][2]int {
			var edges [][2]int
			for i := 0; i < s; i++ {
				for j := 0; j < s; j++ {
					if !y.Get(i*s + j) {
						edges = append(edges, [2]int{r(i), rp(j)})
					}
				}
			}
			return edges
		},
	}, nil
}

// PairDistanceIs3 reports, for the HW12 construction, whether the distance
// between l_i and r'_j equals 3 in Gn(x, y) — the paper's witness property:
// it must hold exactly when x_{ij} = y_{ij} = 1.
func PairDistanceIs3(red *Reduction, x, y *bitstring.Bits, s, i, j int) (bool, error) {
	g, err := red.Build(x, y)
	if err != nil {
		return false, err
	}
	d, err := g.Distance(i, 3*s+1+j)
	if err != nil {
		return false, err
	}
	return d >= 3, nil
}
