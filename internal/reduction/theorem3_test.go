package reduction

import (
	"math"
	"math/rand"
	"testing"

	"qcongest/internal/bitstring"
	"qcongest/internal/congest"
)

// End-to-end consistency of Theorem 3's chain: the ACHK16 reduction,
// subdivided by d, makes any diameter decider on n' = n + b*d nodes into a
// DISJ_k protocol whose bounded-round cost (Theorem 5) forces
// r = Omega(sqrt(k*d/(b+s))). The classical exact algorithm must respect
// that bound — its measured rounds on the subdivided instance must exceed
// the derived lower-bound curve — while staying within its O(n') upper
// bound.
func TestTheorem3ChainConsistency(t *testing.T) {
	red, err := NewACHK16(16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for _, d := range []int{2, 6} {
		x, y := bitstring.RandomIntersectingPair(red.K, rng)
		sub, err := BuildSubdivided(red, x, y, d)
		if err != nil {
			t.Fatal(err)
		}
		res, err := congest.ClassicalExactDiameter(sub.G)
		if err != nil {
			t.Fatal(err)
		}
		if res.Diameter != sub.RightDiameter {
			t.Fatalf("d=%d: diameter %d, want %d", d, res.Diameter, sub.RightDiameter)
		}
		// Lower-bound curve with s = O(log n) classical memory.
		s := congest.BitsForID(sub.G.N())
		_, t3 := LowerBoundRounds(red.K, red.B, d, s)
		if float64(res.Metrics.Rounds) < t3 {
			t.Errorf("d=%d: measured %d rounds below the Theorem 3 curve %g", d, res.Metrics.Rounds, t3)
		}
		// And the O(n') upper bound still holds.
		if res.Metrics.Rounds > 14*sub.G.N()+60 {
			t.Errorf("d=%d: %d rounds for n=%d", d, res.Metrics.Rounds, sub.G.N())
		}
	}
}

// The diameter of the subdivided graph grows linearly in d, so the
// Theorem 3 bound in terms of D' = d + 5 reads Omega(sqrt(n*D')/s) — the
// form quoted in Table 1. Check the algebra agrees with LowerBoundRounds.
func TestTheorem3BoundAlgebra(t *testing.T) {
	k, b, d, s := 1024, 11, 64, 8
	_, t3 := LowerBoundRounds(k, b, d, s)
	want := math.Sqrt(float64(k*d) / float64(b+s))
	if math.Abs(t3-want) > 1e-9 {
		t.Errorf("t3 = %g, want %g", t3, want)
	}
	// Monotonicity: more memory weakens the bound; larger d strengthens it.
	_, more := LowerBoundRounds(k, b, d, 4*s)
	if more >= t3 {
		t.Error("bound should shrink with memory")
	}
	_, deeper := LowerBoundRounds(k, b, 4*d, s)
	if deeper <= t3 {
		t.Error("bound should grow with d")
	}
}
