package reduction

import (
	"fmt"

	"qcongest/internal/bitstring"
	"qcongest/internal/graph"
)

// PathNetwork returns the network G_d of Figure 5: nodes A and B joined by
// a path of length d+1 through d intermediate nodes P_1..P_d. Vertex 0 is
// A, vertex d+1 is B.
func PathNetwork(d int) (*graph.Graph, error) {
	if d < 1 {
		return nil, fmt.Errorf("reduction: path network needs d >= 1, got %d", d)
	}
	return graph.Path(d + 2), nil
}

// Subdivided is the graph G'_n(x, y) of Figure 8: the reduction graph
// Gn(x, y) with every cut edge replaced by a path of length d+1 (d new
// vertices per cut edge). Deciding whether its diameter is d+d1 or d+d2
// computes DISJ_k, but now every bit needs d rounds to cross the cut —
// the engine behind Theorem 3.
type Subdivided struct {
	G *graph.Graph
	// D is the subdivision length d.
	D int
	// LeftDiameter / RightDiameter are the expected diameters: d+d1 for
	// disjoint inputs, d+d2 for intersecting ones.
	LeftDiameter, RightDiameter int
	// Un, Vn are the original sides; Layers[t] (t in [0,d)) lists the
	// subdivision vertices at depth t+1 from the Un side, one per cut
	// edge — the vertical layers simulated by player P_{t+1} in Figure 8.
	Un, Vn []int
	Layers [][]int
}

// BuildSubdivided constructs G'_n(x, y) from a reduction and inputs.
func BuildSubdivided(red *Reduction, x, y *bitstring.Bits, d int) (*Subdivided, error) {
	if d < 1 {
		return nil, fmt.Errorf("reduction: subdivision needs d >= 1, got %d", d)
	}
	base, err := red.Build(x, y)
	if err != nil {
		return nil, err
	}
	cutSet := make(map[[2]int]bool, len(red.CutEdges))
	for _, e := range red.CutEdges {
		cutSet[norm(e)] = true
	}

	g := graph.New(base.N())
	for _, e := range base.Edges() {
		if !cutSet[norm([2]int{e[0], e[1]})] {
			g.MustAddEdge(e[0], e[1])
		}
	}
	layers := make([][]int, d)
	for _, e := range red.CutEdges {
		// Orient the path from the Un endpoint to the Vn endpoint.
		u, v := e[0], e[1]
		prev := u
		for t := 0; t < d; t++ {
			nv := g.AddVertex()
			layers[t] = append(layers[t], nv)
			g.MustAddEdge(prev, nv)
			prev = nv
		}
		g.MustAddEdge(prev, v)
	}
	return &Subdivided{
		G:             g,
		D:             d,
		LeftDiameter:  d + red.D1,
		RightDiameter: d + red.D2,
		Un:            red.Un,
		Vn:            red.Vn,
		Layers:        layers,
	}, nil
}

func norm(e [2]int) [2]int {
	if e[0] > e[1] {
		return [2]int{e[1], e[0]}
	}
	return e
}

// VerifySubdivided checks the Figure 8 property for one input pair: the
// diameter of G'_n(x, y) must be at most d+d1 when the inputs are disjoint
// and exactly d+d2 when they intersect (at least d+d2 by condition (ii) of
// Definition 3; at most because every pair can cross the cut once and
// in-side distances are unchanged).
func VerifySubdivided(red *Reduction, x, y *bitstring.Bits, d int) error {
	sub, err := BuildSubdivided(red, x, y, d)
	if err != nil {
		return err
	}
	diam, err := sub.G.Diameter()
	if err != nil {
		return err
	}
	if bitstring.Disj(x, y) == 1 {
		if diam > sub.LeftDiameter {
			return fmt.Errorf("reduction %s/d=%d: disjoint inputs give diameter %d, want <= %d",
				red.Name, d, diam, sub.LeftDiameter)
		}
		return nil
	}
	if diam != sub.RightDiameter {
		return fmt.Errorf("reduction %s/d=%d: intersecting inputs give diameter %d, want %d",
			red.Name, d, diam, sub.RightDiameter)
	}
	return nil
}
