package reduction

import (
	"fmt"
	"math/bits"

	"qcongest/internal/bitstring"
	"qcongest/internal/graph"
)

// NewACHK16 builds a (Theta(log n), Theta(n), 4, 5)-reduction in the spirit
// of [ACHK16] (the paper's Theorem 9): only Theta(log n) edges cross the
// cut, yet deciding diameter 4 vs 5 solves DISJ_m. The paper cites the
// construction without reproducing it; this bit-gadget version is proved
// correct in the package tests (exhaustively for small m).
//
// Construction. Let q = ceil(log2 m). The left side holds vertices
// l_0..l_{m-1}, bit vertices f_{j,c} for j in [q], c in {0,1}, and a hub
// cL; symmetrically the right side holds r_i, g_{j,c} and cR.
//
// Fixed edges: l_i - f_{j, bit_j(i)} for every j; cL - f_{j,c} for all j,c;
// and symmetrically on the right. Cut edges: f_{j,c} - g_{j,1-c} for all
// j,c, plus cL - cR: exactly 2q + 1 = Theta(log n) edges.
//
// Input edges: x_i = 0 adds {l_i, cL}; y_i = 0 adds {r_i, cR}.
//
// Distances: d(l_i, r_i) = 5 iff x_i = y_i = 1 (no 4-path exists because
// the only cut neighbors of l_i's bit vertices carry complementary bit
// values, and the hubs are unreachable without the input edges), and every
// other pair is within distance 4.
//
// Vertex layout: l_i = i; f_{j,c} = m + 2j + c; cL = m + 2q;
// right side mirrored with offset m + 2q + 1. Total n = 2m + 4q + 2.
func NewACHK16(m int) (*Reduction, error) {
	if m < 2 {
		return nil, fmt.Errorf("reduction: achk16 needs m >= 2, got %d", m)
	}
	q := bits.Len(uint(m - 1))
	if q < 1 {
		q = 1
	}
	off := m + 2*q + 1
	n := 2 * off
	g := graph.New(n)

	l := func(i int) int { return i }
	f := func(j, c int) int { return m + 2*j + c }
	cL := m + 2*q
	r := func(i int) int { return off + i }
	gg := func(j, c int) int { return off + m + 2*j + c }
	cR := off + m + 2*q

	for i := 0; i < m; i++ {
		for j := 0; j < q; j++ {
			bit := (i >> j) & 1
			g.MustAddEdge(l(i), f(j, bit))
			g.MustAddEdge(r(i), gg(j, bit))
		}
	}
	for j := 0; j < q; j++ {
		for c := 0; c < 2; c++ {
			g.MustAddEdge(cL, f(j, c))
			g.MustAddEdge(cR, gg(j, c))
		}
	}
	var cut [][2]int
	for j := 0; j < q; j++ {
		for c := 0; c < 2; c++ {
			g.MustAddEdge(f(j, c), gg(j, 1-c))
			cut = append(cut, [2]int{f(j, c), gg(j, 1-c)})
		}
	}
	g.MustAddEdge(cL, cR)
	cut = append(cut, [2]int{cL, cR})

	un := make([]int, 0, off)
	vn := make([]int, 0, off)
	for v := 0; v < off; v++ {
		un = append(un, v)
		vn = append(vn, off+v)
	}

	return &Reduction{
		Name:     "achk16",
		B:        len(cut),
		K:        m,
		D1:       4,
		D2:       5,
		Un:       un,
		Vn:       vn,
		Base:     g,
		CutEdges: cut,
		Gx: func(x *bitstring.Bits) [][2]int {
			var edges [][2]int
			for i := 0; i < m; i++ {
				if !x.Get(i) {
					edges = append(edges, [2]int{l(i), cL})
				}
			}
			return edges
		},
		Hy: func(y *bitstring.Bits) [][2]int {
			var edges [][2]int
			for i := 0; i < m; i++ {
				if !y.Get(i) {
					edges = append(edges, [2]int{r(i), cR})
				}
			}
			return edges
		},
	}, nil
}

// CriticalPairDistance returns d(l_i, r_i) in the ACHK16 construction for
// the given inputs: 5 when x_i = y_i = 1, at most 4 otherwise.
func CriticalPairDistance(red *Reduction, x, y *bitstring.Bits, i int) (int, error) {
	g, err := red.Build(x, y)
	if err != nil {
		return 0, err
	}
	m := red.K
	q := bits.Len(uint(m - 1))
	if q < 1 {
		q = 1
	}
	off := m + 2*q + 1
	return g.Distance(i, off+i)
}
