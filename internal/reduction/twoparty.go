package reduction

import (
	"fmt"
	"math"

	"qcongest/internal/bitstring"
	"qcongest/internal/comm"
	"qcongest/internal/congest"
)

// SimulationResult reports the two-party protocol obtained from a CONGEST
// algorithm by the Theorem 10 argument.
type SimulationResult struct {
	Disj int // the DISJ value decided from the diameter
	// Rounds is the round complexity of the simulated CONGEST algorithm.
	Rounds int
	// CutBits is the total traffic that crossed the (Un, Vn) cut — the
	// communication Alice and Bob must exchange to simulate the run.
	CutBits int
	// Protocol is the induced two-party cost: 2 messages per round in
	// which cut traffic occurred (one per direction), each of size at most
	// b * bandwidth bits.
	Protocol comm.Metrics
}

// TwoPartyFromCongest implements the simulation of Theorem 10: Alice
// (holding the Un side and x) and Bob (holding the Vn side and y) jointly
// run the classical exact-diameter algorithm on Gn(x, y), exchanging only
// the traffic of the b cut edges. The decided DISJ value and the measured
// two-party costs are returned. The run fails if the algorithm's diameter
// output falls strictly between d1 and d2 (impossible for a correct
// reduction).
func TwoPartyFromCongest(red *Reduction, x, y *bitstring.Bits, engine ...congest.Option) (SimulationResult, error) {
	var res SimulationResult
	g, err := red.Build(x, y)
	if err != nil {
		return res, err
	}
	side := red.SideOf()
	perRound := map[int][2]int{} // round -> bits crossing per direction
	observer := func(round, from, to, bits int) {
		if side[from] == side[to] {
			return
		}
		e := perRound[round]
		e[side[from]] += bits
		perRound[round] = e
		res.CutBits += bits
	}
	opts := append([]congest.Option{congest.WithObserver(observer)}, engine...)
	out, err := congest.ClassicalExactDiameter(g, opts...)
	if err != nil {
		return res, err
	}
	res.Rounds = out.Metrics.Rounds
	switch {
	case out.Diameter <= red.D1:
		res.Disj = 1
	case out.Diameter >= red.D2:
		res.Disj = 0
	default:
		return res, fmt.Errorf("reduction %s: diameter %d strictly between %d and %d",
			red.Name, out.Diameter, red.D1, red.D2)
	}
	// Alice and Bob exchange one message per direction per round with cut
	// traffic; message size is the larger of the actual traffic and one
	// bit (a round marker).
	for _, e := range perRound {
		for dir := 0; dir < 2; dir++ {
			bits := e[dir]
			if bits == 0 {
				bits = 1
			}
			res.Protocol.Messages++
			res.Protocol.Qubits += bits
			if bits > res.Protocol.MaxQubits {
				res.Protocol.MaxQubits = bits
			}
		}
	}
	return res, nil
}

// MaxCutTrafficPerRound returns the maximum possible cut traffic per round
// for the reduction under the given graph's default bandwidth: b edges
// times bandwidth bits, the O(b log n) factor of Theorem 10.
func MaxCutTrafficPerRound(red *Reduction) int {
	return red.B * congest.DefaultBandwidth(red.Base.N())
}

// LowerBoundRounds evaluates the Theorem 10 bound Ω(sqrt(k/b)) and the
// Theorem 3 bound Ω(sqrt(k*d/(b+s))) for given parameters, up to the
// suppressed polylog factors (set logFactor to 1 for the raw value).
func LowerBoundRounds(k, b, d, s int) (theorem2 float64, theorem3 float64) {
	t2 := math.Sqrt(float64(k) / float64(b))
	t3 := math.Sqrt(float64(k) * float64(d) / float64(b+s))
	return t2, t3
}
