package reduction

import (
	"fmt"
	"math"

	"qcongest/internal/bitstring"
	"qcongest/internal/comm"
	"qcongest/internal/congest"
)

// SimulationResult reports the two-party protocol obtained from a CONGEST
// algorithm by the Theorem 10 argument.
type SimulationResult struct {
	Disj int // the DISJ value decided from the diameter
	// Rounds is the round complexity of the simulated CONGEST algorithm.
	Rounds int
	// Transcript is the concatenation of the encoded wire messages that
	// crossed the (Un, Vn) cut, in canonical delivery order — the actual
	// bit string Alice and Bob exchange to simulate the run. Its length IS
	// the communication cost; nothing here is a declared size.
	Transcript *bitstring.Bits
	// CutBits is Transcript.Len(): the total traffic that crossed the cut.
	CutBits int
	// Protocol is the induced two-party cost: 2 messages per round in
	// which cut traffic occurred (one per direction), each of size at most
	// b * bandwidth bits.
	Protocol comm.Metrics
}

// TwoPartyFromCongest implements the simulation of Theorem 10: Alice
// (holding the Un side and x) and Bob (holding the Vn side and y) jointly
// run the classical exact-diameter algorithm on Gn(x, y), exchanging only
// the traffic of the b cut edges. The observer copies every encoded message
// crossing the cut into the transcript bit-for-bit, so the decided DISJ
// value comes with the real communication string, not an estimate. The run
// fails if the algorithm's diameter output falls strictly between d1 and d2
// (impossible for a correct reduction).
func TwoPartyFromCongest(red *Reduction, x, y *bitstring.Bits, engine ...congest.Option) (SimulationResult, error) {
	res := SimulationResult{Transcript: bitstring.New(0)}
	g, err := red.Build(x, y)
	if err != nil {
		return res, err
	}
	side := red.SideOf()
	// The simulated algorithm is a composition of phases, each with round
	// numbering restarting at 1; the engine signals every phase start by
	// invoking the observer with round 0, so keying by (epoch, round)
	// keeps the per-round traffic of distinct phases apart.
	type slot struct{ epoch, round int }
	perRound := map[slot][2]int{} // bits crossing per direction
	epoch := 0
	observer := func(round, from, to, bits int, wire congest.WireView) {
		if round == 0 {
			epoch++ // run boundary marker, carries no traffic
			return
		}
		if side[from] == side[to] {
			return
		}
		if wire.Len() != bits {
			panic(fmt.Sprintf("reduction: observer bits %d != wire length %d", bits, wire.Len()))
		}
		for i := 0; i < bits; i++ {
			res.Transcript.AppendBit(wire.Bit(i))
		}
		s := slot{epoch, round}
		e := perRound[s]
		e[side[from]] += bits
		perRound[s] = e
	}
	opts := append([]congest.Option{congest.WithObserver(observer)}, engine...)
	out, err := congest.ClassicalExactDiameter(g, opts...)
	if err != nil {
		return res, err
	}
	res.Rounds = out.Metrics.Rounds
	res.CutBits = res.Transcript.Len()
	switch {
	case out.Diameter <= red.D1:
		res.Disj = 1
	case out.Diameter >= red.D2:
		res.Disj = 0
	default:
		return res, fmt.Errorf("reduction %s: diameter %d strictly between %d and %d",
			red.Name, out.Diameter, red.D1, red.D2)
	}
	// Alice and Bob exchange one message per direction per round with cut
	// traffic; message size is the larger of the actual traffic and one
	// bit (a round marker).
	for _, e := range perRound {
		for dir := 0; dir < 2; dir++ {
			bits := e[dir]
			if bits == 0 {
				bits = 1
			}
			res.Protocol.Messages++
			res.Protocol.Qubits += bits
			if bits > res.Protocol.MaxQubits {
				res.Protocol.MaxQubits = bits
			}
		}
	}
	return res, nil
}

// MaxCutTrafficPerRound returns the maximum possible cut traffic per round
// for the reduction under the given graph's default bandwidth: b edges
// times bandwidth bits, the O(b log n) factor of Theorem 10.
func MaxCutTrafficPerRound(red *Reduction) int {
	return red.B * congest.DefaultBandwidth(red.Base.N())
}

// LowerBoundRounds evaluates the Theorem 10 bound Ω(sqrt(k/b)) and the
// Theorem 3 bound Ω(sqrt(k*d/(b+s))) for given parameters, up to the
// suppressed polylog factors (set logFactor to 1 for the raw value).
func LowerBoundRounds(k, b, d, s int) (theorem2 float64, theorem3 float64) {
	t2 := math.Sqrt(float64(k) / float64(b))
	t3 := math.Sqrt(float64(k) * float64(d) / float64(b+s))
	return t2, t3
}
