// Tradeoff demo: the bounded-round quantum communication complexity of
// disjointness (the paper's Theorem 5, from [BGK+15]). Sweeps the message
// budget r and prints the measured communication of the blocked
// distributed-Grover protocol: ~k/r when interaction is scarce, minimal
// near r = sqrt(k), growing like r beyond.
package main

import (
	"fmt"
	"log"

	"qcongest"
)

func main() {
	const k = 4096
	points, err := qcongest.MeasureDisjTradeoff(k, []int{8, 16, 32, 64, 128, 256}, 20, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DISJ_k with k = %d (sqrt(k) = 64)\n\n", k)
	fmt.Printf("%10s %8s %10s %12s\n", "budget r", "blocks", "messages", "qubits sent")
	for _, p := range points {
		fmt.Printf("%10d %8d %10d %12d\n", p.MessageBudget, p.Blocks, p.Messages, p.Qubits)
	}
	fmt.Println("\nThe U-shaped curve is the Õ(k/r + r) tradeoff of Theorem 5;")
	fmt.Println("its transport through the Figure 8 graphs yields Theorem 3's")
	fmt.Println("Ω(sqrt(nD)/s) round lower bound for memory-s quantum algorithms.")
}
