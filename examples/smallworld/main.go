// Small-world scenario: a data-center-style overlay network with many
// nodes but tiny diameter — the paper's motivating regime, where even
// deciding "diameter 2 or 3" costs Theta(n) rounds classically while the
// quantum algorithm needs only Õ(sqrt(n)).
package main

import (
	"fmt"
	"log"

	"qcongest"
)

func main() {
	for _, n := range []int{48, 96, 192} {
		g := qcongest.SmallWorld(n, 3, 0.3, int64(n))
		truth, err := g.Diameter()
		if err != nil {
			log.Fatal(err)
		}

		classical, err := qcongest.ClassicalExactDiameter(g)
		if err != nil {
			log.Fatal(err)
		}
		quantum, err := qcongest.QuantumExactDiameter(g, qcongest.QuantumOptions{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%4d D=%d | classical rounds=%6d | quantum rounds=%6d (correct=%v)\n",
			n, truth, classical.Metrics.Rounds, quantum.Rounds, quantum.Diameter == truth)
	}
	fmt.Println("\nClassical rounds grow linearly in n; quantum rounds grow ~sqrt(n).")
}
