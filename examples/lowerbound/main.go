// Lower-bound demo: why no classical algorithm can beat Theta(n), and
// where the quantum Omega(sqrt(n)) barrier comes from. Builds the Theorem 8
// reduction, shows that the diameter of G_n(x, y) encodes DISJ(x, y), and
// runs the actual CONGEST algorithm as a two-party protocol (Theorem 10).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"qcongest"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	red, err := qcongest.NewHW12Reduction(4) // n = 18, k = 16
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 8 reduction: n=%d nodes, b=%d cut edges, k=%d DISJ bits\n\n",
		red.Base.N(), red.B, red.K)

	for trial := 0; trial < 4; trial++ {
		var x, y *qcongest.Bits
		if trial%2 == 0 {
			x, y = qcongest.RandomDisjointPair(red.K, rng)
		} else {
			x, y = qcongest.RandomIntersectingPair(red.K, rng)
		}
		g, err := red.Build(x, y)
		if err != nil {
			log.Fatal(err)
		}
		diam, err := g.Diameter()
		if err != nil {
			log.Fatal(err)
		}
		sim, err := qcongest.TwoPartyFromCongest(red, x, y)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("x=%s y=%s\n", x, y)
		fmt.Printf("  DISJ=%d  diameter(Gn(x,y))=%d  two-party: %d messages, %d bits over the cut\n",
			qcongest.Disj(x, y), diam, sim.Protocol.Messages, sim.CutBits)
	}

	fmt.Println("\nAny diameter algorithm faster than the DISJ communication bound")
	fmt.Println("would violate [BGK+15]; that is the engine behind Theorems 2 and 3.")
}
