// Metropolis: a sparse million-vertex grid, end to end. The seed of this
// repository simulated CONGEST networks of a few hundred vertices; this
// example builds a 1000x1000 grid (one allocation-lean generator call),
// packs it into CSR form for a memory-frugal distance oracle, and then runs
// a real distributed BFS flood over all 10^6 nodes on the frontier
// scheduler — the engine executes only the expanding wave each round, so
// the wall-clock cost is the ~4M delivered messages, not the ~2 x 10^9
// vertex-round pairs the dense engine would grind through.
//
// The flood program is written against the public CONGEST programming
// layer (a custom wire kind from the user-reserved range plus the
// CongestScheduled activity contract), so it doubles as a template for
// frontier-friendly user programs.
//
//	go run ./examples/metropolis            # 1M vertices, frontier
//	go run ./examples/metropolis -side 300  # smaller
//	go run ./examples/metropolis -side 300 -sched dense
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"qcongest"
)

// distMsg carries a BFS distance, pre-incremented by the sender. Values
// are < n, so the payload is one vertex-id-sized field.
type distMsg struct{ D int }

const kindDist = qcongest.MessageKind(18) // user-reserved range 18..31

func (m *distMsg) WireKind() qcongest.MessageKind     { return kindDist }
func (m *distMsg) MarshalWire(w *qcongest.WireWriter) { w.WriteID(m.D, w.N) }
func (m *distMsg) UnmarshalWire(r *qcongest.WireReader) {
	m.D = r.ReadID(r.N)
}

func init() {
	qcongest.RegisterMessageKind(kindDist, "metro-dist", func() qcongest.WireMessage { return new(distMsg) })
}

// floodNode learns its BFS distance from vertex 0 and relays it once: the
// textbook wave, written frontier-style. Only the source acts
// spontaneously (round 1); everything else is message-driven, which is
// exactly what NextWake tells the scheduler.
type floodNode struct {
	dist int // -1 until reached
	pend bool
	tx   distMsg
	rx   distMsg
}

func (f *floodNode) Send(env *qcongest.CongestEnv, out *qcongest.Outbox) {
	if env.ID == 0 && f.dist == -1 {
		f.dist = 0
		f.pend = true
	}
	if !f.pend {
		return
	}
	f.pend = false
	f.tx.D = f.dist + 1
	out.Broadcast(env.Neighbors, &f.tx)
}

func (f *floodNode) Receive(env *qcongest.CongestEnv, inbox []qcongest.Inbound) {
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != kindDist || in.Decode(env, &f.rx) != nil {
			continue
		}
		if f.dist == -1 || f.rx.D < f.dist {
			f.dist = f.rx.D
			f.pend = true
		}
	}
}

func (f *floodNode) Done() bool { return f.dist >= 0 && !f.pend }

// NextWake implements qcongest.CongestScheduled.
func (f *floodNode) NextWake(env *qcongest.CongestEnv, round int) int {
	if env.ID == 0 && f.dist == -1 {
		return 1 // seed the wave
	}
	if f.pend {
		return round + 1 // relay next round
	}
	return 0 // congest.NeverWake: message-driven
}

func main() {
	var (
		side    = flag.Int("side", 1000, "grid side (side*side vertices)")
		workers = flag.Int("workers", 0, "engine workers (0 = auto)")
		sched   = flag.String("sched", "frontier", "round scheduler: frontier|dense")
	)
	flag.Parse()

	// 1. Build: the generator preallocates the adjacency arena, so even
	// the million-vertex grid is a handful of allocations.
	start := time.Now()
	g := qcongest.Grid(*side, *side)
	buildT := time.Since(start)
	fmt.Printf("grid %dx%d: n=%d m=%d built in %v\n", *side, *side, g.N(), g.M(), buildT)

	// 2. Oracle: pack into CSR (three flat int32 arrays) and BFS from the
	// corner without allocating per-vertex structures.
	start = time.Now()
	csr, err := g.BuildCSR()
	if err != nil {
		log.Fatal(err)
	}
	dist := make([]int32, g.N())
	queue := make([]int32, g.N())
	reached, ecc := csr.BFSInto(0, dist, queue)
	fmt.Printf("csr oracle: reached %d vertices, ecc(corner)=%d in %v\n", reached, ecc, time.Since(start))

	// 3. Topology: validate once; the engine runs on the packed arenas.
	start = time.Now()
	topo, err := qcongest.NewCongestTopology(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology built in %v\n", time.Since(start))

	var schedOpt qcongest.EngineScheduler
	switch *sched {
	case "frontier":
		schedOpt = qcongest.SchedulerFrontier
	case "dense":
		schedOpt = qcongest.SchedulerDense
		fmt.Println("note: the dense scheduler executes every vertex every round — expect minutes at side=1000")
	default:
		log.Fatalf("unknown scheduler %q", *sched)
	}

	// 4. Run the distributed flood.
	nw := qcongest.NewCongestNetworkOn(topo, func(v int) qcongest.CongestNode { return &floodNode{dist: -1} },
		qcongest.WithWorkers(*workers), qcongest.WithScheduler(schedOpt))
	start = time.Now()
	if err := nw.Run(4*(*side) + 16); err != nil {
		log.Fatal(err)
	}
	runT := time.Since(start)
	m := nw.Metrics()
	fmt.Printf("flood [%s]: rounds=%d messages=%d bits=%d in %v (%.0f rounds/s, %.2fM msgs/s)\n",
		*sched, m.Rounds, m.Messages, m.Bits, runT,
		float64(m.Rounds)/runT.Seconds(), float64(m.Messages)/runT.Seconds()/1e6)

	// 5. Verify the distributed result against the oracle, every vertex.
	bad := 0
	for v := 0; v < g.N(); v++ {
		if nw.Node(v).(*floodNode).dist != int(dist[v]) {
			bad++
		}
	}
	if bad != 0 {
		log.Fatalf("distributed flood disagrees with the CSR oracle at %d vertices", bad)
	}
	fmt.Printf("verified: all %d distributed distances match the CSR oracle\n", g.N())
}
