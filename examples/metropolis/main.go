// Metropolis: a sparse multi-million-vertex grid, end to end. The seed of
// this repository simulated CONGEST networks of a few hundred vertices;
// this example streams a grid's edges straight into CSR arenas (no
// per-vertex adjacency slices ever exist), builds the engine Topology
// directly from the packed form, and then runs a real distributed BFS
// flood over every node on the frontier scheduler — the engine executes
// only the expanding wave each round, so the wall-clock cost is the
// delivered messages, not the n x rounds vertex-round pairs the dense
// engine would grind through. At -n 10000000 the whole build (stream,
// oracle, topology) is a few seconds; the dense engine could not even
// touch that regime.
//
// The flood program is written against the public CONGEST programming
// layer (a custom wire kind from the user-reserved range plus the
// CongestScheduled activity contract), so it doubles as a template for
// frontier-friendly user programs.
//
//	go run ./examples/metropolis                 # 1M vertices, frontier
//	go run ./examples/metropolis -n 10000000     # 10M vertices
//	go run ./examples/metropolis -side 300       # smaller
//	go run ./examples/metropolis -side 300 -sched dense
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"qcongest"
)

// distMsg carries a BFS distance, pre-incremented by the sender. Values
// are < n, so the payload is one vertex-id-sized field.
type distMsg struct{ D int }

const kindDist = qcongest.MessageKind(20) // user-reserved range 20..31

func (m *distMsg) WireKind() qcongest.MessageKind     { return kindDist }
func (m *distMsg) MarshalWire(w *qcongest.WireWriter) { w.WriteID(m.D, w.N) }
func (m *distMsg) UnmarshalWire(r *qcongest.WireReader) {
	m.D = r.ReadID(r.N)
}

func init() {
	qcongest.RegisterMessageKind(kindDist, "metro-dist", func() qcongest.WireMessage { return new(distMsg) })
}

// floodNode learns its BFS distance from vertex 0 and relays it once: the
// textbook wave, written frontier-style. Only the source acts
// spontaneously (round 1); everything else is message-driven, which is
// exactly what NextWake tells the scheduler.
type floodNode struct {
	dist int // -1 until reached
	pend bool
	tx   distMsg
	rx   distMsg
}

func (f *floodNode) Send(env *qcongest.CongestEnv, out *qcongest.Outbox) {
	if env.ID == 0 && f.dist == -1 {
		f.dist = 0
		f.pend = true
	}
	if !f.pend {
		return
	}
	f.pend = false
	f.tx.D = f.dist + 1
	out.Broadcast(env.Neighbors, &f.tx)
}

func (f *floodNode) Receive(env *qcongest.CongestEnv, inbox []qcongest.Inbound) {
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != kindDist || in.Decode(env, &f.rx) != nil {
			continue
		}
		if f.dist == -1 || f.rx.D < f.dist {
			f.dist = f.rx.D
			f.pend = true
		}
	}
}

func (f *floodNode) Done() bool { return f.dist >= 0 && !f.pend }

// NextWake implements qcongest.CongestScheduled.
func (f *floodNode) NextWake(env *qcongest.CongestEnv, round int) int {
	if env.ID == 0 && f.dist == -1 {
		return 1 // seed the wave
	}
	if f.pend {
		return round + 1 // relay next round
	}
	return 0 // congest.NeverWake: message-driven
}

func main() {
	var (
		side       = flag.Int("side", 1000, "grid side (side*side vertices)")
		nFlag      = flag.Int("n", 0, "target vertex count (overrides -side with floor(sqrt(n)))")
		workers    = flag.Int("workers", 0, "engine workers (0 = auto)")
		sched      = flag.String("sched", "frontier", "round scheduler: frontier|dense")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	)
	flag.Parse()
	if *nFlag > 0 {
		*side = int(math.Sqrt(float64(*nFlag)))
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Print("memprofile: ", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print("memprofile: ", err)
			}
		}()
	}

	// 1. Build: stream the grid's edges straight into the packed CSR form —
	// a degree pass and a placement pass over the generator's edge order,
	// three array allocations total, no intermediate adjacency slices.
	start := time.Now()
	csr, err := qcongest.BuildCSRFromStream((*side)*(*side), qcongest.GridEdges(*side, *side))
	if err != nil {
		log.Fatal(err)
	}
	n := csr.N()
	buildT := time.Since(start)
	fmt.Printf("grid %dx%d: n=%d m=%d streamed into CSR in %v\n", *side, *side, n, csr.M(), buildT)

	// 2. Oracle: BFS from the corner on the packed form, into two
	// preallocated buffers.
	start = time.Now()
	dist := make([]int32, n)
	queue := make([]int32, n)
	reached, ecc := csr.BFSInto(0, dist, queue)
	fmt.Printf("csr oracle: reached %d vertices, ecc(corner)=%d in %v\n", reached, ecc, time.Since(start))

	// 3. Topology: built directly on the CSR — the offsets array is shared,
	// the connectivity check is the same allocation-lean BFS, and no
	// per-vertex graph object ever exists.
	start = time.Now()
	topo, err := qcongest.NewCongestTopologyFromCSR(csr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology built in %v (total build %v)\n", time.Since(start), buildT+time.Since(start))

	var schedOpt qcongest.EngineScheduler
	switch *sched {
	case "frontier":
		schedOpt = qcongest.SchedulerFrontier
	case "dense":
		schedOpt = qcongest.SchedulerDense
		fmt.Println("note: the dense scheduler executes every vertex every round — expect minutes at side=1000")
	default:
		log.Fatalf("unknown scheduler %q", *sched)
	}

	// 4. Run the distributed flood.
	nw := qcongest.NewCongestNetworkOn(topo, func(v int) qcongest.CongestNode { return &floodNode{dist: -1} },
		qcongest.WithWorkers(*workers), qcongest.WithScheduler(schedOpt))
	start = time.Now()
	if err := nw.Run(4*(*side) + 16); err != nil {
		log.Fatal(err)
	}
	runT := time.Since(start)
	m := nw.Metrics()
	fmt.Printf("flood [%s]: rounds=%d messages=%d bits=%d in %v (%.0f rounds/s, %.2fM msgs/s)\n",
		*sched, m.Rounds, m.Messages, m.Bits, runT,
		float64(m.Rounds)/runT.Seconds(), float64(m.Messages)/runT.Seconds()/1e6)

	// 5. Verify the distributed result against the oracle, every vertex.
	bad := 0
	for v := 0; v < n; v++ {
		if nw.Node(v).(*floodNode).dist != int(dist[v]) {
			bad++
		}
	}
	if bad != 0 {
		log.Fatalf("distributed flood disagrees with the CSR oracle at %d vertices", bad)
	}
	fmt.Printf("verified: all %d distributed distances match the CSR oracle\n", n)
}
