// Quickstart: build a network, compute its diameter classically and
// quantumly, and compare the measured round complexities.
package main

import (
	"fmt"
	"log"

	"qcongest"
)

func main() {
	// A 60-node network with small diameter: the regime where the quantum
	// algorithm's sqrt(nD) scaling shines over the classical Theta(n).
	g, err := qcongest.LollipopWithDiameter(60, 4)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := g.Diameter()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: n=%d m=%d diameter=%d\n\n", g.N(), g.M(), truth)

	classical, err := qcongest.ClassicalExactDiameter(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classical exact [PRT12]:   diameter=%d rounds=%d\n",
		classical.Diameter, classical.Metrics.Rounds)

	quantum, err := qcongest.QuantumExactDiameter(g, qcongest.QuantumOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quantum exact [Theorem 1]: diameter=%d rounds=%d "+
		"(iterations=%d, %d qubits/node)\n",
		quantum.Diameter, quantum.Rounds, quantum.Iterations, quantum.NodeQubits)

	fmt.Println("\nThe quantum round count grows like sqrt(n*D); rerun with a")
	fmt.Println("larger n (see cmd/table1) to watch the scaling separation.")
}
