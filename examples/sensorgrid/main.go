// Sensor-grid scenario: a torus of sensors whose diameter grows with the
// grid side. Exercises the D-dependence of Theorem 1 (rounds ~ sqrt(nD))
// and the 3/2-approximation of Theorem 4 (rounds ~ cbrt(nD) + D), which
// wins when an exact answer is not required.
package main

import (
	"fmt"
	"log"

	"qcongest"
)

func main() {
	for _, side := range []int{5, 7, 9} {
		g := qcongest.Torus(side, side)
		truth, err := g.Diameter()
		if err != nil {
			log.Fatal(err)
		}

		exact, err := qcongest.QuantumExactDiameter(g, qcongest.QuantumOptions{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		approx, err := qcongest.QuantumApproxDiameter(g, qcongest.QuantumOptions{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%dx%d torus (n=%d, D=%d):\n", side, side, g.N(), truth)
		fmt.Printf("  exact  [Thm 1]: value=%2d rounds=%6d\n", exact.Diameter, exact.Rounds)
		fmt.Printf("  approx [Thm 4]: value=%2d rounds=%6d (3/2 guarantee: %d <= D <= %d)\n",
			approx.Diameter, approx.Rounds, approx.Diameter, (3*approx.Diameter)/2+1)
	}
}
