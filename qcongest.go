// Package qcongest is the public API of this reproduction of "Sublinear-
// Time Quantum Computation of the Diameter in CONGEST Networks" (Le Gall &
// Magniez, PODC 2018).
//
// The package exposes four layers:
//
//   - graph construction and generators (Graph, NewGraph, Path, ...);
//   - the classical CONGEST baselines (ClassicalExactDiameter — the O(n)
//     algorithm of [PRT12], ClassicalApproxDiameter — the Õ(sqrt(n)+D)
//     3/2-approximation of [HPRW14]);
//   - the paper's quantum algorithms (QuantumExactDiameter — Theorem 1,
//     Õ(sqrt(nD)) rounds; QuantumExactDiameterSimple — the Section 3.1
//     variant; QuantumApproxDiameter — Theorem 4, Õ(cbrt(nD)+D) rounds) and
//     the distance-parameter suite built on the same Evaluation machinery
//     (Radius, Eccentricities, WeightedDiameter, WeightedRadius — with
//     weighted graphs via WithWeights / Graph.AddWeightedEdge);
//   - the lower-bound machinery (NewHW12Reduction, NewACHK16Reduction,
//     BlockedGroverDisj, the G_d simulation of Theorem 11).
//
// All four layers execute on the shared CONGEST round engine
// (internal/congest): a frontier scheduler over a packed CSR topology that
// executes, each round, only the vertices that can act (message receivers,
// self-scheduled programs, and — conservatively — programs without the
// activity contract), sharded over a pool of workers. The execution is
// bit-for-bit deterministic for any worker count and either scheduler, so
// WithWorkers and WithScheduler only trade wall-clock time. Every message
// is a typed wire message encoded to real bits, and all bandwidth
// accounting is derived from the encoded lengths (see the CONGEST
// programming layer below: CongestNode, Outbox, WireMessage,
// RegisterMessageKind). Engine options (WithWorkers, WithScheduler,
// WithBandwidth, WithStrictAccounting) are accepted by every classical
// entry point and by the Engine field of QuantumOptions.
//
// Repeated executions run on sessions (CongestTopology, CongestSession,
// Pool): the network is built once and every further run is a
// Reset-and-rerun on recycled state, bit-identical to a fresh build.
// The quantum algorithms amortize all per-Evaluation setup this way;
// QuantumOptions.Parallel batches independent Evaluations onto cloned
// sessions concurrently, and QuantumOptions.Lanes fuses independent
// Evaluations into multi-lane engine passes (CongestMultiSession) that
// share each round's scheduling and topology traversal — both
// deterministically, like every other knob.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results versus the paper's claims.
package qcongest

import (
	"math/rand"

	"qcongest/internal/bitstring"
	"qcongest/internal/comm"
	"qcongest/internal/congest"
	"qcongest/internal/core"
	"qcongest/internal/experiments"
	"qcongest/internal/graph"
	"qcongest/internal/reduction"
	"qcongest/internal/simulation"
)

// Graph is an undirected network topology.
type Graph = graph.Graph

// Graph constructors.
var (
	// NewGraph returns an empty graph with n vertices.
	NewGraph = graph.New
	// Path, Cycle, Star, Complete, Grid, Torus, Hypercube and
	// CompleteBinaryTree build the standard families.
	Path               = graph.Path
	Cycle              = graph.Cycle
	Star               = graph.Star
	Complete           = graph.Complete
	Grid               = graph.Grid
	Torus              = graph.Torus
	Hypercube          = graph.Hypercube
	CompleteBinaryTree = graph.CompleteBinaryTree
	// Barbell, Caterpillar, RandomConnected, RandomTree, RandomRegular,
	// SmallWorld and LollipopWithDiameter build experiment workloads.
	Barbell              = graph.Barbell
	Caterpillar          = graph.Caterpillar
	RandomConnected      = graph.RandomConnected
	RandomTree           = graph.RandomTree
	RandomRegular        = graph.RandomRegular
	SmallWorld           = graph.SmallWorld
	LollipopWithDiameter = graph.LollipopWithDiameter
	// WithWeights returns a weighted copy of a graph with uniform random
	// edge weights in [1, maxW]; the weighted distance-parameter suite
	// (Radius, Eccentricities, WeightedDiameter, the Dijkstra /
	// FloydWarshall oracles) follows the graph's metric.
	WithWeights = graph.WithWeights
)

// CSR is the packed, read-only adjacency form of a graph: three flat int32
// arrays instead of per-vertex slices, the compact representation the
// scale path runs on.
type CSR = graph.CSR

// EdgeStream enumerates a graph's undirected edges through a callback; it
// must be deterministic and re-runnable (BuildCSRFromStream runs it twice).
type EdgeStream = graph.EdgeStream

// Streamed graph construction: the O(1)-allocations-per-graph build path
// for topologies too large to materialize as per-vertex adjacency slices.
var (
	// BuildCSRFromStream packs the edges an EdgeStream emits straight into
	// CSR arenas (degree pass, then placement) — a 10M-vertex grid builds
	// in seconds with three array allocations.
	BuildCSRFromStream = graph.BuildCSRFromStream
	// GridEdges and PathEdges are the standard-family edge streams.
	GridEdges = graph.GridEdges
	PathEdges = graph.PathEdges
)

// ClassicalResult is the outcome of a classical CONGEST algorithm run.
type ClassicalResult = congest.ExactResult

// EngineOption configures the CONGEST round engine (worker count,
// bandwidth, observers, strict accounting). Every option is deterministic:
// for a fixed seed the computed outputs, round counts and Metrics are
// identical whatever the engine configuration, with the sole exception of
// WithBandwidth, which changes the model itself.
type EngineOption = congest.Option

// EngineScheduler selects the engine's round-execution strategy; see
// WithScheduler.
type EngineScheduler = congest.Scheduler

// Scheduler strategies.
const (
	// SchedulerFrontier (the default) executes, each round, only the
	// vertices that can act: message receivers, self-scheduled programs
	// (CongestScheduled), and programs without the contract (conservative
	// always-active default). Bit-identical to dense, but wall-clock
	// scales with the algorithm's total work instead of n x rounds.
	SchedulerFrontier = congest.SchedulerFrontier
	// SchedulerDense executes every vertex every round — the original
	// strategy, retained as a selectable oracle.
	SchedulerDense = congest.SchedulerDense
)

// CongestScheduled is the optional activity contract a custom node program
// implements to benefit from frontier scheduling: NextWake reports the
// next round the vertex must run without receiving a message (or
// congest.NeverWake when it is purely message-driven). Programs that do
// not implement it are executed every round, exactly as before.
type CongestScheduled = congest.Scheduled

// Engine options.
var (
	// WithWorkers shards round execution over k goroutines (k <= 0 selects
	// the automatic rule; 1 runs serially). Output is identical for all k.
	WithWorkers = congest.WithWorkers
	// WithScheduler selects dense or frontier round execution; outputs,
	// Metrics, observer traces and errors are bit-identical either way.
	WithScheduler = congest.WithScheduler
	// WithBandwidth overrides the per-edge per-round bit budget.
	WithBandwidth = congest.WithBandwidth
	// WithStrictAccounting cross-checks declared size formulas
	// (WireBitsDeclarer) against encoded lengths and fails on mismatch.
	WithStrictAccounting = congest.WithStrictAccounting
	// WithCongestObserver installs a per-delivery callback that sees each
	// message's encoded bits (used by the lower-bound transcripts).
	WithCongestObserver = congest.WithObserver
)

// The CONGEST programming layer: write node programs against typed wire
// messages and run them on the shared deterministic engine. Every message
// a program emits is encoded to real bits (kind tag + payload, widths
// derived from n), and all bandwidth accounting is the encoded length —
// declared sizes are never trusted.
type (
	// CongestNetwork couples a graph with one node program per vertex.
	CongestNetwork = congest.Network
	// CongestNode is a per-node program (Send/Receive/Done).
	CongestNode = congest.Node
	// CongestEnv is the read-only per-node view the engine passes in.
	CongestEnv = congest.Env
	// CongestMetrics aggregates the measured cost of a run.
	CongestMetrics = congest.Metrics
	// Outbox stages a node's outbound messages; Put encodes immediately.
	Outbox = congest.Outbox
	// Inbound is a received message; Decode unpacks its payload.
	Inbound = congest.Inbound
	// WireMessage is the marshalling contract every message implements.
	WireMessage = congest.WireMessage
	// WireBitsDeclarer optionally states a size formula for strict checks.
	WireBitsDeclarer = congest.BitsDeclarer
	// WireWriter / WireReader are the packed bit codecs of the format.
	WireWriter = congest.Writer
	WireReader = congest.Reader
	// WireView is a read-only window onto one encoded message.
	WireView = congest.WireView
	// MessageKind tags a wire-message type; kinds 20..31 are free for
	// external programs.
	MessageKind = congest.Kind
)

// Execution sessions: the reusable-harness layer. A CongestTopology caches
// everything derived from a graph (validated once, shared freely); a
// CongestSession builds a network and its engine once and re-runs it via
// Reset — bit-for-bit identical to a fresh network, for every worker count
// — which is how the quantum algorithms amortize setup over the hundreds
// of Evaluations an optimization performs; a Pool clones session-backed
// contexts to run independent executions concurrently with deterministic
// result ordering. See DESIGN.md, "Execution sessions".
type (
	// CongestTopology is the validated, shareable view of a graph.
	CongestTopology = congest.Topology
	// CongestSession is a build-once, reset-and-rerun network.
	CongestSession = congest.Session
	// CongestResettable is the lifecycle contract reusable node programs
	// implement (ResetNode must restore the constructed state).
	CongestResettable = congest.Resettable
)

// Lane-fused execution: a CongestMultiSession runs k independent copies
// (lanes) of a node program in lockstep through a single engine pass — one
// frontier iteration per round over the union of the lanes' frontiers, one
// topology-row load per visited vertex feeding every lane's state. Each
// lane's outputs, Metrics, errors and observer traces are bit-identical to
// a solo CongestSession run. The quantum layer uses it through
// QuantumOptions.Lanes; custom programs can drive it directly. See
// DESIGN.md, "Lane-fused execution".
type (
	// CongestMultiSession is the k-lane counterpart of CongestSession.
	CongestMultiSession = congest.MultiSession
	// CongestMultiWalkSession / CongestMultiEccSession are the lane-fused
	// counterparts of the Figure 2 Evaluation sessions: a batch of token
	// walks, and a batch of wave+convergecast eccentricity computations.
	CongestMultiWalkSession = congest.MultiWalkSession
	CongestMultiEccSession  = congest.MultiEccSession
	// LaneError attributes a batch failure to the smallest failing lane;
	// its Error() string is exactly the solo session's error.
	LaneError = congest.LaneError
)

// Lane-fused session constructors.
var (
	// NewCongestMultiSession builds a k-lane session; makeNode constructs
	// the program of vertex v in a given lane.
	NewCongestMultiSession = congest.NewMultiSession
	// NewCongestMultiWalkSession and NewCongestMultiEccSession build the
	// lane-fused Evaluation sessions the quantum algorithms run on when
	// QuantumOptions.Lanes > 1.
	NewCongestMultiWalkSession = congest.NewMultiWalkSession
	NewCongestMultiEccSession  = congest.NewMultiEccSession
)

// Pool runs independent jobs concurrently on cloned execution contexts;
// results are keyed by job index and the error reported is the one at the
// smallest failing index, so outcomes are deterministic regardless of
// scheduling.
type Pool[C any] = congest.Pool[C]

// NewPool builds a pool of `workers` contexts produced by factory.
func NewPool[C any](workers int, factory func(i int) (C, error)) (*Pool[C], error) {
	return congest.NewPool(workers, factory)
}

// Session helpers.
var (
	// NewCongestTopology validates a graph and caches its adjacency tables.
	NewCongestTopology = congest.NewTopology
	// NewCongestTopologyFromCSR builds a topology straight from a packed
	// CSR (see BuildCSRFromStream) without materializing a Graph.
	NewCongestTopologyFromCSR = congest.NewTopologyFromCSR
	// NewCongestSession builds a reusable session of node programs.
	NewCongestSession = congest.NewSession
	// NewCongestNetworkOn builds a one-shot network on a cached topology.
	NewCongestNetworkOn = congest.NewNetworkOn
	// ParallelForEach runs jobs on up to `workers` goroutines with the
	// Pool's determinism contract.
	ParallelForEach = congest.ForEach
)

// Wire-format helpers.
var (
	// NewCongestNetwork builds a network of node programs over a graph.
	NewCongestNetwork = congest.NewNetwork
	// RegisterMessageKind registers a custom message kind with a name and
	// a decode factory; the engine refuses unregistered kinds.
	RegisterMessageKind = congest.RegisterKind
	// BitsForID returns the bits needed to name one of n values (0 for
	// n <= 1).
	BitsForID = congest.BitsForID
	// DefaultCongestBandwidth is the per-edge per-round budget used when
	// none is configured: Theta(log n).
	DefaultCongestBandwidth = congest.DefaultBandwidth
)

// ClassicalExactDiameter computes the exact diameter with the classical
// O(n)-round baseline of [PRT12] (Table 1 row 1, classical column).
func ClassicalExactDiameter(g *Graph, opts ...EngineOption) (ClassicalResult, error) {
	return congest.ClassicalExactDiameter(g, opts...)
}

// ClassicalApproxDiameter computes the [HPRW14] 3/2-approximation in
// Õ(sqrt(n)+D) rounds. s <= 0 selects the default sample size sqrt(n).
func ClassicalApproxDiameter(g *Graph, s int, seed int64, opts ...EngineOption) (ClassicalResult, error) {
	return congest.ClassicalApproxDiameter(g, s, seed, opts...)
}

// QuantumResult is the outcome of a quantum diameter computation.
type QuantumResult = core.Result

// QuantumOptions configures the quantum algorithms.
type QuantumOptions = core.Options

// QuantumExactDiameter runs the paper's main algorithm (Theorem 1):
// exact diameter in Õ(sqrt(n·D)) rounds with O((log n)^2) qubits per node.
func QuantumExactDiameter(g *Graph, opts QuantumOptions) (QuantumResult, error) {
	return core.ExactDiameter(g, opts)
}

// QuantumExactDiameterSimple runs the Section 3.1 variant: Õ(sqrt(n)·D)
// rounds.
func QuantumExactDiameterSimple(g *Graph, opts QuantumOptions) (QuantumResult, error) {
	return core.ExactDiameterSimple(g, opts)
}

// QuantumApproxDiameter runs the Theorem 4 algorithm: a 3/2-approximation
// in Õ(cbrt(n·D) + D) rounds.
func QuantumApproxDiameter(g *Graph, opts QuantumOptions) (QuantumResult, error) {
	return core.ApproxDiameter(g, opts)
}

// The distance-parameter suite: the same Figure 2 Evaluation machinery
// generalized beyond the diameter (radius, all eccentricities, weighted
// graphs — the directions of the Wang–Wu–Yao and Wu–Yao follow-ups). Radius
// and Eccentricities follow the graph's metric: hop distances on unweighted
// graphs, weighted distances on graphs built with AddWeightedEdge or
// WithWeights.

// Radius computes the exact radius by quantum minimum finding over the
// per-vertex eccentricity Evaluations (Õ(sqrt(n)·D) rounds unweighted).
func Radius(g *Graph, opts QuantumOptions) (QuantumResult, error) {
	return core.Radius(g, opts)
}

// WeightedDiameter computes the exact weighted diameter by quantum maximum
// finding over Bellman–Ford-based weighted eccentricity Evaluations. On an
// unweighted graph it degenerates to the hop diameter.
func WeightedDiameter(g *Graph, opts QuantumOptions) (QuantumResult, error) {
	return core.WeightedDiameter(g, opts)
}

// WeightedRadius is WeightedDiameter's minimization twin.
func WeightedRadius(g *Graph, opts QuantumOptions) (QuantumResult, error) {
	return core.WeightedRadius(g, opts)
}

// ApspResult reports an all-pairs shortest-paths sweep with its measured
// CONGEST cost; the Θ(n²) distance table itself is streamed to the APSP
// callback row by row, never materialized.
type ApspResult = core.ApspResult

// APSP computes exact all-pairs weighted shortest-path distances through
// the skeleton distance oracle (the Wang–Wu–Yao / Wu–Yao sublinear
// Evaluation): Õ(sqrt(n) + D) rounds per source after an Õ(sqrt(n)·(sqrt(n)
// + D))-round preprocessing. Rows arrive in source order through
// emit(source, row); the row slice is reused between calls (copy to
// retain), and a nil emit runs the sweep for its round accounting only.
// QuantumOptions.Lanes fuses Evaluations into multi-lane engine passes and
// QuantumOptions.Parallel shards the sweep over cloned sessions; neither
// changes any emitted value. Setting QuantumOptions.Sublinear routes
// WeightedDiameter, WeightedRadius and weighted Eccentricities through the
// same oracle.
func APSP(g *Graph, opts QuantumOptions, emit func(source int, row []int) error) (ApspResult, error) {
	return core.APSP(g, opts, emit)
}

// EccentricitiesResult reports a full eccentricity vector with its measured
// CONGEST cost.
type EccentricitiesResult = core.EccResult

// Eccentricities computes the eccentricity of every vertex by one Evaluation
// per vertex on reused sessions; QuantumOptions.Parallel batches the
// independent Evaluations onto cloned sessions deterministically.
func Eccentricities(g *Graph, opts QuantumOptions) (EccentricitiesResult, error) {
	return core.Eccentricities(g, opts)
}

// The query-framework workloads: beyond distance parameters, any vertex-local
// predicate or value family with an input-independent Evaluation cost can be
// searched, counted, or minimized by the same quantum machinery
// (internal/query). Triangle detection and the minimum tree cut are the two
// built-in examples.

// TriangleResult reports a triangle search or count with its measured cost.
type TriangleResult = core.TriangleResult

// TriangleDetect decides whether the graph contains a triangle by quantum
// search over the vertex-local triangle predicate (one adjacency probe during
// preprocessing, one convergecast per Evaluation).
func TriangleDetect(g *Graph, opts QuantumOptions) (TriangleResult, error) {
	return core.TriangleDetect(g, opts)
}

// TriangleCount lists every vertex lying on a triangle by the quantum
// search-and-exclude loop over the same predicate.
func TriangleCount(g *Graph, opts QuantumOptions) (TriangleResult, error) {
	return core.TriangleCount(g, opts)
}

// CutResult reports a minimum tree cut with its measured cost.
type CutResult = core.CutResult

// MinTreeCut computes the minimum-weight BFS-tree cut by quantum minimum
// finding over the per-subtree crossing weights (a mark flood plus a sum
// convergecast per Evaluation).
func MinTreeCut(g *Graph, opts QuantumOptions) (CutResult, error) {
	return core.MinTreeCut(g, opts)
}

// ClassicalEccentricities computes every vertex's eccentricity classically
// in Theta(n) rounds (the all-initiator wave of [PRT12]).
func ClassicalEccentricities(g *Graph, opts ...EngineOption) ([]int, CongestMetrics, error) {
	return congest.ClassicalEccentricities(g, opts...)
}

// ClassicalWeightedDiameter computes the exact weighted diameter classically
// (one Bellman–Ford Evaluation per vertex on a reused session, Theta(n^2)
// rounds).
func ClassicalWeightedDiameter(g *Graph, opts ...EngineOption) (ClassicalResult, error) {
	return congest.ClassicalWeightedDiameter(g, opts...)
}

// Bits is a packed bit vector (two-party protocol input).
type Bits = bitstring.Bits

// Bit-vector helpers.
var (
	NewBits                = bitstring.New
	BitsFromString         = bitstring.FromString
	Disj                   = bitstring.Disj
	RandomDisjointPair     = bitstring.RandomDisjointPair
	RandomIntersectingPair = bitstring.RandomIntersectingPair
)

// CommMetrics tallies two-party protocol costs.
type CommMetrics = comm.Metrics

// ClassicalDisj runs the trivial k-bit classical protocol.
func ClassicalDisj(x, y *Bits) (int, CommMetrics, error) {
	return comm.ClassicalDisj(x, y)
}

// BlockedGroverDisj runs the bounded-interaction quantum protocol whose
// cost realizes the Theorem 5 tradeoff Õ(k/r + r).
func BlockedGroverDisj(x, y *Bits, blocks int, rng *rand.Rand) (comm.GroverDisjResult, error) {
	return comm.BlockedGroverDisj(x, y, blocks, rng)
}

// MeasureDisjTradeoff sweeps message budgets and reports the measured
// communication curve.
var MeasureDisjTradeoff = comm.MeasureTradeoff

// Reduction is a (b, k, d1, d2)-reduction from disjointness to diameter
// computation (Definition 3).
type Reduction = reduction.Reduction

// Lower-bound constructions and experiments.
var (
	// NewHW12Reduction builds the (Theta(n), Theta(n^2), 2, 3)-reduction
	// of Theorem 8 (Figure 4).
	NewHW12Reduction = reduction.NewHW12
	// NewACHK16Reduction builds the (Theta(log n), Theta(n), 4, 5)-
	// reduction of Theorem 9.
	NewACHK16Reduction = reduction.NewACHK16
	// PathNetwork builds the network G_d of Figure 5.
	PathNetwork = reduction.PathNetwork
	// BuildSubdivided builds G'_n(x, y) of Figure 8.
	BuildSubdivided = reduction.BuildSubdivided
	// TwoPartyFromCongest converts a CONGEST diameter run on Gn(x, y)
	// into a two-party DISJ protocol (Theorem 10).
	TwoPartyFromCongest = reduction.TwoPartyFromCongest
)

// RelayAlgorithm builds a concrete computation on G_d for the Theorem 11
// simulation experiments.
var RelayAlgorithm = simulation.NewRelayAlgorithm

// PathAlgorithm is an r-round computation on the path network G_d.
type PathAlgorithm = simulation.Algorithm

// Experiment drivers (Table 1 and figures); see internal/experiments.
var (
	ExactComparison  = experiments.ExactComparison
	ApproxComparison = experiments.ApproxComparison
	DiameterSweep    = experiments.DiameterSweep
	SuiteComparison  = experiments.SuiteComparison
	Lemma1Coverage   = experiments.Lemma1Coverage
	FormatTable      = experiments.FormatTable
	// FitPower and CrossoverN fit measured round curves and extrapolate
	// the classical/quantum crossover point.
	FitPower   = experiments.FitPower
	CrossoverN = experiments.CrossoverN
)

// Series is a named sweep of round measurements.
type Series = experiments.Series

// Point is one measurement of a sweep.
type Point = experiments.Point
