package qcongest

import (
	"math/rand"
	"testing"
)

// End-to-end smoke test of the public API: every exported entry point runs
// on a small instance.
func TestPublicAPIEndToEnd(t *testing.T) {
	g := RandomConnected(24, 0.1, 1)

	cres, err := ClassicalExactDiameter(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if cres.Diameter != want {
		t.Errorf("classical: %d, want %d", cres.Diameter, want)
	}

	qres, err := QuantumExactDiameter(g, QuantumOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if qres.Diameter > want {
		t.Errorf("quantum overshoots: %d > %d", qres.Diameter, want)
	}
	if qres.Rounds <= 0 || qres.Iterations < 0 {
		t.Errorf("bad accounting: %+v", qres)
	}

	ares, err := ClassicalApproxDiameter(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ares.Diameter > want {
		t.Errorf("approx overshoots: %d", ares.Diameter)
	}

	qa, err := QuantumApproxDiameter(g, QuantumOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if qa.Diameter > want {
		t.Errorf("quantum approx overshoots: %d", qa.Diameter)
	}
}

func TestPublicLowerBoundAPI(t *testing.T) {
	red, err := NewHW12Reduction(2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x, y := RandomIntersectingPair(red.K, rng)
	res, err := TwoPartyFromCongest(red, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disj != 0 {
		t.Errorf("DISJ = %d, want 0", res.Disj)
	}

	gres, err := BlockedGroverDisj(x, y, red.K, rng)
	if err != nil {
		t.Fatal(err)
	}
	if gres.Disj != 0 {
		t.Errorf("grover DISJ = %d, want 0", gres.Disj)
	}

	alg := RelayAlgorithm(3, func(a, b uint64) uint64 { return a ^ b })
	native, err := alg.RunNative(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := alg.RunTwoParty(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range native.R {
		if native.R[i] != sim.State.R[i] {
			t.Fatalf("simulation mismatch at R[%d]", i)
		}
	}
}

func TestLemma1CoveragePublic(t *testing.T) {
	minProb, bound, err := Lemma1Coverage(Path(16))
	if err != nil {
		t.Fatal(err)
	}
	if minProb < bound {
		t.Errorf("coverage %g < bound %g", minProb, bound)
	}
}
