package qcongest

import (
	"math/rand"
	"testing"
)

// End-to-end smoke test of the public API: every exported entry point runs
// on a small instance.
func TestPublicAPIEndToEnd(t *testing.T) {
	g := RandomConnected(24, 0.1, 1)

	cres, err := ClassicalExactDiameter(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if cres.Diameter != want {
		t.Errorf("classical: %d, want %d", cres.Diameter, want)
	}

	qres, err := QuantumExactDiameter(g, QuantumOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if qres.Diameter > want {
		t.Errorf("quantum overshoots: %d > %d", qres.Diameter, want)
	}
	if qres.Rounds <= 0 || qres.Iterations < 0 {
		t.Errorf("bad accounting: %+v", qres)
	}

	ares, err := ClassicalApproxDiameter(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ares.Diameter > want {
		t.Errorf("approx overshoots: %d", ares.Diameter)
	}

	qa, err := QuantumApproxDiameter(g, QuantumOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if qa.Diameter > want {
		t.Errorf("quantum approx overshoots: %d", qa.Diameter)
	}
}

func TestPublicLowerBoundAPI(t *testing.T) {
	red, err := NewHW12Reduction(2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x, y := RandomIntersectingPair(red.K, rng)
	res, err := TwoPartyFromCongest(red, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disj != 0 {
		t.Errorf("DISJ = %d, want 0", res.Disj)
	}

	gres, err := BlockedGroverDisj(x, y, red.K, rng)
	if err != nil {
		t.Fatal(err)
	}
	if gres.Disj != 0 {
		t.Errorf("grover DISJ = %d, want 0", gres.Disj)
	}

	alg := RelayAlgorithm(3, func(a, b uint64) uint64 { return a ^ b })
	native, err := alg.RunNative(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := alg.RunTwoParty(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range native.R {
		if native.R[i] != sim.State.R[i] {
			t.Fatalf("simulation mismatch at R[%d]", i)
		}
	}
}

func TestLemma1CoveragePublic(t *testing.T) {
	minProb, bound, err := Lemma1Coverage(Path(16))
	if err != nil {
		t.Fatal(err)
	}
	if minProb < bound {
		t.Errorf("coverage %g < bound %g", minProb, bound)
	}
}

// A custom wire message defined entirely through the public facade: a ping
// token counting its hops around a cycle. Kinds 16..31 are reserved for
// external programs.
type pingMsg struct{ Hops int }

const kindPing MessageKind = 20

func (m *pingMsg) WireKind() MessageKind       { return kindPing }
func (m *pingMsg) MarshalWire(w *WireWriter)   { w.WriteID(m.Hops, 2*w.N) }
func (m *pingMsg) UnmarshalWire(r *WireReader) { m.Hops = r.ReadID(2 * r.N) }
func (m *pingMsg) DeclaredBits(n int) int      { return 5 + BitsForID(2*n) }

func init() {
	RegisterMessageKind(kindPing, "test-ping", func() WireMessage { return new(pingMsg) })
}

// pingNode forwards the token to its clockwise neighbor until it returns
// to node 0.
type pingNode struct {
	id      int
	holding bool
	hops    int
	done    bool
	tx, rx  pingMsg
}

func (p *pingNode) Send(env *CongestEnv, out *Outbox) {
	if p.id == 0 && env.Round == 1 {
		p.holding = true
		p.hops = 0
	}
	if !p.holding {
		return
	}
	p.holding = false
	p.done = true
	p.tx.Hops = p.hops + 1
	out.Put((p.id+1)%env.N, &p.tx)
}

func (p *pingNode) Receive(env *CongestEnv, inbox []Inbound) {
	for i := range inbox {
		in := &inbox[i]
		if in.Kind != kindPing {
			continue
		}
		if err := in.Decode(env, &p.rx); err != nil {
			panic(err)
		}
		if p.id == 0 {
			p.done = true // token came home
		} else {
			p.holding = true
			p.hops = p.rx.Hops
		}
	}
}

func (p *pingNode) Done() bool { return p.done }

// The wire format is usable through the public facade, and the engine's
// accounting is the encoded message lengths — verifiable from the outside.
func TestPublicWireFormat(t *testing.T) {
	const n = 8
	g := Cycle(n)
	var transcriptBits int
	obs := func(round, from, to, bits int, wire WireView) {
		if round == 0 {
			return // run boundary marker
		}
		transcriptBits += wire.Len()
		if got := wire.Kind(); got != kindPing {
			t.Errorf("observed kind %v", got)
		}
	}
	nw, err := NewCongestNetwork(g, func(v int) CongestNode { return &pingNode{id: v} },
		WithStrictAccounting(), WithCongestObserver(obs), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(4 * n); err != nil {
		t.Fatal(err)
	}
	m := nw.Metrics()
	perMsg := 5 + BitsForID(2*n) // kind tag + hop counter
	if m.Messages != n || m.Bits != n*perMsg {
		t.Errorf("metrics %+v, want %d messages of %d bits", m, n, perMsg)
	}
	if transcriptBits != m.Bits {
		t.Errorf("observer saw %d bits, metrics %d", transcriptBits, m.Bits)
	}
	if m.Rounds != n {
		t.Errorf("rounds = %d, want %d", m.Rounds, n)
	}
	if got := nw.Node(n - 1).(*pingNode).hops; got != n-1 {
		t.Errorf("node %d saw hop count %d, want %d", n-1, got, n-1)
	}
}

// ResetNode makes pingNode reusable: a public-API program opts into
// sessions by implementing CongestResettable.
func (p *pingNode) ResetNode(v int, params any) {
	p.holding = false
	p.hops = 0
	p.done = false
}

// Execution sessions work end to end through the public facade: build the
// topology and session once, Reset+Run repeatedly with identical results,
// and fan independent executions out over a Pool.
func TestPublicSessionAPI(t *testing.T) {
	const n = 8
	g := Cycle(n)
	topo, err := NewCongestTopology(g)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewCongestNetwork(g, func(v int) CongestNode { return &pingNode{id: v} }, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Run(4 * n); err != nil {
		t.Fatal(err)
	}
	want := fresh.Metrics()

	s := NewCongestSession(topo, func(v int) CongestNode { return &pingNode{id: v} }, WithWorkers(2))
	defer s.Close()
	for rep := 0; rep < 3; rep++ {
		if err := s.Reset(nil); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(4 * n); err != nil {
			t.Fatal(err)
		}
		if got := s.Metrics(); got != want {
			t.Errorf("rep %d: session metrics %+v, want %+v", rep, got, want)
		}
		if got := s.Node(n - 1).(*pingNode).hops; got != n-1 {
			t.Errorf("rep %d: hop count %d, want %d", rep, got, n-1)
		}
	}

	pool, err := NewPool(3, func(int) (*CongestSession, error) {
		return s.Clone()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close(func(c *CongestSession) { c.Close() })
	metrics := make([]CongestMetrics, 9)
	if err := pool.Do(len(metrics), func(j int, c *CongestSession) error {
		if err := c.Reset(nil); err != nil {
			return err
		}
		if err := c.Run(4 * n); err != nil {
			return err
		}
		metrics[j] = c.Metrics()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for j, m := range metrics {
		if m != want {
			t.Errorf("pool job %d: metrics %+v, want %+v", j, m, want)
		}
	}
	if err := ParallelForEach(2, 4, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// The Theorem 10 transcript — the encoded bits crossing the cut, captured
// through the observer — must be bit-identical across worker counts and
// across repeated runs: the session refactor must not perturb the
// lower-bound machinery's canonical traces.
func TestTheorem10TranscriptStableAcrossWorkersAndRuns(t *testing.T) {
	red, err := NewHW12Reduction(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	x, y := RandomIntersectingPair(red.K, rng)
	ref, err := TwoPartyFromCongest(red, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if ref.CutBits == 0 {
		t.Fatal("reference transcript is empty")
	}
	for _, k := range []int{1, 2, 8} {
		for rep := 0; rep < 2; rep++ {
			got, err := TwoPartyFromCongest(red, x, y, WithWorkers(k))
			if err != nil {
				t.Fatal(err)
			}
			if got.Disj != ref.Disj || got.Rounds != ref.Rounds || got.CutBits != ref.CutBits {
				t.Fatalf("workers %d rep %d: (disj %d, rounds %d, bits %d), want (%d, %d, %d)",
					k, rep, got.Disj, got.Rounds, got.CutBits, ref.Disj, ref.Rounds, ref.CutBits)
			}
			if got.Transcript.String() != ref.Transcript.String() {
				t.Fatalf("workers %d rep %d: transcript bits differ", k, rep)
			}
		}
	}
}

// TestPublicDistanceParameterSuite exercises the distance-parameter suite
// through the public facade: radius, eccentricities and weighted diameter,
// classical and quantum, against the sequential graph oracles.
func TestPublicDistanceParameterSuite(t *testing.T) {
	g := RandomConnected(26, 0.12, 9)
	wantRad, err := g.Radius()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Radius(g, QuantumOptions{Seed: 5, Engine: []EngineOption{WithWorkers(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diameter != wantRad {
		t.Fatalf("quantum radius %d, oracle %d", res.Diameter, wantRad)
	}

	wantEcc, err := g.AllEccentricities()
	if err != nil {
		t.Fatal(err)
	}
	eres, err := Eccentricities(g, QuantumOptions{Seed: 5, Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(eres.Ecc) != len(wantEcc) {
		t.Fatalf("ecc vector length %d, want %d", len(eres.Ecc), len(wantEcc))
	}
	for v := range wantEcc {
		if eres.Ecc[v] != wantEcc[v] {
			t.Fatalf("ecc[%d] = %d, oracle %d", v, eres.Ecc[v], wantEcc[v])
		}
	}
	ceccs, _, err := ClassicalEccentricities(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := range wantEcc {
		if ceccs[v] != wantEcc[v] {
			t.Fatalf("classical ecc[%d] = %d, oracle %d", v, ceccs[v], wantEcc[v])
		}
	}

	wg := WithWeights(g, 7, 11)
	wantWD, err := wg.WeightedDiameter()
	if err != nil {
		t.Fatal(err)
	}
	wres, err := WeightedDiameter(wg, QuantumOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if wres.Diameter != wantWD {
		t.Fatalf("quantum weighted diameter %d, oracle %d", wres.Diameter, wantWD)
	}
	cres, err := ClassicalWeightedDiameter(wg)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Diameter != wantWD {
		t.Fatalf("classical weighted diameter %d, oracle %d", cres.Diameter, wantWD)
	}
	// Radius follows the graph's metric: on the weighted copy it equals the
	// weighted radius.
	wantWR, err := wg.WeightedRadius()
	if err != nil {
		t.Fatal(err)
	}
	wrres, err := Radius(wg, QuantumOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if wrres.Diameter != wantWR {
		t.Fatalf("quantum weighted radius %d, oracle %d", wrres.Diameter, wantWR)
	}
}
