package main

import (
	"strings"
	"testing"
)

// TestCLISmoke drives the run() entry point end to end, asserting the
// per-figure markers and the Figure-2 oracle agreement.
func TestCLISmoke(t *testing.T) {
	var stdout, stderr strings.Builder
	if err := run(nil, &stdout, &stderr); err != nil {
		t.Fatalf("run(): %v\nstderr: %s", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"=== Figure 1: BFS(leader) construction in O(D) rounds ===",
		"=== Figure 2: Evaluation procedure (walk + waves + convergecast) ===",
		"=== Lemma 1: coverage of the window sets S(u) ===",
		"=== Figure 4: G_n of Theorem 8 (n = 10, s = 2) ===",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output does not contain %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "u0=") && !strings.Contains(line, "f(u0)=") {
			t.Fatalf("malformed Figure 2 line %q", line)
		}
	}
}

// TestCLILanesDeterministic asserts lane-fused Figure-2 Evaluations and the
// dense scheduler produce byte-identical output to the solo default — the
// bit-identity contract of MultiEccSession surfaced at the CLI.
func TestCLILanesDeterministic(t *testing.T) {
	outputs := make([]string, 0, 3)
	for _, args := range [][]string{
		nil,
		{"-lanes", "2"},
		{"-lanes", "8", "-sched", "dense", "-workers", "2"},
	} {
		var stdout, stderr strings.Builder
		if err := run(args, &stdout, &stderr); err != nil {
			t.Fatalf("run(%v): %v\nstderr: %s", args, err, stderr.String())
		}
		outputs = append(outputs, stdout.String())
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Errorf("output %d differs from solo baseline:\n%s\nvs\n%s", i, outputs[i], outputs[0])
		}
	}
}

// TestCLIBadScheduler asserts unknown -sched values are rejected up front.
func TestCLIBadScheduler(t *testing.T) {
	var stdout, stderr strings.Builder
	err := run([]string{"-sched", "nope"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown scheduler") {
		t.Fatalf("run(-sched nope) = %v, want unknown-scheduler error", err)
	}
}
