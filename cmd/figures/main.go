// Command figures regenerates the per-figure experiments indexed in
// DESIGN.md: the BFS procedure (Figure 1), the Evaluation procedure
// (Figure 2) with the Lemma 1 coverage bound, the G_n construction
// (Figure 4), and the subdivision/simulation artifacts (Figures 5-8)
// summarized from cmd/lowerbound.
package main

import (
	"flag"
	"fmt"
	"os"

	"qcongest"
	"qcongest/internal/congest"
	"qcongest/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "engine workers per round (0 = auto; measurements are identical for any value)")
	flag.Parse()
	engine := congest.WithWorkers(*workers)

	fmt.Println("=== Figure 1: BFS(leader) construction in O(D) rounds ===")
	for _, n := range []int{30, 60, 120} {
		g := qcongest.RandomConnected(n, 0.08, *seed)
		info, m, err := congest.Preprocess(g, engine)
		if err != nil {
			return err
		}
		fmt.Printf("n=%4d: leader=%d ecc(leader)=%d preprocessing rounds=%d\n",
			n, info.Leader, info.D, m.Rounds)
	}

	fmt.Println("\n=== Figure 2: Evaluation procedure (walk + waves + convergecast) ===")
	g := qcongest.RandomConnected(40, 0.08, *seed)
	topo, err := congest.NewTopology(g)
	if err != nil {
		return err
	}
	info, _, err := congest.PreprocessOn(topo, engine)
	if err != nil {
		return err
	}
	eccs, err := g.AllEccentricities()
	if err != nil {
		return err
	}
	tree, err := graph.NewBFSTree(g, info.Leader)
	if err != nil {
		return err
	}
	// The Evaluation sessions are built once; each u0 is a Reset+Run — the
	// same execution shape the quantum algorithms use per Grover iteration.
	walk := congest.NewWalkSession(topo, info, info.Children, 2*info.D, engine)
	defer walk.Close()
	ecc := congest.NewEccSession(topo, info, 6*info.D+2, engine)
	defer ecc.Close()
	for _, u0 := range []int{0, 13, 27} {
		tau, mw, err := walk.Eval(u0)
		if err != nil {
			return err
		}
		val, mr, err := ecc.Eval(tau)
		if err != nil {
			return err
		}
		want := 0
		for _, v := range tree.SetS(u0, info.D) {
			if eccs[v] > want {
				want = eccs[v]
			}
		}
		fmt.Printf("u0=%2d: f(u0)=%d (reference %d) rounds=%d (O(D), D<=%d)\n",
			u0, val, want, mw.Rounds+mr.Rounds, 2*info.D)
	}

	fmt.Println("\n=== Lemma 1: coverage of the window sets S(u) ===")
	for _, tc := range []struct {
		name string
		g    *qcongest.Graph
	}{
		{"path32", qcongest.Path(32)},
		{"random48", qcongest.RandomConnected(48, 0.07, *seed)},
		{"tree31", qcongest.CompleteBinaryTree(31)},
	} {
		minProb, bound, err := qcongest.Lemma1Coverage(tc.g, engine)
		if err != nil {
			return err
		}
		fmt.Printf("%-9s min_v Pr[v in S(u0)] = %.3f >= d/2n = %.3f\n", tc.name, minProb, bound)
	}

	fmt.Println("\n=== Figure 4: G_n of Theorem 8 (n = 10, s = 2) ===")
	red, err := qcongest.NewHW12Reduction(2)
	if err != nil {
		return err
	}
	x, _ := qcongest.BitsFromString("1000")
	y, _ := qcongest.BitsFromString("1000") // intersect at (0,0)
	gn, err := red.Build(x, y)
	if err != nil {
		return err
	}
	diam, _ := gn.Diameter()
	fmt.Printf("x=y=1000 (intersecting): diameter=%d (expected %d)\n", diam, red.D2)
	y2, _ := qcongest.BitsFromString("0100")
	gn2, err := red.Build(x, y2)
	if err != nil {
		return err
	}
	diam2, _ := gn2.Diameter()
	fmt.Printf("x=1000 y=0100 (disjoint): diameter=%d (expected <= %d)\n", diam2, red.D1)

	fmt.Println("\n(Figures 5-8: see cmd/lowerbound for the path network,")
	fmt.Println(" subdivision and simulation experiments.)")
	return nil
}
