// Command figures regenerates the per-figure experiments indexed in
// DESIGN.md: the BFS procedure (Figure 1), the Evaluation procedure
// (Figure 2) with the Lemma 1 coverage bound, the G_n construction
// (Figure 4), and the subdivision/simulation artifacts (Figures 5-8)
// summarized from cmd/lowerbound.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"qcongest"
	"qcongest/internal/congest"
	"qcongest/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed    = fs.Int64("seed", 1, "random seed")
		workers = fs.Int("workers", 0, "engine workers per round (0 = auto; measurements are identical for any value)")
		sched   = fs.String("sched", "frontier", "round scheduler: frontier|dense (measurements are identical for either)")
		lanes   = fs.Int("lanes", 0, "Figure-2 ecc Evaluations fused per lane-engine pass (0/1 = solo sessions; outputs are identical for any value)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine := []congest.Option{congest.WithWorkers(*workers)}
	switch *sched {
	case "frontier":
		engine = append(engine, congest.WithScheduler(congest.SchedulerFrontier))
	case "dense":
		engine = append(engine, congest.WithScheduler(congest.SchedulerDense))
	default:
		return fmt.Errorf("unknown scheduler %q (want frontier or dense)", *sched)
	}

	fmt.Fprintln(stdout, "=== Figure 1: BFS(leader) construction in O(D) rounds ===")
	for _, n := range []int{30, 60, 120} {
		g := qcongest.RandomConnected(n, 0.08, *seed)
		info, m, err := congest.Preprocess(g, engine...)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "n=%4d: leader=%d ecc(leader)=%d preprocessing rounds=%d\n",
			n, info.Leader, info.D, m.Rounds)
	}

	fmt.Fprintln(stdout, "\n=== Figure 2: Evaluation procedure (walk + waves + convergecast) ===")
	g := qcongest.RandomConnected(40, 0.08, *seed)
	topo, err := congest.NewTopology(g)
	if err != nil {
		return err
	}
	info, _, err := congest.PreprocessOn(topo, engine...)
	if err != nil {
		return err
	}
	eccs, err := g.AllEccentricities()
	if err != nil {
		return err
	}
	tree, err := graph.NewBFSTree(g, info.Leader)
	if err != nil {
		return err
	}
	// The Evaluation sessions are built once; each u0 is a Reset+Run — the
	// same execution shape the quantum algorithms use per Grover iteration.
	// With -lanes > 1 the ecc Evaluations are fused into one lane-engine
	// pass (MultiEccSession.EvalBatch); the per-u0 lines are bit-identical
	// to the solo sessions either way.
	u0s := []int{0, 13, 27}
	walk := congest.NewWalkSession(topo, info, info.Children, 2*info.D, engine...)
	defer walk.Close()
	taus := make([][]int, len(u0s))
	walkRounds := make([]int, len(u0s))
	for i, u0 := range u0s {
		tau, mw, err := walk.Eval(u0)
		if err != nil {
			return err
		}
		taus[i] = append([]int(nil), tau...)
		walkRounds[i] = mw.Rounds
	}
	vals := make([]int, len(u0s))
	eccRounds := make([]int, len(u0s))
	if *lanes > 1 {
		me := congest.NewMultiEccSession(topo, info, 6*info.D+2, *lanes, engine...)
		defer me.Close()
		for start := 0; start < len(u0s); start += *lanes {
			end := min(start+*lanes, len(u0s))
			vs, ms, err := me.EvalBatch(taus[start:end])
			if err != nil {
				return err
			}
			for i := start; i < end; i++ {
				vals[i] = vs[i-start]
				eccRounds[i] = ms[i-start].Rounds
			}
		}
	} else {
		ecc := congest.NewEccSession(topo, info, 6*info.D+2, engine...)
		defer ecc.Close()
		for i := range u0s {
			val, mr, err := ecc.Eval(taus[i])
			if err != nil {
				return err
			}
			vals[i] = val
			eccRounds[i] = mr.Rounds
		}
	}
	for i, u0 := range u0s {
		want := 0
		for _, v := range tree.SetS(u0, info.D) {
			if eccs[v] > want {
				want = eccs[v]
			}
		}
		fmt.Fprintf(stdout, "u0=%2d: f(u0)=%d (reference %d) rounds=%d (O(D), D<=%d)\n",
			u0, vals[i], want, walkRounds[i]+eccRounds[i], 2*info.D)
	}

	fmt.Fprintln(stdout, "\n=== Lemma 1: coverage of the window sets S(u) ===")
	for _, tc := range []struct {
		name string
		g    *qcongest.Graph
	}{
		{"path32", qcongest.Path(32)},
		{"random48", qcongest.RandomConnected(48, 0.07, *seed)},
		{"tree31", qcongest.CompleteBinaryTree(31)},
	} {
		minProb, bound, err := qcongest.Lemma1Coverage(tc.g, engine...)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-9s min_v Pr[v in S(u0)] = %.3f >= d/2n = %.3f\n", tc.name, minProb, bound)
	}

	fmt.Fprintln(stdout, "\n=== Figure 4: G_n of Theorem 8 (n = 10, s = 2) ===")
	red, err := qcongest.NewHW12Reduction(2)
	if err != nil {
		return err
	}
	x, _ := qcongest.BitsFromString("1000")
	y, _ := qcongest.BitsFromString("1000") // intersect at (0,0)
	gn, err := red.Build(x, y)
	if err != nil {
		return err
	}
	diam, _ := gn.Diameter()
	fmt.Fprintf(stdout, "x=y=1000 (intersecting): diameter=%d (expected %d)\n", diam, red.D2)
	y2, _ := qcongest.BitsFromString("0100")
	gn2, err := red.Build(x, y2)
	if err != nil {
		return err
	}
	diam2, _ := gn2.Diameter()
	fmt.Fprintf(stdout, "x=1000 y=0100 (disjoint): diameter=%d (expected <= %d)\n", diam2, red.D1)

	fmt.Fprintln(stdout, "\n(Figures 5-8: see cmd/lowerbound for the path network,")
	fmt.Fprintln(stdout, " subdivision and simulation experiments.)")
	return nil
}
