package main

import (
	"strings"
	"testing"
)

// TestCLISmoke drives the run() entry point end to end for each parameter,
// asserting the oracle-match markers in the output.
func TestCLISmoke(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{
			"quantum exact",
			[]string{"-graph", "random", "-n", "24", "-algo", "quantum-exact", "-seed", "3"},
			"quantum-exact: diameter=",
		},
		{
			"weighted radius",
			[]string{"-graph", "random", "-n", "20", "-param", "radius", "-weighted", "-maxw", "6"},
			"quantum radius:",
		},
		{
			"apsp",
			[]string{"-graph", "random", "-n", "24", "-param", "apsp", "-weighted", "-lanes", "8"},
			"quantum apsp: n=24 match-oracle=true",
		},
		{
			"apsp unweighted parallel",
			[]string{"-graph", "path", "-n", "16", "-param", "apsp", "-parallel", "2"},
			"quantum apsp: n=16 match-oracle=true",
		},
		{
			"sublinear weighted diameter",
			[]string{"-graph", "random", "-n", "20", "-weighted", "-sublinear", "-lanes", "4"},
			"quantum weighted diameter:",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			if err := run(tc.args, &stdout, &stderr); err != nil {
				t.Fatalf("run(%v): %v\nstderr: %s", tc.args, err, stderr.String())
			}
			if !strings.Contains(stdout.String(), tc.want) {
				t.Fatalf("run(%v) output %q does not contain %q", tc.args, stdout.String(), tc.want)
			}
		})
	}
}

// TestCLILanesWarning asserts the -lanes flag is called out (not silently
// ignored) for the single-evaluation workloads that cannot batch, and stays
// quiet where lane fusion applies.
func TestCLILanesWarning(t *testing.T) {
	var stdout, stderr strings.Builder
	args := []string{"-graph", "random", "-n", "16", "-param", "triangle", "-lanes", "8"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if !strings.Contains(stderr.String(), "-lanes 8 has no effect for -param triangle") {
		t.Fatalf("stderr %q lacks the ignored-lanes warning", stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	args = []string{"-graph", "random", "-n", "16", "-param", "mincut", "-lanes", "2"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if !strings.Contains(stderr.String(), "has no effect for -param mincut") {
		t.Fatalf("stderr %q lacks the ignored-lanes warning", stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	args = []string{"-graph", "random", "-n", "16", "-param", "ecc", "-lanes", "8"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if strings.Contains(stderr.String(), "has no effect") {
		t.Fatalf("stderr %q warns for a workload that does batch", stderr.String())
	}
	// An invalid lane count surfaces as an error, not a silent clamp.
	if err := run([]string{"-n", "12", "-lanes", "-3"}, &stdout, &stderr); err == nil {
		t.Fatal("negative -lanes accepted")
	}
}
