// Command diameter runs one distance-parameter algorithm on a generated
// network and prints the result with its measured round complexity.
//
// Usage:
//
//	diameter -graph random -n 60 -algo quantum-exact -seed 3
//	diameter -graph lollipop -n 80 -d 5 -algo classical-exact
//	diameter -graph random -n 40 -param radius -weighted -maxw 8
//	diameter -graph random -n 40 -param ecc -parallel 4
//	diameter -graph random -n 60 -param apsp -weighted -lanes 8
//	diameter -graph path -n 2048 -param ecc -lanes 8 -cpuprofile /tmp/ecc.prof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"

	"qcongest"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "diameter:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("diameter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind       = fs.String("graph", "random", "graph family: random|path|cycle|grid|lollipop|smallworld|caterpillar")
		n          = fs.Int("n", 40, "number of vertices")
		d          = fs.Int("d", 4, "target diameter (lollipop) / legs (caterpillar)")
		p          = fs.Float64("p", 0.1, "edge probability (random)")
		algo       = fs.String("algo", "quantum-exact", "algorithm: classical-exact|classical-approx|quantum-exact|quantum-simple|quantum-approx (diameter only; see -param)")
		param      = fs.String("param", "diameter", "parameter: diameter|radius|ecc|apsp|triangle|mincut")
		weighted   = fs.Bool("weighted", false, "assign uniform random edge weights in [1, maxw] and compute the weighted parameter")
		maxw       = fs.Int("maxw", 8, "largest edge weight used by -weighted")
		seed       = fs.Int64("seed", 1, "random seed")
		workers    = fs.Int("workers", 0, "engine workers per round (0 = auto, 1 = serial; output is identical for any value)")
		sched      = fs.String("sched", "frontier", "round scheduler: frontier|dense (output is identical for either)")
		parallel   = fs.Int("parallel", 1, "evaluation sessions run concurrently by the quantum algorithms (output is identical for any value)")
		lanes      = fs.Int("lanes", 0, "Evaluations fused per lane-engine pass (0/1 = solo sessions; output is identical for any value)")
		sublinear  = fs.Bool("sublinear", false, "route the weighted parameters through the skeleton distance oracle (sublinear per-Evaluation rounds; -param apsp always does)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "diameter: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "diameter: memprofile:", err)
			}
		}()
	}
	engine := []qcongest.EngineOption{qcongest.WithWorkers(*workers)}
	switch *sched {
	case "frontier":
		engine = append(engine, qcongest.WithScheduler(qcongest.SchedulerFrontier))
	case "dense":
		engine = append(engine, qcongest.WithScheduler(qcongest.SchedulerDense))
	default:
		return fmt.Errorf("unknown scheduler %q (want frontier or dense)", *sched)
	}
	// The single-Evaluation-per-query workloads never batch, so lane fusion
	// cannot apply to them; say so instead of silently ignoring the flag.
	if *lanes > 1 && (*param == "triangle" || *param == "mincut") {
		fmt.Fprintf(stderr, "diameter: warning: -lanes %d has no effect for -param %s (single-evaluation workload, solo sessions)\n",
			*lanes, *param)
	}

	g, err := buildGraph(*kind, *n, *d, *p, *seed)
	if err != nil {
		return err
	}
	if *weighted {
		g = qcongest.WithWeights(g, *maxw, *seed)
		truth, err := g.WeightedDiameter()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "graph=%s n=%d m=%d weighted=true maxw=%d true-weighted-diameter=%d\n",
			*kind, g.N(), g.M(), *maxw, truth)
	} else {
		truth, err := g.Diameter()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "graph=%s n=%d m=%d weighted=false true-diameter=%d\n", *kind, g.N(), g.M(), truth)
	}

	qopts := qcongest.QuantumOptions{Seed: *seed, Parallel: *parallel, Lanes: *lanes, Sublinear: *sublinear, Engine: engine}
	if *param != "diameter" {
		return runParam(stdout, g, *param, *weighted, qopts)
	}
	if *weighted {
		return runWeightedDiameter(stdout, g, qopts)
	}
	switch *algo {
	case "classical-exact":
		res, err := qcongest.ClassicalExactDiameter(g, engine...)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "classical exact: diameter=%d rounds=%d messages=%d\n",
			res.Diameter, res.Metrics.Rounds, res.Metrics.Messages)
	case "classical-approx":
		res, err := qcongest.ClassicalApproxDiameter(g, 0, *seed, engine...)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "classical 3/2-approx: estimate=%d rounds=%d\n", res.Diameter, res.Metrics.Rounds)
	case "quantum-exact", "quantum-simple", "quantum-approx":
		var res qcongest.QuantumResult
		switch *algo {
		case "quantum-exact":
			res, err = qcongest.QuantumExactDiameter(g, qopts)
		case "quantum-simple":
			res, err = qcongest.QuantumExactDiameterSimple(g, qopts)
		default:
			res, err = qcongest.QuantumApproxDiameter(g, qopts)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: diameter=%d rounds=%d iterations=%d eval-rounds=%d qubits/node=%d leader=%d\n",
			*algo, res.Diameter, res.Rounds, res.Iterations, res.EvalRounds, res.NodeQubits, res.LeaderQubits)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	return nil
}

// runParam dispatches the non-diameter entries of the distance-parameter
// suite (-param radius|ecc|apsp|triangle|mincut), printing the quantum
// result against the sequential oracle.
func runParam(stdout io.Writer, g *qcongest.Graph, param string, weighted bool, qopts qcongest.QuantumOptions) error {
	switch param {
	case "radius":
		var truth int
		var err error
		if weighted {
			truth, err = g.WeightedRadius()
		} else {
			truth, err = g.Radius()
		}
		if err != nil {
			return err
		}
		res, err := qcongest.Radius(g, qopts)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "quantum radius: radius=%d true-radius=%d rounds=%d iterations=%d eval-rounds=%d\n",
			res.Diameter, truth, res.Rounds, res.Iterations, res.EvalRounds)
	case "ecc":
		res, err := qcongest.Eccentricities(g, qopts)
		if err != nil {
			return err
		}
		var truth []int
		if weighted {
			truth, err = g.WeightedAllEccentricities()
		} else {
			truth, err = g.AllEccentricities()
		}
		if err != nil {
			return err
		}
		match := len(truth) == len(res.Ecc)
		for v := range res.Ecc {
			match = match && res.Ecc[v] == truth[v]
		}
		lo, hi := 0, 0
		if len(res.Ecc) > 0 {
			lo, hi = slices.Min(res.Ecc), slices.Max(res.Ecc)
		}
		fmt.Fprintf(stdout, "quantum eccentricities: n=%d match-oracle=%v rounds=%d eval-rounds=%d min=%d max=%d\n",
			len(res.Ecc), match, res.Rounds, res.EvalRounds, lo, hi)
	case "apsp":
		// Each streamed row is checked against a per-source Dijkstra run —
		// n * O(m log n) oracle work, the same budget as the ecc oracle.
		match := true
		res, err := qcongest.APSP(g, qopts, func(source int, row []int) error {
			want := g.Dijkstra(source)
			for v := range row {
				match = match && row[v] == want[v]
			}
			return nil
		})
		if err != nil {
			return err
		}
		diam, rad := 0, 0
		if len(res.Ecc) > 0 {
			diam, rad = slices.Max(res.Ecc), slices.Min(res.Ecc)
		}
		fmt.Fprintf(stdout, "quantum apsp: n=%d match-oracle=%v diameter=%d radius=%d rounds=%d init-rounds=%d eval-rounds=%d\n",
			res.Sources, match, diam, rad, res.Rounds, res.InitRounds, res.EvalRounds)
	case "triangle":
		res, err := qcongest.TriangleCount(g, qopts)
		if err != nil {
			return err
		}
		truth := 0
		for v := 0; v < g.N(); v++ {
			if onTriangle(g, v) {
				truth++
			}
		}
		fmt.Fprintf(stdout, "quantum triangle count: found=%v vertices=%d true-vertices=%d rounds=%d iterations=%d eval-rounds=%d\n",
			res.Found, res.Count, truth, res.Rounds, res.Iterations, res.EvalRounds)
	case "mincut":
		res, err := qcongest.MinTreeCut(g, qopts)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "quantum min tree cut: weight=%d root=%d rounds=%d iterations=%d eval-rounds=%d\n",
			res.Weight, res.Root, res.Rounds, res.Iterations, res.EvalRounds)
	default:
		return fmt.Errorf("unknown parameter %q (want diameter, radius, ecc, apsp, triangle or mincut)", param)
	}
	return nil
}

// onTriangle is the brute-force check that v lies on a triangle.
func onTriangle(g *qcongest.Graph, v int) bool {
	nbs := g.Neighbors(v)
	for i, a := range nbs {
		for _, b := range nbs[i+1:] {
			if g.HasEdge(a, b) {
				return true
			}
		}
	}
	return false
}

// runWeightedDiameter handles -weighted with the default -param diameter:
// the quantum weighted diameter against the Dijkstra oracle.
func runWeightedDiameter(stdout io.Writer, g *qcongest.Graph, qopts qcongest.QuantumOptions) error {
	truth, err := g.WeightedDiameter()
	if err != nil {
		return err
	}
	res, err := qcongest.WeightedDiameter(g, qopts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "quantum weighted diameter: diameter=%d true-weighted-diameter=%d rounds=%d iterations=%d eval-rounds=%d\n",
		res.Diameter, truth, res.Rounds, res.Iterations, res.EvalRounds)
	return nil
}

func buildGraph(kind string, n, d int, p float64, seed int64) (*qcongest.Graph, error) {
	switch kind {
	case "random":
		return qcongest.RandomConnected(n, p, seed), nil
	case "path":
		return qcongest.Path(n), nil
	case "cycle":
		return qcongest.Cycle(n), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return qcongest.Grid(side, side), nil
	case "lollipop":
		return qcongest.LollipopWithDiameter(n, d)
	case "smallworld":
		return qcongest.SmallWorld(n, 2, 0.2, seed), nil
	case "caterpillar":
		return qcongest.Caterpillar(n/(d+1), d), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", kind)
	}
}
