// Command diameter runs one distance-parameter algorithm on a generated
// network and prints the result with its measured round complexity.
//
// Usage:
//
//	diameter -graph random -n 60 -algo quantum-exact -seed 3
//	diameter -graph lollipop -n 80 -d 5 -algo classical-exact
//	diameter -graph random -n 40 -param radius -weighted -maxw 8
//	diameter -graph random -n 40 -param ecc -parallel 4
//	diameter -graph path -n 2048 -param ecc -lanes 8 -cpuprofile /tmp/ecc.prof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"

	"qcongest"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "diameter:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind       = flag.String("graph", "random", "graph family: random|path|cycle|grid|lollipop|smallworld|caterpillar")
		n          = flag.Int("n", 40, "number of vertices")
		d          = flag.Int("d", 4, "target diameter (lollipop) / legs (caterpillar)")
		p          = flag.Float64("p", 0.1, "edge probability (random)")
		algo       = flag.String("algo", "quantum-exact", "algorithm: classical-exact|classical-approx|quantum-exact|quantum-simple|quantum-approx (diameter only; see -param)")
		param      = flag.String("param", "diameter", "parameter: diameter|radius|ecc|triangle|mincut")
		weighted   = flag.Bool("weighted", false, "assign uniform random edge weights in [1, maxw] and compute the weighted parameter")
		maxw       = flag.Int("maxw", 8, "largest edge weight used by -weighted")
		seed       = flag.Int64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "engine workers per round (0 = auto, 1 = serial; output is identical for any value)")
		sched      = flag.String("sched", "frontier", "round scheduler: frontier|dense (output is identical for either)")
		parallel   = flag.Int("parallel", 1, "evaluation sessions run concurrently by the quantum algorithms (output is identical for any value)")
		lanes      = flag.Int("lanes", 0, "Evaluations fused per lane-engine pass (0/1 = solo sessions; output is identical for any value)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	)
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "diameter: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "diameter: memprofile:", err)
			}
		}()
	}
	engine := []qcongest.EngineOption{qcongest.WithWorkers(*workers)}
	switch *sched {
	case "frontier":
		engine = append(engine, qcongest.WithScheduler(qcongest.SchedulerFrontier))
	case "dense":
		engine = append(engine, qcongest.WithScheduler(qcongest.SchedulerDense))
	default:
		return fmt.Errorf("unknown scheduler %q (want frontier or dense)", *sched)
	}

	g, err := buildGraph(*kind, *n, *d, *p, *seed)
	if err != nil {
		return err
	}
	if *weighted {
		g = qcongest.WithWeights(g, *maxw, *seed)
		truth, err := g.WeightedDiameter()
		if err != nil {
			return err
		}
		fmt.Printf("graph=%s n=%d m=%d weighted=true maxw=%d true-weighted-diameter=%d\n",
			*kind, g.N(), g.M(), *maxw, truth)
	} else {
		truth, err := g.Diameter()
		if err != nil {
			return err
		}
		fmt.Printf("graph=%s n=%d m=%d weighted=false true-diameter=%d\n", *kind, g.N(), g.M(), truth)
	}

	if *param != "diameter" {
		return runParam(g, *param, *weighted, *seed, *parallel, *lanes, engine)
	}
	if *weighted {
		return runWeightedDiameter(g, *seed, *parallel, *lanes, engine)
	}
	switch *algo {
	case "classical-exact":
		res, err := qcongest.ClassicalExactDiameter(g, engine...)
		if err != nil {
			return err
		}
		fmt.Printf("classical exact: diameter=%d rounds=%d messages=%d\n",
			res.Diameter, res.Metrics.Rounds, res.Metrics.Messages)
	case "classical-approx":
		res, err := qcongest.ClassicalApproxDiameter(g, 0, *seed, engine...)
		if err != nil {
			return err
		}
		fmt.Printf("classical 3/2-approx: estimate=%d rounds=%d\n", res.Diameter, res.Metrics.Rounds)
	case "quantum-exact", "quantum-simple", "quantum-approx":
		var res qcongest.QuantumResult
		qopts := qcongest.QuantumOptions{Seed: *seed, Parallel: *parallel, Lanes: *lanes, Engine: engine}
		switch *algo {
		case "quantum-exact":
			res, err = qcongest.QuantumExactDiameter(g, qopts)
		case "quantum-simple":
			res, err = qcongest.QuantumExactDiameterSimple(g, qopts)
		default:
			res, err = qcongest.QuantumApproxDiameter(g, qopts)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s: diameter=%d rounds=%d iterations=%d eval-rounds=%d qubits/node=%d leader=%d\n",
			*algo, res.Diameter, res.Rounds, res.Iterations, res.EvalRounds, res.NodeQubits, res.LeaderQubits)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	return nil
}

// runParam dispatches the non-diameter entries of the distance-parameter
// suite (-param radius|ecc), printing the quantum result against the
// sequential oracle.
func runParam(g *qcongest.Graph, param string, weighted bool, seed int64, parallel, lanes int, engine []qcongest.EngineOption) error {
	qopts := qcongest.QuantumOptions{Seed: seed, Parallel: parallel, Lanes: lanes, Engine: engine}
	switch param {
	case "radius":
		var truth int
		var err error
		if weighted {
			truth, err = g.WeightedRadius()
		} else {
			truth, err = g.Radius()
		}
		if err != nil {
			return err
		}
		res, err := qcongest.Radius(g, qopts)
		if err != nil {
			return err
		}
		fmt.Printf("quantum radius: radius=%d true-radius=%d rounds=%d iterations=%d eval-rounds=%d\n",
			res.Diameter, truth, res.Rounds, res.Iterations, res.EvalRounds)
	case "ecc":
		res, err := qcongest.Eccentricities(g, qopts)
		if err != nil {
			return err
		}
		var truth []int
		if weighted {
			truth, err = g.WeightedAllEccentricities()
		} else {
			truth, err = g.AllEccentricities()
		}
		if err != nil {
			return err
		}
		match := len(truth) == len(res.Ecc)
		for v := range res.Ecc {
			match = match && res.Ecc[v] == truth[v]
		}
		lo, hi := 0, 0
		if len(res.Ecc) > 0 {
			lo, hi = slices.Min(res.Ecc), slices.Max(res.Ecc)
		}
		fmt.Printf("quantum eccentricities: n=%d match-oracle=%v rounds=%d eval-rounds=%d min=%d max=%d\n",
			len(res.Ecc), match, res.Rounds, res.EvalRounds, lo, hi)
	case "triangle":
		res, err := qcongest.TriangleCount(g, qopts)
		if err != nil {
			return err
		}
		truth := 0
		for v := 0; v < g.N(); v++ {
			if onTriangle(g, v) {
				truth++
			}
		}
		fmt.Printf("quantum triangle count: found=%v vertices=%d true-vertices=%d rounds=%d iterations=%d eval-rounds=%d\n",
			res.Found, res.Count, truth, res.Rounds, res.Iterations, res.EvalRounds)
	case "mincut":
		res, err := qcongest.MinTreeCut(g, qopts)
		if err != nil {
			return err
		}
		fmt.Printf("quantum min tree cut: weight=%d root=%d rounds=%d iterations=%d eval-rounds=%d\n",
			res.Weight, res.Root, res.Rounds, res.Iterations, res.EvalRounds)
	default:
		return fmt.Errorf("unknown parameter %q (want diameter, radius, ecc, triangle or mincut)", param)
	}
	return nil
}

// onTriangle is the brute-force check that v lies on a triangle.
func onTriangle(g *qcongest.Graph, v int) bool {
	nbs := g.Neighbors(v)
	for i, a := range nbs {
		for _, b := range nbs[i+1:] {
			if g.HasEdge(a, b) {
				return true
			}
		}
	}
	return false
}

// runWeightedDiameter handles -weighted with the default -param diameter:
// the quantum weighted diameter against the Dijkstra oracle.
func runWeightedDiameter(g *qcongest.Graph, seed int64, parallel, lanes int, engine []qcongest.EngineOption) error {
	truth, err := g.WeightedDiameter()
	if err != nil {
		return err
	}
	res, err := qcongest.WeightedDiameter(g, qcongest.QuantumOptions{Seed: seed, Parallel: parallel, Lanes: lanes, Engine: engine})
	if err != nil {
		return err
	}
	fmt.Printf("quantum weighted diameter: diameter=%d true-weighted-diameter=%d rounds=%d iterations=%d eval-rounds=%d\n",
		res.Diameter, truth, res.Rounds, res.Iterations, res.EvalRounds)
	return nil
}

func buildGraph(kind string, n, d int, p float64, seed int64) (*qcongest.Graph, error) {
	switch kind {
	case "random":
		return qcongest.RandomConnected(n, p, seed), nil
	case "path":
		return qcongest.Path(n), nil
	case "cycle":
		return qcongest.Cycle(n), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return qcongest.Grid(side, side), nil
	case "lollipop":
		return qcongest.LollipopWithDiameter(n, d)
	case "smallworld":
		return qcongest.SmallWorld(n, 2, 0.2, seed), nil
	case "caterpillar":
		return qcongest.Caterpillar(n/(d+1), d), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", kind)
	}
}
