// Command diameter runs one diameter algorithm on a generated network and
// prints the result with its measured round complexity.
//
// Usage:
//
//	diameter -graph random -n 60 -algo quantum-exact -seed 3
//	diameter -graph lollipop -n 80 -d 5 -algo classical-exact
package main

import (
	"flag"
	"fmt"
	"os"

	"qcongest"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "diameter:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind     = flag.String("graph", "random", "graph family: random|path|cycle|grid|lollipop|smallworld|caterpillar")
		n        = flag.Int("n", 40, "number of vertices")
		d        = flag.Int("d", 4, "target diameter (lollipop) / legs (caterpillar)")
		p        = flag.Float64("p", 0.1, "edge probability (random)")
		algo     = flag.String("algo", "quantum-exact", "algorithm: classical-exact|classical-approx|quantum-exact|quantum-simple|quantum-approx")
		seed     = flag.Int64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "engine workers per round (0 = auto, 1 = serial; output is identical for any value)")
		parallel = flag.Int("parallel", 1, "evaluation sessions run concurrently by the quantum algorithms (output is identical for any value)")
	)
	flag.Parse()
	engine := []qcongest.EngineOption{qcongest.WithWorkers(*workers)}

	g, err := buildGraph(*kind, *n, *d, *p, *seed)
	if err != nil {
		return err
	}
	truth, err := g.Diameter()
	if err != nil {
		return err
	}
	fmt.Printf("graph=%s n=%d m=%d true-diameter=%d\n", *kind, g.N(), g.M(), truth)

	switch *algo {
	case "classical-exact":
		res, err := qcongest.ClassicalExactDiameter(g, engine...)
		if err != nil {
			return err
		}
		fmt.Printf("classical exact: diameter=%d rounds=%d messages=%d\n",
			res.Diameter, res.Metrics.Rounds, res.Metrics.Messages)
	case "classical-approx":
		res, err := qcongest.ClassicalApproxDiameter(g, 0, *seed, engine...)
		if err != nil {
			return err
		}
		fmt.Printf("classical 3/2-approx: estimate=%d rounds=%d\n", res.Diameter, res.Metrics.Rounds)
	case "quantum-exact", "quantum-simple", "quantum-approx":
		var res qcongest.QuantumResult
		qopts := qcongest.QuantumOptions{Seed: *seed, Parallel: *parallel, Engine: engine}
		switch *algo {
		case "quantum-exact":
			res, err = qcongest.QuantumExactDiameter(g, qopts)
		case "quantum-simple":
			res, err = qcongest.QuantumExactDiameterSimple(g, qopts)
		default:
			res, err = qcongest.QuantumApproxDiameter(g, qopts)
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s: diameter=%d rounds=%d iterations=%d eval-rounds=%d qubits/node=%d leader=%d\n",
			*algo, res.Diameter, res.Rounds, res.Iterations, res.EvalRounds, res.NodeQubits, res.LeaderQubits)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	return nil
}

func buildGraph(kind string, n, d int, p float64, seed int64) (*qcongest.Graph, error) {
	switch kind {
	case "random":
		return qcongest.RandomConnected(n, p, seed), nil
	case "path":
		return qcongest.Path(n), nil
	case "cycle":
		return qcongest.Cycle(n), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return qcongest.Grid(side, side), nil
	case "lollipop":
		return qcongest.LollipopWithDiameter(n, d)
	case "smallworld":
		return qcongest.SmallWorld(n, 2, 0.2, seed), nil
	case "caterpillar":
		return qcongest.Caterpillar(n/(d+1), d), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", kind)
	}
}
