// Command lowerbound runs the lower-bound experiments of Sections 5 and 6:
// reduction verification (Theorems 8 and 9), the CONGEST-to-two-party
// conversion (Theorem 10), the subdivided graphs of Figure 8, and the G_d
// simulation of Theorem 11.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"qcongest"
	"qcongest/internal/bitstring"
	"qcongest/internal/reduction"
	"qcongest/internal/simulation"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed    = flag.Int64("seed", 1, "random seed")
		trials  = flag.Int("trials", 5, "random input pairs per experiment")
		workers = flag.Int("workers", 0, "engine workers per round (0 = auto; results are identical for any value)")
	)
	flag.Parse()
	engine := qcongest.WithWorkers(*workers)
	rng := rand.New(rand.NewSource(*seed))

	fmt.Println("=== Theorem 8 (Figure 4): HW12 reduction, diameter 2 vs 3 ===")
	hw, err := qcongest.NewHW12Reduction(4)
	if err != nil {
		return err
	}
	fmt.Printf("n=%d b=%d k=%d\n", hw.Base.N(), hw.B, hw.K)
	if err := verifyPairs(hw, *trials, rng); err != nil {
		return err
	}

	fmt.Println("\n=== Theorem 9: ACHK16-style reduction, diameter 4 vs 5 ===")
	achk, err := qcongest.NewACHK16Reduction(32)
	if err != nil {
		return err
	}
	fmt.Printf("n=%d b=%d (Theta(log n)) k=%d\n", achk.Base.N(), achk.B, achk.K)
	if err := verifyPairs(achk, *trials, rng); err != nil {
		return err
	}

	fmt.Println("\n=== Theorem 10: CONGEST run as a two-party protocol ===")
	x, y := qcongest.RandomIntersectingPair(hw.K, rng)
	sim, err := qcongest.TwoPartyFromCongest(hw, x, y, engine)
	if err != nil {
		return err
	}
	// The transcript is the captured encoding of the cut traffic; its
	// length IS the communication cost (no summed declared sizes anywhere).
	if sim.Transcript.Len() != sim.CutBits {
		return fmt.Errorf("transcript %d bits but CutBits %d", sim.Transcript.Len(), sim.CutBits)
	}
	fmt.Printf("DISJ decided: %d; rounds=%d transcript=%d bits messages=%d (<= 2*rounds)\n",
		sim.Disj, sim.Rounds, sim.Transcript.Len(), sim.Protocol.Messages)
	prefix := sim.Transcript.String()
	if len(prefix) > 64 {
		prefix = prefix[:64] + "..."
	}
	fmt.Printf("transcript prefix: %s\n", prefix)

	fmt.Println("\n=== Figure 8: subdivided graphs, diameter d+4 vs d+5 ===")
	for _, d := range []int{2, 5, 10} {
		xd, yd := qcongest.RandomDisjointPair(achk.K, rng)
		xi, yi := qcongest.RandomIntersectingPair(achk.K, rng)
		sub1, err := qcongest.BuildSubdivided(achk, xd, yd, d)
		if err != nil {
			return err
		}
		sub2, err := qcongest.BuildSubdivided(achk, xi, yi, d)
		if err != nil {
			return err
		}
		d1, _ := sub1.G.Diameter()
		d2, _ := sub2.G.Diameter()
		fmt.Printf("d=%2d: disjoint diameter=%d (<= %d)  intersecting diameter=%d (== %d)\n",
			d, d1, sub1.LeftDiameter, d2, sub2.RightDiameter)
	}

	fmt.Println("\n=== Theorem 11 (Figures 6-7): G_d simulation ===")
	fmt.Printf("  %4s %6s %9s %13s\n", "d", "r", "messages", "qubits")
	for _, d := range []int{2, 4, 8, 16} {
		alg := simulation.NewRelayAlgorithm(d, func(a, b uint64) uint64 { return a & b })
		res, err := alg.RunTwoParty(0xF0F0, 0x0FF0)
		if err != nil {
			return err
		}
		fmt.Printf("  %4d %6d %9d %13d   (O(r/d) messages, O(r(bw+s)) qubits)\n",
			d, alg.Rounds, res.Metrics.Messages, res.Metrics.Qubits)
	}

	fmt.Println("\n=== Derived round lower bounds vs the Theorem 1 upper bound ===")
	fmt.Printf("  %6s %6s %14s %14s %16s\n", "n", "D", "Thm2 ~sqrt(n)", "Thm3 ~sqrt(nD/s)", "Thm1 ~sqrt(nD)")
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		for _, d := range []int{4, 64} {
			t2, t3 := reduction.LowerBoundRounds(n, 1, d, 1)
			up := float64(n * d)
			fmt.Printf("  %6d %6d %14.0f %14.0f %16.0f\n", n, d, t2, t3, math.Sqrt(up))
		}
	}
	return nil
}

func verifyPairs(red *qcongest.Reduction, trials int, rng *rand.Rand) error {
	for i := 0; i < trials; i++ {
		x, y := bitstring.RandomDisjointPair(red.K, rng)
		if err := red.Verify(x, y); err != nil {
			return err
		}
		x, y = bitstring.RandomIntersectingPair(red.K, rng)
		if err := red.Verify(x, y); err != nil {
			return err
		}
	}
	fmt.Printf("verified %d disjoint + %d intersecting input pairs\n", trials, trials)
	return nil
}
