// Command table1 regenerates the paper's Table 1 as measured round counts:
// classical vs quantum, exact and 3/2-approximate, with fitted scaling
// exponents.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"qcongest"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		trials   = fs.Int("trials", 3, "seeds per quantum measurement")
		seed     = fs.Int64("seed", 1, "base seed")
		diam     = fs.Int("d", 4, "fixed diameter for the n sweep")
		long     = fs.Bool("long", false, "use larger sweeps")
		workers  = fs.Int("workers", 0, "engine workers per round (0 = auto; measured rounds are identical for any value)")
		sched    = fs.String("sched", "frontier", "round scheduler: frontier|dense (measurements are identical for either)")
		parallel = fs.Int("parallel", 1, "quantum trials run concurrently per sweep point (results are identical for any value)")
		lanes    = fs.Int("lanes", 0, "Evaluations fused per lane-engine pass (0/1 = solo sessions; results are identical for any value)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine := []qcongest.EngineOption{qcongest.WithWorkers(*workers)}
	switch *sched {
	case "frontier":
		engine = append(engine, qcongest.WithScheduler(qcongest.SchedulerFrontier))
	case "dense":
		engine = append(engine, qcongest.WithScheduler(qcongest.SchedulerDense))
	default:
		return fmt.Errorf("unknown scheduler %q (want frontier or dense)", *sched)
	}

	sizes := []int{30, 60, 120}
	if *long {
		sizes = []int{40, 80, 160, 320}
	}

	fmt.Fprintln(stdout, "=== Table 1, row 'Exact computation' ===")
	classical, quantum, err := qcongest.ExactComparison(sizes, *diam, *trials, *seed, *parallel, *lanes, engine...)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, qcongest.FormatTable(classical, quantum))
	fmt.Fprintf(stdout, "classical slope vs n: %.2f (theory: 1.0)\n",
		classical.Slope(func(p qcongest.Point) float64 { return float64(p.N) }))
	fmt.Fprintf(stdout, "quantum   slope vs n: %.2f (theory: 0.5)\n",
		quantum.Slope(func(p qcongest.Point) float64 { return float64(p.N) }))
	if cross, err := qcongest.CrossoverN(classical, quantum); err == nil {
		fmt.Fprintf(stdout, "extrapolated crossover: quantum wins beyond n ~ %.0f (D=%d)\n\n", cross, *diam)
	} else {
		fmt.Fprintf(stdout, "crossover extrapolation: %v\n\n", err)
	}

	fmt.Fprintln(stdout, "=== Theorem 1: quantum rounds vs D (n fixed) ===")
	sweep, err := qcongest.DiameterSweep(sizes[len(sizes)-1]/2, []int{3, 6, 12}, *trials, *seed, *parallel, *lanes, engine...)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, qcongest.FormatTable(sweep))
	fmt.Fprintf(stdout, "quantum slope vs D: %.2f (theory: 0.5)\n\n",
		sweep.Slope(func(p qcongest.Point) float64 { return float64(p.D) }))

	fmt.Fprintln(stdout, "=== Table 1, row '3/2-approximation' ===")
	ca, qa, err := qcongest.ApproxComparison(sizes, *diam, *trials, *seed, *parallel, *lanes, engine...)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, qcongest.FormatTable(ca, qa))

	fmt.Fprintln(stdout, "=== Table 1, rows 'lower bounds': DISJ tradeoff (Theorem 5) ===")
	points, err := qcongest.MeasureDisjTradeoff(4096, []int{8, 16, 32, 64, 128, 256}, 15, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "  %8s %8s %8s %9s\n", "budget r", "blocks", "messages", "qubits")
	for _, p := range points {
		fmt.Fprintf(stdout, "  %8d %8d %8d %9d\n", p.MessageBudget, p.Blocks, p.Messages, p.Qubits)
	}
	fmt.Fprintln(stdout, "  (shape: ~k/r for small r, minimum near r=sqrt(k), then ~r)")
	return nil
}
