// Command table1 regenerates the paper's Table 1 as measured round counts:
// classical vs quantum, exact and 3/2-approximate, with fitted scaling
// exponents.
package main

import (
	"flag"
	"fmt"
	"os"

	"qcongest"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		trials   = flag.Int("trials", 3, "seeds per quantum measurement")
		seed     = flag.Int64("seed", 1, "base seed")
		diam     = flag.Int("d", 4, "fixed diameter for the n sweep")
		long     = flag.Bool("long", false, "use larger sweeps")
		workers  = flag.Int("workers", 0, "engine workers per round (0 = auto; measured rounds are identical for any value)")
		parallel = flag.Int("parallel", 1, "quantum trials run concurrently per sweep point (results are identical for any value)")
	)
	flag.Parse()
	engine := qcongest.WithWorkers(*workers)

	sizes := []int{30, 60, 120}
	if *long {
		sizes = []int{40, 80, 160, 320}
	}

	fmt.Println("=== Table 1, row 'Exact computation' ===")
	classical, quantum, err := qcongest.ExactComparison(sizes, *diam, *trials, *seed, *parallel, engine)
	if err != nil {
		return err
	}
	fmt.Print(qcongest.FormatTable(classical, quantum))
	fmt.Printf("classical slope vs n: %.2f (theory: 1.0)\n",
		classical.Slope(func(p qcongest.Point) float64 { return float64(p.N) }))
	fmt.Printf("quantum   slope vs n: %.2f (theory: 0.5)\n",
		quantum.Slope(func(p qcongest.Point) float64 { return float64(p.N) }))
	if cross, err := qcongest.CrossoverN(classical, quantum); err == nil {
		fmt.Printf("extrapolated crossover: quantum wins beyond n ~ %.0f (D=%d)\n\n", cross, *diam)
	} else {
		fmt.Printf("crossover extrapolation: %v\n\n", err)
	}

	fmt.Println("=== Theorem 1: quantum rounds vs D (n fixed) ===")
	sweep, err := qcongest.DiameterSweep(sizes[len(sizes)-1]/2, []int{3, 6, 12}, *trials, *seed, *parallel, engine)
	if err != nil {
		return err
	}
	fmt.Print(qcongest.FormatTable(sweep))
	fmt.Printf("quantum slope vs D: %.2f (theory: 0.5)\n\n",
		sweep.Slope(func(p qcongest.Point) float64 { return float64(p.D) }))

	fmt.Println("=== Table 1, row '3/2-approximation' ===")
	ca, qa, err := qcongest.ApproxComparison(sizes, *diam, *trials, *seed, *parallel, engine)
	if err != nil {
		return err
	}
	fmt.Print(qcongest.FormatTable(ca, qa))

	fmt.Println("=== Table 1, rows 'lower bounds': DISJ tradeoff (Theorem 5) ===")
	points, err := qcongest.MeasureDisjTradeoff(4096, []int{8, 16, 32, 64, 128, 256}, 15, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("  %8s %8s %8s %9s\n", "budget r", "blocks", "messages", "qubits")
	for _, p := range points {
		fmt.Printf("  %8d %8d %8d %9d\n", p.MessageBudget, p.Blocks, p.Messages, p.Qubits)
	}
	fmt.Println("  (shape: ~k/r for small r, minimum near r=sqrt(k), then ~r)")
	return nil
}
