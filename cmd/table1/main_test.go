package main

import (
	"strings"
	"testing"
)

// TestCLISmoke drives the run() entry point end to end, asserting the
// section markers and the ok columns of the rendered tables.
func TestCLISmoke(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want []string
	}{
		{
			"default sweep",
			[]string{"-trials", "1"},
			[]string{"=== Table 1, row 'Exact computation' ===", "quantum exact (Theorem 1)", "classical slope vs n:"},
		},
		{
			"dense scheduler with lanes",
			[]string{"-trials", "1", "-sched", "dense", "-lanes", "4", "-parallel", "2"},
			[]string{"quantum exact (Theorem 1)", "=== Table 1, row '3/2-approximation' ==="},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			if err := run(tc.args, &stdout, &stderr); err != nil {
				t.Fatalf("run(%v): %v\nstderr: %s", tc.args, err, stderr.String())
			}
			for _, want := range tc.want {
				if !strings.Contains(stdout.String(), want) {
					t.Fatalf("run(%v) output does not contain %q:\n%s", tc.args, want, stdout.String())
				}
			}
			if strings.Contains(stdout.String(), "false") {
				t.Fatalf("run(%v) reports a failed measurement:\n%s", tc.args, stdout.String())
			}
		})
	}
}

// TestCLILanesDeterministic asserts the -lanes and -sched knobs never change
// the measured tables: lane fusion and scheduling strategy are wall-clock
// levers, not semantics.
func TestCLILanesDeterministic(t *testing.T) {
	outputs := make([]string, 0, 3)
	for _, args := range [][]string{
		{"-trials", "1"},
		{"-trials", "1", "-lanes", "4"},
		{"-trials", "1", "-sched", "dense", "-workers", "2"},
	} {
		var stdout, stderr strings.Builder
		if err := run(args, &stdout, &stderr); err != nil {
			t.Fatalf("run(%v): %v\nstderr: %s", args, err, stderr.String())
		}
		outputs = append(outputs, stdout.String())
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Errorf("output %d differs from baseline:\n%s\nvs\n%s", i, outputs[i], outputs[0])
		}
	}
}

// TestCLIBadScheduler asserts unknown -sched values are rejected up front.
func TestCLIBadScheduler(t *testing.T) {
	var stdout, stderr strings.Builder
	err := run([]string{"-sched", "nope"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown scheduler") {
		t.Fatalf("run(-sched nope) = %v, want unknown-scheduler error", err)
	}
}
