package qcongest

// One benchmark per artifact of the paper's evaluation: the rows of
// Table 1 and the figure experiments (see the per-experiment index in
// DESIGN.md). Each benchmark reports the domain metric — distributed
// rounds, messages, or qubits — via b.ReportMetric, so `go test -bench=.`
// regenerates the paper's comparisons. EXPERIMENTS.md records the measured
// values against the theory.

import (
	"math/rand"
	"testing"

	"qcongest/internal/congest"
	"qcongest/internal/simulation"
)

func benchGraph(b *testing.B, n, d int) *Graph {
	b.Helper()
	g, err := LollipopWithDiameter(n, d)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// --- Table 1, row "Exact computation", classical column: Theta(n). ---

func BenchmarkTable1ExactClassical(b *testing.B) {
	for _, n := range []int{40, 80, 160} {
		g := benchGraph(b, n, 4)
		b.Run(sizeName(n), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				res, err := congest.ClassicalExactDiameter(g)
				if err != nil {
					b.Fatal(err)
				}
				total += res.Metrics.Rounds
			}
			b.ReportMetric(float64(total)/float64(b.N), "rounds")
		})
	}
}

// --- Table 1, row "Exact computation", quantum column: Õ(sqrt(nD)). ---

func BenchmarkTable1ExactQuantum(b *testing.B) {
	for _, n := range []int{40, 80, 160} {
		g := benchGraph(b, n, 4)
		b.Run(sizeName(n), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				res, err := QuantumExactDiameter(g, QuantumOptions{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				total += res.Rounds
			}
			b.ReportMetric(float64(total)/float64(b.N), "rounds")
		})
	}
}

// Section 3.1 ablation: the simpler Õ(sqrt(n)D) algorithm, for comparison
// with the final Theorem 1 algorithm.
func BenchmarkTable1ExactQuantumSimple(b *testing.B) {
	g := benchGraph(b, 80, 4)
	total := 0
	for i := 0; i < b.N; i++ {
		res, err := QuantumExactDiameterSimple(g, QuantumOptions{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		total += res.Rounds
	}
	b.ReportMetric(float64(total)/float64(b.N), "rounds")
}

// Theorem 1's D-dependence: rounds ~ sqrt(D) with n fixed.
func BenchmarkTable1ExactQuantumDSweep(b *testing.B) {
	for _, d := range []int{3, 6, 12} {
		g := benchGraph(b, 60, d)
		b.Run("D="+itoa(d), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				res, err := QuantumExactDiameter(g, QuantumOptions{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				total += res.Rounds
			}
			b.ReportMetric(float64(total)/float64(b.N), "rounds")
		})
	}
}

// --- Table 1, row "3/2-approximation". ---

func BenchmarkTable1ApproxClassical(b *testing.B) {
	for _, n := range []int{40, 120} {
		g := benchGraph(b, n, 4)
		b.Run(sizeName(n), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				res, err := ClassicalApproxDiameter(g, 0, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				total += res.Metrics.Rounds
			}
			b.ReportMetric(float64(total)/float64(b.N), "rounds")
		})
	}
}

func BenchmarkTable1ApproxQuantum(b *testing.B) {
	for _, n := range []int{40, 120} {
		g := benchGraph(b, n, 4)
		b.Run(sizeName(n), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				res, err := QuantumApproxDiameter(g, QuantumOptions{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				total += res.Rounds
			}
			b.ReportMetric(float64(total)/float64(b.N), "rounds")
		})
	}
}

// --- Table 1, rows "lower bounds": the Theorem 5 tradeoff and the
// Theorem 10 conversion. ---

func BenchmarkTable1DisjTradeoff(b *testing.B) {
	for _, budget := range []int{16, 64, 256} {
		b.Run("r="+itoa(budget), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			totalQubits := 0
			for i := 0; i < b.N; i++ {
				x, y := RandomIntersectingPair(4096, rng)
				blocks := (budget / 4) * (budget / 4)
				if blocks > 4096 {
					blocks = 4096
				}
				res, err := BlockedGroverDisj(x, y, blocks, rng)
				if err != nil {
					b.Fatal(err)
				}
				totalQubits += res.Metrics.Qubits
			}
			b.ReportMetric(float64(totalQubits)/float64(b.N), "qubits")
		})
	}
}

func BenchmarkTable1LowerBoundSqrtN(b *testing.B) {
	red, err := NewHW12Reduction(3)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	totalBits := 0
	for i := 0; i < b.N; i++ {
		x, y := RandomIntersectingPair(red.K, rng)
		res, err := TwoPartyFromCongest(red, x, y)
		if err != nil {
			b.Fatal(err)
		}
		totalBits += res.CutBits
	}
	b.ReportMetric(float64(totalBits)/float64(b.N), "cut-bits")
}

// --- Figure experiments. ---

// Figure 1: BFS construction is O(D) rounds.
func BenchmarkFigureF1BFS(b *testing.B) {
	g := RandomConnected(120, 0.05, 9)
	totalRounds := 0
	for i := 0; i < b.N; i++ {
		_, m, err := congest.Preprocess(g)
		if err != nil {
			b.Fatal(err)
		}
		totalRounds += m.Rounds
	}
	b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds")
}

// Figure 2: one Evaluation execution is O(D) rounds regardless of u0.
func BenchmarkFigureF2Evaluation(b *testing.B) {
	g := RandomConnected(100, 0.06, 10)
	info, _, err := congest.Preprocess(g)
	if err != nil {
		b.Fatal(err)
	}
	totalRounds := 0
	for i := 0; i < b.N; i++ {
		u0 := i % g.N()
		tau, mw, err := congest.TokenWalk(g, info, info.Children, u0, 2*info.D)
		if err != nil {
			b.Fatal(err)
		}
		_, mr, err := congest.EccentricitiesOf(g, info, tau, 6*info.D+2)
		if err != nil {
			b.Fatal(err)
		}
		totalRounds += mw.Rounds + mr.Rounds
	}
	b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds")
}

// Figure 4: building and checking the Theorem 8 graph.
func BenchmarkFigureF4HW12(b *testing.B) {
	red, err := NewHW12Reduction(8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < b.N; i++ {
		x, y := RandomIntersectingPair(red.K, rng)
		g, err := red.Build(x, y)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.Diameter(); err != nil {
			b.Fatal(err)
		}
	}
}

// Figures 6-7: the Theorem 11 two-party simulation; the metric is messages
// per run (O(r/d)).
func BenchmarkFigureF6F7Simulation(b *testing.B) {
	for _, d := range []int{4, 16} {
		b.Run("d="+itoa(d), func(b *testing.B) {
			alg := simulation.NewRelayAlgorithm(d, func(x, y uint64) uint64 { return x ^ y })
			totalMsgs := 0
			for i := 0; i < b.N; i++ {
				res, err := alg.RunTwoParty(uint64(i), uint64(2*i+1))
				if err != nil {
					b.Fatal(err)
				}
				totalMsgs += res.Metrics.Messages
			}
			b.ReportMetric(float64(totalMsgs)/float64(b.N), "messages")
		})
	}
}

// Figure 8: subdivided graphs G'_n(x, y) and their diameters.
func BenchmarkFigureF8Subdivided(b *testing.B) {
	red, err := NewACHK16Reduction(16)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < b.N; i++ {
		x, y := RandomIntersectingPair(red.K, rng)
		sub, err := BuildSubdivided(red, x, y, 6)
		if err != nil {
			b.Fatal(err)
		}
		diam, err := sub.G.Diameter()
		if err != nil {
			b.Fatal(err)
		}
		if diam != sub.RightDiameter {
			b.Fatalf("diameter %d, want %d", diam, sub.RightDiameter)
		}
	}
}

// Lemma 1: coverage computation.
func BenchmarkFigureLemma1(b *testing.B) {
	g := RandomConnected(80, 0.06, 12)
	for i := 0; i < b.N; i++ {
		minProb, bound, err := Lemma1Coverage(g)
		if err != nil {
			b.Fatal(err)
		}
		if minProb < bound {
			b.Fatalf("coverage %g below bound %g", minProb, bound)
		}
	}
}

func sizeName(n int) string { return "n=" + itoa(n) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
